#!/usr/bin/env python3
"""Compare a talft-bench-v1 report against a committed baseline.

The perf-regression gate for the campaign benchmarks: given a baseline
report (bench/baselines/BENCH_*.json, refreshed by the nightly workflow)
and a freshly measured one, fail when the acceleration regressed.

The gated metric is the *speedup ratio* (accelerated vs. unaccelerated
time measured in the same process on the same machine), not absolute
seconds: ratios transfer between runners, absolute timings do not. The
totals ratio is held to --threshold percent (default 15); individual
kernels are held to the looser --kernel-threshold (default 35) because a
single short kernel is far noisier than the whole sweep. Exactness flags
(tables_identical) are hard failures regardless of thresholds.

Exit status: 0 = no regression, 1 = regression or exactness failure,
2 = malformed/mismatched reports.

Usage:
  tools/bench_compare.py BASELINE CURRENT [--threshold PCT]
                         [--kernel-threshold PCT]
"""

import argparse
import json
import sys

SCHEMA = "talft-bench-v1"


def fail(msg):
    print(f"::error::{msg}", file=sys.stderr)


def load(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if report.get("schema") != SCHEMA:
        print(f"bench_compare: {path}: schema {report.get('schema')!r} "
              f"is not {SCHEMA!r}", file=sys.stderr)
        sys.exit(2)
    return report


def speedup_of(obj):
    """The self-normalizing ratio a report row carries."""
    return obj.get("speedup")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed baseline report")
    ap.add_argument("current", help="freshly measured report")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="max totals-speedup regression, percent "
                         "(default 15)")
    ap.add_argument("--kernel-threshold", type=float, default=35.0,
                    help="max per-kernel speedup regression, percent "
                         "(default 35)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    if base.get("benchmark") != cur.get("benchmark"):
        print(f"bench_compare: benchmark mismatch: "
              f"{base.get('benchmark')!r} vs {cur.get('benchmark')!r}",
              file=sys.stderr)
        sys.exit(2)
    name = cur.get("benchmark", "?")

    bad = False

    # Exactness first: a bench run whose accelerated verdict tables are
    # not bit-identical to its own scalar baseline is broken outright.
    if cur.get("tables_identical") is False:
        fail(f"{name}: verdict tables are not bit-identical")
        bad = True
    for k in cur.get("kernels", []):
        if k.get("tables_identical") is False:
            fail(f"{name}/{k.get('name')}: verdict tables are not "
                 f"bit-identical")
            bad = True

    def check(label, b, c, pct):
        nonlocal bad
        bs, cs = speedup_of(b), speedup_of(c)
        if bs is None or cs is None or bs <= 0:
            return
        delta = 100.0 * (cs - bs) / bs
        marker = "ok"
        if delta < -pct:
            marker = "REGRESSED"
            fail(f"{name}/{label}: speedup {cs:.2f}x is {-delta:.1f}% "
                 f"below the baseline {bs:.2f}x (threshold {pct:.0f}%)")
            bad = True
        print(f"  {label:<16} baseline {bs:6.2f}x  current {cs:6.2f}x  "
              f"({delta:+.1f}%)  {marker}")

    print(f"{name}: speedup vs {args.baseline}")
    base_kernels = {k.get("name"): k for k in base.get("kernels", [])}
    for k in cur.get("kernels", []):
        bk = base_kernels.get(k.get("name"))
        if bk is None:
            print(f"  {k.get('name'):<16} (no baseline entry, skipped)")
            continue
        check(k.get("name", "?"), bk, k, args.kernel_threshold)
    if "totals" in base and "totals" in cur:
        check("TOTAL", base["totals"], cur["totals"], args.threshold)
    else:
        fail(f"{name}: report is missing the totals object")
        bad = True

    sys.exit(1 if bad else 0)


if __name__ == "__main__":
    main()
