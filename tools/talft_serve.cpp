//===- tools/talft_serve.cpp - Certification server CLI -------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The talft certification service (src/serve/) as a command-line tool,
// with both sides of the wire in one binary:
//
// Server mode (default):
//
//   talft-serve [--host H] [--port N] [--workers N] [--threads N]
//               [--shards N] [--queue-cap N] [--cache-entries N]
//               [--cache-dir DIR] [--drain-after-shards N]
//               [--port-file FILE] [--build-id S]
//               [--pool N] [--shard-timeout-ms N] [--max-shard-attempts N]
//               [--wal FILE] [--default-deadline-ms N]
//               [--idle-timeout-ms N] [--max-line-bytes N]
//               [--chaos-crash-every N] [--chaos-signal N]
//
// --pool N forks N crash-isolated shard worker processes (0 runs shards
// in-process); --wal FILE makes every accepted submission durable in a
// write-ahead log that a restarted server replays. --chaos-crash-every
// is for the chaos harness only: every Nth dispatched shard crashes its
// worker at the shard boundary.
//
// binds 127.0.0.1 (ephemeral port by default; --port-file publishes the
// bound port atomically for scripts), serves the line protocol documented
// in serve/Protocol.h, and drains gracefully on SIGTERM/SIGINT: stop
// accepting, cut in-flight campaigns at the next shard boundary, persist
// the folded prefix through the memo store, exit 0. With --cache-dir the
// memo survives restarts, so a drained campaign resumes where it stopped.
//
// Client mode (--client):
//
//   talft-serve --client --port N [--host H]
//       (--submit-kernel NAME | --submit-file FILE [--lang wile|tal]
//        | --stats | --ping)
//       [--engine vm|reference|jit] [--stride N] [--shards N] [--prune]
//       [--no-converge] [--no-lanes] [--lane-width N] [--recover]
//       [--checkpoint-interval N] [--retry-budget N] [--deadline-ms N]
//       [--json FILE]
//
// submits a Figure 10 kernel by name (wile/Kernels.h) or a source file,
// prints the streamed events' summary, and with --json writes the served
// campaign as a talft-fault-campaign-v8 document — the same renderer the
// batch CLI uses, so the two are diffable field by field.
//
// Exit status: 0 success (campaign ok, or stats/ping answered); 1 when
// the served campaign found violations or the server reported an error;
// 2 on usage errors; 75 (EX_TEMPFAIL) when the server drained mid-run —
// resubmit to resume.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"
#include "support/AtomicFile.h"
#include "support/StringUtils.h"
#include "wile/Kernels.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>

using namespace talft;

namespace {

constexpr int ExitDrained = 75; // EX_TEMPFAIL: resubmit to resume

int usage() {
  std::fprintf(
      stderr,
      "usage: talft-serve [server options]\n"
      "       talft-serve --client --port N (--submit-kernel NAME |\n"
      "                   --submit-file FILE | --stats | --ping) [options]\n"
      "see the header comment of tools/talft_serve.cpp for the full list\n");
  return 2;
}

bool parseU64(const char *S, uint64_t &Out) {
  if (!S || !*S)
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End)
    return false;
  Out = V;
  return true;
}

uint64_t numArg(int Argc, char **Argv, int &I) {
  if (I + 1 >= Argc) {
    std::fprintf(stderr, "%s needs a value\n", Argv[I]);
    std::exit(2);
  }
  uint64_t V = 0;
  if (!parseU64(Argv[++I], V)) {
    std::fprintf(stderr, "bad value for %s: %s\n", Argv[I - 1], Argv[I]);
    std::exit(2);
  }
  return V;
}

const char *strArg(int Argc, char **Argv, int &I) {
  if (I + 1 >= Argc) {
    std::fprintf(stderr, "%s needs a value\n", Argv[I]);
    std::exit(2);
  }
  return Argv[++I];
}

// SIGTERM/SIGINT → one byte down a self-pipe; a watcher thread turns it
// into requestDrain() (which takes locks, so it must not run in the
// handler itself).
int DrainPipe[2] = {-1, -1};

void onSignal(int) {
  char B = 1;
  (void)!::write(DrainPipe[1], &B, 1);
}

int runServer(const serve::ServerOptions &Opts, const std::string &PortFile) {
  serve::Server S(Opts);
  std::string Err;
  if (!S.start(&Err)) {
    std::fprintf(stderr, "talft-serve: %s\n", Err.c_str());
    return 1;
  }

  if (::pipe(DrainPipe) != 0) {
    std::fprintf(stderr, "talft-serve: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::thread Watcher([&S] {
    char B;
    while (::read(DrainPipe[0], &B, 1) < 0 && errno == EINTR)
      ;
    std::fprintf(stderr, "talft-serve: drain requested, finishing in-flight "
                         "shards\n");
    S.requestDrain();
  });

  std::fprintf(stderr, "talft-serve: listening on %s:%u (%u worker%s)\n",
               Opts.Host.c_str(), S.port(), Opts.Workers,
               Opts.Workers == 1 ? "" : "s");
  if (!PortFile.empty() &&
      !support::writeFileAtomic(PortFile,
                                formatv("%u\n", S.port()))) {
    std::fprintf(stderr, "talft-serve: cannot write %s\n", PortFile.c_str());
    S.stop();
    return 1;
  }

  S.wait();
  // Unblock the watcher if the drain came from --drain-after-shards
  // rather than a signal.
  char B = 1;
  (void)!::write(DrainPipe[1], &B, 1);
  Watcher.join();
  ::close(DrainPipe[0]);
  ::close(DrainPipe[1]);

  std::fprintf(stderr, "talft-serve: drained; final stats:\n%s\n",
               S.statsJson().c_str());
  return 0;
}

int runClient(const std::string &Host, unsigned Port, bool Stats, bool Ping,
              const serve::SubmitSpec &Spec, bool HaveSubmission,
              const std::string &JsonPath) {
  if (Stats || Ping) {
    std::string Out, Err;
    bool Got = Stats ? serve::requestStats(Host, Port, Out, Err)
                     : serve::requestPing(Host, Port, Out, Err);
    if (!Got) {
      std::fprintf(stderr, "talft-serve: %s\n", Err.c_str());
      return 1;
    }
    std::printf("%s\n", Out.c_str());
    return 0;
  }
  if (!HaveSubmission)
    return usage();

  serve::SubmitOutcome O = serve::submitProgram(Host, Port, Spec);
  if (!O.Error.empty()) {
    // Lead with the machine-readable code (when the server sent one) so
    // scripts can classify failures without parsing prose.
    if (!O.ErrorCode.empty())
      std::fprintf(stderr, "talft-serve: %s: [%s] %s\n", Spec.Name.c_str(),
                   O.ErrorCode.c_str(), O.Error.c_str());
    else
      std::fprintf(stderr, "talft-serve: %s: %s\n", Spec.Name.c_str(),
                   O.Error.c_str());
    if (O.RetryAfterMs)
      std::fprintf(stderr, "talft-serve: %s: retry after %llu ms\n",
                   Spec.Name.c_str(), (unsigned long long)O.RetryAfterMs);
    return 1;
  }
  if (O.Drained) {
    std::fprintf(stderr,
                 "talft-serve: %s: server drained after %u/%u shard(s); "
                 "resubmit to resume\n",
                 Spec.Name.c_str(), O.ShardsDone, O.ShardsTotal);
    return ExitDrained;
  }
  if (!O.GotResult) {
    std::fprintf(stderr, "talft-serve: %s: no result event\n",
                 Spec.Name.c_str());
    return 1;
  }

  const CampaignResult &R = O.Campaign;
  std::printf("%-14s %-8s cache=%-7s shards=%u/%u streamed=%u "
              "tasks=%llu ok=%s\n",
              Spec.Name.c_str(), O.Certification.c_str(), O.Cache.c_str(),
              O.ShardsDone, O.ShardsTotal, O.ShardEvents,
              (unsigned long long)R.Stats.Tasks, R.Ok ? "yes" : "NO");
  for (size_t I = 0; I != NumVerdicts; ++I)
    if (R.Table.Counts[I])
      std::printf("  %-18s %llu\n", verdictJsonKey((Verdict)I),
                  (unsigned long long)R.Table.Counts[I]);

  if (!JsonPath.empty()) {
    std::string Doc = campaignToJson(R, 0);
    Doc += "\n";
    if (!support::writeFileAtomic(JsonPath, Doc)) {
      std::fprintf(stderr, "talft-serve: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
  }
  return R.Ok ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Client = false;
  bool Stats = false, Ping = false, HaveSubmission = false;
  std::string PortFile, JsonPath, SubmitFile, KernelName;
  serve::ServerOptions SOpts;
  serve::SubmitSpec Spec;
  std::string Host = "127.0.0.1";
  unsigned Port = 0;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (!std::strcmp(A, "--client"))
      Client = true;
    else if (!std::strcmp(A, "--host"))
      Host = SOpts.Host = strArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--port"))
      Port = SOpts.Port = (unsigned)numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--workers"))
      SOpts.Workers = (unsigned)numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--threads"))
      SOpts.CampaignThreads = (unsigned)numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--shards")) {
      uint64_t N = numArg(Argc, Argv, I);
      SOpts.DefaultShards = (unsigned)N;
      Spec.Shards = (unsigned)N;
    } else if (!std::strcmp(A, "--queue-cap"))
      SOpts.QueueCap = (size_t)numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--cache-entries"))
      SOpts.CacheEntries = (size_t)numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--cache-dir"))
      SOpts.CacheDir = strArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--drain-after-shards"))
      SOpts.DrainAfterShards = numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--pool"))
      SOpts.PoolWorkers = (unsigned)numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--shard-timeout-ms"))
      SOpts.ShardTimeoutMs = numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--max-shard-attempts"))
      SOpts.MaxShardAttempts = (unsigned)numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--wal"))
      SOpts.WalPath = strArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--default-deadline-ms"))
      SOpts.DefaultDeadlineMs = numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--idle-timeout-ms"))
      SOpts.IdleTimeoutMs = numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--max-line-bytes"))
      SOpts.MaxLineBytes = (size_t)numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--chaos-crash-every"))
      SOpts.ChaosCrashEveryN = numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--chaos-signal"))
      SOpts.ChaosSignal = (int)numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--port-file"))
      PortFile = strArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--build-id"))
      SOpts.BuildId = strArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--stats"))
      Stats = true;
    else if (!std::strcmp(A, "--ping"))
      Ping = true;
    else if (!std::strcmp(A, "--submit-kernel"))
      KernelName = strArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--submit-file"))
      SubmitFile = strArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--lang"))
      Spec.Lang = strArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--engine"))
      Spec.Engine = strArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--stride"))
      Spec.Stride = numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--max-steps"))
      Spec.MaxSteps = numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--prune"))
      Spec.Prune = true;
    else if (!std::strcmp(A, "--no-converge"))
      Spec.Converge = false;
    else if (!std::strcmp(A, "--no-lanes"))
      Spec.Lanes = false;
    else if (!std::strcmp(A, "--lane-width"))
      Spec.LaneWidth = (unsigned)numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--recover"))
      Spec.Recover = true;
    else if (!std::strcmp(A, "--checkpoint-interval"))
      Spec.CheckpointInterval = numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--retry-budget"))
      Spec.RetryBudget = numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--deadline-ms"))
      Spec.DeadlineMs = numArg(Argc, Argv, I);
    else if (!std::strcmp(A, "--json"))
      JsonPath = strArg(Argc, Argv, I);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", A);
      return usage();
    }
  }

  if (!Client)
    return runServer(SOpts, PortFile);

  if (Port == 0) {
    std::fprintf(stderr, "talft-serve: --client needs --port\n");
    return 2;
  }
  if (!KernelName.empty()) {
    for (const wile::Kernel &K : wile::benchmarkKernels())
      if (K.Name == KernelName) {
        Spec.Name = K.Name;
        Spec.Lang = "wile";
        Spec.Source = K.Source;
        HaveSubmission = true;
        break;
      }
    if (!HaveSubmission) {
      std::fprintf(stderr, "talft-serve: unknown kernel \"%s\"; known:\n",
                   KernelName.c_str());
      for (const wile::Kernel &K : wile::benchmarkKernels())
        std::fprintf(stderr, "  %s\n", K.Name.c_str());
      return 2;
    }
  } else if (!SubmitFile.empty()) {
    std::ifstream In(SubmitFile);
    if (!In) {
      std::fprintf(stderr, "talft-serve: cannot read %s\n",
                   SubmitFile.c_str());
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Spec.Source = Buf.str();
    Spec.Name = SubmitFile;
    HaveSubmission = true;
  }

  return runClient(Host, Port, Stats, Ping, Spec, HaveSubmission, JsonPath);
}
