#!/usr/bin/env python3
"""Chaos harness for the talft certification server.

Drives a live talft-serve instance while injecting the faults the server
claims to survive, and holds it to the only oracle that matters: every
campaign the server *completes* must be bit-identical (verdict table,
violations, reference steps, states typechecked, program hash) to the
batch CLI's table for the same kernel and options.

Injected chaos, all concurrent:

  - worker kills: live shard-worker pids are read from GET /stats
    (pool.pids) and hit with SIGKILL or SIGSEGV at random moments —
    covering arbitrary points in a shard's life; the server's own
    --chaos-crash-every hook covers the exact shard boundary;
  - slow-loris clients: connections that dribble one byte of a request
    at a time and then stall, which the server must shed via its idle
    timer instead of wedging a handler;
  - server SIGKILL + restart: the whole server is killed without
    warning, its write-ahead log optionally truncated mid-frame (a torn
    tail, as a crashed kernel write would leave), then restarted on the
    same WAL + cache dir; the restart must recover, replay, and keep
    serving;
  - sustained submissions: a client loop submits random Figure 10
    kernels the whole time; structured shedding ("overloaded",
    "draining", "shard_poisoned", "deadline_exceeded", exit 75 drains)
    is tolerated and counted, silent corruption is not.

Usage:
  tools/talft_chaos.py --serve build/tools/talft-serve \
      --coverage build/bench/fault_coverage \
      [--duration 60] [--kernels pegwit,jpeg,adpcm] [--seed 1]
      [--kill-period 0.4] [--kill-signal mix|kill|segv]
      [--restart-every 15] [--truncate-wal] [--loris 2]
      [--chaos-crash-every N] [--workdir DIR]

Exit status: 0 when no divergence and the final restart recovered; 1 on
any oracle violation, server death, or recovery failure.
"""

import argparse
import json
import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

# The semantic fields of a campaign object: everything the paper's
# tables are made of. Timing floats are explicitly not here.
SEMANTIC = ("ok", "verdicts", "violations", "reference_steps",
            "states_typechecked", "program_hash")


def semantic_view(campaign):
    return {K: campaign.get(K) for K in SEMANTIC}


class Stats:
    def __init__(self):
        self.lock = threading.Lock()
        self.completed = 0
        self.matched = 0
        self.shed = 0          # overloaded/draining/queue shed
        self.failed = 0        # structured failures (poisoned, deadline)
        self.transport = 0     # connect/reset during a server restart
        self.worker_kills = 0
        self.server_kills = 0
        self.loris_opened = 0
        self.divergences = []

    def note(self, field, inc=1):
        with self.lock:
            setattr(self, field, getattr(self, field) + inc)


class ServerHandle:
    """Owns the talft-serve process and its restart lifecycle."""

    def __init__(self, args, workdir):
        self.args = args
        self.workdir = workdir
        self.port_file = os.path.join(workdir, "port.txt")
        self.wal = os.path.join(workdir, "submit.wal")
        self.cache = os.path.join(workdir, "cache")
        self.log = open(os.path.join(workdir, "server.log"), "ab")
        self.proc = None
        self.port = 0
        self.lock = threading.Lock()
        self.generation = 0

    def start(self):
        if os.path.exists(self.port_file):
            os.unlink(self.port_file)
        cmd = [
            self.args.serve,
            "--port-file", self.port_file,
            "--wal", self.wal,
            "--cache-dir", self.cache,
            "--shards", str(self.args.shards),
            "--pool", str(self.args.pool),
            "--idle-timeout-ms", "2000",
            "--shard-timeout-ms", "30000",
        ]
        if self.args.chaos_crash_every:
            cmd += ["--chaos-crash-every", str(self.args.chaos_crash_every)]
        self.proc = subprocess.Popen(cmd, stdout=self.log, stderr=self.log)
        deadline = time.time() + 20
        while time.time() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError("server died during startup; see server.log")
            try:
                with open(self.port_file) as F:
                    self.port = int(F.read().strip())
                    self.generation += 1
                    return
            except (FileNotFoundError, ValueError):
                time.sleep(0.05)
        raise RuntimeError("server did not publish a port in 20s")

    def sigkill(self):
        with self.lock:
            if self.proc and self.proc.poll() is None:
                self.proc.kill()
                self.proc.wait()

    def wipe_cache(self):
        """Delete on-disk cache entries (only while the server is down).
        The restarted server's memo starts cold, so submissions go back
        to doing real shard work instead of replaying memo hits."""
        try:
            for name in os.listdir(self.cache):
                os.unlink(os.path.join(self.cache, name))
        except OSError:
            pass

    def truncate_wal_tail(self, rng):
        """Cut 1..64 bytes off the WAL — a torn final frame."""
        try:
            size = os.path.getsize(self.wal)
        except OSError:
            return False
        if size < 16:
            return False
        with open(self.wal, "ab") as F:
            F.truncate(size - rng.randint(1, min(64, size - 8)))
        return True

    def stop(self):
        with self.lock:
            if self.proc and self.proc.poll() is None:
                self.proc.terminate()
                try:
                    self.proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    self.proc.kill()
                    self.proc.wait()


def get_stats(port, timeout=3.0):
    try:
        with socket.create_connection(("127.0.0.1", port), timeout=timeout) as S:
            S.sendall(b'{"cmd": "stats"}\n')
            S.settimeout(timeout)
            buf = b""
            while b"\n" not in buf:
                chunk = S.recv(65536)
                if not chunk:
                    return None
                buf += chunk
            return json.loads(buf.split(b"\n", 1)[0])
    except (OSError, ValueError):
        return None


def build_golden(args, workdir):
    """The batch CLI's fig10 tables, the bit-identity oracle."""
    path = os.path.join(workdir, "golden.json")
    cmd = [args.coverage, "--fig10", "--json", path, "--engine", "vm",
           "--threads", "0"]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL,
                   stderr=subprocess.DEVNULL)
    with open(path) as F:
        doc = json.load(F)
    return {P["name"]: semantic_view(P["campaign"]) for P in doc["programs"]}


def submit_loop(args, server, golden, stats, stop, rng):
    kernels = args.kernels.split(",")
    out = os.path.join(server.workdir, "served.json")
    while not stop.is_set():
        name = rng.choice(kernels)
        if os.path.exists(out):
            os.unlink(out)
        port = server.port
        R = subprocess.run(
            [args.serve, "--client", "--port", str(port),
             "--submit-kernel", name, "--engine", "vm", "--json", out],
            capture_output=True, text=True)
        err = R.stderr or ""
        if R.returncode == 0 and os.path.exists(out):
            stats.note("completed")
            with open(out) as F:
                served = semantic_view(json.load(F))
            if served == golden[name]:
                stats.note("matched")
            else:
                with stats.lock:
                    stats.divergences.append(
                        {"kernel": name, "served": served,
                         "golden": golden[name]})
                stop.set()  # a divergence ends the run immediately
            continue
        if R.returncode == 75 or "[draining]" in err or "[overloaded]" in err:
            stats.note("shed")
        elif any(C in err for C in ("[shard_poisoned]", "[deadline_exceeded]",
                                    "[worker_error]", "[campaign_error]")):
            stats.note("failed")
        else:
            # connect refused / reset mid-restart
            stats.note("transport")
        time.sleep(0.02)


def worker_killer(args, server, stats, stop, rng):
    sigs = {"kill": [signal.SIGKILL], "segv": [signal.SIGSEGV],
            "mix": [signal.SIGKILL, signal.SIGSEGV]}[args.kill_signal]
    while not stop.is_set():
        time.sleep(rng.uniform(0.3, 1.7) * args.kill_period)
        doc = get_stats(server.port)
        if not doc:
            continue
        pids = doc.get("pool", {}).get("pids", [])
        if not pids:
            continue
        pid = rng.choice(pids)
        try:
            os.kill(pid, rng.choice(sigs))
            stats.note("worker_kills")
        except (ProcessLookupError, PermissionError):
            pass  # already dead / reaped; the pool respawned it


def slow_loris(server, stats, stop, rng):
    """Dribble a request one byte a second, then stall past the idle
    timer. The server must keep serving others and shed us."""
    payload = b'{"cmd": "ping"}'
    while not stop.is_set():
        try:
            with socket.create_connection(("127.0.0.1", server.port),
                                          timeout=2) as S:
                stats.note("loris_opened")
                for B in payload[: rng.randint(3, len(payload) - 1)]:
                    if stop.is_set():
                        break
                    S.sendall(bytes([B]))
                    time.sleep(0.7)
                # never send the newline; hold until the server closes
                S.settimeout(10)
                try:
                    S.recv(1)
                except socket.timeout:
                    pass
        except OSError:
            pass
        time.sleep(0.5)


def restarter(args, server, stats, stop, rng):
    """SIGKILL the server on a period, optionally tear the WAL tail,
    restart, and verify recovery."""
    if not args.restart_every:
        return
    while not stop.is_set():
        if stop.wait(args.restart_every):
            return
        server.sigkill()
        stats.note("server_kills")
        if args.truncate_wal and rng.random() < 0.5:
            server.truncate_wal_tail(rng)
        if args.wipe_cache:
            server.wipe_cache()
        try:
            server.start()
        except RuntimeError as E:
            with stats.lock:
                stats.divergences.append({"recovery_failure": str(E)})
            stop.set()
            return


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--serve", required=True, help="talft-serve binary")
    ap.add_argument("--coverage", required=True,
                    help="fault_coverage binary (the golden oracle)")
    ap.add_argument("--duration", type=float, default=60)
    ap.add_argument("--kernels", default="pegwit,jpeg,adpcm,g721,epic")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--shards", type=int, default=4)
    ap.add_argument("--pool", type=int, default=2)
    ap.add_argument("--kill-period", type=float, default=0.4,
                    help="mean seconds between worker kills")
    ap.add_argument("--kill-signal", choices=["mix", "kill", "segv"],
                    default="mix")
    ap.add_argument("--restart-every", type=float, default=0,
                    help="SIGKILL+restart the server every N seconds")
    ap.add_argument("--truncate-wal", action="store_true",
                    help="tear the WAL tail on half the server kills")
    ap.add_argument("--wipe-cache", action="store_true",
                    help="clear the result cache on each restart so "
                         "submissions keep doing real shard work")
    ap.add_argument("--loris", type=int, default=1,
                    help="concurrent slow-loris connections")
    ap.add_argument("--chaos-crash-every", type=int, default=0,
                    help="also arm the server's shard-boundary crash hook")
    ap.add_argument("--workdir", default=None)
    args = ap.parse_args()

    workdir = args.workdir or tempfile.mkdtemp(prefix="talft-chaos-")
    os.makedirs(workdir, exist_ok=True)
    rng = random.Random(args.seed)
    stats = Stats()
    stop = threading.Event()

    print(f"[chaos] golden tables via {args.coverage} --fig10 ...",
          flush=True)
    golden = build_golden(args, workdir)
    for K in args.kernels.split(","):
        if K not in golden:
            print(f"[chaos] unknown kernel {K!r}", file=sys.stderr)
            return 2

    server = ServerHandle(args, workdir)
    server.start()
    print(f"[chaos] server on port {server.port}, workdir {workdir}",
          flush=True)

    threads = [
        threading.Thread(target=submit_loop,
                         args=(args, server, golden, stats, stop, rng)),
        threading.Thread(target=worker_killer,
                         args=(args, server, stats, stop,
                               random.Random(args.seed + 1))),
        threading.Thread(target=restarter,
                         args=(args, server, stats, stop,
                               random.Random(args.seed + 2))),
    ]
    for I in range(args.loris):
        threads.append(threading.Thread(
            target=slow_loris,
            args=(server, stats, stop, random.Random(args.seed + 3 + I))))
    for T in threads:
        T.daemon = True
        T.start()

    deadline = time.time() + args.duration
    while time.time() < deadline and not stop.is_set():
        time.sleep(0.25)
    stop.set()
    for T in threads:
        T.join(timeout=30)

    # Final recovery check: kill hard, restart, and require a clean WAL
    # replay (pending entries drain to zero) and a live stats endpoint.
    server.sigkill()
    stats.note("server_kills")
    recovery_ok = True
    try:
        server.start()
        doc = get_stats(server.port, timeout=10)
        recovery_ok = doc is not None
    except RuntimeError as E:
        print(f"[chaos] final restart failed: {E}", file=sys.stderr)
        recovery_ok = False
    if recovery_ok:
        wal = doc.get("wal", {})
        print(f"[chaos] post-restart wal: recovered={wal.get('recovered')} "
              f"torn_bytes={wal.get('torn_bytes')} "
              f"corrupt_frames={wal.get('corrupt_frames')}", flush=True)
    server.stop()

    print(f"[chaos] completed={stats.completed} matched={stats.matched} "
          f"shed={stats.shed} failed={stats.failed} "
          f"transport={stats.transport} worker_kills={stats.worker_kills} "
          f"server_kills={stats.server_kills} "
          f"loris={stats.loris_opened}", flush=True)

    ok = True
    if stats.divergences:
        ok = False
        print("[chaos] DIVERGENCE:", file=sys.stderr)
        for D in stats.divergences:
            print(json.dumps(D, indent=2), file=sys.stderr)
    if not recovery_ok:
        ok = False
        print("[chaos] FAIL: server did not recover from the final kill",
              file=sys.stderr)
    if stats.completed == 0:
        ok = False
        print("[chaos] FAIL: no submission ever completed", file=sys.stderr)
    if stats.completed != stats.matched:
        ok = False  # belt-and-braces; divergences already caught this
    print(f"[chaos] {'PASS' if ok else 'FAIL'}", flush=True)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
