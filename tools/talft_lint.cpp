//===- tools/talft_lint.cpp - Static reliability linter for .tal files ----===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Runs every pass in src/analysis/ over one or more .tal files and prints
// compiler-style diagnostics:
//
//   talft-lint [--json] [--verbose] file.tal [file2.tal ...]
//
// For each file the linter parses and lays out the program, certifies it
// (type check first, duplication-consistency analysis as the fallback),
// and classifies every (instruction, register) fault site as dead /
// checked / vulnerable. Inconsistency findings are printed as
//
//   file.tal:12:3: error: loop+4: stB r4, r2: blue operand of the
//   hardware compare is not an independent replica
//
// with the 1-based source position of the offending instruction.
//
// Exit status: 0 when every file is certified (typed or
// analysis-certified) with no vulnerable fault site, 1 when any file has
// an inconsistency finding or vulnerable site, 2 on usage/parse errors.
// That makes the tool directly usable as a CI gate over examples/.
//
// --json emits one JSON object per file (certification status plus the
// zap-coverage report) instead of the human summary; diagnostics still go
// to stderr.
//
//===----------------------------------------------------------------------===//

#include "analysis/Certify.h"
#include "analysis/ZapCoverage.h"
#include "support/StringUtils.h"
#include "tal/Parser.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace talft;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: talft-lint [--json] [--verbose] file.tal [...]\n");
  return 2;
}

std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

void printFinding(const std::string &Path, const analysis::Finding &F,
                  const char *Severity) {
  if (F.Loc.isValid())
    std::fprintf(stderr, "%s:%s: %s: %s\n", Path.c_str(), F.Loc.str().c_str(),
                 Severity, F.str().c_str());
  else
    std::fprintf(stderr, "%s: %s: %s\n", Path.c_str(), Severity,
                 F.str().c_str());
}

/// Lints one file. Returns 0 / 1 / 2 with the same meaning as the process
/// exit status; the caller keeps the maximum.
int lintFile(const std::string &Path, bool Json, bool Verbose) {
  std::optional<std::string> Source = readFile(Path);
  if (!Source) {
    std::fprintf(stderr, "%s: cannot read file\n", Path.c_str());
    return 2;
  }

  TypeContext Types;
  DiagnosticEngine Diags;
  Expected<Program> Prog = parseAndLayoutTalProgram(Types, *Source, Diags);
  if (!Prog) {
    for (const Diagnostic &D : Diags.diagnostics())
      std::fprintf(stderr, "%s:%s\n", Path.c_str(), D.str().c_str());
    if (Diags.diagnostics().empty())
      std::fprintf(stderr, "%s: %s\n", Path.c_str(), Prog.message().c_str());
    return 2;
  }

  analysis::Certification Cert = analysis::certifyProgram(Types, *Prog);
  Expected<analysis::ZapCoverage> Cov = analysis::ZapCoverage::compute(*Prog);
  if (!Cov) {
    std::fprintf(stderr, "%s: analysis failed: %s\n", Path.c_str(),
                 Cov.message().c_str());
    return 2;
  }
  analysis::ZapSummary Sites = Cov->summarize();

  // Diagnostics: inconsistency findings are errors. A typed program with
  // analysis findings is a false positive of the abstract domain (the type
  // system vouches for it), reported as warnings under --verbose only.
  bool Typed = Cert.Status == analysis::CertificationStatus::Typed;
  for (const analysis::Finding &F : Cert.Findings)
    printFinding(Path, F, "error");
  if (Typed && Verbose)
    for (const analysis::Finding &F : Cov->duplication().Findings)
      printFinding(Path, F, "warning");

  bool Bad = !Cert.certified() || (!Typed && Sites.Vulnerable != 0);

  if (Json) {
    std::string S = "{\n";
    S += formatv("  \"file\": \"%s\",\n", Path.c_str());
    S += formatv("  \"certification\": \"%s\",\n",
                 certificationStatusJsonKey(Cert.Status));
    if (!Cert.CheckerError.empty()) {
      std::string Esc;
      for (char C : Cert.CheckerError)
        if (C == '"' || C == '\\')
          (Esc += '\\') += C;
        else if (C == '\n')
          Esc += "\\n";
        else
          Esc += C;
      S += formatv("  \"checker_error\": \"%s\",\n", Esc.c_str());
    }
    S += "  \"zap_coverage\":\n";
    S += Cov->reportJson(2);
    S += "\n}\n";
    std::fputs(S.c_str(), stdout);
  } else {
    std::printf("%s: %s (%zu instructions, %u basic blocks%s); "
                "fault sites: %llu dead, %llu checked, %llu vulnerable\n",
                Path.c_str(), certificationStatusName(Cert.Status),
                Prog->code().size(), (unsigned)Cov->cfg().numBlocks(),
                Cov->cfg().targetsResolved() ? ""
                                             : ", indirect targets "
                                               "over-approximated",
                (unsigned long long)Sites.Dead,
                (unsigned long long)Sites.Checked,
                (unsigned long long)Sites.Vulnerable);
    if (Verbose && !Typed && !Cert.CheckerError.empty())
      std::printf("%s: note: type checker said: %s\n", Path.c_str(),
                  Cert.CheckerError.c_str());
  }
  return Bad ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = false;
  bool Verbose = false;
  std::vector<std::string> Files;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(Argv[I], "--verbose") == 0)
      Verbose = true;
    else if (std::strcmp(Argv[I], "--help") == 0)
      return usage();
    else if (Argv[I][0] == '-')
      return usage();
    else
      Files.push_back(Argv[I]);
  }
  if (Files.empty())
    return usage();

  int Rc = 0;
  for (const std::string &F : Files)
    Rc = std::max(Rc, lintFile(F, Json, Verbose));
  return Rc;
}
