//===- tools/talft_lint.cpp - Static reliability linter for .tal files ----===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Runs every pass in src/analysis/ over one or more .tal files and prints
// compiler-style diagnostics:
//
//   talft-lint [--json] [--verbose] [--cfg] file.tal [file2.tal ...]
//
// --cfg dumps the resolved control-flow graph instead of linting: every
// basic block with its successor blocks, and every committing (blue)
// control instruction with its resolved target set, provenance
// (exact / type-narrowed / over-approximated) and the resolution-ladder
// layer that produced it (0 = constant scan, 1 = type narrowing,
// 2 = label-set dataflow).
//
// For each file the linter parses and lays out the program, certifies it
// (type check first, duplication-consistency analysis as the fallback),
// and classifies every (instruction, register) fault site as dead /
// checked / vulnerable. Inconsistency findings are printed as
//
//   file.tal:12:3: error: loop+4: stB r4, r2: blue operand of the
//   hardware compare is not an independent replica
//
// with the 1-based source position of the offending instruction.
//
// Exit status: 0 when every file is certified (typed or
// analysis-certified) with no vulnerable fault site, 1 when any file has
// an inconsistency finding or vulnerable site, 2 on usage/parse errors.
// That makes the tool directly usable as a CI gate over examples/.
//
// --json emits one JSON object per file (certification status plus the
// zap-coverage report) instead of the human summary; diagnostics still go
// to stderr.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Certify.h"
#include "analysis/ZapCoverage.h"
#include "support/StringUtils.h"
#include "tal/Parser.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace talft;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: talft-lint [--json] [--verbose] [--cfg] "
               "file.tal [...]\n");
  return 2;
}

std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

void printFinding(const std::string &Path, const analysis::Finding &F,
                  const char *Severity) {
  if (F.Loc.isValid())
    std::fprintf(stderr, "%s:%s: %s: %s\n", Path.c_str(), F.Loc.str().c_str(),
                 Severity, F.str().c_str());
  else
    std::fprintf(stderr, "%s: %s: %s\n", Path.c_str(), Severity,
                 F.str().c_str());
}

/// Dumps the resolved CFG of one parsed program: blocks, successor sets,
/// and each commit's target set with its provenance and ladder layer.
void dumpCfg(const std::string &Path, const analysis::CFG &G) {
  analysis::CFG::ResolutionSummary Sum = G.resolutionSummary();
  std::printf("%s: cfg: %zu blocks, entry bb%u; %llu commits "
              "(%llu exact, %llu type-narrowed, %llu over-approximated)\n",
              Path.c_str(), G.numBlocks(), G.entryBlock(),
              (unsigned long long)Sum.Commits, (unsigned long long)Sum.Exact,
              (unsigned long long)Sum.TypeNarrowed,
              (unsigned long long)Sum.OverApproximated);
  for (uint32_t Id = 0; Id != (uint32_t)G.numBlocks(); ++Id) {
    const analysis::CFG::BasicBlock &BB = G.block(Id);
    std::string Line = formatv("  bb%u: %s", Id,
                               G.describeAddr(BB.Begin).c_str());
    if (BB.Size > 1)
      Line += formatv(" .. %s", G.describeAddr(BB.end() - 1).c_str());
    Line += formatv(" (%u inst%s)", BB.Size, BB.Size == 1 ? "" : "s");
    if (!G.reachable(Id))
      Line += " unreachable";
    if (!BB.Succs.empty()) {
      Line += "  -> ";
      for (size_t I = 0; I != BB.Succs.size(); ++I)
        Line += formatv("%sbb%u", I ? ", " : "", BB.Succs[I]);
    }
    std::printf("%s\n", Line.c_str());
    for (Addr A = BB.Begin; A != BB.end(); ++A) {
      if (!G.isCommit(A))
        continue;
      const std::vector<Addr> &Targets = G.controlTargets(A);
      std::string T = "{";
      for (size_t I = 0; I != Targets.size(); ++I)
        T += formatv("%s%s", I ? ", " : "",
                     G.describeAddr(Targets[I]).c_str());
      T += "}";
      std::printf("    %s: targets %s  %s (layer %u)\n",
                  G.describeAddr(A).c_str(), T.c_str(),
                  analysis::provenanceName(G.targetProvenance(A)),
                  G.resolutionLayer(A));
    }
  }
}

/// Lints one file. Returns 0 / 1 / 2 with the same meaning as the process
/// exit status; the caller keeps the maximum.
int lintFile(const std::string &Path, bool Json, bool Verbose, bool Cfg) {
  std::optional<std::string> Source = readFile(Path);
  if (!Source) {
    std::fprintf(stderr, "%s: cannot read file\n", Path.c_str());
    return 2;
  }

  TypeContext Types;
  DiagnosticEngine Diags;
  Expected<Program> Prog = parseAndLayoutTalProgram(Types, *Source, Diags);
  if (!Prog) {
    for (const Diagnostic &D : Diags.diagnostics())
      std::fprintf(stderr, "%s:%s\n", Path.c_str(), D.str().c_str());
    if (Diags.diagnostics().empty())
      std::fprintf(stderr, "%s: %s\n", Path.c_str(), Prog.message().c_str());
    return 2;
  }

  if (Cfg) {
    Expected<analysis::CFG> G = analysis::CFG::build(*Prog);
    if (!G) {
      std::fprintf(stderr, "%s: cannot build CFG: %s\n", Path.c_str(),
                   G.message().c_str());
      return 2;
    }
    dumpCfg(Path, *G);
    return 0;
  }

  analysis::Certification Cert = analysis::certifyProgram(Types, *Prog);
  Expected<analysis::ZapCoverage> Cov = analysis::ZapCoverage::compute(*Prog);
  if (!Cov) {
    std::fprintf(stderr, "%s: analysis failed: %s\n", Path.c_str(),
                 Cov.message().c_str());
    return 2;
  }
  analysis::ZapSummary Sites = Cov->summarize();

  // Diagnostics: inconsistency findings are errors. A typed program with
  // analysis findings is a false positive of the abstract domain (the type
  // system vouches for it), reported as warnings under --verbose only.
  bool Typed = Cert.Status == analysis::CertificationStatus::Typed;
  for (const analysis::Finding &F : Cert.Findings)
    printFinding(Path, F, "error");
  if (Typed && Verbose)
    for (const analysis::Finding &F : Cov->duplication().Findings)
      printFinding(Path, F, "warning");

  bool Bad = !Cert.certified() || (!Typed && Sites.Vulnerable != 0);

  if (Json) {
    std::string S = "{\n";
    S += formatv("  \"file\": \"%s\",\n", Path.c_str());
    S += formatv("  \"certification\": \"%s\",\n",
                 certificationStatusJsonKey(Cert.Status));
    if (!Cert.CheckerError.empty()) {
      std::string Esc;
      for (char C : Cert.CheckerError)
        if (C == '"' || C == '\\')
          (Esc += '\\') += C;
        else if (C == '\n')
          Esc += "\\n";
        else
          Esc += C;
      S += formatv("  \"checker_error\": \"%s\",\n", Esc.c_str());
    }
    S += "  \"zap_coverage\":\n";
    S += Cov->reportJson(2);
    S += "\n}\n";
    std::fputs(S.c_str(), stdout);
  } else {
    // Non-exact jumps are summarized per provenance; --cfg dumps the
    // per-jump sets.
    analysis::CFG::ResolutionSummary Sum = Cov->cfg().resolutionSummary();
    std::string Unresolved;
    if (!Cov->cfg().targetsResolved())
      Unresolved = formatv(", %llu/%llu jumps non-exact "
                           "(%llu type-narrowed, %llu over-approximated)",
                           (unsigned long long)(Sum.TypeNarrowed +
                                                Sum.OverApproximated),
                           (unsigned long long)Sum.Commits,
                           (unsigned long long)Sum.TypeNarrowed,
                           (unsigned long long)Sum.OverApproximated);
    std::printf("%s: %s (%zu instructions, %u basic blocks%s); "
                "fault sites: %llu dead, %llu checked, %llu vulnerable\n",
                Path.c_str(), certificationStatusName(Cert.Status),
                Prog->code().size(), (unsigned)Cov->cfg().numBlocks(),
                Unresolved.c_str(),
                (unsigned long long)Sites.Dead,
                (unsigned long long)Sites.Checked,
                (unsigned long long)Sites.Vulnerable);
    if (Verbose && !Typed && !Cert.CheckerError.empty())
      std::printf("%s: note: type checker said: %s\n", Path.c_str(),
                  Cert.CheckerError.c_str());
  }
  return Bad ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = false;
  bool Verbose = false;
  bool Cfg = false;
  std::vector<std::string> Files;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(Argv[I], "--verbose") == 0)
      Verbose = true;
    else if (std::strcmp(Argv[I], "--cfg") == 0)
      Cfg = true;
    else if (std::strcmp(Argv[I], "--help") == 0)
      return usage();
    else if (Argv[I][0] == '-')
      return usage();
    else
      Files.push_back(Argv[I]);
  }
  if (Files.empty())
    return usage();

  int Rc = 0;
  for (const std::string &F : Files)
    Rc = std::max(Rc, lintFile(F, Json, Verbose, Cfg));
  return Rc;
}
