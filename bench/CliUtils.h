//===- bench/CliUtils.h - Shared CLI parsing and report-writing helpers ---===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Every bench harness parses the same kinds of flags and writes the same
// kinds of JSON reports. Two policies live here so they cannot drift:
//
//   - numeric flags parse strictly: the entire argument must be a base-10
//     integer, so '--threads abc' (or '8x', or '') is a usage error in
//     every harness instead of silently becoming 0;
//   - report files are written atomically — temp file in the same
//     directory, then rename — so a crashed or OOM-killed run can never
//     leave a truncated report for a workflow to upload. The actual
//     write lives in support/AtomicFile.h so non-bench code (the
//     certification server's memo store) links the same logic.
//
//===----------------------------------------------------------------------===//

#ifndef TALFT_BENCH_CLIUTILS_H
#define TALFT_BENCH_CLIUTILS_H

#include "support/AtomicFile.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace talft::cli {

/// Strict base-10 parse of the whole string \p V into \p Out.
inline bool parseU64(const char *V, uint64_t &Out) {
  if (!V || *V == '\0')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long N = std::strtoull(V, &End, 10);
  if (End == V || *End != '\0' || errno == ERANGE || V[0] == '-')
    return false;
  Out = N;
  return true;
}

/// Consumes the next argument as a strict u64: the common pattern of a
/// flag loop where \p I indexes the flag itself.
inline bool numArg(int Argc, char **Argv, int &I, uint64_t &Out) {
  if (I + 1 >= Argc)
    return false;
  return parseU64(Argv[++I], Out);
}

/// Strict comma-separated list of u64s ("1,4,16"); empty items reject.
inline bool parseU64List(const char *V, std::vector<uint64_t> &Out) {
  Out.clear();
  std::string S(V ? V : "");
  if (S.empty())
    return false;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    std::string Item =
        S.substr(Pos, Comma == std::string::npos ? Comma : Comma - Pos);
    uint64_t N;
    if (!parseU64(Item.c_str(), N))
      return false;
    Out.push_back(N);
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return true;
}

/// The execution-engine names every harness accepts, in ladder order;
/// also the set printed by engine-flag errors so they cannot drift from
/// the parser.
inline const char *engineNames() { return "reference, vm, jit"; }

inline bool isEngineName(const char *V) {
  return std::strcmp(V, "reference") == 0 || std::strcmp(V, "vm") == 0 ||
         std::strcmp(V, "jit") == 0;
}

/// Consumes the next argument as an engine name, with \p I indexing the
/// flag itself. A bare '--engine' (no value, or the next token is another
/// flag) and an unknown name are both usage errors that name the accepted
/// set — previously a trailing '--engine' fell through to the generic
/// usage line with no hint at what went wrong.
inline bool engineArg(int Argc, char **Argv, int &I, std::string &Out) {
  if (I + 1 >= Argc || Argv[I + 1][0] == '-') {
    std::fprintf(stderr, "%s needs a value (one of: %s)\n", Argv[I],
                 engineNames());
    return false;
  }
  const char *V = Argv[++I];
  if (!isEngineName(V)) {
    std::fprintf(stderr, "unknown engine '%s' (one of: %s)\n", V,
                 engineNames());
    return false;
  }
  Out = V;
  return true;
}

/// Writes \p Contents to \p Path atomically (support/AtomicFile.h): temp
/// file alongside the target, fflush, then rename, so the target is either
/// the old version or the complete new one — never a truncated report.
inline bool writeFileAtomic(const std::string &Path,
                            const std::string &Contents) {
  return support::writeFileAtomic(Path, Contents);
}

} // namespace talft::cli

#endif // TALFT_BENCH_CLIUTILS_H
