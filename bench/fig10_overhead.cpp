//===- bench/fig10_overhead.cpp - Figure 10 reproduction ------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 10, "Performance Normalized to Unprotected Version":
// for every benchmark kernel, the execution time of the TAL-FT compilation
// (with the green-before-blue ordering constraint) and of the TAL-FT
// compilation on the more aggressive hardware that correlates memory
// operations regardless of order ("TAL-FT without ordering"), both
// normalized to the unprotected baseline.
//
// The paper reports 1.34x average with ordering and 1.30x without on an
// Itanium 2; the shapes to reproduce are (a) overhead well under the naive
// 2x because the duplicated streams fill idle issue slots, and (b) a small
// additional gain from dropping the ordering constraint.
//
//   fig10_overhead [--json [FILE]]
//
//   --json [FILE] emit a machine-readable report (schema talft-bench-v1)
//                 to FILE (written atomically) or stdout, with the human
//                 table on stderr.
//
//===----------------------------------------------------------------------===//

#include "CliUtils.h"
#include "check/ProgramChecker.h"
#include "wile/Evaluate.h"
#include "wile/Kernels.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace talft;
using namespace talft::wile;

namespace {

struct Row {
  std::string Name;
  double Ft = 0;
  double FtNoOrder = 0;
  bool Typechecked = false;
};

std::optional<Row> runKernel(const Kernel &K) {
  Row R;
  R.Name = K.Name;

  TypeContext TCBase, TCFt;
  DiagnosticEngine Diags;
  Expected<CompiledProgram> Base =
      compileWile(TCBase, K.Source, CodegenMode::Unprotected, Diags);
  Expected<CompiledProgram> Ft =
      compileWile(TCFt, K.Source, CodegenMode::FaultTolerant, Diags);
  if (!Base || !Ft) {
    std::fprintf(stderr, "%s: compilation failed\n", K.Name.c_str());
    return std::nullopt;
  }

  Expected<ExecutionProfile> BaseProf = profileExecution(*Base, 50'000'000);
  Expected<ExecutionProfile> FtProf = profileExecution(*Ft, 50'000'000);
  if (!BaseProf || !FtProf) {
    std::fprintf(stderr, "%s: execution failed\n", K.Name.c_str());
    return std::nullopt;
  }
  if (!(BaseProf->Trace == FtProf->Trace)) {
    std::fprintf(stderr,
                 "%s: protected and unprotected outputs DISAGREE\n",
                 K.Name.c_str());
    return std::nullopt;
  }

  // The reliability guarantee: the fault-tolerant binary type-checks
  // (kernels with dynamic addressing fall outside the singleton-ref
  // discipline, exactly as in the paper's formal system).
  DiagnosticEngine CheckDiags;
  R.Typechecked = bool(checkProgram(TCFt, Ft->Prog, CheckDiags));
  if (R.Typechecked != K.Typable)
    std::fprintf(stderr, "%s: unexpected typability (%d vs %d)\n",
                 K.Name.c_str(), (int)R.Typechecked, (int)K.Typable);

  PipelineConfig Ordered;
  PipelineConfig Unordered;
  Unordered.EnforceColorOrdering = false;

  uint64_t BaseCycles = totalCycles(*Base, *BaseProf, Ordered);
  uint64_t FtCycles = totalCycles(*Ft, *FtProf, Ordered);
  uint64_t FtNoOrderCycles = totalCycles(*Ft, *FtProf, Unordered);
  if (BaseCycles == 0)
    return std::nullopt;
  R.Ft = (double)FtCycles / (double)BaseCycles;
  R.FtNoOrder = (double)FtNoOrderCycles / (double)BaseCycles;
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = false;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0) {
      Json = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "unknown argument: %s\nusage: %s [--json [FILE]]\n",
                   Argv[I], Argv[0]);
      return 2;
    }
  }
  FILE *Out = (Json && JsonPath.empty()) ? stderr : stdout;

  std::fprintf(Out, "Figure 10: Performance Normalized to Unprotected Version\n");
  std::fprintf(Out, "(paper: 1.34x average with ordering, 1.30x without)\n\n");
  std::fprintf(Out, "%-14s %-14s %10s %16s  %s\n", "benchmark", "suite",
               "TAL-FT", "TAL-FT no-order", "typechecked");
  std::fprintf(Out, "%.*s\n", 72,
               "------------------------------------------------------------"
               "------------");

  double LogFt = 0, LogNoOrder = 0;
  unsigned Count = 0;
  std::vector<std::pair<Row, std::string>> Rows;
  for (const Kernel &K : benchmarkKernels()) {
    std::optional<Row> R = runKernel(K);
    if (!R)
      return 1;
    std::fprintf(Out, "%-14s %-14s %9.2fx %15.2fx  %s\n", R->Name.c_str(),
                 K.Suite.c_str(), R->Ft, R->FtNoOrder,
                 R->Typechecked ? "yes" : "no (dynamic addressing)");
    LogFt += std::log(R->Ft);
    LogNoOrder += std::log(R->FtNoOrder);
    ++Count;
    Rows.push_back({*R, K.Suite});
  }
  double GeoFt = std::exp(LogFt / Count);
  double GeoNoOrder = std::exp(LogNoOrder / Count);
  std::fprintf(Out, "%.*s\n", 72,
               "------------------------------------------------------------"
               "------------");
  std::fprintf(Out, "%-29s %9.2fx %15.2fx\n", "geometric mean", GeoFt,
               GeoNoOrder);

  if (Json) {
    std::string S = "{\n";
    S += "  \"schema\": \"talft-bench-v1\",\n";
    S += "  \"benchmark\": \"fig10_overhead\",\n";
    S += "  \"unit\": \"overhead_vs_unprotected\",\n";
    S += "  \"kernels\": [\n";
    for (size_t I = 0; I != Rows.size(); ++I) {
      char Buf[256];
      std::snprintf(Buf, sizeof(Buf),
                    "    {\"name\": \"%s\", \"suite\": \"%s\", "
                    "\"ft\": %.4f, \"ft_no_order\": %.4f, "
                    "\"typechecked\": %s}%s\n",
                    Rows[I].first.Name.c_str(), Rows[I].second.c_str(),
                    Rows[I].first.Ft, Rows[I].first.FtNoOrder,
                    Rows[I].first.Typechecked ? "true" : "false",
                    I + 1 != Rows.size() ? "," : "");
      S += Buf;
    }
    S += "  ],\n";
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "  \"geomean\": {\"ft\": %.4f, \"ft_no_order\": %.4f}\n",
                  GeoFt, GeoNoOrder);
    S += Buf;
    S += "}\n";
    if (JsonPath.empty()) {
      std::fputs(S.c_str(), stdout);
    } else {
      if (!cli::writeFileAtomic(JsonPath, S)) {
        std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
        return 2;
      }
      std::fprintf(Out, "JSON report written to %s\n", JsonPath.c_str());
    }
  }
  return 0;
}
