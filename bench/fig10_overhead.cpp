//===- bench/fig10_overhead.cpp - Figure 10 reproduction ------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 10, "Performance Normalized to Unprotected Version":
// for every benchmark kernel, the execution time of the TAL-FT compilation
// (with the green-before-blue ordering constraint) and of the TAL-FT
// compilation on the more aggressive hardware that correlates memory
// operations regardless of order ("TAL-FT without ordering"), both
// normalized to the unprotected baseline.
//
// The paper reports 1.34x average with ordering and 1.30x without on an
// Itanium 2; the shapes to reproduce are (a) overhead well under the naive
// 2x because the duplicated streams fill idle issue slots, and (b) a small
// additional gain from dropping the ordering constraint.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "wile/Evaluate.h"
#include "wile/Kernels.h"

#include <cmath>
#include <cstdio>

using namespace talft;
using namespace talft::wile;

namespace {

struct Row {
  std::string Name;
  double Ft = 0;
  double FtNoOrder = 0;
  bool Typechecked = false;
};

std::optional<Row> runKernel(const Kernel &K) {
  Row R;
  R.Name = K.Name;

  TypeContext TCBase, TCFt;
  DiagnosticEngine Diags;
  Expected<CompiledProgram> Base =
      compileWile(TCBase, K.Source, CodegenMode::Unprotected, Diags);
  Expected<CompiledProgram> Ft =
      compileWile(TCFt, K.Source, CodegenMode::FaultTolerant, Diags);
  if (!Base || !Ft) {
    std::fprintf(stderr, "%s: compilation failed\n", K.Name.c_str());
    return std::nullopt;
  }

  Expected<ExecutionProfile> BaseProf = profileExecution(*Base, 50'000'000);
  Expected<ExecutionProfile> FtProf = profileExecution(*Ft, 50'000'000);
  if (!BaseProf || !FtProf) {
    std::fprintf(stderr, "%s: execution failed\n", K.Name.c_str());
    return std::nullopt;
  }
  if (!(BaseProf->Trace == FtProf->Trace)) {
    std::fprintf(stderr,
                 "%s: protected and unprotected outputs DISAGREE\n",
                 K.Name.c_str());
    return std::nullopt;
  }

  // The reliability guarantee: the fault-tolerant binary type-checks
  // (kernels with dynamic addressing fall outside the singleton-ref
  // discipline, exactly as in the paper's formal system).
  DiagnosticEngine CheckDiags;
  R.Typechecked = bool(checkProgram(TCFt, Ft->Prog, CheckDiags));
  if (R.Typechecked != K.Typable)
    std::fprintf(stderr, "%s: unexpected typability (%d vs %d)\n",
                 K.Name.c_str(), (int)R.Typechecked, (int)K.Typable);

  PipelineConfig Ordered;
  PipelineConfig Unordered;
  Unordered.EnforceColorOrdering = false;

  uint64_t BaseCycles = totalCycles(*Base, *BaseProf, Ordered);
  uint64_t FtCycles = totalCycles(*Ft, *FtProf, Ordered);
  uint64_t FtNoOrderCycles = totalCycles(*Ft, *FtProf, Unordered);
  if (BaseCycles == 0)
    return std::nullopt;
  R.Ft = (double)FtCycles / (double)BaseCycles;
  R.FtNoOrder = (double)FtNoOrderCycles / (double)BaseCycles;
  return R;
}

} // namespace

int main() {
  std::printf("Figure 10: Performance Normalized to Unprotected Version\n");
  std::printf("(paper: 1.34x average with ordering, 1.30x without)\n\n");
  std::printf("%-14s %-14s %10s %16s  %s\n", "benchmark", "suite", "TAL-FT",
              "TAL-FT no-order", "typechecked");
  std::printf("%.*s\n", 72,
              "------------------------------------------------------------"
              "------------");

  double LogFt = 0, LogNoOrder = 0;
  unsigned Count = 0;
  for (const Kernel &K : benchmarkKernels()) {
    std::optional<Row> R = runKernel(K);
    if (!R)
      return 1;
    std::printf("%-14s %-14s %9.2fx %15.2fx  %s\n", R->Name.c_str(),
                K.Suite.c_str(), R->Ft, R->FtNoOrder,
                R->Typechecked ? "yes" : "no (dynamic addressing)");
    LogFt += std::log(R->Ft);
    LogNoOrder += std::log(R->FtNoOrder);
    ++Count;
  }
  std::printf("%.*s\n", 72,
              "------------------------------------------------------------"
              "------------");
  std::printf("%-29s %9.2fx %15.2fx\n", "geometric mean",
              std::exp(LogFt / Count), std::exp(LogNoOrder / Count));
  return 0;
}
