//===- bench/ablation_memory.cpp - Memory-system sensitivity (Ablation B) -===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Two sweeps over the Figure 10 kernels:
//
//   1. load latency (L1-hit 2 cycles up to a 12-cycle L2-ish hit): as
//      memory latency grows to dominate block critical paths, the relative
//      cost of duplication shrinks — redundancy hides under the stalls;
//
//   2. memory ports (1, 2, 4): the duplicated stream doubles memory
//      traffic, so port-starved configurations amplify the overhead.
//
//===----------------------------------------------------------------------===//

#include "wile/Evaluate.h"
#include "wile/Kernels.h"

#include <cmath>
#include <cstdio>
#include <deque>

using namespace talft;
using namespace talft::wile;

namespace {

struct Prepared {
  CompiledProgram Base, Ft;
  ExecutionProfile BaseProf, FtProf;
};

double geomeanOverhead(const std::vector<Prepared> &Programs,
                       const PipelineConfig &Config) {
  double Log = 0;
  for (const Prepared &P : Programs) {
    uint64_t Base = totalCycles(P.Base, P.BaseProf, Config);
    uint64_t Ft = totalCycles(P.Ft, P.FtProf, Config);
    Log += std::log((double)Ft / (double)Base);
  }
  return std::exp(Log / Programs.size());
}

} // namespace

int main() {
  std::vector<Prepared> Programs;
  std::deque<TypeContext> Contexts;
  for (const Kernel &K : benchmarkKernels()) {
    DiagnosticEngine Diags;
    Expected<CompiledProgram> Base =
        compileWile(Contexts.emplace_back(), K.Source,
                    CodegenMode::Unprotected, Diags);
    Expected<CompiledProgram> Ft =
        compileWile(Contexts.emplace_back(), K.Source,
                    CodegenMode::FaultTolerant, Diags);
    if (!Base || !Ft)
      return 1;
    Expected<ExecutionProfile> BP = profileExecution(*Base, 50'000'000);
    Expected<ExecutionProfile> FP = profileExecution(*Ft, 50'000'000);
    if (!BP || !FP)
      return 1;
    Programs.push_back({std::move(*Base), std::move(*Ft), std::move(*BP),
                        std::move(*FP)});
  }

  std::printf("Ablation B1: TAL-FT overhead vs. load latency\n");
  std::printf("(geomean over the Figure 10 kernels, width 6)\n\n");
  std::printf("%12s %10s\n", "load cycles", "TAL-FT");
  std::printf("-----------------------\n");
  for (unsigned Lat : {1u, 2u, 4u, 8u, 12u}) {
    PipelineConfig Config;
    Config.LatLoad = Lat;
    std::printf("%12u %9.2fx\n", Lat, geomeanOverhead(Programs, Config));
  }

  std::printf("\nAblation B2: TAL-FT overhead vs. memory ports\n\n");
  std::printf("%10s %10s\n", "mem ports", "TAL-FT");
  std::printf("---------------------\n");
  for (unsigned Ports : {1u, 2u, 4u}) {
    PipelineConfig Config;
    Config.MemPorts = Ports;
    std::printf("%10u %9.2fx\n", Ports, geomeanOverhead(Programs, Config));
  }
  return 0;
}
