//===- bench/ablation_memory.cpp - Memory-system sensitivity (Ablation B) -===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Two sweeps over the Figure 10 kernels:
//
//   1. load latency (L1-hit 2 cycles up to a 12-cycle L2-ish hit): as
//      memory latency grows to dominate block critical paths, the relative
//      cost of duplication shrinks — redundancy hides under the stalls;
//
//   2. memory ports (1, 2, 4): the duplicated stream doubles memory
//      traffic, so port-starved configurations amplify the overhead.
//
//   ablation_memory [--json [FILE]]
//
//   --json [FILE] emit a machine-readable report (schema talft-bench-v1)
//                 to FILE (written atomically) or stdout, with the human
//                 table on stderr.
//
//===----------------------------------------------------------------------===//

#include "CliUtils.h"
#include "wile/Evaluate.h"
#include "wile/Kernels.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>

using namespace talft;
using namespace talft::wile;

namespace {

struct Prepared {
  CompiledProgram Base, Ft;
  ExecutionProfile BaseProf, FtProf;
};

double geomeanOverhead(const std::vector<Prepared> &Programs,
                       const PipelineConfig &Config) {
  double Log = 0;
  for (const Prepared &P : Programs) {
    uint64_t Base = totalCycles(P.Base, P.BaseProf, Config);
    uint64_t Ft = totalCycles(P.Ft, P.FtProf, Config);
    Log += std::log((double)Ft / (double)Base);
  }
  return std::exp(Log / Programs.size());
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = false;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0) {
      Json = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "unknown argument: %s\nusage: %s [--json [FILE]]\n",
                   Argv[I], Argv[0]);
      return 2;
    }
  }
  FILE *Out = (Json && JsonPath.empty()) ? stderr : stdout;

  std::vector<Prepared> Programs;
  std::deque<TypeContext> Contexts;
  for (const Kernel &K : benchmarkKernels()) {
    DiagnosticEngine Diags;
    Expected<CompiledProgram> Base =
        compileWile(Contexts.emplace_back(), K.Source,
                    CodegenMode::Unprotected, Diags);
    Expected<CompiledProgram> Ft =
        compileWile(Contexts.emplace_back(), K.Source,
                    CodegenMode::FaultTolerant, Diags);
    if (!Base || !Ft)
      return 1;
    Expected<ExecutionProfile> BP = profileExecution(*Base, 50'000'000);
    Expected<ExecutionProfile> FP = profileExecution(*Ft, 50'000'000);
    if (!BP || !FP)
      return 1;
    Programs.push_back({std::move(*Base), std::move(*Ft), std::move(*BP),
                        std::move(*FP)});
  }

  std::fprintf(Out, "Ablation B1: TAL-FT overhead vs. load latency\n");
  std::fprintf(Out, "(geomean over the Figure 10 kernels, width 6)\n\n");
  std::fprintf(Out, "%12s %10s\n", "load cycles", "TAL-FT");
  std::fprintf(Out, "-----------------------\n");
  std::string LatRows, PortRows;
  for (unsigned Lat : {1u, 2u, 4u, 8u, 12u}) {
    PipelineConfig Config;
    Config.LatLoad = Lat;
    double Geo = geomeanOverhead(Programs, Config);
    std::fprintf(Out, "%12u %9.2fx\n", Lat, Geo);
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "%s    {\"load_cycles\": %u, \"ft\": %.4f}",
                  LatRows.empty() ? "" : ",\n", Lat, Geo);
    LatRows += Buf;
  }

  std::fprintf(Out, "\nAblation B2: TAL-FT overhead vs. memory ports\n\n");
  std::fprintf(Out, "%10s %10s\n", "mem ports", "TAL-FT");
  std::fprintf(Out, "---------------------\n");
  for (unsigned Ports : {1u, 2u, 4u}) {
    PipelineConfig Config;
    Config.MemPorts = Ports;
    double Geo = geomeanOverhead(Programs, Config);
    std::fprintf(Out, "%10u %9.2fx\n", Ports, Geo);
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "%s    {\"mem_ports\": %u, \"ft\": %.4f}",
                  PortRows.empty() ? "" : ",\n", Ports, Geo);
    PortRows += Buf;
  }

  if (Json) {
    std::string S = "{\n";
    S += "  \"schema\": \"talft-bench-v1\",\n";
    S += "  \"benchmark\": \"ablation_memory\",\n";
    S += "  \"unit\": \"geomean_overhead_vs_unprotected\",\n";
    S += "  \"load_latency\": [\n" + LatRows + "\n  ],\n";
    S += "  \"mem_ports\": [\n" + PortRows + "\n  ]\n}\n";
    if (JsonPath.empty()) {
      std::fputs(S.c_str(), stdout);
    } else {
      if (!cli::writeFileAtomic(JsonPath, S)) {
        std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
        return 2;
      }
      std::fprintf(Out, "JSON report written to %s\n", JsonPath.c_str());
    }
  }
  return 0;
}
