//===- bench/convergence_speedup.cpp - Convergence early-exit payoff ------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Measures what the convergence early-exit (CampaignOptions::Converge)
// buys on the Theorem 4 sweep: every Figure 10 kernel is swept twice on
// the raw-semantics campaign — once with the fingerprint timeline and
// convergence probe enabled, once with full runs — and the harness
// compares wall-clock time and asserts the verdict tables and violation
// lists are bit-identical (the early exit is an optimization, never a
// semantic change). Masked faults dominate the sweep and re-join the
// reference run within a short divergence window, so the accelerated
// classifier replaces O(remaining program) per masked injection with
// O(window); the pruned sweep targets a >= 3x overall speedup.
//
//   convergence_speedup [--threads N] [--engine reference|vm|jit]
//                       [--no-prune] [--json [FILE]]
//
//   --threads N   worker threads (default 1; 0 = hardware concurrency).
//   --engine E    engine for the faulty continuations (default vm).
//   --no-prune    keep statically-dead sites in the simulated sweep
//                 (the headline number is measured on the pruned sweep,
//                 matching the nightly workflow).
//   --json [FILE] emit a machine-readable report (schema talft-bench-v1;
//                 the nightly workflow uploads it as
//                 BENCH_convergence.json) to FILE (written atomically)
//                 or stdout, with the human table on stderr.
//
// Exit status is nonzero if any kernel's accelerated verdict table,
// violation list or reference step count differs from its full-run
// baseline.
//
//===----------------------------------------------------------------------===//

#include "CliUtils.h"
#include "fault/Campaign.h"
#include "vm/Engine.h"
#include "vm/JitEngine.h"
#include "wile/Codegen.h"
#include "wile/Kernels.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace talft;

namespace {

struct Cli {
  unsigned Threads = 1;
  std::string Engine = "vm";
  bool Prune = true;
  bool Json = false;
  std::string JsonPath;
};

bool parseCli(int Argc, char **Argv, Cli &C) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--threads") == 0) {
      uint64_t N;
      if (!cli::numArg(Argc, Argv, I, N))
        return false;
      C.Threads = (unsigned)N;
    } else if (std::strcmp(A, "--engine") == 0) {
      if (!cli::engineArg(Argc, Argv, I, C.Engine))
        return false;
    } else if (std::strcmp(A, "--no-prune") == 0) {
      C.Prune = false;
    } else if (std::strcmp(A, "--json") == 0) {
      C.Json = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        C.JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", A);
      return false;
    }
  }
  return true;
}

struct KernelRow {
  std::string Name;
  std::string Suite;
  uint64_t Stride = 1;
  CampaignResult Full;
  CampaignResult Accel;
  bool Identical = false;
};

/// The whole-campaign cost: reference phase (which pays the timeline
/// recording when convergence is on) plus the injection phase.
double campaignSeconds(const CampaignResult &R) {
  return R.Stats.ReferenceSeconds + R.Stats.WallSeconds;
}

} // namespace

int main(int Argc, char **Argv) {
  Cli C;
  if (!parseCli(Argc, Argv, C)) {
    std::fprintf(stderr,
                 "usage: %s [--threads N] [--engine reference|vm|jit] "
                 "[--no-prune] [--json [FILE]]\n",
                 Argv[0]);
    return 2;
  }
  FILE *Out = (C.Json && C.JsonPath.empty()) ? stderr : stdout;

  std::fprintf(Out, "Convergence early-exit speedup on the Figure 10 sweep\n");
  std::fprintf(Out,
               "(%s sites; %u thread%s; %s engine; identical = verdict "
               "table, violations\nand reference steps match the full-run "
               "baseline bit-for-bit)\n\n",
               C.Prune ? "pruned" : "all", C.Threads,
               C.Threads == 1 ? "" : "s", C.Engine.c_str());
  std::fprintf(Out, "%-12s %10s %9s %9s %8s %9s %11s %8s %10s\n", "kernel",
               "injections", "full(s)", "accel(s)", "speedup", "exits",
               "mean win", "skips", "identical");
  std::fprintf(Out, "%.*s\n", 95,
               "------------------------------------------------------------"
               "-----------------------------------");

  std::vector<KernelRow> Rows;
  bool AllIdentical = true;
  double FullTotal = 0, AccelTotal = 0;
  for (const wile::Kernel &K : wile::benchmarkKernels()) {
    TypeContext TC;
    DiagnosticEngine Diags;
    Expected<wile::CompiledProgram> CP = wile::compileWile(
        TC, K.Source.c_str(), wile::CodegenMode::FaultTolerant, Diags);
    if (!CP) {
      std::fprintf(stderr, "%s: %s\n", K.Name.c_str(), CP.message().c_str());
      return 1;
    }
    std::unique_ptr<ExecEngine> Vm;
    const ExecEngine *E = &referenceEngine();
    if (C.Engine == "vm")
      Vm = vm::createEngine(CP->Prog.code());
    else if (C.Engine == "jit")
      Vm = vm::createJitEngine(CP->Prog.code());
    if (Vm)
      E = Vm.get();

    // Same adaptive stride rule as fault_coverage --fig10 (derived from
    // the engine-independent reference length).
    TheoremConfig Probe;
    Expected<MachineState> S0 = CP->Prog.initialState();
    if (Error Err = S0.takeError()) {
      std::fprintf(stderr, "%s: %s\n", K.Name.c_str(), Err.message().c_str());
      return 1;
    }
    MachineState S = *S0;
    RunResult RR =
        E->run(S, CP->Prog.exitAddress(), Probe.MaxSteps, Probe.Policy);
    if (RR.Status != RunStatus::Halted) {
      std::fprintf(stderr, "%s: reference run did not halt (%s)\n",
                   K.Name.c_str(), runStatusName(RR.Status));
      return 1;
    }
    uint64_t Stride = std::max<uint64_t>(1, RR.Steps / 12);

    TheoremConfig Config;
    Config.InjectionStride = Stride;
    CampaignOptions Opts;
    Opts.Threads = C.Threads;
    Opts.Engine = Vm.get();
    Opts.Prune = C.Prune;

    KernelRow Row;
    Row.Name = K.Name;
    Row.Suite = K.Suite;
    Row.Stride = Stride;
    Opts.Converge = false;
    Row.Full = runSingleFaultCampaign(CP->Prog, Config, Opts);
    Opts.Converge = true;
    Row.Accel = runSingleFaultCampaign(CP->Prog, Config, Opts);
    Row.Identical = Row.Full.Table == Row.Accel.Table &&
                    Row.Full.Violations == Row.Accel.Violations &&
                    Row.Full.ReferenceSteps == Row.Accel.ReferenceSteps &&
                    Row.Full.Ok == Row.Accel.Ok;
    AllIdentical &= Row.Identical;

    double FullS = campaignSeconds(Row.Full);
    double AccelS = campaignSeconds(Row.Accel);
    FullTotal += FullS;
    AccelTotal += AccelS;
    const CampaignStats &A = Row.Accel.Stats;
    double MeanWin =
        A.EarlyExits ? (double)A.WindowSum / (double)A.EarlyExits : 0.0;
    std::fprintf(Out,
                 "%-12s %10llu %9.4f %9.4f %7.2fx %9llu %11.2f %8llu %10s\n",
                 Row.Name.c_str(),
                 (unsigned long long)Row.Full.Table.total(), FullS, AccelS,
                 AccelS > 0 ? FullS / AccelS : 0.0,
                 (unsigned long long)A.EarlyExits, MeanWin,
                 (unsigned long long)A.LockstepSkips,
                 Row.Identical ? "yes" : "NO");
    Rows.push_back(std::move(Row));
  }

  double Overall = AccelTotal > 0 ? FullTotal / AccelTotal : 0.0;
  std::fprintf(Out, "%.*s\n", 95,
               "------------------------------------------------------------"
               "-----------------------------------");
  std::fprintf(Out, "%-12s %10s %9.4f %9.4f %7.2fx\n", "total", "", FullTotal,
               AccelTotal, Overall);
  std::fprintf(Out, "\n%s\n",
               AllIdentical
                   ? "All accelerated verdict tables are bit-identical to "
                     "the full-run baselines."
                   : "MISMATCH: an accelerated table diverged from its "
                     "baseline.");

  if (C.Json) {
    std::string S = "{\n";
    S += "  \"schema\": \"talft-bench-v1\",\n";
    S += "  \"benchmark\": \"convergence_speedup\",\n";
    S += "  \"unit\": \"campaign_seconds\",\n";
    S += "  \"engine\": \"" + C.Engine + "\",\n";
    S += "  \"threads\": " + std::to_string(C.Threads) + ",\n";
    S += "  \"prune\": " + std::string(C.Prune ? "true" : "false") + ",\n";
    S += "  \"tables_identical\": " +
         std::string(AllIdentical ? "true" : "false") + ",\n";
    S += "  \"kernels\": [\n";
    for (size_t I = 0; I != Rows.size(); ++I) {
      const KernelRow &R = Rows[I];
      const CampaignStats &A = R.Accel.Stats;
      double FullS = campaignSeconds(R.Full);
      double AccelS = campaignSeconds(R.Accel);
      double MeanWin =
          A.EarlyExits ? (double)A.WindowSum / (double)A.EarlyExits : 0.0;
      char Buf[768];
      std::snprintf(
          Buf, sizeof(Buf),
          "    {\"name\": \"%s\", \"suite\": \"%s\", \"ref_steps\": %llu, "
          "\"stride\": %llu, \"injections\": %llu, "
          "\"full_seconds\": %.6f, \"accel_seconds\": %.6f, "
          "\"accel_reference_seconds\": %.6f, "
          "\"speedup\": %.2f, \"tables_identical\": %s, "
          "\"convergence\": {\"early_exits\": %llu, \"mean_window\": %.2f, "
          "\"max_window\": %llu, \"steps_saved\": %llu, "
          "\"lockstep_skips\": %llu, \"lockstep_steps\": %llu}}%s\n",
          R.Name.c_str(), R.Suite.c_str(),
          (unsigned long long)R.Full.ReferenceSteps,
          (unsigned long long)R.Stride,
          (unsigned long long)R.Full.Table.total(), FullS, AccelS,
          A.ReferenceSeconds, AccelS > 0 ? FullS / AccelS : 0.0,
          R.Identical ? "true" : "false", (unsigned long long)A.EarlyExits,
          MeanWin, (unsigned long long)A.MaxWindow,
          (unsigned long long)A.StepsSaved,
          (unsigned long long)A.LockstepSkips,
          (unsigned long long)A.LockstepSteps,
          I + 1 != Rows.size() ? "," : "");
      S += Buf;
    }
    S += "  ],\n";
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "  \"totals\": {\"full_seconds\": %.6f, "
                  "\"accel_seconds\": %.6f, \"speedup\": %.2f}\n",
                  FullTotal, AccelTotal, Overall);
    S += Buf;
    S += "}\n";
    if (C.JsonPath.empty()) {
      std::fputs(S.c_str(), stdout);
    } else {
      if (!cli::writeFileAtomic(C.JsonPath, S)) {
        std::fprintf(stderr, "cannot write %s\n", C.JsonPath.c_str());
        return 2;
      }
      std::fprintf(Out, "JSON report written to %s\n", C.JsonPath.c_str());
    }
  }
  return AllIdentical ? 0 : 1;
}
