//===- bench/ablation_width.cpp - Issue-width sensitivity (Ablation A) ----===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The paper's 1.34x result hinges on the target being a *wide* in-order
// machine whose idle issue slots absorb the duplicated computation. This
// ablation sweeps the issue width from 1 to 8 and reports the geometric-
// mean TAL-FT overhead at each width: at width 1 duplication costs the
// naive ~2x; as the machine widens, the overhead falls towards the
// pair-serialization floor.
//
//   ablation_width [--json [FILE]]
//
//   --json [FILE] emit a machine-readable report (schema talft-bench-v1)
//                 to FILE (written atomically) or stdout, with the human
//                 table on stderr.
//
//===----------------------------------------------------------------------===//

#include "CliUtils.h"
#include "wile/Evaluate.h"
#include "wile/Kernels.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>

using namespace talft;
using namespace talft::wile;

int main(int Argc, char **Argv) {
  bool Json = false;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0) {
      Json = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "unknown argument: %s\nusage: %s [--json [FILE]]\n",
                   Argv[I], Argv[0]);
      return 2;
    }
  }
  FILE *Out = (Json && JsonPath.empty()) ? stderr : stdout;

  std::fprintf(Out, "Ablation A: TAL-FT overhead vs. issue width\n");
  std::fprintf(Out, "(geomean over the Figure 10 kernels; mem/branch ports "
                    "scale with width)\n\n");
  std::fprintf(Out, "%6s %10s %16s\n", "width", "TAL-FT", "TAL-FT no-order");
  std::fprintf(Out, "--------------------------------------\n");

  // Compile and profile once; cost under each width.
  struct Prepared {
    CompiledProgram Base, Ft;
    ExecutionProfile BaseProf, FtProf;
  };
  std::vector<Prepared> Programs;
  std::deque<TypeContext> Contexts;
  for (const Kernel &K : benchmarkKernels()) {
    DiagnosticEngine Diags;
    Expected<CompiledProgram> Base =
        compileWile(Contexts.emplace_back(), K.Source,
                    CodegenMode::Unprotected, Diags);
    Expected<CompiledProgram> Ft =
        compileWile(Contexts.emplace_back(), K.Source,
                    CodegenMode::FaultTolerant, Diags);
    if (!Base || !Ft)
      return 1;
    Expected<ExecutionProfile> BP = profileExecution(*Base, 50'000'000);
    Expected<ExecutionProfile> FP = profileExecution(*Ft, 50'000'000);
    if (!BP || !FP)
      return 1;
    Programs.push_back({std::move(*Base), std::move(*Ft), std::move(*BP),
                        std::move(*FP)});
  }

  std::string Rows;
  bool First = true;
  for (unsigned Width : {1u, 2u, 3u, 4u, 6u, 8u}) {
    PipelineConfig Ordered;
    Ordered.IssueWidth = Width;
    Ordered.MemPorts = std::max(1u, Width / 3);
    Ordered.BranchPorts = std::max(1u, Width / 2);
    PipelineConfig Unordered = Ordered;
    Unordered.EnforceColorOrdering = false;

    double LogFt = 0, LogNoOrder = 0;
    for (const Prepared &P : Programs) {
      uint64_t Base = totalCycles(P.Base, P.BaseProf, Ordered);
      uint64_t Ft = totalCycles(P.Ft, P.FtProf, Ordered);
      uint64_t FtU = totalCycles(P.Ft, P.FtProf, Unordered);
      LogFt += std::log((double)Ft / (double)Base);
      LogNoOrder += std::log((double)FtU / (double)Base);
    }
    double GeoFt = std::exp(LogFt / Programs.size());
    double GeoNoOrder = std::exp(LogNoOrder / Programs.size());
    std::fprintf(Out, "%6u %9.2fx %15.2fx\n", Width, GeoFt, GeoNoOrder);
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "%s    {\"width\": %u, \"ft\": %.4f, "
                  "\"ft_no_order\": %.4f}",
                  First ? "" : ",\n", Width, GeoFt, GeoNoOrder);
    Rows += Buf;
    First = false;
  }

  if (Json) {
    std::string S = "{\n";
    S += "  \"schema\": \"talft-bench-v1\",\n";
    S += "  \"benchmark\": \"ablation_width\",\n";
    S += "  \"unit\": \"geomean_overhead_vs_unprotected\",\n";
    S += "  \"widths\": [\n" + Rows + "\n  ]\n}\n";
    if (JsonPath.empty()) {
      std::fputs(S.c_str(), stdout);
    } else {
      if (!cli::writeFileAtomic(JsonPath, S)) {
        std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
        return 2;
      }
      std::fprintf(Out, "JSON report written to %s\n", JsonPath.c_str());
    }
  }
  return 0;
}
