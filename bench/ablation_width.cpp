//===- bench/ablation_width.cpp - Issue-width sensitivity (Ablation A) ----===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The paper's 1.34x result hinges on the target being a *wide* in-order
// machine whose idle issue slots absorb the duplicated computation. This
// ablation sweeps the issue width from 1 to 8 and reports the geometric-
// mean TAL-FT overhead at each width: at width 1 duplication costs the
// naive ~2x; as the machine widens, the overhead falls towards the
// pair-serialization floor.
//
//===----------------------------------------------------------------------===//

#include "wile/Evaluate.h"
#include "wile/Kernels.h"

#include <cmath>
#include <deque>
#include <cstdio>

using namespace talft;
using namespace talft::wile;

int main() {
  std::printf("Ablation A: TAL-FT overhead vs. issue width\n");
  std::printf("(geomean over the Figure 10 kernels; mem/branch ports scale "
              "with width)\n\n");
  std::printf("%6s %10s %16s\n", "width", "TAL-FT", "TAL-FT no-order");
  std::printf("--------------------------------------\n");

  // Compile and profile once; cost under each width.
  struct Prepared {
    CompiledProgram Base, Ft;
    ExecutionProfile BaseProf, FtProf;
  };
  std::vector<Prepared> Programs;
  std::deque<TypeContext> Contexts;
  for (const Kernel &K : benchmarkKernels()) {
    DiagnosticEngine Diags;
    Expected<CompiledProgram> Base =
        compileWile(Contexts.emplace_back(), K.Source,
                    CodegenMode::Unprotected, Diags);
    Expected<CompiledProgram> Ft =
        compileWile(Contexts.emplace_back(), K.Source,
                    CodegenMode::FaultTolerant, Diags);
    if (!Base || !Ft)
      return 1;
    Expected<ExecutionProfile> BP = profileExecution(*Base, 50'000'000);
    Expected<ExecutionProfile> FP = profileExecution(*Ft, 50'000'000);
    if (!BP || !FP)
      return 1;
    Programs.push_back({std::move(*Base), std::move(*Ft), std::move(*BP),
                        std::move(*FP)});
  }

  for (unsigned Width : {1u, 2u, 3u, 4u, 6u, 8u}) {
    PipelineConfig Ordered;
    Ordered.IssueWidth = Width;
    Ordered.MemPorts = std::max(1u, Width / 3);
    Ordered.BranchPorts = std::max(1u, Width / 2);
    PipelineConfig Unordered = Ordered;
    Unordered.EnforceColorOrdering = false;

    double LogFt = 0, LogNoOrder = 0;
    for (const Prepared &P : Programs) {
      uint64_t Base = totalCycles(P.Base, P.BaseProf, Ordered);
      uint64_t Ft = totalCycles(P.Ft, P.FtProf, Ordered);
      uint64_t FtU = totalCycles(P.Ft, P.FtProf, Unordered);
      LogFt += std::log((double)Ft / (double)Base);
      LogNoOrder += std::log((double)FtU / (double)Base);
    }
    std::printf("%6u %9.2fx %15.2fx\n", Width,
                std::exp(LogFt / Programs.size()),
                std::exp(LogNoOrder / Programs.size()));
  }
  return 0;
}
