//===- bench/vm_speedup.cpp - Reference vs. decoded-VM step rate ----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Measures what the decoded fast path (vm/Engine.h) buys over the
// structural reference interpreter: both engines execute the same
// compiled Figure 10 kernels to completion and we compare machine steps
// per second. The engines are observationally bit-identical (enforced by
// tests/vm_differential_test.cpp), so this is a pure substrate
// comparison — same programs, same traces, same step counts.
//
//   vm_speedup                 google-benchmark mode (one pair of
//                              benchmarks per kernel, usual gbench flags)
//   vm_speedup --json [FILE]   self-timed comparison written as a
//                              machine-readable report (schema
//                              talft-bench-v1) to FILE or stdout
//
//===----------------------------------------------------------------------===//

#include "CliUtils.h"
#include "sim/ExecEngine.h"
#include "vm/Engine.h"
#include "wile/Codegen.h"
#include "wile/Kernels.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace talft;

namespace {

constexpr uint64_t MaxSteps = 50'000'000;

/// One compiled kernel both engines run. The program (and the TypeContext
/// its types live in) sit behind stable pointers: the VM engine keeps a
/// pointer into the program's CodeMemory for its lifetime.
struct Subject {
  std::string Name;
  std::string Suite;
  std::unique_ptr<TypeContext> TC;
  std::unique_ptr<wile::CompiledProgram> CP;
  std::unique_ptr<ExecEngine> Vm;
  uint64_t Steps = 0; // reference run length (identical on both engines)
};

/// Compiles every kernel that builds and halts, with a VM bound to each.
std::vector<Subject> &subjects() {
  static std::vector<Subject> Subjects = [] {
    std::vector<Subject> Out;
    for (const wile::Kernel &K : wile::benchmarkKernels()) {
      Subject S;
      S.Name = K.Name;
      S.Suite = K.Suite;
      S.TC = std::make_unique<TypeContext>();
      DiagnosticEngine Diags;
      Expected<wile::CompiledProgram> CP = wile::compileWile(
          *S.TC, K.Source, wile::CodegenMode::FaultTolerant, Diags);
      if (!CP)
        continue;
      S.CP = std::make_unique<wile::CompiledProgram>(std::move(*CP));
      Expected<MachineState> M = S.CP->Prog.initialState();
      if (!M)
        continue;
      RunResult R = run(*M, S.CP->Prog.exitAddress(), MaxSteps);
      if (R.Status != RunStatus::Halted)
        continue;
      S.Steps = R.Steps;
      S.Vm = vm::createEngine(S.CP->Prog.code());
      Out.push_back(std::move(S));
    }
    return Out;
  }();
  return Subjects;
}

uint64_t runOnce(const ExecEngine &E, const Subject &S) {
  Expected<MachineState> M = S.CP->Prog.initialState();
  RunResult R = E.run(*M, S.CP->Prog.exitAddress(), MaxSteps, StepPolicy());
  benchmark::DoNotOptimize(R.Trace.data());
  return R.Steps;
}

// --- google-benchmark mode ---

void BM_Engine(benchmark::State &State, const ExecEngine &E,
               const Subject &S) {
  uint64_t Steps = 0;
  for (auto _ : State)
    Steps += runOnce(E, S);
  State.SetItemsProcessed((int64_t)Steps);
  State.SetLabel("machine steps/sec");
}

int gbenchMain(int Argc, char **Argv) {
  for (const Subject &S : subjects()) {
    benchmark::RegisterBenchmark(("BM_Reference/" + S.Name).c_str(),
                                 [&S](benchmark::State &St) {
                                   BM_Engine(St, referenceEngine(), S);
                                 });
    benchmark::RegisterBenchmark(("BM_Vm/" + S.Name).c_str(),
                                 [&S](benchmark::State &St) {
                                   BM_Engine(St, *S.Vm, S);
                                 });
  }
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// --- self-timed JSON mode ---

/// Steps per second over repeated full runs, self-timed until the sample
/// covers at least MinSeconds (after one warm-up run).
double stepsPerSecond(const ExecEngine &E, const Subject &S,
                      double MinSeconds) {
  using Clock = std::chrono::steady_clock;
  runOnce(E, S);
  uint64_t Steps = 0;
  Clock::time_point Start = Clock::now();
  double Elapsed = 0;
  do {
    Steps += runOnce(E, S);
    Elapsed = std::chrono::duration<double>(Clock::now() - Start).count();
  } while (Elapsed < MinSeconds);
  return (double)Steps / Elapsed;
}

int jsonMain(const std::string &Path) {
  std::string S = "{\n";
  S += "  \"schema\": \"talft-bench-v1\",\n";
  S += "  \"benchmark\": \"vm_speedup\",\n";
  S += "  \"unit\": \"machine_steps_per_second\",\n";
  S += "  \"kernels\": [\n";

  const std::vector<Subject> &Subs = subjects();
  size_t Largest = 0;
  for (size_t I = 1; I < Subs.size(); ++I)
    if (Subs[I].Steps > Subs[Largest].Steps)
      Largest = I;

  double LargestSpeedup = 0;
  for (size_t I = 0; I != Subs.size(); ++I) {
    const Subject &Sub = Subs[I];
    double Ref = stepsPerSecond(referenceEngine(), Sub, 0.2);
    double Vm = stepsPerSecond(*Sub.Vm, Sub, 0.2);
    double Speedup = Ref > 0 ? Vm / Ref : 0;
    if (I == Largest)
      LargestSpeedup = Speedup;
    char Buf[512];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"name\": \"%s\", \"suite\": \"%s\", "
                  "\"steps\": %llu, \"reference_steps_per_sec\": %.0f, "
                  "\"vm_steps_per_sec\": %.0f, \"speedup\": %.2f, "
                  "\"largest\": %s}%s\n",
                  Sub.Name.c_str(), Sub.Suite.c_str(),
                  (unsigned long long)Sub.Steps, Ref, Vm, Speedup,
                  I == Largest ? "true" : "false",
                  I + 1 != Subs.size() ? "," : "");
    S += Buf;
    std::fprintf(stderr, "%-12s %9llu steps  ref %12.0f/s  vm %12.0f/s  "
                         "speedup %.2fx\n",
                 Sub.Name.c_str(), (unsigned long long)Sub.Steps, Ref, Vm,
                 Speedup);
  }
  S += "  ],\n";
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "  \"largest_kernel\": {\"name\": \"%s\", \"speedup\": "
                "%.2f}\n",
                Subs.empty() ? "" : Subs[Largest].Name.c_str(),
                LargestSpeedup);
  S += Buf;
  S += "}\n";

  if (Path.empty()) {
    std::fputs(S.c_str(), stdout);
  } else {
    if (!cli::writeFileAtomic(Path, S)) {
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
      return 2;
    }
    std::fprintf(stderr, "JSON report written to %s\n", Path.c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0) {
      std::string Path;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        Path = Argv[I + 1];
      return jsonMain(Path);
    }
  }
  return gbenchMain(Argc, Argv);
}
