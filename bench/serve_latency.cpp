//===- bench/serve_latency.cpp - Cold vs warm serving latency -------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Measures what the certification server's memoization layer
// (src/serve/) buys on resubmission: an in-process server is started on
// a loopback socket, every Figure 10 kernel is submitted twice through
// the real line protocol — once cold (the campaign runs, sharded) and
// once warm (the content-addressed memo answers; zero shards run) — and
// the harness reports end-to-end client latency for both, asserting
// that the warm result is served from cache and that the cold and warm
// campaigns are bit-identical (verdict table, violation list, reference
// steps and program hash). The speedup column is the whole point of the
// memo store: warm latency is protocol + lookup, independent of
// campaign size.
//
//   serve_latency [--threads N] [--shards N] [--engine reference|vm|jit]
//                 [--prune] [--json [FILE]]
//
//   --threads N   campaign worker threads per shard (default 0 =
//                 hardware concurrency).
//   --shards N    shard partition served per campaign (default 4).
//   --engine E    engine for the faulty continuations (default vm).
//   --prune       discharge statically-dead sites before sweeping.
//   --json [FILE] emit a machine-readable report (schema talft-bench-v1;
//                 the nightly workflow uploads it as BENCH_serve.json)
//                 to FILE (written atomically) or stdout, with the human
//                 table on stderr.
//
// Exit status is nonzero if any warm submission misses the cache or any
// warm campaign differs from its cold baseline. Warm latency is mostly
// loopback round-trips, so the per-kernel speedup is noisy; the gate in
// CI runs tools/bench_compare.py with generous thresholds and leans on
// the tables_identical flag.
//
//===----------------------------------------------------------------------===//

#include "CliUtils.h"
#include "support/StringUtils.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "wile/Kernels.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace talft;

namespace {

struct Cli {
  unsigned Threads = 0;
  unsigned Shards = 4;
  std::string Engine = "vm";
  bool Prune = false;
  bool Json = false;
  std::string JsonPath;
};

bool parseCli(int Argc, char **Argv, Cli &C) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--threads") == 0) {
      uint64_t N;
      if (!cli::numArg(Argc, Argv, I, N))
        return false;
      C.Threads = (unsigned)N;
    } else if (std::strcmp(A, "--shards") == 0) {
      uint64_t N;
      if (!cli::numArg(Argc, Argv, I, N) || N == 0)
        return false;
      C.Shards = (unsigned)N;
    } else if (std::strcmp(A, "--engine") == 0) {
      if (!cli::engineArg(Argc, Argv, I, C.Engine))
        return false;
    } else if (std::strcmp(A, "--prune") == 0) {
      C.Prune = true;
    } else if (std::strcmp(A, "--json") == 0) {
      C.Json = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        C.JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", A);
      return false;
    }
  }
  return true;
}

struct KernelRow {
  std::string Name;
  std::string Suite;
  double ColdSeconds = 0;
  double WarmSeconds = 0;
  serve::SubmitOutcome Cold;
  serve::SubmitOutcome Warm;
  bool Identical = false;
};

bool sameCampaign(const CampaignResult &A, const CampaignResult &B) {
  return A.Ok == B.Ok && A.Table == B.Table && A.Violations == B.Violations &&
         A.ReferenceSteps == B.ReferenceSteps &&
         A.ProgramHash == B.ProgramHash;
}

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

std::string reportJson(const Cli &C, const std::vector<KernelRow> &Rows,
                       bool Identical) {
  std::string S = "{\n";
  S += "  \"schema\": \"talft-bench-v1\",\n";
  S += "  \"benchmark\": \"serve_latency\",\n";
  S += "  \"unit\": \"submit_seconds\",\n";
  S += "  \"engine\": \"" + C.Engine + "\",\n";
  S += "  \"threads\": " + std::to_string(C.Threads) + ",\n";
  S += "  \"shards\": " + std::to_string(C.Shards) + ",\n";
  S += "  \"prune\": " + std::string(C.Prune ? "true" : "false") + ",\n";
  S += "  \"tables_identical\": " + std::string(Identical ? "true" : "false") +
       ",\n";
  S += "  \"kernels\": [\n";
  double ColdTotal = 0, WarmTotal = 0;
  for (size_t I = 0; I != Rows.size(); ++I) {
    const KernelRow &R = Rows[I];
    ColdTotal += R.ColdSeconds;
    WarmTotal += R.WarmSeconds;
    S += formatv(
        "    {\"name\": \"%s\", \"suite\": \"%s\", "
        "\"injections\": %llu, \"shards\": %u, "
        "\"cold_seconds\": %.6f, \"warm_seconds\": %.6f, "
        "\"speedup\": %.2f, \"cold_cache\": \"%s\", "
        "\"warm_cache\": \"%s\", \"tables_identical\": %s}",
        R.Name.c_str(), R.Suite.c_str(),
        (unsigned long long)R.Cold.Campaign.Stats.Tasks,
        R.Cold.ShardsDone, R.ColdSeconds, R.WarmSeconds,
        R.WarmSeconds > 0 ? R.ColdSeconds / R.WarmSeconds : 0.0,
        R.Cold.Cache.c_str(), R.Warm.Cache.c_str(),
        R.Identical ? "true" : "false");
    S += I + 1 != Rows.size() ? ",\n" : "\n";
  }
  S += "  ],\n";
  S += formatv("  \"totals\": {\"cold_seconds\": %.6f, "
                    "\"warm_seconds\": %.6f, \"speedup\": %.2f}\n",
                    ColdTotal, WarmTotal,
                    WarmTotal > 0 ? ColdTotal / WarmTotal : 0.0);
  S += "}\n";
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  Cli C;
  if (!parseCli(Argc, Argv, C)) {
    std::fprintf(stderr,
                 "usage: %s [--threads N] [--shards N] "
                 "[--engine reference|vm|jit] [--prune] [--json [FILE]]\n",
                 Argv[0]);
    return 2;
  }
  FILE *Out = (C.Json && C.JsonPath.empty()) ? stderr : stdout;

  serve::ServerOptions SO;
  SO.CampaignThreads = C.Threads;
  SO.DefaultShards = C.Shards;
  serve::Server S(SO);
  std::string Err;
  if (!S.start(&Err)) {
    std::fprintf(stderr, "serve_latency: %s\n", Err.c_str());
    return 1;
  }

  std::fprintf(Out, "Cold vs warm certification-serving latency\n");
  std::fprintf(Out,
               "(in-process server on 127.0.0.1:%u; %u shard%s per "
               "campaign; %s engine;\n warm = resubmission answered by the "
               "content-addressed memo store)\n\n",
               S.port(), C.Shards, C.Shards == 1 ? "" : "s",
               C.Engine.c_str());
  std::fprintf(Out, "%-14s %11s %9s %9s %8s %7s %9s\n", "kernel",
               "injections", "cold(s)", "warm(s)", "speedup", "cache",
               "identical");
  std::fprintf(Out, "%.*s\n", 74,
               "----------------------------------------------------------"
               "----------------");

  std::vector<KernelRow> Rows;
  bool Ok = true;
  for (const wile::Kernel &K : wile::benchmarkKernels()) {
    serve::SubmitSpec Spec;
    Spec.Name = K.Name;
    Spec.Lang = "wile";
    Spec.Source = K.Source;
    Spec.Engine = C.Engine;
    Spec.Prune = C.Prune;
    Spec.Shards = C.Shards;

    KernelRow Row;
    Row.Name = K.Name;
    Row.Suite = K.Suite;

    auto T0 = std::chrono::steady_clock::now();
    Row.Cold = serve::submitProgram("127.0.0.1", S.port(), Spec);
    Row.ColdSeconds = secondsSince(T0);
    if (!Row.Cold.Error.empty() || !Row.Cold.GotResult) {
      std::fprintf(stderr, "%s: cold submit failed: %s\n", K.Name.c_str(),
                   Row.Cold.Error.c_str());
      Ok = false;
      continue;
    }

    auto T1 = std::chrono::steady_clock::now();
    Row.Warm = serve::submitProgram("127.0.0.1", S.port(), Spec);
    Row.WarmSeconds = secondsSince(T1);
    if (!Row.Warm.Error.empty() || !Row.Warm.GotResult) {
      std::fprintf(stderr, "%s: warm submit failed: %s\n", K.Name.c_str(),
                   Row.Warm.Error.c_str());
      Ok = false;
      continue;
    }

    Row.Identical = sameCampaign(Row.Cold.Campaign, Row.Warm.Campaign);
    if (Row.Warm.Cache != "hit") {
      std::fprintf(stderr, "%s: warm submission was not a cache hit (%s)\n",
                   K.Name.c_str(), Row.Warm.Cache.c_str());
      Ok = false;
    }
    if (Row.Warm.ShardEvents != 0) {
      std::fprintf(stderr, "%s: warm submission ran %u shard(s)\n",
                   K.Name.c_str(), Row.Warm.ShardEvents);
      Ok = false;
    }
    Ok &= Row.Identical;

    std::fprintf(Out, "%-14s %11llu %9.4f %9.4f %7.1fx %7s %9s\n",
                 Row.Name.c_str(),
                 (unsigned long long)Row.Cold.Campaign.Stats.Tasks,
                 Row.ColdSeconds, Row.WarmSeconds,
                 Row.WarmSeconds > 0 ? Row.ColdSeconds / Row.WarmSeconds : 0.0,
                 Row.Warm.Cache.c_str(), Row.Identical ? "yes" : "NO");
    Rows.push_back(std::move(Row));
  }
  S.stop();

  if (C.Json) {
    std::string Doc = reportJson(C, Rows, Ok);
    if (C.JsonPath.empty()) {
      std::fputs(Doc.c_str(), stdout);
    } else if (!cli::writeFileAtomic(C.JsonPath, Doc)) {
      std::fprintf(stderr, "serve_latency: cannot write %s\n",
                   C.JsonPath.c_str());
      return 1;
    }
  }
  if (!Ok) {
    std::fprintf(stderr, "\nserve_latency: FAILURE: cache or identity "
                         "contract violated\n");
    return 1;
  }
  return 0;
}
