//===- bench/throughput.cpp - Tooling throughput (Ablation C) -------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks for the toolchain itself: type-checking
// throughput (the paper argues the checker replaces fault-injection
// testing, so its cost matters), simulator step rate, the expression
// normalizer, and the end-to-end Wile compilation rate.
//
//   throughput [gbench flags] [--json [FILE]]
//
//   --json [FILE] run the benchmarks with google-benchmark's JSON
//                 reporter and wrap the result in a talft-bench-v1
//                 envelope written atomically to FILE (or stdout).
//                 Unknown flags are rejected (google-benchmark's own
//                 strict argument check runs either way).
//
//===----------------------------------------------------------------------===//

#include "CliUtils.h"
#include "check/ProgramChecker.h"
#include "fault/Theorems.h"
#include "sexpr/ExprNormalize.h"
#include "sim/Step.h"
#include "wile/Codegen.h"
#include "wile/Kernels.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

using namespace talft;

namespace {

/// The largest typable kernel, reused across benchmarks.
const wile::Kernel &jpegKernel() {
  for (const wile::Kernel &K : wile::benchmarkKernels())
    if (K.Name == "jpeg")
      return K;
  std::abort();
}

void BM_TypeCheckKernel(benchmark::State &State) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<wile::CompiledProgram> CP = wile::compileWile(
      TC, jpegKernel().Source, wile::CodegenMode::FaultTolerant, Diags);
  if (!CP) {
    State.SkipWithError("compilation failed");
    return;
  }
  uint64_t Insts = CP->Prog.code().size();
  for (auto _ : State) {
    DiagnosticEngine D;
    Expected<CheckedProgram> C = checkProgram(TC, CP->Prog, D);
    benchmark::DoNotOptimize(C);
    if (!C)
      State.SkipWithError("kernel failed to check");
  }
  State.SetItemsProcessed((int64_t)(State.iterations() * Insts));
  State.SetLabel("instructions/sec");
}
BENCHMARK(BM_TypeCheckKernel);

void BM_SimulatorSteps(benchmark::State &State) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<wile::CompiledProgram> CP = wile::compileWile(
      TC, jpegKernel().Source, wile::CodegenMode::FaultTolerant, Diags);
  if (!CP) {
    State.SkipWithError("compilation failed");
    return;
  }
  uint64_t Steps = 0;
  for (auto _ : State) {
    Expected<MachineState> S = CP->Prog.initialState();
    RunResult R = run(*S, CP->Prog.exitAddress(), 10'000'000);
    Steps += R.Steps;
    benchmark::DoNotOptimize(R.Trace.data());
  }
  State.SetItemsProcessed((int64_t)Steps);
  State.SetLabel("machine steps/sec");
}
BENCHMARK(BM_SimulatorSteps);

void BM_CompileKernel(benchmark::State &State) {
  for (auto _ : State) {
    TypeContext TC;
    DiagnosticEngine Diags;
    Expected<wile::CompiledProgram> CP = wile::compileWile(
        TC, jpegKernel().Source, wile::CodegenMode::FaultTolerant, Diags);
    benchmark::DoNotOptimize(CP);
    if (!CP)
      State.SkipWithError("compilation failed");
  }
  State.SetItemsProcessed((int64_t)State.iterations());
  State.SetLabel("compilations/sec");
}
BENCHMARK(BM_CompileKernel);

void BM_NormalizeExpressions(benchmark::State &State) {
  for (auto _ : State) {
    ExprContext Es;
    const Expr *X = Es.var("x", ExprKind::Int);
    const Expr *M = Es.var("m", ExprKind::Mem);
    const Expr *E = X;
    for (int I = 0; I != 24; ++I) {
      E = Es.binop(I % 3 == 0 ? Opcode::Mul : Opcode::Add, E,
                   Es.binop(Opcode::Sub, X, Es.intConst(I)));
      M = Es.upd(M, Es.binop(Opcode::Add, X, Es.intConst(8 * I)), E);
    }
    const Expr *S = Es.sel(M, Es.binop(Opcode::Add, X, Es.intConst(80)));
    benchmark::DoNotOptimize(normalize(Es, S));
    benchmark::DoNotOptimize(normalize(Es, E));
  }
  State.SetItemsProcessed((int64_t)State.iterations());
}
BENCHMARK(BM_NormalizeExpressions);

void BM_FaultInjectionRun(benchmark::State &State) {
  // One full faulty continuation per iteration: the unit of work of the
  // Theorem 4 sweep.
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
var n = 6; var acc = 0;
while (n != 0) { acc = acc + n; n = n - 1; }
output(acc);
)";
  Expected<wile::CompiledProgram> CP =
      wile::compileWile(TC, Src, wile::CodegenMode::FaultTolerant, Diags);
  Expected<CheckedProgram> Checked = checkProgram(TC, CP->Prog, Diags);
  if (!Checked) {
    State.SkipWithError("kernel failed to check");
    return;
  }
  TrackedRun Ref(TC, *Checked);
  if (Ref.start()) {
    State.SkipWithError("cannot start");
    return;
  }
  for (int I = 0; I != 10; ++I)
    Ref.stepOnce();
  TrackedRun::Snapshot Snap = Ref.snapshot();

  for (auto _ : State) {
    TrackedRun Run(TC, *Checked);
    (void)Run.start();
    Run.restore(Snap);
    Run.injectSingleFault(FaultSite::reg(Reg::general(0)), 0x1234);
    while (!Run.atExitBlock()) {
      StepResult SR = Run.stepOnce();
      if (SR.Status != StepStatus::Ok)
        break;
    }
    benchmark::DoNotOptimize(Run.trace().size());
  }
  State.SetItemsProcessed((int64_t)State.iterations());
  State.SetLabel("faulty runs/sec");
}
BENCHMARK(BM_FaultInjectionRun);

} // namespace

int main(int Argc, char **Argv) {
  // Peel off our --json [FILE] flag; everything else goes to
  // google-benchmark, whose ReportUnrecognizedArguments rejects strays.
  bool Json = false;
  std::string JsonPath;
  std::vector<char *> Args = {Argv[0]};
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0) {
      Json = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        JsonPath = Argv[++I];
    } else {
      Args.push_back(Argv[I]);
    }
  }
  int N = (int)Args.size();
  benchmark::Initialize(&N, Args.data());
  if (benchmark::ReportUnrecognizedArguments(N, Args.data()))
    return 1;

  if (!Json) {
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }

  std::ostringstream OS;
  benchmark::JSONReporter Reporter;
  Reporter.SetOutputStream(&OS);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();

  std::string S = "{\n";
  S += "  \"schema\": \"talft-bench-v1\",\n";
  S += "  \"benchmark\": \"throughput\",\n";
  S += "  \"google_benchmark\":\n";
  S += OS.str();
  S += "}\n";
  if (JsonPath.empty()) {
    std::fputs(S.c_str(), stdout);
  } else {
    if (!cli::writeFileAtomic(JsonPath, S)) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 2;
    }
    std::fprintf(stderr, "JSON report written to %s\n", JsonPath.c_str());
  }
  return 0;
}
