//===- bench/fault_coverage.cpp - Theorem 4 exhaustive sweep table --------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The paper's reliability claim is the Fault Tolerance theorem: on a
// well-typed program, every single transient fault either leaves the
// observable output unchanged (masked) or is detected before corrupt data
// becomes observable, with the faulty output a prefix of the fault-free
// output. This harness performs the exhaustive quantifier sweep —
// every reference-execution step x every fault site x every
// representative corruption value — over the hand-written example
// programs and a compiled kernel, and tabulates the verdicts. A single
// "silent corruption" cell would falsify the theorem; the paper's
// contribution is that type checking makes testing like this redundant
// ("perfect fault coverage relative to the fault model").
//
// The sweep runs on the parallel campaign engine (fault/Campaign.h):
//
//   fault_coverage [--threads N] [--stride N] [--engine E] [--json [FILE]]
//                  [--recover] [--checkpoint-interval N] [--retry-budget N]
//                  [--fig10] [--prune]
//
//   --threads N   worker threads (default 1; 0 = hardware concurrency).
//                 Verdict tables are bit-identical for every N.
//   --stride N    inject at every Nth reference state (default 1 for the
//                 TAL programs, 7 for the compiled kernel; the --fig10
//                 kernels pick an adaptive per-kernel stride).
//   --engine E    execution engine for the faulty continuations:
//                 'vm' (default, the decoded fast path), 'jit' (the
//                 native x86-64 tier, vm/JitEngine.h; falls back to vm
//                 on hosts without executable mappings and reports the
//                 fallback in the campaign JSON) or 'reference' (the
//                 structural interpreter). Engines are bit-identical by
//                 construction, so the verdicts cannot depend on this.
//   --recover     run the faulty continuations under the
//                 checkpoint/rollback layer (recover/RecoveringEngine.h):
//                 detected faults roll back and replay instead of
//                 fail-stopping, and the benign verdicts become
//                 masked / recovered / recovery-escalated — every
//                 recovered run's output is bit-identical to the
//                 fault-free trace.
//   --checkpoint-interval N
//                 checkpoint every Nth verified commit point (default 1).
//   --retry-budget N
//                 rollbacks per checkpoint before escalating (default 2).
//   --fig10       also sweep all fifteen Figure 10 kernels on the
//                 raw-semantics campaign (runSingleFaultCampaign), which
//                 covers the kernels the type checker rejects too.
//   --prune       discharge provably-dead injection sites statically
//                 (analysis/ZapCoverage.h) instead of simulating them;
//                 dead general-register zaps are tallied as
//                 statically-masked and control-register (d/pc) zaps as
//                 statically-masked or statically-detected per the
//                 d-protocol, and the verdict table folds bit-identically
//                 onto the unpruned one (masked + statically-masked and
//                 detected + statically-detected are invariant). The
//                 nightly workflow asserts exactly that.
//   --cfi-check   validate every committed indirect control transfer
//                 against the statically resolved per-jump target sets
//                 (analysis/CFG.h FLTA→MLTA ladder) in every engine.
//                 Record-only: verdict tables are bit-identical either
//                 way. A nonzero violation count is a hard analysis bug —
//                 the static sets missed a target a real run took.
//   --no-converge disable the convergence early-exit (fingerprint
//                 timeline + full-equality probe) in the classifier.
//                 Verdict tables are bit-identical either way — the
//                 nightly workflow asserts exactly that — so this is
//                 purely a baseline/escape hatch for timing the
//                 unaccelerated sweep.
//   --no-lanes    disable the batched structure-of-arrays lane engine
//                 (vm/LaneEngine.h) and classify every injection on the
//                 scalar path. Verdict tables are bit-identical either
//                 way — the lane-determinism CI job asserts exactly
//                 that — so this is purely a baseline/escape hatch for
//                 timing the unbatched sweep.
//   --lane-width N
//                 lanes advanced in lockstep per group (default 16).
//                 Any width yields the same verdict tables.
//   --shards N    deterministically partition every campaign's task list
//                 into N contiguous shards and run only one of them
//                 (fault/Campaign.h applyShardSlice semantics: shard I
//                 covers tasks [I*T/N, (I+1)*T/N); statically-pruned
//                 tallies land in shard 0). Folding the N shard tables
//                 with foldShardResult reproduces the unsharded table
//                 bit-identically — the serve tests assert exactly that.
//   --shard-index I
//                 which shard to run (default 0; must be < N).
//   --json [FILE] emit a machine-readable report (schema
//                 talft-fault-campaign-v8: v7 plus 'jit' in the engine
//                 enum and the per-campaign "jit" stats object
//                 (native, blocks_compiled, code_bytes, side_exits,
//                 simd_lane_width); v7 added the top-level
//                 "cfi_check" knob, the per-program "target_resolution"
//                 summary from the indirect-target ladder, the
//                 statically_detected verdict, the per-campaign "cfi"
//                 object and the "pruned_detected" stat; v6 added the
//                 top-level "shards"/"shard_index" knobs and, per
//                 campaign, the whole-program "program_hash", the "shard"
//                 provenance object and the lossless "window_sum"
//                 convergence counter; v5 added the top-level
//                 "lanes"/"lane_width" knobs and the per-campaign "lanes"
//                 stats object; v4 added the top-level "converge" knob
//                 and the per-campaign "convergence" stats object; v3
//                 added per-program "certification" from the analysis
//                 ladder and the statically_masked verdict / pruned
//                 stats) to FILE (written atomically), or stdout with the
//                 human table on stderr.
//
//===----------------------------------------------------------------------===//

#include "CliUtils.h"
#include "analysis/Certify.h"
#include "check/ProgramChecker.h"
#include "fault/Campaign.h"
#include "tal/Parser.h"
#include "vm/Engine.h"
#include "vm/JitEngine.h"
#include "wile/Codegen.h"
#include "wile/Kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace talft;

namespace {

// The Section 2.2 paired-store example.
const char *PairedStore = R"(
entry main
exit done
data { 256: int = 0 }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  mov r3, B 5
  mov r4, B 256
  stB r4, r3
  mov r5, G @done
  mov r6, B @done
  jmpG r5
  jmpB r6
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

// A loop with branches, stores and forwarding.
const char *CountdownLoop = R"(
entry main
exit done
data { 500: int = 0 }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 4
  mov r2, B 4
  mov r10, G @loop
  mov r11, B @loop
  jmpG r10
  jmpB r11
}
block loop {
  pre { forall n: int, m: mem;
        r1: (G, int, n); r2: (B, int, n);
        queue []; mem m }
  mov r20, G @done
  mov r21, B @done
  bzG r1, r20
  bzB r2, r21
  mov r3, G 500
  stG r3, r1
  mov r4, B 500
  stB r4, r2
  sub r1, r1, G 1
  sub r2, r2, B 1
  mov r10, G @loop
  mov r11, B @loop
  jmpG r10
  jmpB r11
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

struct Cli {
  unsigned Threads = 1;
  uint64_t Stride = 0; // 0 = per-program default
  std::string Engine = "vm";
  bool Json = false;
  std::string JsonPath; // empty = stdout
  bool Recover = false;
  uint64_t CheckpointInterval = 1;
  uint64_t RetryBudget = 2;
  bool Fig10 = false;
  bool Prune = false;
  bool CfiCheck = false;
  bool Converge = true;
  bool Lanes = true;
  unsigned LaneWidth = 16;
  unsigned Shards = 1;
  unsigned ShardIndex = 0;
};

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--stride N] "
               "[--engine reference|vm|jit] [--json [FILE]] [--recover] "
               "[--checkpoint-interval N] [--retry-budget N] [--fig10] "
               "[--prune] [--cfi-check] [--no-converge] [--no-lanes] "
               "[--lane-width N] [--shards N] [--shard-index I]\n",
               Argv0);
}

bool parseCli(int Argc, char **Argv, Cli &C) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    auto NumArg = [&](uint64_t &Out) { return cli::numArg(Argc, Argv, I, Out); };
    if (std::strcmp(A, "--threads") == 0) {
      uint64_t N;
      if (!NumArg(N))
        return false;
      C.Threads = (unsigned)N;
    } else if (std::strcmp(A, "--stride") == 0) {
      if (!NumArg(C.Stride) || C.Stride == 0)
        return false;
    } else if (std::strcmp(A, "--recover") == 0) {
      C.Recover = true;
    } else if (std::strcmp(A, "--checkpoint-interval") == 0) {
      if (!NumArg(C.CheckpointInterval) || C.CheckpointInterval == 0)
        return false;
    } else if (std::strcmp(A, "--retry-budget") == 0) {
      if (!NumArg(C.RetryBudget))
        return false;
    } else if (std::strcmp(A, "--fig10") == 0) {
      C.Fig10 = true;
    } else if (std::strcmp(A, "--prune") == 0) {
      C.Prune = true;
    } else if (std::strcmp(A, "--cfi-check") == 0) {
      C.CfiCheck = true;
    } else if (std::strcmp(A, "--no-converge") == 0) {
      C.Converge = false;
    } else if (std::strcmp(A, "--no-lanes") == 0) {
      C.Lanes = false;
    } else if (std::strcmp(A, "--lane-width") == 0) {
      uint64_t N;
      if (!NumArg(N) || N == 0)
        return false;
      C.LaneWidth = (unsigned)N;
    } else if (std::strcmp(A, "--shards") == 0) {
      uint64_t N;
      if (!NumArg(N) || N == 0)
        return false;
      C.Shards = (unsigned)N;
    } else if (std::strcmp(A, "--shard-index") == 0) {
      uint64_t N;
      if (!NumArg(N))
        return false;
      C.ShardIndex = (unsigned)N;
    } else if (std::strcmp(A, "--engine") == 0) {
      if (!cli::engineArg(Argc, Argv, I, C.Engine))
        return false;
    } else if (std::strcmp(A, "--json") == 0) {
      C.Json = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        C.JsonPath = Argv[++I];
    } else if (std::strcmp(A, "--help") == 0) {
      usage(Argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", A);
      return false;
    }
  }
  return true;
}

/// Where the human-readable table goes: stderr when JSON claims stdout.
FILE *tableStream(const Cli &C) {
  return (C.Json && C.JsonPath.empty()) ? stderr : stdout;
}

struct SweepRow {
  std::string Name;
  CampaignResult Result;
  uint64_t Stride = 1;
  /// Where the program landed on the certification ladder
  /// (analysis/Certify.h): typed, analysis-certified or inconsistent.
  analysis::CertificationStatus Certification =
      analysis::CertificationStatus::Typed;
  /// Per-jump indirect-target resolution tallies from the FLTA→MLTA
  /// ladder (analysis/CFG.h).
  analysis::CFG::ResolutionSummary Resolution;
};

void printRow(FILE *Out, const SweepRow &Row) {
  const CampaignResult &R = Row.Result;
  // The masked and detected columns fold in their statically-discharged
  // twins so the human table reads the same with and without --prune (the
  // JSON keeps them split).
  std::fprintf(Out,
               "%-18s %9llu %11llu %9llu %8llu %9llu %9llu %10s %8.2fs %11.0f\n",
               Row.Name.c_str(), (unsigned long long)R.ReferenceSteps,
               (unsigned long long)R.Table.total(),
               (unsigned long long)(R.Table[Verdict::Detected] +
                                    R.Table[Verdict::DetectedBadPrefix] +
                                    R.Table[Verdict::StaticallyDetected]),
               (unsigned long long)(R.Table[Verdict::Masked] +
                                    R.Table[Verdict::StaticallyMasked]),
               (unsigned long long)R.Table[Verdict::Recovered],
               (unsigned long long)R.Table[Verdict::RecoveryEscalated],
               R.Ok ? "0 (OK)" : "VIOLATED", R.Stats.WallSeconds,
               R.Stats.TriplesPerSecond);
  if (!R.Ok)
    for (const std::string &V : R.Violations)
      std::fprintf(stderr, "  %s\n", V.c_str());
}

/// The faulty-continuation engine for \p C: null means the structural
/// reference interpreter (CampaignOptions' default). Under '--engine jit'
/// on a host that cannot map code pages the JitEngine still constructs —
/// it runs on its embedded vm fallback and the campaign JSON reports
/// jit.native == false.
std::unique_ptr<ExecEngine> makeEngine(const Cli &C, const CodeMemory &Code) {
  if (C.Engine == "vm")
    return vm::createEngine(Code);
  if (C.Engine == "jit")
    return vm::createJitEngine(Code);
  return nullptr;
}

TheoremConfig sweepConfig(const Cli &C, uint64_t Stride) {
  TheoremConfig Config;
  Config.InjectionStride = Stride;
  Config.Recovery.Enabled = C.Recover;
  Config.Recovery.CheckpointInterval = C.CheckpointInterval;
  Config.Recovery.RetryBudget = C.RetryBudget;
  return Config;
}

bool runSweep(const Cli &C, const char *Name, uint64_t Stride, TypeContext &TC,
              const CheckedProgram &CP, std::vector<SweepRow> &Rows) {
  TheoremConfig Config = sweepConfig(C, Stride);
  CampaignOptions Opts;
  Opts.Threads = C.Threads;
  Opts.Prune = C.Prune;
  Opts.CfiCheck = C.CfiCheck;
  Opts.Converge = C.Converge;
  Opts.Lanes = C.Lanes;
  Opts.LaneWidth = C.LaneWidth;
  Opts.ShardCount = C.Shards;
  Opts.ShardIndex = C.ShardIndex;
  // Engines are bound to one CodeMemory, so they are built per program.
  std::unique_ptr<ExecEngine> Eng = makeEngine(C, CP.Prog->code());
  Opts.Engine = Eng.get();
  CampaignResult R = runFaultToleranceCampaign(TC, CP, Config, Opts);
  // The program type-checked to get here: top rung of the ladder. The
  // resolution summary still comes from the CFG — typed programs have
  // indirect jumps too.
  analysis::CFG::ResolutionSummary Res;
  if (Expected<analysis::CFG> G = analysis::CFG::build(*CP.Prog))
    Res = G->resolutionSummary();
  Rows.push_back({Name, std::move(R), Stride,
                  analysis::CertificationStatus::Typed, Res});
  printRow(tableStream(C), Rows.back());
  return Rows.back().Result.Ok;
}

bool sweepTal(const Cli &C, const char *Name, const char *Source,
              uint64_t Stride, std::vector<SweepRow> &Rows) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P = parseAndLayoutTalProgram(TC, Source, Diags);
  if (!P) {
    std::fprintf(stderr, "%s: %s\n", Name, P.message().c_str());
    return false;
  }
  Expected<CheckedProgram> CP = checkProgram(TC, *P, Diags);
  if (!CP) {
    std::fprintf(stderr, "%s: ill-typed:\n%s", Name, Diags.str().c_str());
    return false;
  }
  return runSweep(C, Name, Stride, TC, *CP, Rows);
}

bool sweepKernel(const Cli &C, const char *Name, const char *Source,
                 uint64_t Stride, std::vector<SweepRow> &Rows) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<wile::CompiledProgram> CP =
      wile::compileWile(TC, Source, wile::CodegenMode::FaultTolerant, Diags);
  if (!CP) {
    std::fprintf(stderr, "%s: %s\n", Name, CP.message().c_str());
    return false;
  }
  Expected<CheckedProgram> Checked = checkProgram(TC, CP->Prog, Diags);
  if (!Checked) {
    std::fprintf(stderr, "%s: ill-typed:\n%s", Name, Diags.str().c_str());
    return false;
  }
  return runSweep(C, Name, Stride, TC, *Checked, Rows);
}

/// The Figure 10 kernels on the raw-semantics campaign: typability is not
/// required, so all fifteen sweep — including the dynamically-addressed
/// kernels the checker rejects. The injection stride adapts to each
/// kernel's reference length so the sweep stays tractable; it is derived
/// from the (engine-independent) step count, so verdict tables still
/// cannot depend on the engine.
bool sweepFig10(const Cli &C, std::vector<SweepRow> &Rows) {
  bool Ok = true;
  for (const wile::Kernel &K : wile::benchmarkKernels()) {
    TypeContext TC;
    DiagnosticEngine Diags;
    Expected<wile::CompiledProgram> CP = wile::compileWile(
        TC, K.Source.c_str(), wile::CodegenMode::FaultTolerant, Diags);
    if (!CP) {
      std::fprintf(stderr, "%s: %s\n", K.Name.c_str(), CP.message().c_str());
      Ok = false;
      continue;
    }
    std::unique_ptr<ExecEngine> Eng = makeEngine(C, CP->Prog.code());
    const ExecEngine *E = Eng ? Eng.get() : &referenceEngine();

    // Probe the reference length to pick the stride (deterministic: step
    // counts are engine-independent by the engine contract).
    TheoremConfig Probe;
    uint64_t Stride = C.Stride;
    if (Stride == 0) {
      Expected<MachineState> S0 = CP->Prog.initialState();
      if (Error Err = S0.takeError()) {
        std::fprintf(stderr, "%s: %s\n", K.Name.c_str(),
                     Err.message().c_str());
        Ok = false;
        continue;
      }
      MachineState S = *S0;
      RunResult RR =
          E->run(S, CP->Prog.exitAddress(), Probe.MaxSteps, Probe.Policy);
      if (RR.Status != RunStatus::Halted) {
        std::fprintf(stderr, "%s: reference run did not halt (%s)\n",
                     K.Name.c_str(), runStatusName(RR.Status));
        Ok = false;
        continue;
      }
      Stride = std::max<uint64_t>(1, RR.Steps / 12);
    }

    TheoremConfig Config = sweepConfig(C, Stride);
    CampaignOptions Opts;
    Opts.Threads = C.Threads;
    Opts.Engine = Eng.get();
    Opts.Prune = C.Prune;
    Opts.CfiCheck = C.CfiCheck;
    Opts.Converge = C.Converge;
    Opts.Lanes = C.Lanes;
    Opts.LaneWidth = C.LaneWidth;
    Opts.ShardCount = C.Shards;
    Opts.ShardIndex = C.ShardIndex;
    CampaignResult R = runSingleFaultCampaign(CP->Prog, Config, Opts);
    // Raw-semantics sweeps report the certification rung the analysis
    // ladder assigns (Typed / AnalysisCertified / Inconsistent) instead
    // of the old ad-hoc rejected/unsupported booleans.
    analysis::Certification Cert = analysis::certifyProgram(TC, CP->Prog);
    Rows.push_back({K.Name, std::move(R), Stride, Cert.Status,
                    Cert.Resolution});
    printRow(tableStream(C), Rows.back());
    Ok &= Rows.back().Result.Ok;
  }
  return Ok;
}

std::string reportJson(const Cli &C, const std::vector<SweepRow> &Rows,
                       bool Ok) {
  std::string S = "{\n";
  S += "  \"schema\": \"talft-fault-campaign-v8\",\n";
  S += "  \"engine\": \"" + C.Engine + "\",\n";
  S += "  \"threads\": " + std::to_string(C.Threads) + ",\n";
  S += "  \"recover\": " + std::string(C.Recover ? "true" : "false") + ",\n";
  S += "  \"checkpoint_interval\": " + std::to_string(C.CheckpointInterval) +
       ",\n";
  S += "  \"retry_budget\": " + std::to_string(C.RetryBudget) + ",\n";
  S += "  \"prune\": " + std::string(C.Prune ? "true" : "false") + ",\n";
  S += "  \"cfi_check\": " + std::string(C.CfiCheck ? "true" : "false") + ",\n";
  S += "  \"converge\": " + std::string(C.Converge ? "true" : "false") + ",\n";
  S += "  \"lanes\": " + std::string(C.Lanes ? "true" : "false") + ",\n";
  S += "  \"lane_width\": " + std::to_string(C.LaneWidth) + ",\n";
  S += "  \"shards\": " + std::to_string(C.Shards) + ",\n";
  S += "  \"shard_index\": " + std::to_string(C.ShardIndex) + ",\n";
  S += "  \"ok\": " + std::string(Ok ? "true" : "false") + ",\n";
  S += "  \"programs\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    S += "    {\n      \"name\": \"" + Rows[I].Name + "\",\n";
    S += "      \"stride\": " + std::to_string(Rows[I].Stride) + ",\n";
    S += "      \"certification\": \"" +
         std::string(analysis::certificationStatusJsonKey(
             Rows[I].Certification)) +
         "\",\n";
    const analysis::CFG::ResolutionSummary &Res = Rows[I].Resolution;
    S += "      \"target_resolution\": {\"commits\": " +
         std::to_string(Res.Commits) +
         ", \"exact\": " + std::to_string(Res.Exact) +
         ", \"type_narrowed\": " + std::to_string(Res.TypeNarrowed) +
         ", \"over_approximated\": " + std::to_string(Res.OverApproximated) +
         ", \"unresolved_targets\": " + std::to_string(Res.UnresolvedTargets) +
         "},\n";
    S += "      \"campaign\":\n";
    S += campaignToJson(Rows[I].Result, 6);
    S += "\n    }";
    S += I + 1 != Rows.size() ? ",\n" : "\n";
  }
  S += "  ]\n}\n";
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  Cli C;
  if (!parseCli(Argc, Argv, C)) {
    usage(Argv[0]);
    return 2;
  }

  FILE *Out = tableStream(C);
  std::fprintf(Out, "Theorem 4 exhaustive single-fault sweep%s\n",
               C.Recover ? " (checkpoint/rollback recovery enabled)" : "");
  std::fprintf(Out, "(every step x fault site x representative corruption; "
                    "'violations' must be 0; %u thread%s; %s engine%s)\n\n",
               C.Threads, C.Threads == 1 ? "" : "s", C.Engine.c_str(),
               C.Recover ? "; recovery on" : "");
  std::fprintf(Out, "%-18s %9s %11s %9s %8s %9s %9s %10s %9s %11s\n",
               "program", "ref steps", "injections", "detected", "masked",
               "recovered", "escalated", "violations", "wall", "triples/s");
  std::fprintf(Out, "%.*s\n", 112,
               "----------------------------------------------------------"
               "------------------------------------------------------");

  std::vector<SweepRow> Rows;
  bool Ok = true;
  uint64_t TalStride = C.Stride ? C.Stride : 1;
  Ok &= sweepTal(C, "paired-store", PairedStore, TalStride, Rows);
  Ok &= sweepTal(C, "countdown-loop", CountdownLoop, TalStride, Rows);

  // A compiled kernel: stride the injection points to keep the sweep
  // tractable (default every 7th reference state; all sites and values at
  // each).
  const char *TinyKernel = R"(
var n = 3; var acc = 0;
while (n != 0) { acc = acc + n * n; n = n - 1; }
output(acc);
)";
  Ok &= sweepKernel(C, "wile-sum-squares", TinyKernel,
                    C.Stride ? C.Stride : 7, Rows);

  if (C.Fig10)
    Ok &= sweepFig10(C, Rows);

  std::fprintf(Out, "\n%s\n",
               Ok ? (C.Recover
                         ? "All sweeps clean: every injected fault was "
                           "masked, recovered with a bit-identical trace, "
                           "or escalated with a verified prefix."
                         : "All sweeps clean: every injected fault was "
                           "masked or detected with a prefix trace.")
                  : "VIOLATIONS FOUND");

  if (C.Json) {
    std::string Json = reportJson(C, Rows, Ok);
    if (C.JsonPath.empty()) {
      std::fputs(Json.c_str(), stdout);
    } else {
      if (!cli::writeFileAtomic(C.JsonPath, Json)) {
        std::fprintf(stderr, "cannot write %s\n", C.JsonPath.c_str());
        return 2;
      }
      std::fprintf(Out, "JSON report written to %s\n", C.JsonPath.c_str());
    }
  }
  return Ok ? 0 : 1;
}
