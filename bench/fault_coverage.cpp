//===- bench/fault_coverage.cpp - Theorem 4 exhaustive sweep table --------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The paper's reliability claim is the Fault Tolerance theorem: on a
// well-typed program, every single transient fault either leaves the
// observable output unchanged (masked) or is detected before corrupt data
// becomes observable, with the faulty output a prefix of the fault-free
// output. This harness performs the exhaustive quantifier sweep —
// every reference-execution step x every fault site x every
// representative corruption value — over the hand-written example
// programs and a compiled kernel, and tabulates the verdicts. A single
// "silent corruption" cell would falsify the theorem; the paper's
// contribution is that type checking makes testing like this redundant
// ("perfect fault coverage relative to the fault model").
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "fault/Theorems.h"
#include "tal/Parser.h"
#include "wile/Codegen.h"

#include <cstdio>

using namespace talft;

namespace {

// The Section 2.2 paired-store example.
const char *PairedStore = R"(
entry main
exit done
data { 256: int = 0 }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  mov r3, B 5
  mov r4, B 256
  stB r4, r3
  mov r5, G @done
  mov r6, B @done
  jmpG r5
  jmpB r6
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

// A loop with branches, stores and forwarding.
const char *CountdownLoop = R"(
entry main
exit done
data { 500: int = 0 }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 4
  mov r2, B 4
  mov r10, G @loop
  mov r11, B @loop
  jmpG r10
  jmpB r11
}
block loop {
  pre { forall n: int, m: mem;
        r1: (G, int, n); r2: (B, int, n);
        queue []; mem m }
  mov r20, G @done
  mov r21, B @done
  bzG r1, r20
  bzB r2, r21
  mov r3, G 500
  stG r3, r1
  mov r4, B 500
  stB r4, r2
  sub r1, r1, G 1
  sub r2, r2, B 1
  mov r10, G @loop
  mov r11, B @loop
  jmpG r10
  jmpB r11
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

bool sweepTal(const char *Name, const char *Source,
              const TheoremConfig &Config) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P = parseAndLayoutTalProgram(TC, Source, Diags);
  if (!P) {
    std::fprintf(stderr, "%s: %s\n", Name, P.message().c_str());
    return false;
  }
  Expected<CheckedProgram> CP = checkProgram(TC, *P, Diags);
  if (!CP) {
    std::fprintf(stderr, "%s: ill-typed:\n%s", Name, Diags.str().c_str());
    return false;
  }
  TheoremReport R = checkFaultTolerance(TC, *CP, Config);
  std::printf("%-18s %9llu %11llu %9llu %8llu %10s\n", Name,
              (unsigned long long)R.ReferenceSteps,
              (unsigned long long)R.InjectionsTested,
              (unsigned long long)R.DetectedFaults,
              (unsigned long long)R.MaskedFaults,
              R.Ok ? "0 (OK)" : "VIOLATED");
  if (!R.Ok)
    for (const std::string &V : R.Violations)
      std::fprintf(stderr, "  %s\n", V.c_str());
  return R.Ok;
}

bool sweepKernel(const char *Name, const char *Source,
                 const TheoremConfig &Config) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<wile::CompiledProgram> CP =
      wile::compileWile(TC, Source, wile::CodegenMode::FaultTolerant, Diags);
  if (!CP) {
    std::fprintf(stderr, "%s: %s\n", Name, CP.message().c_str());
    return false;
  }
  Expected<CheckedProgram> Checked = checkProgram(TC, CP->Prog, Diags);
  if (!Checked) {
    std::fprintf(stderr, "%s: ill-typed:\n%s", Name, Diags.str().c_str());
    return false;
  }
  TheoremReport R = checkFaultTolerance(TC, *Checked, Config);
  std::printf("%-18s %9llu %11llu %9llu %8llu %10s\n", Name,
              (unsigned long long)R.ReferenceSteps,
              (unsigned long long)R.InjectionsTested,
              (unsigned long long)R.DetectedFaults,
              (unsigned long long)R.MaskedFaults,
              R.Ok ? "0 (OK)" : "VIOLATED");
  if (!R.Ok)
    for (const std::string &V : R.Violations)
      std::fprintf(stderr, "  %s\n", V.c_str());
  return R.Ok;
}

} // namespace

int main() {
  std::printf("Theorem 4 exhaustive single-fault sweep\n");
  std::printf("(every step x fault site x representative corruption; "
              "'violations' must be 0)\n\n");
  std::printf("%-18s %9s %11s %9s %8s %10s\n", "program", "ref steps",
              "injections", "detected", "masked", "violations");
  std::printf("%.*s\n", 70,
              "----------------------------------------------------------"
              "------------");

  bool Ok = true;
  TheoremConfig Exhaustive;
  Ok &= sweepTal("paired-store", PairedStore, Exhaustive);
  Ok &= sweepTal("countdown-loop", CountdownLoop, Exhaustive);

  // A compiled kernel: stride the injection points to keep the sweep
  // tractable (every 7th reference state; all sites and values at each).
  TheoremConfig Strided;
  Strided.InjectionStride = 7;
  const char *TinyKernel = R"(
var n = 3; var acc = 0;
while (n != 0) { acc = acc + n * n; n = n - 1; }
output(acc);
)";
  Ok &= sweepKernel("wile-sum-squares", TinyKernel, Strided);

  std::printf("\n%s\n", Ok ? "All sweeps clean: every injected fault was "
                             "masked or detected with a prefix trace."
                           : "VIOLATIONS FOUND");
  return Ok ? 0 : 1;
}
