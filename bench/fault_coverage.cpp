//===- bench/fault_coverage.cpp - Theorem 4 exhaustive sweep table --------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The paper's reliability claim is the Fault Tolerance theorem: on a
// well-typed program, every single transient fault either leaves the
// observable output unchanged (masked) or is detected before corrupt data
// becomes observable, with the faulty output a prefix of the fault-free
// output. This harness performs the exhaustive quantifier sweep —
// every reference-execution step x every fault site x every
// representative corruption value — over the hand-written example
// programs and a compiled kernel, and tabulates the verdicts. A single
// "silent corruption" cell would falsify the theorem; the paper's
// contribution is that type checking makes testing like this redundant
// ("perfect fault coverage relative to the fault model").
//
// The sweep runs on the parallel campaign engine (fault/Campaign.h):
//
//   fault_coverage [--threads N] [--stride N] [--engine E] [--json [FILE]]
//
//   --threads N   worker threads (default 1; 0 = hardware concurrency).
//                 Verdict tables are bit-identical for every N.
//   --stride N    inject at every Nth reference state (default 1 for the
//                 TAL programs, 7 for the compiled kernel).
//   --engine E    execution engine for the faulty continuations:
//                 'vm' (default, the decoded fast path) or 'reference'
//                 (the structural interpreter). Engines are bit-identical
//                 by construction, so the verdicts cannot depend on this.
//   --json [FILE] emit a machine-readable report (schema
//                 talft-fault-campaign-v1) to FILE, or stdout with the
//                 human table on stderr.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "fault/Campaign.h"
#include "tal/Parser.h"
#include "vm/Engine.h"
#include "wile/Codegen.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace talft;

namespace {

// The Section 2.2 paired-store example.
const char *PairedStore = R"(
entry main
exit done
data { 256: int = 0 }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  mov r3, B 5
  mov r4, B 256
  stB r4, r3
  mov r5, G @done
  mov r6, B @done
  jmpG r5
  jmpB r6
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

// A loop with branches, stores and forwarding.
const char *CountdownLoop = R"(
entry main
exit done
data { 500: int = 0 }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 4
  mov r2, B 4
  mov r10, G @loop
  mov r11, B @loop
  jmpG r10
  jmpB r11
}
block loop {
  pre { forall n: int, m: mem;
        r1: (G, int, n); r2: (B, int, n);
        queue []; mem m }
  mov r20, G @done
  mov r21, B @done
  bzG r1, r20
  bzB r2, r21
  mov r3, G 500
  stG r3, r1
  mov r4, B 500
  stB r4, r2
  sub r1, r1, G 1
  sub r2, r2, B 1
  mov r10, G @loop
  mov r11, B @loop
  jmpG r10
  jmpB r11
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

struct Cli {
  unsigned Threads = 1;
  uint64_t Stride = 0; // 0 = per-program default
  bool UseVm = true;
  bool Json = false;
  std::string JsonPath; // empty = stdout
};

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--stride N] "
               "[--engine reference|vm] [--json [FILE]]\n",
               Argv0);
}

bool parseCli(int Argc, char **Argv, Cli &C) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    auto NumArg = [&](uint64_t &Out) {
      if (I + 1 >= Argc)
        return false;
      const char *V = Argv[++I];
      char *End = nullptr;
      Out = std::strtoull(V, &End, 10);
      return End != V && *End == '\0';
    };
    if (std::strcmp(A, "--threads") == 0) {
      uint64_t N;
      if (!NumArg(N))
        return false;
      C.Threads = (unsigned)N;
    } else if (std::strcmp(A, "--stride") == 0) {
      if (!NumArg(C.Stride) || C.Stride == 0)
        return false;
    } else if (std::strcmp(A, "--engine") == 0) {
      if (I + 1 >= Argc)
        return false;
      const char *V = Argv[++I];
      if (std::strcmp(V, "vm") == 0)
        C.UseVm = true;
      else if (std::strcmp(V, "reference") == 0)
        C.UseVm = false;
      else
        return false;
    } else if (std::strcmp(A, "--json") == 0) {
      C.Json = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        C.JsonPath = Argv[++I];
    } else if (std::strcmp(A, "--help") == 0) {
      usage(Argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", A);
      return false;
    }
  }
  return true;
}

/// Where the human-readable table goes: stderr when JSON claims stdout.
FILE *tableStream(const Cli &C) {
  return (C.Json && C.JsonPath.empty()) ? stderr : stdout;
}

struct SweepRow {
  std::string Name;
  CampaignResult Result;
  uint64_t Stride = 1;
};

void printRow(FILE *Out, const SweepRow &Row) {
  const CampaignResult &R = Row.Result;
  std::fprintf(Out, "%-18s %9llu %11llu %9llu %8llu %10s %8.2fs %11.0f\n",
               Row.Name.c_str(), (unsigned long long)R.ReferenceSteps,
               (unsigned long long)R.Table.total(),
               (unsigned long long)(R.Table[Verdict::Detected] +
                                    R.Table[Verdict::DetectedBadPrefix]),
               (unsigned long long)R.Table[Verdict::Masked],
               R.Ok ? "0 (OK)" : "VIOLATED", R.Stats.WallSeconds,
               R.Stats.TriplesPerSecond);
  if (!R.Ok)
    for (const std::string &V : R.Violations)
      std::fprintf(stderr, "  %s\n", V.c_str());
}

bool runSweep(const Cli &C, const char *Name, uint64_t Stride, TypeContext &TC,
              const CheckedProgram &CP, std::vector<SweepRow> &Rows) {
  TheoremConfig Config;
  Config.InjectionStride = Stride;
  CampaignOptions Opts;
  Opts.Threads = C.Threads;
  // The VM engine is bound to one CodeMemory, so it is built per program.
  std::unique_ptr<ExecEngine> Vm;
  if (C.UseVm) {
    Vm = vm::createEngine(CP.Prog->code());
    Opts.Engine = Vm.get();
  }
  CampaignResult R = runFaultToleranceCampaign(TC, CP, Config, Opts);
  Rows.push_back({Name, std::move(R), Stride});
  printRow(tableStream(C), Rows.back());
  return Rows.back().Result.Ok;
}

bool sweepTal(const Cli &C, const char *Name, const char *Source,
              uint64_t Stride, std::vector<SweepRow> &Rows) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P = parseAndLayoutTalProgram(TC, Source, Diags);
  if (!P) {
    std::fprintf(stderr, "%s: %s\n", Name, P.message().c_str());
    return false;
  }
  Expected<CheckedProgram> CP = checkProgram(TC, *P, Diags);
  if (!CP) {
    std::fprintf(stderr, "%s: ill-typed:\n%s", Name, Diags.str().c_str());
    return false;
  }
  return runSweep(C, Name, Stride, TC, *CP, Rows);
}

bool sweepKernel(const Cli &C, const char *Name, const char *Source,
                 uint64_t Stride, std::vector<SweepRow> &Rows) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<wile::CompiledProgram> CP =
      wile::compileWile(TC, Source, wile::CodegenMode::FaultTolerant, Diags);
  if (!CP) {
    std::fprintf(stderr, "%s: %s\n", Name, CP.message().c_str());
    return false;
  }
  Expected<CheckedProgram> Checked = checkProgram(TC, CP->Prog, Diags);
  if (!Checked) {
    std::fprintf(stderr, "%s: ill-typed:\n%s", Name, Diags.str().c_str());
    return false;
  }
  return runSweep(C, Name, Stride, TC, *Checked, Rows);
}

std::string reportJson(const Cli &C, const std::vector<SweepRow> &Rows,
                       bool Ok) {
  std::string S = "{\n";
  S += "  \"schema\": \"talft-fault-campaign-v1\",\n";
  S += "  \"engine\": \"" + std::string(C.UseVm ? "vm" : "reference") + "\",\n";
  S += "  \"threads\": " + std::to_string(C.Threads) + ",\n";
  S += "  \"ok\": " + std::string(Ok ? "true" : "false") + ",\n";
  S += "  \"programs\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    S += "    {\n      \"name\": \"" + Rows[I].Name + "\",\n";
    S += "      \"stride\": " + std::to_string(Rows[I].Stride) + ",\n";
    S += "      \"campaign\":\n";
    S += campaignToJson(Rows[I].Result, 6);
    S += "\n    }";
    S += I + 1 != Rows.size() ? ",\n" : "\n";
  }
  S += "  ]\n}\n";
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  Cli C;
  if (!parseCli(Argc, Argv, C)) {
    usage(Argv[0]);
    return 2;
  }

  FILE *Out = tableStream(C);
  std::fprintf(Out, "Theorem 4 exhaustive single-fault sweep\n");
  std::fprintf(Out, "(every step x fault site x representative corruption; "
                    "'violations' must be 0; %u thread%s; %s engine)\n\n",
               C.Threads, C.Threads == 1 ? "" : "s",
               C.UseVm ? "vm" : "reference");
  std::fprintf(Out, "%-18s %9s %11s %9s %8s %10s %9s %11s\n", "program",
               "ref steps", "injections", "detected", "masked", "violations",
               "wall", "triples/s");
  std::fprintf(Out, "%.*s\n", 92,
               "----------------------------------------------------------"
               "----------------------------------");

  std::vector<SweepRow> Rows;
  bool Ok = true;
  uint64_t TalStride = C.Stride ? C.Stride : 1;
  Ok &= sweepTal(C, "paired-store", PairedStore, TalStride, Rows);
  Ok &= sweepTal(C, "countdown-loop", CountdownLoop, TalStride, Rows);

  // A compiled kernel: stride the injection points to keep the sweep
  // tractable (default every 7th reference state; all sites and values at
  // each).
  const char *TinyKernel = R"(
var n = 3; var acc = 0;
while (n != 0) { acc = acc + n * n; n = n - 1; }
output(acc);
)";
  Ok &= sweepKernel(C, "wile-sum-squares", TinyKernel,
                    C.Stride ? C.Stride : 7, Rows);

  std::fprintf(Out, "\n%s\n",
               Ok ? "All sweeps clean: every injected fault was "
                    "masked or detected with a prefix trace."
                  : "VIOLATIONS FOUND");

  if (C.Json) {
    std::string Json = reportJson(C, Rows, Ok);
    if (C.JsonPath.empty()) {
      std::fputs(Json.c_str(), stdout);
    } else {
      FILE *F = std::fopen(C.JsonPath.c_str(), "w");
      if (!F) {
        std::fprintf(stderr, "cannot write %s\n", C.JsonPath.c_str());
        return 2;
      }
      std::fputs(Json.c_str(), F);
      std::fclose(F);
      std::fprintf(Out, "JSON report written to %s\n", C.JsonPath.c_str());
    }
  }
  return Ok ? 0 : 1;
}
