//===- bench/ablation_double_fault.cpp - The SEU assumption, probed -------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The paper's guarantees are proven under the Single Event Upset model
// ("we will work under the standard assumption of a single upset event").
// This ablation shows the assumption is load-bearing: on the well-typed
// paired-store program we inject *pairs* of faults and classify outcomes.
//
//   - two faults in the SAME color: still always masked or detected — one
//     intact computation suffices for the cross-checks (the zap-tag
//     argument extends to any amount of same-color corruption);
//   - one fault in EACH color: correlated corruptions can now satisfy the
//     hardware comparisons with corrupt data, producing silent output
//     corruption — exactly what the formal model rules out by assuming a
//     single event.
//
// The pairs run as explicit injection plans on the campaign engine
// (fault/Campaign.h), so the sweep parallelizes: pass --threads N. The
// plans replay on the decoded VM engine by default; --engine reference
// selects the structural interpreter and --engine jit the native tier
// (identical tallies by construction).
// Plan campaigns use the convergence early-exit on the final continuation
// by default; --no-converge disables it (tallies are bit-identical either
// way — only wall-clock time changes).
//
//===----------------------------------------------------------------------===//

#include "CliUtils.h"
#include "fault/Campaign.h"
#include "tal/Parser.h"
#include "vm/Engine.h"
#include "vm/JitEngine.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace talft;

namespace {

const char *Source = R"(
entry main
exit done
data { 256: int = 0 }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  mov r3, B 5
  mov r4, B 256
  stB r4, r3
  mov r5, G @done
  mov r6, B @done
  jmpG r5
  jmpB r6
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

/// Every (step1 <= step2, value, regA, regB) pair plan: corrupt A at step1
/// and B at step2 with the same correlated value.
std::vector<InjectionPlan> makePlans(uint64_t RefSteps,
                                     const std::vector<Reg> &First,
                                     const std::vector<Reg> &Second,
                                     const std::vector<int64_t> &Values) {
  std::vector<InjectionPlan> Plans;
  for (uint64_t S1 = 0; S1 <= RefSteps; ++S1)
    for (uint64_t S2 = S1; S2 <= RefSteps; ++S2)
      for (int64_t V : Values)
        for (Reg A : First)
          for (Reg B : Second)
            Plans.push_back({{S1, FaultSite::reg(A), V},
                             {S2, FaultSite::reg(B), V}});
  return Plans;
}

void report(const char *Label, const CampaignResult &R) {
  uint64_t Detected = R.Table[Verdict::Detected] +
                      R.Table[Verdict::DetectedBadPrefix];
  uint64_t Masked =
      R.Table[Verdict::Masked] + R.Table[Verdict::DissimilarState];
  uint64_t Other =
      R.Table[Verdict::Stuck] + R.Table[Verdict::BudgetExhausted];
  std::printf("%-28s %10llu %9llu %7llu %7llu %6llu\n", Label,
              (unsigned long long)R.Table.total(),
              (unsigned long long)Detected, (unsigned long long)Masked,
              (unsigned long long)R.Table[Verdict::SilentCorruption],
              (unsigned long long)Other);
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Threads = 1;
  std::string Engine = "vm";
  bool Converge = true;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--threads") == 0) {
      uint64_t N;
      if (!cli::numArg(Argc, Argv, I, N)) {
        std::fprintf(stderr, "--threads needs a number\n");
        return 2;
      }
      Threads = (unsigned)N;
    } else if (std::strcmp(Argv[I], "--engine") == 0) {
      if (!cli::engineArg(Argc, Argv, I, Engine))
        return 2;
    } else if (std::strcmp(Argv[I], "--no-converge") == 0) {
      Converge = false;
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\nusage: %s [--threads N] "
                   "[--engine reference|vm|jit] [--no-converge]\n",
                   Argv[I], Argv[0]);
      return 2;
    }
  }

  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> Prog = parseAndLayoutTalProgram(TC, Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // A first, plan-free campaign run just resolves the reference length the
  // plan grid quantifies over.
  PlanCampaign Probe;
  Probe.Prog = &*Prog;
  CampaignOptions Opts;
  Opts.Threads = Threads;
  Opts.Converge = Converge;
  std::unique_ptr<ExecEngine> Vm;
  if (Engine == "vm")
    Vm = vm::createEngine(Prog->code());
  else if (Engine == "jit")
    Vm = vm::createJitEngine(Prog->code());
  Opts.Engine = Vm.get();
  CampaignResult Ref = runInjectionPlans(Probe, Opts);
  if (!Ref.Ok) {
    std::fprintf(stderr, "reference run failed\n");
    return 1;
  }

  std::vector<Reg> GreenRegs = {Reg::general(1), Reg::general(2),
                                Reg::general(5)};
  std::vector<Reg> BlueRegs = {Reg::general(3), Reg::general(4),
                               Reg::general(6)};
  std::vector<int64_t> Values = {99, 260, 0};

  PlanCampaign Same = Probe;
  Same.Plans = makePlans(Ref.ReferenceSteps, GreenRegs, GreenRegs, Values);
  CampaignResult SameColor = runInjectionPlans(Same, Opts);

  PlanCampaign Cross = Probe;
  Cross.Plans = makePlans(Ref.ReferenceSteps, GreenRegs, BlueRegs, Values);
  CampaignResult CrossColor = runInjectionPlans(Cross, Opts);

  std::printf("Ablation D: double faults vs. the Single Event Upset model\n");
  std::printf("(paired-store program; correlated value pairs; 'silent' = "
              "completed with wrong output; %u thread%s; %s engine)\n\n",
              Threads, Threads == 1 ? "" : "s", Engine.c_str());
  std::printf("%-28s %10s %9s %7s %7s %6s\n", "fault pair", "injections",
              "detected", "masked", "silent", "other");
  std::printf("%.*s\n", 72,
              "------------------------------------------------------------"
              "------------");
  report("green + green (same color)", SameColor);
  report("green + blue (cross color)", CrossColor);
  std::printf("\nSame-color double faults never corrupt silently (one "
              "intact computation\nstill gates every observable action); "
              "cross-color pairs can — the single-\nevent assumption is "
              "essential, as the paper states.\n");
  // The experiment *expects* silent corruption in the cross-color row and
  // none in the same-color row.
  return (SameColor.Table[Verdict::SilentCorruption] == 0 &&
          CrossColor.Table[Verdict::SilentCorruption] > 0)
             ? 0
             : 1;
}
