//===- bench/ablation_double_fault.cpp - The SEU assumption, probed -------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The paper's guarantees are proven under the Single Event Upset model
// ("we will work under the standard assumption of a single upset event").
// This ablation shows the assumption is load-bearing: on the well-typed
// paired-store program we inject *pairs* of faults and classify outcomes.
//
//   - two faults in the SAME color: still always masked or detected — one
//     intact computation suffices for the cross-checks (the zap-tag
//     argument extends to any amount of same-color corruption);
//   - one fault in EACH color: correlated corruptions can now satisfy the
//     hardware comparisons with corrupt data, producing silent output
//     corruption — exactly what the formal model rules out by assuming a
//     single event.
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"
#include "tal/Parser.h"

#include <cstdio>
#include <vector>

using namespace talft;

namespace {

const char *Source = R"(
entry main
exit done
data { 256: int = 0 }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  mov r3, B 5
  mov r4, B 256
  stB r4, r3
  mov r5, G @done
  mov r6, B @done
  jmpG r5
  jmpB r6
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

struct Tally {
  uint64_t Injections = 0;
  uint64_t Detected = 0;
  uint64_t Masked = 0;
  uint64_t Silent = 0;
  uint64_t Other = 0;
};

/// Replays to \p Step1, corrupts \p R1, replays to \p Step2, corrupts
/// \p R2, runs to completion and classifies against the reference.
void injectPair(const Program &Prog, const MachineState &S0,
                const OutputTrace &Ref, uint64_t Step1, Reg R1,
                uint64_t Step2, Reg R2, int64_t V, Tally &T) {
  MachineState S = S0;
  OutputTrace Trace;
  auto StepTo = [&](uint64_t From, uint64_t To) {
    for (uint64_t I = From; I != To; ++I) {
      StepResult SR = step(S);
      if (SR.Output)
        Trace.push_back(*SR.Output);
      if (SR.Status != StepStatus::Ok)
        return false;
    }
    return true;
  };

  ++T.Injections;
  if (!StepTo(0, Step1)) {
    ++T.Other;
    return;
  }
  S.Regs.set(R1, Value(S.Regs.col(R1), V));
  if (!StepTo(Step1, Step2)) {
    ++T.Detected; // The first fault was caught before the second landed.
    return;
  }
  S.Regs.set(R2, Value(S.Regs.col(R2), V));

  Addr Exit = Prog.exitAddress();
  for (uint64_t Budget = 0; Budget != 2000; ++Budget) {
    if (atExit(S, Exit)) {
      if (Trace == Ref)
        ++T.Masked;
      else
        ++T.Silent;
      return;
    }
    StepResult SR = step(S);
    if (SR.Output)
      Trace.push_back(*SR.Output);
    if (SR.Status == StepStatus::Fault) {
      ++T.Detected;
      return;
    }
    if (SR.Status == StepStatus::Stuck) {
      ++T.Other;
      return;
    }
  }
  ++T.Other;
}

void report(const char *Label, const Tally &T) {
  std::printf("%-28s %10llu %9llu %7llu %7llu %6llu\n", Label,
              (unsigned long long)T.Injections,
              (unsigned long long)T.Detected, (unsigned long long)T.Masked,
              (unsigned long long)T.Silent, (unsigned long long)T.Other);
}

} // namespace

int main() {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> Prog = parseAndLayoutTalProgram(TC, Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  Expected<MachineState> S0 = Prog->initialState();
  MachineState Ref = *S0;
  RunResult RefRun = run(Ref, Prog->exitAddress(), 1000);
  if (RefRun.Status != RunStatus::Halted) {
    std::fprintf(stderr, "reference run failed\n");
    return 1;
  }

  std::vector<Reg> GreenRegs = {Reg::general(1), Reg::general(2),
                                Reg::general(5)};
  std::vector<Reg> BlueRegs = {Reg::general(3), Reg::general(4),
                               Reg::general(6)};
  std::vector<int64_t> Values = {99, 260, 0};

  Tally SameColor, CrossColor;
  for (uint64_t S1 = 0; S1 <= RefRun.Steps; ++S1) {
    for (uint64_t S2 = S1; S2 <= RefRun.Steps; ++S2) {
      for (int64_t V : Values) {
        for (Reg A : GreenRegs)
          for (Reg B : GreenRegs)
            injectPair(*Prog, *S0, RefRun.Trace, S1, A, S2, B, V,
                       SameColor);
        for (Reg A : GreenRegs)
          for (Reg B : BlueRegs)
            injectPair(*Prog, *S0, RefRun.Trace, S1, A, S2, B, V,
                       CrossColor);
      }
    }
  }

  std::printf("Ablation D: double faults vs. the Single Event Upset model\n");
  std::printf("(paired-store program; correlated value pairs; 'silent' = "
              "completed with wrong output)\n\n");
  std::printf("%-28s %10s %9s %7s %7s %6s\n", "fault pair", "injections",
              "detected", "masked", "silent", "other");
  std::printf("%.*s\n", 72,
              "------------------------------------------------------------"
              "------------");
  report("green + green (same color)", SameColor);
  report("green + blue (cross color)", CrossColor);
  std::printf("\nSame-color double faults never corrupt silently (one "
              "intact computation\nstill gates every observable action); "
              "cross-color pairs can — the single-\nevent assumption is "
              "essential, as the paper states.\n");
  // The experiment *expects* silent corruption in the cross-color row and
  // none in the same-color row.
  return (SameColor.Silent == 0 && CrossColor.Silent > 0) ? 0 : 1;
}
