//===- bench/lane_speedup.cpp - Batched SoA lane engine payoff ------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Measures what the batched structure-of-arrays lane engine
// (CampaignOptions::Lanes, vm/LaneEngine.h) buys on the Theorem 4 sweep:
// every Figure 10 kernel is swept twice on the raw-semantics campaign —
// once on the scalar classifier (--no-lanes) and once with injections
// batched into lockstep lane groups — and the harness compares
// wall-clock time and asserts the verdict tables and violation lists
// are bit-identical (batching is an optimization, never a semantic
// change). Same-snapshot injections share one fetch/decode/boundary
// pass per step and skip per-write fingerprint maintenance (registers
// are re-hashed only at probe boundaries), so the per-injection cost
// amortizes across the lane width; the pruned sweep targets a >= 3x
// overall speedup. Both configurations keep the convergence early-exit
// on, so the number reported here is the payoff of batching on top of
// the already-accelerated sweep.
//
//   lane_speedup [--threads N] [--engine reference|vm|jit] [--no-prune]
//                [--lane-width N] [--json [FILE]]
//
//   --threads N     worker threads (default 1; 0 = hardware concurrency).
//   --engine E      engine for the scalar-path continuations (default vm).
//   --no-prune      keep statically-dead sites in the simulated sweep
//                   (the headline number is measured on the pruned sweep,
//                   matching the nightly workflow).
//   --lane-width N  lanes advanced in lockstep per group (default 16).
//   --json [FILE]   emit a machine-readable report (schema talft-bench-v1;
//                   the nightly workflow uploads it as BENCH_lanes.json)
//                   to FILE (written atomically) or stdout, with the
//                   human table on stderr.
//
// Exit status is nonzero if any kernel's batched verdict table,
// violation list or reference step count differs from its scalar
// baseline.
//
//===----------------------------------------------------------------------===//

#include "CliUtils.h"
#include "fault/Campaign.h"
#include "vm/Engine.h"
#include "vm/JitEngine.h"
#include "wile/Codegen.h"
#include "wile/Kernels.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace talft;

namespace {

struct Cli {
  unsigned Threads = 1;
  std::string Engine = "vm";
  bool Prune = true;
  unsigned LaneWidth = 16;
  bool Json = false;
  std::string JsonPath;
};

bool parseCli(int Argc, char **Argv, Cli &C) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--threads") == 0) {
      uint64_t N;
      if (!cli::numArg(Argc, Argv, I, N))
        return false;
      C.Threads = (unsigned)N;
    } else if (std::strcmp(A, "--engine") == 0) {
      if (!cli::engineArg(Argc, Argv, I, C.Engine))
        return false;
    } else if (std::strcmp(A, "--no-prune") == 0) {
      C.Prune = false;
    } else if (std::strcmp(A, "--lane-width") == 0) {
      uint64_t N;
      if (!cli::numArg(Argc, Argv, I, N) || N == 0)
        return false;
      C.LaneWidth = (unsigned)N;
    } else if (std::strcmp(A, "--json") == 0) {
      C.Json = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        C.JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", A);
      return false;
    }
  }
  return true;
}

struct KernelRow {
  std::string Name;
  std::string Suite;
  uint64_t Stride = 1;
  CampaignResult Scalar;
  CampaignResult Lanes;
  bool Identical = false;
};

/// The whole-campaign cost: reference phase (timeline recording) plus
/// the injection phase.
double campaignSeconds(const CampaignResult &R) {
  return R.Stats.ReferenceSeconds + R.Stats.WallSeconds;
}

} // namespace

int main(int Argc, char **Argv) {
  Cli C;
  if (!parseCli(Argc, Argv, C)) {
    std::fprintf(stderr,
                 "usage: %s [--threads N] [--engine reference|vm|jit] "
                 "[--no-prune] [--lane-width N] [--json [FILE]]\n",
                 Argv[0]);
    return 2;
  }
  FILE *Out = (C.Json && C.JsonPath.empty()) ? stderr : stdout;

  std::fprintf(Out, "Batched lane-engine speedup on the Figure 10 sweep\n");
  std::fprintf(Out,
               "(%s sites; %u thread%s; %s engine; width %u; identical = "
               "verdict table,\nviolations and reference steps match the "
               "scalar baseline bit-for-bit)\n\n",
               C.Prune ? "pruned" : "all", C.Threads,
               C.Threads == 1 ? "" : "s", C.Engine.c_str(), C.LaneWidth);
  std::fprintf(Out, "%-12s %10s %9s %9s %8s %7s %9s %8s %10s\n", "kernel",
               "injections", "scalar(s)", "lanes(s)", "speedup", "groups",
               "deviated", "steps", "identical");
  std::fprintf(Out, "%.*s\n", 90,
               "------------------------------------------------------------"
               "-----------------------------------");

  std::vector<KernelRow> Rows;
  bool AllIdentical = true;
  double ScalarTotal = 0, LanesTotal = 0;
  for (const wile::Kernel &K : wile::benchmarkKernels()) {
    TypeContext TC;
    DiagnosticEngine Diags;
    Expected<wile::CompiledProgram> CP = wile::compileWile(
        TC, K.Source.c_str(), wile::CodegenMode::FaultTolerant, Diags);
    if (!CP) {
      std::fprintf(stderr, "%s: %s\n", K.Name.c_str(), CP.message().c_str());
      return 1;
    }
    std::unique_ptr<ExecEngine> Vm;
    const ExecEngine *E = &referenceEngine();
    if (C.Engine == "vm")
      Vm = vm::createEngine(CP->Prog.code());
    else if (C.Engine == "jit")
      Vm = vm::createJitEngine(CP->Prog.code());
    if (Vm)
      E = Vm.get();

    // Same adaptive stride rule as fault_coverage --fig10 (derived from
    // the engine-independent reference length).
    TheoremConfig Probe;
    Expected<MachineState> S0 = CP->Prog.initialState();
    if (Error Err = S0.takeError()) {
      std::fprintf(stderr, "%s: %s\n", K.Name.c_str(), Err.message().c_str());
      return 1;
    }
    MachineState S = *S0;
    RunResult RR =
        E->run(S, CP->Prog.exitAddress(), Probe.MaxSteps, Probe.Policy);
    if (RR.Status != RunStatus::Halted) {
      std::fprintf(stderr, "%s: reference run did not halt (%s)\n",
                   K.Name.c_str(), runStatusName(RR.Status));
      return 1;
    }
    uint64_t Stride = std::max<uint64_t>(1, RR.Steps / 12);

    TheoremConfig Config;
    Config.InjectionStride = Stride;
    CampaignOptions Opts;
    Opts.Threads = C.Threads;
    Opts.Engine = Vm.get();
    Opts.Prune = C.Prune;
    Opts.LaneWidth = C.LaneWidth;

    KernelRow Row;
    Row.Name = K.Name;
    Row.Suite = K.Suite;
    Row.Stride = Stride;
    Opts.Lanes = false;
    Row.Scalar = runSingleFaultCampaign(CP->Prog, Config, Opts);
    Opts.Lanes = true;
    Row.Lanes = runSingleFaultCampaign(CP->Prog, Config, Opts);
    Row.Identical = Row.Scalar.Table == Row.Lanes.Table &&
                    Row.Scalar.Violations == Row.Lanes.Violations &&
                    Row.Scalar.ReferenceSteps == Row.Lanes.ReferenceSteps &&
                    Row.Scalar.Ok == Row.Lanes.Ok;
    AllIdentical &= Row.Identical;

    double ScalarS = campaignSeconds(Row.Scalar);
    double LanesS = campaignSeconds(Row.Lanes);
    ScalarTotal += ScalarS;
    LanesTotal += LanesS;
    const CampaignStats &L = Row.Lanes.Stats;
    std::fprintf(Out,
                 "%-12s %10llu %9.4f %9.4f %7.2fx %7llu %9llu %8llu %10s\n",
                 Row.Name.c_str(),
                 (unsigned long long)Row.Scalar.Table.total(), ScalarS, LanesS,
                 LanesS > 0 ? ScalarS / LanesS : 0.0,
                 (unsigned long long)L.LaneGroups,
                 (unsigned long long)L.LaneDeviations,
                 (unsigned long long)L.LaneLockstepSteps,
                 Row.Identical ? "yes" : "NO");
    Rows.push_back(std::move(Row));
  }

  double Overall = LanesTotal > 0 ? ScalarTotal / LanesTotal : 0.0;
  std::fprintf(Out, "%.*s\n", 90,
               "------------------------------------------------------------"
               "-----------------------------------");
  std::fprintf(Out, "%-12s %10s %9.4f %9.4f %7.2fx\n", "total", "",
               ScalarTotal, LanesTotal, Overall);
  std::fprintf(Out, "\n%s\n",
               AllIdentical
                   ? "All batched verdict tables are bit-identical to the "
                     "scalar baselines."
                   : "MISMATCH: a batched table diverged from its scalar "
                     "baseline.");

  if (C.Json) {
    std::string S = "{\n";
    S += "  \"schema\": \"talft-bench-v1\",\n";
    S += "  \"benchmark\": \"lane_speedup\",\n";
    S += "  \"unit\": \"campaign_seconds\",\n";
    S += "  \"engine\": \"" + C.Engine + "\",\n";
    S += "  \"threads\": " + std::to_string(C.Threads) + ",\n";
    S += "  \"prune\": " + std::string(C.Prune ? "true" : "false") + ",\n";
    S += "  \"lane_width\": " + std::to_string(C.LaneWidth) + ",\n";
    S += "  \"tables_identical\": " +
         std::string(AllIdentical ? "true" : "false") + ",\n";
    S += "  \"kernels\": [\n";
    for (size_t I = 0; I != Rows.size(); ++I) {
      const KernelRow &R = Rows[I];
      const CampaignStats &L = R.Lanes.Stats;
      double ScalarS = campaignSeconds(R.Scalar);
      double LanesS = campaignSeconds(R.Lanes);
      char Buf[768];
      std::snprintf(
          Buf, sizeof(Buf),
          "    {\"name\": \"%s\", \"suite\": \"%s\", \"ref_steps\": %llu, "
          "\"stride\": %llu, \"injections\": %llu, "
          "\"scalar_seconds\": %.6f, \"lanes_seconds\": %.6f, "
          "\"speedup\": %.2f, \"steps_per_second\": %.0f, "
          "\"tables_identical\": %s, "
          "\"lanes\": {\"width\": %u, \"groups\": %llu, "
          "\"lane_tasks\": %llu, \"deviations\": %llu, "
          "\"lockstep_steps\": %llu}}%s\n",
          R.Name.c_str(), R.Suite.c_str(),
          (unsigned long long)R.Scalar.ReferenceSteps,
          (unsigned long long)R.Stride,
          (unsigned long long)R.Scalar.Table.total(), ScalarS, LanesS,
          LanesS > 0 ? ScalarS / LanesS : 0.0,
          LanesS > 0 ? (double)L.LaneLockstepSteps / LanesS : 0.0,
          R.Identical ? "true" : "false", L.LaneWidth,
          (unsigned long long)L.LaneGroups,
          (unsigned long long)L.LaneTasks,
          (unsigned long long)L.LaneDeviations,
          (unsigned long long)L.LaneLockstepSteps,
          I + 1 != Rows.size() ? "," : "");
      S += Buf;
    }
    S += "  ],\n";
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "  \"totals\": {\"scalar_seconds\": %.6f, "
                  "\"lanes_seconds\": %.6f, \"speedup\": %.2f}\n",
                  ScalarTotal, LanesTotal, Overall);
    S += Buf;
    S += "}\n";
    if (C.JsonPath.empty()) {
      std::fputs(S.c_str(), stdout);
    } else {
      if (!cli::writeFileAtomic(C.JsonPath, S)) {
        std::fprintf(stderr, "cannot write %s\n", C.JsonPath.c_str());
        return 2;
      }
      std::fprintf(Out, "JSON report written to %s\n", C.JsonPath.c_str());
    }
  }
  return AllIdentical ? 0 : 1;
}
