//===- bench/jit_speedup.cpp - Native JIT tier payoff ---------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Measures what the native x86-64 tier (vm/JitEngine.h) buys on the hot
// path the campaigns actually pay for: the fault-free reference run of
// every Figure 10 kernel is timed on the vm interpreter and on the JIT,
// and the harness reports steps per second for both. Because the JIT is
// only admissible if it is observationally bit-identical, each kernel is
// also swept once per engine on the Theorem 4 single-fault campaign and
// the verdict tables, violation lists and reference step counts are
// compared — any divergence fails the run.
//
//   jit_speedup [--threads N] [--no-prune] [--min-seconds S] [--json [FILE]]
//
//   --threads N      worker threads for the campaign cross-check
//                    (default 1; 0 = hardware concurrency).
//   --no-prune       keep statically-dead sites in the campaign sweep.
//   --min-seconds S  minimum measured wall time per engine per kernel
//                    (default 0.05; reps are derived from a vm warmup).
//   --json [FILE]    emit a machine-readable report (schema talft-bench-v1;
//                    the nightly workflow uploads it as BENCH_jit.json) to
//                    FILE (written atomically) or stdout, with the human
//                    table on stderr.
//
// On non-x86-64 hosts (or under a hardened W^X policy refusing PROT_EXEC)
// the JIT engine delegates to the vm interpreter; the report then carries
// "native": false and a ~1x speedup instead of failing, mirroring the
// campaign JSON fallback contract.
//
// Exit status is nonzero if any kernel's reference run or campaign
// diverged between the engines.
//
//===----------------------------------------------------------------------===//

#include "CliUtils.h"
#include "fault/Campaign.h"
#include "vm/Engine.h"
#include "vm/JitEngine.h"
#include "vm/LaneSimd.h"
#include "wile/Codegen.h"
#include "wile/Kernels.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace talft;

namespace {

struct Cli {
  unsigned Threads = 1;
  bool Prune = true;
  double MinSeconds = 0.05;
  bool Json = false;
  std::string JsonPath;
};

bool parseCli(int Argc, char **Argv, Cli &C) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--threads") == 0) {
      uint64_t N;
      if (!cli::numArg(Argc, Argv, I, N))
        return false;
      C.Threads = (unsigned)N;
    } else if (std::strcmp(A, "--no-prune") == 0) {
      C.Prune = false;
    } else if (std::strcmp(A, "--min-seconds") == 0) {
      if (I + 1 >= Argc)
        return false;
      C.MinSeconds = std::atof(Argv[++I]);
      if (C.MinSeconds <= 0)
        return false;
    } else if (std::strcmp(A, "--json") == 0) {
      C.Json = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        C.JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", A);
      return false;
    }
  }
  return true;
}

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

struct KernelRow {
  std::string Name;
  std::string Suite;
  uint64_t RefSteps = 0;
  uint64_t Stride = 1;
  uint64_t Injections = 0;
  uint64_t Reps = 1;
  double VmSeconds = 0;
  double JitSeconds = 0;
  bool Identical = false;
};

/// Times \p Reps cold reference runs (fresh initial state each rep, the
/// shape every campaign task pays) and returns total wall seconds.
double timeRuns(const ExecEngine &E, const Program &Prog,
                const MachineState &S0, uint64_t Reps) {
  TheoremConfig Probe;
  Clock::time_point T0 = Clock::now();
  for (uint64_t I = 0; I != Reps; ++I) {
    MachineState S = S0;
    RunResult RR = E.run(S, Prog.exitAddress(), Probe.MaxSteps, Probe.Policy);
    if (RR.Status != RunStatus::Halted)
      return -1;
  }
  return secondsSince(T0);
}

} // namespace

int main(int Argc, char **Argv) {
  Cli C;
  if (!parseCli(Argc, Argv, C)) {
    std::fprintf(stderr,
                 "usage: %s [--threads N] [--no-prune] [--min-seconds S] "
                 "[--json [FILE]]\n",
                 Argv[0]);
    return 2;
  }
  FILE *Out = (C.Json && C.JsonPath.empty()) ? stderr : stdout;

  bool Native = false;
  uint64_t BlocksTotal = 0, BytesTotal = 0, ExitsTotal = 0;

  std::fprintf(Out, "Native JIT tier speedup on the Figure 10 kernels\n");
  std::fprintf(Out,
               "(fault-free reference runs, fresh state per rep; identical = "
               "campaign verdict table,\nviolations and reference steps match "
               "the vm engine bit-for-bit; %u thread%s, %s sites)\n\n",
               C.Threads, C.Threads == 1 ? "" : "s",
               C.Prune ? "pruned" : "all");
  std::fprintf(Out, "%-12s %8s %6s %11s %11s %8s %7s %6s %10s\n", "kernel",
               "steps", "reps", "vm steps/s", "jit steps/s", "speedup",
               "blocks", "bytes", "identical");
  std::fprintf(Out, "%.*s\n", 88,
               "------------------------------------------------------------"
               "-----------------------------------");

  std::vector<KernelRow> Rows;
  bool AllIdentical = true;
  double VmTotal = 0, JitTotal = 0;
  uint64_t StepsTotal = 0;
  for (const wile::Kernel &K : wile::benchmarkKernels()) {
    TypeContext TC;
    DiagnosticEngine Diags;
    Expected<wile::CompiledProgram> CP = wile::compileWile(
        TC, K.Source.c_str(), wile::CodegenMode::FaultTolerant, Diags);
    if (!CP) {
      std::fprintf(stderr, "%s: %s\n", K.Name.c_str(), CP.message().c_str());
      return 1;
    }
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(CP->Prog.code());
    std::unique_ptr<ExecEngine> Jit = vm::createJitEngine(CP->Prog.code());
    const auto &JE = static_cast<const vm::JitEngine &>(*Jit);
    Native = JE.native();
    BlocksTotal += JE.blocksCompiled();
    BytesTotal += JE.codeBytes();

    Expected<MachineState> S0 = CP->Prog.initialState();
    if (Error Err = S0.takeError()) {
      std::fprintf(stderr, "%s: %s\n", K.Name.c_str(), Err.message().c_str());
      return 1;
    }

    // Reference runs must agree on status and step count before any
    // timing is worth reporting.
    TheoremConfig Probe;
    MachineState SV = *S0, SJ = *S0;
    RunResult RV =
        Vm->run(SV, CP->Prog.exitAddress(), Probe.MaxSteps, Probe.Policy);
    RunResult RJ =
        Jit->run(SJ, CP->Prog.exitAddress(), Probe.MaxSteps, Probe.Policy);
    if (RV.Status != RunStatus::Halted || RJ.Status != RV.Status ||
        RJ.Steps != RV.Steps) {
      std::fprintf(stderr, "%s: reference run diverged (vm %s/%llu, jit "
                           "%s/%llu)\n",
                   K.Name.c_str(), runStatusName(RV.Status),
                   (unsigned long long)RV.Steps, runStatusName(RJ.Status),
                   (unsigned long long)RJ.Steps);
      return 1;
    }

    KernelRow Row;
    Row.Name = K.Name;
    Row.Suite = K.Suite;
    Row.RefSteps = RV.Steps;

    // Reps from a vm warmup so both engines are measured over at least
    // --min-seconds of wall time.
    double Warmup = timeRuns(*Vm, CP->Prog, *S0, 1);
    Row.Reps = Warmup > 0
                   ? (uint64_t)std::ceil(C.MinSeconds / Warmup)
                   : (uint64_t)(C.MinSeconds * 1e6);
    if (Row.Reps == 0)
      Row.Reps = 1;
    Row.VmSeconds = timeRuns(*Vm, CP->Prog, *S0, Row.Reps);
    Row.JitSeconds = timeRuns(*Jit, CP->Prog, *S0, Row.Reps);
    if (Row.VmSeconds < 0 || Row.JitSeconds < 0) {
      std::fprintf(stderr, "%s: timed run did not halt\n", K.Name.c_str());
      return 1;
    }

    // Campaign cross-check: same adaptive stride rule as fault_coverage
    // --fig10 (derived from the engine-independent reference length).
    Row.Stride = std::max<uint64_t>(1, RV.Steps / 12);
    TheoremConfig Config;
    Config.InjectionStride = Row.Stride;
    CampaignOptions Opts;
    Opts.Threads = C.Threads;
    Opts.Prune = C.Prune;
    Opts.Engine = Vm.get();
    CampaignResult OnVm = runSingleFaultCampaign(CP->Prog, Config, Opts);
    Opts.Engine = Jit.get();
    CampaignResult OnJit = runSingleFaultCampaign(CP->Prog, Config, Opts);
    ExitsTotal += OnJit.Stats.JitSideExits;
    Row.Injections = OnVm.Table.total();
    Row.Identical = OnVm.Table == OnJit.Table &&
                    OnVm.Violations == OnJit.Violations &&
                    OnVm.ReferenceSteps == OnJit.ReferenceSteps &&
                    OnVm.Ok == OnJit.Ok;
    AllIdentical &= Row.Identical;

    VmTotal += Row.VmSeconds;
    JitTotal += Row.JitSeconds;
    StepsTotal += Row.RefSteps * Row.Reps;
    double VmRate =
        Row.VmSeconds > 0 ? (double)(Row.RefSteps * Row.Reps) / Row.VmSeconds
                          : 0;
    double JitRate =
        Row.JitSeconds > 0 ? (double)(Row.RefSteps * Row.Reps) / Row.JitSeconds
                           : 0;
    std::fprintf(Out, "%-12s %8llu %6llu %11.0f %11.0f %7.2fx %7llu %6llu "
                      "%10s\n",
                 Row.Name.c_str(), (unsigned long long)Row.RefSteps,
                 (unsigned long long)Row.Reps, VmRate, JitRate,
                 Row.JitSeconds > 0 ? Row.VmSeconds / Row.JitSeconds : 0.0,
                 (unsigned long long)JE.blocksCompiled(),
                 (unsigned long long)JE.codeBytes(),
                 Row.Identical ? "yes" : "NO");
    Rows.push_back(std::move(Row));
  }

  double Overall = JitTotal > 0 ? VmTotal / JitTotal : 0.0;
  std::fprintf(Out, "%.*s\n", 88,
               "------------------------------------------------------------"
               "-----------------------------------");
  std::fprintf(Out, "%-12s %8s %6s %11.0f %11.0f %7.2fx\n", "total", "", "",
               VmTotal > 0 ? (double)StepsTotal / VmTotal : 0.0,
               JitTotal > 0 ? (double)StepsTotal / JitTotal : 0.0, Overall);
  std::fprintf(Out, "\njit tier: native=%s, simd_lane_width=%u\n",
               Native ? "yes" : "no (vm fallback)", vm::simd::laneWidth());
  std::fprintf(Out, "%s\n",
               AllIdentical
                   ? "All JIT campaign verdict tables are bit-identical to "
                     "the vm baselines."
                   : "MISMATCH: a JIT campaign diverged from its vm "
                     "baseline.");

  if (C.Json) {
    std::string S = "{\n";
    S += "  \"schema\": \"talft-bench-v1\",\n";
    S += "  \"benchmark\": \"jit_speedup\",\n";
    S += "  \"unit\": \"steps_per_second\",\n";
    S += "  \"engine\": \"jit\",\n";
    S += "  \"baseline_engine\": \"vm\",\n";
    S += "  \"threads\": " + std::to_string(C.Threads) + ",\n";
    S += "  \"prune\": " + std::string(C.Prune ? "true" : "false") + ",\n";
    S += "  \"native\": " + std::string(Native ? "true" : "false") + ",\n";
    S += "  \"simd_lane_width\": " + std::to_string(vm::simd::laneWidth()) +
         ",\n";
    S += "  \"tables_identical\": " +
         std::string(AllIdentical ? "true" : "false") + ",\n";
    S += "  \"kernels\": [\n";
    for (size_t I = 0; I != Rows.size(); ++I) {
      const KernelRow &R = Rows[I];
      double VmRate =
          R.VmSeconds > 0 ? (double)(R.RefSteps * R.Reps) / R.VmSeconds : 0;
      double JitRate =
          R.JitSeconds > 0 ? (double)(R.RefSteps * R.Reps) / R.JitSeconds : 0;
      char Buf[640];
      std::snprintf(
          Buf, sizeof(Buf),
          "    {\"name\": \"%s\", \"suite\": \"%s\", \"ref_steps\": %llu, "
          "\"reps\": %llu, \"stride\": %llu, \"injections\": %llu, "
          "\"vm_seconds\": %.6f, \"jit_seconds\": %.6f, "
          "\"vm_steps_per_second\": %.0f, \"jit_steps_per_second\": %.0f, "
          "\"speedup\": %.2f, \"tables_identical\": %s}%s\n",
          R.Name.c_str(), R.Suite.c_str(), (unsigned long long)R.RefSteps,
          (unsigned long long)R.Reps, (unsigned long long)R.Stride,
          (unsigned long long)R.Injections, R.VmSeconds, R.JitSeconds, VmRate,
          JitRate, R.JitSeconds > 0 ? R.VmSeconds / R.JitSeconds : 0.0,
          R.Identical ? "true" : "false", I + 1 != Rows.size() ? "," : "");
      S += Buf;
    }
    S += "  ],\n";
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "  \"totals\": {\"vm_seconds\": %.6f, \"jit_seconds\": %.6f, "
                  "\"vm_steps_per_second\": %.0f, "
                  "\"jit_steps_per_second\": %.0f, \"speedup\": %.2f, "
                  "\"blocks_compiled\": %llu, \"code_bytes\": %llu, "
                  "\"side_exits\": %llu}\n",
                  VmTotal, JitTotal,
                  VmTotal > 0 ? (double)StepsTotal / VmTotal : 0.0,
                  JitTotal > 0 ? (double)StepsTotal / JitTotal : 0.0, Overall,
                  (unsigned long long)BlocksTotal,
                  (unsigned long long)BytesTotal,
                  (unsigned long long)ExitsTotal);
    S += Buf;
    S += "}\n";
    if (C.JsonPath.empty()) {
      std::fputs(S.c_str(), stdout);
    } else {
      if (!cli::writeFileAtomic(C.JsonPath, S)) {
        std::fprintf(stderr, "cannot write %s\n", C.JsonPath.c_str());
        return 2;
      }
      std::fprintf(Out, "JSON report written to %s\n", C.JsonPath.c_str());
    }
  }
  return AllIdentical ? 0 : 1;
}
