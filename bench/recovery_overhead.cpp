//===- bench/recovery_overhead.cpp - Checkpoint-interval cost curve -------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The recovery layer (recover/RecoveringEngine.h) buys fail-operational
// execution with checkpoint copies at verified commit points. This
// harness measures what that costs when nothing goes wrong: each Figure
// 10 kernel runs fault-free on a bare engine and then under the recovery
// layer at several checkpoint intervals, and the table reports the
// overhead ratio per interval. Along the way it asserts the layer is
// observationally transparent — the recovering run must emit the exact
// output trace and step count of the bare run, or the harness fails.
//
//   recovery_overhead [--engine reference|vm|jit] [--intervals CSV]
//                     [--repeat N] [--json [FILE]]
//
//   --intervals CSV checkpoint intervals to measure (default 1,4,16,64).
//   --repeat N      timing repetitions; the fastest is reported
//                   (default 3).
//   --json [FILE]   machine-readable report (schema talft-bench-v1),
//                   written atomically when FILE is given.
//
//===----------------------------------------------------------------------===//

#include "CliUtils.h"
#include "recover/RecoveringEngine.h"
#include "vm/Engine.h"
#include "vm/JitEngine.h"
#include "wile/Codegen.h"
#include "wile/Kernels.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace talft;

namespace {

using Clock = std::chrono::steady_clock;

struct Cli {
  std::string Engine = "vm";
  std::vector<uint64_t> Intervals = {1, 4, 16, 64};
  uint64_t Repeat = 3;
  bool Json = false;
  std::string JsonPath;
};

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--engine reference|vm|jit] [--intervals CSV] "
               "[--repeat N] [--json [FILE]]\n",
               Argv0);
}

bool parseCli(int Argc, char **Argv, Cli &C) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--engine") == 0) {
      if (!cli::engineArg(Argc, Argv, I, C.Engine))
        return false;
    } else if (std::strcmp(A, "--intervals") == 0) {
      if (I + 1 >= Argc || !cli::parseU64List(Argv[++I], C.Intervals))
        return false;
      for (uint64_t N : C.Intervals)
        if (N == 0)
          return false;
    } else if (std::strcmp(A, "--repeat") == 0) {
      if (!cli::numArg(Argc, Argv, I, C.Repeat) || C.Repeat == 0)
        return false;
    } else if (std::strcmp(A, "--json") == 0) {
      C.Json = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        C.JsonPath = Argv[++I];
    } else if (std::strcmp(A, "--help") == 0) {
      usage(Argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", A);
      return false;
    }
  }
  return true;
}

constexpr uint64_t MaxSteps = 200000;

struct IntervalRun {
  uint64_t Interval = 0;
  double Seconds = 0;
  uint64_t Checkpoints = 0;
  double Overhead = 0; // Seconds / bare Seconds
};

struct KernelRow {
  std::string Name;
  uint64_t Steps = 0;
  uint64_t Outputs = 0;
  double BareSeconds = 0;
  std::vector<IntervalRun> Runs;
};

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

} // namespace

int main(int Argc, char **Argv) {
  Cli C;
  if (!parseCli(Argc, Argv, C)) {
    usage(Argv[0]);
    return 2;
  }
  FILE *Out = (C.Json && C.JsonPath.empty()) ? stderr : stdout;

  std::fprintf(Out, "Fault-free cost of the checkpoint/rollback layer\n");
  std::fprintf(Out, "(overhead = recovering wall / bare wall, best of %llu; "
                    "%s engine)\n\n",
               (unsigned long long)C.Repeat, C.Engine.c_str());
  std::fprintf(Out, "%-14s %8s %8s", "kernel", "steps", "bare");
  for (uint64_t I : C.Intervals)
    std::fprintf(Out, "   ival=%-4llu", (unsigned long long)I);
  std::fprintf(Out, "\n");

  std::vector<KernelRow> Rows;
  bool Ok = true;
  for (const wile::Kernel &K : wile::benchmarkKernels()) {
    TypeContext TC;
    DiagnosticEngine Diags;
    Expected<wile::CompiledProgram> CP = wile::compileWile(
        TC, K.Source.c_str(), wile::CodegenMode::FaultTolerant, Diags);
    if (!CP) {
      std::fprintf(stderr, "%s: %s\n", K.Name.c_str(), CP.message().c_str());
      Ok = false;
      continue;
    }
    std::unique_ptr<ExecEngine> Vm;
    const ExecEngine *E = &referenceEngine();
    if (C.Engine == "vm")
      Vm = vm::createEngine(CP->Prog.code());
    else if (C.Engine == "jit")
      Vm = vm::createJitEngine(CP->Prog.code());
    if (Vm)
      E = Vm.get();
    Expected<MachineState> S0 = CP->Prog.initialState();
    if (Error Err = S0.takeError()) {
      std::fprintf(stderr, "%s: %s\n", K.Name.c_str(), Err.message().c_str());
      Ok = false;
      continue;
    }
    Addr ExitAddr = CP->Prog.exitAddress();

    KernelRow Row;
    Row.Name = K.Name;
    RunResult Bare;
    Row.BareSeconds = 1e300;
    for (uint64_t Rep = 0; Rep != C.Repeat; ++Rep) {
      MachineState S = *S0;
      Clock::time_point T0 = Clock::now();
      Bare = E->run(S, ExitAddr, MaxSteps, StepPolicy());
      Row.BareSeconds = std::min(Row.BareSeconds, secondsSince(T0));
    }
    if (Bare.Status != RunStatus::Halted) {
      std::fprintf(stderr, "%s: bare run did not halt (%s)\n", K.Name.c_str(),
                   runStatusName(Bare.Status));
      Ok = false;
      continue;
    }
    Row.Steps = Bare.Steps;
    Row.Outputs = Bare.Trace.size();

    for (uint64_t Interval : C.Intervals) {
      RecoveryPolicy RP;
      RP.Enabled = true;
      RP.CheckpointInterval = Interval;
      RecoveringEngine RE(*E, RP);
      IntervalRun IR;
      IR.Interval = Interval;
      IR.Seconds = 1e300;
      RecoveryResult RR;
      OutputTrace Trace;
      for (uint64_t Rep = 0; Rep != C.Repeat; ++Rep) {
        MachineState S = *S0;
        Trace.clear();
        RecoveringEngine::RunSpec Spec;
        Spec.ExitAddr = ExitAddr;
        Spec.Budget = MaxSteps;
        Spec.OnOutput = [&Trace](const QueueEntry &Q) { Trace.push_back(Q); };
        Clock::time_point T0 = Clock::now();
        RR = RE.run(S, Spec);
        IR.Seconds = std::min(IR.Seconds, secondsSince(T0));
      }
      // Transparency check: fault-free recovery must be observationally
      // invisible.
      if (RR.Status != RecoveryStatus::Halted || RR.Steps != Bare.Steps ||
          !(Trace == Bare.Trace) || RR.Stats.Rollbacks != 0) {
        std::fprintf(stderr,
                     "%s: recovering run diverged from bare run "
                     "(status %s, %llu steps, %zu outputs)\n",
                     K.Name.c_str(), recoveryStatusName(RR.Status),
                     (unsigned long long)RR.Steps, Trace.size());
        Ok = false;
      }
      IR.Checkpoints = RR.Stats.Checkpoints;
      IR.Overhead = Row.BareSeconds > 0 ? IR.Seconds / Row.BareSeconds : 0;
      Row.Runs.push_back(IR);
    }

    std::fprintf(Out, "%-14s %8llu %7.3fs", Row.Name.c_str(),
                 (unsigned long long)Row.Steps, Row.BareSeconds);
    for (const IntervalRun &IR : Row.Runs)
      std::fprintf(Out, "   %6.2fx  ", IR.Overhead);
    std::fprintf(Out, "\n");
    Rows.push_back(std::move(Row));
  }

  if (C.Json) {
    std::string S = "{\n";
    S += "  \"schema\": \"talft-bench-v1\",\n";
    S += "  \"benchmark\": \"recovery_overhead\",\n";
    S += "  \"engine\": \"" + C.Engine + "\",\n";
    S += "  \"ok\": " + std::string(Ok ? "true" : "false") + ",\n";
    S += "  \"kernels\": [\n";
    for (size_t I = 0; I != Rows.size(); ++I) {
      const KernelRow &Row = Rows[I];
      char Buf[256];
      std::snprintf(Buf, sizeof(Buf),
                    "    {\"name\": \"%s\", \"steps\": %llu, "
                    "\"outputs\": %llu, \"bare_seconds\": %.6f, \"runs\": [",
                    Row.Name.c_str(), (unsigned long long)Row.Steps,
                    (unsigned long long)Row.Outputs, Row.BareSeconds);
      S += Buf;
      for (size_t J = 0; J != Row.Runs.size(); ++J) {
        const IntervalRun &IR = Row.Runs[J];
        std::snprintf(Buf, sizeof(Buf),
                      "%s{\"interval\": %llu, \"seconds\": %.6f, "
                      "\"checkpoints\": %llu, \"overhead\": %.3f}",
                      J ? ", " : "", (unsigned long long)IR.Interval,
                      IR.Seconds, (unsigned long long)IR.Checkpoints,
                      IR.Overhead);
        S += Buf;
      }
      S += "]}";
      S += I + 1 != Rows.size() ? ",\n" : "\n";
    }
    S += "  ]\n}\n";
    if (C.JsonPath.empty()) {
      std::fputs(S.c_str(), stdout);
    } else if (!cli::writeFileAtomic(C.JsonPath, S)) {
      std::fprintf(stderr, "cannot write %s\n", C.JsonPath.c_str());
      return 2;
    } else {
      std::fprintf(Out, "JSON report written to %s\n", C.JsonPath.c_str());
    }
  }
  return Ok ? 0 : 1;
}
