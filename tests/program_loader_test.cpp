//===- tests/program_loader_test.cpp - Layout & initial-state edge cases --===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "sim/Machine.h"
#include "tal/Parser.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

Expected<Program> load(TypeContext &TC, const char *Src,
                       DiagnosticEngine &Diags) {
  return parseAndLayoutTalProgram(TC, Src, Diags);
}

TEST(InitialStateTest, RegistersComeFromEntryPrecondition) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
entry main
block main {
  pre { forall m: mem;
        r1: (G, int, 42); r2: (B, int, 42);
        r3: (G, int, 5 + 2);
        queue []; mem m }
  add r4, r1, G 0
  mov r10, G @main
  mov r11, B @main
  jmpG r10
  jmpB r11
}
)";
  Expected<Program> P = load(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  Expected<MachineState> S = P->initialState();
  ASSERT_TRUE(S) << S.message();
  EXPECT_EQ(S->Regs.get(Reg::general(1)), Value::green(42));
  EXPECT_EQ(S->Regs.get(Reg::general(2)), Value::blue(42));
  // Closed compound expressions evaluate.
  EXPECT_EQ(S->Regs.get(Reg::general(3)), Value::green(7));
  // d starts at G 0 and the pcs at the entry address.
  EXPECT_EQ(S->Regs.get(Reg::dest()), Value::green(0));
  EXPECT_EQ(S->pcG().N, P->entryAddress());
}

TEST(InitialStateTest, OpenEntryExpressionRejected) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
entry main
block main {
  pre { forall x: int, m: mem; r1: (G, int, x); queue []; mem m }
  mov r10, G @main
  mov r11, B @main
  jmpG r10
  jmpB r11
}
)";
  Expected<Program> P = load(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  Expected<MachineState> S = P->initialState();
  ASSERT_FALSE(S);
  EXPECT_NE(S.message().find("open expression"), std::string::npos);
}

TEST(InitialStateTest, ConditionalEntryTypeRejected) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
entry main
block main {
  pre { forall m: mem;
        r1: 1 = 0 => (G, int, 3);
        queue []; mem m }
  mov r10, G @main
  mov r11, B @main
  jmpG r10
  jmpB r11
}
)";
  Expected<Program> P = load(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  Expected<MachineState> S = P->initialState();
  ASSERT_FALSE(S);
  EXPECT_NE(S.message().find("conditional"), std::string::npos);
}

TEST(InitialStateTest, NonEmptyEntryQueueRejected) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
entry main
block main {
  pre { forall m: mem; queue [(256, 5)]; mem m }
  mov r10, G @main
  mov r11, B @main
  jmpG r10
  jmpB r11
}
)";
  Expected<Program> P = load(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  Expected<MachineState> S = P->initialState();
  ASSERT_FALSE(S);
  EXPECT_NE(S.message().find("queue"), std::string::npos);
}

TEST(InitialStateTest, DataCellsPopulateMemory) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
entry main
data {
  100: int = -7
  104: code(@main) = @main
}
block main {
  mov r10, G @main
  mov r11, B @main
  jmpG r10
  jmpB r11
}
)";
  Expected<Program> P = load(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  Expected<MachineState> S = P->initialState();
  ASSERT_TRUE(S) << S.message();
  EXPECT_EQ(S->Mem.get(100), -7);
  EXPECT_EQ(S->Mem.get(104), P->addressOf("main"));
  EXPECT_TRUE(S->Queue.empty());
}

TEST(LayoutTest, HeapTypingShape) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
entry main
data { 100: int = 1 }
block main {
  mov r10, G @main
  mov r11, B @main
  jmpG r10
  jmpB r11
}
)";
  Expected<Program> P = load(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  const HeapTyping &Psi = P->heapTyping();
  // The block entry address carries the code type of the block...
  const BasicType *Entry = Psi.lookup(P->addressOf("main"));
  ASSERT_NE(Entry, nullptr);
  EXPECT_TRUE(Entry->isCode());
  // ...a data address carries `contents-type ref`...
  const BasicType *Cell = Psi.lookup(100);
  ASSERT_NE(Cell, nullptr);
  ASSERT_TRUE(Cell->isRef());
  EXPECT_TRUE(Cell->refPointee()->isInt());
  // ...and interior instruction addresses are not in Ψ.
  EXPECT_EQ(Psi.lookup(P->addressOf("main") + 1), nullptr);
}

TEST(SemanticsEdge, WrappingArithmeticInPrograms) {
  // Machine arithmetic wraps; the checker's singleton expressions agree
  // (the prover uses the same wrapping semantics).
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
entry main
exit done
data { 256: int = 0 }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 9223372036854775807
  add r1, r1, G 1
  mov r2, G 256
  stG r2, r1
  mov r3, B 9223372036854775807
  add r3, r3, B 1
  mov r4, B 256
  stB r4, r3
  mov r10, G @done
  mov r11, B @done
  jmpG r10
  jmpB r11
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  Expected<Program> P = load(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  DiagnosticEngine DC;
  EXPECT_TRUE(checkProgram(TC, *P, DC)) << DC.str();
  Expected<MachineState> S = P->initialState();
  ASSERT_TRUE(S) << S.message();
  RunResult R = run(*S, P->exitAddress(), 1000);
  ASSERT_EQ(R.Status, RunStatus::Halted);
  ASSERT_EQ(R.Trace.size(), 1u);
  EXPECT_EQ(R.Trace[0].Val, INT64_MIN);
}

} // namespace
