//===- tests/wile_compiler_test.cpp - Wile front end & backends -----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "wile/Codegen.h"
#include "wile/Evaluate.h"
#include "wile/Kernels.h"
#include "wile/Lower.h"
#include "wile/Parser.h"

#include <gtest/gtest.h>

using namespace talft;
using namespace talft::wile;

namespace {

WileProgram parseOk(const char *Src) {
  DiagnosticEngine Diags;
  Expected<WileProgram> P = parseWile(Src, Diags);
  EXPECT_TRUE(P) << P.message();
  return P ? std::move(*P) : WileProgram();
}

TEST(WileParserTest, DeclarationsAndStatements) {
  WileProgram P = parseOk(R"(
var x = 5;
var y;
array a[8] @ 1000;
x = x + 2 * y;
a[3] = x;
output(a[3]);
while (x != 0) { x = x - 1; }
if (x == y) { y = 1; } else { y = 2; }
)");
  ASSERT_EQ(P.Vars.size(), 2u);
  EXPECT_EQ(P.Vars[0].Name, "x");
  EXPECT_EQ(P.Vars[0].Init, 5);
  EXPECT_EQ(P.Vars[1].Init, 0);
  ASSERT_EQ(P.Arrays.size(), 1u);
  EXPECT_EQ(P.Arrays[0].Base, 1000);
  EXPECT_EQ(P.Body.size(), 5u);
}

TEST(WileParserTest, RejectsUndeclaredNames) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseWile("x = 1;", Diags));
  Diags.clear();
  EXPECT_FALSE(parseWile("var x; x = a[0];", Diags));
  Diags.clear();
  EXPECT_FALSE(parseWile("var x; var x;", Diags));
}

TEST(WileParserTest, RejectsSyntaxErrors) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseWile("var x = ;", Diags));
  Diags.clear();
  EXPECT_FALSE(parseWile("var x; while x { }", Diags));
  Diags.clear();
  EXPECT_FALSE(parseWile("var x; x = 1", Diags)); // missing ';'
}

TEST(WileLowerTest, BoundsChecking) {
  DiagnosticEngine Diags;
  Expected<WileProgram> P = parseWile("array a[4]; a[4] = 1;", Diags);
  ASSERT_TRUE(P) << P.message();
  EXPECT_FALSE(lowerToIR(*P, Diags));
  EXPECT_NE(Diags.str().find("out of bounds"), std::string::npos);
}

TEST(WileLowerTest, CondZeroFallthroughInvariant) {
  DiagnosticEngine Diags;
  Expected<WileProgram> P = parseWile(R"(
var x = 3;
while (x != 0) { x = x - 1; }
while (x == 0) { x = 1; }
if (x == 1) { x = 2; } else { x = 3; }
output(x);
)", Diags);
  ASSERT_TRUE(P) << P.message();
  Expected<IRProgram> IR = lowerToIR(*P, Diags);
  ASSERT_TRUE(IR) << IR.message();
  // Every CondZero's fall-through target is laid out immediately after.
  for (size_t I = 0; I != IR->Blocks.size(); ++I) {
    const IRBlock &B = IR->Blocks[I];
    if (B.T != IRBlock::Term::CondZero)
      continue;
    ASSERT_LT(I + 1, IR->Blocks.size());
    EXPECT_EQ(IR->Blocks[I + 1].Label, B.Target1);
  }
}

/// Reference interpreter for Wile used as the compilation oracle.
class WileInterp {
public:
  explicit WileInterp(const WileProgram &P) : P(P) {
    for (const VarDecl &V : P.Vars)
      Vars[V.Name] = V.Init;
    for (const ArrayDecl &A : P.Arrays)
      Arrays[A.Name] = std::vector<int64_t>((size_t)A.Size, 0);
  }

  std::vector<int64_t> run() {
    execList(P.Body);
    return Outputs;
  }

private:
  const WileProgram &P;
  std::map<std::string, int64_t> Vars;
  std::map<std::string, std::vector<int64_t>> Arrays;
  std::vector<int64_t> Outputs;

  int64_t eval(const wile::Expr &E) {
    switch (E.K) {
    case wile::Expr::Kind::Const:
      return E.N;
    case wile::Expr::Kind::Var:
      return Vars.at(E.Name);
    case wile::Expr::Kind::Index:
      return Arrays.at(E.Name).at((size_t)eval(*E.Lhs));
    case wile::Expr::Kind::Bin:
      return evalAluOp(E.Op, eval(*E.Lhs), eval(*E.Rhs));
    }
    return 0;
  }

  bool evalCond(const Cond &C) {
    int64_t L = eval(*C.Lhs);
    switch (C.K) {
    case Cond::Kind::NonZero:
      return L != 0;
    case Cond::Kind::Eq:
      return L == eval(*C.Rhs);
    case Cond::Kind::Ne:
      return L != eval(*C.Rhs);
    }
    return false;
  }

  void execList(const std::vector<std::unique_ptr<Stmt>> &Stmts) {
    for (const auto &S : Stmts)
      exec(*S);
  }

  void exec(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Assign:
      Vars[S.Name] = eval(*S.Value);
      return;
    case Stmt::Kind::StoreIndex:
      Arrays.at(S.Name).at((size_t)eval(*S.Index)) = eval(*S.Value);
      return;
    case Stmt::Kind::Output:
      Outputs.push_back(eval(*S.Value));
      return;
    case Stmt::Kind::While:
      while (evalCond(*S.C))
        execList(S.Body);
      return;
    case Stmt::Kind::If:
      if (evalCond(*S.C))
        execList(S.Body);
      else
        execList(S.Else);
      return;
    }
  }
};

/// Output-cell writes of a compiled run (dropping array traffic).
std::vector<int64_t> outputWrites(const ExecutionProfile &Profile,
                                  int64_t OutputAddr) {
  std::vector<int64_t> Out;
  for (const QueueEntry &E : Profile.Trace)
    if (E.Address == OutputAddr)
      Out.push_back(E.Val);
  return Out;
}

/// Compiles under both backends and checks each against the reference
/// interpreter.
void expectCompilesAndAgrees(const std::string &Src, bool ExpectTypable) {
  DiagnosticEngine Diags;
  Expected<WileProgram> Ast = parseWile(Src, Diags);
  ASSERT_TRUE(Ast) << Ast.message();
  std::vector<int64_t> Want = WileInterp(*Ast).run();

  for (CodegenMode Mode :
       {CodegenMode::Unprotected, CodegenMode::FaultTolerant}) {
    TypeContext TC;
    DiagnosticEngine D2;
    Expected<CompiledProgram> CP = compileWile(TC, Src, Mode, D2);
    ASSERT_TRUE(CP) << CP.message();
    Expected<ExecutionProfile> Profile =
        profileExecution(*CP, 10'000'000);
    ASSERT_TRUE(Profile) << Profile.message();
    EXPECT_EQ(Profile->Status, RunStatus::Halted);
    Expected<WileProgram> Ast2 = parseWile(Src, D2);
    ASSERT_TRUE(Ast2);
    Expected<IRProgram> IR = lowerToIR(*Ast2, D2);
    ASSERT_TRUE(IR);
    EXPECT_EQ(outputWrites(*Profile, IR->OutputAddr), Want)
        << "mode=" << (Mode == CodegenMode::Unprotected ? "base" : "ft");

    if (Mode == CodegenMode::FaultTolerant && ExpectTypable) {
      DiagnosticEngine DC;
      Expected<CheckedProgram> C = checkProgram(TC, CP->Prog, DC);
      EXPECT_TRUE(C) << DC.str();
    }
  }
}

TEST(WileCodegenTest, StraightLineArithmetic) {
  expectCompilesAndAgrees("var x = 3; var y = 4; output(x * y + 2);",
                          /*ExpectTypable=*/true);
}

TEST(WileCodegenTest, WhileLoopCountdown) {
  expectCompilesAndAgrees(R"(
var n = 5; var acc = 0;
while (n != 0) { acc = acc + n * n; n = n - 1; }
output(acc);
)", true);
}

TEST(WileCodegenTest, WhileEqCondition) {
  expectCompilesAndAgrees(R"(
var n = 0; var acc = 7;
while (n == 0) { acc = acc * 2; n = acc - 28; }
output(acc);
output(n);
)", true);
}

TEST(WileCodegenTest, IfElseBothSides) {
  expectCompilesAndAgrees(R"(
var x = 4; var y = 0;
if (x == 4) { y = 10; } else { y = 20; }
output(y);
if (x != 4) { y = 30; } else { y = 40; }
output(y);
if (x) { y = 1; }
output(y);
)", true);
}

TEST(WileCodegenTest, ConstantIndexedArrays) {
  expectCompilesAndAgrees(R"(
var t = 0;
array a[4];
a[0] = 11; a[1] = 22;
a[2] = a[0] + a[1];
t = a[2] * 2;
output(t);
)", true);
}

TEST(WileCodegenTest, DynamicIndexedArrays) {
  expectCompilesAndAgrees(R"(
var i = 0; var sum = 0;
array a[8];
while (i != 8) { a[i] = i * i; i = i + 1; }
i = 0;
while (i != 8) { sum = sum + a[i]; i = i + 1; }
output(sum);
)", /*ExpectTypable=*/false);
}

TEST(WileCodegenTest, NestedControlFlow) {
  expectCompilesAndAgrees(R"(
var i = 3; var j = 0; var acc = 0;
while (i != 0) {
  j = 4;
  while (j != 0) {
    if (j == i) { acc = acc + 100; } else { acc = acc + 1; }
    j = j - 1;
  }
  i = i - 1;
}
output(acc);
)", true);
}

TEST(WileCodegenTest, UnaryMinusAndPrecedence) {
  expectCompilesAndAgrees(
      "var x = 5; output(-x + 2 * 3 - (4 - 1) * 2); output(-(x * x));",
      true);
}

class KernelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KernelTest, CompilesRunsAndAgreesWithReference) {
  const Kernel &K = benchmarkKernels()[GetParam()];
  expectCompilesAndAgrees(K.Source, K.Typable);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelTest,
    ::testing::Range<size_t>(0, benchmarkKernels().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = benchmarkKernels()[Info.param].Name;
      for (char &C : Name)
        if (!isalnum((unsigned char)C))
          C = '_';
      return Name;
    });

} // namespace
