//===- tests/tal_lexer_test.cpp - Assembly tokenizer tests ----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "tal/Lexer.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

std::vector<Token> lexOk(std::string_view Input) {
  std::vector<Token> Tokens;
  std::string Err;
  SourceLoc Loc;
  EXPECT_TRUE(lexTal(Input, Tokens, Err, Loc)) << Err;
  return Tokens;
}

TEST(LexerTest, EmptyInput) {
  std::vector<Token> T = lexOk("");
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T[0].is(TokKind::Eof));
}

TEST(LexerTest, CommentsAreSkipped) {
  std::vector<Token> T = lexOk("// a comment\nfoo // trailing\n");
  ASSERT_EQ(T.size(), 2u);
  EXPECT_TRUE(T[0].isIdent("foo"));
}

TEST(LexerTest, RegistersLexSpecially) {
  std::vector<Token> T = lexOk("r0 r63 d r64 rx");
  EXPECT_TRUE(T[0].is(TokKind::Reg));
  EXPECT_EQ(T[0].Num, 0);
  EXPECT_TRUE(T[1].is(TokKind::Reg));
  EXPECT_EQ(T[1].Num, 63);
  EXPECT_TRUE(T[2].is(TokKind::Reg));
  EXPECT_EQ(T[2].Text, "d");
  // Out-of-range registers and non-numeric suffixes are identifiers.
  EXPECT_TRUE(T[3].is(TokKind::Ident));
  EXPECT_TRUE(T[4].is(TokKind::Ident));
}

TEST(LexerTest, NumbersAndMinus) {
  std::vector<Token> T = lexOk("42 -7");
  EXPECT_TRUE(T[0].is(TokKind::Number));
  EXPECT_EQ(T[0].Num, 42);
  EXPECT_TRUE(T[1].is(TokKind::Minus));
  EXPECT_TRUE(T[2].is(TokKind::Number));
  EXPECT_EQ(T[2].Num, 7);
}

TEST(LexerTest, PunctuationAndArrow) {
  std::vector<Token> T = lexOk("{ } ( ) [ ] : , ; = => @ + - *");
  TokKind Expected[] = {TokKind::LBrace,   TokKind::RBrace, TokKind::LParen,
                        TokKind::RParen,   TokKind::LBracket,
                        TokKind::RBracket, TokKind::Colon,  TokKind::Comma,
                        TokKind::Semi,     TokKind::Equal,  TokKind::Arrow,
                        TokKind::At,       TokKind::Plus,   TokKind::Minus,
                        TokKind::Star,     TokKind::Eof};
  ASSERT_EQ(T.size(), std::size(Expected));
  for (size_t I = 0; I != T.size(); ++I)
    EXPECT_EQ(T[I].Kind, Expected[I]) << "token " << I;
}

TEST(LexerTest, LocationsTrackLinesAndColumns) {
  std::vector<Token> T = lexOk("a\n  b");
  EXPECT_EQ(T[0].Loc, SourceLoc(1, 1));
  EXPECT_EQ(T[1].Loc, SourceLoc(2, 3));
}

TEST(LexerTest, DollarAndDotsInIdentifiers) {
  std::vector<Token> T = lexOk("pc$loop m$done a.b");
  EXPECT_TRUE(T[0].isIdent("pc$loop"));
  EXPECT_TRUE(T[1].isIdent("m$done"));
  EXPECT_TRUE(T[2].isIdent("a.b"));
}

TEST(LexerTest, RejectsUnknownCharacters) {
  std::vector<Token> Tokens;
  std::string Err;
  SourceLoc Loc;
  EXPECT_FALSE(lexTal("a ? b", Tokens, Err, Loc));
  EXPECT_EQ(Loc, SourceLoc(1, 3));
}

} // namespace
