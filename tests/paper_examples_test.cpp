//===- tests/paper_examples_test.cpp - The paper's inline examples --------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// End-to-end coverage of the three Section 2.2 examples: the paired store
// (well-typed, runs, fault-tolerant), the CSE-broken store (rejected by
// the checker), and the indirect jump through memory (well-typed, runs).
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "check/ProgramChecker.h"
#include "fault/Theorems.h"
#include "sim/Machine.h"
#include "tal/Parser.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

/// Parses, lays out and type-checks a source, expecting success.
struct CheckedFixture {
  TypeContext TC;
  DiagnosticEngine Diags;
  std::optional<Program> Prog;
  std::optional<CheckedProgram> CP;

  void load(const char *Source) {
    Expected<Program> P = parseAndLayoutTalProgram(TC, Source, Diags);
    ASSERT_TRUE(P) << P.message();
    Prog.emplace(std::move(*P));
    Expected<CheckedProgram> C = checkProgram(TC, *Prog, Diags);
    ASSERT_TRUE(C) << Diags.str();
    CP.emplace(std::move(*C));
  }
};

TEST(PairedStoreExample, TypeChecks) {
  CheckedFixture F;
  ASSERT_NO_FATAL_FAILURE(F.load(progs::PairedStore));
}

TEST(PairedStoreExample, Stores5At256) {
  CheckedFixture F;
  ASSERT_NO_FATAL_FAILURE(F.load(progs::PairedStore));
  Expected<MachineState> S = F.Prog->initialState();
  ASSERT_TRUE(S) << S.message();
  RunResult R = run(*S, F.Prog->exitAddress(), 1000);
  EXPECT_EQ(R.Status, RunStatus::Halted);
  ASSERT_EQ(R.Trace.size(), 1u);
  EXPECT_EQ(R.Trace[0].Address, 256);
  EXPECT_EQ(R.Trace[0].Val, 5);
  EXPECT_EQ(S->Mem.get(256), 5);
}

TEST(PairedStoreExample, EverySingleFaultIsTolerated) {
  CheckedFixture F;
  ASSERT_NO_FATAL_FAILURE(F.load(progs::PairedStore));
  TheoremConfig Config;
  TheoremReport Report = checkFaultTolerance(F.TC, *F.CP, Config);
  EXPECT_TRUE(Report.Ok) << (Report.Violations.empty()
                                 ? "?"
                                 : Report.Violations.front());
  EXPECT_GT(Report.InjectionsTested, 0u);
  EXPECT_GT(Report.DetectedFaults, 0u);
}

TEST(CseBrokenExample, IsRejectedByTheChecker) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P = parseAndLayoutTalProgram(TC, progs::CseBroken,
                                                 Diags);
  ASSERT_TRUE(P) << P.message();
  Expected<CheckedProgram> C = checkProgram(TC, *P, Diags);
  EXPECT_FALSE(C);
  EXPECT_TRUE(Diags.hasErrors());
  // The offending instruction is the blue store reusing green registers.
  EXPECT_NE(Diags.str().find("stB"), std::string::npos) << Diags.str();
}

TEST(CseBrokenExample, SilentCorruptionWithoutTheChecker) {
  // Demonstrate *why* the checker matters: the ill-typed program runs
  // fine fault-free, but a fault in r1 after instruction 1 silently
  // changes the stored value — the store commits because both stG and stB
  // read the same corrupted register.
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P = parseAndLayoutTalProgram(TC, progs::CseBroken,
                                                 Diags);
  ASSERT_TRUE(P) << P.message();
  Expected<MachineState> S0 = P->initialState();
  ASSERT_TRUE(S0) << S0.message();

  // Fault-free run commits (256, 5).
  MachineState Clean = *S0;
  RunResult Ref = run(Clean, P->exitAddress(), 1000);
  ASSERT_EQ(Ref.Status, RunStatus::Halted);
  ASSERT_EQ(Ref.Trace.size(), 1u);
  EXPECT_EQ(Ref.Trace[0].Val, 5);

  // Corrupt r1 after "mov r1, G 5" (2 steps: fetch + execute).
  MachineState Faulty = *S0;
  for (int I = 0; I != 2; ++I)
    ASSERT_EQ(step(Faulty).Status, StepStatus::Ok);
  Faulty.Regs.set(Reg::general(1), Value::green(99));
  RunResult FR = run(Faulty, P->exitAddress(), 1000);
  EXPECT_EQ(FR.Status, RunStatus::Halted);
  ASSERT_EQ(FR.Trace.size(), 1u);
  // Silent data corruption: the wrong value was committed undetected.
  EXPECT_EQ(FR.Trace[0].Val, 99);
}

TEST(IndirectJumpExample, TypeChecksAndRuns) {
  CheckedFixture F;
  ASSERT_NO_FATAL_FAILURE(F.load(progs::IndirectJump));
  Expected<MachineState> S = F.Prog->initialState();
  ASSERT_TRUE(S) << S.message();
  RunResult R = run(*S, F.Prog->exitAddress(), 1000);
  EXPECT_EQ(R.Status, RunStatus::Halted);
  EXPECT_TRUE(R.Trace.empty());
}

TEST(IndirectJumpExample, EverySingleFaultIsTolerated) {
  CheckedFixture F;
  ASSERT_NO_FATAL_FAILURE(F.load(progs::IndirectJump));
  TheoremReport Report = checkFaultTolerance(F.TC, *F.CP, TheoremConfig());
  EXPECT_TRUE(Report.Ok) << (Report.Violations.empty()
                                 ? "?"
                                 : Report.Violations.front());
}

TEST(CountdownLoop, TypeChecksAndProducesTheTrace) {
  CheckedFixture F;
  ASSERT_NO_FATAL_FAILURE(F.load(progs::CountdownLoop));
  Expected<MachineState> S = F.Prog->initialState();
  ASSERT_TRUE(S) << S.message();
  RunResult R = run(*S, F.Prog->exitAddress(), 10000);
  EXPECT_EQ(R.Status, RunStatus::Halted);
  ASSERT_EQ(R.Trace.size(), 3u);
  EXPECT_EQ(R.Trace[0].Val, 3);
  EXPECT_EQ(R.Trace[1].Val, 2);
  EXPECT_EQ(R.Trace[2].Val, 1);
}

TEST(CountdownLoop, FaultFreeMetatheoryHolds) {
  CheckedFixture F;
  ASSERT_NO_FATAL_FAILURE(F.load(progs::CountdownLoop));
  TheoremReport Report = checkFaultFreeExecution(F.TC, *F.CP,
                                                 TheoremConfig());
  EXPECT_TRUE(Report.Ok) << (Report.Violations.empty()
                                 ? "?"
                                 : Report.Violations.front());
  EXPECT_GT(Report.StatesTypechecked, 0u);
}

TEST(CountdownLoop, EverySingleFaultIsTolerated) {
  CheckedFixture F;
  ASSERT_NO_FATAL_FAILURE(F.load(progs::CountdownLoop));
  TheoremConfig Config;
  TheoremReport Report = checkFaultTolerance(F.TC, *F.CP, Config);
  EXPECT_TRUE(Report.Ok) << (Report.Violations.empty()
                                 ? "?"
                                 : Report.Violations.front());
}

TEST(QueueForwarding, TypeChecksAndRuns) {
  CheckedFixture F;
  ASSERT_NO_FATAL_FAILURE(F.load(progs::QueueForwarding));
  Expected<MachineState> S = F.Prog->initialState();
  ASSERT_TRUE(S) << S.message();
  RunResult R = run(*S, F.Prog->exitAddress(), 10000);
  EXPECT_EQ(R.Status, RunStatus::Halted);
  ASSERT_EQ(R.Trace.size(), 2u);
  EXPECT_EQ(R.Trace[0].Address, 404);
  EXPECT_EQ(R.Trace[0].Val, 8);
  EXPECT_EQ(R.Trace[1].Val, 8);
}

TEST(PendingStoreAcrossJump, TypeChecksAndCommitsOnTheFarSide) {
  CheckedFixture F;
  ASSERT_NO_FATAL_FAILURE(F.load(progs::PendingStoreAcrossJump));
  Expected<MachineState> S = F.Prog->initialState();
  ASSERT_TRUE(S) << S.message();
  RunResult R = run(*S, F.Prog->exitAddress(), 1000);
  EXPECT_EQ(R.Status, RunStatus::Halted);
  ASSERT_EQ(R.Trace.size(), 1u);
  EXPECT_EQ(R.Trace[0], (QueueEntry{256, 5}));
}

TEST(PendingStoreAcrossJump, EverySingleFaultIsTolerated) {
  CheckedFixture F;
  ASSERT_NO_FATAL_FAILURE(F.load(progs::PendingStoreAcrossJump));
  TheoremReport Report = checkFaultTolerance(F.TC, *F.CP, TheoremConfig());
  EXPECT_TRUE(Report.Ok) << (Report.Violations.empty()
                                 ? "?"
                                 : Report.Violations.front());
}

TEST(QueueForwarding, FaultFreeMetatheoryHolds) {
  CheckedFixture F;
  ASSERT_NO_FATAL_FAILURE(F.load(progs::QueueForwarding));
  TheoremReport Report = checkFaultFreeExecution(F.TC, *F.CP,
                                                 TheoremConfig());
  EXPECT_TRUE(Report.Ok) << (Report.Violations.empty()
                                 ? "?"
                                 : Report.Violations.front());
}

} // namespace
