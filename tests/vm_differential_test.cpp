//===- tests/vm_differential_test.cpp - VM vs. reference, bit for bit -----===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The differential oracle for the decoded engine (vm/Engine.h): the VM is
// only allowed to exist because it is observationally indistinguishable
// from the structural interpreter. Every shared test program runs on both
// engines in lockstep — same rule names, same outputs, same full machine
// states after every transition, on fault-free and fault-injected runs,
// under both wild-load policies — and whole campaigns must produce
// identical verdict tables on either engine.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "fault/Campaign.h"
#include "sim/ExecEngine.h"
#include "tal/Parser.h"
#include "vm/Engine.h"
#include "vm/JitEngine.h"
#include "wile/Codegen.h"
#include "wile/Kernels.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

using namespace talft;

namespace {

struct NamedProgram {
  const char *Name;
  const char *Source;
  /// False for programs the checker rejects (they still run raw).
  bool WellTyped;
};

const std::vector<NamedProgram> &allPrograms() {
  static const std::vector<NamedProgram> Programs = {
      {"PairedStore", progs::PairedStore, true},
      {"CseBroken", progs::CseBroken, false},
      {"IndirectJump", progs::IndirectJump, true},
      {"CountdownLoop", progs::CountdownLoop, true},
      {"QueueForwarding", progs::QueueForwarding, true},
      {"PendingStoreAcrossJump", progs::PendingStoreAcrossJump, true},
  };
  return Programs;
}

Program parseOrDie(TypeContext &TC, const NamedProgram &NP) {
  DiagnosticEngine Diags;
  Expected<Program> P = parseAndLayoutTalProgram(TC, NP.Source, Diags);
  EXPECT_TRUE(bool(P)) << NP.Name << ": " << Diags.str();
  return std::move(*P);
}

/// Field-by-field state equality (MachineState has no operator==; the
/// fields all do).
void expectSameState(const MachineState &A, const MachineState &B,
                     const std::string &Where) {
  ASSERT_EQ(A.Faulted, B.Faulted) << Where;
  if (A.Faulted)
    return;
  EXPECT_EQ(A.Regs, B.Regs) << Where;
  EXPECT_EQ(A.Mem, B.Mem) << Where;
  EXPECT_EQ(A.Queue, B.Queue) << Where;
  EXPECT_EQ(A.IR.has_value(), B.IR.has_value()) << Where;
  if (A.IR && B.IR) {
    EXPECT_EQ(*A.IR, *B.IR) << Where;
  }
}

/// Steps both engines in lockstep for \p MaxSteps transitions (or until
/// both stop), comparing the StepResult and the full state after every
/// transition.
void lockstep(const ExecEngine &Vm, MachineState Ref, MachineState VmS,
              const StepPolicy &Policy, uint64_t MaxSteps,
              const std::string &Where) {
  for (uint64_t I = 0; I != MaxSteps; ++I) {
    StepResult RR = referenceEngine().step(Ref, Policy);
    StepResult VR = Vm.step(VmS, Policy);
    std::string At = Where + " step " + std::to_string(I);
    ASSERT_EQ(RR.Status, VR.Status) << At;
    EXPECT_EQ(RR.Output.has_value(), VR.Output.has_value()) << At;
    if (RR.Output && VR.Output) {
      EXPECT_EQ(*RR.Output, *VR.Output) << At;
    }
    // Rule names are part of the observable contract (they name the
    // paper's operational rules).
    if (RR.Rule || VR.Rule) {
      ASSERT_NE(RR.Rule, nullptr) << At;
      ASSERT_NE(VR.Rule, nullptr) << At;
      EXPECT_STREQ(RR.Rule, VR.Rule) << At;
    }
    expectSameState(Ref, VmS, At);
    if (RR.Status != StepStatus::Ok)
      return;
  }
}

TEST(VmDifferential, LockstepFaultFree) {
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());
    for (WildLoadPolicy WL : {WildLoadPolicy::Trap, WildLoadPolicy::Garbage}) {
      StepPolicy Policy;
      Policy.WildLoad = WL;
      Expected<MachineState> S = P.initialState();
      ASSERT_TRUE(bool(S)) << NP.Name;
      // 400 steps rolls every program through its exit self-loop.
      lockstep(*Vm, *S, *S, Policy, 400,
               std::string(NP.Name) + (WL == WildLoadPolicy::Trap
                                           ? "/trap"
                                           : "/garbage"));
    }
  }
}

TEST(VmDifferential, RunResultsAndMidPairBudgets) {
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());
    Expected<MachineState> S0 = P.initialState();
    ASSERT_TRUE(bool(S0)) << NP.Name;
    // Odd budgets deliberately expire between a fetch and its execution:
    // the VM must leave the same materialized instruction register behind.
    for (uint64_t Budget : {0ull, 1ull, 2ull, 3ull, 7ull, 17ull, 40ull,
                            101ull, 5000ull}) {
      MachineState Ref = *S0, VmS = *S0;
      RunResult RR = referenceEngine().run(Ref, P.exitAddress(), Budget,
                                           StepPolicy());
      RunResult VR = Vm->run(VmS, P.exitAddress(), Budget, StepPolicy());
      std::string At =
          std::string(NP.Name) + " budget " + std::to_string(Budget);
      EXPECT_EQ(RR.Status, VR.Status) << At;
      EXPECT_EQ(RR.Steps, VR.Steps) << At;
      EXPECT_EQ(RR.Trace, VR.Trace) << At;
      expectSameState(Ref, VmS, At);

      // replaySteps must stop at the same point with the same outputs.
      MachineState Ref2 = *S0, VmS2 = *S0;
      OutputTrace RefT, VmT;
      ReplayResult Rp = referenceEngine().replaySteps(Ref2, Budget, RefT,
                                                      StepPolicy());
      ReplayResult Vp = Vm->replaySteps(VmS2, Budget, VmT, StepPolicy());
      EXPECT_EQ(Rp.Last, Vp.Last) << At;
      EXPECT_EQ(Rp.Taken, Vp.Taken) << At;
      EXPECT_EQ(RefT, VmT) << At;
      expectSameState(Ref2, VmS2, At + " (replay)");
    }
  }
}

TEST(VmDifferential, LockstepUnderRandomSingleFaults) {
  std::mt19937 Rng(20070611); // PLDI 2007, for reproducibility
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());
    Expected<MachineState> S0 = P.initialState();
    ASSERT_TRUE(bool(S0)) << NP.Name;

    MachineState Probe = *S0;
    RunResult Ref = referenceEngine().run(Probe, P.exitAddress(), 100000,
                                          StepPolicy());
    ASSERT_EQ(Ref.Status, RunStatus::Halted) << NP.Name;

    std::vector<int64_t> Values = representativeCorruptions(P);
    for (int Trial = 0; Trial != 60; ++Trial) {
      uint64_t At = std::uniform_int_distribution<uint64_t>(
          0, Ref.Steps)(Rng);
      MachineState S = *S0;
      OutputTrace Prefix;
      referenceEngine().replaySteps(S, At, Prefix, StepPolicy());
      std::vector<FaultSite> Sites = enumerateFaultSites(S);
      ASSERT_FALSE(Sites.empty());
      const FaultSite &Site = Sites[std::uniform_int_distribution<size_t>(
          0, Sites.size() - 1)(Rng)];
      int64_t V = Values[std::uniform_int_distribution<size_t>(
          0, Values.size() - 1)(Rng)];
      if (V == currentValueAt(S, Site))
        continue;
      injectFault(S, Site, V);
      // Corrupted pcs, queue entries and mid-pair instruction registers
      // all flow through here; both engines must agree step for step.
      lockstep(*Vm, S, S, StepPolicy(), 300,
               std::string(NP.Name) + " trial " + std::to_string(Trial));
    }
  }
}

TEST(VmDifferential, InjectionPlanCampaignsAgree) {
  std::mt19937 Rng(8102006);
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());

    MachineState Probe = *P.initialState();
    RunResult Ref = referenceEngine().run(Probe, P.exitAddress(), 100000,
                                          StepPolicy());
    ASSERT_EQ(Ref.Status, RunStatus::Halted) << NP.Name;

    PlanCampaign Spec;
    Spec.Prog = &P;
    std::vector<int64_t> Values = representativeCorruptions(P);
    for (int I = 0; I != 120; ++I) {
      uint64_t At =
          std::uniform_int_distribution<uint64_t>(0, Ref.Steps)(Rng);
      Reg R = Reg::fromDenseIndex(std::uniform_int_distribution<unsigned>(
          0, Reg::NumRegs - 1)(Rng));
      int64_t V = Values[std::uniform_int_distribution<size_t>(
          0, Values.size() - 1)(Rng)];
      Spec.Plans.push_back({{At, FaultSite::reg(R), V}});
    }

    CampaignOptions RefOpts;
    CampaignResult OnRef = runInjectionPlans(Spec, RefOpts);
    CampaignOptions VmOpts;
    VmOpts.Engine = Vm.get();
    CampaignResult OnVm = runInjectionPlans(Spec, VmOpts);

    EXPECT_EQ(OnRef.Ok, OnVm.Ok) << NP.Name;
    EXPECT_EQ(OnRef.ReferenceSteps, OnVm.ReferenceSteps) << NP.Name;
    EXPECT_EQ(OnRef.ReferenceTrace, OnVm.ReferenceTrace) << NP.Name;
    EXPECT_EQ(OnRef.Table, OnVm.Table) << NP.Name;
    EXPECT_EQ(OnRef.Violations, OnVm.Violations) << NP.Name;
    EXPECT_STREQ(OnRef.Stats.Engine, "reference");
    EXPECT_STREQ(OnVm.Stats.Engine, "vm");
  }
}

TEST(VmDifferential, FaultToleranceCampaignsAgree) {
  for (const NamedProgram &NP : allPrograms()) {
    if (!NP.WellTyped)
      continue;
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    DiagnosticEngine Diags;
    Expected<CheckedProgram> CP = checkProgram(TC, P, Diags);
    ASSERT_TRUE(bool(CP)) << NP.Name << ": " << Diags.str();
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());

    TheoremConfig Config;
    Config.InjectionStride = 2; // keep the exhaustive sweep unit-sized

    for (ResumeMode Resume : {ResumeMode::Snapshot, ResumeMode::Replay}) {
      CampaignOptions RefOpts;
      RefOpts.Resume = Resume;
      CampaignResult OnRef =
          runFaultToleranceCampaign(TC, *CP, Config, RefOpts);
      CampaignOptions VmOpts;
      VmOpts.Resume = Resume;
      VmOpts.Engine = Vm.get();
      CampaignResult OnVm =
          runFaultToleranceCampaign(TC, *CP, Config, VmOpts);

      std::string At = std::string(NP.Name) +
                       (Resume == ResumeMode::Snapshot ? "/snapshot"
                                                       : "/replay");
      EXPECT_EQ(OnRef.Ok, OnVm.Ok) << At;
      EXPECT_EQ(OnRef.ReferenceSteps, OnVm.ReferenceSteps) << At;
      EXPECT_EQ(OnRef.ReferenceTrace, OnVm.ReferenceTrace) << At;
      EXPECT_EQ(OnRef.Table, OnVm.Table) << At;
      EXPECT_EQ(OnRef.Violations, OnVm.Violations) << At;
      EXPECT_TRUE(OnVm.Ok) << At;
    }
  }
}

//===----------------------------------------------------------------------===//
// JIT tier vs vm: the native engine is held to the same oracle the vm was
// held to against the reference. step() delegates, so the interesting
// surfaces are the fused loops: run / replaySteps / runContinuation from
// clean, mid-pair and fault-corrupted states, plus whole campaigns. On
// hosts without the native tier the engine degenerates to the vm engine;
// the differential would pass vacuously, so we skip with a visible notice.
//===----------------------------------------------------------------------===//

/// Compares every fused-loop surface of \p A and \p B from \p S0 across a
/// budget ladder that covers empty, mid-pair and unconstrained runs.
void compareFusedLoops(const ExecEngine &A, const ExecEngine &B,
                       const MachineState &S0, Addr Exit,
                       const StepPolicy &Policy, const std::string &Where) {
  for (uint64_t Budget :
       {0ull, 1ull, 2ull, 3ull, 17ull, 301ull, 100000ull}) {
    std::string At = Where + " budget " + std::to_string(Budget);
    {
      MachineState SA = S0, SB = S0;
      RunResult RA = A.run(SA, Exit, Budget, Policy);
      RunResult RB = B.run(SB, Exit, Budget, Policy);
      ASSERT_EQ(RA.Status, RB.Status) << At << " (run)";
      ASSERT_EQ(RA.Steps, RB.Steps) << At << " (run)";
      EXPECT_EQ(RA.Trace, RB.Trace) << At << " (run)";
      expectSameState(SA, SB, At + " (run)");
      if (!SA.Faulted) {
        EXPECT_EQ(SA.fingerprint(), recomputeFingerprint(SA))
            << At << " (run fingerprint invariant)";
        EXPECT_EQ(SB.fingerprint(), recomputeFingerprint(SB))
            << At << " (run fingerprint invariant)";
      }
    }
    {
      MachineState SA = S0, SB = S0;
      OutputTrace TA, TB;
      ReplayResult RA = A.replaySteps(SA, Budget, TA, Policy);
      ReplayResult RB = B.replaySteps(SB, Budget, TB, Policy);
      ASSERT_EQ(RA.Last, RB.Last) << At << " (replay)";
      ASSERT_EQ(RA.Taken, RB.Taken) << At << " (replay)";
      EXPECT_EQ(TA, TB) << At << " (replay)";
      expectSameState(SA, SB, At + " (replay)");
    }
    {
      MachineState SA = S0, SB = S0;
      OutputTrace TA, TB;
      RunStatus RA = A.runContinuation(
          SA, Exit, Budget, Policy,
          [&](const QueueEntry &Q) { TA.push_back(Q); });
      RunStatus RB = B.runContinuation(
          SB, Exit, Budget, Policy,
          [&](const QueueEntry &Q) { TB.push_back(Q); });
      ASSERT_EQ(RA, RB) << At << " (continuation)";
      EXPECT_EQ(TA, TB) << At << " (continuation)";
      expectSameState(SA, SB, At + " (continuation)");
    }
  }
}

#define TALFT_REQUIRE_JIT(Jit)                                                 \
  do {                                                                         \
    if (!(Jit).native())                                                       \
      GTEST_SKIP() << "JIT tier unavailable on this host (non-x86-64 or "      \
                      "W^X mapping refused); jit==vm by fallback";             \
  } while (0)

TEST(JitDifferential, FusedLoopsMatchVm) {
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    vm::Engine Vm(P.code());
    vm::JitEngine Jit(P.code());
    TALFT_REQUIRE_JIT(Jit);
    for (WildLoadPolicy WL : {WildLoadPolicy::Trap, WildLoadPolicy::Garbage}) {
      StepPolicy Policy;
      Policy.WildLoad = WL;
      Expected<MachineState> S = P.initialState();
      ASSERT_TRUE(bool(S)) << NP.Name;
      compareFusedLoops(Vm, Jit, *S, P.exitAddress(), Policy,
                        std::string(NP.Name) +
                            (WL == WildLoadPolicy::Trap ? "/trap"
                                                        : "/garbage"));
    }
  }
}

TEST(JitDifferential, FusedLoopsUnderRandomSingleFaults) {
  std::mt19937 Rng(20070612);
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    vm::Engine Vm(P.code());
    vm::JitEngine Jit(P.code());
    TALFT_REQUIRE_JIT(Jit);
    Expected<MachineState> S0 = P.initialState();
    ASSERT_TRUE(bool(S0)) << NP.Name;

    MachineState Probe = *S0;
    RunResult Ref =
        referenceEngine().run(Probe, P.exitAddress(), 100000, StepPolicy());
    ASSERT_EQ(Ref.Status, RunStatus::Halted) << NP.Name;

    std::vector<int64_t> Values = representativeCorruptions(P);
    for (int Trial = 0; Trial != 40; ++Trial) {
      uint64_t At =
          std::uniform_int_distribution<uint64_t>(0, Ref.Steps)(Rng);
      MachineState S = *S0;
      OutputTrace Prefix;
      referenceEngine().replaySteps(S, At, Prefix, StepPolicy());
      std::vector<FaultSite> Sites = enumerateFaultSites(S);
      ASSERT_FALSE(Sites.empty());
      const FaultSite &Site = Sites[std::uniform_int_distribution<size_t>(
          0, Sites.size() - 1)(Rng)];
      int64_t V = Values[std::uniform_int_distribution<size_t>(
          0, Values.size() - 1)(Rng)];
      if (V == currentValueAt(S, Site))
        continue;
      injectFault(S, Site, V);
      compareFusedLoops(Vm, Jit, S, P.exitAddress(), StepPolicy(),
                        std::string(NP.Name) + " trial " +
                            std::to_string(Trial));
    }
  }
}

TEST(JitDifferential, CampaignsAgreeWithVm) {
  for (const NamedProgram &NP : allPrograms()) {
    if (!NP.WellTyped)
      continue;
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    DiagnosticEngine Diags;
    Expected<CheckedProgram> CP = checkProgram(TC, P, Diags);
    ASSERT_TRUE(bool(CP)) << NP.Name << ": " << Diags.str();
    vm::Engine Vm(P.code());
    vm::JitEngine Jit(P.code());
    TALFT_REQUIRE_JIT(Jit);

    TheoremConfig Config;
    Config.InjectionStride = 2;

    for (ResumeMode Resume : {ResumeMode::Snapshot, ResumeMode::Replay}) {
      CampaignOptions VmOpts;
      VmOpts.Resume = Resume;
      VmOpts.Engine = &Vm;
      CampaignResult OnVm = runFaultToleranceCampaign(TC, *CP, Config, VmOpts);
      CampaignOptions JitOpts;
      JitOpts.Resume = Resume;
      JitOpts.Engine = &Jit;
      CampaignResult OnJit =
          runFaultToleranceCampaign(TC, *CP, Config, JitOpts);

      std::string At = std::string(NP.Name) +
                       (Resume == ResumeMode::Snapshot ? "/snapshot"
                                                       : "/replay");
      EXPECT_EQ(OnVm.Ok, OnJit.Ok) << At;
      EXPECT_EQ(OnVm.ReferenceSteps, OnJit.ReferenceSteps) << At;
      EXPECT_EQ(OnVm.ReferenceTrace, OnJit.ReferenceTrace) << At;
      EXPECT_EQ(OnVm.Table, OnJit.Table) << At;
      EXPECT_EQ(OnVm.Violations, OnJit.Violations) << At;
      EXPECT_STREQ(OnJit.Stats.Engine, "jit") << At;
      EXPECT_TRUE(OnJit.Ok) << At;
    }
  }
}

TEST(JitDifferential, Fig10KernelCampaignsAgreeWithVm) {
  // The full engine ladder over every Figure 10 kernel: the jit campaign
  // (convergence + lanes on, the production configuration) must fold
  // bit-identically onto the vm campaign.
  unsigned Checked = 0;
  for (const wile::Kernel &K : wile::benchmarkKernels()) {
    TypeContext TC;
    DiagnosticEngine Diags;
    Expected<wile::CompiledProgram> CP = wile::compileWile(
        TC, K.Source.c_str(), wile::CodegenMode::FaultTolerant, Diags);
    ASSERT_TRUE(bool(CP)) << K.Name << ": " << CP.message();
    vm::Engine Vm(CP->Prog.code());
    vm::JitEngine Jit(CP->Prog.code());
    TALFT_REQUIRE_JIT(Jit);
    EXPECT_GT(Jit.blocksCompiled(), 0u) << K.Name;

    // Same adaptive-stride rule as fault_coverage --fig10, thinned 2x to
    // keep the 15-kernel double sweep test-sized.
    TheoremConfig ProbeCfg;
    Expected<MachineState> S0 = CP->Prog.initialState();
    ASSERT_TRUE(bool(S0)) << K.Name;
    MachineState S = *S0;
    RunResult RefVm = Vm.run(S, CP->Prog.exitAddress(), ProbeCfg.MaxSteps,
                             ProbeCfg.Policy);
    ASSERT_EQ(RefVm.Status, RunStatus::Halted) << K.Name;
    MachineState SJ = *S0;
    RunResult RefJit = Jit.run(SJ, CP->Prog.exitAddress(), ProbeCfg.MaxSteps,
                               ProbeCfg.Policy);
    ASSERT_EQ(RefJit.Status, RunStatus::Halted) << K.Name;
    ASSERT_EQ(RefVm.Steps, RefJit.Steps) << K.Name;
    ASSERT_EQ(RefVm.Trace, RefJit.Trace) << K.Name;
    expectSameState(S, SJ, K.Name + std::string(" reference run"));

    TheoremConfig Config;
    Config.InjectionStride = std::max<uint64_t>(1, RefVm.Steps / 6);
    CampaignOptions VmOpts;
    VmOpts.Engine = &Vm;
    CampaignResult OnVm = runSingleFaultCampaign(CP->Prog, Config, VmOpts);
    CampaignOptions JitOpts;
    JitOpts.Engine = &Jit;
    CampaignResult OnJit = runSingleFaultCampaign(CP->Prog, Config, JitOpts);

    EXPECT_EQ(OnVm.Ok, OnJit.Ok) << K.Name;
    EXPECT_EQ(OnVm.ReferenceSteps, OnJit.ReferenceSteps) << K.Name;
    EXPECT_EQ(OnVm.Table, OnJit.Table) << K.Name;
    EXPECT_EQ(OnVm.Violations, OnJit.Violations) << K.Name;
    ++Checked;
  }
  EXPECT_EQ(Checked, wile::benchmarkKernels().size());
}

} // namespace
