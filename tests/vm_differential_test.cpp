//===- tests/vm_differential_test.cpp - VM vs. reference, bit for bit -----===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The differential oracle for the decoded engine (vm/Engine.h): the VM is
// only allowed to exist because it is observationally indistinguishable
// from the structural interpreter. Every shared test program runs on both
// engines in lockstep — same rule names, same outputs, same full machine
// states after every transition, on fault-free and fault-injected runs,
// under both wild-load policies — and whole campaigns must produce
// identical verdict tables on either engine.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "fault/Campaign.h"
#include "sim/ExecEngine.h"
#include "tal/Parser.h"
#include "vm/Engine.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

using namespace talft;

namespace {

struct NamedProgram {
  const char *Name;
  const char *Source;
  /// False for programs the checker rejects (they still run raw).
  bool WellTyped;
};

const std::vector<NamedProgram> &allPrograms() {
  static const std::vector<NamedProgram> Programs = {
      {"PairedStore", progs::PairedStore, true},
      {"CseBroken", progs::CseBroken, false},
      {"IndirectJump", progs::IndirectJump, true},
      {"CountdownLoop", progs::CountdownLoop, true},
      {"QueueForwarding", progs::QueueForwarding, true},
      {"PendingStoreAcrossJump", progs::PendingStoreAcrossJump, true},
  };
  return Programs;
}

Program parseOrDie(TypeContext &TC, const NamedProgram &NP) {
  DiagnosticEngine Diags;
  Expected<Program> P = parseAndLayoutTalProgram(TC, NP.Source, Diags);
  EXPECT_TRUE(bool(P)) << NP.Name << ": " << Diags.str();
  return std::move(*P);
}

/// Field-by-field state equality (MachineState has no operator==; the
/// fields all do).
void expectSameState(const MachineState &A, const MachineState &B,
                     const std::string &Where) {
  ASSERT_EQ(A.Faulted, B.Faulted) << Where;
  if (A.Faulted)
    return;
  EXPECT_EQ(A.Regs, B.Regs) << Where;
  EXPECT_EQ(A.Mem, B.Mem) << Where;
  EXPECT_EQ(A.Queue, B.Queue) << Where;
  EXPECT_EQ(A.IR.has_value(), B.IR.has_value()) << Where;
  if (A.IR && B.IR) {
    EXPECT_EQ(*A.IR, *B.IR) << Where;
  }
}

/// Steps both engines in lockstep for \p MaxSteps transitions (or until
/// both stop), comparing the StepResult and the full state after every
/// transition.
void lockstep(const ExecEngine &Vm, MachineState Ref, MachineState VmS,
              const StepPolicy &Policy, uint64_t MaxSteps,
              const std::string &Where) {
  for (uint64_t I = 0; I != MaxSteps; ++I) {
    StepResult RR = referenceEngine().step(Ref, Policy);
    StepResult VR = Vm.step(VmS, Policy);
    std::string At = Where + " step " + std::to_string(I);
    ASSERT_EQ(RR.Status, VR.Status) << At;
    EXPECT_EQ(RR.Output.has_value(), VR.Output.has_value()) << At;
    if (RR.Output && VR.Output) {
      EXPECT_EQ(*RR.Output, *VR.Output) << At;
    }
    // Rule names are part of the observable contract (they name the
    // paper's operational rules).
    if (RR.Rule || VR.Rule) {
      ASSERT_NE(RR.Rule, nullptr) << At;
      ASSERT_NE(VR.Rule, nullptr) << At;
      EXPECT_STREQ(RR.Rule, VR.Rule) << At;
    }
    expectSameState(Ref, VmS, At);
    if (RR.Status != StepStatus::Ok)
      return;
  }
}

TEST(VmDifferential, LockstepFaultFree) {
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());
    for (WildLoadPolicy WL : {WildLoadPolicy::Trap, WildLoadPolicy::Garbage}) {
      StepPolicy Policy;
      Policy.WildLoad = WL;
      Expected<MachineState> S = P.initialState();
      ASSERT_TRUE(bool(S)) << NP.Name;
      // 400 steps rolls every program through its exit self-loop.
      lockstep(*Vm, *S, *S, Policy, 400,
               std::string(NP.Name) + (WL == WildLoadPolicy::Trap
                                           ? "/trap"
                                           : "/garbage"));
    }
  }
}

TEST(VmDifferential, RunResultsAndMidPairBudgets) {
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());
    Expected<MachineState> S0 = P.initialState();
    ASSERT_TRUE(bool(S0)) << NP.Name;
    // Odd budgets deliberately expire between a fetch and its execution:
    // the VM must leave the same materialized instruction register behind.
    for (uint64_t Budget : {0ull, 1ull, 2ull, 3ull, 7ull, 17ull, 40ull,
                            101ull, 5000ull}) {
      MachineState Ref = *S0, VmS = *S0;
      RunResult RR = referenceEngine().run(Ref, P.exitAddress(), Budget,
                                           StepPolicy());
      RunResult VR = Vm->run(VmS, P.exitAddress(), Budget, StepPolicy());
      std::string At =
          std::string(NP.Name) + " budget " + std::to_string(Budget);
      EXPECT_EQ(RR.Status, VR.Status) << At;
      EXPECT_EQ(RR.Steps, VR.Steps) << At;
      EXPECT_EQ(RR.Trace, VR.Trace) << At;
      expectSameState(Ref, VmS, At);

      // replaySteps must stop at the same point with the same outputs.
      MachineState Ref2 = *S0, VmS2 = *S0;
      OutputTrace RefT, VmT;
      ReplayResult Rp = referenceEngine().replaySteps(Ref2, Budget, RefT,
                                                      StepPolicy());
      ReplayResult Vp = Vm->replaySteps(VmS2, Budget, VmT, StepPolicy());
      EXPECT_EQ(Rp.Last, Vp.Last) << At;
      EXPECT_EQ(Rp.Taken, Vp.Taken) << At;
      EXPECT_EQ(RefT, VmT) << At;
      expectSameState(Ref2, VmS2, At + " (replay)");
    }
  }
}

TEST(VmDifferential, LockstepUnderRandomSingleFaults) {
  std::mt19937 Rng(20070611); // PLDI 2007, for reproducibility
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());
    Expected<MachineState> S0 = P.initialState();
    ASSERT_TRUE(bool(S0)) << NP.Name;

    MachineState Probe = *S0;
    RunResult Ref = referenceEngine().run(Probe, P.exitAddress(), 100000,
                                          StepPolicy());
    ASSERT_EQ(Ref.Status, RunStatus::Halted) << NP.Name;

    std::vector<int64_t> Values = representativeCorruptions(P);
    for (int Trial = 0; Trial != 60; ++Trial) {
      uint64_t At = std::uniform_int_distribution<uint64_t>(
          0, Ref.Steps)(Rng);
      MachineState S = *S0;
      OutputTrace Prefix;
      referenceEngine().replaySteps(S, At, Prefix, StepPolicy());
      std::vector<FaultSite> Sites = enumerateFaultSites(S);
      ASSERT_FALSE(Sites.empty());
      const FaultSite &Site = Sites[std::uniform_int_distribution<size_t>(
          0, Sites.size() - 1)(Rng)];
      int64_t V = Values[std::uniform_int_distribution<size_t>(
          0, Values.size() - 1)(Rng)];
      if (V == currentValueAt(S, Site))
        continue;
      injectFault(S, Site, V);
      // Corrupted pcs, queue entries and mid-pair instruction registers
      // all flow through here; both engines must agree step for step.
      lockstep(*Vm, S, S, StepPolicy(), 300,
               std::string(NP.Name) + " trial " + std::to_string(Trial));
    }
  }
}

TEST(VmDifferential, InjectionPlanCampaignsAgree) {
  std::mt19937 Rng(8102006);
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());

    MachineState Probe = *P.initialState();
    RunResult Ref = referenceEngine().run(Probe, P.exitAddress(), 100000,
                                          StepPolicy());
    ASSERT_EQ(Ref.Status, RunStatus::Halted) << NP.Name;

    PlanCampaign Spec;
    Spec.Prog = &P;
    std::vector<int64_t> Values = representativeCorruptions(P);
    for (int I = 0; I != 120; ++I) {
      uint64_t At =
          std::uniform_int_distribution<uint64_t>(0, Ref.Steps)(Rng);
      Reg R = Reg::fromDenseIndex(std::uniform_int_distribution<unsigned>(
          0, Reg::NumRegs - 1)(Rng));
      int64_t V = Values[std::uniform_int_distribution<size_t>(
          0, Values.size() - 1)(Rng)];
      Spec.Plans.push_back({{At, FaultSite::reg(R), V}});
    }

    CampaignOptions RefOpts;
    CampaignResult OnRef = runInjectionPlans(Spec, RefOpts);
    CampaignOptions VmOpts;
    VmOpts.Engine = Vm.get();
    CampaignResult OnVm = runInjectionPlans(Spec, VmOpts);

    EXPECT_EQ(OnRef.Ok, OnVm.Ok) << NP.Name;
    EXPECT_EQ(OnRef.ReferenceSteps, OnVm.ReferenceSteps) << NP.Name;
    EXPECT_EQ(OnRef.ReferenceTrace, OnVm.ReferenceTrace) << NP.Name;
    EXPECT_EQ(OnRef.Table, OnVm.Table) << NP.Name;
    EXPECT_EQ(OnRef.Violations, OnVm.Violations) << NP.Name;
    EXPECT_STREQ(OnRef.Stats.Engine, "reference");
    EXPECT_STREQ(OnVm.Stats.Engine, "vm");
  }
}

TEST(VmDifferential, FaultToleranceCampaignsAgree) {
  for (const NamedProgram &NP : allPrograms()) {
    if (!NP.WellTyped)
      continue;
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    DiagnosticEngine Diags;
    Expected<CheckedProgram> CP = checkProgram(TC, P, Diags);
    ASSERT_TRUE(bool(CP)) << NP.Name << ": " << Diags.str();
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());

    TheoremConfig Config;
    Config.InjectionStride = 2; // keep the exhaustive sweep unit-sized

    for (ResumeMode Resume : {ResumeMode::Snapshot, ResumeMode::Replay}) {
      CampaignOptions RefOpts;
      RefOpts.Resume = Resume;
      CampaignResult OnRef =
          runFaultToleranceCampaign(TC, *CP, Config, RefOpts);
      CampaignOptions VmOpts;
      VmOpts.Resume = Resume;
      VmOpts.Engine = Vm.get();
      CampaignResult OnVm =
          runFaultToleranceCampaign(TC, *CP, Config, VmOpts);

      std::string At = std::string(NP.Name) +
                       (Resume == ResumeMode::Snapshot ? "/snapshot"
                                                       : "/replay");
      EXPECT_EQ(OnRef.Ok, OnVm.Ok) << At;
      EXPECT_EQ(OnRef.ReferenceSteps, OnVm.ReferenceSteps) << At;
      EXPECT_EQ(OnRef.ReferenceTrace, OnVm.ReferenceTrace) << At;
      EXPECT_EQ(OnRef.Table, OnVm.Table) << At;
      EXPECT_EQ(OnRef.Violations, OnVm.Violations) << At;
      EXPECT_TRUE(OnVm.Ok) << At;
    }
  }
}

} // namespace
