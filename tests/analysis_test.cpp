//===- tests/analysis_test.cpp - The static reliability analyzer ----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Pins the analysis subsystem's contracts: CFG shape on the hand-written
// examples and on every Figure 10 kernel, the liveness and reaching-defs
// instantiations of the dataflow framework, the duplication-consistency
// pass on positive programs and on the CSE'd-store counterexample, the
// unified certification ladder (all fifteen kernels must land on a
// certified rung or produce a located diagnostic), and the campaign's
// Prune mode: pruned and unpruned sweeps must agree verdict-for-verdict
// once StaticallyMasked folds back into Masked.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "analysis/Certify.h"
#include "analysis/ReachingDefs.h"
#include "analysis/ZapCoverage.h"
#include "check/ProgramChecker.h"
#include "fault/Campaign.h"
#include "tal/Parser.h"
#include "wile/Codegen.h"
#include "wile/Kernels.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace talft;
using analysis::CFG;

namespace {

/// Parses and lays out a .tal source, failing the test on any error.
Program load(TypeContext &TC, const char *Source) {
  DiagnosticEngine Diags;
  Expected<Program> P = parseAndLayoutTalProgram(TC, Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return std::move(*P);
}

/// Address of the first instruction matching \p Pred.
template <typename Fn> Addr findAddr(const CFG &G, Fn Pred) {
  for (Addr A = G.minAddr(); A != G.limitAddr(); ++A)
    if (Pred(G.inst(A)))
      return A;
  ADD_FAILURE() << "no matching instruction";
  return G.minAddr();
}

// The Section 2.2 CSE counterexample: the blue store reuses the green
// registers, so both sides of the hardware compare read the same
// (corruptible) values. Runs clean, silently corrupts under faults.
const char *CseBrokenStore = R"(
entry main
exit done
data { 256: int = 0 }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  stB r2, r1
  mov r5, G @done
  mov r6, B @done
  jmpG r5
  jmpB r6
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

// Replicas that diverge in the computed function (5 vs 6): the stB
// compare always faults, and the analysis must say the value pair is not
// a replica.
const char *MismatchedStore = R"(
entry main
exit done
data { 256: int = 0 }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  mov r3, B 6
  mov r4, B 256
  stB r4, r3
  mov r5, G @done
  mov r6, B @done
  jmpG r5
  jmpB r6
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

//===----------------------------------------------------------------------===//
// CFG construction
//===----------------------------------------------------------------------===//

TEST(AnalysisCfgTest, PairedStoreShape) {
  TypeContext TC;
  Program P = load(TC, progs::PairedStore);
  Expected<CFG> G = CFG::build(P);
  ASSERT_TRUE(G) << G.message();

  // Straight-line main (ends at its jmpB) plus the self-looping exit
  // block; every target resolves through the mov/jmp constant scan.
  EXPECT_TRUE(G->targetsResolved());
  ASSERT_EQ(G->numBlocks(), 2u);
  EXPECT_EQ(G->numInsts(), P.code().size());

  uint32_t Main = G->entryBlock();
  ASSERT_EQ(G->block(Main).Succs.size(), 1u);
  uint32_t Done = G->block(Main).Succs[0];
  EXPECT_NE(Done, Main);
  // The exit convention is a self-loop.
  ASSERT_EQ(G->block(Done).Succs.size(), 1u);
  EXPECT_EQ(G->block(Done).Succs[0], Done);
  EXPECT_TRUE(G->reachable(Main));
  EXPECT_TRUE(G->reachable(Done));
  EXPECT_EQ(G->rpo().front(), Main);

  // jmpB carries the resolved control target; jmpG does not transfer.
  Addr JmpB = findAddr(*G, [](const Inst &I) {
    return I.Op == Opcode::Jmp && I.C == Color::Blue;
  });
  ASSERT_EQ(G->controlTargets(JmpB).size(), 1u);
  EXPECT_EQ(G->controlTargets(JmpB)[0], G->block(Done).Begin);
  Addr JmpG = findAddr(*G, [](const Inst &I) {
    return I.Op == Opcode::Jmp && I.C == Color::Green;
  });
  EXPECT_TRUE(G->controlTargets(JmpG).empty());
  EXPECT_EQ(G->describeAddr(G->block(Main).Begin), "main");
  EXPECT_EQ(G->describeAddr(G->block(Main).Begin + 2), "main+2");
}

TEST(AnalysisCfgTest, CountdownLoopHasLoopAndBranchEdges) {
  TypeContext TC;
  Program P = load(TC, progs::CountdownLoop);
  Expected<CFG> G = CFG::build(P);
  ASSERT_TRUE(G) << G.message();
  EXPECT_TRUE(G->targetsResolved());

  // The bzB both falls through and branches: its block has two
  // successors, and the loop's back edge makes the loop head a join.
  Addr BzB = findAddr(*G, [](const Inst &I) {
    return I.Op == Opcode::Bz && I.C == Color::Blue;
  });
  const CFG::BasicBlock &Head = G->block(G->blockOf(BzB));
  EXPECT_EQ(Head.Succs.size(), 2u);
  EXPECT_GE(Head.Preds.size(), 2u) << "loop head must join entry + back edge";
  for (uint32_t B = 0; B != G->numBlocks(); ++B)
    if (G->reachable(B))
      EXPECT_GT(G->block(B).Size, 0u);
}

TEST(AnalysisCfgTest, AllFigure10KernelsBuildCleanCfgs) {
  const std::vector<wile::Kernel> &Kernels = wile::benchmarkKernels();
  ASSERT_EQ(Kernels.size(), 15u);
  for (const wile::Kernel &K : Kernels) {
    TypeContext TC;
    DiagnosticEngine Diags;
    Expected<wile::CompiledProgram> CP = wile::compileWile(
        TC, K.Source.c_str(), wile::CodegenMode::FaultTolerant, Diags);
    ASSERT_TRUE(CP) << K.Name << ": " << CP.message();
    Expected<CFG> G = CFG::build(CP->Prog);
    ASSERT_TRUE(G) << K.Name << ": " << G.message();
    EXPECT_EQ(G->numInsts(), CP->Prog.code().size()) << K.Name;
    EXPECT_TRUE(G->reachable(G->entryBlock())) << K.Name;
    EXPECT_FALSE(G->rpo().empty()) << K.Name;
    // Every reachable block is nonempty and its edges are symmetric.
    for (uint32_t B = 0; B != G->numBlocks(); ++B) {
      if (!G->reachable(B))
        continue;
      EXPECT_GT(G->block(B).Size, 0u) << K.Name;
      for (uint32_t S : G->block(B).Succs) {
        const std::vector<uint32_t> &Preds = G->block(S).Preds;
        EXPECT_NE(std::find(Preds.begin(), Preds.end(), B), Preds.end())
            << K.Name << ": missing reverse edge";
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Dataflow instantiations
//===----------------------------------------------------------------------===//

TEST(AnalysisLivenessTest, PairedStoreFacts) {
  TypeContext TC;
  Program P = load(TC, progs::PairedStore);
  Expected<CFG> G = CFG::build(P);
  ASSERT_TRUE(G) << G.message();
  analysis::Liveness L = analysis::Liveness::compute(*G);

  Addr StG = findAddr(*G, [](const Inst &I) {
    return I.Op == Opcode::St && I.C == Color::Green;
  });
  Addr StB = findAddr(*G, [](const Inst &I) {
    return I.Op == Opcode::St && I.C == Color::Blue;
  });
  Reg R1 = Reg::general(1);
  // r1 feeds the green store: live-for-green right before it, dead at the
  // program entry (the mov kills it first) and dead once consumed.
  EXPECT_EQ(L.liveIn(*G, StG, R1), analysis::LiveForGreen);
  EXPECT_EQ(L.liveIn(*G, G->minAddr(), R1), 0);
  EXPECT_EQ(L.liveIn(*G, StB, R1), 0);
  // r3 feeds the blue store.
  EXPECT_EQ(L.liveIn(*G, StB, Reg::general(3)), analysis::LiveForBlue);
  // The fetch comparison keeps both pcs permanently live.
  EXPECT_NE(L.liveIn(*G, G->minAddr(), Reg::pcG()), 0);
  EXPECT_NE(L.liveIn(*G, G->minAddr(), Reg::pcB()), 0);
}

TEST(AnalysisLivenessTest, UseDefSetsMirrorStepSemantics) {
  // bz reads its test register, its target register and d, but defines
  // nothing unconditionally (the green side writes d only when taken).
  Inst Bz = Inst::bz(Color::Green, Reg::general(1), Reg::general(2));
  EXPECT_TRUE(analysis::instDefs(Bz).empty());
  bool SawD = false;
  for (const analysis::RegFact &U : analysis::instUses(Bz))
    SawD |= U.R == Reg::dest();
  EXPECT_TRUE(SawD);
  // jmp overwrites d (green: records the target; blue: resets to 0).
  Inst Jmp = Inst::jmp(Color::Blue, Reg::general(5));
  ASSERT_EQ(analysis::instDefs(Jmp).size(), 1u);
  EXPECT_EQ(analysis::instDefs(Jmp)[0], Reg::dest());
}

TEST(AnalysisReachingDefsTest, LoopJoinMergesEntryAndBackEdgeDefs) {
  TypeContext TC;
  Program P = load(TC, progs::CountdownLoop);
  Expected<CFG> G = CFG::build(P);
  ASSERT_TRUE(G) << G.message();
  analysis::ReachingDefs RD = analysis::ReachingDefs::compute(*G);

  Reg R1 = Reg::general(1);
  Addr MovR1 = findAddr(*G, [&](const Inst &I) {
    return I.Op == Opcode::Mov && I.Rd == R1;
  });
  Addr SubR1 = findAddr(*G, [&](const Inst &I) {
    return I.Op == Opcode::Sub && I.Rd == R1;
  });
  Addr BzG = findAddr(*G, [](const Inst &I) {
    return I.Op == Opcode::Bz && I.C == Color::Green;
  });
  // At the loop test both the entry definition and the decrement reach.
  const std::set<Addr> &Defs = RD.defsIn(*G, BzG, R1);
  EXPECT_TRUE(Defs.count(MovR1));
  EXPECT_TRUE(Defs.count(SubR1));
  EXPECT_FALSE(Defs.count(analysis::EntryDef))
      << "the entry mov must kill the initial-state pseudo-def";
  // Before any definition, only the initial state reaches.
  EXPECT_TRUE(RD.defsIn(*G, G->minAddr(), R1).count(analysis::EntryDef));
}

//===----------------------------------------------------------------------===//
// Duplication consistency + certification
//===----------------------------------------------------------------------===//

TEST(AnalysisDuplicationTest, PairedStoreAndLoopAreConsistent) {
  for (const char *Source : {progs::PairedStore, progs::CountdownLoop}) {
    TypeContext TC;
    Program P = load(TC, Source);
    Expected<CFG> G = CFG::build(P);
    ASSERT_TRUE(G) << G.message();
    Expected<analysis::DuplicationResult> D = analysis::analyzeDuplication(*G);
    ASSERT_TRUE(D) << D.message();
    EXPECT_TRUE(D->consistent()) << D->Findings.front().str();
  }
}

TEST(AnalysisDuplicationTest, CsedStoreIsFlaggedWithLocation) {
  TypeContext TC;
  Program P = load(TC, CseBrokenStore);
  Expected<CFG> G = CFG::build(P);
  ASSERT_TRUE(G) << G.message();
  Expected<analysis::DuplicationResult> D = analysis::analyzeDuplication(*G);
  ASSERT_TRUE(D) << D.message();
  ASSERT_FALSE(D->consistent());
  // The finding names the stB whose operands share the green derivation.
  bool Located = false;
  for (const analysis::Finding &F : D->Findings) {
    EXPECT_TRUE(G->contains(F.A));
    if (F.Where.find("stB") != std::string::npos && F.Loc.isValid() &&
        F.Message.find("replica") != std::string::npos)
      Located = true;
  }
  EXPECT_TRUE(Located) << "no located replica finding on the stB";
}

TEST(AnalysisDuplicationTest, MismatchedReplicaValueIsFlagged) {
  TypeContext TC;
  Program P = load(TC, MismatchedStore);
  Expected<CFG> G = CFG::build(P);
  ASSERT_TRUE(G) << G.message();
  Expected<analysis::DuplicationResult> D = analysis::analyzeDuplication(*G);
  ASSERT_TRUE(D) << D.message();
  bool SawValueFinding = false;
  for (const analysis::Finding &F : D->Findings)
    SawValueFinding |= F.Message.find("replicate") != std::string::npos;
  EXPECT_TRUE(SawValueFinding);
}

TEST(AnalysisCertifyTest, StatusNamesAreStableAndDistinct) {
  std::set<std::string> Names, Keys;
  for (analysis::CertificationStatus S :
       {analysis::CertificationStatus::Typed,
        analysis::CertificationStatus::AnalysisCertified,
        analysis::CertificationStatus::Inconsistent}) {
    Names.insert(analysis::certificationStatusName(S));
    for (char C : std::string(analysis::certificationStatusJsonKey(S)))
      EXPECT_TRUE((C >= 'a' && C <= 'z') || C == '_');
    Keys.insert(analysis::certificationStatusJsonKey(S));
  }
  EXPECT_EQ(Names.size(), 3u);
  EXPECT_EQ(Keys.size(), 3u);
}

TEST(AnalysisCertifyTest, LadderOnTheHandWrittenExamples) {
  TypeContext TC;
  Program Typed = load(TC, progs::PairedStore);
  analysis::Certification C1 = analysis::certifyProgram(TC, Typed);
  EXPECT_EQ(C1.Status, analysis::CertificationStatus::Typed);
  EXPECT_TRUE(C1.certified());
  EXPECT_TRUE(C1.CheckerError.empty());

  Program Broken = load(TC, CseBrokenStore);
  analysis::Certification C2 = analysis::certifyProgram(TC, Broken);
  EXPECT_EQ(C2.Status, analysis::CertificationStatus::Inconsistent);
  EXPECT_FALSE(C2.certified());
  EXPECT_FALSE(C2.CheckerError.empty());
  EXPECT_FALSE(C2.Findings.empty());
}

// The acceptance bar of the analyzer: every Figure 10 kernel either lands
// on a certified rung of the ladder (typed, or analysis-certified past
// the checker's dynamic-addressing wall) or pinpoints the offending
// instruction. The compiled kernels are duplication-consistent by
// construction, so certification must succeed for all fifteen.
TEST(AnalysisCertifyTest, AllFigure10KernelsCertify) {
  for (const wile::Kernel &K : wile::benchmarkKernels()) {
    TypeContext TC;
    DiagnosticEngine Diags;
    Expected<wile::CompiledProgram> CP = wile::compileWile(
        TC, K.Source.c_str(), wile::CodegenMode::FaultTolerant, Diags);
    ASSERT_TRUE(CP) << K.Name << ": " << CP.message();
    analysis::Certification Cert = analysis::certifyProgram(TC, CP->Prog);
    std::string Where;
    for (const analysis::Finding &F : Cert.Findings)
      Where += "\n  " + F.Loc.str() + ": " + F.str();
    EXPECT_TRUE(Cert.certified())
        << K.Name << " not certified; findings:" << Where;
    if (K.Typable)
      EXPECT_EQ(Cert.Status, analysis::CertificationStatus::Typed) << K.Name;
  }
}

//===----------------------------------------------------------------------===//
// Zap coverage + campaign pruning
//===----------------------------------------------------------------------===//

TEST(AnalysisZapTest, PairedStoreCoverage) {
  TypeContext TC;
  Program P = load(TC, progs::PairedStore);
  Expected<analysis::ZapCoverage> Z = analysis::ZapCoverage::compute(P);
  ASSERT_TRUE(Z) << Z.message();
  EXPECT_TRUE(Z->pruneSound());
  analysis::ZapSummary S = Z->summarize();
  EXPECT_EQ(S.Vulnerable, 0u);
  EXPECT_GT(S.Dead, 0u);
  EXPECT_GT(S.Checked, 0u);
  EXPECT_EQ(S.total(), S.Dead + S.Checked);

  // r1 is consumed by the stG; one instruction later a zap of it can
  // never be read again.
  const CFG &G = Z->cfg();
  Addr StG = findAddr(G, [](const Inst &I) {
    return I.Op == Opcode::St && I.C == Color::Green;
  });
  EXPECT_EQ(Z->classifyRegister(StG, Reg::general(1)),
            analysis::ZapClass::Checked);
  EXPECT_TRUE(Z->deadRegisterSite(StG + 1, Reg::general(1)));
  // The pc is not a general register: never statically discharged.
  EXPECT_FALSE(Z->deadRegisterSite(StG + 1, Reg::pcG()));

  std::string Json = Z->reportJson();
  for (const char *Key : {"\"targets_resolved\": true", "\"sites\"",
                          "\"dead\"", "\"checked\"", "\"vulnerable\": 0"})
    EXPECT_NE(Json.find(Key), std::string::npos)
        << "missing " << Key << " in:\n" << Json;
}

TEST(AnalysisZapTest, InconsistentProgramHasVulnerableSites) {
  TypeContext TC;
  Program P = load(TC, CseBrokenStore);
  Expected<analysis::ZapCoverage> Z = analysis::ZapCoverage::compute(P);
  ASSERT_TRUE(Z) << Z.message();
  EXPECT_GT(Z->summarize().Vulnerable, 0u);
  EXPECT_EQ(Z->classifyQueue(Z->cfg().minAddr()),
            analysis::ZapClass::Vulnerable);
}

/// Folds the statically-discharged verdicts back onto their dynamic
/// twins: pruning proves sites Masked/Detected without simulating them,
/// so this folded table must equal the unpruned one bit-for-bit.
VerdictTable fold(VerdictTable T) {
  T[Verdict::Masked] += T[Verdict::StaticallyMasked];
  T[Verdict::StaticallyMasked] = 0;
  T[Verdict::Detected] += T[Verdict::StaticallyDetected];
  T[Verdict::StaticallyDetected] = 0;
  return T;
}

TEST(AnalysisPruneTest, TypedCampaignPrunedVerdictsFoldToUnpruned) {
  for (const char *Source : {progs::PairedStore, progs::CountdownLoop}) {
    TypeContext TC;
    DiagnosticEngine Diags;
    Program P = load(TC, Source);
    Expected<CheckedProgram> CP = checkProgram(TC, P, Diags);
    ASSERT_TRUE(CP) << Diags.str();

    TheoremConfig Config;
    CampaignOptions Full, Pruned;
    Pruned.Prune = true;
    CampaignResult A = runFaultToleranceCampaign(TC, *CP, Config, Full);
    CampaignResult B = runFaultToleranceCampaign(TC, *CP, Config, Pruned);

    EXPECT_TRUE(B.Stats.Pruned);
    EXPECT_GT(B.Stats.PrunedTasks, 0u);
    EXPECT_EQ(B.Stats.PrunedTasks, B.Table[Verdict::StaticallyMasked] +
                                       B.Table[Verdict::StaticallyDetected]);
    // Control-register (d/pc) zaps discharge statically too; some have a
    // control instruction ahead, so both discharge verdicts appear.
    EXPECT_GT(B.Stats.PrunedDetected, 0u);
    EXPECT_EQ(B.Stats.PrunedDetected, B.Table[Verdict::StaticallyDetected]);
    EXPECT_EQ(A.Table[Verdict::StaticallyMasked], 0u);
    EXPECT_EQ(A.Table[Verdict::StaticallyDetected], 0u);
    EXPECT_EQ(A.Ok, B.Ok);
    EXPECT_EQ(A.ReferenceSteps, B.ReferenceSteps);
    EXPECT_EQ(A.Table.total(), B.Table.total());
    EXPECT_EQ(fold(A.Table), fold(B.Table));
    EXPECT_EQ(A.Violations, B.Violations);
  }
}

TEST(AnalysisPruneTest, RawCampaignOnCompiledKernelFoldsToUnpruned) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Source = R"(
var n = 3; var acc = 0;
while (n != 0) { acc = acc + n * n; n = n - 1; }
output(acc);
)";
  Expected<wile::CompiledProgram> CP = wile::compileWile(
      TC, Source, wile::CodegenMode::FaultTolerant, Diags);
  ASSERT_TRUE(CP) << CP.message();

  TheoremConfig Config;
  Config.InjectionStride = 7;
  CampaignOptions Full, Pruned;
  Pruned.Prune = true;
  CampaignResult A = runSingleFaultCampaign(CP->Prog, Config, Full);
  CampaignResult B = runSingleFaultCampaign(CP->Prog, Config, Pruned);

  ASSERT_TRUE(B.Stats.Pruned)
      << "compiled kernels must resolve every transfer target";
  EXPECT_GT(B.Stats.PrunedTasks, 0u);
  EXPECT_EQ(A.Table.total(), B.Table.total());
  EXPECT_EQ(fold(A.Table), fold(B.Table));
  EXPECT_EQ(A.Ok, B.Ok);
  EXPECT_EQ(A.Violations, B.Violations);

  std::string Json = campaignToJson(B);
  EXPECT_NE(Json.find("\"statically_masked\""), std::string::npos);
  EXPECT_NE(Json.find("\"statically_detected\""), std::string::npos);
  EXPECT_NE(Json.find("\"pruned\": true"), std::string::npos);
  EXPECT_NE(Json.find("\"pruned_tasks\""), std::string::npos);
  EXPECT_NE(Json.find("\"pruned_detected\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Indirect-target resolution ladder (analysis/TargetSets)
//===----------------------------------------------------------------------===//

/// All committing (blue) control instructions in address order.
std::vector<Addr> commitsOf(const CFG &G) {
  std::vector<Addr> Cs;
  for (Addr A = G.minAddr(); A != G.limitAddr(); ++A)
    if (G.isCommit(A))
      Cs.push_back(A);
  return Cs;
}

/// The labels of a commit's resolved targets, via describeAddr (block
/// entries render as the bare label).
std::set<std::string> targetLabels(const CFG &G, Addr A) {
  std::set<std::string> L;
  for (Addr T : G.controlTargets(A))
    L.insert(G.describeAddr(T));
  return L;
}

// A label that flows across a block boundary and through ALU identity
// folds: the per-block constant scan cannot see it, the interprocedural
// label-set dataflow resolves it exactly.
TEST(AnalysisTargetSetsTest, LabelThroughAluFoldsResolvesCrossBlock) {
  const char *Source = R"(
entry main
exit done
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G @done
  mov r2, B @done
  mov r10, G @mid
  mov r11, B @mid
  jmpG r10
  jmpB r11
}
block mid {
  pre { forall m: mem; queue []; mem m }
  add r3, r1, G 0
  add r4, r2, B 0
  jmpG r3
  jmpB r4
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  TypeContext TC;
  Program P = load(TC, Source);
  Expected<CFG> G = CFG::build(P);
  ASSERT_TRUE(G) << G.message();
  EXPECT_TRUE(G->targetsResolved());

  std::vector<Addr> Cs = commitsOf(*G);
  ASSERT_EQ(Cs.size(), 3u);
  // mid's jmpB: r4 = r2 + 0 with r2 set to @done in the predecessor.
  Addr MidJmp = Cs[1];
  EXPECT_EQ(G->targetProvenance(MidJmp), analysis::TargetProvenance::Exact);
  EXPECT_EQ(G->resolutionLayer(MidJmp), 2u);
  EXPECT_EQ(targetLabels(*G, MidJmp), std::set<std::string>{"done"});

  CFG::ResolutionSummary Sum = G->resolutionSummary();
  EXPECT_EQ(Sum.Commits, 3u);
  EXPECT_EQ(Sum.Exact, 3u);
  EXPECT_EQ(Sum.UnresolvedTargets, 0u);
}

// A label stored in a typed data cell that no store dirties: the load
// yields exactly the cell's initializer, so the jump resolves exactly.
TEST(AnalysisTargetSetsTest, LabelFromCleanTypedDataCellResolves) {
  const char *Source = R"(
entry main
exit done
data { 300: code(@done) = @done }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r10, G 300
  ldG r1, r10
  mov r11, B 300
  ldB r2, r11
  jmpG r1
  jmpB r2
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  TypeContext TC;
  Program P = load(TC, Source);
  Expected<CFG> G = CFG::build(P);
  ASSERT_TRUE(G) << G.message();
  EXPECT_TRUE(G->targetsResolved());

  std::vector<Addr> Cs = commitsOf(*G);
  ASSERT_EQ(Cs.size(), 2u);
  EXPECT_EQ(G->targetProvenance(Cs[0]), analysis::TargetProvenance::Exact);
  EXPECT_EQ(G->resolutionLayer(Cs[0]), 2u);
  EXPECT_EQ(targetLabels(*G, Cs[0]), std::set<std::string>{"done"});
}

// Two indirect jumps through the SAME register pair with different
// incoming label sets: resolution is per jump, not per register.
TEST(AnalysisTargetSetsTest, SharedRegisterResolvesPerJump) {
  const char *Source = R"(
entry main
exit done
block main {
  pre { forall m: mem; queue []; mem m }
  mov r5, G @x
  mov r6, B @x
  mov r10, G @a
  mov r11, B @a
  jmpG r10
  jmpB r11
}
block a {
  pre { forall m: mem; queue []; mem m }
  jmpG r5
  jmpB r6
}
block x {
  pre { forall m: mem; queue []; mem m }
  mov r5, G @done
  mov r6, B @done
  mov r10, G @b
  mov r11, B @b
  jmpG r10
  jmpB r11
}
block b {
  pre { forall m: mem; queue []; mem m }
  jmpG r5
  jmpB r6
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  TypeContext TC;
  Program P = load(TC, Source);
  Expected<CFG> G = CFG::build(P);
  ASSERT_TRUE(G) << G.message();
  EXPECT_TRUE(G->targetsResolved());

  // Commits in address order: main's, a's, x's, b's, done's.
  std::vector<Addr> Cs = commitsOf(*G);
  ASSERT_EQ(Cs.size(), 5u);
  Addr JumpA = Cs[1], JumpB = Cs[3];
  EXPECT_EQ(G->targetProvenance(JumpA), analysis::TargetProvenance::Exact);
  EXPECT_EQ(G->targetProvenance(JumpB), analysis::TargetProvenance::Exact);
  EXPECT_EQ(G->resolutionLayer(JumpA), 2u);
  EXPECT_EQ(G->resolutionLayer(JumpB), 2u);
  EXPECT_EQ(targetLabels(*G, JumpA), std::set<std::string>{"x"});
  EXPECT_EQ(targetLabels(*G, JumpB), std::set<std::string>{"done"});
}

// A jump the dataflow cannot bound (its target comes from a dirtied data
// cell) narrows by type instead: candidate blocks whose precondition the
// jump's abstract context refutes are excluded. xblock demands r1 = 7
// while the jump provably carries r1 = 5, so xblock drops out; the
// compatible yblock stays.
TEST(AnalysisTargetSetsTest, IncompatibleCodeTypeIsExcluded) {
  const char *Source = R"(
entry main
exit done
data { 300: code(@yblock) = @yblock }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 5
  mov r20, G 300
  ldG r5, r20
  mov r21, B 300
  ldB r6, r21
  mov r30, G 300
  mov r31, G 77
  stG r30, r31
  mov r32, B 300
  mov r33, B 77
  stB r32, r33
  jmpG r5
  jmpB r6
}
block xblock {
  pre { forall m: mem; r1: (G, int, 7); queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
block yblock {
  pre { forall m: mem; r1: (G, int, 5); queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  TypeContext TC;
  Program P = load(TC, Source);
  Expected<CFG> G = CFG::build(P);
  ASSERT_TRUE(G) << G.message();
  EXPECT_FALSE(G->targetsResolved());

  std::vector<Addr> Cs = commitsOf(*G);
  ASSERT_EQ(Cs.size(), 4u);
  Addr Narrowed = Cs[0];
  EXPECT_EQ(G->targetProvenance(Narrowed),
            analysis::TargetProvenance::TypeNarrowed);
  EXPECT_EQ(G->resolutionLayer(Narrowed), 1u);
  std::set<std::string> Labels = targetLabels(*G, Narrowed);
  EXPECT_TRUE(Labels.count("yblock")) << "compatible target excluded";
  EXPECT_FALSE(Labels.count("xblock")) << "refuted target kept";

  CFG::ResolutionSummary Sum = G->resolutionSummary();
  EXPECT_EQ(Sum.TypeNarrowed, 1u);
  EXPECT_EQ(Sum.Exact, 3u);
  EXPECT_GT(Sum.UnresolvedTargets, 0u);
}

//===----------------------------------------------------------------------===//
// Runtime CFI validation
//===----------------------------------------------------------------------===//

// --cfi-check is record-only: verdicts are bit-identical with and without
// it, every committed transfer lands in the static target set, and the
// stats report the cross-check.
TEST(AnalysisCfiTest, TypedCampaignCommitsStayInStaticSets) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Program P = load(TC, progs::CountdownLoop);
  Expected<CheckedProgram> CP = checkProgram(TC, P, Diags);
  ASSERT_TRUE(CP) << Diags.str();

  TheoremConfig Config;
  CampaignOptions Plain, Checked;
  Checked.CfiCheck = true;
  CampaignResult A = runFaultToleranceCampaign(TC, *CP, Config, Plain);
  CampaignResult B = runFaultToleranceCampaign(TC, *CP, Config, Checked);

  EXPECT_FALSE(A.Stats.CfiChecked);
  EXPECT_TRUE(B.Stats.CfiChecked);
  EXPECT_GT(B.Stats.CfiCommits, 0u);
  EXPECT_EQ(B.Stats.CfiViolations, 0u) << B.CfiFirstViolation;
  EXPECT_TRUE(B.CfiFirstViolation.empty()) << B.CfiFirstViolation;
  EXPECT_EQ(A.Table, B.Table);
  EXPECT_EQ(A.Ok, B.Ok);
  EXPECT_EQ(A.Violations, B.Violations);

  std::string Json = campaignToJson(B);
  EXPECT_NE(Json.find("\"cfi\""), std::string::npos);
  EXPECT_NE(Json.find("\"violations\": 0"), std::string::npos);
}

// The raw-semantics campaign under pruning + CFI: the sharpened graph and
// the dynamic cross-check agree on a compiled kernel across engines.
TEST(AnalysisCfiTest, RawCampaignWithPruneHasNoViolations) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Source = R"(
var n = 3; var acc = 0;
while (n != 0) { acc = acc + n * n; n = n - 1; }
output(acc);
)";
  Expected<wile::CompiledProgram> CP = wile::compileWile(
      TC, Source, wile::CodegenMode::FaultTolerant, Diags);
  ASSERT_TRUE(CP) << CP.message();

  TheoremConfig Config;
  Config.InjectionStride = 7;
  CampaignOptions Plain, Checked;
  Checked.CfiCheck = true;
  Checked.Prune = true;
  CampaignResult A = runSingleFaultCampaign(CP->Prog, Config, Plain);
  CampaignResult B = runSingleFaultCampaign(CP->Prog, Config, Checked);

  EXPECT_TRUE(B.Stats.CfiChecked);
  EXPECT_GT(B.Stats.CfiCommits, 0u);
  EXPECT_EQ(B.Stats.CfiViolations, 0u) << B.CfiFirstViolation;
  EXPECT_EQ(fold(A.Table), fold(B.Table));
  EXPECT_EQ(A.Ok, B.Ok);
}

} // namespace
