//===- tests/wile_metatheory_test.cpp - Theorems on compiled code ---------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The end-to-end guarantee chain: Wile source -> reliability
// transformation -> TALFT checker -> executable theorems. Every state of
// a compiled kernel's execution re-types, no fault-free run signals a
// fault, and strided exhaustive injection confirms fault tolerance —
// "if the output from these compilers type check, their code will have
// strong fault tolerance guarantees."
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "fault/Theorems.h"
#include "wile/Codegen.h"
#include "wile/Kernels.h"

#include <gtest/gtest.h>

using namespace talft;
using namespace talft::wile;

namespace {

struct CompiledFixture {
  TypeContext TC;
  DiagnosticEngine Diags;
  std::optional<CompiledProgram> CP;
  std::optional<CheckedProgram> Checked;

  void compile(const std::string &Source, bool Optimize = false) {
    Expected<CompiledProgram> C = compileWile(
        TC, Source, CodegenMode::FaultTolerant, Diags, Optimize);
    ASSERT_TRUE(C) << C.message();
    CP.emplace(std::move(*C));
    Expected<CheckedProgram> Ck = checkProgram(TC, CP->Prog, Diags);
    ASSERT_TRUE(Ck) << Diags.str();
    Checked.emplace(std::move(*Ck));
  }
};

TEST(CompiledMetatheory, TinyProgramFullSweep) {
  CompiledFixture F;
  ASSERT_NO_FATAL_FAILURE(F.compile(R"(
var a = 2; var b = 3;
output(a * b + 1);
)"));
  TheoremReport FaultFree =
      checkFaultFreeExecution(F.TC, *F.Checked, TheoremConfig());
  EXPECT_TRUE(FaultFree.Ok)
      << (FaultFree.Violations.empty() ? "?" : FaultFree.Violations.front());

  TheoremReport FT = checkFaultTolerance(F.TC, *F.Checked, TheoremConfig());
  EXPECT_TRUE(FT.Ok) << (FT.Violations.empty() ? "?"
                                               : FT.Violations.front());
  EXPECT_GT(FT.DetectedFaults, 0u);
}

TEST(CompiledMetatheory, LoopProgramEveryStateTypes) {
  CompiledFixture F;
  ASSERT_NO_FATAL_FAILURE(F.compile(R"(
var n = 6; var acc = 1;
while (n != 0) { acc = acc * n; n = n - 1; }
output(acc);
)"));
  TheoremReport R = checkFaultFreeExecution(F.TC, *F.Checked,
                                            TheoremConfig());
  EXPECT_TRUE(R.Ok) << (R.Violations.empty() ? "?" : R.Violations.front());
  EXPECT_EQ(R.StatesTypechecked, R.ReferenceSteps + 1);
  ASSERT_EQ(R.ReferenceTrace.size(), 1u);
  EXPECT_EQ(R.ReferenceTrace[0].Val, 720);
}

TEST(CompiledMetatheory, BranchyProgramStridedInjection) {
  CompiledFixture F;
  ASSERT_NO_FATAL_FAILURE(F.compile(R"(
var n = 4; var odd = 0; var even = 0; var parity = 0;
while (n != 0) {
  if (parity == 0) { even = even + n; parity = 1; }
  else { odd = odd + n; parity = 0; }
  n = n - 1;
}
output(even);
output(odd);
)"));
  TheoremConfig Config;
  Config.InjectionStride = 5;
  TheoremReport R = checkFaultTolerance(F.TC, *F.Checked, Config);
  EXPECT_TRUE(R.Ok) << (R.Violations.empty() ? "?" : R.Violations.front());
  EXPECT_GT(R.InjectionsTested, 1000u);
}

TEST(CompiledMetatheory, PegwitKernelFaultFree) {
  // The smallest Figure 10 kernel that type-checks: re-type all of its
  // several thousand reachable states.
  const Kernel *Pegwit = nullptr;
  for (const Kernel &K : benchmarkKernels())
    if (K.Name == "pegwit")
      Pegwit = &K;
  ASSERT_NE(Pegwit, nullptr);
  CompiledFixture F;
  ASSERT_NO_FATAL_FAILURE(F.compile(Pegwit->Source));
  TheoremConfig Config;
  Config.MaxSteps = 1'000'000;
  TheoremReport R = checkFaultFreeExecution(F.TC, *F.Checked, Config);
  EXPECT_TRUE(R.Ok) << (R.Violations.empty() ? "?" : R.Violations.front());
  EXPECT_GT(R.StatesTypechecked, 1000u);
}

TEST(CompiledMetatheory, OptimizedCompilationAlsoSatisfiesTheorems) {
  CompiledFixture F;
  ASSERT_NO_FATAL_FAILURE(F.compile(R"(
var n = 5; var acc = 0; var step;
step = 2 + 1;
while (n != 0) { acc = acc + step; n = n - 1; }
output(acc);
)", /*Optimize=*/true));
  TheoremReport R = checkFaultTolerance(F.TC, *F.Checked, TheoremConfig());
  EXPECT_TRUE(R.Ok) << (R.Violations.empty() ? "?" : R.Violations.front());
}

} // namespace
