//===- tests/TestPrograms.h - Shared example programs for tests -----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical .tal sources shared by the test suite: the three inline
/// examples of Section 2.2 of the paper, plus small loop/branch programs
/// exercising the control-flow rules.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_TESTS_TESTPROGRAMS_H
#define TALFT_TESTS_TESTPROGRAMS_H

namespace talft::progs {

/// A well-typed self-loop exit block (the halting convention).
inline const char *ExitBlock = R"(
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

/// Section 2.2, first example: the paired store of 5 to address 256.
/// "These six instructions have the effect of storing 5 into memory
/// address 256. Moreover, a fault at any point in execution, to either
/// blue or green values or addresses, will be caught by the hardware."
inline const char *PairedStore = R"(
entry main
exit done

data {
  256: int = 0
}

block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  mov r3, B 5
  mov r4, B 256
  stB r4, r3
  mov r5, G @done
  mov r6, B @done
  jmpG r5
  jmpB r6
}

block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

/// Section 2.2, second example: the result of an unsound common
/// subexpression elimination — the blue store reuses the *green*
/// registers, so a single fault in r1 or r2 can silently corrupt the
/// store. TALFT rejects it.
inline const char *CseBroken = R"(
entry main
exit done

data {
  256: int = 0
}

block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  stB r2, r1
  mov r5, G @done
  mov r6, B @done
  jmpG r5
  jmpB r6
}

block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

/// Section 2.2, third example: a control-flow transfer through a code
/// pointer loaded from memory (registers r2 and r4 point to the same
/// location, which contains a code pointer).
inline const char *IndirectJump = R"(
entry main
exit done

data {
  300: code(@done) = @done
}

block main {
  pre { forall m: mem; queue []; mem m }
  mov r2, G 300
  ldG r1, r2
  mov r4, B 300
  ldB r3, r4
  jmpG r1
  jmpB r3
}

block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

/// A countdown loop: stores the values 3,2,1 to address 500 and exits.
/// Exercises bzG/bzB (taken and untaken), loop-carried register typing
/// and repeated store commits.
inline const char *CountdownLoop = R"(
entry main
exit done

data {
  500: int = 0
}

block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 3
  mov r2, B 3
  mov r10, G @loop
  mov r11, B @loop
  jmpG r10
  jmpB r11
}

block loop {
  pre { forall n: int, m: mem;
        r1: (G, int, n); r2: (B, int, n);
        queue []; mem m }
  mov r20, G @done
  mov r21, B @done
  bzG r1, r20
  bzB r2, r21
  mov r3, G 500
  stG r3, r1
  mov r4, B 500
  stB r4, r2
  sub r1, r1, G 1
  sub r2, r2, B 1
  mov r10, G @loop
  mov r11, B @loop
  jmpG r10
  jmpB r11
}

block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

/// A program whose observable trace interleaves multiple committed stores
/// with a pending green store across a green load (ldG-queue path).
inline const char *QueueForwarding = R"(
entry main
exit done

data {
  400: int = 7
  404: int = 0
}

block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 400
  ldG r2, r1          // r2 = 7 (from memory)
  add r2, r2, G 1     // r2 = 8
  mov r3, G 404
  stG r3, r2          // pending (404, 8)
  mov r4, G 404
  ldG r5, r4          // forwarded from the queue: 8
  mov r6, B 400
  ldB r7, r6
  add r7, r7, B 1
  mov r8, B 404
  stB r8, r7          // commits (404, 8)
  mov r9, G 404
  stG r9, r5          // pending (404, 8) again (value via forwarding)
  mov r12, B 404
  ldB r13, r12        // 8 from memory
  mov r14, B 404
  stB r14, r13        // commits (404, 8)
  mov r30, G @done
  mov r31, B @done
  jmpG r30
  jmpB r31
}

block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

/// A pending green store carried across a committed jump: the target
/// block's precondition describes the in-flight queue entry, and the blue
/// half commits it on the other side. Exercises queue-descriptor matching
/// in the control-flow rules and queue typing across transfers.
inline const char *PendingStoreAcrossJump = R"(
entry main
exit done

data {
  256: int = 0
}

block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  mov r3, B 5
  mov r4, B 256
  mov r5, G @commit
  mov r6, B @commit
  jmpG r5
  jmpB r6
}

block commit {
  pre { forall a: int, v: int, m: mem;
        r3: (B, int, v);
        r4: (B, int ref, a);
        queue [(a, v)];
        mem m }
  stB r4, r3
  mov r5, G @done
  mov r6, B @done
  jmpG r5
  jmpB r6
}

block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

} // namespace talft::progs

#endif // TALFT_TESTS_TESTPROGRAMS_H
