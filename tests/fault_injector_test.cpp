//===- tests/fault_injector_test.cpp - Fault model unit tests -------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "fault/FaultInjector.h"
#include "fault/Similarity.h"
#include "tal/Parser.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

MachineState makeState(const CodeMemory &Code) {
  MachineState S(Code, 1);
  S.Regs.set(Reg::general(3), Value::blue(42));
  S.Queue.pushFront({100, 1});
  S.Queue.pushFront({200, 2});
  return S;
}

TEST(FaultSiteTest, EnumerationCoversAllRegistersAndQueue) {
  CodeMemory Code;
  Code.set(1, Inst::mov(Reg::general(0), Value::green(0)));
  MachineState S = makeState(Code);
  std::vector<FaultSite> Sites = enumerateFaultSites(S);
  // Every register plus two components per queue entry.
  EXPECT_EQ(Sites.size(), Reg::NumRegs + 2 * 2);
}

TEST(FaultSiteTest, RegZapPreservesColor) {
  CodeMemory Code;
  Code.set(1, Inst::mov(Reg::general(0), Value::green(0)));
  MachineState S = makeState(Code);
  injectFault(S, FaultSite::reg(Reg::general(3)), 999);
  // Rule reg-zap: the payload changes, the (fictional) color tag stays.
  EXPECT_EQ(S.Regs.get(Reg::general(3)), Value::blue(999));
}

TEST(FaultSiteTest, QueueZapsTargetOneComponent) {
  CodeMemory Code;
  Code.set(1, Inst::mov(Reg::general(0), Value::green(0)));
  MachineState S = makeState(Code);
  injectFault(S, FaultSite::queueAddress(0), 777); // front entry (200,2)
  EXPECT_EQ(S.Queue.entry(0), (QueueEntry{777, 2}));
  injectFault(S, FaultSite::queueValue(1), 888); // back entry (100,1)
  EXPECT_EQ(S.Queue.entry(1), (QueueEntry{100, 888}));
}

TEST(FaultSiteTest, FaultColors) {
  CodeMemory Code;
  Code.set(1, Inst::mov(Reg::general(0), Value::green(0)));
  MachineState S = makeState(Code);
  EXPECT_EQ(faultColor(S, FaultSite::reg(Reg::general(3))), Color::Blue);
  EXPECT_EQ(faultColor(S, FaultSite::reg(Reg::general(0))), Color::Green);
  EXPECT_EQ(faultColor(S, FaultSite::reg(Reg::pcB())), Color::Blue);
  // The queue is a green structure.
  EXPECT_EQ(faultColor(S, FaultSite::queueAddress(0)), Color::Green);
  EXPECT_EQ(faultColor(S, FaultSite::queueValue(1)), Color::Green);
}

TEST(FaultSiteTest, CurrentValueAt) {
  CodeMemory Code;
  Code.set(1, Inst::mov(Reg::general(0), Value::green(0)));
  MachineState S = makeState(Code);
  EXPECT_EQ(currentValueAt(S, FaultSite::reg(Reg::general(3))), 42);
  EXPECT_EQ(currentValueAt(S, FaultSite::queueAddress(0)), 200);
  EXPECT_EQ(currentValueAt(S, FaultSite::queueValue(0)), 2);
}

TEST(FaultSiteTest, Rendering) {
  EXPECT_EQ(FaultSite::reg(Reg::general(7)).str(), "reg-zap r7");
  EXPECT_EQ(FaultSite::reg(Reg::pcG()).str(), "reg-zap pcG");
  EXPECT_EQ(FaultSite::queueAddress(2).str(), "Q-zap1 (entry 2 address)");
  EXPECT_EQ(FaultSite::queueValue(0).str(), "Q-zap2 (entry 0 value)");
}

TEST(CorruptionSetTest, CoversRuleDiscriminatingValues) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P =
      parseAndLayoutTalProgram(TC, progs::PairedStore, Diags);
  ASSERT_TRUE(P) << P.message();
  std::vector<int64_t> Values = representativeCorruptions(*P);

  auto Contains = [&Values](int64_t V) {
    return std::find(Values.begin(), Values.end(), V) != Values.end();
  };
  // The zero/nonzero discriminator (d tests, bz tests).
  EXPECT_TRUE(Contains(0));
  EXPECT_TRUE(Contains(1));
  EXPECT_TRUE(Contains(-1));
  // Each block entry and neighbors (valid/invalid code addresses).
  for (const Block &B : P->blocks()) {
    Addr A = P->addressOf(B.Label);
    EXPECT_TRUE(Contains(A - 1));
    EXPECT_TRUE(Contains(A));
    EXPECT_TRUE(Contains(A + 1));
  }
  // Each data cell and neighbors (valid/invalid data addresses).
  EXPECT_TRUE(Contains(255));
  EXPECT_TRUE(Contains(256));
  EXPECT_TRUE(Contains(257));
  // Sorted and deduplicated.
  EXPECT_TRUE(std::is_sorted(Values.begin(), Values.end()));
  EXPECT_TRUE(std::adjacent_find(Values.begin(), Values.end()) ==
              Values.end());
}

// --- Similarity relations (Figure 9) ------------------------------------

TEST(SimilarityTest, ValuesIdenticalOrZapColored) {
  ZapTag None = ZapTag::none();
  ZapTag G = ZapTag::color(Color::Green);
  EXPECT_TRUE(similarValues(None, Value::green(4), Value::green(4)));
  EXPECT_FALSE(similarValues(None, Value::green(4), Value::green(5)));
  // Under a green zap, green payloads may differ arbitrarily...
  EXPECT_TRUE(similarValues(G, Value::green(4), Value::green(999)));
  // ...but blue values must still agree, and colors never mix.
  EXPECT_FALSE(similarValues(G, Value::blue(4), Value::blue(5)));
  EXPECT_FALSE(similarValues(G, Value::green(4), Value::blue(4)));
}

TEST(SimilarityTest, RegisterFilesPointwise) {
  RegisterFile A(1), B(1);
  ZapTag G = ZapTag::color(Color::Green);
  EXPECT_TRUE(similarRegisterFiles(ZapTag::none(), A, B));
  B.set(Reg::general(2), Value::green(7));
  EXPECT_FALSE(similarRegisterFiles(ZapTag::none(), A, B));
  EXPECT_TRUE(similarRegisterFiles(G, A, B));
  B.set(Reg::general(3), Value::blue(7));
  EXPECT_FALSE(similarRegisterFiles(G, A, B));
}

TEST(SimilarityTest, QueuesAreGreenStructures) {
  StoreQueue A, B;
  A.pushFront({100, 1});
  B.pushFront({100, 2});
  EXPECT_FALSE(similarQueues(ZapTag::none(), A, B));
  EXPECT_TRUE(similarQueues(ZapTag::color(Color::Green), A, B));
  // A blue zap cannot excuse queue differences.
  EXPECT_FALSE(similarQueues(ZapTag::color(Color::Blue), A, B));
  B.pushFront({1, 1});
  EXPECT_FALSE(similarQueues(ZapTag::color(Color::Green), A, B));
}

TEST(SimilarityTest, StatesRequireIdenticalMemoryAndIR) {
  CodeMemory Code;
  Code.set(1, Inst::mov(Reg::general(0), Value::green(0)));
  MachineState A(Code, 1), B(Code, 1);
  ZapTag G = ZapTag::color(Color::Green);
  EXPECT_TRUE(similarStates(G, A, B));
  B.Mem.set(10, 5);
  EXPECT_FALSE(similarStates(G, A, B));
  B = MachineState(Code, 1);
  B.IR = Code.get(1);
  EXPECT_FALSE(similarStates(G, A, B));
  // The fault state is similar only to itself.
  EXPECT_FALSE(similarStates(G, MachineState::faultState(), A));
  EXPECT_TRUE(similarStates(G, MachineState::faultState(),
                            MachineState::faultState()));
}

} // namespace
