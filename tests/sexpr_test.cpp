//===- tests/sexpr_test.cpp - Static expression unit tests ----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "sexpr/ExprOps.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

TEST(ExprContextTest, ConstantsAreUniqued) {
  ExprContext Es;
  EXPECT_EQ(Es.intConst(5), Es.intConst(5));
  EXPECT_NE(Es.intConst(5), Es.intConst(6));
}

TEST(ExprContextTest, VariablesAreUniquedByName) {
  ExprContext Es;
  const Expr *X1 = Es.var("x", ExprKind::Int);
  const Expr *X2 = Es.var("x", ExprKind::Int);
  EXPECT_EQ(X1, X2);
  EXPECT_NE(X1, Es.var("y", ExprKind::Int));
}

TEST(ExprContextTest, CompoundNodesAreUniqued) {
  ExprContext Es;
  const Expr *X = Es.var("x", ExprKind::Int);
  const Expr *A = Es.binop(Opcode::Add, X, Es.intConst(1));
  const Expr *B = Es.binop(Opcode::Add, X, Es.intConst(1));
  EXPECT_EQ(A, B);
  const Expr *M = Es.var("m", ExprKind::Mem);
  EXPECT_EQ(Es.sel(M, X), Es.sel(M, X));
  EXPECT_EQ(Es.upd(M, X, A), Es.upd(M, X, A));
  EXPECT_EQ(Es.emp(), Es.emp());
}

TEST(ExprTest, ClosednessTracking) {
  ExprContext Es;
  EXPECT_TRUE(Es.intConst(3)->isClosed());
  EXPECT_TRUE(Es.emp()->isClosed());
  const Expr *X = Es.var("x", ExprKind::Int);
  EXPECT_FALSE(X->isClosed());
  EXPECT_FALSE(Es.binop(Opcode::Add, X, Es.intConst(1))->isClosed());
  EXPECT_TRUE(
      Es.binop(Opcode::Add, Es.intConst(1), Es.intConst(2))->isClosed());
}

TEST(ExprTest, Rendering) {
  ExprContext Es;
  const Expr *X = Es.var("x", ExprKind::Int);
  const Expr *M = Es.var("m", ExprKind::Mem);
  EXPECT_EQ(Es.intConst(-4)->str(), "-4");
  EXPECT_EQ(Es.binop(Opcode::Add, X, Es.intConst(1))->str(), "x + 1");
  EXPECT_EQ(Es.sel(M, X)->str(), "sel m x");
  EXPECT_EQ(Es.upd(M, Es.intConst(4), X)->str(), "upd m 4 x");
  EXPECT_EQ(Es.sel(Es.upd(M, Es.intConst(4), X), Es.intConst(4))->str(),
            "sel (upd m 4 x) 4");
}

TEST(ExprTest, StructuralOrderIsTotal) {
  ExprContext Es;
  const Expr *X = Es.var("x", ExprKind::Int);
  const Expr *Y = Es.var("y", ExprKind::Int);
  EXPECT_EQ(compareExprs(X, X), 0);
  EXPECT_LT(compareExprs(X, Y), 0);
  EXPECT_GT(compareExprs(Y, X), 0);
  EXPECT_NE(compareExprs(Es.intConst(1), X), 0);
}

TEST(FreeVarsTest, CollectsDistinctInOrder) {
  ExprContext Es;
  const Expr *X = Es.var("x", ExprKind::Int);
  const Expr *Y = Es.var("y", ExprKind::Int);
  const Expr *E = Es.binop(Opcode::Add, Es.binop(Opcode::Mul, X, Y), X);
  std::vector<const Expr *> FV = freeVars(E);
  ASSERT_EQ(FV.size(), 2u);
  EXPECT_EQ(FV[0], X);
  EXPECT_EQ(FV[1], Y);
  EXPECT_TRUE(freeVars(Es.intConst(3)).empty());
}

TEST(VarScopeTest, DeclareAndLookup) {
  VarScope D;
  EXPECT_TRUE(D.declare("x", ExprKind::Int));
  EXPECT_FALSE(D.declare("x", ExprKind::Mem)); // duplicate name
  EXPECT_TRUE(D.declare("m", ExprKind::Mem));
  EXPECT_EQ(D.lookup("x"), ExprKind::Int);
  EXPECT_EQ(D.lookup("m"), ExprKind::Mem);
  EXPECT_FALSE(D.lookup("z"));
  EXPECT_EQ(D.str(), "m:mem, x:int");
}

TEST(WellFormedTest, RespectsScopeAndKind) {
  ExprContext Es;
  VarScope D;
  D.declare("x", ExprKind::Int);
  const Expr *X = Es.var("x", ExprKind::Int);
  const Expr *Y = Es.var("y", ExprKind::Int);
  EXPECT_TRUE(wellFormedIn(X, D));
  EXPECT_FALSE(wellFormedIn(Y, D));
  EXPECT_TRUE(wellFormedIn(Es.intConst(1), D));
}

TEST(SubstTest, ApplyReplacesVariables) {
  ExprContext Es;
  const Expr *X = Es.var("x", ExprKind::Int);
  const Expr *E = Es.binop(Opcode::Add, X, Es.intConst(1));
  Subst S;
  S.bind(X, Es.intConst(41));
  const Expr *R = S.apply(Es, E);
  EXPECT_EQ(R, Es.binop(Opcode::Add, Es.intConst(41), Es.intConst(1)));
}

TEST(SubstTest, ApplyLeavesUnboundVariables) {
  ExprContext Es;
  const Expr *X = Es.var("x", ExprKind::Int);
  const Expr *Y = Es.var("y", ExprKind::Int);
  Subst S;
  S.bind(X, Es.intConst(1));
  const Expr *E = Es.binop(Opcode::Add, X, Y);
  const Expr *R = S.apply(Es, E);
  EXPECT_EQ(R, Es.binop(Opcode::Add, Es.intConst(1), Y));
}

TEST(SubstTest, ComposeAppliesOuterToBindings) {
  ExprContext Es;
  const Expr *X = Es.var("x", ExprKind::Int);
  const Expr *Y = Es.var("y", ExprKind::Int);
  Subst Inner;
  Inner.bind(X, Es.binop(Opcode::Add, Y, Es.intConst(1)));
  Subst Outer;
  Outer.bind(Y, Es.intConst(10));
  Subst C = Inner.composeWith(Es, Outer);
  EXPECT_EQ(C.lookup(X),
            Es.binop(Opcode::Add, Es.intConst(10), Es.intConst(1)));
}

TEST(EvalTest, IntegerDenotations) {
  ExprContext Es;
  EXPECT_EQ(evalInt(Es.intConst(7)), 7);
  const Expr *E = Es.binop(
      Opcode::Mul, Es.binop(Opcode::Add, Es.intConst(2), Es.intConst(3)),
      Es.intConst(4));
  EXPECT_EQ(evalInt(E), 20);
}

TEST(EvalTest, MemoryDenotations) {
  ExprContext Es;
  const Expr *M = Es.upd(Es.upd(Es.emp(), Es.intConst(4), Es.intConst(10)),
                         Es.intConst(8), Es.intConst(20));
  std::optional<MemDenotation> D = evalMem(M);
  ASSERT_TRUE(D);
  EXPECT_EQ(D->at(4), 10);
  EXPECT_EQ(D->at(8), 20);
  EXPECT_EQ(evalInt(Es.sel(M, Es.intConst(4))), 10);
  // Outer updates win.
  const Expr *M2 = Es.upd(M, Es.intConst(4), Es.intConst(99));
  EXPECT_EQ(evalInt(Es.sel(M2, Es.intConst(4))), 99);
}

TEST(EvalTest, UndefinedSelections) {
  ExprContext Es;
  EXPECT_FALSE(evalInt(Es.sel(Es.emp(), Es.intConst(4))));
}

} // namespace
