//===- tests/metatheory_test.cpp - Executable Theorems 1-4 ----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Runs the executable versions of Progress, Preservation, No False
// Positives and Fault Tolerance over the example programs — including the
// expensive variant that re-types every state of every faulty
// continuation (Theorem 2 part 2), strided for test-time budgets.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "check/ProgramChecker.h"
#include "fault/Theorems.h"
#include "tal/Parser.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

struct Loaded {
  TypeContext TC;
  DiagnosticEngine Diags;
  std::optional<Program> Prog;
  std::optional<CheckedProgram> CP;

  void load(const char *Source) {
    Expected<Program> P = parseAndLayoutTalProgram(TC, Source, Diags);
    ASSERT_TRUE(P) << P.message();
    Prog.emplace(std::move(*P));
    Expected<CheckedProgram> C = checkProgram(TC, *Prog, Diags);
    ASSERT_TRUE(C) << Diags.str();
    CP.emplace(std::move(*C));
  }
};

const char *allPrograms[] = {progs::PairedStore, progs::IndirectJump,
                             progs::CountdownLoop, progs::QueueForwarding,
                             progs::PendingStoreAcrossJump};

class MetatheoryTest : public ::testing::TestWithParam<const char *> {};

TEST_P(MetatheoryTest, FaultFreeProgressPreservationNoFalsePositives) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(GetParam()));
  TheoremReport R = checkFaultFreeExecution(L.TC, *L.CP, TheoremConfig());
  EXPECT_TRUE(R.Ok) << (R.Violations.empty() ? "?" : R.Violations.front());
  // Every reachable state was re-typed (fetch and execute states).
  EXPECT_EQ(R.StatesTypechecked, R.ReferenceSteps + 1);
}

TEST_P(MetatheoryTest, FaultToleranceExhaustive) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(GetParam()));
  TheoremReport R = checkFaultTolerance(L.TC, *L.CP, TheoremConfig());
  EXPECT_TRUE(R.Ok) << (R.Violations.empty() ? "?" : R.Violations.front());
  EXPECT_EQ(R.DetectedFaults + R.MaskedFaults, R.InjectionsTested);
  EXPECT_GT(R.DetectedFaults, 0u);
  EXPECT_GT(R.MaskedFaults, 0u);
}

TEST_P(MetatheoryTest, FaultyStatePreservation) {
  // Theorem 2 part 2 / Theorem 1 part 2: after a fault of color c, every
  // subsequent state of the faulty run is well-typed under zap tag c
  // (until detection). Strided to keep runtime in budget.
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(GetParam()));
  TheoremConfig Config;
  Config.InjectionStride = 3;
  Config.TypeCheckFaultyStates = true;
  Config.FaultyTypeCheckStride = 2;
  TheoremReport R = checkFaultTolerance(L.TC, *L.CP, Config);
  EXPECT_TRUE(R.Ok) << (R.Violations.empty() ? "?" : R.Violations.front());
  EXPECT_GT(R.StatesTypechecked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Programs, MetatheoryTest,
                         ::testing::ValuesIn(allPrograms));

TEST(MetatheoryNegative, UntypedProgramViolatesFaultTolerance) {
  // The CSE-broken program is rejected by the checker; run the Theorem 4
  // sweep anyway (bypassing the type guarantee) and confirm the sweep
  // finds the silent corruption — i.e. the checker is load-bearing.
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P =
      parseAndLayoutTalProgram(TC, progs::CseBroken, Diags);
  ASSERT_TRUE(P) << P.message();
  // Forge a CheckedProgram the checker would refuse to produce: thread
  // contexts exist only where checking succeeded, so build a minimal one
  // by checking the program's blocks leniently — here we simply reuse the
  // sweep's machinery through an unchecked TrackedRun-free path: inject
  // directly on the semantics.
  Expected<MachineState> S0 = P->initialState();
  ASSERT_TRUE(S0) << S0.message();
  MachineState Ref = *S0;
  RunResult RefRun = run(Ref, P->exitAddress(), 1000);
  ASSERT_EQ(RefRun.Status, RunStatus::Halted);

  bool FoundSilentCorruption = false;
  for (uint64_t K = 0; K <= RefRun.Steps && !FoundSilentCorruption; ++K) {
    MachineState S = *S0;
    for (uint64_t I = 0; I != K; ++I)
      step(S);
    if (S.isFault())
      break;
    for (const FaultSite &Site : enumerateFaultSites(S)) {
      if (Site.K == FaultSite::Kind::Register &&
          !Site.R.isGeneral())
        continue;
      MachineState F = S;
      injectFault(F, Site, 99);
      RunResult FR = run(F, P->exitAddress(), 2000);
      if (FR.Status == RunStatus::Halted && !(FR.Trace == RefRun.Trace)) {
        FoundSilentCorruption = true;
        break;
      }
    }
  }
  EXPECT_TRUE(FoundSilentCorruption)
      << "the ill-typed program should exhibit silent corruption";
}

TEST(TrackedRunTest, SnapshotsRestoreExactly) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::CountdownLoop));
  TrackedRun Run(L.TC, *L.CP);
  ASSERT_FALSE(Run.start());
  for (int I = 0; I != 25; ++I)
    Run.stepOnce();
  TrackedRun::Snapshot Snap = Run.snapshot();
  OutputTrace TraceAt = Run.trace();

  // Diverge: inject and run to detection.
  Run.injectSingleFault(FaultSite::reg(Reg::general(1)), 777);
  while (!Run.atExitBlock() && !Run.state().isFault())
    if (Run.stepOnce().Status != StepStatus::Ok)
      break;

  // Restore and confirm the clean continuation still works and types.
  Run.restore(Snap);
  EXPECT_TRUE(Run.zapTag().isNone());
  EXPECT_EQ(Run.steps(), 25u);
  EXPECT_EQ(Run.trace(), TraceAt);
  ASSERT_FALSE(Run.checkTyped());
  while (!Run.atExitBlock()) {
    ASSERT_EQ(Run.stepOnce().Status, StepStatus::Ok);
    ASSERT_FALSE(Run.checkTyped());
  }
}

TEST(TrackedRunTest, ClosingSubstitutionTracksTransfers) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::CountdownLoop));
  TrackedRun Run(L.TC, *L.CP);
  ASSERT_FALSE(Run.start());
  // Step through at least one committed jump and keep checking types; the
  // closing substitution must follow the transfer.
  uint64_t Jumps = 0;
  while (!Run.atExitBlock()) {
    StepResult SR = Run.stepOnce();
    ASSERT_EQ(SR.Status, StepStatus::Ok);
    if (SR.Rule && std::string(SR.Rule) == "jmpB")
      ++Jumps;
    ASSERT_FALSE(Run.checkTyped()) << "after rule " << SR.Rule;
  }
  EXPECT_GE(Jumps, 4u); // entry->loop, 3 back edges, loop->done via bzB
}

} // namespace
