//===- tests/support_test.cpp - Support library unit tests ----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/Error.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

TEST(ErrorTest, SuccessIsFalsy) {
  Error E = Error::success();
  EXPECT_FALSE(E);
}

TEST(ErrorTest, FailureCarriesMessage) {
  Error E = makeError("bad things");
  EXPECT_TRUE(E);
  EXPECT_EQ(E.message(), "bad things");
}

TEST(ExpectedTest, SuccessHoldsValue) {
  Expected<int> E(42);
  ASSERT_TRUE(E);
  EXPECT_EQ(*E, 42);
  EXPECT_FALSE(E.takeError());
}

TEST(ExpectedTest, FailureHoldsError) {
  Expected<int> E(makeError("nope"));
  ASSERT_FALSE(E);
  EXPECT_EQ(E.message(), "nope");
}

TEST(ExpectedTest, MoveIntoTransfersOnSuccess) {
  Expected<std::string> E(std::string("hello"));
  std::string Out;
  EXPECT_FALSE(E.moveInto(Out));
  EXPECT_EQ(Out, "hello");
}

TEST(ExpectedTest, MoveIntoReturnsErrorOnFailure) {
  Expected<std::string> E(makeError("no"));
  std::string Out = "unchanged";
  Error Err = E.moveInto(Out);
  EXPECT_TRUE(Err);
  EXPECT_EQ(Out, "unchanged");
}

TEST(DiagnosticsTest, CountsErrorsOnly) {
  DiagnosticEngine D;
  D.warning(SourceLoc(1, 2), "w");
  D.note(SourceLoc(), "n");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(3, 4), "e");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
}

TEST(DiagnosticsTest, Rendering) {
  DiagnosticEngine D;
  D.error(SourceLoc(3, 7), "bad register");
  EXPECT_EQ(D.diagnostics()[0].str(), "error: 3:7: bad register");
  D.clear();
  D.error("global problem");
  EXPECT_EQ(D.diagnostics()[0].str(), "error: global problem");
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtilsTest, ParseInt64) {
  EXPECT_EQ(parseInt64("0"), 0);
  EXPECT_EQ(parseInt64("12345"), 12345);
  EXPECT_EQ(parseInt64("-7"), -7);
  EXPECT_EQ(parseInt64("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(parseInt64("-9223372036854775808"), INT64_MIN);
  EXPECT_FALSE(parseInt64(""));
  EXPECT_FALSE(parseInt64("-"));
  EXPECT_FALSE(parseInt64("12x"));
  EXPECT_FALSE(parseInt64("9223372036854775808"));  // overflow
  EXPECT_FALSE(parseInt64("-9223372036854775809")); // underflow
}

TEST(StringUtilsTest, Formatv) {
  EXPECT_EQ(formatv("x=%d y=%s", 5, "hi"), "x=5 y=hi");
  EXPECT_EQ(formatv("no args"), "no args");
}

} // namespace
