//===- tests/normalize_property_test.cpp - Prover soundness properties ----===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Randomized (deterministically seeded) property tests for the equality
// decision procedure, which the whole type system leans on:
//
//   P1 (soundness of normalize): for random expressions E and random
//      closing substitutions S, [[S(E)]] = [[S(normalize(E))]];
//   P2 (soundness of Yes): provablyEqual(A,B) implies [[S(A)]] = [[S(B)]]
//      for every tested S;
//   P3 (soundness of No): provablyDistinct(A,B) implies
//      [[S(A)]] ≠ [[S(B)]] for every tested S;
//   P4 (congruence): normalize is idempotent and stable under
//      hash-consing identity.
//
//===----------------------------------------------------------------------===//

#include "sexpr/ExprNormalize.h"
#include "sexpr/ExprOps.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

/// xorshift64* — deterministic, seedable, no global state.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, N).
  uint64_t below(uint64_t N) { return next() % N; }

  int64_t smallInt() { return (int64_t)below(21) - 10; }

private:
  uint64_t State;
};

/// Builds a random integer expression of bounded depth over {x, y} and a
/// memory skeleton over {m}.
class ExprGen {
public:
  ExprGen(ExprContext &Es, Rng &R) : Es(Es), R(R) {}

  const Expr *intExpr(unsigned Depth) {
    if (Depth == 0 || R.below(4) == 0) {
      switch (R.below(3)) {
      case 0:
        return Es.intConst(R.smallInt());
      case 1:
        return Es.var("x", ExprKind::Int);
      default:
        return Es.var("y", ExprKind::Int);
      }
    }
    switch (R.below(5)) {
    case 0:
      return Es.binop(Opcode::Add, intExpr(Depth - 1), intExpr(Depth - 1));
    case 1:
      return Es.binop(Opcode::Sub, intExpr(Depth - 1), intExpr(Depth - 1));
    case 2:
      return Es.binop(Opcode::Mul, intExpr(Depth - 1), intExpr(Depth - 1));
    default:
      return Es.sel(memExpr(Depth - 1), intExpr(Depth - 1));
    }
  }

  const Expr *memExpr(unsigned Depth) {
    if (Depth == 0 || R.below(3) == 0)
      return Es.var("m", ExprKind::Mem);
    return Es.upd(memExpr(Depth - 1), intExpr(Depth - 1),
                  intExpr(Depth - 1));
  }

private:
  ExprContext &Es;
  Rng &R;
};

/// A dense closing substitution: x, y small ints; m a small literal
/// memory covering the address range random sub-expressions land in.
Subst closing(ExprContext &Es, Rng &R) {
  Subst S;
  S.bind(Es.var("x", ExprKind::Int), Es.intConst(R.smallInt()));
  S.bind(Es.var("y", ExprKind::Int), Es.intConst(R.smallInt()));
  const Expr *M = Es.emp();
  for (int64_t A = -40; A <= 40; ++A)
    M = Es.upd(M, Es.intConst(A), Es.intConst(R.smallInt()));
  S.bind(Es.var("m", ExprKind::Mem), M);
  return S;
}

class NormalizeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NormalizeProperty, NormalizationPreservesDenotation) {
  ExprContext Es;
  Rng R(GetParam() * 2654435761u + 1);
  ExprGen Gen(Es, R);
  for (int Trial = 0; Trial != 40; ++Trial) {
    const Expr *E = Gen.intExpr(4);
    const Expr *N = normalize(Es, E);
    for (int SubstTrial = 0; SubstTrial != 3; ++SubstTrial) {
      Subst S = closing(Es, R);
      std::optional<int64_t> VE = evalInt(S.apply(Es, E));
      std::optional<int64_t> VN = evalInt(S.apply(Es, N));
      // Denotations agree whenever both are defined; normalization may
      // only *add* definedness (sel-over-upd resolution can remove a
      // failing lookup, never introduce one).
      if (VE) {
        ASSERT_TRUE(VN) << "normalize lost definedness of " << E->str();
        EXPECT_EQ(*VE, *VN) << E->str() << "  vs  " << N->str();
      }
    }
  }
}

TEST_P(NormalizeProperty, YesVerdictsAreSemanticallyTrue) {
  ExprContext Es;
  Rng R(GetParam() * 0x9E3779B9u + 7);
  ExprGen Gen(Es, R);
  unsigned YesSeen = 0;
  for (int Trial = 0; Trial != 60; ++Trial) {
    const Expr *A = Gen.intExpr(3);
    // Derive B from A by a semantically identity-preserving rewrite, so
    // Yes verdicts actually occur: B = (A + k) - k.
    const Expr *K = Es.intConst(R.smallInt());
    const Expr *B =
        Es.binop(Opcode::Sub, Es.binop(Opcode::Add, A, K), K);
    Proof P = compareEqual(Es, A, B);
    EXPECT_NE(P, Proof::No);
    if (P == Proof::Yes)
      ++YesSeen;
    Subst S = closing(Es, R);
    std::optional<int64_t> VA = evalInt(S.apply(Es, A));
    std::optional<int64_t> VB = evalInt(S.apply(Es, B));
    if (VA && VB) {
      EXPECT_EQ(*VA, *VB);
    }
  }
  EXPECT_GT(YesSeen, 0u);
}

TEST_P(NormalizeProperty, NoVerdictsAreSemanticallyTrue) {
  ExprContext Es;
  Rng R(GetParam() * 6364136223846793005ull + 3);
  ExprGen Gen(Es, R);
  for (int Trial = 0; Trial != 60; ++Trial) {
    const Expr *A = Gen.intExpr(3);
    const Expr *B = Gen.intExpr(3);
    if (compareEqual(Es, A, B) != Proof::No)
      continue;
    // Provably distinct: no substitution may make them equal.
    for (int SubstTrial = 0; SubstTrial != 4; ++SubstTrial) {
      Subst S = closing(Es, R);
      std::optional<int64_t> VA = evalInt(S.apply(Es, A));
      std::optional<int64_t> VB = evalInt(S.apply(Es, B));
      if (VA && VB) {
        EXPECT_NE(*VA, *VB) << A->str() << "  vs  " << B->str();
      }
    }
  }
}

TEST_P(NormalizeProperty, NormalizeIsIdempotent) {
  ExprContext Es;
  Rng R(GetParam() + 11);
  ExprGen Gen(Es, R);
  for (int Trial = 0; Trial != 40; ++Trial) {
    const Expr *E = R.below(2) ? Gen.intExpr(4) : Gen.memExpr(3);
    const Expr *N1 = normalize(Es, E);
    const Expr *N2 = normalize(Es, N1);
    EXPECT_EQ(N1, N2) << E->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizeProperty,
                         ::testing::Range<uint64_t>(1, 26));

} // namespace
