//===- tests/wile_optimize_test.cpp - IR optimizer tests ------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "wile/Evaluate.h"
#include "wile/Kernels.h"
#include "wile/Lower.h"
#include "wile/Optimize.h"
#include "wile/Parser.h"

#include <gtest/gtest.h>

using namespace talft;
using namespace talft::wile;

namespace {

IRProgram lowered(const char *Src) {
  DiagnosticEngine Diags;
  Expected<WileProgram> P = parseWile(Src, Diags);
  EXPECT_TRUE(P) << P.message();
  Expected<IRProgram> IR = lowerToIR(*P, Diags);
  EXPECT_TRUE(IR) << IR.message();
  return IR ? std::move(*IR) : IRProgram();
}

size_t totalOps(const IRProgram &IR) {
  size_t N = 0;
  for (const IRBlock &B : IR.Blocks)
    N += B.Ops.size();
  return N;
}

TEST(OptimizeTest, FoldsConstantArithmetic) {
  IRProgram IR = lowered("var x; x = 2 + 3 * 4; output(x);");
  OptStats Stats = optimizeIR(IR);
  EXPECT_GE(Stats.Folded, 2u);
  // The entry block should now define x with a single Const 14.
  bool FoundConst14 = false;
  for (const IROp &Op : IR.Blocks[0].Ops)
    if (Op.K == IROp::Kind::Const && Op.Dst == 0 && Op.Imm == 14)
      FoundConst14 = true;
  EXPECT_TRUE(FoundConst14);
}

TEST(OptimizeTest, EliminatesDeadTemporaries) {
  IRProgram IR = lowered("var x; x = (1 + 2) + (3 + 4); output(x);");
  size_t Before = totalOps(IR);
  OptStats Stats = optimizeIR(IR);
  EXPECT_GT(Stats.Eliminated, 0u);
  EXPECT_LT(totalOps(IR), Before);
}

TEST(OptimizeTest, StrengthensConstantIndexAddresses) {
  // i is a constant at the access point, so the dynamic index becomes a
  // constant address.
  IRProgram IR = lowered(R"(
var i; var y;
array a[8];
i = 3;
a[i] = 7;
y = a[i];
output(y);
)");
  OptStats Stats = optimizeIR(IR);
  EXPECT_GE(Stats.AddressesStrengthened, 2u);
  for (const IRBlock &B : IR.Blocks)
    for (const IROp &Op : B.Ops)
      if (Op.K == IROp::Kind::Load || Op.K == IROp::Kind::Store) {
        EXPECT_EQ(Op.AddrTemp, -1);
      }
}

TEST(OptimizeTest, BlockLocalConstantIndexingTypesEitherWay) {
  // A block-local constant index is inside the singleton-ref discipline
  // both ways: the optimizer strengthens the address at the IR level, and
  // even without it the checker's constant refinement normalizes the
  // address expression to the literal cell. (Truly symbolic indices —
  // loop-carried ones — stay untypable either way; neither pass crosses
  // block boundaries.)
  const char *Src = R"(
var i; var y;
array a[4];
i = 2;
a[i] = 9;
y = a[i] + 1;
output(y);
)";
  for (bool Optimize : {false, true}) {
    TypeContext TC;
    DiagnosticEngine Diags;
    Expected<CompiledProgram> CP = compileWile(
        TC, Src, CodegenMode::FaultTolerant, Diags, Optimize);
    ASSERT_TRUE(CP) << CP.message();
    DiagnosticEngine DC;
    Expected<CheckedProgram> C = checkProgram(TC, CP->Prog, DC);
    EXPECT_TRUE(C) << "optimize=" << Optimize << "\n" << DC.str();
  }
}

TEST(OptimizeTest, NeverDeletesLoads) {
  // A load's result may be dead, but deleting it would change behavior
  // under the trapping wild-load policy.
  IRProgram IR = lowered(R"(
var x; var dead;
array a[2];
dead = a[0];
x = 5;
output(x);
)");
  size_t LoadsBefore = 0, LoadsAfter = 0;
  for (const IRBlock &B : IR.Blocks)
    for (const IROp &Op : B.Ops)
      LoadsBefore += Op.K == IROp::Kind::Load;
  optimizeIR(IR);
  for (const IRBlock &B : IR.Blocks)
    for (const IROp &Op : B.Ops)
      LoadsAfter += Op.K == IROp::Kind::Load;
  EXPECT_EQ(LoadsBefore, LoadsAfter);
}

TEST(OptimizeTest, CopyPropagationReachesTerminators) {
  // "while (y ...)" where y copies x: the branch should test x's register
  // after propagation... observable via semantics preservation below; here
  // just confirm the pass runs and reports propagations.
  IRProgram IR = lowered(R"(
var x = 3; var y;
y = x;
while (y != 0) { y = y - 1; }
output(y);
)");
  OptStats Stats = optimizeIR(IR);
  EXPECT_GT(Stats.Propagated, 0u);
}

/// Oracle check: optimization preserves every kernel's behavior under
/// both backends.
class OptimizedKernels : public ::testing::TestWithParam<size_t> {};

TEST_P(OptimizedKernels, SemanticsPreserved) {
  const Kernel &K = benchmarkKernels()[GetParam()];
  for (CodegenMode Mode :
       {CodegenMode::Unprotected, CodegenMode::FaultTolerant}) {
    TypeContext TC1, TC2;
    DiagnosticEngine Diags;
    Expected<CompiledProgram> Plain =
        compileWile(TC1, K.Source, Mode, Diags, /*Optimize=*/false);
    Expected<CompiledProgram> Opt =
        compileWile(TC2, K.Source, Mode, Diags, /*Optimize=*/true);
    ASSERT_TRUE(Plain) << Plain.message();
    ASSERT_TRUE(Opt) << Opt.message();
    Expected<ExecutionProfile> P1 = profileExecution(*Plain, 50'000'000);
    Expected<ExecutionProfile> P2 = profileExecution(*Opt, 50'000'000);
    ASSERT_TRUE(P1) << P1.message();
    ASSERT_TRUE(P2) << P2.message();
    EXPECT_EQ(P1->Trace, P2->Trace);
    // Optimization never makes the run longer.
    EXPECT_LE(P2->Steps, P1->Steps);
  }
}

TEST_P(OptimizedKernels, TypabilityNeverRegresses) {
  const Kernel &K = benchmarkKernels()[GetParam()];
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<CompiledProgram> Opt = compileWile(
      TC, K.Source, CodegenMode::FaultTolerant, Diags, /*Optimize=*/true);
  ASSERT_TRUE(Opt) << Opt.message();
  DiagnosticEngine DC;
  bool Checks = bool(checkProgram(TC, Opt->Prog, DC));
  if (K.Typable) {
    EXPECT_TRUE(Checks) << DC.str();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, OptimizedKernels,
    ::testing::Range<size_t>(0, benchmarkKernels().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = benchmarkKernels()[Info.param].Name;
      for (char &C : Name)
        if (!isalnum((unsigned char)C))
          C = '_';
      return Name;
    });

} // namespace
