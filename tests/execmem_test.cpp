//===- tests/execmem_test.cpp - W^X executable-memory arena ---------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The support/ExecMem.h arena underneath the JIT tier: page rounding, the
// RW -> RX finalize transition, write-after-finalize refusal, and reuse
// through reset(). The execution checks run tiny hand-assembled x86-64
// stubs and are skipped elsewhere; the bookkeeping checks run everywhere
// the arena reports itself supported.
//
//===----------------------------------------------------------------------===//

#include "support/ExecMem.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

using namespace talft;

namespace {

#if defined(__x86_64__) || defined(_M_X64)
constexpr bool HostIsX64 = true;
#else
constexpr bool HostIsX64 = false;
#endif

// mov eax, <imm32>; ret
void emitReturnConst(uint8_t *Out, uint32_t Imm) {
  Out[0] = 0xB8;
  Out[1] = uint8_t(Imm);
  Out[2] = uint8_t(Imm >> 8);
  Out[3] = uint8_t(Imm >> 16);
  Out[4] = uint8_t(Imm >> 24);
  Out[5] = 0xC3;
}

uint32_t callStub(const uint8_t *Code) {
  auto Fn = reinterpret_cast<uint32_t (*)()>(
      reinterpret_cast<uintptr_t>(Code));
  return Fn();
}

TEST(ExecMem, PageRoundingAndBookkeeping) {
  if (!ExecMem::supported())
    GTEST_SKIP() << "no executable mappings on this host";
  size_t Page = ExecMem::pageSize();
  ASSERT_GT(Page, 0u);
  ASSERT_EQ(Page & (Page - 1), 0u) << "page size must be a power of two";

  ExecMem M;
  ASSERT_TRUE(M.allocate(1));
  EXPECT_TRUE(M.valid());
  EXPECT_FALSE(M.executable());
  EXPECT_EQ(M.capacity(), Page) << "1 byte rounds up to one page";
  EXPECT_NE(M.writableBase(), nullptr);

  ExecMem Big;
  ASSERT_TRUE(Big.allocate(Page + 1));
  EXPECT_EQ(Big.capacity(), 2 * Page);
}

TEST(ExecMem, WriteFinalizeExecute) {
  if (!ExecMem::supported() || !HostIsX64)
    GTEST_SKIP() << "needs executable mappings on an x86-64 host";
  ExecMem M;
  ASSERT_TRUE(M.allocate(64));
  uint8_t Stub[6];
  emitReturnConst(Stub, 42);
  ASSERT_TRUE(M.write(0, Stub, sizeof(Stub)));
  ASSERT_TRUE(M.finalize());
  EXPECT_TRUE(M.executable());
  EXPECT_EQ(M.writableBase(), nullptr) << "no writes once executable";
  EXPECT_FALSE(M.write(8, Stub, sizeof(Stub)))
      << "W^X: writes must be refused after finalize";
  EXPECT_EQ(callStub(M.base()), 42u);
}

TEST(ExecMem, ResetPreservesContentsAndAllowsRewrite) {
  if (!ExecMem::supported() || !HostIsX64)
    GTEST_SKIP() << "needs executable mappings on an x86-64 host";
  ExecMem M;
  ASSERT_TRUE(M.allocate(64));
  uint8_t Stub[6];
  emitReturnConst(Stub, 7);
  ASSERT_TRUE(M.write(0, Stub, sizeof(Stub)));
  ASSERT_TRUE(M.finalize());
  ASSERT_EQ(callStub(M.base()), 7u);

  // Reuse: drop back to RW, patch, refinalize.
  ASSERT_TRUE(M.reset());
  EXPECT_FALSE(M.executable());
  ASSERT_NE(M.writableBase(), nullptr);
  EXPECT_EQ(M.writableBase()[0], 0xB8)
      << "reset must preserve previously written code";
  emitReturnConst(Stub, 1000000);
  ASSERT_TRUE(M.write(0, Stub, sizeof(Stub)));
  ASSERT_TRUE(M.finalize());
  EXPECT_EQ(callStub(M.base()), 1000000u);
}

TEST(ExecMem, OutOfBoundsWriteRefused) {
  if (!ExecMem::supported())
    GTEST_SKIP() << "no executable mappings on this host";
  ExecMem M;
  ASSERT_TRUE(M.allocate(16));
  uint8_t Byte = 0x90;
  EXPECT_TRUE(M.write(M.capacity() - 1, &Byte, 1));
  EXPECT_FALSE(M.write(M.capacity(), &Byte, 1));
  EXPECT_FALSE(M.write(M.capacity() - 1, &Byte, 2));
}

TEST(ExecMem, MoveTransfersOwnership) {
  if (!ExecMem::supported())
    GTEST_SKIP() << "no executable mappings on this host";
  ExecMem A;
  ASSERT_TRUE(A.allocate(32));
  const uint8_t *Base = A.base();
  ExecMem B = std::move(A);
  EXPECT_FALSE(A.valid());
  EXPECT_TRUE(B.valid());
  EXPECT_EQ(B.base(), Base);
}

} // namespace
