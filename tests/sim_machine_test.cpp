//===- tests/sim_machine_test.cpp - Run driver tests ----------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "sim/Machine.h"
#include "tal/Parser.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

TEST(TracePrefixTest, Basics) {
  OutputTrace Empty;
  OutputTrace One = {{100, 1}};
  OutputTrace Two = {{100, 1}, {200, 2}};
  OutputTrace TwoOther = {{100, 1}, {200, 3}};
  EXPECT_TRUE(isTracePrefix(Empty, Two));
  EXPECT_TRUE(isTracePrefix(One, Two));
  EXPECT_TRUE(isTracePrefix(Two, Two));
  EXPECT_FALSE(isTracePrefix(Two, One));
  EXPECT_FALSE(isTracePrefix(TwoOther, Two));
}

TEST(RunTest, HaltsAtExitBlock) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P =
      parseAndLayoutTalProgram(TC, progs::PairedStore, Diags);
  ASSERT_TRUE(P) << P.message();
  Expected<MachineState> S = P->initialState();
  ASSERT_TRUE(S) << S.message();
  RunResult R = run(*S, P->exitAddress(), 100);
  EXPECT_EQ(R.Status, RunStatus::Halted);
  // 10 instructions in main, each a fetch + execute.
  EXPECT_EQ(R.Steps, 20u);
  EXPECT_TRUE(atExit(*S, P->exitAddress()));
}

TEST(RunTest, OutOfStepsWhenBudgetTooSmall) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P =
      parseAndLayoutTalProgram(TC, progs::PairedStore, Diags);
  ASSERT_TRUE(P) << P.message();
  Expected<MachineState> S = P->initialState();
  ASSERT_TRUE(S) << S.message();
  RunResult R = run(*S, P->exitAddress(), 3);
  EXPECT_EQ(R.Status, RunStatus::OutOfSteps);
  EXPECT_EQ(R.Steps, 3u);
}

TEST(RunTest, ZeroExitAddressDisablesHaltDetection) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P =
      parseAndLayoutTalProgram(TC, progs::PairedStore, Diags);
  ASSERT_TRUE(P) << P.message();
  Expected<MachineState> S = P->initialState();
  ASSERT_TRUE(S) << S.message();
  // Without halt detection, the exit self-loop spins until the budget runs
  // out — but never faults or gets stuck.
  RunResult R = run(*S, 0, 200);
  EXPECT_EQ(R.Status, RunStatus::OutOfSteps);
}

TEST(RunStatusTest, Names) {
  EXPECT_STREQ(runStatusName(RunStatus::Halted), "halted");
  EXPECT_STREQ(runStatusName(RunStatus::FaultDetected), "fault-detected");
  EXPECT_STREQ(runStatusName(RunStatus::Stuck), "stuck");
  EXPECT_STREQ(runStatusName(RunStatus::OutOfSteps), "out-of-steps");
  EXPECT_STREQ(runStatusName(RunStatus::Converged), "converged");
}

} // namespace
