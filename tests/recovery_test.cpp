//===- tests/recovery_test.cpp - The checkpoint/rollback recovery layer ---===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The RecoveringEngine's contract has three parts, and these tests pin
// all of them:
//
//   - transparency: a fault-free run under the recovery layer is
//     observationally identical to the bare engine (same trace, same
//     step count, zero rollbacks);
//   - fail-operational: a transient single fault either completes with
//     the output trace *bit-identical* to the fault-free run or
//     escalates to fail-stop with a verified prefix — never silent
//     corruption, never a stuck state;
//   - bounded: a persistent fault exhausts the per-checkpoint retry
//     budget and escalates, so fail-stop remains the worst case.
//
// On top of the engine, the recovery campaign mode must keep the
// campaign engine's determinism guarantees: bit-identical verdict
// tables for any thread count, either resume mode, and both execution
// engines.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "check/ProgramChecker.h"
#include "fault/Campaign.h"
#include "recover/RecoveringEngine.h"
#include "tal/Parser.h"
#include "vm/Engine.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

constexpr uint64_t Budget = 100000;

struct Loaded {
  TypeContext TC;
  DiagnosticEngine Diags;
  std::optional<Program> Prog;

  void load(const char *Source) {
    Expected<Program> P = parseAndLayoutTalProgram(TC, Source, Diags);
    ASSERT_TRUE(P) << P.message();
    Prog.emplace(std::move(*P));
  }

  MachineState initial() {
    Expected<MachineState> S = Prog->initialState();
    EXPECT_TRUE(S) << S.message();
    return *S;
  }
};

/// The fault-free run every recovering run is compared against.
RunResult bareRun(Loaded &L) {
  MachineState S = L.initial();
  return referenceEngine().run(S, L.Prog->exitAddress(), Budget,
                               StepPolicy());
}

struct RecoveringRun {
  RecoveryResult R;
  OutputTrace Trace;
};

RecoveringRun runRecovering(Loaded &L, const RecoveryPolicy &RP,
                            RecoveringEngine::StepHook Hook,
                            const ExecEngine &E = referenceEngine()) {
  RecoveringEngine RE(E, RP);
  RecoveringRun Out;
  RecoveringEngine::RunSpec Spec;
  Spec.ExitAddr = L.Prog->exitAddress();
  Spec.Budget = Budget;
  Spec.OnOutput = [&Out](const QueueEntry &Q) { Out.Trace.push_back(Q); };
  Spec.Hook = std::move(Hook);
  MachineState S = L.initial();
  Out.R = RE.run(S, Spec);
  return Out;
}

TEST(RecoveringEngineTest, FaultFreeRunsAreTransparent) {
  for (const char *Source :
       {progs::CountdownLoop, progs::QueueForwarding, progs::PairedStore}) {
    Loaded L;
    ASSERT_NO_FATAL_FAILURE(L.load(Source));
    RunResult Bare = bareRun(L);
    ASSERT_EQ(Bare.Status, RunStatus::Halted);
    for (uint64_t Interval : {uint64_t(1), uint64_t(3), uint64_t(100)}) {
      RecoveryPolicy RP;
      RP.Enabled = true;
      RP.CheckpointInterval = Interval;
      RecoveringRun RR = runRecovering(L, RP, nullptr);
      EXPECT_EQ(RR.R.Status, RecoveryStatus::Halted);
      EXPECT_EQ(RR.R.Steps, Bare.Steps);
      EXPECT_TRUE(RR.Trace == Bare.Trace);
      EXPECT_EQ(RR.R.Stats.Rollbacks, 0u);
      EXPECT_EQ(RR.R.Stats.ReplayedOutputs, 0u);
    }
  }
}

TEST(RecoveringEngineTest, TransientFaultsEndIdenticalOrEscalate) {
  // Sweep one transient register corruption over every injection step:
  // each run must either halt with the output trace bit-identical to the
  // fault-free run, or escalate to fail-stop. Silent divergence, stuck
  // states and budget exhaustion are all contract violations here.
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::CountdownLoop));
  RunResult Bare = bareRun(L);
  ASSERT_EQ(Bare.Status, RunStatus::Halted);

  RecoveryPolicy RP;
  RP.Enabled = true;
  uint64_t RecoveredRuns = 0;
  for (unsigned RegNum : {1u, 2u, 10u}) {
    for (uint64_t At = 0; At <= Bare.Steps; ++At) {
      FaultSite Site = FaultSite::reg(Reg::general(RegNum));
      RecoveringRun RR = runRecovering(
          L, RP, [&Site, At](MachineState &S, uint64_t Taken) {
            if (Taken == At)
              injectFault(S, Site, 99);
          });
      if (RR.R.Status == RecoveryStatus::Halted) {
        EXPECT_TRUE(RR.Trace == Bare.Trace)
            << "r" << RegNum << " at step " << At
            << ": recovered run halted with a diverging trace";
        if (RR.R.Stats.Rollbacks > 0)
          ++RecoveredRuns;
      } else {
        EXPECT_EQ(RR.R.Status, RecoveryStatus::Escalated)
            << "r" << RegNum << " at step " << At << ": "
            << recoveryStatusName(RR.R.Status);
      }
    }
  }
  // The sweep must actually exercise the rollback path, not just mask.
  EXPECT_GT(RecoveredRuns, 0u);
}

TEST(RecoveringEngineTest, PersistentFaultExhaustsRetryBudget) {
  // Re-corrupt the green counter on every transition: each replay
  // re-detects, and with a checkpoint interval too large to ever refill
  // the budget the run must escalate after exactly RetryBudget rollbacks.
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::CountdownLoop));
  RecoveryPolicy RP;
  RP.Enabled = true;
  RP.CheckpointInterval = uint64_t(1) << 40; // Never advance.
  RP.RetryBudget = 3;
  FaultSite Site = FaultSite::reg(Reg::general(1));
  RecoveringRun RR =
      runRecovering(L, RP, [&Site](MachineState &S, uint64_t Taken) {
        if (Taken >= 5 && !S.isFault())
          injectFault(S, Site, 77);
      });
  EXPECT_EQ(RR.R.Status, RecoveryStatus::Escalated);
  EXPECT_EQ(RR.R.Reason, EscalationReason::RetriesExhausted);
  EXPECT_EQ(RR.R.Stats.Rollbacks, 3u);
  EXPECT_EQ(RR.R.Stats.Checkpoints, 0u);
}

TEST(RecoveringEngineTest, DoubleFaultDuringReplayIsDeterministicNeverSilent) {
  // The second fault lands while the first one's rollback is replaying —
  // outside the SEU model the layer is built for. The contract then is
  // weaker but still firm: the outcome is deterministic, and anything
  // that halts must have emitted the reference trace exactly.
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::CountdownLoop));
  RunResult Bare = bareRun(L);
  ASSERT_EQ(Bare.Status, RunStatus::Halted);

  RecoveryPolicy RP;
  RP.Enabled = true;
  FaultSite First = FaultSite::reg(Reg::general(2));
  FaultSite Second = FaultSite::reg(Reg::general(1));
  auto Hook = [&](MachineState &S, uint64_t Taken) {
    if (S.isFault())
      return;
    if (Taken == 20)
      injectFault(S, First, 99);
    if (Taken == 30) // Replay territory: rollback happens before step 30.
      injectFault(S, Second, 98);
  };
  RecoveringRun A = runRecovering(L, RP, Hook);
  RecoveringRun B = runRecovering(L, RP, Hook);
  EXPECT_EQ(A.R.Status, B.R.Status);
  EXPECT_EQ(A.R.Reason, B.R.Reason);
  EXPECT_EQ(A.R.Steps, B.R.Steps);
  EXPECT_EQ(A.R.Stats.Rollbacks, B.R.Stats.Rollbacks);
  EXPECT_TRUE(A.Trace == B.Trace);
  EXPECT_GE(A.R.Stats.Rollbacks, 1u);
  EXPECT_NE(A.R.Status, RecoveryStatus::Stuck);
  if (A.R.Status == RecoveryStatus::Halted) {
    EXPECT_TRUE(A.Trace == Bare.Trace);
  }
}

// -------------------------------------------------------------------------
// Recovery campaigns.

TheoremConfig recoveryConfig() {
  TheoremConfig Config;
  Config.Recovery.Enabled = true;
  return Config;
}

void expectSameTable(const CampaignResult &A, const CampaignResult &B) {
  EXPECT_EQ(A.Ok, B.Ok);
  EXPECT_EQ(A.Table, B.Table);
  EXPECT_EQ(A.Violations, B.Violations);
  EXPECT_EQ(A.Recovery.Rollbacks, B.Recovery.Rollbacks);
  EXPECT_EQ(A.Recovery.Checkpoints, B.Recovery.Checkpoints);
  EXPECT_EQ(A.Recovery.ReplayedOutputs, B.Recovery.ReplayedOutputs);
}

TEST(RecoveryCampaignTest, OnlyBenignVerdictsAndDeterministicTables) {
  for (const char *Source : {progs::PairedStore, progs::CountdownLoop}) {
    Loaded L;
    ASSERT_NO_FATAL_FAILURE(L.load(Source));
    CampaignOptions Opts;
    Opts.Threads = 1;
    CampaignResult Serial =
        runSingleFaultCampaign(*L.Prog, recoveryConfig(), Opts);
    EXPECT_TRUE(Serial.Ok) << (Serial.Violations.empty()
                                   ? "?"
                                   : Serial.Violations.front());
    EXPECT_GT(Serial.Table.total(), 0u);
    // Under recovery every single fault is masked, recovered with a
    // bit-identical trace, or escalated to fail-stop; fail-stop detection
    // itself no longer terminates a run.
    EXPECT_EQ(Serial.Table.total(),
              Serial.Table[Verdict::Masked] +
                  Serial.Table[Verdict::Recovered] +
                  Serial.Table[Verdict::RecoveryEscalated]);
    EXPECT_GT(Serial.Table[Verdict::Recovered], 0u);
    EXPECT_GT(Serial.Recovery.Rollbacks, 0u);

    Opts.Threads = 8;
    expectSameTable(Serial, runSingleFaultCampaign(*L.Prog, recoveryConfig(),
                                                   Opts));
    Opts.Resume = ResumeMode::Replay;
    expectSameTable(Serial, runSingleFaultCampaign(*L.Prog, recoveryConfig(),
                                                   Opts));
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(L.Prog->code());
    Opts.Resume = ResumeMode::Snapshot;
    Opts.Engine = Vm.get();
    CampaignResult OnVm =
        runSingleFaultCampaign(*L.Prog, recoveryConfig(), Opts);
    expectSameTable(Serial, OnVm);
    EXPECT_STREQ(OnVm.Stats.Engine, "vm");
  }
}

TEST(RecoveryCampaignTest, CheckedCampaignAgreesWithRawSweep) {
  // runFaultToleranceCampaign (on the checked program) and
  // runSingleFaultCampaign (raw semantics) classify the same injections;
  // with recovery on, their tables must coincide too.
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::CountdownLoop));
  Expected<CheckedProgram> CP = checkProgram(L.TC, *L.Prog, L.Diags);
  ASSERT_TRUE(CP) << L.Diags.str();
  CampaignOptions Opts;
  Opts.Threads = 2;
  CampaignResult Checked =
      runFaultToleranceCampaign(L.TC, *CP, recoveryConfig(), Opts);
  CampaignResult Raw = runSingleFaultCampaign(*L.Prog, recoveryConfig(), Opts);
  EXPECT_TRUE(Checked.Ok);
  expectSameTable(Checked, Raw);
}

TEST(RecoveryCampaignTest, BudgetExhaustionDuringReplayEscalates) {
  // With zero extra budget, rollback replays push some continuations past
  // the shared step budget. Those must classify RecoveryEscalated with a
  // violation naming the rollback count — not plain BudgetExhausted.
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  TheoremConfig Config = recoveryConfig();
  Config.ExtraSteps = 0;
  CampaignOptions Opts;
  Opts.Threads = 2;
  CampaignResult R = runSingleFaultCampaign(*L.Prog, Config, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_GT(R.Table[Verdict::RecoveryEscalated], 0u);
  bool SawRollbackViolation = false;
  for (const std::string &V : R.Violations)
    SawRollbackViolation |= V.find("rollback replay") != std::string::npos;
  EXPECT_TRUE(SawRollbackViolation)
      << "no violation mentions the rollback count";
}

TEST(RecoveryCampaignTest, RecoveryStatsAppearInJson) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  CampaignResult R =
      runSingleFaultCampaign(*L.Prog, recoveryConfig(), CampaignOptions());
  std::string Json = campaignToJson(R);
  for (const char *Key : {"\"recovery\"", "\"rollbacks\"", "\"checkpoints\"",
                          "\"replayed_outputs\"", "\"recovered\"",
                          "\"recovery_escalated\""})
    EXPECT_NE(Json.find(Key), std::string::npos)
        << "missing " << Key << " in:\n" << Json;
}

TEST(RecoveryCampaignTest, TypedRecoveryIsAConfigError) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  Expected<CheckedProgram> CP = checkProgram(L.TC, *L.Prog, L.Diags);
  ASSERT_TRUE(CP) << L.Diags.str();
  TheoremConfig Config = recoveryConfig();
  Config.TypeCheckFaultyStates = true;
  CampaignResult R =
      runFaultToleranceCampaign(L.TC, *CP, Config, CampaignOptions());
  EXPECT_FALSE(R.Ok);
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_NE(R.Violations[0].find("cannot be combined"), std::string::npos);
  EXPECT_EQ(R.Table.total(), 0u);

  // The raw-semantics sweep rejects TypeCheckFaultyStates outright.
  TheoremConfig Typed;
  Typed.TypeCheckFaultyStates = true;
  CampaignResult Raw =
      runSingleFaultCampaign(*L.Prog, Typed, CampaignOptions());
  EXPECT_FALSE(Raw.Ok);
  ASSERT_EQ(Raw.Violations.size(), 1u);
  EXPECT_NE(Raw.Violations[0].find("re-typecheck"), std::string::npos);
}

} // namespace
