//===- tests/serve_test.cpp - Certification server and shard oracle -------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The serving layer's load-bearing contracts:
//
//   1. shard partition soundness: for any shard count, running every
//      shard and folding (fault/Campaign.h foldShardResult) reproduces
//      the unsharded campaign bit-identically — verdict table, violation
//      list, Ok flag and program hash — with and without pruning, on both
//      campaign entry points; an out-of-range shard index is a violation,
//      not silence;
//   2. the whole-program content hash is stable across recompiles of the
//      same source and sensitive to program edits, so it can anchor the
//      memo key;
//   3. the memo store answers resubmissions (hit), refuses to answer for
//      any changed campaign option (distinct digests → miss), resumes
//      partial folds, bounds its memory footprint by LRU eviction, and
//      round-trips entries through the on-disk cache losslessly;
//   4. the wire protocol round-trips campaign results (campaignToJson →
//      campaignFromJson) with every integer field exact;
//   5. end to end over loopback: a cold submission streams one event per
//      shard and serves a campaign bit-identical to a directly-run one; a
//      resubmission is a cache hit that streams zero shard events; a
//      drained server leaves a resumable partial entry that a restarted
//      server (same cache directory) finishes from where it stopped;
//   6. crash isolation: shards run on forked worker processes; a worker
//      crashing at the shard boundary (the chaos hook) is retried on a
//      fresh worker and the served table stays bit-identical; a
//      deterministic crasher poisons its one submission, not the server;
//      deadlines fail structured, not silent;
//   7. durability: the write-ahead submission log survives retires,
//      replays, torn tails and compaction; a server started on a log
//      with unretired accepts replays them to completion;
//   8. connection hygiene: oversized request lines get a structured
//      bad_request, pipelined submissions on one connection answer in
//      order, stats serve during an active sweep, and connections beyond
//      the queue cap shed with "overloaded" + retry_after_ms.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "fault/Campaign.h"
#include "isa/ProgramHash.h"
#include "serve/Client.h"
#include "serve/Json.h"
#include "serve/MemoStore.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/SubmitLog.h"
#include "support/Crc32.h"
#include "tal/Parser.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace talft;
using namespace talft::serve;

namespace {

struct NamedProgram {
  const char *Name;
  const char *Source;
};

const std::vector<NamedProgram> &allPrograms() {
  static const std::vector<NamedProgram> Programs = {
      {"PairedStore", progs::PairedStore},
      {"CseBroken", progs::CseBroken},
      {"CountdownLoop", progs::CountdownLoop},
      {"QueueForwarding", progs::QueueForwarding},
  };
  return Programs;
}

Program parseOrDie(TypeContext &TC, const NamedProgram &NP) {
  DiagnosticEngine Diags;
  Expected<Program> P = parseAndLayoutTalProgram(TC, NP.Source, Diags);
  EXPECT_TRUE(bool(P)) << NP.Name << ": " << Diags.str();
  return std::move(*P);
}

/// A fresh private directory for disk-cache tests.
std::string tempDir() {
  char Template[] = "/tmp/talft-serve-test-XXXXXX";
  const char *D = mkdtemp(Template);
  EXPECT_NE(D, nullptr);
  return D ? D : "";
}

void expectSameCampaign(const CampaignResult &A, const CampaignResult &B,
                        const std::string &At) {
  EXPECT_EQ(A.Ok, B.Ok) << At;
  EXPECT_EQ(A.Table, B.Table) << At;
  EXPECT_EQ(A.Violations, B.Violations) << At;
  EXPECT_EQ(A.ReferenceSteps, B.ReferenceSteps) << At;
  EXPECT_EQ(A.StatesTypechecked, B.StatesTypechecked) << At;
  EXPECT_EQ(A.ProgramHash, B.ProgramHash) << At;
}

// Contract 1: the deterministic shard partition folds back to the
// unsharded table exactly, for shard counts around and beyond the task
// count, with pruning on and off.
TEST(ShardFold, SingleFaultShardsFoldBitIdentically) {
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    TheoremConfig Config;
    Config.InjectionStride = 2; // keep the exhaustive sweep unit-sized
    for (bool Prune : {false, true}) {
      CampaignOptions Base;
      Base.Prune = Prune;
      CampaignResult Whole = runSingleFaultCampaign(P, Config, Base);
      EXPECT_NE(Whole.ProgramHash, 0u) << NP.Name;

      for (unsigned N : {1u, 4u, 16u}) {
        CampaignResult Acc;
        for (unsigned I = 0; I != N; ++I) {
          CampaignOptions Opts;
          Opts.Prune = Prune;
          Opts.ShardCount = N;
          Opts.ShardIndex = I;
          CampaignResult Shard = runSingleFaultCampaign(P, Config, Opts);
          EXPECT_EQ(Shard.Stats.ShardIndex, I);
          EXPECT_EQ(Shard.Stats.ShardCount, N);
          if (I == 0)
            Acc = std::move(Shard);
          else
            foldShardResult(Acc, Shard);
        }
        std::string At = std::string(NP.Name) + " prune=" +
                         (Prune ? "1" : "0") + " shards=" +
                         std::to_string(N);
        expectSameCampaign(Acc, Whole, At);
        // ShardsFolded counts fold operations: 0 marks an unfolded
        // single-shard result, N a genuine N-way fold.
        EXPECT_EQ(Acc.Stats.ShardsFolded, N == 1 ? 0u : N) << At;
        EXPECT_EQ(Acc.Stats.TotalTasks, Whole.Stats.TotalTasks) << At;
      }
    }
  }
}

// The typed-campaign entry point shards identically (it shares the
// enumeration and the slice).
TEST(ShardFold, FaultToleranceCampaignShardsFoldBitIdentically) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P =
      parseAndLayoutTalProgram(TC, progs::PairedStore, Diags);
  ASSERT_TRUE(bool(P)) << Diags.str();
  Expected<CheckedProgram> CP = checkProgram(TC, *P, Diags);
  ASSERT_TRUE(bool(CP)) << Diags.str();
  TheoremConfig Config;
  Config.InjectionStride = 2;

  CampaignOptions Base;
  CampaignResult Whole = runFaultToleranceCampaign(TC, *CP, Config, Base);
  for (unsigned N : {4u, 16u}) {
    CampaignResult Acc;
    for (unsigned I = 0; I != N; ++I) {
      CampaignOptions Opts;
      Opts.ShardCount = N;
      Opts.ShardIndex = I;
      CampaignResult Shard = runFaultToleranceCampaign(TC, *CP, Config, Opts);
      if (I == 0)
        Acc = std::move(Shard);
      else
        foldShardResult(Acc, Shard);
    }
    expectSameCampaign(Acc, Whole, "PairedStore typed shards=" +
                                       std::to_string(N));
  }
}

TEST(ShardFold, OutOfRangeShardIndexIsAViolation) {
  TypeContext TC;
  Program P = parseOrDie(TC, allPrograms()[0]);
  TheoremConfig Config;
  Config.InjectionStride = 2;
  CampaignOptions Opts;
  Opts.ShardCount = 4;
  Opts.ShardIndex = 4; // one past the end
  CampaignResult R = runSingleFaultCampaign(P, Config, Opts);
  EXPECT_FALSE(R.Ok);
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_NE(R.Violations[0].find("out of range"), std::string::npos);
  EXPECT_EQ(R.Stats.Tasks, 0u);
}

// Contract 2: the content hash is deterministic over recompiles and
// sensitive to the program actually changing.
TEST(ProgramHash, StableAcrossRecompilesSensitiveToEdits) {
  std::vector<uint64_t> Hashes;
  for (const NamedProgram &NP : allPrograms()) {
    uint64_t First = 0;
    for (int Round = 0; Round != 2; ++Round) {
      TypeContext TC;
      Program P = parseOrDie(TC, NP);
      Expected<MachineState> S0 = P.initialState();
      ASSERT_TRUE(bool(S0)) << NP.Name;
      uint64_t H = programContentHash(P.code(), P.entryAddress(),
                                      P.exitAddress(), *S0);
      EXPECT_NE(H, 0u) << NP.Name;
      if (Round == 0)
        First = H;
      else
        EXPECT_EQ(H, First) << NP.Name << ": hash not reproducible";
    }
    Hashes.push_back(First);
  }
  // Distinct programs hash apart.
  for (size_t I = 0; I != Hashes.size(); ++I)
    for (size_t J = I + 1; J != Hashes.size(); ++J)
      EXPECT_NE(Hashes[I], Hashes[J])
          << allPrograms()[I].Name << " vs " << allPrograms()[J].Name;
}

TEST(ProgramHash, StringFormRoundTrips) {
  uint64_t H = 0x0123456789abcdefull;
  std::string S = programHashString(H);
  EXPECT_EQ(S, "0x0123456789abcdef");
  uint64_t Back = 0;
  EXPECT_TRUE(parseProgramHash(S, Back));
  EXPECT_EQ(Back, H);
  // The prefix is optional on input; garbage is not.
  EXPECT_TRUE(parseProgramHash("123", Back));
  EXPECT_EQ(Back, 0x123u);
  EXPECT_FALSE(parseProgramHash("0x", Back));
  EXPECT_FALSE(parseProgramHash("", Back));
  EXPECT_FALSE(parseProgramHash("0xzz", Back));
  EXPECT_FALSE(parseProgramHash("-1", Back));
}

// The campaign records the same hash the serve layer computes for the
// memo key — they must agree or the cache could answer for the wrong
// program.
TEST(ProgramHash, CampaignRecordsTheMemoKeyHash) {
  TypeContext TC;
  Program P = parseOrDie(TC, allPrograms()[0]);
  TheoremConfig Config;
  Config.InjectionStride = 2;
  CampaignResult R = runSingleFaultCampaign(P, Config, CampaignOptions());
  Expected<MachineState> S0 = P.initialState();
  ASSERT_TRUE(bool(S0));
  EXPECT_EQ(R.ProgramHash, programContentHash(P.code(), P.entryAddress(),
                                              P.exitAddress(), *S0));
}

// Contract 4: JSON plumbing.
TEST(ServeJson, ParserHandlesTheProtocolSubset) {
  std::string Err;
  std::optional<JsonValue> V = JsonValue::parse(
      "{\"a\": 18446744073709551615, \"b\": [1, 2.5, true, null], "
      "\"s\": \"q\\\"\\u0041\\n\"}",
      &Err);
  ASSERT_TRUE(V.has_value()) << Err;
  EXPECT_EQ(V->u64At("a", 0), 18446744073709551615ull); // > 2^53: exact
  EXPECT_EQ(V->get("b")->items().size(), 4u);
  EXPECT_EQ(V->stringAt("s", ""), "q\"A\n");
  EXPECT_FALSE(JsonValue::parse("{\"a\": 1} trailing", &Err).has_value());
  EXPECT_FALSE(JsonValue::parse("{", &Err).has_value());
  EXPECT_FALSE(JsonValue::parse("", &Err).has_value());
}

TEST(ServeJson, CampaignRoundTripsThroughTheWireForm) {
  TypeContext TC;
  Program P = parseOrDie(TC, allPrograms()[1]); // CseBroken: has violations
  TheoremConfig Config;
  Config.InjectionStride = 2;
  CampaignResult R = runSingleFaultCampaign(P, Config, CampaignOptions());

  std::string Line = campaignJsonLine(R);
  EXPECT_EQ(Line.find('\n'), std::string::npos);
  std::string Err;
  std::optional<JsonValue> V = JsonValue::parse(Line, &Err);
  ASSERT_TRUE(V.has_value()) << Err;
  CampaignResult Back;
  ASSERT_TRUE(campaignFromJson(*V, Back, Err)) << Err;
  expectSameCampaign(Back, R, "wire roundtrip");
  EXPECT_EQ(Back.Stats.Tasks, R.Stats.Tasks);
  EXPECT_EQ(Back.Stats.EarlyExits, R.Stats.EarlyExits);
  EXPECT_EQ(Back.Stats.WindowSum, R.Stats.WindowSum);
  EXPECT_EQ(Back.Stats.LaneTasks, R.Stats.LaneTasks);
  EXPECT_EQ(Back.Stats.ShardCount, R.Stats.ShardCount);
  EXPECT_STREQ(Back.Stats.Engine, R.Stats.Engine);
}

// Contract 3 (key half): every campaign knob lands in the digest, so an
// entry can never answer for different options; shard/thread counts are
// verdict-neutral and deliberately excluded.
TEST(MemoStore, EveryOptionChangeChangesTheDigest) {
  SubmitSpec Base;
  Base.Source = "irrelevant";
  uint64_t D0 = optionsDigest(Base);

  std::vector<SubmitSpec> Variants(11, Base);
  Variants[0].Engine = "reference";
  Variants[1].Stride = 7;
  Variants[2].MaxSteps = 12345;
  Variants[3].ExtraSteps = 1;
  Variants[4].OnlyMentionedRegisters = false;
  Variants[5].Prune = true;
  Variants[6].Converge = false;
  Variants[7].Lanes = false;
  Variants[8].LaneWidth = 8;
  Variants[9].Recover = true;
  Variants[10].RetryBudget = 9;
  std::vector<uint64_t> Digests{D0};
  for (const SubmitSpec &S : Variants)
    Digests.push_back(optionsDigest(S));
  for (size_t I = 0; I != Digests.size(); ++I)
    for (size_t J = I + 1; J != Digests.size(); ++J)
      EXPECT_NE(Digests[I], Digests[J]) << I << " vs " << J;

  // Shard count is partitioning, not semantics: same digest.
  SubmitSpec Sharded = Base;
  Sharded.Shards = 16;
  EXPECT_EQ(optionsDigest(Sharded), D0);
}

TEST(MemoStore, HitsMissesAndInvalidation) {
  MemoStore Store(8);
  MemoEntry E;
  E.Key = {0x1111, 0x2222};
  E.ShardsTotal = 4;
  E.ShardsDone = 4;
  Store.store(E);

  EXPECT_TRUE(Store.lookup({0x1111, 0x2222}).has_value());
  // Program edit → different hash → miss.
  EXPECT_FALSE(Store.lookup({0x1112, 0x2222}).has_value());
  // Option change → different digest → miss.
  EXPECT_FALSE(Store.lookup({0x1111, 0x2223}).has_value());

  MemoStats S = Store.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Entries, 1u);

  // A partial entry is a partial hit, not a hit.
  MemoEntry Partial;
  Partial.Key = {0x3333, 0x4444};
  Partial.ShardsTotal = 4;
  Partial.ShardsDone = 2;
  Store.store(Partial);
  std::optional<MemoEntry> Got = Store.lookup(Partial.Key);
  ASSERT_TRUE(Got.has_value());
  EXPECT_FALSE(Got->complete());
  EXPECT_EQ(Store.stats().PartialHits, 1u);
}

TEST(MemoStore, EvictionBoundsTheEntryCount) {
  MemoStore Store(4);
  for (uint64_t I = 0; I != 10; ++I) {
    MemoEntry E;
    E.Key = {I, I};
    E.ShardsTotal = E.ShardsDone = 1;
    Store.store(E);
  }
  MemoStats S = Store.stats();
  EXPECT_EQ(S.Entries, 4u);
  EXPECT_EQ(S.Evictions, 6u);
  // LRU: the oldest keys are gone, the newest survive.
  EXPECT_FALSE(Store.lookup({0, 0}).has_value());
  EXPECT_TRUE(Store.lookup({9, 9}).has_value());
}

TEST(MemoStore, DiskPersistenceRoundTripsAndSurvivesRestart) {
  // A nested, not-yet-existing path: the store must mkdir -p its cache
  // dir so a fresh --cache-dir works without manual setup.
  std::string Dir = tempDir() + "/nested/cache";
  ASSERT_FALSE(Dir.empty());

  TypeContext TC;
  Program P = parseOrDie(TC, allPrograms()[0]);
  TheoremConfig Config;
  Config.InjectionStride = 2;
  CampaignResult R = runSingleFaultCampaign(P, Config, CampaignOptions());

  MemoKey Key{R.ProgramHash, 0xabcdef};
  {
    MemoStore Store(4, Dir);
    MemoEntry E;
    E.Key = Key;
    E.Name = "PairedStore";
    E.Certification = "typed";
    E.ShardsTotal = 4;
    E.ShardsDone = 2; // partial: the drain case
    E.Folded = R;
    Store.store(E);
    EXPECT_EQ(Store.stats().DiskStores, 1u);
  }
  // A brand-new store (fresh process, same cache dir) must answer from
  // disk with the partial fold intact.
  MemoStore Fresh(4, Dir);
  std::optional<MemoEntry> Got = Fresh.lookup(Key);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(Fresh.stats().DiskLoads, 1u);
  EXPECT_EQ(Got->Name, "PairedStore");
  EXPECT_EQ(Got->Certification, "typed");
  EXPECT_EQ(Got->ShardsTotal, 4u);
  EXPECT_EQ(Got->ShardsDone, 2u);
  EXPECT_FALSE(Got->complete());
  expectSameCampaign(Got->Folded, R, "disk roundtrip");

  // Eviction only trims memory; the file still answers.
  for (uint64_t I = 0; I != 8; ++I) {
    MemoEntry E;
    E.Key = {I, I};
    E.ShardsTotal = E.ShardsDone = 1;
    Fresh.store(E);
  }
  EXPECT_TRUE(Fresh.lookup(Key).has_value());
}

// Contract 5: the full loop over loopback.
TEST(ServeEndToEnd, ColdSubmitStreamsShardsAndMatchesDirectRun) {
  ServerOptions SO;
  SO.DefaultShards = 4;
  SO.Workers = 2;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;

  SubmitSpec Spec;
  Spec.Name = "PairedStore";
  Spec.Lang = "tal";
  Spec.Source = progs::PairedStore;
  Spec.Stride = 2; // explicit so the direct run below matches exactly
  Spec.Engine = "reference";

  SubmitOutcome Cold = submitProgram("127.0.0.1", S.port(), Spec);
  ASSERT_TRUE(Cold.Error.empty()) << Cold.Error;
  ASSERT_TRUE(Cold.GotResult);
  EXPECT_EQ(Cold.Cache, "miss");
  EXPECT_EQ(Cold.ShardEvents, 4u);
  EXPECT_EQ(Cold.ShardsDone, 4u);
  EXPECT_EQ(Cold.Certification, "typed");

  // The same campaign run directly, unsharded: bit-identical fold.
  TypeContext TC;
  Program P = parseOrDie(TC, allPrograms()[0]);
  CampaignOptions Direct;
  applySpecOptions(Spec, Direct);
  CampaignResult Whole =
      runSingleFaultCampaign(P, theoremConfig(Spec, Spec.Stride), Direct);
  expectSameCampaign(Cold.Campaign, Whole, "served vs direct");
  EXPECT_EQ(Cold.Campaign.Stats.ShardsFolded, 4u);

  // Resubmission: a hit that runs nothing.
  SubmitOutcome Warm = submitProgram("127.0.0.1", S.port(), Spec);
  ASSERT_TRUE(Warm.Error.empty()) << Warm.Error;
  ASSERT_TRUE(Warm.GotResult);
  EXPECT_EQ(Warm.Cache, "hit");
  EXPECT_EQ(Warm.ShardEvents, 0u);
  expectSameCampaign(Warm.Campaign, Whole, "warm vs direct");

  // Any option change misses (prune flips the digest).
  SubmitSpec Pruned = Spec;
  Pruned.Prune = true;
  SubmitOutcome M = submitProgram("127.0.0.1", S.port(), Pruned);
  ASSERT_TRUE(M.Error.empty()) << M.Error;
  EXPECT_EQ(M.Cache, "miss");

  // Stats: well-formed, counts what happened.
  std::string StatsLine, StatsErr;
  ASSERT_TRUE(requestStats("127.0.0.1", S.port(), StatsLine, StatsErr))
      << StatsErr;
  std::optional<JsonValue> Stats = JsonValue::parse(StatsLine, &StatsErr);
  ASSERT_TRUE(Stats.has_value()) << StatsErr;
  EXPECT_EQ(Stats->stringAt("schema", ""), StatsSchema);
  EXPECT_EQ(Stats->u64At("submits", 0), 3u);
  EXPECT_EQ(Stats->get("cache")->u64At("hits", 0), 1u);
  EXPECT_EQ(Stats->get("cache")->u64At("misses", 0), 2u);
  EXPECT_EQ(Stats->get("shards")->u64At("retired", 0), 8u);

  S.stop();
}

TEST(ServeEndToEnd, MalformedRequestsAreErrorsNotCrashes) {
  Server S((ServerOptions()));
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;

  SubmitSpec Bad;
  Bad.Lang = "tal";
  Bad.Source = "block main { this does not parse }";
  SubmitOutcome O = submitProgram("127.0.0.1", S.port(), Bad);
  EXPECT_FALSE(O.Error.empty());
  EXPECT_EQ(O.ErrorCode, "compile_error");
  EXPECT_FALSE(O.GotResult);

  S.stop();
}

// Drain + resume across a server restart: the partial fold persists
// through the shared cache directory, and the resumed total equals an
// uninterrupted run.
TEST(ServeEndToEnd, DrainLeavesAResumablePartialEntry) {
  std::string Dir = tempDir();
  ASSERT_FALSE(Dir.empty());

  SubmitSpec Spec;
  Spec.Name = "CountdownLoop";
  Spec.Lang = "tal";
  Spec.Source = progs::CountdownLoop;
  Spec.Stride = 2;
  Spec.Engine = "reference";
  Spec.Shards = 4;

  SubmitOutcome First;
  {
    ServerOptions SO;
    SO.CacheDir = Dir;
    SO.DrainAfterShards = 2; // deterministic mid-campaign drain
    Server S(SO);
    std::string Err;
    ASSERT_TRUE(S.start(&Err)) << Err;
    First = submitProgram("127.0.0.1", S.port(), Spec);
    S.wait(); // the drain hook already stopped it
  }
  ASSERT_TRUE(First.Error.empty()) << First.Error;
  EXPECT_TRUE(First.Drained);
  EXPECT_FALSE(First.GotResult);
  EXPECT_EQ(First.ShardsDone, 2u);
  EXPECT_EQ(First.ShardsTotal, 4u);

  // Restart on the same cache dir; the resubmission resumes shards 2..3.
  ServerOptions SO2;
  SO2.CacheDir = Dir;
  Server S2(SO2);
  std::string Err;
  ASSERT_TRUE(S2.start(&Err)) << Err;
  SubmitOutcome Second = submitProgram("127.0.0.1", S2.port(), Spec);
  ASSERT_TRUE(Second.Error.empty()) << Second.Error;
  ASSERT_TRUE(Second.GotResult);
  EXPECT_EQ(Second.Cache, "partial");
  EXPECT_EQ(Second.ShardEvents, 2u); // only the remaining shards ran
  S2.stop();

  // The resumed fold equals an uninterrupted direct run.
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P =
      parseAndLayoutTalProgram(TC, progs::CountdownLoop, Diags);
  ASSERT_TRUE(bool(P)) << Diags.str();
  CampaignOptions Direct;
  applySpecOptions(Spec, Direct);
  CampaignResult Whole =
      runSingleFaultCampaign(*P, theoremConfig(Spec, Spec.Stride), Direct);
  expectSameCampaign(Second.Campaign, Whole, "resumed vs direct");
}

// --- Contract 6: crash-isolated worker pool ------------------------------

// The chaos hook kills every second dispatched worker at the shard
// boundary — after the shard's work is done but before any result byte
// leaves the process. Every crashed shard must be retried on a fresh
// worker and the folded table must not differ by a bit.
TEST(WorkerPoolE2E, CrashedShardsAreRetriedBitIdentically) {
  ServerOptions SO;
  SO.DefaultShards = 4;
  SO.ChaosCrashEveryN = 2;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;

  SubmitSpec Spec;
  Spec.Name = "PairedStore";
  Spec.Lang = "tal";
  Spec.Source = progs::PairedStore;
  Spec.Stride = 2;
  Spec.Engine = "reference";

  SubmitOutcome O = submitProgram("127.0.0.1", S.port(), Spec);
  ASSERT_TRUE(O.Error.empty()) << O.Error;
  ASSERT_TRUE(O.GotResult);
  EXPECT_EQ(O.ShardEvents, 4u);
  // At least one shard needed a second attempt, and the client saw it.
  EXPECT_GE(O.MaxShardAttempts, 2u);

  WorkerPoolStats P = S.poolStats();
  EXPECT_GT(P.Crashes, 0u);
  EXPECT_EQ(P.Retries, P.Crashes); // every crash was retried, none leaked
  EXPECT_GT(P.ChaosInjected, 0u);
  EXPECT_EQ(P.Poisoned, 0u);
  EXPECT_EQ(P.Alive, SO.PoolWorkers); // dead workers were respawned

  TypeContext TC;
  Program Prog = parseOrDie(TC, allPrograms()[0]);
  CampaignOptions Direct;
  applySpecOptions(Spec, Direct);
  CampaignResult Whole =
      runSingleFaultCampaign(Prog, theoremConfig(Spec, Spec.Stride), Direct);
  expectSameCampaign(O.Campaign, Whole, "chaos-retried vs direct");
  S.stop();
}

// A shard that crashes on *every* attempt is a deterministic crasher:
// after MaxShardAttempts the submission fails with a structured
// "shard_poisoned" error, the pool has respawned its workers, and the
// server keeps answering.
TEST(WorkerPoolE2E, DeterministicCrasherPoisonsTheShardNotTheServer) {
  ServerOptions SO;
  SO.DefaultShards = 2;
  SO.ChaosCrashEveryN = 1; // every dispatch crashes
  SO.MaxShardAttempts = 2;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;

  SubmitSpec Spec;
  Spec.Name = "PairedStore";
  Spec.Lang = "tal";
  Spec.Source = progs::PairedStore;
  Spec.Stride = 2;
  Spec.Engine = "reference";

  SubmitOutcome O = submitProgram("127.0.0.1", S.port(), Spec);
  EXPECT_FALSE(O.GotResult);
  EXPECT_EQ(O.ErrorCode, "shard_poisoned");
  EXPECT_EQ(O.MaxShardAttempts, 2u);

  WorkerPoolStats P = S.poolStats();
  EXPECT_EQ(P.Poisoned, 1u);
  EXPECT_EQ(P.Alive, SO.PoolWorkers);

  // The server is fail-operational: it still answers after the poisoning.
  std::string Pong, PingErr;
  EXPECT_TRUE(requestPing("127.0.0.1", S.port(), Pong, PingErr)) << PingErr;
  S.stop();
}

// A submission deadline bounds the whole shard pipeline — including the
// retries a crashing worker burns — and fails structured.
TEST(WorkerPoolE2E, DeadlineExceededIsStructuredNotSilent) {
  ServerOptions SO;
  SO.DefaultShards = 2;
  SO.ChaosCrashEveryN = 1;  // every attempt crashes…
  SO.MaxShardAttempts = 100; // …and attempts alone never give up,
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;

  SubmitSpec Spec;
  Spec.Name = "PairedStore";
  Spec.Lang = "tal";
  Spec.Source = progs::PairedStore;
  Spec.Stride = 2;
  Spec.Engine = "reference";
  Spec.DeadlineMs = 50; // …so only the deadline can end it.

  SubmitOutcome O = submitProgram("127.0.0.1", S.port(), Spec);
  EXPECT_FALSE(O.GotResult);
  EXPECT_EQ(O.ErrorCode, "deadline_exceeded");

  std::optional<JsonValue> Stats = JsonValue::parse(S.statsJson());
  ASSERT_TRUE(Stats.has_value());
  EXPECT_GE(Stats->u64At("deadline_exceeded", 0), 1u);
  S.stop();
}

// --- Contract 7: the write-ahead submission log --------------------------

TEST(Crc32, MatchesTheIsoHdlcCheckValue) {
  // The canonical CRC-32 check value ("123456789" → 0xCBF43926) pins the
  // polynomial and bit order; the split computation pins the seeding
  // contract used for incremental framing.
  EXPECT_EQ(support::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(support::crc32(""), 0u);
  uint32_t Split = support::crc32("6789", support::crc32("12345"));
  EXPECT_EQ(Split, 0xCBF43926u);
}

TEST(SubmitLog, AcceptRetireTornTailAndCompaction) {
  std::string Dir = tempDir();
  ASSERT_FALSE(Dir.empty());
  std::string Path = Dir + "/submit.wal";

  SubmitSpec Spec;
  Spec.Name = "CountdownLoop";
  Spec.Lang = "tal";
  Spec.Source = progs::CountdownLoop;
  Spec.Stride = 2;
  Spec.Shards = 4;

  uint64_t IdA = 0, IdB = 0;
  {
    SubmitLog L;
    std::string Err;
    ASSERT_TRUE(L.open(Path, &Err)) << Err;
    EXPECT_TRUE(L.pending().empty());
    IdA = L.appendAccept("a", 0x11, 0x22, 4, submitRequestJson(Spec));
    IdB = L.appendAccept("b", 0x33, 0x44, 2, submitRequestJson(Spec));
    ASSERT_NE(IdA, 0u);
    ASSERT_NE(IdB, 0u);
    EXPECT_NE(IdA, IdB);
    L.appendRetire(IdA, "served");
    EXPECT_EQ(L.stats().Appends, 2u);
    EXPECT_EQ(L.stats().Retires, 1u);
  }

  // Reopen: only the unretired accept survives, with its spec parsed
  // back out of the logged request.
  {
    SubmitLog L;
    std::string Err;
    ASSERT_TRUE(L.open(Path, &Err)) << Err;
    ASSERT_EQ(L.pending().size(), 1u);
    const PendingSubmission &P = L.pending()[0];
    EXPECT_EQ(P.Id, IdB);
    EXPECT_EQ(P.Name, "b");
    EXPECT_EQ(P.ProgramHash, 0x33u);
    EXPECT_EQ(P.ShardsTotal, 2u);
    EXPECT_EQ(P.Spec.Source, Spec.Source);
    EXPECT_EQ(P.Spec.Stride, 2u);
    EXPECT_EQ(L.stats().Recovered, 1u);
    // New ids never reuse recovered ones.
    uint64_t IdC = L.appendAccept("c", 0x55, 0x66, 1, submitRequestJson(Spec));
    EXPECT_GT(IdC, IdB);
    L.appendRetire(IdC, "served");
  }

  // A torn tail — a frame cut mid-write by a crash — is discarded; the
  // whole records before it survive.
  {
    std::ofstream Out(Path, std::ios::app | std::ios::binary);
    Out << std::string("\xff\xff\xff\xff torn", 9);
  }
  {
    SubmitLog L;
    std::string Err;
    ASSERT_TRUE(L.open(Path, &Err)) << Err;
    EXPECT_EQ(L.pending().size(), 1u);
    EXPECT_EQ(L.pending()[0].Id, IdB);
    EXPECT_GT(L.stats().TornBytes, 0u);
  }
}

// A server started on a WAL holding an unretired accept replays it to
// completion: the memo fills without any client, the record retires, and
// a later submission of the same program is a pure cache hit.
TEST(WalE2E, ServerReplaysUnretiredSubmissionsOnStartup) {
  std::string Dir = tempDir();
  ASSERT_FALSE(Dir.empty());
  std::string Path = Dir + "/submit.wal";

  SubmitSpec Spec;
  Spec.Name = "PairedStore";
  Spec.Lang = "tal";
  Spec.Source = progs::PairedStore;
  Spec.Stride = 2;
  Spec.Engine = "reference";
  Spec.Shards = 2;

  // Simulate the crash: an accept hits the log and the server dies
  // before any shard retires.
  {
    SubmitLog L;
    std::string Err;
    ASSERT_TRUE(L.open(Path, &Err)) << Err;
    ASSERT_NE(L.appendAccept(Spec.Name, 0, 0, 2, submitRequestJson(Spec)),
              0u);
  }

  ServerOptions SO;
  SO.WalPath = Path;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;
  EXPECT_EQ(S.walStats().Recovered, 1u);

  // The replayer runs in the background; wait for it to finish.
  bool Replayed = false;
  for (int I = 0; I != 200 && !Replayed; ++I) {
    std::optional<JsonValue> Stats = JsonValue::parse(S.statsJson());
    ASSERT_TRUE(Stats.has_value());
    Replayed = Stats->u64At("replayed", 0) == 1;
    if (!Replayed)
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ASSERT_TRUE(Replayed) << "WAL replay did not complete";

  // The replayed campaign is already folded: a client submission of the
  // same program runs zero shards.
  SubmitOutcome O = submitProgram("127.0.0.1", S.port(), Spec);
  ASSERT_TRUE(O.Error.empty()) << O.Error;
  ASSERT_TRUE(O.GotResult);
  EXPECT_EQ(O.Cache, "hit");
  EXPECT_EQ(O.ShardEvents, 0u);

  TypeContext TC;
  Program Prog = parseOrDie(TC, allPrograms()[0]);
  CampaignOptions Direct;
  applySpecOptions(Spec, Direct);
  CampaignResult Whole =
      runSingleFaultCampaign(Prog, theoremConfig(Spec, Spec.Stride), Direct);
  expectSameCampaign(O.Campaign, Whole, "replayed vs direct");
  S.stop();

  // The replay retired its record: a restarted log recovers nothing.
  SubmitLog L;
  std::string LErr;
  ASSERT_TRUE(L.open(Path, &LErr)) << LErr;
  EXPECT_TRUE(L.pending().empty());
}

// --- Contract 8: connection hygiene --------------------------------------

int connectRaw(unsigned Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons((uint16_t)Port);
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  EXPECT_EQ(::connect(Fd, (sockaddr *)&Addr, sizeof(Addr)), 0);
  return Fd;
}

bool sendRaw(int Fd, const std::string &S) {
  const char *P = S.data();
  size_t Len = S.size();
  while (Len) {
    ssize_t N = ::send(Fd, P, Len, MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    P += N;
    Len -= (size_t)N;
  }
  return true;
}

/// Reads lines until \p Want terminal events ("result"/"drained"/"error")
/// arrived or the peer closed. Returns every parsed event object.
std::vector<JsonValue> readEvents(int Fd, unsigned Want) {
  std::vector<JsonValue> Events;
  std::string Buf;
  unsigned Terminals = 0;
  char Chunk[4096];
  while (Terminals < Want) {
    size_t NL;
    while (Terminals < Want && (NL = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      if (Line.empty())
        continue;
      std::optional<JsonValue> Ev = JsonValue::parse(Line);
      if (!Ev || !Ev->isObject())
        continue;
      std::string Kind = Ev->stringAt("event", "");
      if (Kind == "result" || Kind == "drained" || Kind == "error")
        ++Terminals;
      Events.push_back(std::move(*Ev));
    }
    if (Terminals >= Want)
      break;
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0)
      break;
    Buf.append(Chunk, (size_t)N);
  }
  return Events;
}

// A request line exceeding the cap is refused with a structured
// bad_request naming the limit — never a silent close the client has to
// diagnose from a reset.
TEST(ConnectionHygiene, OversizedLineGetsAStructuredBadRequest) {
  ServerOptions SO;
  SO.MaxLineBytes = 1024;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;

  int Fd = connectRaw(S.port());
  ASSERT_TRUE(sendRaw(Fd, std::string(4096, 'x'))); // no newline, ever
  std::vector<JsonValue> Events = readEvents(Fd, 1);
  ::close(Fd);
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].stringAt("event", ""), "error");
  EXPECT_EQ(Events[0].stringAt("code", ""), "bad_request");
  EXPECT_NE(Events[0].stringAt("error", "").find("1024"), std::string::npos);

  std::optional<JsonValue> Stats = JsonValue::parse(S.statsJson());
  ASSERT_TRUE(Stats.has_value());
  EXPECT_EQ(Stats->u64At("oversized_lines", 0), 1u);
  S.stop();
}

// Two submissions pipelined down one connection answer strictly in
// order, each with its own accepted→shards→result stream.
TEST(ConnectionHygiene, PipelinedSubmissionsAnswerInOrder) {
  ServerOptions SO;
  SO.DefaultShards = 2;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;

  SubmitSpec A;
  A.Name = "PairedStore";
  A.Lang = "tal";
  A.Source = progs::PairedStore;
  A.Stride = 2;
  A.Engine = "reference";
  SubmitSpec B = A;
  B.Name = "CountdownLoop";
  B.Source = progs::CountdownLoop;

  int Fd = connectRaw(S.port());
  ASSERT_TRUE(
      sendRaw(Fd, submitRequestJson(A) + "\n" + submitRequestJson(B) + "\n"));
  std::vector<JsonValue> Events = readEvents(Fd, 2);
  ::close(Fd);

  std::vector<std::string> ResultNames;
  unsigned Accepted = 0;
  for (const JsonValue &Ev : Events) {
    if (Ev.stringAt("event", "") == "accepted")
      ++Accepted;
    if (Ev.stringAt("event", "") == "result")
      ResultNames.push_back(Ev.stringAt("name", ""));
  }
  EXPECT_EQ(Accepted, 2u);
  ASSERT_EQ(ResultNames.size(), 2u);
  EXPECT_EQ(ResultNames[0], "PairedStore");
  EXPECT_EQ(ResultNames[1], "CountdownLoop");
  S.stop();
}

// GET /stats (and the stats cmd) answer while a sweep is in flight on
// another connection — introspection is never blocked behind work.
TEST(ConnectionHygiene, StatsServeDuringAnActiveSweep) {
  ServerOptions SO;
  SO.DefaultShards = 8;
  SO.Workers = 2; // one handler free while the other sweeps
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;

  SubmitSpec Spec;
  Spec.Name = "QueueForwarding";
  Spec.Lang = "tal";
  Spec.Source = progs::QueueForwarding;
  Spec.Stride = 1;
  Spec.Engine = "reference";

  SubmitOutcome O;
  std::thread Submitter(
      [&] { O = submitProgram("127.0.0.1", S.port(), Spec); });
  for (int I = 0; I != 10; ++I) {
    std::string Line, StatsErr;
    ASSERT_TRUE(requestStats("127.0.0.1", S.port(), Line, StatsErr))
        << StatsErr;
    std::optional<JsonValue> Stats = JsonValue::parse(Line, &StatsErr);
    ASSERT_TRUE(Stats.has_value()) << StatsErr;
    EXPECT_EQ(Stats->stringAt("schema", ""), StatsSchema);
  }
  Submitter.join();
  ASSERT_TRUE(O.Error.empty()) << O.Error;
  EXPECT_TRUE(O.GotResult);
  S.stop();
}

// Connections beyond the admission queue are shed with a retry hint, not
// left to time out against a full backlog.
TEST(ConnectionHygiene, OverloadSheddingCarriesARetryHint) {
  ServerOptions SO;
  SO.QueueCap = 0; // everything is backpressure
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;

  SubmitSpec Spec;
  Spec.Name = "PairedStore";
  Spec.Lang = "tal";
  Spec.Source = progs::PairedStore;
  SubmitOutcome O = submitProgram("127.0.0.1", S.port(), Spec);
  EXPECT_FALSE(O.GotResult);
  EXPECT_EQ(O.ErrorCode, "overloaded");
  EXPECT_GE(O.RetryAfterMs, 200u);

  std::optional<JsonValue> Stats = JsonValue::parse(S.statsJson());
  ASSERT_TRUE(Stats.has_value());
  EXPECT_GE(Stats->u64At("overloaded", 0), 1u);
  S.stop();
}

} // namespace
