//===- tests/tal_printer_test.cpp - Printer round-trip tests --------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "check/ProgramChecker.h"
#include "tal/Parser.h"
#include "sim/Machine.h"
#include "tal/Printer.h"
#include "wile/Codegen.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

class RoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(RoundTrip, PrintedProgramReparsesAndChecksIdentically) {
  TypeContext TC1;
  DiagnosticEngine D1;
  Expected<Program> P1 = parseAndLayoutTalProgram(TC1, GetParam(), D1);
  ASSERT_TRUE(P1) << P1.message();
  std::string Printed = printTalProgram(*P1);

  TypeContext TC2;
  DiagnosticEngine D2;
  Expected<Program> P2 = parseAndLayoutTalProgram(TC2, Printed, D2);
  ASSERT_TRUE(P2) << "printed program failed to reparse: " << P2.message()
                  << "\n"
                  << Printed;

  // Structure survives the round trip.
  ASSERT_EQ(P1->blocks().size(), P2->blocks().size());
  for (size_t I = 0; I != P1->blocks().size(); ++I) {
    EXPECT_EQ(P1->blocks()[I].Label, P2->blocks()[I].Label);
    ASSERT_EQ(P1->blocks()[I].Insts.size(), P2->blocks()[I].Insts.size());
    for (size_t J = 0; J != P1->blocks()[I].Insts.size(); ++J)
      EXPECT_EQ(P1->blocks()[I].Insts[J].I, P2->blocks()[I].Insts[J].I)
          << P1->blocks()[I].Label << " instruction " << J;
  }
  EXPECT_EQ(P1->data().size(), P2->data().size());

  // And type-checkability survives too.
  DiagnosticEngine DC1, DC2;
  bool C1 = bool(checkProgram(TC1, *P1, DC1));
  bool C2 = bool(checkProgram(TC2, *P2, DC2));
  EXPECT_EQ(C1, C2) << DC2.str();
}

INSTANTIATE_TEST_SUITE_P(Programs, RoundTrip,
                         ::testing::Values(progs::PairedStore,
                                           progs::IndirectJump,
                                           progs::CountdownLoop,
                                           progs::QueueForwarding,
                                           progs::PendingStoreAcrossJump));

TEST(PrinterTest, CompiledProgramsRoundTripWithAnnotations) {
  // Machine-generated programs carry quantified singleton annotations
  // (v$x variables, pc$/m$ defaults); printing and reparsing must
  // preserve type-checkability.
  const char *Src = R"(
var n = 4; var acc = 0;
while (n != 0) { acc = acc + n; n = n - 1; }
output(acc);
)";
  TypeContext TC1;
  DiagnosticEngine Diags;
  Expected<wile::CompiledProgram> CP = wile::compileWile(
      TC1, Src, wile::CodegenMode::FaultTolerant, Diags);
  ASSERT_TRUE(CP) << CP.message();
  ASSERT_TRUE(checkProgram(TC1, CP->Prog, Diags)) << Diags.str();

  std::string Printed = printTalProgram(CP->Prog);
  TypeContext TC2;
  DiagnosticEngine D2;
  Expected<Program> Reparsed = parseAndLayoutTalProgram(TC2, Printed, D2);
  ASSERT_TRUE(Reparsed) << Reparsed.message() << "\n" << Printed;
  Expected<CheckedProgram> Rechecked = checkProgram(TC2, *Reparsed, D2);
  EXPECT_TRUE(Rechecked) << D2.str() << "\n" << Printed;

  // And it still computes the same thing.
  Expected<MachineState> S = Reparsed->initialState();
  ASSERT_TRUE(S) << S.message();
  RunResult R = run(*S, Reparsed->exitAddress(), 100000);
  EXPECT_EQ(R.Status, RunStatus::Halted);
  bool Found10 = false;
  for (const QueueEntry &E : R.Trace)
    Found10 |= E.Val == 10;
  EXPECT_TRUE(Found10);
}

TEST(PrinterTest, BasicTypeRendering) {
  TypeContext TC;
  StaticContext *Pre = TC.createContext();
  Pre->Label = "l";
  EXPECT_EQ(printBasicType(TC.intType()), "int");
  EXPECT_EQ(printBasicType(TC.refType(TC.intType())), "int ref");
  EXPECT_EQ(printBasicType(TC.codeType(Pre)), "code(@l)");
  EXPECT_EQ(printBasicType(TC.refType(TC.codeType(Pre))), "code(@l) ref");
}

TEST(PrinterTest, RegTypeRendering) {
  TypeContext TC;
  ExprContext &Es = TC.exprs();
  RegType Plain(Color::Green, TC.intType(), Es.intConst(5));
  EXPECT_EQ(printRegType(Plain), "(G, int, 5)");
  RegType Cond = RegType::conditional(Es.var("z", ExprKind::Int),
                                      Color::Blue, TC.intType(),
                                      Es.intConst(0));
  EXPECT_EQ(printRegType(Cond), "z = 0 => (B, int, 0)");
}

} // namespace
