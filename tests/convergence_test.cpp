//===- tests/convergence_test.cpp - Convergence acceleration oracle -------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The convergence-acceleration machinery (incremental fingerprints, the
// runContinuation probe, and the campaign's differential replay) is only
// allowed to change wall-clock time, never a verdict. This suite pins the
// three load-bearing contracts:
//
//   1. the incrementally-maintained fingerprint agrees with a from-scratch
//      recomputation after any step sequence, on both engines, including
//      across injected faults;
//   2. a fingerprint match is only a gate — a forced collision (match with
//      the full-equality confirmation refusing) must leave the run's
//      status, outputs and final state untouched;
//   3. whole campaigns fold bit-identically with and without acceleration,
//      across engines, thread counts, resume modes and pruning.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "fault/Campaign.h"
#include "sim/ExecEngine.h"
#include "tal/Parser.h"
#include "vm/Engine.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

using namespace talft;

namespace {

struct NamedProgram {
  const char *Name;
  const char *Source;
  /// False for programs the checker rejects (they still run raw).
  bool WellTyped;
};

const std::vector<NamedProgram> &allPrograms() {
  static const std::vector<NamedProgram> Programs = {
      {"PairedStore", progs::PairedStore, true},
      {"CseBroken", progs::CseBroken, false},
      {"IndirectJump", progs::IndirectJump, true},
      {"CountdownLoop", progs::CountdownLoop, true},
      {"QueueForwarding", progs::QueueForwarding, true},
      {"PendingStoreAcrossJump", progs::PendingStoreAcrossJump, true},
  };
  return Programs;
}

Program parseOrDie(TypeContext &TC, const NamedProgram &NP) {
  DiagnosticEngine Diags;
  Expected<Program> P = parseAndLayoutTalProgram(TC, NP.Source, Diags);
  EXPECT_TRUE(bool(P)) << NP.Name << ": " << Diags.str();
  return std::move(*P);
}

/// The reference run unrolled: state and fingerprint after every step
/// (index k = after k transitions), up to and including the halt state.
struct UnrolledRun {
  std::vector<MachineState> States;
  std::vector<uint64_t> Timeline;
  uint64_t Steps = 0;
  OutputTrace Trace;
};

UnrolledRun unroll(const Program &P, const StepPolicy &Policy) {
  UnrolledRun U;
  MachineState Probe = *P.initialState();
  RunResult RR =
      referenceEngine().run(Probe, P.exitAddress(), 100000, Policy);
  EXPECT_EQ(RR.Status, RunStatus::Halted);
  U.Steps = RR.Steps;
  U.Trace = RR.Trace;
  MachineState S = *P.initialState();
  U.States.push_back(S);
  U.Timeline.push_back(S.fingerprint());
  for (uint64_t I = 0; I != RR.Steps; ++I) {
    StepResult SR = referenceEngine().step(S, Policy);
    EXPECT_EQ(SR.Status, StepStatus::Ok);
    U.States.push_back(S);
    U.Timeline.push_back(S.fingerprint());
  }
  return U;
}

// Contract 1: the O(1) incremental fingerprint must equal the O(|state|)
// recomputation after every transition — fault-free, across random fault
// injections (register, pc and queue sites), and on both engines.
TEST(Fingerprint, IncrementalMatchesRecomputeUnderRandomFaults) {
  std::mt19937 Rng(20070611);
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());
    std::vector<int64_t> Values = representativeCorruptions(P);
    for (const ExecEngine *E :
         {&referenceEngine(), (const ExecEngine *)Vm.get()}) {
      for (int Trial = 0; Trial != 8; ++Trial) {
        MachineState S = *P.initialState();
        for (int I = 0; I != 200; ++I) {
          ASSERT_EQ(recomputeFingerprint(S), S.fingerprint())
              << NP.Name << " " << E->name() << " trial " << Trial
              << " step " << I;
          if (Trial != 0 && I % 29 == 7) {
            std::vector<FaultSite> Sites = enumerateFaultSites(S);
            ASSERT_FALSE(Sites.empty());
            const FaultSite &Site = Sites[std::uniform_int_distribution<
                size_t>(0, Sites.size() - 1)(Rng)];
            injectFault(S, Site,
                        Values[std::uniform_int_distribution<size_t>(
                            0, Values.size() - 1)(Rng)]);
            ASSERT_EQ(recomputeFingerprint(S), S.fingerprint())
                << NP.Name << " " << E->name() << " after injection at "
                << I;
          }
          if (E->step(S, StepPolicy()).Status != StepStatus::Ok)
            break;
        }
        ASSERT_EQ(recomputeFingerprint(S), S.fingerprint())
            << NP.Name << " " << E->name() << " final";
      }
    }
  }
}

// Contract 2a: a forced collision — every probed boundary's fingerprint
// matches, but the full-equality confirmation refuses — must never turn
// into Converged. The run completes exactly as if the probe were absent.
TEST(ConvergenceProbe, ForcedCollisionNeverConverges) {
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());
    UnrolledRun U = unroll(P, StepPolicy());
    for (const ExecEngine *E :
         {&referenceEngine(), (const ExecEngine *)Vm.get()}) {
      ExecEngine::ConvergenceProbe Probe;
      Probe.Timeline = U.Timeline.data();
      Probe.Size = U.Timeline.size();
      Probe.StartStep = 0;
      Probe.Mask = 0;
      uint64_t VerifyCalls = 0;
      Probe.Verify = [&](const MachineState &, uint64_t) {
        ++VerifyCalls;
        return false; // simulate "fingerprint collided, states differ"
      };
      MachineState S = *P.initialState();
      OutputTrace Outs;
      RunStatus St = E->runContinuation(
          S, P.exitAddress(), U.Steps + 8, StepPolicy(),
          [&](const QueueEntry &Q) { Outs.push_back(Q); }, &Probe);
      std::string At = std::string(NP.Name) + " " + E->name();
      EXPECT_EQ(St, RunStatus::Halted) << At;
      // The gate genuinely fired (the fingerprints did match)...
      EXPECT_GT(VerifyCalls, 0u) << At;
      // ...yet the run is indistinguishable from a probe-less one.
      EXPECT_EQ(Outs, U.Trace) << At;
      EXPECT_EQ(S, U.States.back()) << At;
    }
  }
}

// Contract 2b: with the genuine full-equality confirmation, the run
// converges at the first probed boundary whose state truly matches —
// poisoning the earlier timeline entries delays convergence to exactly
// the first clean boundary, and the engine leaves the state there.
TEST(ConvergenceProbe, ConvergesAtFirstMatchingBoundary) {
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());
    UnrolledRun U = unroll(P, StepPolicy());
    if (U.Steps < 6)
      continue;
    // Poison every boundary before M (M even = a fetch boundary).
    uint64_t M = (U.Steps / 2) & ~uint64_t(1);
    std::vector<uint64_t> Poisoned = U.Timeline;
    for (uint64_t I = 0; I != M; ++I)
      Poisoned[I] ^= 0xbad0bad0bad0bad0ull;
    for (const ExecEngine *E :
         {&referenceEngine(), (const ExecEngine *)Vm.get()}) {
      ExecEngine::ConvergenceProbe Probe;
      Probe.Timeline = Poisoned.data();
      Probe.Size = Poisoned.size();
      Probe.StartStep = 0;
      Probe.Mask = 0;
      Probe.Verify = [&](const MachineState &S, uint64_t Idx) {
        return Idx < U.States.size() && S == U.States[Idx];
      };
      MachineState S = *P.initialState();
      RunStatus St = E->runContinuation(
          S, P.exitAddress(), U.Steps + 8, StepPolicy(),
          [](const QueueEntry &) {}, &Probe);
      std::string At = std::string(NP.Name) + " " + E->name();
      EXPECT_EQ(St, RunStatus::Converged) << At;
      EXPECT_EQ(S, U.States[M]) << At;
    }
  }
}

// Contract 3: accelerated campaigns fold bit-identically to unaccelerated
// ones — same verdict table, violations, reference run and Ok — across
// engines, thread counts and resume modes (runSingleFaultCampaign covers
// raw-semantics programs including the ill-typed one).
TEST(ConvergenceFold, SingleFaultCampaignsBitIdentical) {
  uint64_t TotalDischarged = 0;
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());
    TheoremConfig Config;
    Config.InjectionStride = 2; // keep the exhaustive sweep unit-sized

    CampaignOptions Base;
    Base.Converge = false;
    CampaignResult Baseline = runSingleFaultCampaign(P, Config, Base);
    EXPECT_FALSE(Baseline.Stats.Converge) << NP.Name;

    struct Combo {
      const ExecEngine *E;
      unsigned Threads;
      ResumeMode Resume;
    };
    const Combo Combos[] = {
        {nullptr, 1, ResumeMode::Snapshot},
        {nullptr, 8, ResumeMode::Replay},
        {Vm.get(), 1, ResumeMode::Replay},
        {Vm.get(), 8, ResumeMode::Snapshot},
    };
    for (const Combo &C : Combos) {
      CampaignOptions Opts;
      Opts.Converge = true;
      Opts.Engine = C.E;
      Opts.Threads = C.Threads;
      Opts.Resume = C.Resume;
      CampaignResult R = runSingleFaultCampaign(P, Config, Opts);
      std::string At = std::string(NP.Name) + " engine=" +
                       R.Stats.Engine + " threads=" +
                       std::to_string(C.Threads);
      EXPECT_EQ(R.Ok, Baseline.Ok) << At;
      EXPECT_EQ(R.ReferenceSteps, Baseline.ReferenceSteps) << At;
      EXPECT_EQ(R.ReferenceTrace, Baseline.ReferenceTrace) << At;
      EXPECT_EQ(R.Table, Baseline.Table) << At;
      EXPECT_EQ(R.Violations, Baseline.Violations) << At;
      EXPECT_TRUE(R.Stats.Converge) << At;
      TotalDischarged += R.Stats.EarlyExits + R.Stats.LockstepSkips;
    }
  }
  // The acceleration actually engaged somewhere in the sweep.
  EXPECT_GT(TotalDischarged, 0u);
}

// Same fold oracle for the typed-program entry point, plus pruning: a
// pruned accelerated campaign must equal a pruned unaccelerated one (the
// Masked/StaticallyMasked split depends on pruning, so the baselines
// pair up by Prune flag).
TEST(ConvergenceFold, FaultToleranceAndPrunedCampaignsBitIdentical) {
  for (const NamedProgram &NP : allPrograms()) {
    if (!NP.WellTyped)
      continue;
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    DiagnosticEngine Diags;
    Expected<CheckedProgram> CP = checkProgram(TC, P, Diags);
    ASSERT_TRUE(bool(CP)) << NP.Name << ": " << Diags.str();
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());
    TheoremConfig Config;
    Config.InjectionStride = 2;

    for (bool Prune : {false, true}) {
      CampaignOptions Base;
      Base.Converge = false;
      Base.Prune = Prune;
      CampaignResult Baseline =
          runFaultToleranceCampaign(TC, *CP, Config, Base);

      CampaignOptions Opts;
      Opts.Converge = true;
      Opts.Prune = Prune;
      Opts.Engine = Vm.get();
      Opts.Threads = 8;
      CampaignResult R = runFaultToleranceCampaign(TC, *CP, Config, Opts);

      std::string At =
          std::string(NP.Name) + (Prune ? "/pruned" : "/unpruned");
      EXPECT_EQ(R.Ok, Baseline.Ok) << At;
      EXPECT_EQ(R.ReferenceSteps, Baseline.ReferenceSteps) << At;
      EXPECT_EQ(R.ReferenceTrace, Baseline.ReferenceTrace) << At;
      EXPECT_EQ(R.Table, Baseline.Table) << At;
      EXPECT_EQ(R.Violations, Baseline.Violations) << At;
      EXPECT_TRUE(R.Ok) << At;
    }
  }
}

} // namespace
