//===- tests/check_subtype_test.cpp - Subtyping judgment tests ------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "check/Subtype.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

class SubtypeTest : public ::testing::Test {
protected:
  TypeContext TC;
  ExprContext &Es = TC.exprs();
  const Expr *X = Es.var("x", ExprKind::Int);

  RegType gInt(const Expr *E) {
    return RegType(Color::Green, TC.intType(), E);
  }
  RegType bInt(const Expr *E) {
    return RegType(Color::Blue, TC.intType(), E);
  }
};

TEST_F(SubtypeTest, Reflexivity) {
  EXPECT_TRUE(isSubtype(TC, gInt(X), gInt(X)));
}

TEST_F(SubtypeTest, EqualExpressionsModuloNormalization) {
  const Expr *A = Es.binop(Opcode::Add, X, Es.intConst(1));
  const Expr *B = Es.binop(Opcode::Add, Es.intConst(1), X);
  EXPECT_TRUE(isSubtype(TC, gInt(A), gInt(B)));
}

TEST_F(SubtypeTest, ColorsNeverCoerce) {
  std::string Why;
  EXPECT_FALSE(isSubtype(TC, gInt(X), bInt(X), &Why));
  EXPECT_NE(Why.find("color"), std::string::npos);
}

TEST_F(SubtypeTest, RefWeakensToInt) {
  RegType Ref(Color::Green, TC.refType(TC.intType()), Es.intConst(256));
  EXPECT_TRUE(isSubtype(TC, Ref, gInt(Es.intConst(256))));
  // ...but not the other way.
  EXPECT_FALSE(isSubtype(TC, gInt(Es.intConst(256)), Ref));
}

TEST_F(SubtypeTest, CodeWeakensToInt) {
  StaticContext *Pre = TC.createContext();
  Pre->Label = "l";
  RegType CodeT(Color::Green, TC.codeType(Pre), X);
  EXPECT_TRUE(isSubtype(TC, CodeT, gInt(X)));
}

TEST_F(SubtypeTest, DistinctExpressionsFail) {
  EXPECT_FALSE(
      isSubtype(TC, gInt(X), gInt(Es.binop(Opcode::Add, X, Es.intConst(1)))));
}

TEST_F(SubtypeTest, ConditionalRequiresConditional) {
  RegType Cond = RegType::conditional(X, Color::Green, TC.intType(),
                                      Es.intConst(0));
  EXPECT_FALSE(isSubtype(TC, Cond, gInt(Es.intConst(0))));
  EXPECT_FALSE(isSubtype(TC, gInt(Es.intConst(0)), Cond));
  EXPECT_TRUE(isSubtype(TC, Cond, Cond));
}

TEST_F(SubtypeTest, ConditionalGuardsMustAgree) {
  RegType A = RegType::conditional(X, Color::Green, TC.intType(),
                                   Es.intConst(0));
  RegType B = RegType::conditional(Es.binop(Opcode::Add, X, Es.intConst(1)),
                                   Color::Green, TC.intType(),
                                   Es.intConst(0));
  EXPECT_FALSE(isSubtype(TC, A, B));
}

TEST_F(SubtypeTest, RegFileCoversSupertypeDomain) {
  RegFileType Sub, Sup;
  Sub.set(Reg::general(1), gInt(X));
  Sub.set(Reg::general(2), bInt(X));
  Sup.set(Reg::general(1), gInt(X));
  EXPECT_TRUE(isRegFileSubtype(TC, Sub, Sup));
  // Supertype may not mention registers the subtype lacks.
  Sup.set(Reg::general(3), gInt(X));
  std::string Why;
  EXPECT_FALSE(isRegFileSubtype(TC, Sub, Sup, &Why));
  EXPECT_NE(Why.find("r3"), std::string::npos);
}

TEST_F(SubtypeTest, RegFileSubtypingIgnoresDest) {
  RegFileType Sub, Sup;
  // d is related by explicit premises at each use site, not by Γ-subtyping.
  Sup.set(Reg::dest(), gInt(Es.intConst(0)));
  EXPECT_TRUE(isRegFileSubtype(TC, Sub, Sup));
}

TEST_F(SubtypeTest, ZeroDestRecognition) {
  EXPECT_TRUE(isZeroDestType(TC, gInt(Es.intConst(0))));
  EXPECT_FALSE(isZeroDestType(TC, gInt(Es.intConst(1))));
  EXPECT_FALSE(isZeroDestType(TC, bInt(Es.intConst(0))));
  EXPECT_FALSE(isZeroDestType(
      TC, RegType::conditional(X, Color::Green, TC.intType(),
                               Es.intConst(0))));
  // Normalization applies: 1 - 1 is provably 0.
  EXPECT_TRUE(isZeroDestType(
      TC, gInt(Es.binop(Opcode::Sub, Es.intConst(1), Es.intConst(1)))));
}

} // namespace
