//===- tests/inst_typing_test.cpp - Figure 7 rules, postconditions --------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// White-box tests of InstTyper: beyond accept/reject (covered in
// check_program_test), these inspect the *postconditions* each rule
// produces — the singleton expressions, queue descriptors, memory
// updates and the conditional type bzG installs on d.
//
//===----------------------------------------------------------------------===//

#include "check/InstTyping.h"
#include "sexpr/ExprNormalize.h"
#include "tal/Parser.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

/// A minimal laid-out program providing Ψ: one int cell at 256, one code
/// cell target block, and a dummy block so InstTyper has a Program.
class InstTypingTest : public ::testing::Test {
protected:
  TypeContext TC;
  ExprContext &Es = TC.exprs();
  DiagnosticEngine Diags;
  std::optional<Program> Prog;
  std::optional<InstTyper> Typer;
  StaticContext T;

  void SetUp() override {
    const char *Src = R"(
entry main
data { 256: int = 0 }
block main {
  mov r1, G 1
  mov r50, G @main
  mov r51, B @main
  jmpG r50
  jmpB r51
}
)";
    Expected<Program> P = parseAndLayoutTalProgram(TC, Src, Diags);
    ASSERT_TRUE(P) << P.message();
    Prog.emplace(std::move(*P));
    Typer.emplace(TC, *Prog, Diags);

    // A generic context: pc variable, memory variable, d=(G,int,0).
    T.Label = "test";
    T.Delta.declare("pc", ExprKind::Int);
    T.Delta.declare("m", ExprKind::Mem);
    T.Delta.declare("x", ExprKind::Int);
    T.Pc = Es.var("pc", ExprKind::Int);
    T.MemExpr = Es.var("m", ExprKind::Mem);
    T.Gamma.set(Reg::dest(),
                RegType(Color::Green, TC.intType(), Es.intConst(0)));
  }

  Reg R(unsigned I) { return Reg::general(I); }

  /// Checks one instruction, asserting success.
  InstTypingResult mustCheck(Inst I) {
    std::optional<InstTypingResult> Res = Typer->check(I, T, SourceLoc());
    EXPECT_TRUE(Res) << Diags.str();
    return Res ? *Res : InstTypingResult();
  }
};

TEST_F(InstTypingTest, MovInfersIntSingleton) {
  mustCheck(Inst::mov(R(1), Value::green(5)));
  const RegType *RT = T.Gamma.lookup(R(1));
  ASSERT_NE(RT, nullptr);
  EXPECT_EQ(RT->C, Color::Green);
  EXPECT_TRUE(RT->B->isInt());
  EXPECT_EQ(RT->E, Es.intConst(5));
}

TEST_F(InstTypingTest, MovInfersRefTypeFromPsi) {
  mustCheck(Inst::mov(R(1), Value::blue(256)));
  const RegType *RT = T.Gamma.lookup(R(1));
  ASSERT_NE(RT, nullptr);
  EXPECT_TRUE(RT->B->isRef());
  EXPECT_TRUE(RT->B->refPointee()->isInt());
}

TEST_F(InstTypingTest, MovInfersCodeTypeForBlockEntry) {
  Addr Main = Prog->addressOf("main");
  mustCheck(Inst::mov(R(1), Value::green(Main)));
  const RegType *RT = T.Gamma.lookup(R(1));
  ASSERT_NE(RT, nullptr);
  EXPECT_TRUE(RT->B->isCode());
  EXPECT_EQ(RT->B->codePrecondition()->Label, "main");
}

TEST_F(InstTypingTest, PcAdvancesPerInstruction) {
  const Expr *Pc0 = T.Pc;
  mustCheck(Inst::mov(R(1), Value::green(5)));
  mustCheck(Inst::mov(R(2), Value::green(6)));
  EXPECT_TRUE(provablyEqual(
      Es, T.Pc, Es.binop(Opcode::Add, Pc0, Es.intConst(2))));
}

TEST_F(InstTypingTest, AluComposesSingletons) {
  T.Gamma.set(R(1),
              RegType(Color::Green, TC.intType(), Es.var("x", ExprKind::Int)));
  mustCheck(Inst::aluImm(Opcode::Add, R(2), R(1), Value::green(3)));
  mustCheck(Inst::alu(Opcode::Mul, R(3), R(2), R(2)));
  const RegType *RT = T.Gamma.lookup(R(3));
  ASSERT_NE(RT, nullptr);
  // (x+3)*(x+3), normalized.
  const Expr *X3 = Es.binop(Opcode::Add, Es.var("x", ExprKind::Int),
                            Es.intConst(3));
  EXPECT_TRUE(provablyEqual(Es, RT->E, Es.binop(Opcode::Mul, X3, X3)));
}

TEST_F(InstTypingTest, AluWeakensRefOperandsToInt) {
  mustCheck(Inst::mov(R(1), Value::green(256))); // (G, int ref, 256)
  mustCheck(Inst::aluImm(Opcode::Add, R(2), R(1), Value::green(4)));
  const RegType *RT = T.Gamma.lookup(R(2));
  ASSERT_NE(RT, nullptr);
  EXPECT_TRUE(RT->B->isInt());
  EXPECT_EQ(normalize(Es, RT->E), Es.intConst(260));
}

TEST_F(InstTypingTest, StGPushesDescriptorOntoQueueFront) {
  mustCheck(Inst::mov(R(1), Value::green(256)));
  mustCheck(Inst::mov(R(2), Value::green(7)));
  mustCheck(Inst::st(Color::Green, R(1), R(2)));
  ASSERT_EQ(T.Queue.size(), 1u);
  EXPECT_EQ(normalize(Es, T.Queue.entry(0).AddrE), Es.intConst(256));
  EXPECT_EQ(normalize(Es, T.Queue.entry(0).ValE), Es.intConst(7));
}

TEST_F(InstTypingTest, StBConsumesAndUpdatesMemory) {
  mustCheck(Inst::mov(R(1), Value::green(256)));
  mustCheck(Inst::mov(R(2), Value::green(7)));
  mustCheck(Inst::st(Color::Green, R(1), R(2)));
  mustCheck(Inst::mov(R(3), Value::blue(256)));
  mustCheck(Inst::mov(R(4), Value::blue(7)));
  mustCheck(Inst::st(Color::Blue, R(3), R(4)));
  EXPECT_TRUE(T.Queue.empty());
  const Expr *Want = Es.upd(Es.var("m", ExprKind::Mem), Es.intConst(256),
                            Es.intConst(7));
  EXPECT_TRUE(provablyEqual(Es, T.MemExpr, Want));
}

TEST_F(InstTypingTest, LdGSeesQueueOverlayLdBSeesMemory) {
  mustCheck(Inst::mov(R(1), Value::green(256)));
  mustCheck(Inst::mov(R(2), Value::green(7)));
  mustCheck(Inst::st(Color::Green, R(1), R(2))); // pending (256, 7)
  // Green load forwards from the queue...
  mustCheck(Inst::mov(R(3), Value::green(256)));
  mustCheck(Inst::ld(Color::Green, R(4), R(3)));
  EXPECT_EQ(normalize(Es, T.Gamma.lookup(R(4))->E), Es.intConst(7));
  // ...while a blue load reads the (not yet updated) memory.
  mustCheck(Inst::mov(R(5), Value::blue(256)));
  mustCheck(Inst::ld(Color::Blue, R(6), R(5)));
  const Expr *SelM =
      Es.sel(Es.var("m", ExprKind::Mem), Es.intConst(256));
  EXPECT_TRUE(provablyEqual(Es, T.Gamma.lookup(R(6))->E, SelM));
}

TEST_F(InstTypingTest, JmpGRecordsIntentionInD) {
  Addr Main = Prog->addressOf("main");
  mustCheck(Inst::mov(R(1), Value::green(Main)));
  mustCheck(Inst::jmp(Color::Green, R(1)));
  const RegType *D = T.Gamma.lookup(Reg::dest());
  ASSERT_NE(D, nullptr);
  EXPECT_FALSE(D->isConditional());
  EXPECT_TRUE(D->B->isCode());
  EXPECT_EQ(normalize(Es, D->E), Es.intConst(Main));
}

TEST_F(InstTypingTest, BzGInstallsConditionalTypeOnD) {
  Addr Main = Prog->addressOf("main");
  T.Gamma.set(R(1),
              RegType(Color::Green, TC.intType(), Es.var("x", ExprKind::Int)));
  mustCheck(Inst::mov(R(2), Value::green(Main)));
  mustCheck(Inst::bz(Color::Green, R(1), R(2)));
  const RegType *D = T.Gamma.lookup(Reg::dest());
  ASSERT_NE(D, nullptr);
  ASSERT_TRUE(D->isConditional());
  EXPECT_EQ(D->Guard, Es.var("x", ExprKind::Int));
  EXPECT_TRUE(D->B->isCode());
}

TEST_F(InstTypingTest, BzBRestoresZeroDestOnFallthrough) {
  Addr Main = Prog->addressOf("main");
  // The main precondition requires nothing beyond defaults, so matching
  // succeeds with empty queue and any memory.
  T.Gamma.set(R(1),
              RegType(Color::Green, TC.intType(), Es.var("x", ExprKind::Int)));
  T.Gamma.set(R(2),
              RegType(Color::Blue, TC.intType(), Es.var("x", ExprKind::Int)));
  mustCheck(Inst::mov(R(3), Value::green(Main)));
  mustCheck(Inst::mov(R(4), Value::blue(Main)));
  mustCheck(Inst::bz(Color::Green, R(1), R(3)));
  InstTypingResult Res = mustCheck(Inst::bz(Color::Blue, R(2), R(4)));
  EXPECT_FALSE(Res.IsVoid);
  ASSERT_TRUE(Res.Transfer);
  EXPECT_EQ(Res.TransferTarget->Label, "main");
  const RegType *D = T.Gamma.lookup(Reg::dest());
  ASSERT_NE(D, nullptr);
  EXPECT_FALSE(D->isConditional());
  EXPECT_TRUE(isZeroDestType(TC, *D));
}

TEST_F(InstTypingTest, JmpBIsVoidAndCarriesTransfer) {
  Addr Main = Prog->addressOf("main");
  mustCheck(Inst::mov(R(1), Value::green(Main)));
  mustCheck(Inst::mov(R(2), Value::blue(Main)));
  mustCheck(Inst::jmp(Color::Green, R(1)));
  InstTypingResult Res = mustCheck(Inst::jmp(Color::Blue, R(2)));
  EXPECT_TRUE(Res.IsVoid);
  ASSERT_TRUE(Res.Transfer);
  EXPECT_EQ(Res.TransferTarget->Label, "main");
}

TEST_F(InstTypingTest, ConstantRefinementThroughArithmetic) {
  // 250 + 6 = 256 — the refinement re-types the sum as the cell's ref.
  mustCheck(Inst::mov(R(1), Value::green(250)));
  mustCheck(Inst::aluImm(Opcode::Add, R(1), R(1), Value::green(6)));
  mustCheck(Inst::mov(R(2), Value::green(1)));
  EXPECT_TRUE(Typer->check(Inst::st(Color::Green, R(1), R(2)), T,
                           SourceLoc())
                  .has_value())
      << Diags.str();
  ASSERT_EQ(T.Queue.size(), 1u);
}

TEST_F(InstTypingTest, OverwritingAPendingDestFails) {
  Addr Main = Prog->addressOf("main");
  mustCheck(Inst::mov(R(1), Value::green(Main)));
  mustCheck(Inst::jmp(Color::Green, R(1)));
  // A second jmpG while d is armed must be rejected (jmpG-t needs
  // d=(G,int,0)).
  EXPECT_FALSE(
      Typer->check(Inst::jmp(Color::Green, R(1)), T, SourceLoc()));
}

} // namespace
