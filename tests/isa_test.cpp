//===- tests/isa_test.cpp - ISA data structure unit tests -----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "isa/MachineState.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

TEST(ColorTest, OtherColorFlips) {
  EXPECT_EQ(otherColor(Color::Green), Color::Blue);
  EXPECT_EQ(otherColor(Color::Blue), Color::Green);
}

TEST(ValueTest, Rendering) {
  EXPECT_EQ(Value::green(5).str(), "G 5");
  EXPECT_EQ(Value::blue(-3).str(), "B -3");
}

TEST(ValueTest, EqualityIncludesColor) {
  EXPECT_EQ(Value::green(5), Value::green(5));
  EXPECT_NE(Value::green(5), Value::blue(5));
  EXPECT_NE(Value::green(5), Value::green(6));
}

TEST(RegTest, Classification) {
  EXPECT_TRUE(Reg::general(0).isGeneral());
  EXPECT_TRUE(Reg::general(NumGeneralRegs - 1).isGeneral());
  EXPECT_TRUE(Reg::dest().isDest());
  EXPECT_TRUE(Reg::pcG().isPC());
  EXPECT_TRUE(Reg::pcB().isPC());
  EXPECT_FALSE(Reg::dest().isGeneral());
}

TEST(RegTest, Rendering) {
  EXPECT_EQ(Reg::general(7).str(), "r7");
  EXPECT_EQ(Reg::dest().str(), "d");
  EXPECT_EQ(Reg::pcG().str(), "pcG");
  EXPECT_EQ(Reg::pcB().str(), "pcB");
}

TEST(RegTest, DenseIndicesAreDistinct) {
  std::set<unsigned> Seen;
  for (unsigned I = 0; I != NumGeneralRegs; ++I)
    EXPECT_TRUE(Seen.insert(Reg::general(I).denseIndex()).second);
  EXPECT_TRUE(Seen.insert(Reg::dest().denseIndex()).second);
  EXPECT_TRUE(Seen.insert(Reg::pcG().denseIndex()).second);
  EXPECT_TRUE(Seen.insert(Reg::pcB().denseIndex()).second);
  EXPECT_EQ(Seen.size(), Reg::NumRegs);
}

TEST(InstTest, AluEval) {
  EXPECT_EQ(evalAluOp(Opcode::Add, 2, 3), 5);
  EXPECT_EQ(evalAluOp(Opcode::Sub, 2, 3), -1);
  EXPECT_EQ(evalAluOp(Opcode::Mul, -4, 3), -12);
  // Wrapping semantics.
  EXPECT_EQ(evalAluOp(Opcode::Add, INT64_MAX, 1), INT64_MIN);
  EXPECT_EQ(evalAluOp(Opcode::Sub, INT64_MIN, 1), INT64_MAX);
}

TEST(InstTest, Rendering) {
  Reg R1 = Reg::general(1), R2 = Reg::general(2), R3 = Reg::general(3);
  EXPECT_EQ(Inst::alu(Opcode::Add, R1, R2, R3).str(), "add r1, r2, r3");
  EXPECT_EQ(Inst::aluImm(Opcode::Sub, R1, R2, Value::green(5)).str(),
            "sub r1, r2, G 5");
  EXPECT_EQ(Inst::ld(Color::Green, R1, R2).str(), "ldG r1, r2");
  EXPECT_EQ(Inst::st(Color::Blue, R1, R2).str(), "stB r1, r2");
  EXPECT_EQ(Inst::mov(R1, Value::blue(-7)).str(), "mov r1, B -7");
  EXPECT_EQ(Inst::bz(Color::Green, R2, R3).str(), "bzG r2, r3");
  EXPECT_EQ(Inst::jmp(Color::Blue, R3).str(), "jmpB r3");
}

TEST(RegisterFileTest, InitialState) {
  RegisterFile R(17);
  EXPECT_EQ(R.get(Reg::pcG()), Value::green(17));
  EXPECT_EQ(R.get(Reg::pcB()), Value::blue(17));
  EXPECT_EQ(R.get(Reg::dest()), Value::green(0));
  EXPECT_EQ(R.get(Reg::general(5)), Value::green(0));
}

TEST(RegisterFileTest, IncrementPCsPreservesColors) {
  RegisterFile R(10);
  R.incrementPCs();
  EXPECT_EQ(R.get(Reg::pcG()), Value::green(11));
  EXPECT_EQ(R.get(Reg::pcB()), Value::blue(11));
}

TEST(RegisterFileTest, SetAndGet) {
  RegisterFile R(1);
  R.set(Reg::general(3), Value::blue(42));
  EXPECT_EQ(R.val(Reg::general(3)), 42);
  EXPECT_EQ(R.col(Reg::general(3)), Color::Blue);
}

TEST(CodeMemoryTest, SetContainsGet) {
  CodeMemory C;
  Inst I = Inst::mov(Reg::general(0), Value::green(1));
  C.set(5, I);
  EXPECT_TRUE(C.contains(5));
  EXPECT_FALSE(C.contains(6));
  EXPECT_EQ(C.get(5), I);
  EXPECT_EQ(C.size(), 1u);
}

TEST(ValueMemoryTest, LookupAndDomain) {
  ValueMemory M;
  EXPECT_FALSE(M.contains(100));
  EXPECT_FALSE(M.lookup(100));
  M.set(100, 7);
  EXPECT_TRUE(M.contains(100));
  EXPECT_EQ(M.get(100), 7);
  EXPECT_EQ(*M.lookup(100), 7);
  M.set(100, 9);
  EXPECT_EQ(M.get(100), 9);
  EXPECT_EQ(M.size(), 1u);
}

TEST(StoreQueueTest, FifoDiscipline) {
  StoreQueue Q;
  EXPECT_TRUE(Q.empty());
  Q.pushFront({100, 1});
  Q.pushFront({200, 2});
  // The oldest entry (100,1) is at the back; stB consumes it first.
  EXPECT_EQ(Q.back(), (QueueEntry{100, 1}));
  Q.popBack();
  EXPECT_EQ(Q.back(), (QueueEntry{200, 2}));
  Q.popBack();
  EXPECT_TRUE(Q.empty());
}

TEST(StoreQueueTest, FindPrefersMostRecent) {
  StoreQueue Q;
  Q.pushFront({100, 1});
  Q.pushFront({100, 2}); // More recent store to the same address.
  Q.pushFront({300, 3});
  EXPECT_EQ(*Q.find(100), 2);
  EXPECT_EQ(*Q.find(300), 3);
  EXPECT_FALSE(Q.find(999));
}

TEST(MachineStateTest, FaultState) {
  MachineState F = MachineState::faultState();
  EXPECT_TRUE(F.isFault());
  CodeMemory C;
  C.set(1, Inst::mov(Reg::general(0), Value::green(0)));
  MachineState S(C, 1);
  EXPECT_FALSE(S.isFault());
  EXPECT_EQ(S.pcG().N, 1);
  EXPECT_EQ(S.pcB().N, 1);
}

} // namespace
