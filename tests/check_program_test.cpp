//===- tests/check_program_test.cpp - Whole-program checker tests ---------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Negative coverage for the instruction typing rules: each test violates
// one premise of Figure 7 and expects a rejection mentioning the culprit.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "check/ProgramChecker.h"
#include "tal/Parser.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

/// Parses+checks a program, returning the diagnostics on rejection.
std::optional<std::string> rejectionOf(const char *Src) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P = parseAndLayoutTalProgram(TC, Src, Diags);
  EXPECT_TRUE(P) << P.message();
  if (!P)
    return "parse failed";
  Expected<CheckedProgram> C = checkProgram(TC, *P, Diags);
  if (C)
    return std::nullopt;
  return Diags.str();
}

void expectAccepted(const char *Src) {
  std::optional<std::string> R = rejectionOf(Src);
  EXPECT_FALSE(R) << *R;
}

void expectRejected(const char *Src, const char *Mentioning) {
  std::optional<std::string> R = rejectionOf(Src);
  ASSERT_TRUE(R) << "expected rejection mentioning '" << Mentioning << "'";
  EXPECT_NE(R->find(Mentioning), std::string::npos) << *R;
}

/// Wraps a main-block body in the standard harness with an exit block.
std::string wrap(const std::string &Body, const std::string &Data = "") {
  std::string Src = "entry main\nexit done\n";
  if (!Data.empty())
    Src += "data {\n" + Data + "\n}\n";
  Src += "block main {\n" + Body + R"(
  mov r50, G @done
  mov r51, B @done
  jmpG r50
  jmpB r51
}
block done {
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  return Src;
}

TEST(CheckerRejects, AluMixingColors) {
  expectRejected(wrap(R"(
  mov r1, G 1
  mov r2, B 2
  add r3, r1, r2
)").c_str(), "mix colors");
}

TEST(CheckerRejects, AluImmediateColorMismatch) {
  expectRejected(wrap(R"(
  mov r1, G 1
  add r3, r1, B 2
)").c_str(), "mix colors");
}

TEST(CheckerRejects, AluOnUntrackedRegister) {
  expectRejected(wrap("  add r3, r40, G 1\n").c_str(), "no tracked type");
}

TEST(CheckerRejects, LoadFromNonRef) {
  expectRejected(wrap(R"(
  mov r1, G 5
  ldG r2, r1
)").c_str(), "not a ref type");
}

TEST(CheckerRejects, GreenLoadFromBlueAddress) {
  expectRejected(wrap(R"(
  mov r1, B 256
  ldG r2, r1
)", "  256: int = 0").c_str(), "requires a green address");
}

TEST(CheckerRejects, StoreValueColorMismatch) {
  expectRejected(wrap(R"(
  mov r1, G 256
  mov r2, B 5
  stG r1, r2
)", "  256: int = 0").c_str(), "requires a green value");
}

TEST(CheckerRejects, BlueStoreWithEmptyQueue) {
  expectRejected(wrap(R"(
  mov r1, B 256
  mov r2, B 5
  stB r1, r2
)", "  256: int = 0").c_str(), "no pending green store");
}

TEST(CheckerRejects, BlueStoreValueMismatch) {
  expectRejected(wrap(R"(
  mov r1, G 256
  mov r2, G 5
  stG r1, r2
  mov r3, B 256
  mov r4, B 6
  stB r3, r4
)", "  256: int = 0").c_str(), "cannot prove the blue store value");
}

TEST(CheckerRejects, BlueStoreAddressMismatch) {
  expectRejected(wrap(R"(
  mov r1, G 256
  mov r2, G 5
  stG r1, r2
  mov r3, B 260
  mov r4, B 5
  stB r3, r4
)", "  256: int = 0\n  260: int = 0").c_str(),
                "cannot prove the blue store address");
}

TEST(CheckerRejects, DanglingGreenStoreAtBlockEnd) {
  // A pending queue entry cannot satisfy done's empty-queue precondition.
  expectRejected(wrap(R"(
  mov r1, G 256
  mov r2, G 5
  stG r1, r2
)", "  256: int = 0").c_str(), "store-queue depth mismatch");
}

TEST(CheckerRejects, JmpGWhileTransferPending) {
  expectRejected(wrap(R"(
  mov r1, G @done
  jmpG r1
  jmpG r1
)").c_str(), "pending transfer");
}

TEST(CheckerRejects, JmpBWithoutIntention) {
  std::string Src = R"(
entry main
exit done
block main {
  mov r1, B @done
  jmpB r1
}
block done {
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  expectRejected(Src.c_str(), "no pending green intention");
}

TEST(CheckerRejects, JmpTargetsDisagree) {
  std::string Src = R"(
entry main
exit done
block main {
  mov r1, G @main
  mov r2, B @done
  jmpG r1
  jmpB r2
}
block done {
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  expectRejected(Src.c_str(), "advertise different code types");
}

TEST(CheckerRejects, UnreachableCodeAfterJmpB) {
  std::string Src = R"(
entry main
exit done
block main {
  mov r1, G @done
  mov r2, B @done
  jmpG r1
  jmpB r2
  mov r3, G 1
}
block done {
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  expectRejected(Src.c_str(), "unreachable");
}

TEST(CheckerRejects, FallingOffTheProgram) {
  const char *Src = R"(
entry main
block main {
  mov r1, G 1
}
)";
  expectRejected(Src, "falls off the end");
}

TEST(CheckerRejects, BzBWithoutBzG) {
  expectRejected(wrap(R"(
  mov r1, B 1
  mov r2, B @done
  bzB r1, r2
)").c_str(), "no pending bzG");
}

TEST(CheckerRejects, BzTestsDisagree) {
  expectRejected(wrap(R"(
  mov r1, G 1
  mov r2, B 2
  mov r3, G @done
  mov r4, B @done
  bzG r1, r3
  bzB r2, r4
)").c_str(), "cannot prove the blue branch test");
}

TEST(CheckerRejects, JmpBWhileBranchPending) {
  expectRejected(wrap(R"(
  mov r1, G 1
  mov r3, G @done
  bzG r1, r3
  mov r4, B @done
  mov r5, B 1
  jmpB r4
)").c_str(), "conditional");
}

TEST(CheckerAccepts, FallthroughIntoLabelledBlock) {
  const char *Src = R"(
entry main
exit done
block main {
  mov r1, G 7
  mov r2, B 7
}
block middle {
  pre { forall v: int, m: mem;
        r1: (G, int, v); r2: (B, int, v);
        queue []; mem m }
  mov r50, G @done
  mov r51, B @done
  jmpG r50
  jmpB r51
}
block done {
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  expectAccepted(Src);
}

TEST(CheckerRejects, FallthroughPreconditionUnsatisfied) {
  const char *Src = R"(
entry main
exit done
block main {
  mov r1, G 7
  mov r2, B 8
}
block middle {
  pre { forall v: int, m: mem;
        r1: (G, int, v); r2: (B, int, v);
        queue []; mem m }
  mov r50, G @done
  mov r51, B @done
  jmpG r50
  jmpB r51
}
block done {
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  expectRejected(Src, "fall-through");
}

TEST(CheckerAccepts, RegisterReuseAcrossColors) {
  // The paper: "our instruction set gives a compiler the freedom to
  // allocate registers however it chooses (e.g., reusing registers 1 and
  // 2 in instructions 4-6)".
  expectAccepted(wrap(R"(
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  mov r1, B 5
  mov r2, B 256
  stB r2, r1
)", "  256: int = 0").c_str());
}

TEST(CheckerAccepts, ScheduleFlexibility) {
  // "...moving instruction 3 to a position between instructions 5 and 6".
  expectAccepted(wrap(R"(
  mov r1, G 5
  mov r2, G 256
  mov r3, B 5
  mov r4, B 256
  stG r2, r1
  stB r4, r3
)", "  256: int = 0").c_str());
}

TEST(CheckerAccepts, PointerArithmeticOnConstants) {
  // 252 + 4 normalizes to the declared cell 256; the constant-refinement
  // rule re-types the result as a ref.
  expectAccepted(wrap(R"(
  mov r1, G 252
  add r1, r1, G 4
  mov r2, G 5
  stG r1, r2
  mov r3, B 256
  mov r4, B 5
  stB r3, r4
)", "  256: int = 0").c_str());
}

TEST(CheckerRejects, DynamicAddressStore) {
  // A store through a dynamically computed (non-constant) address cannot
  // be typed — exactly the paper's singleton-ref discipline.
  const char *Src = R"(
entry main
exit done
data { 256: int = 0 }
block main {
  pre { forall i: int, m: mem;
        r1: (G, int, i); queue []; mem m }
  mov r2, G 5
  stG r1, r2
  mov r50, G @done
  mov r51, B @done
  jmpG r50
  jmpB r51
}
block done {
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  expectRejected(Src, "not a ref type");
}

} // namespace
