//===- tests/check_match_test.cpp - Precondition matching tests -----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "check/ContextMatch.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

class MatchTest : public ::testing::Test {
protected:
  TypeContext TC;
  ExprContext &Es = TC.exprs();

  StaticContext *makeTarget(const char *Label) {
    StaticContext *T = TC.createContext();
    T->Label = Label;
    // Quantified pc and memory variables, d pinned to (G,int,0).
    T->Delta.declare("pc", ExprKind::Int);
    T->Delta.declare("m", ExprKind::Mem);
    T->Pc = Es.var("pc", ExprKind::Int);
    T->MemExpr = Es.var("m", ExprKind::Mem);
    T->Gamma.set(Reg::dest(),
                 RegType(Color::Green, TC.intType(), Es.intConst(0)));
    return T;
  }

  StaticContext makeCurrent() {
    StaticContext Cur;
    Cur.Label = "cur";
    Cur.Delta.declare("k", ExprKind::Int);
    Cur.Delta.declare("mm", ExprKind::Mem);
    Cur.Pc = Es.intConst(17);
    Cur.MemExpr = Es.var("mm", ExprKind::Mem);
    Cur.Gamma.set(Reg::dest(),
                  RegType(Color::Green, TC.intType(), Es.intConst(0)));
    return Cur;
  }
};

TEST_F(MatchTest, TrivialJumpMatch) {
  StaticContext *Target = makeTarget("t");
  StaticContext Cur = makeCurrent();
  Expected<Subst> S = matchContext(TC, Cur, *Target, Es.intConst(42),
                                   MatchMode::Jump);
  ASSERT_TRUE(S) << S.message();
  EXPECT_EQ(S->lookup(Es.var("pc", ExprKind::Int)), Es.intConst(42));
  EXPECT_EQ(S->lookup(Es.var("m", ExprKind::Mem)),
            Es.var("mm", ExprKind::Mem));
}

TEST_F(MatchTest, SharedSingletonBindsOnceAndVerifiesTwice) {
  StaticContext *Target = makeTarget("t");
  Target->Delta.declare("x", ExprKind::Int);
  const Expr *X = Es.var("x", ExprKind::Int);
  Target->Gamma.set(Reg::general(1),
                    RegType(Color::Green, TC.intType(), X));
  Target->Gamma.set(Reg::general(2), RegType(Color::Blue, TC.intType(), X));

  StaticContext Cur = makeCurrent();
  const Expr *K = Es.var("k", ExprKind::Int);
  const Expr *KPlus1 = Es.binop(Opcode::Add, K, Es.intConst(1));
  const Expr *OnePlusK = Es.binop(Opcode::Add, Es.intConst(1), K);
  Cur.Gamma.set(Reg::general(1),
                RegType(Color::Green, TC.intType(), KPlus1));
  Cur.Gamma.set(Reg::general(2),
                RegType(Color::Blue, TC.intType(), OnePlusK));

  // x binds to k+1 from r1; r2's 1+k verifies provably equal.
  Expected<Subst> S = matchContext(TC, Cur, *Target, Es.intConst(42),
                                   MatchMode::Jump);
  ASSERT_TRUE(S) << S.message();
  EXPECT_EQ(S->lookup(X), KPlus1);
}

TEST_F(MatchTest, SingletonMismatchFails) {
  StaticContext *Target = makeTarget("t");
  Target->Delta.declare("x", ExprKind::Int);
  const Expr *X = Es.var("x", ExprKind::Int);
  Target->Gamma.set(Reg::general(1),
                    RegType(Color::Green, TC.intType(), X));
  Target->Gamma.set(Reg::general(2), RegType(Color::Blue, TC.intType(), X));

  StaticContext Cur = makeCurrent();
  const Expr *K = Es.var("k", ExprKind::Int);
  Cur.Gamma.set(Reg::general(1), RegType(Color::Green, TC.intType(), K));
  Cur.Gamma.set(Reg::general(2),
                RegType(Color::Blue, TC.intType(),
                        Es.binop(Opcode::Add, K, Es.intConst(1))));

  Expected<Subst> S = matchContext(TC, Cur, *Target, Es.intConst(42),
                                   MatchMode::Jump);
  ASSERT_FALSE(S);
  EXPECT_NE(S.message().find("r2"), std::string::npos) << S.message();
}

TEST_F(MatchTest, MissingRegisterFails) {
  StaticContext *Target = makeTarget("t");
  Target->Delta.declare("x", ExprKind::Int);
  Target->Gamma.set(Reg::general(5),
                    RegType(Color::Green, TC.intType(),
                            Es.var("x", ExprKind::Int)));
  StaticContext Cur = makeCurrent();
  Expected<Subst> S = matchContext(TC, Cur, *Target, Es.intConst(42),
                                   MatchMode::Jump);
  ASSERT_FALSE(S);
  EXPECT_NE(S.message().find("r5"), std::string::npos);
}

TEST_F(MatchTest, UnboundVariableFails) {
  StaticContext *Target = makeTarget("t");
  // y never appears bare in any component.
  Target->Delta.declare("y", ExprKind::Int);
  Target->Gamma.set(
      Reg::general(1),
      RegType(Color::Green, TC.intType(),
              Es.binop(Opcode::Add, Es.var("y", ExprKind::Int),
                       Es.intConst(1))));
  StaticContext Cur = makeCurrent();
  Cur.Gamma.set(Reg::general(1),
                RegType(Color::Green, TC.intType(), Es.intConst(5)));
  Expected<Subst> S = matchContext(TC, Cur, *Target, Es.intConst(42),
                                   MatchMode::Jump);
  ASSERT_FALSE(S);
  EXPECT_NE(S.message().find("cannot infer"), std::string::npos);
}

TEST_F(MatchTest, QueueDepthMismatchFails) {
  StaticContext *Target = makeTarget("t");
  StaticContext Cur = makeCurrent();
  Cur.Queue.pushFront({Es.intConst(100), Es.intConst(1)});
  Expected<Subst> S = matchContext(TC, Cur, *Target, Es.intConst(42),
                                   MatchMode::Jump);
  ASSERT_FALSE(S);
  EXPECT_NE(S.message().find("store-queue depth"), std::string::npos);
}

TEST_F(MatchTest, QueueDescriptorsMatchPointwise) {
  StaticContext *Target = makeTarget("t");
  Target->Delta.declare("a", ExprKind::Int);
  Target->Queue.pushFront(
      {Es.var("a", ExprKind::Int), Es.intConst(1)});
  StaticContext Cur = makeCurrent();
  Cur.Queue.pushFront({Es.intConst(100), Es.intConst(1)});
  Expected<Subst> S = matchContext(TC, Cur, *Target, Es.intConst(42),
                                   MatchMode::Jump);
  ASSERT_TRUE(S) << S.message();
  EXPECT_EQ(S->lookup(Es.var("a", ExprKind::Int)), Es.intConst(100));
}

TEST_F(MatchTest, JumpModeRequiresZeroDestInTarget) {
  StaticContext *Target = makeTarget("t");
  Target->Gamma.forget(Reg::dest());
  StaticContext Cur = makeCurrent();
  Expected<Subst> S = matchContext(TC, Cur, *Target, Es.intConst(42),
                                   MatchMode::Jump);
  ASSERT_FALSE(S);
  EXPECT_NE(S.message().find("d:(G,int,0)"), std::string::npos);
}

TEST_F(MatchTest, FallthroughChecksDestSubtyping) {
  StaticContext *Target = makeTarget("t");
  StaticContext Cur = makeCurrent();
  // Current d is a pending green code pointer, target wants (G,int,0):
  // legal for a jump (hardware resets d) but not for a fall-through.
  StaticContext *SomePre = TC.createContext();
  SomePre->Label = "elsewhere";
  Cur.Gamma.set(Reg::dest(), RegType(Color::Green, TC.codeType(SomePre),
                                     Es.intConst(9)));
  Expected<Subst> S = matchContext(TC, Cur, *Target, Cur.Pc,
                                   MatchMode::Fallthrough);
  ASSERT_FALSE(S);
  EXPECT_NE(S.message().find("d:"), std::string::npos);
}

TEST_F(MatchTest, PcMismatchFails) {
  // A target whose pc is pinned to a literal that disagrees with the
  // subject (no quantified pc variable).
  StaticContext *Target = TC.createContext();
  Target->Label = "t";
  Target->Delta.declare("m", ExprKind::Mem);
  Target->Pc = Es.intConst(5);
  Target->MemExpr = Es.var("m", ExprKind::Mem);
  Target->Gamma.set(Reg::dest(),
                    RegType(Color::Green, TC.intType(), Es.intConst(0)));
  StaticContext Cur = makeCurrent();
  Expected<Subst> S = matchContext(TC, Cur, *Target, Es.intConst(42),
                                   MatchMode::Jump);
  ASSERT_FALSE(S);
  EXPECT_NE(S.message().find("program-counter"), std::string::npos);
}

TEST_F(MatchTest, InstantiationMustBeWellFormedInCurrentScope) {
  StaticContext *Target = makeTarget("t");
  Target->Delta.declare("x", ExprKind::Int);
  Target->Gamma.set(Reg::general(1),
                    RegType(Color::Green, TC.intType(),
                            Es.var("x", ExprKind::Int)));
  StaticContext Cur = makeCurrent();
  // r1's expression mentions a variable not in Cur's Δ.
  Cur.Gamma.set(Reg::general(1),
                RegType(Color::Green, TC.intType(),
                        Es.var("alien", ExprKind::Int)));
  Expected<Subst> S = matchContext(TC, Cur, *Target, Es.intConst(42),
                                   MatchMode::Jump);
  ASSERT_FALSE(S);
  EXPECT_NE(S.message().find("not in scope"), std::string::npos);
}

} // namespace
