//===- tests/fault_campaign_test.cpp - The parallel campaign engine ------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The engine's contract is determinism: the same campaign produces the
// same verdict table, violation list and counters for every thread count
// and for both resume modes (per-step snapshot vs. re-execution from step
// 0). These tests pin that contract, the delegation from the serial
// theorem checker, the explicit-plan API the double-fault ablation uses,
// and the JSON serialization CI consumes.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "check/ProgramChecker.h"
#include "fault/Campaign.h"
#include "tal/Parser.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

using namespace talft;

namespace {

struct Loaded {
  TypeContext TC;
  DiagnosticEngine Diags;
  std::optional<Program> Prog;
  std::optional<CheckedProgram> CP;

  void load(const char *Source) {
    Expected<Program> P = parseAndLayoutTalProgram(TC, Source, Diags);
    ASSERT_TRUE(P) << P.message();
    Prog.emplace(std::move(*P));
    Expected<CheckedProgram> C = checkProgram(TC, *Prog, Diags);
    ASSERT_TRUE(C) << Diags.str();
    CP.emplace(std::move(*C));
  }
};

CampaignResult runAt(Loaded &L, unsigned Threads,
                     ResumeMode Resume = ResumeMode::Snapshot,
                     TheoremConfig Config = TheoremConfig()) {
  CampaignOptions Opts;
  Opts.Threads = Threads;
  Opts.Resume = Resume;
  return runFaultToleranceCampaign(L.TC, *L.CP, Config, Opts);
}

void expectSameResult(const CampaignResult &A, const CampaignResult &B) {
  EXPECT_EQ(A.Ok, B.Ok);
  EXPECT_EQ(A.ReferenceSteps, B.ReferenceSteps);
  EXPECT_TRUE(A.ReferenceTrace == B.ReferenceTrace);
  EXPECT_EQ(A.Table, B.Table);
  EXPECT_EQ(A.StatesTypechecked, B.StatesTypechecked);
  EXPECT_EQ(A.Violations, B.Violations);
}

TEST(FaultCampaignTest, ThreadCountDoesNotChangeVerdicts) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::CountdownLoop));
  CampaignResult Serial = runAt(L, 1);
  EXPECT_TRUE(Serial.Ok);
  EXPECT_GT(Serial.Table.total(), 0u);
  EXPECT_EQ(Serial.Table.total(), Serial.Table.benign());
  for (unsigned Threads : {2u, 8u}) {
    CampaignResult Parallel = runAt(L, Threads);
    expectSameResult(Serial, Parallel);
  }
}

TEST(FaultCampaignTest, SnapshotResumeAgreesWithReplayFromStepZero) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::CountdownLoop));
  CampaignResult Snap = runAt(L, 2, ResumeMode::Snapshot);
  CampaignResult Replay = runAt(L, 2, ResumeMode::Replay);
  expectSameResult(Snap, Replay);
}

TEST(FaultCampaignTest, ThreadCountDoesNotChangeViolationsOnBrokenProgram) {
  // Sweep the ill-typed CSE program (bypassing the checker's guarantee by
  // lying about its status is not possible here, so use the paired-store
  // program with a tight budget instead: continuations that cannot finish
  // classify as budget-exhausted, producing violations whose merged order
  // must not depend on the thread count).
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  TheoremConfig Config;
  Config.ExtraSteps = 0; // Continuations get exactly the remaining steps.
  CampaignResult Serial = runAt(L, 1, ResumeMode::Snapshot, Config);
  CampaignResult Parallel = runAt(L, 8, ResumeMode::Snapshot, Config);
  expectSameResult(Serial, Parallel);
}

TEST(FaultCampaignTest, QueueSitesAreSwept) {
  // The paired-store program has a nonempty store queue mid-run, so the
  // work list must include Q-zap sites.
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  CampaignResult R = runAt(L, 2);
  EXPECT_TRUE(R.Ok);
  // Queue corruption always disagrees with the blue comparison: some
  // injections must be detected.
  EXPECT_GT(R.Table[Verdict::Detected], 0u);
  EXPECT_GT(R.Table[Verdict::Masked], 0u);
}

TEST(FaultCampaignTest, TypedCampaignMatchesUntypedVerdicts) {
  // Re-typechecking faulty states (serial-only) must not change how the
  // continuations classify, only add typing coverage.
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  TheoremConfig Typed;
  Typed.TypeCheckFaultyStates = true;
  Typed.FaultyTypeCheckStride = 4;
  CampaignResult T = runAt(L, 8, ResumeMode::Snapshot, Typed);
  CampaignResult U = runAt(L, 8);
  EXPECT_EQ(T.Table, U.Table);
  EXPECT_GT(T.StatesTypechecked, 0u);
  EXPECT_EQ(T.Stats.ThreadsUsed, 1u) << "typed campaigns must run serially";
  EXPECT_EQ(U.StatesTypechecked, 0u);
}

TEST(FaultCampaignTest, DelegatedTheoremCheckerAgreesWithCampaign) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::QueueForwarding));
  TheoremReport Report = checkFaultTolerance(L.TC, *L.CP, TheoremConfig());
  CampaignResult R = runAt(L, 8);
  EXPECT_EQ(Report.Ok, R.Ok);
  EXPECT_EQ(Report.ReferenceSteps, R.ReferenceSteps);
  EXPECT_EQ(Report.InjectionsTested, R.Table.total());
  EXPECT_EQ(Report.DetectedFaults, R.Table[Verdict::Detected] +
                                       R.Table[Verdict::DetectedBadPrefix]);
  EXPECT_EQ(Report.MaskedFaults, R.Table[Verdict::Masked] +
                                     R.Table[Verdict::SilentCorruption] +
                                     R.Table[Verdict::DissimilarState]);
  EXPECT_EQ(Report.Violations, R.Violations);
}

TEST(FaultCampaignTest, InjectionStrideShrinksWorkList) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::CountdownLoop));
  TheoremConfig Strided;
  Strided.InjectionStride = 5;
  CampaignResult Full = runAt(L, 2);
  CampaignResult Sparse = runAt(L, 2, ResumeMode::Snapshot, Strided);
  EXPECT_TRUE(Sparse.Ok);
  EXPECT_LT(Sparse.Table.total(), Full.Table.total());
  EXPECT_GT(Sparse.Table.total(), 0u);
}

TEST(FaultCampaignTest, ProgressCallbackCoversAllTasks) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  std::atomic<uint64_t> Calls{0};
  uint64_t MaxDone = 0; // Callback is serialized; plain writes are safe.
  uint64_t Total = 0;
  CampaignOptions Opts;
  Opts.Threads = 4;
  Opts.ProgressInterval = 100;
  Opts.Progress = [&](const CampaignProgress &P) {
    ++Calls;
    MaxDone = std::max(MaxDone, P.Completed);
    Total = P.Total;
  };
  CampaignResult R =
      runFaultToleranceCampaign(L.TC, *L.CP, TheoremConfig(), Opts);
  EXPECT_GT(Calls.load(), 0u);
  EXPECT_EQ(MaxDone, R.Table.total());
  EXPECT_EQ(Total, R.Table.total());
}

TEST(FaultCampaignTest, SingleFaultPlansMatchSingleFaultSemantics) {
  // A one-point plan is the SEU model on the raw semantics: on a
  // well-typed program every plan must be masked or detected.
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  PlanCampaign Spec;
  Spec.Prog = &*L.Prog;
  CampaignResult Probe = runInjectionPlans(Spec, CampaignOptions());
  ASSERT_TRUE(Probe.Ok);
  for (uint64_t S = 0; S <= Probe.ReferenceSteps; ++S)
    for (unsigned R : {1u, 3u, 5u})
      Spec.Plans.push_back({{S, FaultSite::reg(Reg::general(R)), 99}});
  CampaignOptions Opts;
  Opts.Threads = 4;
  CampaignResult Result = runInjectionPlans(Spec, Opts);
  EXPECT_TRUE(Result.Ok);
  EXPECT_EQ(Result.Table.total(), Spec.Plans.size());
  EXPECT_EQ(Result.Table[Verdict::SilentCorruption], 0u);
  EXPECT_EQ(Result.Table[Verdict::Stuck], 0u);
}

TEST(FaultCampaignTest, CrossColorDoubleFaultPlansCorruptSilently) {
  // The double-fault ablation's headline, as a regression test: the engine
  // must surface silent corruption for correlated cross-color pairs.
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  PlanCampaign Spec;
  Spec.Prog = &*L.Prog;
  CampaignResult Probe = runInjectionPlans(Spec, CampaignOptions());
  ASSERT_TRUE(Probe.Ok);
  for (uint64_t S1 = 0; S1 <= Probe.ReferenceSteps; ++S1)
    for (uint64_t S2 = S1; S2 <= Probe.ReferenceSteps; ++S2)
      Spec.Plans.push_back({{S1, FaultSite::reg(Reg::general(1)), 99},
                            {S2, FaultSite::reg(Reg::general(3)), 99}});
  CampaignOptions Opts;
  Opts.Threads = 4;
  CampaignResult Result = runInjectionPlans(Spec, Opts);
  EXPECT_GT(Result.Table[Verdict::SilentCorruption], 0u);

  // And thread-count determinism holds for plans too.
  Opts.Threads = 1;
  CampaignResult Serial = runInjectionPlans(Spec, Opts);
  EXPECT_EQ(Serial.Table, Result.Table);
}

TEST(FaultCampaignTest, JsonReportHasSchemaFields) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  CampaignResult R = runAt(L, 2);
  std::string Json = campaignToJson(R);
  for (const char *Key :
       {"\"ok\": true", "\"reference_steps\"", "\"injections\"",
        "\"verdicts\"", "\"masked\"", "\"silent_corruption\"",
        "\"violations\": []", "\"stats\"", "\"triples_per_second\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << "missing " << Key
                                                 << " in:\n" << Json;
  // Violations must be escaped into valid JSON strings.
  TheoremConfig Tight;
  Tight.ExtraSteps = 0;
  CampaignResult Bad = runAt(L, 2, ResumeMode::Snapshot, Tight);
  std::string BadJson = campaignToJson(Bad);
  EXPECT_NE(BadJson.find("\"violations\": ["), std::string::npos);
}

TEST(FaultCampaignTest, VerdictTableMergeSums) {
  VerdictTable A, B;
  A[Verdict::Masked] = 3;
  A[Verdict::Detected] = 1;
  B[Verdict::Masked] = 2;
  B[Verdict::SilentCorruption] = 4;
  A.merge(B);
  EXPECT_EQ(A[Verdict::Masked], 5u);
  EXPECT_EQ(A[Verdict::Detected], 1u);
  EXPECT_EQ(A[Verdict::SilentCorruption], 4u);
  EXPECT_EQ(A.total(), 10u);
  EXPECT_EQ(A.benign(), 6u);
}

TEST(FaultCampaignTest, VerdictTableMergeSaturates) {
  // Tallies saturate instead of wrapping: a merged campaign can never
  // report fewer injections than either input.
  VerdictTable A, B;
  A[Verdict::Masked] = UINT64_MAX - 1;
  B[Verdict::Masked] = 5;
  A.merge(B);
  EXPECT_EQ(A[Verdict::Masked], UINT64_MAX);
  VerdictTable C, D;
  C[Verdict::Detected] = UINT64_MAX;
  D[Verdict::Detected] = UINT64_MAX;
  C.merge(D);
  EXPECT_EQ(C[Verdict::Detected], UINT64_MAX);
}

TEST(FaultCampaignTest, VerdictTableMergeIsOrderIndependent) {
  VerdictTable A, B;
  for (size_t I = 0; I != NumVerdicts; ++I) {
    A.Counts[I] = 3 * I + 1;
    B.Counts[I] = 7 * I + 2;
  }
  VerdictTable AB = A, BA = B;
  AB.merge(B);
  BA.merge(A);
  EXPECT_EQ(AB, BA);
}

TEST(FaultCampaignTest, VerdictNamesAndJsonKeysCoverEveryVerdict) {
  std::set<std::string> Names, Keys;
  for (size_t I = 0; I != NumVerdicts; ++I) {
    Verdict V = (Verdict)I;
    const char *Name = verdictName(V);
    const char *Key = verdictJsonKey(V);
    ASSERT_NE(Name, nullptr);
    ASSERT_NE(Key, nullptr);
    EXPECT_FALSE(std::string(Name).empty());
    // JSON keys are stable snake_case identifiers.
    for (char C : std::string(Key))
      EXPECT_TRUE((C >= 'a' && C <= 'z') || C == '_')
          << "bad character '" << C << "' in json key " << Key;
    Names.insert(Name);
    Keys.insert(Key);
  }
  // Distinct verdicts must never alias in reports.
  EXPECT_EQ(Names.size(), NumVerdicts);
  EXPECT_EQ(Keys.size(), NumVerdicts);
}

} // namespace
