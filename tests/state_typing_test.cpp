//===- tests/state_typing_test.cpp - Machine-state typing (Figure 8) ------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "check/StateTyping.h"
#include "fault/TrackedRun.h"
#include "tal/Parser.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

struct Loaded {
  TypeContext TC;
  DiagnosticEngine Diags;
  std::optional<Program> Prog;
  std::optional<CheckedProgram> CP;

  void load(const char *Source) {
    Expected<Program> P = parseAndLayoutTalProgram(TC, Source, Diags);
    ASSERT_TRUE(P) << P.message();
    Prog.emplace(std::move(*P));
    Expected<CheckedProgram> C = checkProgram(TC, *Prog, Diags);
    ASSERT_TRUE(C) << Diags.str();
    CP.emplace(std::move(*C));
  }
};

TEST(ValueTypingTest, PlainSingletons) {
  TypeContext TC;
  ExprContext &Es = TC.exprs();
  HeapTyping Psi;
  Subst Empty;
  RegType T(Color::Green, TC.intType(), Es.intConst(5));
  EXPECT_FALSE(checkValueHasType(TC, Psi, ZapTag::none(), Value::green(5),
                                 T, Empty));
  // Wrong payload.
  EXPECT_TRUE(checkValueHasType(TC, Psi, ZapTag::none(), Value::green(6), T,
                                Empty));
  // Wrong color.
  EXPECT_TRUE(checkValueHasType(TC, Psi, ZapTag::none(), Value::blue(5), T,
                                Empty));
}

TEST(ValueTypingTest, ZapTagExemptsMatchingColor) {
  TypeContext TC;
  ExprContext &Es = TC.exprs();
  HeapTyping Psi;
  Subst Empty;
  RegType T(Color::Green, TC.intType(), Es.intConst(5));
  // Rule val-zap-t: any green value is fine under a green zap.
  EXPECT_FALSE(checkValueHasType(TC, Psi, ZapTag::color(Color::Green),
                                 Value::green(999), T, Empty));
  // A blue zap does not excuse a green mismatch.
  EXPECT_TRUE(checkValueHasType(TC, Psi, ZapTag::color(Color::Blue),
                                Value::green(999), T, Empty));
}

TEST(ValueTypingTest, ClosingSubstitutionApplies) {
  TypeContext TC;
  ExprContext &Es = TC.exprs();
  HeapTyping Psi;
  const Expr *X = Es.var("x", ExprKind::Int);
  RegType T(Color::Blue, TC.intType(),
            Es.binop(Opcode::Add, X, Es.intConst(1)));
  Subst S;
  S.bind(X, Es.intConst(9));
  EXPECT_FALSE(
      checkValueHasType(TC, Psi, ZapTag::none(), Value::blue(10), T, S));
  EXPECT_TRUE(
      checkValueHasType(TC, Psi, ZapTag::none(), Value::blue(9), T, S));
}

TEST(ValueTypingTest, ConditionalTypes) {
  TypeContext TC;
  ExprContext &Es = TC.exprs();
  HeapTyping Psi;
  Subst Empty;
  // Guard 0: the underlying triple must hold (rule cond-t).
  RegType Taken = RegType::conditional(Es.intConst(0), Color::Green,
                                       TC.intType(), Es.intConst(7));
  EXPECT_FALSE(checkValueHasType(TC, Psi, ZapTag::none(), Value::green(7),
                                 Taken, Empty));
  EXPECT_TRUE(checkValueHasType(TC, Psi, ZapTag::none(), Value::green(8),
                                Taken, Empty));
  // Guard nonzero: the value must be 0 (rule cond-t-n0).
  RegType Untaken = RegType::conditional(Es.intConst(3), Color::Green,
                                         TC.intType(), Es.intConst(7));
  EXPECT_FALSE(checkValueHasType(TC, Psi, ZapTag::none(), Value::green(0),
                                 Untaken, Empty));
  EXPECT_TRUE(checkValueHasType(TC, Psi, ZapTag::none(), Value::green(7),
                                Untaken, Empty));
}

TEST(ValueTypingTest, ShapesCheckAgainstPsi) {
  TypeContext TC;
  ExprContext &Es = TC.exprs();
  HeapTyping Psi;
  const BasicType *IntRef = TC.refType(TC.intType());
  Psi.declare(256, IntRef);
  Subst Empty;
  RegType T(Color::Green, IntRef, Es.intConst(256));
  EXPECT_FALSE(checkValueHasType(TC, Psi, ZapTag::none(), Value::green(256),
                                 T, Empty));
  // 257 is not a declared cell, so it cannot have a ref shape.
  RegType T2(Color::Green, IntRef, Es.intConst(257));
  EXPECT_TRUE(checkValueHasType(TC, Psi, ZapTag::none(), Value::green(257),
                                T2, Empty));
}

TEST(StateTypingTest, InitialStateIsWellTyped) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  Expected<MachineState> S = L.Prog->initialState();
  ASSERT_TRUE(S) << S.message();
  Expected<Subst> Closing = initialClosing(L.TC, *L.CP, *S);
  ASSERT_TRUE(Closing) << Closing.message();
  EXPECT_FALSE(checkStateTyped(L.TC, *L.CP, *S, ZapTag::none(), *Closing));
}

TEST(StateTypingTest, CorruptedRegisterBreaksEmptyZapTyping) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  TrackedRun Run(L.TC, *L.CP);
  ASSERT_FALSE(Run.start());
  for (int I = 0; I != 4; ++I)
    Run.stepOnce(); // r1 and r2 now hold green 5 and 256
  ASSERT_FALSE(Run.checkTyped());

  MachineState Corrupt = Run.state();
  Corrupt.Regs.set(Reg::general(1), Value::green(99));
  // Under the empty zap tag the corrupted state is NOT well-typed...
  Error E = checkStateTyped(L.TC, *L.CP, Corrupt, ZapTag::none(),
                            Run.closing());
  EXPECT_TRUE(E);
  EXPECT_NE(E.message().find("r1"), std::string::npos);
  // ...but it is under the green zap tag (Preservation part 2).
  EXPECT_FALSE(checkStateTyped(L.TC, *L.CP, Corrupt,
                               ZapTag::color(Color::Green), Run.closing()));
  // A blue zap tag does not cover a green corruption.
  EXPECT_TRUE(checkStateTyped(L.TC, *L.CP, Corrupt,
                              ZapTag::color(Color::Blue), Run.closing()));
}

TEST(StateTypingTest, DisagreeingPCsNeedAZapTag) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  TrackedRun Run(L.TC, *L.CP);
  ASSERT_FALSE(Run.start());
  MachineState S = Run.state();
  S.Regs.set(Reg::pcG(), Value::green(3));
  Error E = checkStateTyped(L.TC, *L.CP, S, ZapTag::none(), Run.closing());
  EXPECT_TRUE(E);
  EXPECT_NE(E.message().find("program counters"), std::string::npos);
  // Anchored at pcB, the green zap tag accepts the state.
  EXPECT_FALSE(checkStateTyped(L.TC, *L.CP, S, ZapTag::color(Color::Green),
                               Run.closing()));
}

TEST(StateTypingTest, CorruptedQueueNeedsGreenZap) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  TrackedRun Run(L.TC, *L.CP);
  ASSERT_FALSE(Run.start());
  // Execute through the stG (3 instructions = 6 steps) so the queue holds
  // the pending (256, 5).
  for (int I = 0; I != 6; ++I)
    Run.stepOnce();
  ASSERT_EQ(Run.state().Queue.size(), 1u);
  ASSERT_FALSE(Run.checkTyped());

  MachineState Corrupt = Run.state();
  Corrupt.Queue.setEntry(0, {Corrupt.Queue.entry(0).Address, 99});
  EXPECT_TRUE(checkStateTyped(L.TC, *L.CP, Corrupt, ZapTag::none(),
                              Run.closing()));
  EXPECT_FALSE(checkStateTyped(L.TC, *L.CP, Corrupt,
                               ZapTag::color(Color::Green), Run.closing()));
  // The queue is green: a blue zap cannot excuse it.
  EXPECT_TRUE(checkStateTyped(L.TC, *L.CP, Corrupt,
                              ZapTag::color(Color::Blue), Run.closing()));
}

TEST(StateTypingTest, FaultStateIsNeverWellTyped) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  MachineState F = MachineState::faultState();
  Subst Empty;
  EXPECT_TRUE(checkStateTyped(L.TC, *L.CP, F, ZapTag::none(), Empty));
  EXPECT_TRUE(
      checkStateTyped(L.TC, *L.CP, F, ZapTag::color(Color::Green), Empty));
}

TEST(StateTypingTest, MemoryMutationBreaksTyping) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(progs::PairedStore));
  TrackedRun Run(L.TC, *L.CP);
  ASSERT_FALSE(Run.start());
  MachineState S = Run.state();
  // Memory is inside the protected sphere: no zap tag excuses a mismatch
  // between M and the denotation of its description.
  S.Mem.set(256, 77);
  EXPECT_TRUE(checkStateTyped(L.TC, *L.CP, S, ZapTag::none(),
                              Run.closing()));
  EXPECT_TRUE(checkStateTyped(L.TC, *L.CP, S, ZapTag::color(Color::Green),
                              Run.closing()));
  EXPECT_TRUE(checkStateTyped(L.TC, *L.CP, S, ZapTag::color(Color::Blue),
                              Run.closing()));
}

} // namespace
