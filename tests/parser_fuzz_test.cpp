//===- tests/parser_fuzz_test.cpp - Front-end robustness ------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Deterministic fuzzing of the two front ends: random byte strings and
// random token soups must produce diagnostics, never crashes or
// assertion failures. Truncations of valid programs cover the
// "unexpected EOF at every position" family.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "tal/Parser.h"
#include "wile/Parser.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 1) {}
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }
  uint64_t below(uint64_t N) { return next() % N; }

private:
  uint64_t State;
};

std::string randomBytes(Rng &R, size_t Len) {
  // Printable-ish ASCII plus newlines.
  std::string S;
  for (size_t I = 0; I != Len; ++I)
    S += (char)(R.below(95) + 32 - (R.below(12) == 0 ? 22 : 0));
  for (char &C : S)
    if (C < 32 && C != '\n' && C != '\t')
      C = '\n';
  return S;
}

std::string tokenSoup(Rng &R, size_t Len) {
  static const char *Tokens[] = {
      "block",  "pre",  "forall", "queue", "mem",  "pc",    "entry",
      "exit",   "data", "int",    "code",  "ref",  "sel",   "upd",
      "emp",    "mov",  "add",    "sub",   "mul",  "ldG",   "ldB",
      "stG",    "stB",  "bzG",    "bzB",   "jmpG", "jmpB",  "G",
      "B",      "r1",   "r2",     "d",     "{",    "}",     "(",
      ")",      "[",    "]",      ":",     ",",    ";",     "=",
      "=>",     "@",    "+",      "-",     "*",    "0",     "1",
      "256",    "x",    "m",      "main",  "done", "//c\n", "9999999999",
  };
  std::string S;
  for (size_t I = 0; I != Len; ++I) {
    S += Tokens[R.below(std::size(Tokens))];
    S += ' ';
  }
  return S;
}

class TalFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TalFuzz, RandomBytesNeverCrash) {
  Rng R(GetParam() * 7919 + 1);
  for (int Trial = 0; Trial != 30; ++Trial) {
    TypeContext TC;
    DiagnosticEngine Diags;
    std::string Input = randomBytes(R, R.below(400));
    // Must return (success or failure), not crash.
    (void)parseTalProgram(TC, Input, Diags);
  }
}

TEST_P(TalFuzz, TokenSoupNeverCrashes) {
  Rng R(GetParam() * 104729 + 3);
  for (int Trial = 0; Trial != 30; ++Trial) {
    TypeContext TC;
    DiagnosticEngine Diags;
    (void)parseTalProgram(TC, tokenSoup(R, R.below(200)), Diags);
  }
}

TEST_P(TalFuzz, TruncationsOfValidProgramsNeverCrash) {
  std::string Valid = progs::CountdownLoop;
  Rng R(GetParam());
  for (int Trial = 0; Trial != 20; ++Trial) {
    TypeContext TC;
    DiagnosticEngine Diags;
    size_t Cut = R.below(Valid.size());
    (void)parseTalProgram(TC, Valid.substr(0, Cut), Diags);
  }
}

class WileFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WileFuzz, RandomBytesNeverCrash) {
  Rng R(GetParam() * 31337 + 5);
  for (int Trial = 0; Trial != 30; ++Trial) {
    DiagnosticEngine Diags;
    (void)wile::parseWile(randomBytes(R, R.below(400)), Diags);
  }
}

TEST_P(WileFuzz, TokenSoupNeverCrashes) {
  static const char *Tokens[] = {
      "var",   "array", "while", "if",  "else", "output", "x",
      "y",     "a",     "=",     "==",  "!=",   ";",      "{",
      "}",     "(",     ")",     "[",   "]",    "+",      "-",
      "*",     "@",     "0",     "1",   "42",   "//c\n",
  };
  Rng R(GetParam() * 65537 + 11);
  for (int Trial = 0; Trial != 30; ++Trial) {
    std::string S;
    for (uint64_t I = 0, E = R.below(150); I != E; ++I) {
      S += Tokens[R.below(std::size(Tokens))];
      S += ' ';
    }
    DiagnosticEngine Diags;
    (void)wile::parseWile(S, Diags);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TalFuzz, ::testing::Range<uint64_t>(1, 16));
INSTANTIATE_TEST_SUITE_P(Seeds, WileFuzz, ::testing::Range<uint64_t>(1, 16));

} // namespace
