//===- tests/perf_scheduler_test.cpp - Cost model unit tests --------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "perf/Scheduler.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

TEST(IssueCyclesTest, EmptyBlockIsFree) {
  EXPECT_EQ(issueCycles({}, PipelineConfig()), 0u);
}

TEST(IssueCyclesTest, IndependentOpsPackIntoWidth) {
  PipelineConfig Config;
  Config.IssueWidth = 4;
  MOpStream Ops;
  for (int I = 0; I != 8; ++I)
    Ops.push_back(MOp::alu(I));
  // 8 independent single-cycle ops on a 4-wide machine: 2 issue cycles,
  // the last op completes one cycle after its issue.
  EXPECT_EQ(issueCycles(Ops, Config), 2u);
}

TEST(IssueCyclesTest, RawDependenceSerializes) {
  PipelineConfig Config;
  MOpStream Ops = {MOp::alu(1), MOp::alu(2, 1), MOp::alu(3, 2)};
  // Three chained 1-cycle ops: issue at 0,1,2; done at 3.
  EXPECT_EQ(issueCycles(Ops, Config), 3u);
}

TEST(IssueCyclesTest, LoadLatencyStallsConsumer) {
  PipelineConfig Config;
  Config.LatLoad = 2;
  MOpStream Ops = {MOp::load(1, 0), MOp::alu(2, 1)};
  // Load issues at 0, completes at 2; consumer issues at 2, done at 3.
  EXPECT_EQ(issueCycles(Ops, Config), 3u);
}

TEST(IssueCyclesTest, MulLatency) {
  PipelineConfig Config;
  MOpStream Ops = {MOp::mul(1, 0, 0), MOp::alu(2, 1)};
  EXPECT_EQ(issueCycles(Ops, Config), 4u); // mul 0..3, alu 3..4
}

TEST(IssueCyclesTest, MemPortsLimitLoadsPerCycle) {
  PipelineConfig Config;
  Config.IssueWidth = 6;
  Config.MemPorts = 2;
  MOpStream Ops;
  for (int I = 0; I != 4; ++I)
    Ops.push_back(MOp::load(I, 10));
  // 4 loads, 2 ports: cycles 0,0,1,1; last completes at 1+2=3.
  EXPECT_EQ(issueCycles(Ops, Config), 3u);
}

TEST(IssueCyclesTest, InOrderStallPropagates) {
  PipelineConfig Config;
  Config.IssueWidth = 4;
  // Op 2 depends on a load; op 3 is independent but in-order issue keeps
  // it from issuing before op 2.
  MOpStream Ops = {MOp::load(1, 0), MOp::alu(2, 1), MOp::alu(3)};
  // load @0; alu2 waits until 2; alu3 also @2. Done at 3.
  EXPECT_EQ(issueCycles(Ops, Config), 3u);
}

TEST(IssueCyclesTest, PairLatencyUnderOrdering) {
  PipelineConfig Ordered;
  PipelineConfig Unordered;
  Unordered.EnforceColorOrdering = false;

  MOpStream Ops = {MOp::store(1, 2, /*PairId=*/0, /*GreenHalf=*/true),
                   MOp::storeCommit(3, 4, /*PairId=*/0)};
  // Ordered: the commit waits for the queue write: issue 0 and 1.
  EXPECT_EQ(issueCycles(Ops, Ordered), 2u);
  // The aggressive hardware correlates them: both issue at 0.
  EXPECT_EQ(issueCycles(Ops, Unordered), 1u);
}

TEST(IssueCyclesTest, BranchPairSerializesEvenWithoutOrdering) {
  PipelineConfig Unordered;
  Unordered.EnforceColorOrdering = false;
  MOpStream Ops = {MOp::branch(1, -1, /*PairId=*/0, /*GreenHalf=*/true),
                   MOp::branch(2, -1, /*PairId=*/0)};
  // jmpB reads the d register jmpG wrote: the pair never shares a cycle
  // (issue at 0 and 1; the commit completes at 2).
  EXPECT_EQ(issueCycles(Ops, Unordered), 2u);
  // An unpaired degenerate branch duo could dual-issue instead.
  MOpStream Unpaired = {MOp::branch(1), MOp::branch(2)};
  EXPECT_EQ(issueCycles(Unpaired, Unordered), 1u);
}

TEST(ScheduleBlockTest, HoistsIndependentWorkAboveAStall) {
  PipelineConfig Config;
  Config.IssueWidth = 1;
  // Program order: load; consumer; independent alu. The list scheduler
  // should move the independent alu into the load shadow.
  MOpStream Ops = {MOp::load(1, 0), MOp::alu(2, 1), MOp::alu(3)};
  MOpStream Scheduled = scheduleBlock(Ops, Config);
  ASSERT_EQ(Scheduled.size(), 3u);
  EXPECT_EQ(Scheduled[0].Class, MOpClass::Load);
  EXPECT_EQ(Scheduled[1].Dst, 3); // hoisted
  EXPECT_EQ(Scheduled[2].Dst, 2);
  EXPECT_LE(issueCycles(Scheduled, Config), issueCycles(Ops, Config));
}

TEST(ScheduleBlockTest, RespectsStoreOrder) {
  PipelineConfig Config;
  MOpStream Ops = {MOp::store(1, 2), MOp::store(3, 4), MOp::load(5, 6)};
  MOpStream Scheduled = scheduleBlock(Ops, Config);
  // Stores stay in FIFO order and the load cannot cross them.
  EXPECT_EQ(Scheduled[0].Src0, 1);
  EXPECT_EQ(Scheduled[1].Src0, 3);
  EXPECT_EQ(Scheduled[2].Class, MOpClass::Load);
}

TEST(ScheduleBlockTest, BranchStaysLast) {
  PipelineConfig Config;
  MOpStream Ops = {MOp::branch(0), MOp::alu(1)};
  // A branch is a barrier: the alu after it cannot move above it.
  MOpStream Scheduled = scheduleBlock(Ops, Config);
  EXPECT_EQ(Scheduled[0].Class, MOpClass::Branch);
  EXPECT_EQ(Scheduled[1].Class, MOpClass::Alu);
}

TEST(ScheduleBlockTest, OrderingConstraintKeepsPairsOrdered) {
  PipelineConfig Ordered;
  MOpStream Ops = {MOp::alu(9),
                   MOp::store(1, 2, /*PairId=*/7, /*GreenHalf=*/true),
                   MOp::storeCommit(3, 4, /*PairId=*/7)};
  MOpStream Scheduled = scheduleBlock(Ops, Ordered);
  size_t GreenIdx = 99, BlueIdx = 99;
  for (size_t I = 0; I != Scheduled.size(); ++I) {
    if (Scheduled[I].Class == MOpClass::Store)
      GreenIdx = I;
    if (Scheduled[I].Class == MOpClass::StoreCommit)
      BlueIdx = I;
  }
  EXPECT_LT(GreenIdx, BlueIdx);
}

// Property sweep: for every width, the duplicated stream never costs more
// than 2x + pairing slack of the single stream, and at width 1 it costs at
// least the op-count ratio.
class WidthProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(WidthProperty, DuplicationCostBounds) {
  PipelineConfig Config;
  Config.IssueWidth = GetParam();
  MOpStream Single, Doubled;
  for (int I = 0; I != 10; ++I) {
    Single.push_back(MOp::alu(I, I > 0 ? I - 1 : -1));
    Doubled.push_back(MOp::alu(2 * I, I > 0 ? 2 * (I - 1) : -1));
    Doubled.push_back(MOp::alu(2 * I + 1, I > 0 ? 2 * (I - 1) + 1 : -1));
  }
  uint64_t S = blockCycles(Single, Config);
  uint64_t D = blockCycles(Doubled, Config);
  EXPECT_LE(D, 2 * S);
  EXPECT_GE(D, S);
  if (GetParam() >= 2) {
    // Two independent chains fit side by side: duplication is free.
    EXPECT_EQ(D, S);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthProperty,
                         ::testing::Values(1u, 2u, 4u, 6u, 8u));

} // namespace
