//===- tests/lane_test.cpp - Batched lane execution oracle ----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The batched lane engine is only allowed to change wall-clock time, never
// an observable: every lane must end with exactly the RunStatus, output
// trace and final MachineState its own scalar runContinuation would have
// produced, and whole campaigns must fold bit-identically with and without
// lanes. This suite pins that contract at both levels:
//
//   1. direct LaneEngine groups against per-lane scalar runs — including
//      lanes that deviate at a blue control transfer (bz/jmp split and
//      scalar fallback), lanes that retire mid-group on a cross-check,
//      and lanes that converge at a probed boundary;
//   2. the degenerate width-1 group, which must be indistinguishable from
//      the scalar engine;
//   3. the copy-on-write shared-memory contract (LaneGroupSpec::SharedMem)
//      and the reusable scratch lane bank;
//   4. campaign-level fold oracles across widths, engines, thread counts,
//      resume modes, pruning and convergence;
//   5. the explicit-plan API (the double-fault ablation's path) with every
//      {Converge, Lanes} combination — plans ignore lanes, and
//      --no-converge must not change a verdict.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "fault/Campaign.h"
#include "fault/FaultInjector.h"
#include "sim/ExecEngine.h"
#include "sim/LaneGroup.h"
#include "tal/Parser.h"
#include "vm/Engine.h"
#include "vm/LaneEngine.h"
#include "vm/LaneState.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace talft;

namespace {

struct NamedProgram {
  const char *Name;
  const char *Source;
  bool WellTyped;
};

const std::vector<NamedProgram> &allPrograms() {
  static const std::vector<NamedProgram> Programs = {
      {"PairedStore", progs::PairedStore, true},
      {"CseBroken", progs::CseBroken, false},
      {"IndirectJump", progs::IndirectJump, true},
      {"CountdownLoop", progs::CountdownLoop, true},
      {"QueueForwarding", progs::QueueForwarding, true},
      {"PendingStoreAcrossJump", progs::PendingStoreAcrossJump, true},
  };
  return Programs;
}

Program parseOrDie(TypeContext &TC, const NamedProgram &NP) {
  DiagnosticEngine Diags;
  Expected<Program> P = parseAndLayoutTalProgram(TC, NP.Source, Diags);
  EXPECT_TRUE(bool(P)) << NP.Name << ": " << Diags.str();
  return std::move(*P);
}

/// The reference run unrolled: state and fingerprint after every step.
struct UnrolledRun {
  std::vector<MachineState> States;
  std::vector<uint64_t> Timeline;
  uint64_t Steps = 0;
};

UnrolledRun unroll(const Program &P, const StepPolicy &Policy) {
  UnrolledRun U;
  MachineState Probe = *P.initialState();
  RunResult RR = referenceEngine().run(Probe, P.exitAddress(), 100000, Policy);
  EXPECT_EQ(RR.Status, RunStatus::Halted);
  U.Steps = RR.Steps;
  MachineState S = *P.initialState();
  U.States.push_back(S);
  U.Timeline.push_back(S.fingerprint());
  for (uint64_t I = 0; I != RR.Steps; ++I) {
    StepResult SR = referenceEngine().step(S, Policy);
    EXPECT_EQ(SR.Status, StepStatus::Ok);
    U.States.push_back(S);
    U.Timeline.push_back(S.fingerprint());
  }
  return U;
}

/// Fetch-boundary indices (IR empty) of the unrolled run, at most \p Max,
/// spread across the run.
std::vector<uint64_t> boundaries(const UnrolledRun &U, size_t Max) {
  std::vector<uint64_t> All;
  for (uint64_t K = 0; K < U.Steps; ++K)
    if (!U.States[K].IR)
      All.push_back(K);
  if (All.size() <= Max)
    return All;
  std::vector<uint64_t> Picked;
  for (size_t I = 0; I != Max; ++I)
    Picked.push_back(All[I * All.size() / Max]);
  return Picked;
}

/// The injected continuations a lane group starts from: every non-pc fault
/// site of the boundary state, times a few representative corruptions.
/// (Pc sites break the group invariant — the campaign runs them scalar.)
std::vector<MachineState> injectedLanes(const Program &P,
                                        const MachineState &Base) {
  std::vector<int64_t> Values = representativeCorruptions(P);
  if (Values.size() > 3)
    Values.resize(3);
  std::vector<MachineState> Lanes;
  for (const FaultSite &Site : enumerateFaultSites(Base)) {
    if (Site.K == FaultSite::Kind::Register && Site.R.isPC())
      continue;
    for (int64_t V : Values) {
      MachineState S = Base;
      injectFault(S, Site, V);
      Lanes.push_back(std::move(S));
    }
  }
  return Lanes;
}

/// Tallies of what the direct group runs exercised, so the suite can
/// assert the interesting paths (deviation, detection, convergence)
/// actually fired somewhere.
struct PathCounts {
  uint64_t Deviated = 0;
  uint64_t Detected = 0;
  uint64_t Converged = 0;
};

/// Runs \p Lanes through the lane engine in groups of \p Width and each
/// lane through the scalar vm engine alone, with identical budgets and
/// probe schedules, and asserts per-lane observable equality.
void compareGroupsToScalar(const char *Name, const Program &P,
                           const UnrolledRun &U, uint64_t K,
                           std::vector<MachineState> Lanes, unsigned Width,
                           uint64_t Mask, PathCounts &PC) {
  vm::LaneEngine LE(P.code());
  uint64_t Budget = U.Steps - K + 64;

  for (size_t At = 0; At < Lanes.size(); At += Width) {
    unsigned N = (unsigned)std::min<size_t>(Width, Lanes.size() - At);
    std::vector<MachineState> Group(Lanes.begin() + At,
                                    Lanes.begin() + At + N);
    std::vector<OutputTrace> LaneOuts(N);
    std::vector<LaneOutcome> Outs(N);

    LaneProbe Probe;
    Probe.Timeline = U.Timeline.data();
    Probe.Size = U.Timeline.size();
    Probe.StartStep = K;
    Probe.Mask = Mask;
    Probe.Verify = [&](unsigned, const MachineState &S, uint64_t Idx) {
      return Idx < U.States.size() && S == U.States[Idx];
    };

    LaneGroupSpec Spec;
    Spec.ExitAddr = P.exitAddress();
    Spec.Budget = Budget;
    Spec.OnOutput = [&](unsigned L, const QueueEntry &E) {
      LaneOuts[L].push_back(E);
    };
    Spec.Probe = &Probe;
    LE.run(Group.data(), N, Spec, Outs.data());

    for (unsigned L = 0; L != N; ++L) {
      MachineState S = Lanes[At + L];
      OutputTrace ScalarOut;
      ExecEngine::ConvergenceProbe SP;
      SP.Timeline = U.Timeline.data();
      SP.Size = U.Timeline.size();
      SP.StartStep = K;
      SP.Mask = Mask;
      SP.Verify = [&](const MachineState &FS, uint64_t Idx) {
        return Idx < U.States.size() && FS == U.States[Idx];
      };
      RunStatus St = LE.scalar().runContinuation(
          S, P.exitAddress(), Budget, StepPolicy(),
          [&](const QueueEntry &E) { ScalarOut.push_back(E); }, &SP);

      std::string At2 = std::string(Name) + " step " + std::to_string(K) +
                        " lane " + std::to_string(At + L) + " width " +
                        std::to_string(Width);
      ASSERT_EQ(Outs[L].Status, St) << At2;
      ASSERT_EQ(LaneOuts[L], ScalarOut) << At2;
      ASSERT_TRUE(Group[L] == S) << At2;
      PC.Deviated += Outs[L].Deviated;
      PC.Detected += St == RunStatus::FaultDetected;
      PC.Converged += St == RunStatus::Converged;
    }
  }
}

// Contract 1: multi-lane groups are observably identical to per-lane
// scalar runs, across every program, several resume boundaries and probe
// masks — and the sweep genuinely exercises deviation (a lane leaving the
// lockstep group at a divergent control transfer), mid-group cross-check
// detection, and probed convergence.
TEST(LaneEngine, GroupsMatchScalarLaneByLane) {
  PathCounts PC;
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    UnrolledRun U = unroll(P, StepPolicy());
    for (uint64_t K : boundaries(U, 3)) {
      std::vector<MachineState> Lanes = injectedLanes(P, U.States[K]);
      ASSERT_FALSE(Lanes.empty());
      compareGroupsToScalar(NP.Name, P, U, K, Lanes, 8, 3, PC);
    }
  }
  // The interesting retirement paths fired somewhere in the sweep. (No
  // deviation expectation here: under a *single* fault the green/blue
  // pairing turns every control-flow disagreement into a cross-check
  // detection before the group pc could split — the dedicated divergence
  // test below forces the fallback path with legitimately disagreeing
  // lanes instead.)
  EXPECT_GT(PC.Detected, 0u);
  EXPECT_GT(PC.Converged, 0u);
}

// The control-flow split: lanes from different iterations of the same
// loop share a pc pair but disagree — legitimately, in both colors — on
// the loop-exit branch, so the group must split at the blue transfer and
// finish the minority lane on the scalar fallback, bit-exactly.
TEST(LaneEngine, DivergentBranchFallsBackToScalar) {
  TypeContext TC;
  NamedProgram NP{"divergent", progs::CountdownLoop, true};
  Program P = parseOrDie(TC, NP);
  UnrolledRun U = unroll(P, StepPolicy());

  // Collect boundary states that share their program counters: loop
  // iterations passing the same static point with different counters.
  std::map<int64_t, std::vector<uint64_t>> ByPc;
  for (uint64_t K = 0; K < U.Steps; ++K)
    if (!U.States[K].IR)
      ByPc[U.States[K].Regs.get(Reg::pcG()).N].push_back(K);
  std::vector<MachineState> Lanes;
  for (const auto &[Pc, Ks] : ByPc)
    if (Ks.size() > Lanes.size()) {
      Lanes.clear();
      for (uint64_t K : Ks) {
        Lanes.push_back(U.States[K]);
        if (Lanes.size() == 4)
          break;
      }
    }
  ASSERT_GE(Lanes.size(), 2u) << "no revisited boundary pc in the loop";

  vm::LaneEngine LE(P.code());
  unsigned N = (unsigned)Lanes.size();
  std::vector<MachineState> Group = Lanes;
  std::vector<OutputTrace> LaneOuts(N);
  std::vector<LaneOutcome> Outs(N);
  LaneGroupSpec Spec;
  Spec.ExitAddr = P.exitAddress();
  Spec.Budget = U.Steps + 64;
  Spec.OnOutput = [&](unsigned L, const QueueEntry &E) {
    LaneOuts[L].push_back(E);
  };
  LE.run(Group.data(), N, Spec, Outs.data());

  uint64_t Deviated = 0;
  for (unsigned L = 0; L != N; ++L) {
    MachineState S = Lanes[L];
    OutputTrace ScalarOut;
    RunStatus St = LE.scalar().runContinuation(
        S, P.exitAddress(), Spec.Budget, StepPolicy(),
        [&](const QueueEntry &E) { ScalarOut.push_back(E); }, nullptr);
    EXPECT_EQ(Outs[L].Status, St) << "lane " << L;
    EXPECT_EQ(St, RunStatus::Halted) << "lane " << L;
    EXPECT_EQ(LaneOuts[L], ScalarOut) << "lane " << L;
    EXPECT_TRUE(Group[L] == S) << "lane " << L;
    Deviated += Outs[L].Deviated;
  }
  // The lanes genuinely disagreed on a transfer: at least one left the
  // lockstep group (and not all of them — the group survived the split).
  EXPECT_GT(Deviated, 0u);
  EXPECT_LT(Deviated, N);
}

// Contract 2: a width-1 group is the degenerate case — still bit-exact,
// with the per-boundary probe (mask 0 probes every boundary, stressing
// the deferred-fingerprint flush on minimal windows).
TEST(LaneEngine, WidthOneMatchesScalar) {
  PathCounts PC;
  for (const char *Source : {progs::PairedStore, progs::CountdownLoop}) {
    NamedProgram NP{"width1", Source, true};
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    UnrolledRun U = unroll(P, StepPolicy());
    for (uint64_t K : boundaries(U, 2))
      compareGroupsToScalar(NP.Name, P, U, K, injectedLanes(P, U.States[K]),
                            1, 0, PC);
  }
}

// Contract 3a: the copy-on-write shared-memory path (lanes arrive with
// empty memories against LaneGroupSpec::SharedMem) is observably
// identical to giving every lane a private copy up front, and the shared
// base is never mutated by the run.
TEST(LaneEngine, SharedMemoryCopyOnWriteMatchesPrivateCopies) {
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    UnrolledRun U = unroll(P, StepPolicy());
    uint64_t K = boundaries(U, 2).back();
    const MachineState &Base = U.States[K];
    std::vector<MachineState> Private = injectedLanes(P, Base);
    unsigned N = (unsigned)std::min<size_t>(Private.size(), 16);
    Private.resize(N);

    // The shared variant: same faults, memories emptied.
    std::vector<MachineState> Shared = Private;
    for (MachineState &S : Shared)
      S.Mem = ValueMemory();

    vm::LaneEngine LE(P.code());
    LaneGroupSpec Spec;
    Spec.ExitAddr = P.exitAddress();
    Spec.Budget = U.Steps - K + 64;

    std::vector<LaneOutcome> OutP(N), OutS(N);
    std::vector<MachineState> RanP = Private;
    LE.run(RanP.data(), N, Spec, OutP.data());

    uint64_t BaseFpBefore = Base.Mem.fingerprint();
    Spec.SharedMem = &Base.Mem;
    LE.run(Shared.data(), N, Spec, OutS.data());
    EXPECT_EQ(Base.Mem.fingerprint(), BaseFpBefore) << NP.Name;

    for (unsigned L = 0; L != N; ++L) {
      std::string At = std::string(NP.Name) + " lane " + std::to_string(L);
      EXPECT_EQ(OutS[L].Status, OutP[L].Status) << At;
      // Handed-back states always carry a materialized memory.
      EXPECT_TRUE(Shared[L] == RanP[L]) << At;
    }
  }
}

// Contract 3b: a scratch lane bank reused across groups (the campaign's
// per-block amortization) behaves exactly like a fresh bank per group,
// including when the groups are narrower than the bank.
TEST(LaneEngine, ScratchBankReuseMatchesFreshBank) {
  TypeContext TC;
  NamedProgram NP{"scratch", progs::CountdownLoop, true};
  Program P = parseOrDie(TC, NP);
  UnrolledRun U = unroll(P, StepPolicy());
  uint64_t K = boundaries(U, 1).front();
  std::vector<MachineState> Lanes = injectedLanes(P, U.States[K]);
  ASSERT_GE(Lanes.size(), 8u);

  vm::LaneEngine LE(P.code());
  LaneGroupSpec Spec;
  Spec.ExitAddr = P.exitAddress();
  Spec.Budget = U.Steps - K + 64;

  vm::LaneState Scratch(8);
  size_t At = 0;
  for (unsigned N : {5u, 3u, 8u}) {
    if (At + N > Lanes.size())
      break;
    std::vector<MachineState> Reused(Lanes.begin() + At,
                                     Lanes.begin() + At + N);
    std::vector<MachineState> Fresh = Reused;
    std::vector<LaneOutcome> OutR(N), OutF(N);
    LE.run(Reused.data(), N, Spec, OutR.data(), Scratch);
    LE.run(Fresh.data(), N, Spec, OutF.data());
    for (unsigned L = 0; L != N; ++L) {
      EXPECT_EQ(OutR[L].Status, OutF[L].Status) << "lane " << At + L;
      EXPECT_TRUE(Reused[L] == Fresh[L]) << "lane " << At + L;
    }
    At += N;
  }
}

// Contract 4a: raw-semantics campaigns fold bit-identically with and
// without lanes, across widths, engines, thread counts, resume modes and
// convergence — and the lane statistics show the batched path ran.
TEST(LaneFold, SingleFaultCampaignsBitIdentical) {
  uint64_t TotalLaneTasks = 0;
  for (const NamedProgram &NP : allPrograms()) {
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());
    TheoremConfig Config;
    Config.InjectionStride = 2; // keep the exhaustive sweep unit-sized

    for (bool Converge : {false, true}) {
      CampaignOptions Base;
      Base.Converge = Converge;
      Base.Lanes = false;
      CampaignResult Baseline = runSingleFaultCampaign(P, Config, Base);
      EXPECT_FALSE(Baseline.Stats.Lanes) << NP.Name;
      EXPECT_EQ(Baseline.Stats.LaneTasks, 0u) << NP.Name;

      struct Combo {
        unsigned Width;
        const ExecEngine *E;
        unsigned Threads;
        ResumeMode Resume;
      };
      const Combo Combos[] = {
          {1, nullptr, 1, ResumeMode::Snapshot},
          {4, Vm.get(), 8, ResumeMode::Replay},
          {16, nullptr, 8, ResumeMode::Snapshot},
          {64, Vm.get(), 1, ResumeMode::Snapshot},
      };
      for (const Combo &C : Combos) {
        CampaignOptions Opts;
        Opts.Converge = Converge;
        Opts.Lanes = true;
        Opts.LaneWidth = C.Width;
        Opts.Engine = C.E;
        Opts.Threads = C.Threads;
        Opts.Resume = C.Resume;
        CampaignResult R = runSingleFaultCampaign(P, Config, Opts);
        std::string At = std::string(NP.Name) +
                         (Converge ? "/conv" : "/noconv") + " width=" +
                         std::to_string(C.Width) + " engine=" +
                         R.Stats.Engine + " threads=" +
                         std::to_string(C.Threads);
        EXPECT_EQ(R.Ok, Baseline.Ok) << At;
        EXPECT_EQ(R.ReferenceSteps, Baseline.ReferenceSteps) << At;
        EXPECT_EQ(R.ReferenceTrace, Baseline.ReferenceTrace) << At;
        EXPECT_EQ(R.Table, Baseline.Table) << At;
        EXPECT_EQ(R.Violations, Baseline.Violations) << At;
        EXPECT_TRUE(R.Stats.Lanes) << At;
        EXPECT_EQ(R.Stats.LaneWidth, C.Width) << At;
        TotalLaneTasks += R.Stats.LaneTasks;
      }
    }
  }
  // The batched path actually classified continuations somewhere.
  EXPECT_GT(TotalLaneTasks, 0u);
}

// Contract 4b: the typed entry point with pruning — the Masked /
// StaticallyMasked split depends on pruning, never on lanes.
TEST(LaneFold, PrunedFaultToleranceCampaignsBitIdentical) {
  for (const NamedProgram &NP : allPrograms()) {
    if (!NP.WellTyped)
      continue;
    TypeContext TC;
    Program P = parseOrDie(TC, NP);
    DiagnosticEngine Diags;
    Expected<CheckedProgram> CP = checkProgram(TC, P, Diags);
    ASSERT_TRUE(bool(CP)) << NP.Name << ": " << Diags.str();
    std::unique_ptr<ExecEngine> Vm = vm::createEngine(P.code());
    TheoremConfig Config;
    Config.InjectionStride = 2;

    for (bool Prune : {false, true}) {
      CampaignOptions Base;
      Base.Prune = Prune;
      Base.Lanes = false;
      CampaignResult Baseline =
          runFaultToleranceCampaign(TC, *CP, Config, Base);

      CampaignOptions Opts;
      Opts.Prune = Prune;
      Opts.Lanes = true;
      Opts.LaneWidth = 4;
      Opts.Engine = Vm.get();
      Opts.Threads = 8;
      CampaignResult R = runFaultToleranceCampaign(TC, *CP, Config, Opts);

      std::string At =
          std::string(NP.Name) + (Prune ? "/pruned" : "/unpruned");
      EXPECT_EQ(R.Ok, Baseline.Ok) << At;
      EXPECT_EQ(R.Table, Baseline.Table) << At;
      EXPECT_EQ(R.Violations, Baseline.Violations) << At;
      EXPECT_TRUE(R.Ok) << At;
    }
  }
}

// Contract 5: the explicit-plan API — the double-fault ablation's path.
// Plan campaigns ignore lanes, and convergence acceleration must not
// change a verdict there either: every {Converge, Lanes} combination of
// the ablation's cross-color double-fault sweep folds bit-identically
// (the regression pin for `ablation_double_fault --no-converge`).
TEST(LaneFold, DoubleFaultPlansIgnoreLanesAndConverge) {
  TypeContext TC;
  NamedProgram NP{"plans", progs::PairedStore, true};
  Program P = parseOrDie(TC, NP);
  PlanCampaign Spec;
  Spec.Prog = &P;
  CampaignResult Probe = runInjectionPlans(Spec, CampaignOptions());
  ASSERT_TRUE(Probe.Ok);
  for (uint64_t S1 = 0; S1 <= Probe.ReferenceSteps; S1 += 2)
    for (uint64_t S2 = S1; S2 <= Probe.ReferenceSteps; S2 += 2)
      Spec.Plans.push_back({{S1, FaultSite::reg(Reg::general(1)), 99},
                            {S2, FaultSite::reg(Reg::general(3)), 99}});

  CampaignOptions First;
  First.Converge = false;
  First.Lanes = false;
  CampaignResult Baseline = runInjectionPlans(Spec, First);
  EXPECT_GT(Baseline.Table.total(), 0u);
  EXPECT_FALSE(Baseline.Stats.Lanes);

  for (bool Converge : {false, true})
    for (bool Lanes : {false, true})
      for (unsigned Threads : {1u, 4u}) {
        CampaignOptions Opts;
        Opts.Converge = Converge;
        Opts.Lanes = Lanes;
        Opts.Threads = Threads;
        CampaignResult R = runInjectionPlans(Spec, Opts);
        std::string At = std::string("converge=") +
                         (Converge ? "1" : "0") + " lanes=" +
                         (Lanes ? "1" : "0") + " threads=" +
                         std::to_string(Threads);
        EXPECT_EQ(R.Ok, Baseline.Ok) << At;
        EXPECT_EQ(R.Table, Baseline.Table) << At;
        EXPECT_EQ(R.Violations, Baseline.Violations) << At;
      }
}

} // namespace
