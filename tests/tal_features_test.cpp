//===- tests/tal_features_test.cpp - Deeper TALFT feature coverage --------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Programs exercising the less-traveled corners of the type system:
// conditional destination-register types flowing across block boundaries
// (a bzG in one block, the matching bzB in the next), literal pc
// preconditions, and a split store whose green half and blue half live in
// different blocks on *both* sides of a conditional.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "fault/Theorems.h"
#include "sim/Machine.h"
#include "tal/Parser.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

/// bzG and bzB separated by a block boundary: the intermediate block's
/// precondition carries the conditional type on d. The branch test value
/// is a parameter so both the taken and untaken paths get a program.
std::string conditionalAcrossBlocks(int64_t TestValue) {
  std::string V = std::to_string(TestValue);
  return R"(
entry main
exit done
data { 600: int = 0 }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G )" + V + R"(
  mov r2, B )" + V + R"(
  mov r3, G @target
  mov r4, B @target
  bzG r1, r3
}
block mid {
  pre { forall z: int, t: int, m: mem;
        r2: (B, int, z);
        r4: (B, code(@target), t);
        d: z = 0 => (G, code(@target), t);
        queue []; mem m }
  bzB r2, r4
  mov r5, G 600
  mov r6, G 1
  stG r5, r6
  mov r7, B 600
  mov r8, B 1
  stB r7, r8
  mov r10, G @done
  mov r11, B @done
  jmpG r10
  jmpB r11
}
block target {
  pre { forall m: mem; queue []; mem m }
  mov r5, G 600
  mov r6, G 2
  stG r5, r6
  mov r7, B 600
  mov r8, B 2
  stB r7, r8
  mov r10, G @done
  mov r11, B @done
  jmpG r10
  jmpB r11
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
}

struct Loaded {
  TypeContext TC;
  DiagnosticEngine Diags;
  std::optional<Program> Prog;
  std::optional<CheckedProgram> CP;

  void load(const std::string &Source) {
    Expected<Program> P = parseAndLayoutTalProgram(TC, Source, Diags);
    ASSERT_TRUE(P) << P.message();
    Prog.emplace(std::move(*P));
    Expected<CheckedProgram> C = checkProgram(TC, *Prog, Diags);
    ASSERT_TRUE(C) << Diags.str();
    CP.emplace(std::move(*C));
  }
};

class ConditionalAcrossBlocks : public ::testing::TestWithParam<int64_t> {};

TEST_P(ConditionalAcrossBlocks, TypeChecksRunsAndTolerates) {
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(conditionalAcrossBlocks(GetParam())));
  Expected<MachineState> S = L.Prog->initialState();
  ASSERT_TRUE(S) << S.message();
  RunResult R = run(*S, L.Prog->exitAddress(), 1000);
  ASSERT_EQ(R.Status, RunStatus::Halted);
  ASSERT_EQ(R.Trace.size(), 1u);
  // Taken (test value 0) stores 2; untaken stores 1.
  EXPECT_EQ(R.Trace[0].Val, GetParam() == 0 ? 2 : 1);

  TheoremReport FaultFree =
      checkFaultFreeExecution(L.TC, *L.CP, TheoremConfig());
  EXPECT_TRUE(FaultFree.Ok)
      << (FaultFree.Violations.empty() ? "?" : FaultFree.Violations.front());
  TheoremReport FT = checkFaultTolerance(L.TC, *L.CP, TheoremConfig());
  EXPECT_TRUE(FT.Ok) << (FT.Violations.empty() ? "?"
                                               : FT.Violations.front());
}

INSTANTIATE_TEST_SUITE_P(TakenAndUntaken, ConditionalAcrossBlocks,
                         ::testing::Values(0, 1, 7));

TEST(TalFeatures, ConditionalDMismatchedGuardRejected) {
  // The mid block claims the branch test was a *different* expression
  // than the actual bzG test value: the fall-through must fail.
  const char *Src = R"(
entry main
exit done
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 1
  mov r2, B 2
  mov r3, G @target
  mov r4, B @target
  bzG r1, r3
}
block mid {
  pre { forall z: int, t: int, m: mem;
        r2: (B, int, z);
        r4: (B, code(@target), t);
        d: z = 0 => (G, code(@target), t);
        queue []; mem m }
  bzB r2, r4
  mov r10, G @done
  mov r11, B @done
  jmpG r10
  jmpB r11
}
block target {
  pre { forall m: mem; queue []; mem m }
  mov r10, G @done
  mov r11, B @done
  jmpG r10
  jmpB r11
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  // z binds to r2's singleton (2) but the pending guard is r1's (1).
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P = parseAndLayoutTalProgram(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  EXPECT_FALSE(checkProgram(TC, *P, Diags));
}

TEST(TalFeatures, LiteralPcPreconditionMatchesItsAddress) {
  // A block may pin its pc to the literal address it is laid out at
  // (main = address 1, so next = 1 + 4 = 5).
  const char *Src = R"(
entry main
exit done
block main {
  pre { forall m: mem; queue []; mem m }
  mov r10, G @next
  mov r11, B @next
  jmpG r10
  jmpB r11
}
block next {
  pre { forall m: mem; pc 5; queue []; mem m }
  mov r10, G @done
  mov r11, B @done
  jmpG r10
  jmpB r11
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  Loaded L;
  ASSERT_NO_FATAL_FAILURE(L.load(Src));
  EXPECT_EQ(L.Prog->addressOf("next"), 5);
}

TEST(TalFeatures, LiteralPcPreconditionAtWrongAddressRejected) {
  const char *Src = R"(
entry main
exit done
block main {
  pre { forall m: mem; queue []; mem m }
  mov r10, G @next
  mov r11, B @next
  jmpG r10
  jmpB r11
}
block next {
  pre { forall m: mem; pc 99; queue []; mem m }
  mov r10, G @done
  mov r11, B @done
  jmpG r10
  jmpB r11
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P = parseAndLayoutTalProgram(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  EXPECT_FALSE(checkProgram(TC, *P, Diags));
  EXPECT_NE(Diags.str().find("program-counter"), std::string::npos)
      << Diags.str();
}

} // namespace
