//===- tests/normalize_test.cpp - Equality decision procedure tests -------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "sexpr/ExprNormalize.h"
#include "sexpr/ExprOps.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

class NormalizeTest : public ::testing::Test {
protected:
  ExprContext Es;
  const Expr *X = Es.var("x", ExprKind::Int);
  const Expr *Y = Es.var("y", ExprKind::Int);
  const Expr *M = Es.var("m", ExprKind::Mem);

  const Expr *add(const Expr *A, const Expr *B) {
    return Es.binop(Opcode::Add, A, B);
  }
  const Expr *sub(const Expr *A, const Expr *B) {
    return Es.binop(Opcode::Sub, A, B);
  }
  const Expr *mul(const Expr *A, const Expr *B) {
    return Es.binop(Opcode::Mul, A, B);
  }
  const Expr *c(int64_t N) { return Es.intConst(N); }
};

TEST_F(NormalizeTest, ConstantFolding) {
  EXPECT_EQ(normalize(Es, add(c(2), c(3))), c(5));
  EXPECT_EQ(normalize(Es, mul(c(4), c(5))), c(20));
  EXPECT_EQ(normalize(Es, sub(c(4), c(9))), c(-5));
}

TEST_F(NormalizeTest, CommutativityOfAddition) {
  EXPECT_EQ(normalize(Es, add(X, Y)), normalize(Es, add(Y, X)));
}

TEST_F(NormalizeTest, AssociativityAndConstantGathering) {
  // (x + 1) + 2 = x + 3
  EXPECT_EQ(normalize(Es, add(add(X, c(1)), c(2))),
            normalize(Es, add(X, c(3))));
  // 1 + (x + (2 + y)) = (y + x) + 3
  EXPECT_EQ(normalize(Es, add(c(1), add(X, add(c(2), Y)))),
            normalize(Es, add(add(Y, X), c(3))));
}

TEST_F(NormalizeTest, SubtractionAsNegation) {
  // (x + 5) - 5 = x
  EXPECT_EQ(normalize(Es, sub(add(X, c(5)), c(5))), X);
  // x - x = 0
  EXPECT_EQ(normalize(Es, sub(X, X)), c(0));
  // (x + y) - y = x
  EXPECT_EQ(normalize(Es, sub(add(X, Y), Y)), X);
}

TEST_F(NormalizeTest, CoefficientMerging) {
  // x + x = 2 * x; 3*x - x = 2*x
  EXPECT_EQ(normalize(Es, add(X, X)), normalize(Es, sub(mul(c(3), X), X)));
  // 2*x - 2*x = 0
  EXPECT_EQ(normalize(Es, sub(mul(c(2), X), mul(c(2), X))), c(0));
}

TEST_F(NormalizeTest, ProductsCommute) {
  EXPECT_EQ(normalize(Es, mul(X, Y)), normalize(Es, mul(Y, X)));
  EXPECT_EQ(normalize(Es, mul(mul(X, c(3)), Y)),
            normalize(Es, mul(c(3), mul(Y, X))));
}

TEST_F(NormalizeTest, MulByZeroAndOne) {
  EXPECT_EQ(normalize(Es, mul(X, c(0))), c(0));
  EXPECT_EQ(normalize(Es, mul(X, c(1))), X);
}

TEST_F(NormalizeTest, SelOverUpdSameAddress) {
  const Expr *U = Es.upd(M, X, Y);
  EXPECT_EQ(normalize(Es, Es.sel(U, X)), Y);
}

TEST_F(NormalizeTest, SelOverUpdDistinctConstants) {
  const Expr *U = Es.upd(M, c(4), Y);
  EXPECT_EQ(normalize(Es, Es.sel(U, c(8))), Es.sel(M, c(8)));
}

TEST_F(NormalizeTest, SelOverUpdDistinctByOffset) {
  // Addresses x and x+4 are provably distinct: the difference is 4.
  const Expr *U = Es.upd(M, add(X, c(4)), Y);
  EXPECT_EQ(normalize(Es, Es.sel(U, X)), Es.sel(M, X));
}

TEST_F(NormalizeTest, SelOverUpdUnknownAliasingStays) {
  const Expr *U = Es.upd(M, X, c(1));
  const Expr *S = normalize(Es, Es.sel(U, Y));
  EXPECT_TRUE(S->isSel());
  EXPECT_TRUE(S->child0()->isUpd());
}

TEST_F(NormalizeTest, SelThroughNormalizedAddress) {
  // sel (upd m (x+1) y) (1+x) resolves: the addresses are equal.
  const Expr *U = Es.upd(M, add(X, c(1)), Y);
  EXPECT_EQ(normalize(Es, Es.sel(U, add(c(1), X))), Y);
}

TEST_F(NormalizeTest, UpdShadowing) {
  // upd (upd m 4 a) 4 b = upd m 4 b (the outer update wins).
  const Expr *Inner = Es.upd(M, c(4), X);
  const Expr *Outer = Es.upd(Inner, c(4), Y);
  EXPECT_EQ(normalize(Es, Outer), normalize(Es, Es.upd(M, c(4), Y)));
}

TEST_F(NormalizeTest, UpdCommutingDistinctAddresses) {
  const Expr *A = Es.upd(Es.upd(M, c(4), X), c(8), Y);
  const Expr *B = Es.upd(Es.upd(M, c(8), Y), c(4), X);
  EXPECT_EQ(normalize(Es, A), normalize(Es, B));
}

TEST_F(NormalizeTest, UpdUnknownAliasingDoesNotCommute) {
  const Expr *A = Es.upd(Es.upd(M, X, c(1)), Y, c(2));
  const Expr *B = Es.upd(Es.upd(M, Y, c(2)), X, c(1));
  // x and y may alias; the two chains must stay distinct.
  EXPECT_NE(normalize(Es, A), normalize(Es, B));
}

TEST_F(NormalizeTest, IdempotentOnNormalForms) {
  const Expr *E = normalize(Es, add(add(X, c(1)), mul(Y, c(2))));
  EXPECT_EQ(normalize(Es, E), E);
}

// --- compareEqual: the three-valued judgment --------------------------

TEST_F(NormalizeTest, ProvablyEqualBasics) {
  EXPECT_TRUE(provablyEqual(Es, add(X, c(1)), add(c(1), X)));
  EXPECT_TRUE(provablyEqual(Es, X, X));
  EXPECT_TRUE(provablyEqual(Es, sub(add(X, Y), Y), X));
}

TEST_F(NormalizeTest, ProvablyDistinctByConstantDifference) {
  EXPECT_TRUE(provablyDistinct(Es, X, add(X, c(1))));
  EXPECT_TRUE(provablyDistinct(Es, c(4), c(5)));
  EXPECT_EQ(compareEqual(Es, X, Y), Proof::Unknown);
}

TEST_F(NormalizeTest, MemoryEquality) {
  const Expr *A = Es.upd(Es.upd(M, c(4), X), c(8), Y);
  const Expr *B = Es.upd(Es.upd(M, c(8), Y), c(4), X);
  EXPECT_EQ(compareEqual(Es, A, B), Proof::Yes);
  EXPECT_EQ(compareEqual(Es, A, M), Proof::Unknown);
}

TEST_F(NormalizeTest, WrappingArithmetic) {
  // Coefficient arithmetic must wrap like the machine's.
  const Expr *Big = c(INT64_MAX);
  EXPECT_EQ(normalize(Es, add(Big, c(1))), c(INT64_MIN));
  EXPECT_EQ(normalize(Es, mul(c(INT64_MIN), c(-1))), c(INT64_MIN));
}

// Parameterized sweep: normalization agrees with evaluation on closed
// expressions built from a seed grammar.
class NormalizeEvalAgreement : public ::testing::TestWithParam<int> {};

TEST_P(NormalizeEvalAgreement, ClosedExpressionsNormalizeToTheirValue) {
  ExprContext Es;
  int Seed = GetParam();
  // Deterministically build a closed expression from the seed.
  int64_t A = Seed % 7 - 3, B = (Seed / 7) % 5 - 2, C = (Seed / 35) % 3;
  const Expr *E = Es.binop(
      Opcode::Add,
      Es.binop(Opcode::Mul, Es.intConst(A), Es.intConst(B)),
      Es.binop(Opcode::Sub, Es.intConst(C), Es.intConst(A)));
  const Expr *N = normalize(Es, E);
  ASSERT_TRUE(N->isIntConst());
  EXPECT_EQ(N->intValue(), *evalInt(E));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizeEvalAgreement,
                         ::testing::Range(0, 105));

} // namespace
