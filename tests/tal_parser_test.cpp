//===- tests/tal_parser_test.cpp - Assembly parser tests ------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "tal/Parser.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

TEST(ParserTest, ParsesThePairedStoreExample) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P = parseTalProgram(TC, progs::PairedStore, Diags);
  ASSERT_TRUE(P) << P.message();
  EXPECT_EQ(P->EntryLabel, "main");
  EXPECT_EQ(P->ExitLabel, "done");
  ASSERT_EQ(P->blocks().size(), 2u);
  EXPECT_EQ(P->blocks()[0].Label, "main");
  EXPECT_EQ(P->blocks()[0].Insts.size(), 10u);
  ASSERT_EQ(P->data().size(), 1u);
  EXPECT_EQ(P->data()[0].Address, 256);
  EXPECT_TRUE(P->data()[0].Type->isInt());
}

TEST(ParserTest, LayoutAssignsConsecutiveAddressesFromOne) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P =
      parseAndLayoutTalProgram(TC, progs::PairedStore, Diags);
  ASSERT_TRUE(P) << P.message();
  EXPECT_EQ(P->addressOf("main"), 1);
  EXPECT_EQ(P->addressOf("done"), 11);
  EXPECT_EQ(P->entryAddress(), 1);
  EXPECT_EQ(P->exitAddress(), 11);
  EXPECT_EQ(P->code().size(), 14u);
}

TEST(ParserTest, LabelImmediatesResolve) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P =
      parseAndLayoutTalProgram(TC, progs::PairedStore, Diags);
  ASSERT_TRUE(P) << P.message();
  // Instruction 7 of main is "mov r5, G @done".
  const Inst &I = P->code().get(7);
  EXPECT_EQ(I.Op, Opcode::Mov);
  EXPECT_EQ(I.Imm, Value::green(11));
}

TEST(ParserTest, PreconditionDefaults) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
entry main
block main {
  mov r1, G 1
  mov r2, G @main
  mov r3, B @main
  jmpG r2
  jmpB r3
}
)";
  Expected<Program> P = parseTalProgram(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  const StaticContext &Pre = *P->blocks()[0].Pre;
  // Auto pc and memory variables plus the d:(G,int,0) default.
  ASSERT_NE(Pre.Pc, nullptr);
  EXPECT_TRUE(Pre.Pc->isVar());
  ASSERT_NE(Pre.MemExpr, nullptr);
  EXPECT_TRUE(Pre.MemExpr->isVar());
  const RegType *D = Pre.Gamma.lookup(Reg::dest());
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->C, Color::Green);
  EXPECT_TRUE(D->B->isInt());
  EXPECT_TRUE(Pre.Queue.empty());
}

TEST(ParserTest, ConditionalRegisterTypes) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
entry main
block main {
  pre { forall z: int, t: int, m: mem;
        d: z = 0 => (G, code(@main), t);
        mem m }
  mov r1, G 1
  mov r2, G @main
  mov r3, B @main
  jmpG r2
  jmpB r3
}
)";
  // This precondition is unusual (d conditional at entry) but must parse.
  Expected<Program> P = parseTalProgram(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  const RegType *D = P->blocks()[0].Pre->Gamma.lookup(Reg::dest());
  ASSERT_NE(D, nullptr);
  EXPECT_TRUE(D->isConditional());
  EXPECT_TRUE(D->B->isCode());
}

TEST(ParserTest, QueueDescriptorsParseFrontFirst) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
entry main
block main {
  pre { forall a: int, b: int, m: mem;
        queue [(a, 1), (b, 2)];
        mem m }
  mov r1, G 1
  mov r2, G @main
  mov r3, B @main
  jmpG r2
  jmpB r3
}
)";
  Expected<Program> P = parseTalProgram(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  const QueueType &Q = P->blocks()[0].Pre->Queue;
  ASSERT_EQ(Q.size(), 2u);
  EXPECT_EQ(Q.entry(0).AddrE->varName(), "a");
  EXPECT_EQ(Q.entry(1).AddrE->varName(), "b");
}

TEST(ParserTest, ForwardCodeTypeReferencesKeepBlockOrder) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
entry first
data { 300: code(@second) = @second }
block first {
  mov r1, G 300
  ldG r2, r1
  mov r3, B 300
  ldB r4, r3
  jmpG r2
  jmpB r4
}
block second {
  mov r1, G @second
  mov r2, B @second
  jmpG r1
  jmpB r2
}
)";
  Expected<Program> P = parseAndLayoutTalProgram(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  EXPECT_EQ(P->blocks()[0].Label, "first");
  EXPECT_EQ(P->blocks()[1].Label, "second");
  EXPECT_EQ(P->addressOf("first"), 1);
  // The data cell initializer resolved to second's address.
  EXPECT_EQ(P->data()[0].Init, P->addressOf("second"));
}

TEST(ParserTest, ErrorOnUnknownMnemonic) {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> P =
      parseTalProgram(TC, "block b { frobnicate r1 }", Diags);
  EXPECT_FALSE(P);
  EXPECT_NE(Diags.str().find("frobnicate"), std::string::npos);
}

TEST(ParserTest, ErrorOnUndeclaredVariable) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
block b { pre { r1: (G, int, nope); } mov r1, G 1 }
)";
  Expected<Program> P = parseTalProgram(TC, Src, Diags);
  EXPECT_FALSE(P);
  EXPECT_NE(Diags.str().find("nope"), std::string::npos);
}

TEST(ParserTest, ErrorOnDuplicateBlock) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = "block b { mov r1, G 1 } block b { mov r1, G 1 }";
  EXPECT_FALSE(parseTalProgram(TC, Src, Diags));
}

TEST(ParserTest, ErrorOnUnknownLabelImmediate) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = "entry b\nblock b { mov r1, G @nowhere }";
  Expected<Program> P = parseTalProgram(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  EXPECT_FALSE(P->layout(Diags));
  EXPECT_NE(Diags.str().find("nowhere"), std::string::npos);
}

TEST(ParserTest, ErrorOnOverlappingData) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
data { 100: int = 1
       100: int = 2 }
block b { mov r1, G 1 }
)";
  Expected<Program> P = parseTalProgram(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  EXPECT_FALSE(P->layout(Diags));
}

TEST(ParserTest, DataCellOverlappingCodeIsRejected) {
  TypeContext TC;
  DiagnosticEngine Diags;
  const char *Src = R"(
data { 1: int = 1 }
block b { mov r1, G 1 }
)";
  Expected<Program> P = parseTalProgram(TC, Src, Diags);
  ASSERT_TRUE(P) << P.message();
  EXPECT_FALSE(P->layout(Diags));
}

} // namespace
