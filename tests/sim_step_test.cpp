//===- tests/sim_step_test.cpp - Operational semantics rule tests ---------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// One test per operational rule of Figures 2-4 and Appendix A.1, driving
// hand-built machine states through single steps.
//
//===----------------------------------------------------------------------===//

#include "sim/Step.h"

#include <gtest/gtest.h>

using namespace talft;

namespace {

Reg R(unsigned I) { return Reg::general(I); }

/// Fixture with a small code memory and a state positioned at address 1.
class StepTest : public ::testing::Test {
protected:
  CodeMemory Code;
  MachineState S;

  /// Installs a single instruction at address 1 and loads it into IR.
  void setInst(Inst I) {
    Code.set(1, I);
    S = MachineState(Code, 1);
    S.IR = I;
  }

  StepResult exec(Inst I) {
    setInst(I);
    return step(S);
  }
};

TEST_F(StepTest, FetchLoadsInstruction) {
  Inst I = Inst::mov(R(1), Value::green(5));
  Code.set(1, I);
  S = MachineState(Code, 1);
  StepResult SR = step(S);
  EXPECT_EQ(SR.Status, StepStatus::Ok);
  EXPECT_STREQ(SR.Rule, "fetch");
  ASSERT_TRUE(S.IR);
  EXPECT_EQ(*S.IR, I);
  // Fetch does not advance the program counters.
  EXPECT_EQ(S.pcG().N, 1);
}

TEST_F(StepTest, FetchFailOnDisagreeingPCs) {
  Code.set(1, Inst::mov(R(1), Value::green(5)));
  S = MachineState(Code, 1);
  S.Regs.set(Reg::pcG(), Value::green(2));
  StepResult SR = step(S);
  EXPECT_EQ(SR.Status, StepStatus::Fault);
  EXPECT_STREQ(SR.Rule, "fetch-fail");
  EXPECT_TRUE(S.isFault());
}

TEST_F(StepTest, FetchFromUndefinedAddressIsStuck) {
  Code.set(1, Inst::mov(R(1), Value::green(5)));
  S = MachineState(Code, 99);
  EXPECT_EQ(step(S).Status, StepStatus::Stuck);
}

TEST_F(StepTest, Op2rTakesSecondOperandColor) {
  Code.set(1, Inst::alu(Opcode::Add, R(3), R(1), R(2)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::green(2));
  S.Regs.set(R(2), Value::blue(3));
  S.IR = Code.get(1);
  StepResult SR = step(S);
  EXPECT_STREQ(SR.Rule, "op2r");
  // Rule op2r: result color is Rcol(rt).
  EXPECT_EQ(S.Regs.get(R(3)), Value::blue(5));
  EXPECT_EQ(S.pcG().N, 2);
  EXPECT_EQ(S.pcB().N, 2);
  EXPECT_FALSE(S.IR);
}

TEST_F(StepTest, Op1rTakesImmediateColor) {
  Code.set(1, Inst::aluImm(Opcode::Mul, R(3), R(1), Value::blue(4)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::green(5));
  S.IR = Code.get(1);
  StepResult SR = step(S);
  EXPECT_STREQ(SR.Rule, "op1r");
  EXPECT_EQ(S.Regs.get(R(3)), Value::blue(20));
}

TEST_F(StepTest, MovLoadsImmediate) {
  StepResult SR = exec(Inst::mov(R(7), Value::blue(-9)));
  EXPECT_STREQ(SR.Rule, "mov");
  EXPECT_EQ(S.Regs.get(R(7)), Value::blue(-9));
  EXPECT_EQ(S.pcG().N, 2);
}

TEST_F(StepTest, StGPushesOntoQueueFront) {
  Code.set(1, Inst::st(Color::Green, R(1), R(2)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::green(100));
  S.Regs.set(R(2), Value::green(42));
  S.Queue.pushFront({200, 7}); // pre-existing entry
  S.IR = Code.get(1);
  StepResult SR = step(S);
  EXPECT_STREQ(SR.Rule, "stG-queue");
  ASSERT_EQ(S.Queue.size(), 2u);
  EXPECT_EQ(S.Queue.entry(0), (QueueEntry{100, 42}));
  EXPECT_FALSE(SR.Output); // stG is not observable
}

TEST_F(StepTest, StBCommitsMatchingPair) {
  Code.set(1, Inst::st(Color::Blue, R(1), R(2)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::blue(100));
  S.Regs.set(R(2), Value::blue(42));
  S.Queue.pushFront({100, 42});
  S.IR = Code.get(1);
  StepResult SR = step(S);
  EXPECT_STREQ(SR.Rule, "stB-mem");
  EXPECT_TRUE(S.Queue.empty());
  EXPECT_EQ(S.Mem.get(100), 42);
  ASSERT_TRUE(SR.Output);
  EXPECT_EQ(*SR.Output, (QueueEntry{100, 42}));
}

TEST_F(StepTest, StBConsumesBackNotFront) {
  Code.set(1, Inst::st(Color::Blue, R(1), R(2)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::blue(100));
  S.Regs.set(R(2), Value::blue(1));
  S.Queue.pushFront({100, 1}); // older (back)
  S.Queue.pushFront({200, 2}); // newer (front)
  S.IR = Code.get(1);
  StepResult SR = step(S);
  EXPECT_STREQ(SR.Rule, "stB-mem");
  ASSERT_EQ(S.Queue.size(), 1u);
  EXPECT_EQ(S.Queue.entry(0), (QueueEntry{200, 2}));
}

TEST_F(StepTest, StBEmptyQueueFaults) {
  StepResult SR = exec(Inst::st(Color::Blue, R(1), R(2)));
  EXPECT_EQ(SR.Status, StepStatus::Fault);
  EXPECT_STREQ(SR.Rule, "stB-queue-fail");
}

TEST_F(StepTest, StBMismatchedValueFaults) {
  Code.set(1, Inst::st(Color::Blue, R(1), R(2)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::blue(100));
  S.Regs.set(R(2), Value::blue(42));
  S.Queue.pushFront({100, 43});
  S.IR = Code.get(1);
  StepResult SR = step(S);
  EXPECT_EQ(SR.Status, StepStatus::Fault);
  EXPECT_STREQ(SR.Rule, "stB-mem-fail");
}

TEST_F(StepTest, StBMismatchedAddressFaults) {
  Code.set(1, Inst::st(Color::Blue, R(1), R(2)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::blue(104));
  S.Regs.set(R(2), Value::blue(42));
  S.Queue.pushFront({100, 42});
  S.IR = Code.get(1);
  EXPECT_STREQ(step(S).Rule, "stB-mem-fail");
}

TEST_F(StepTest, LdGPrefersQueue) {
  Code.set(1, Inst::ld(Color::Green, R(2), R(1)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::green(100));
  S.Mem.set(100, 5);
  S.Queue.pushFront({100, 9});
  S.IR = Code.get(1);
  StepResult SR = step(S);
  EXPECT_STREQ(SR.Rule, "ldG-queue");
  EXPECT_EQ(S.Regs.get(R(2)), Value::green(9));
}

TEST_F(StepTest, LdGFallsBackToMemory) {
  Code.set(1, Inst::ld(Color::Green, R(2), R(1)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::green(100));
  S.Mem.set(100, 5);
  S.IR = Code.get(1);
  StepResult SR = step(S);
  EXPECT_STREQ(SR.Rule, "ldG-mem");
  EXPECT_EQ(S.Regs.get(R(2)), Value::green(5));
}

TEST_F(StepTest, LdBIgnoresQueue) {
  Code.set(1, Inst::ld(Color::Blue, R(2), R(1)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::blue(100));
  S.Mem.set(100, 5);
  S.Queue.pushFront({100, 9});
  S.IR = Code.get(1);
  StepResult SR = step(S);
  EXPECT_STREQ(SR.Rule, "ldB-mem");
  EXPECT_EQ(S.Regs.get(R(2)), Value::blue(5));
}

TEST_F(StepTest, WildLoadTrapPolicy) {
  Code.set(1, Inst::ld(Color::Green, R(2), R(1)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::green(999));
  S.IR = Code.get(1);
  StepResult SR = step(S); // default policy traps
  EXPECT_EQ(SR.Status, StepStatus::Fault);
  EXPECT_STREQ(SR.Rule, "ldG-fail");
}

TEST_F(StepTest, WildLoadGarbagePolicy) {
  Code.set(1, Inst::ld(Color::Blue, R(2), R(1)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::blue(999));
  S.IR = Code.get(1);
  StepPolicy P;
  P.WildLoad = WildLoadPolicy::Garbage;
  P.GarbageValue = 1234;
  StepResult SR = step(S, P);
  EXPECT_STREQ(SR.Rule, "ldB-rand");
  EXPECT_EQ(S.Regs.get(R(2)), Value::blue(1234));
}

TEST_F(StepTest, JmpGRecordsIntention) {
  Code.set(1, Inst::jmp(Color::Green, R(1)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::green(10));
  S.IR = Code.get(1);
  StepResult SR = step(S);
  EXPECT_STREQ(SR.Rule, "jmpG");
  EXPECT_EQ(S.Regs.get(Reg::dest()), Value::green(10));
  EXPECT_EQ(S.pcG().N, 2); // jmpG itself falls through
}

TEST_F(StepTest, JmpGWithPendingTransferFaults) {
  Code.set(1, Inst::jmp(Color::Green, R(1)));
  S = MachineState(Code, 1);
  S.Regs.set(Reg::dest(), Value::green(10));
  S.IR = Code.get(1);
  EXPECT_STREQ(step(S).Rule, "jmpG-fail");
}

TEST_F(StepTest, JmpBCommitsAgreedTransfer) {
  Code.set(1, Inst::jmp(Color::Blue, R(1)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::blue(10));
  S.Regs.set(Reg::dest(), Value::green(10));
  S.IR = Code.get(1);
  StepResult SR = step(S);
  EXPECT_STREQ(SR.Rule, "jmpB");
  EXPECT_EQ(S.pcG(), Value::green(10));
  EXPECT_EQ(S.pcB(), Value::blue(10));
  EXPECT_EQ(S.Regs.get(Reg::dest()), Value::green(0));
}

TEST_F(StepTest, JmpBDisagreementFaults) {
  Code.set(1, Inst::jmp(Color::Blue, R(1)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::blue(11));
  S.Regs.set(Reg::dest(), Value::green(10));
  S.IR = Code.get(1);
  EXPECT_STREQ(step(S).Rule, "jmpB-fail");
}

TEST_F(StepTest, JmpBWithNoIntentionFaults) {
  Code.set(1, Inst::jmp(Color::Blue, R(1)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::blue(0));
  S.IR = Code.get(1);
  EXPECT_STREQ(step(S).Rule, "jmpB-fail");
}

TEST_F(StepTest, BzUntakenFallsThrough) {
  Code.set(1, Inst::bz(Color::Green, R(1), R(2)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::green(5)); // nonzero: not taken
  S.IR = Code.get(1);
  StepResult SR = step(S);
  EXPECT_STREQ(SR.Rule, "bz-untaken");
  EXPECT_EQ(S.pcG().N, 2);
  EXPECT_EQ(S.Regs.get(Reg::dest()), Value::green(0));
}

TEST_F(StepTest, BzUntakenWithPendingTransferFaults) {
  Code.set(1, Inst::bz(Color::Blue, R(1), R(2)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::blue(5));
  S.Regs.set(Reg::dest(), Value::green(10)); // green decided to take it
  S.IR = Code.get(1);
  EXPECT_STREQ(step(S).Rule, "bz-untaken-fail");
}

TEST_F(StepTest, BzGTakenRecordsIntention) {
  Code.set(1, Inst::bz(Color::Green, R(1), R(2)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::green(0));
  S.Regs.set(R(2), Value::green(10));
  S.IR = Code.get(1);
  StepResult SR = step(S);
  EXPECT_STREQ(SR.Rule, "bzG-taken");
  EXPECT_EQ(S.Regs.get(Reg::dest()), Value::green(10));
  EXPECT_EQ(S.pcG().N, 2); // bzG always falls through
}

TEST_F(StepTest, BzGTakenWithPendingTransferFaults) {
  Code.set(1, Inst::bz(Color::Green, R(1), R(2)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::green(0));
  S.Regs.set(Reg::dest(), Value::green(7));
  S.IR = Code.get(1);
  EXPECT_STREQ(step(S).Rule, "bzG-taken-fail");
}

TEST_F(StepTest, BzBTakenCommits) {
  Code.set(1, Inst::bz(Color::Blue, R(1), R(2)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::blue(0));
  S.Regs.set(R(2), Value::blue(10));
  S.Regs.set(Reg::dest(), Value::green(10));
  S.IR = Code.get(1);
  StepResult SR = step(S);
  EXPECT_STREQ(SR.Rule, "bzB-taken");
  EXPECT_EQ(S.pcG(), Value::green(10));
  EXPECT_EQ(S.pcB(), Value::blue(10));
  EXPECT_EQ(S.Regs.get(Reg::dest()), Value::green(0));
}

TEST_F(StepTest, BzBTakenDisagreementFaults) {
  Code.set(1, Inst::bz(Color::Blue, R(1), R(2)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::blue(0));
  S.Regs.set(R(2), Value::blue(11));
  S.Regs.set(Reg::dest(), Value::green(10));
  S.IR = Code.get(1);
  EXPECT_STREQ(step(S).Rule, "bzB-taken-fail");
}

TEST_F(StepTest, BzBTakenWithNoIntentionFaults) {
  Code.set(1, Inst::bz(Color::Blue, R(1), R(2)));
  S = MachineState(Code, 1);
  S.Regs.set(R(1), Value::blue(0));
  S.Regs.set(R(2), Value::blue(10));
  S.IR = Code.get(1);
  EXPECT_STREQ(step(S).Rule, "bzB-taken-fail");
}

} // namespace
