//===- examples/cse_bug.cpp - Catching an unsound compiler optimization ----===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The paper's motivating debugging scenario (Section 2.2): a compiler
// applies common subexpression elimination to the paired store and makes
// the blue store reuse the *green* registers. The program still runs
// correctly when no fault occurs — conventional testing passes — but a
// single fault in r1 or r2 now feeds the SAME corrupted value to both
// stG and stB, so the hardware comparison succeeds and silently commits
// corrupt data.
//
// This example shows (1) the checker rejecting the broken program with a
// pointed diagnostic, and (2) the silent-data-corruption run that the
// rejection prevents — "using a type checker ... achieves perfect fault
// coverage relative to the fault model without needing to increase the
// compiler test suite."
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "sim/Machine.h"
#include "tal/Parser.h"

#include <cstdio>

using namespace talft;

namespace {

const char *Broken = R"(
entry main
exit done
data { 256: int = 0 }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 5
  mov r2, G 256
  stG r2, r1
  stB r2, r1        // CSE reused the green registers: UNSOUND
  mov r5, G @done
  mov r6, B @done
  jmpG r5
  jmpB r6
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

} // namespace

int main() {
  TypeContext Types;
  DiagnosticEngine Diags;
  Expected<Program> Prog = parseAndLayoutTalProgram(Types, Broken, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s\n", Prog.message().c_str());
    return 1;
  }

  std::printf("== 1. The TALFT checker rejects the CSE'd program ==\n");
  Expected<CheckedProgram> Checked = checkProgram(Types, *Prog, Diags);
  if (Checked) {
    std::fprintf(stderr, "BUG: the broken program type-checked!\n");
    return 1;
  }
  std::printf("%s\n", Diags.str().c_str());

  std::printf("== 2. Why the rejection matters ==\n");
  Expected<MachineState> Clean = Prog->initialState();
  RunResult CleanRun = run(*Clean, Prog->exitAddress(), 1000);
  std::printf("fault-free run commits %lld to address %lld — conventional "
              "testing sees nothing wrong.\n",
              (long long)CleanRun.Trace.at(0).Val,
              (long long)CleanRun.Trace.at(0).Address);

  Expected<MachineState> Faulty = Prog->initialState();
  for (int I = 0; I != 2; ++I)
    step(*Faulty); // execute "mov r1, G 5"
  Faulty->Regs.set(Reg::general(1), Value::green(99));
  RunResult FaultyRun = run(*Faulty, Prog->exitAddress(), 1000);
  std::printf("with r1 corrupted 5 -> 99, the run %s and commits %lld — "
              "SILENT DATA CORRUPTION:\nboth stores read the same corrupt "
              "register, so the hardware check passes.\n",
              runStatusName(FaultyRun.Status),
              (long long)FaultyRun.Trace.at(0).Val);
  std::printf("\nThe type system catches at compile time the bug that "
              "fault-injection testing\nwould need this exact (fault site, "
              "fault time) pair to expose.\n");
  return 0;
}
