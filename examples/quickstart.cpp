//===- examples/quickstart.cpp - Hello, TALFT ------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The five-minute tour of the public API:
//
//   1. write a fault-tolerant assembly program (the paper's Section 2.2
//      paired-store example) in the .tal format;
//   2. parse and lay it out;
//   3. type-check it — the static guarantee that *every* single transient
//      fault will be masked or detected;
//   4. run it on the operational semantics and observe its output trace;
//   5. inject one fault by hand and watch the hardware detect it.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "sim/Machine.h"
#include "tal/Parser.h"

#include <cstdio>

using namespace talft;

namespace {

const char *Source = R"(
// Store 5 to address 256, redundantly, then halt.
entry main
exit done

data {
  256: int = 0          // the memory-mapped output cell
}

block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 5           // green computation: value...
  mov r2, G 256         // ...and address
  stG r2, r1            // enqueue the green (address, value) intention
  mov r3, B 5           // blue computation, independently
  mov r4, B 256
  stB r4, r3            // hardware compares and commits — or detects
  mov r5, G @done
  mov r6, B @done
  jmpG r5               // paired control transfer
  jmpB r6
}

block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

} // namespace

int main() {
  // 1-2. Parse and lay out.
  TypeContext Types;
  DiagnosticEngine Diags;
  Expected<Program> Prog = parseAndLayoutTalProgram(Types, Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s\n", Prog.message().c_str());
    return 1;
  }
  std::printf("parsed %zu blocks, %zu data cells; entry at address %lld\n",
              Prog->blocks().size(), Prog->data().size(),
              (long long)Prog->entryAddress());

  // 3. Type-check: accepted programs are provably fault tolerant.
  Expected<CheckedProgram> Checked = checkProgram(Types, *Prog, Diags);
  if (!Checked) {
    std::fprintf(stderr, "type errors:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("type check: OK — every single fault is masked or detected\n");

  // 4. Execute and observe the output trace (the committed stores).
  Expected<MachineState> State = Prog->initialState();
  if (!State) {
    std::fprintf(stderr, "%s\n", State.message().c_str());
    return 1;
  }
  RunResult Clean = run(*State, Prog->exitAddress(), 1000);
  std::printf("fault-free run: %s after %llu steps; output:",
              runStatusName(Clean.Status),
              (unsigned long long)Clean.Steps);
  for (const QueueEntry &E : Clean.Trace)
    std::printf(" (%lld <- %lld)", (long long)E.Address, (long long)E.Val);
  std::printf("\n");

  // 5. Re-run, but corrupt the green value register after 2 steps
  //    (one fetch + one execute — right after "mov r1, G 5").
  Expected<MachineState> Faulty = Prog->initialState();
  for (int I = 0; I != 2; ++I)
    step(*Faulty);
  Faulty->Regs.set(Reg::general(1), Value::green(99));
  std::printf("injecting: r1 corrupted 5 -> 99 (a green transient fault)\n");
  RunResult FaultyRun = run(*Faulty, Prog->exitAddress(), 1000);
  std::printf("faulty run: %s; output:", runStatusName(FaultyRun.Status));
  for (const QueueEntry &E : FaultyRun.Trace)
    std::printf(" (%lld <- %lld)", (long long)E.Address, (long long)E.Val);
  std::printf("%s\n", FaultyRun.Trace.empty() ? " (none)" : "");
  std::printf("the blue store disagreed with the corrupted green intention "
              "before\nanything reached memory — nothing corrupt was "
              "observable.\n");
  return 0;
}
