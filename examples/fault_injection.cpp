//===- examples/fault_injection.cpp - The Theorem 4 sweep, visibly ---------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Runs the exhaustive single-fault sweep on a well-typed loop and prints
// the verdict distribution, then zooms into three individual injections —
// a masked fault, a store-time detection and a control-flow detection —
// showing the exact step, fault site and hardware rule that fired.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "fault/Theorems.h"
#include "tal/Parser.h"

#include <cstdio>

using namespace talft;

namespace {

const char *Source = R"(
entry main
exit done
data { 500: int = 0 }
block main {
  pre { forall m: mem; queue []; mem m }
  mov r1, G 3
  mov r2, B 3
  mov r10, G @loop
  mov r11, B @loop
  jmpG r10
  jmpB r11
}
block loop {
  pre { forall n: int, m: mem;
        r1: (G, int, n); r2: (B, int, n);
        queue []; mem m }
  mov r20, G @done
  mov r21, B @done
  bzG r1, r20
  bzB r2, r21
  mov r3, G 500
  stG r3, r1
  mov r4, B 500
  stB r4, r2
  sub r1, r1, G 1
  sub r2, r2, B 1
  mov r10, G @loop
  mov r11, B @loop
  jmpG r10
  jmpB r11
}
block done {
  pre { forall m: mem; queue []; mem m }
  mov r60, G @done
  mov r61, B @done
  jmpG r60
  jmpB r61
}
)";

void showOneInjection(TypeContext &TC, const CheckedProgram &CP,
                      uint64_t AtStep, FaultSite Site, int64_t Corruption) {
  TrackedRun Run(TC, CP);
  if (Run.start()) {
    std::fprintf(stderr, "cannot start\n");
    return;
  }
  for (uint64_t I = 0; I != AtStep; ++I)
    Run.stepOnce();
  int64_t Old = currentValueAt(Run.state(), Site);
  Run.injectSingleFault(Site, Corruption);
  std::printf("  step %llu: %s, %lld -> %lld ... ",
              (unsigned long long)AtStep, Site.str().c_str(),
              (long long)Old, (long long)Corruption);

  while (!Run.atExitBlock()) {
    StepResult SR = Run.stepOnce();
    if (SR.Status == StepStatus::Fault) {
      std::printf("DETECTED by rule %s after %llu more steps; %zu stores "
                  "committed\n",
                  SR.Rule, (unsigned long long)(Run.steps() - AtStep),
                  Run.trace().size());
      return;
    }
    if (SR.Status == StepStatus::Stuck) {
      std::printf("STUCK (should be impossible)\n");
      return;
    }
  }
  std::printf("MASKED: run completed with %zu stores, output unchanged\n",
              Run.trace().size());
}

} // namespace

int main() {
  TypeContext TC;
  DiagnosticEngine Diags;
  Expected<Program> Prog = parseAndLayoutTalProgram(TC, Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s\n", Prog.message().c_str());
    return 1;
  }
  Expected<CheckedProgram> Checked = checkProgram(TC, *Prog, Diags);
  if (!Checked) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  std::printf("== Exhaustive Theorem 4 sweep ==\n");
  TheoremReport Report = checkFaultTolerance(TC, *Checked, TheoremConfig());
  std::printf("reference run: %llu steps, %zu committed stores\n",
              (unsigned long long)Report.ReferenceSteps,
              Report.ReferenceTrace.size());
  std::printf("injections tested: %llu\n",
              (unsigned long long)Report.InjectionsTested);
  std::printf("  detected by hardware: %llu\n",
              (unsigned long long)Report.DetectedFaults);
  std::printf("  masked (output identical): %llu\n",
              (unsigned long long)Report.MaskedFaults);
  std::printf("  silent corruptions / stuck states: %zu%s\n\n",
              Report.Violations.size(),
              Report.Ok ? "  -- the Fault Tolerance theorem holds" : "");
  if (!Report.Ok) {
    for (const std::string &V : Report.Violations)
      std::fprintf(stderr, "VIOLATION: %s\n", V.c_str());
    return 1;
  }

  std::printf("== Three individual injections ==\n");
  // A fault in a dead register: masked.
  showOneInjection(TC, *Checked, 4, FaultSite::reg(Reg::general(40)),
                   0x7777);
  // A fault in the green loop counter right after the first store pair:
  // the next blue comparison disagrees.
  showOneInjection(TC, *Checked, 30, FaultSite::reg(Reg::general(1)),
                   12345);
  // A fault in the green program counter: fetch-fail fires.
  showOneInjection(TC, *Checked, 20, FaultSite::reg(Reg::pcG()), 2);
  return 0;
}
