//===- examples/compile_and_check.cpp - Wile -> TALFT, end to end ---------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The compiler-writer's view: compile a small Wile source program through
// both backends, print the generated fault-tolerant assembly (with its
// typing annotations), type-check it, run both binaries, compare their
// outputs, and report the modelled cycle overhead — one kernel's worth of
// the Figure 10 pipeline.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "tal/Printer.h"
#include "wile/Evaluate.h"

#include <cstdio>

using namespace talft;
using namespace talft::wile;

namespace {

const char *Source = R"(
// dot-product-with-decay: a little loop kernel
var n = 6;
var a = 3;
var b = 5;
var acc = 0;
while (n != 0) {
  acc = acc + a * b;
  a = a + 2;
  b = b - 1;
  n = n - 1;
}
output(acc);
)";

} // namespace

int main() {
  std::printf("== Wile source ==\n%s\n", Source);

  TypeContext BaseTypes, FtTypes;
  DiagnosticEngine Diags;
  Expected<CompiledProgram> Base =
      compileWile(BaseTypes, Source, CodegenMode::Unprotected, Diags);
  Expected<CompiledProgram> Ft =
      compileWile(FtTypes, Source, CodegenMode::FaultTolerant, Diags);
  if (!Base || !Ft) {
    std::fprintf(stderr, "compilation failed:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("== Generated fault-tolerant assembly ==\n%s\n",
              printTalProgram(Ft->Prog).c_str());

  DiagnosticEngine CheckDiags;
  Expected<CheckedProgram> Checked =
      checkProgram(FtTypes, Ft->Prog, CheckDiags);
  std::printf("type check of the protected binary: %s\n",
              Checked ? "OK" : "FAILED");
  if (!Checked) {
    std::fprintf(stderr, "%s", CheckDiags.str().c_str());
    return 1;
  }

  Expected<ExecutionProfile> BaseProf = profileExecution(*Base, 1'000'000);
  Expected<ExecutionProfile> FtProf = profileExecution(*Ft, 1'000'000);
  if (!BaseProf || !FtProf) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  std::printf("outputs agree: %s\n",
              BaseProf->Trace == FtProf->Trace ? "yes" : "NO!");

  PipelineConfig Ordered;
  PipelineConfig Unordered;
  Unordered.EnforceColorOrdering = false;
  uint64_t BaseCycles = totalCycles(*Base, *BaseProf, Ordered);
  uint64_t FtCycles = totalCycles(*Ft, *FtProf, Ordered);
  uint64_t FtUCycles = totalCycles(*Ft, *FtProf, Unordered);
  std::printf("\n== Modelled cost (6-wide in-order pipeline) ==\n");
  std::printf("unprotected:          %8llu cycles\n",
              (unsigned long long)BaseCycles);
  std::printf("TAL-FT:               %8llu cycles  (%.2fx)\n",
              (unsigned long long)FtCycles,
              (double)FtCycles / (double)BaseCycles);
  std::printf("TAL-FT w/o ordering:  %8llu cycles  (%.2fx)\n",
              (unsigned long long)FtUCycles,
              (double)FtUCycles / (double)BaseCycles);
  return 0;
}
