//===- examples/wilec_tool.cpp - The Wile compiler driver -----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// Compiles a .wile source file to TALFT assembly on stdout:
//
//   wilec_tool prog.wile                 fault-tolerant code (the default)
//   wilec_tool prog.wile --unprotected   baseline code
//   wilec_tool prog.wile --no-opt        skip the IR optimizer
//   wilec_tool prog.wile --check         also run the TALFT checker
//
// Composes with talft_tool:
//
//   wilec_tool prog.wile > prog.tal && talft_tool sweep prog.tal
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"
#include "tal/Printer.h"
#include "wile/Codegen.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace talft;

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr, "usage: wilec_tool <file.wile> [--unprotected] "
                         "[--no-opt] [--check]\n");
    return 1;
  }
  bool Unprotected = false, Optimize = true, Check = false;
  for (int I = 2; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--unprotected") == 0)
      Unprotected = true;
    else if (std::strcmp(Argv[I], "--no-opt") == 0)
      Optimize = false;
    else if (std::strcmp(Argv[I], "--check") == 0)
      Check = true;
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", Argv[I]);
      return 1;
    }
  }

  std::ifstream In(Argv[1]);
  if (!In) {
    std::fprintf(stderr, "cannot read '%s'\n", Argv[1]);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  TypeContext Types;
  DiagnosticEngine Diags;
  Expected<wile::CompiledProgram> CP = wile::compileWile(
      Types, Buf.str(),
      Unprotected ? wile::CodegenMode::Unprotected
                  : wile::CodegenMode::FaultTolerant,
      Diags, Optimize);
  if (!CP) {
    std::fprintf(stderr, "%s\n", CP.message().c_str());
    return 1;
  }

  if (Check) {
    DiagnosticEngine CheckDiags;
    Expected<CheckedProgram> Checked =
        checkProgram(Types, CP->Prog, CheckDiags);
    if (!Checked) {
      std::fprintf(stderr, "generated code failed the checker:\n%s",
                   CheckDiags.str().c_str());
      return 1;
    }
    std::fprintf(stderr, "check: OK (%zu instructions)\n",
                 CP->Prog.code().size());
  }

  std::printf("%s", printTalProgram(CP->Prog).c_str());
  return 0;
}
