//===- examples/talft_tool.cpp - The talft command-line driver ------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// A small command-line front end over the library — the artifact a
// compiler team would wire into their build to check generated code:
//
//   talft_tool check   prog.tal           type-check
//   talft_tool check   prog.tal --analyze type-check; on rejection fall
//                                         back to the duplication analysis
//   talft_tool analyze prog.tal           static reliability analysis only
//   talft_tool run     prog.tal [steps]   execute, print the output trace
//   talft_tool trace   prog.tal [steps]   execute, print every rule firing
//   talft_tool print   prog.tal           parse and pretty-print
//   talft_tool sweep   prog.tal           exhaustive single-fault sweep
//
// Exit status is 0 on success / verified, 1 otherwise.
//
//===----------------------------------------------------------------------===//

#include "analysis/Certify.h"
#include "analysis/ZapCoverage.h"
#include "check/ProgramChecker.h"
#include "fault/Theorems.h"
#include "tal/Parser.h"
#include "tal/Printer.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace talft;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: talft_tool <check|analyze|run|print|sweep> <file.tal> "
               "[max-steps|--analyze]\n");
  return 1;
}

std::optional<std::string> readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  const char *Command = Argv[1];
  std::optional<std::string> Source = readFile(Argv[2]);
  if (!Source) {
    std::fprintf(stderr, "cannot read '%s'\n", Argv[2]);
    return 1;
  }
  uint64_t MaxSteps = Argc > 3 ? strtoull(Argv[3], nullptr, 10) : 1'000'000;

  TypeContext Types;
  DiagnosticEngine Diags;
  Expected<Program> Prog = parseAndLayoutTalProgram(Types, *Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  if (std::strcmp(Command, "print") == 0) {
    std::printf("%s", printTalProgram(*Prog).c_str());
    return 0;
  }

  if (std::strcmp(Command, "check") == 0) {
    bool Analyze = Argc > 3 && std::strcmp(Argv[3], "--analyze") == 0;
    Expected<CheckedProgram> Checked = checkProgram(Types, *Prog, Diags);
    if (!Checked) {
      if (!Analyze) {
        std::fprintf(stderr, "%s", Diags.str().c_str());
        return 1;
      }
      // Fallback: the Hoare types rejected it; the dataflow analysis may
      // still certify the duplication structure (analysis/Certify.h).
      analysis::Certification Cert = analysis::certifyProgram(Types, *Prog);
      if (!Cert.certified()) {
        std::fprintf(stderr, "%s", Diags.str().c_str());
        for (const analysis::Finding &F : Cert.Findings)
          std::fprintf(stderr, "%s: analysis: %s\n", F.Loc.str().c_str(),
                       F.str().c_str());
        return 1;
      }
      std::printf("%s: %s (checker rejected it: %s)\n", Argv[2],
                  analysis::certificationStatusName(Cert.Status),
                  Cert.CheckerError.c_str());
      return 0;
    }
    std::printf("%s: OK (%zu instructions, %zu blocks)\n", Argv[2],
                Prog->code().size(), Prog->blocks().size());
    return 0;
  }

  if (std::strcmp(Command, "analyze") == 0) {
    analysis::Certification Cert = analysis::certifyProgram(Types, *Prog);
    Expected<analysis::ZapCoverage> Cov = analysis::ZapCoverage::compute(*Prog);
    if (!Cov) {
      std::fprintf(stderr, "%s\n", Cov.message().c_str());
      return 1;
    }
    analysis::ZapSummary Sites = Cov->summarize();
    std::printf("%s: %s\n", Argv[2],
                analysis::certificationStatusName(Cert.Status));
    if (!Cert.CheckerError.empty())
      std::printf("  checker: %s\n", Cert.CheckerError.c_str());
    analysis::CFG::ResolutionSummary Sum = Cov->cfg().resolutionSummary();
    std::printf("  cfg: %zu basic blocks, %zu instructions, targets %s "
                "(%llu commits: %llu exact, %llu type-narrowed, "
                "%llu over-approximated)\n",
                Cov->cfg().numBlocks(), Cov->cfg().numInsts(),
                Cov->cfg().targetsResolved() ? "resolved"
                                             : "over-approximated",
                (unsigned long long)Sum.Commits,
                (unsigned long long)Sum.Exact,
                (unsigned long long)Sum.TypeNarrowed,
                (unsigned long long)Sum.OverApproximated);
    std::printf("  fault sites: %llu dead, %llu checked, %llu vulnerable\n",
                (unsigned long long)Sites.Dead,
                (unsigned long long)Sites.Checked,
                (unsigned long long)Sites.Vulnerable);
    for (const analysis::Finding &F : Cert.Findings)
      std::printf("  %s: %s\n", F.Loc.str().c_str(), F.str().c_str());
    return Cert.certified() ? 0 : 1;
  }

  if (std::strcmp(Command, "run") == 0) {
    Expected<MachineState> State = Prog->initialState();
    if (!State) {
      std::fprintf(stderr, "%s\n", State.message().c_str());
      return 1;
    }
    RunResult R = run(*State, Prog->exitAddress(), MaxSteps);
    std::printf("%s after %llu steps\n", runStatusName(R.Status),
                (unsigned long long)R.Steps);
    for (const QueueEntry &E : R.Trace)
      std::printf("  store %lld <- %lld\n", (long long)E.Address,
                  (long long)E.Val);
    return R.Status == RunStatus::Halted ? 0 : 1;
  }

  if (std::strcmp(Command, "trace") == 0) {
    Expected<MachineState> State = Prog->initialState();
    if (!State) {
      std::fprintf(stderr, "%s\n", State.message().c_str());
      return 1;
    }
    uint64_t Steps = 0;
    while (Steps < MaxSteps && !atExit(*State, Prog->exitAddress())) {
      Addr Pc = State->pcG().N;
      bool Executing = State->IR.has_value();
      std::string What =
          Executing ? State->IR->str()
                    : (Prog->blockAt(Pc)
                           ? "fetch @" + Prog->blockAt(Pc)->Label
                           : "fetch");
      StepResult SR = step(*State);
      if (SR.Status == StepStatus::Stuck) {
        std::printf("%6llu  pc=%-5lld STUCK\n",
                    (unsigned long long)Steps, (long long)Pc);
        return 1;
      }
      std::string Suffix;
      if (SR.Output)
        Suffix = "   => store " + std::to_string(SR.Output->Address) +
                 " <- " + std::to_string(SR.Output->Val);
      std::printf("%6llu  pc=%-5lld %-24s %s%s\n",
                  (unsigned long long)Steps, (long long)Pc, What.c_str(),
                  SR.Rule, Suffix.c_str());
      ++Steps;
      if (SR.Status == StepStatus::Fault) {
        std::printf("fault detected\n");
        return 1;
      }
    }
    std::printf("%s after %llu steps\n",
                atExit(*State, Prog->exitAddress()) ? "halted"
                                                    : "out of steps",
                (unsigned long long)Steps);
    return 0;
  }

  if (std::strcmp(Command, "sweep") == 0) {
    Expected<CheckedProgram> Checked = checkProgram(Types, *Prog, Diags);
    if (!Checked) {
      std::fprintf(stderr, "sweep requires a well-typed program:\n%s",
                   Diags.str().c_str());
      return 1;
    }
    TheoremConfig Config;
    Config.MaxSteps = MaxSteps;
    TheoremReport R = checkFaultTolerance(Types, *Checked, Config);
    std::printf("reference: %llu steps; injections: %llu; detected: %llu; "
                "masked: %llu; violations: %zu\n",
                (unsigned long long)R.ReferenceSteps,
                (unsigned long long)R.InjectionsTested,
                (unsigned long long)R.DetectedFaults,
                (unsigned long long)R.MaskedFaults, R.Violations.size());
    for (const std::string &V : R.Violations)
      std::fprintf(stderr, "VIOLATION: %s\n", V.c_str());
    return R.Ok ? 0 : 1;
  }

  return usage();
}
