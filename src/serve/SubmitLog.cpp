//===- serve/SubmitLog.cpp - Write-ahead submission log -------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "serve/SubmitLog.h"

#include "isa/ProgramHash.h"
#include "serve/Json.h"
#include "support/AtomicFile.h"
#include "support/Crc32.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <unistd.h>

using namespace talft;
using namespace talft::serve;

namespace {

constexpr uint32_t MaxWalFrame = 64u << 20;

std::string frameRecord(const std::string &Payload) {
  uint32_t Header[2] = {(uint32_t)Payload.size(), support::crc32(Payload)};
  std::string Out(reinterpret_cast<const char *>(Header), sizeof(Header));
  Out += Payload;
  return Out;
}

bool writeAllFd(int Fd, const char *Data, size_t Len) {
  while (Len) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= (size_t)N;
  }
  return true;
}

} // namespace

SubmitLog::~SubmitLog() { close(); }

void SubmitLog::close() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool SubmitLog::open(const std::string &P, std::string *Err) {
  close();
  std::lock_guard<std::mutex> Lock(Mu);
  Path = P;
  Pending.clear();
  NextId = 1;

  // Scan whatever survives on disk. A missing file is a fresh log.
  std::string Text;
  {
    int RFd = ::open(P.c_str(), O_RDONLY);
    if (RFd >= 0) {
      char Buf[1 << 16];
      ssize_t N;
      while ((N = ::read(RFd, Buf, sizeof(Buf))) > 0)
        Text.append(Buf, (size_t)N);
      ::close(RFd);
    }
  }

  // Replay the frames: accepts keyed by id, retires erase them. The scan
  // stops at the first frame that cannot be whole (torn tail) and skips
  // frames whose CRC fails (a torn middle can only happen if the kernel
  // reordered writes across a crash; skipping is safe because every
  // record is self-contained).
  std::map<uint64_t, PendingSubmission> Accepted;
  size_t Off = 0;
  while (Off + 8 <= Text.size()) {
    uint32_t Len, Crc;
    std::memcpy(&Len, Text.data() + Off, 4);
    std::memcpy(&Crc, Text.data() + Off + 4, 4);
    if (Len > MaxWalFrame || Off + 8 + Len > Text.size())
      break; // torn tail: the record never finished hitting the disk
    std::string_view Payload(Text.data() + Off + 8, Len);
    Off += 8 + Len;
    if (support::crc32(Payload) != Crc) {
      ++Counters.CorruptFrames;
      continue;
    }
    std::optional<JsonValue> Doc = JsonValue::parse(Payload);
    if (!Doc || !Doc->isObject()) {
      ++Counters.CorruptFrames;
      continue;
    }
    uint64_t Id = Doc->u64At("id", 0);
    NextId = std::max(NextId, Id + 1);
    std::string Kind = Doc->stringAt("wal", "");
    if (Kind == "accept") {
      PendingSubmission S;
      S.Id = Id;
      S.Name = Doc->stringAt("name", "");
      parseProgramHash(Doc->stringAt("program_hash", "0x0"), S.ProgramHash);
      parseProgramHash(Doc->stringAt("options_digest", "0x0"),
                       S.OptionsDigest);
      S.ShardsTotal = (unsigned)Doc->u64At("shards_total", 0);
      const JsonValue *Spec = Doc->get("spec");
      std::string SpecErr;
      if (!Spec || !specFromJson(*Spec, S.Spec, SpecErr)) {
        ++Counters.CorruptFrames;
        continue;
      }
      S.AcceptJson = std::string(Payload);
      Accepted[Id] = std::move(S);
    } else if (Kind == "retire") {
      Accepted.erase(Id);
    } else {
      ++Counters.CorruptFrames;
    }
  }
  Counters.TornBytes += Text.size() - Off;

  for (auto &[Id, S] : Accepted)
    Pending.push_back(std::move(S));
  Counters.Recovered += Pending.size();

  // Compact: rewrite the log holding only the pending accepts. The
  // atomic rename means a crash mid-compaction leaves the old log.
  std::string Compacted;
  for (const PendingSubmission &S : Pending)
    Compacted += frameRecord(S.AcceptJson);
  if (!support::writeFileAtomic(P, Compacted)) {
    if (Err)
      *Err = "cannot rewrite submission log \"" + P + "\"";
    return false;
  }

  Fd = ::open(P.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (Fd < 0) {
    if (Err)
      *Err = formatv("cannot open submission log \"%s\": %s", P.c_str(),
                     std::strerror(errno));
    return false;
  }
  return true;
}

bool SubmitLog::writeRecord(const std::string &Payload, bool Sync) {
  // Caller holds Mu.
  if (Fd < 0)
    return false;
  std::string Frame = frameRecord(Payload);
  if (!writeAllFd(Fd, Frame.data(), Frame.size()))
    return false;
  if (Sync) {
    while (::fsync(Fd) < 0 && errno == EINTR)
      ;
    ++Counters.Fsyncs;
  }
  return true;
}

uint64_t SubmitLog::appendAccept(const std::string &Name,
                                 uint64_t ProgramHash, uint64_t OptionsDigest,
                                 unsigned ShardsTotal,
                                 const std::string &SpecJson) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0)
    return 0;
  uint64_t Id = NextId++;
  std::string Payload = formatv(
      "{\"wal\": \"accept\", \"id\": %llu, \"name\": %s, "
      "\"program_hash\": \"%s\", \"options_digest\": \"%s\", "
      "\"shards_total\": %u, \"spec\": ",
      (unsigned long long)Id, jsonQuote(Name).c_str(),
      programHashString(ProgramHash).c_str(),
      programHashString(OptionsDigest).c_str(), ShardsTotal);
  Payload += SpecJson;
  Payload += "}";
  if (!writeRecord(Payload, /*Sync=*/true))
    return 0;
  ++Counters.Appends;
  return Id;
}

void SubmitLog::appendRetire(uint64_t Id, const std::string &Outcome) {
  if (Id == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  if (writeRecord(formatv("{\"wal\": \"retire\", \"id\": %llu, "
                          "\"outcome\": %s}",
                          (unsigned long long)Id, jsonQuote(Outcome).c_str()),
                  /*Sync=*/true))
    ++Counters.Retires;
}

SubmitLogStats SubmitLog::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}
