//===- serve/Json.h - Minimal JSON value and parser -----------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dependency-free JSON reader for the certification server: the
/// line-delimited protocol (serve/Protocol.h) and the on-disk memo-store
/// entries are both JSON, and the repo's writers (campaignToJson, the
/// bench report builders) only ever *emit* strings. This is the matching
/// reader — a strict recursive-descent parser into a fat value type.
/// Numbers keep an exact unsigned image when the token is integral, so
/// 64-bit verdict counters round-trip bit-exactly (doubles alone would
/// truncate above 2^53).
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SERVE_JSON_H
#define TALFT_SERVE_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace talft::serve {

class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }

  bool asBool(bool Default = false) const {
    return K == Kind::Bool ? B : Default;
  }
  /// Exact for integral tokens up to 2^64-1; negative numbers clamp to
  /// \p Default.
  uint64_t asU64(uint64_t Default = 0) const {
    if (K != Kind::Number)
      return Default;
    if (Exact)
      return U;
    return Num < 0 ? Default : (uint64_t)Num;
  }
  double asDouble(double Default = 0) const {
    return K == Kind::Number ? Num : Default;
  }
  const std::string &asString() const {
    static const std::string Empty;
    return K == Kind::String ? Str : Empty;
  }
  const std::vector<JsonValue> &items() const {
    static const std::vector<JsonValue> None;
    return K == Kind::Array ? Arr : None;
  }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    static const std::vector<std::pair<std::string, JsonValue>> None;
    return K == Kind::Object ? Obj : None;
  }

  /// Object member lookup; null when absent or not an object.
  const JsonValue *get(std::string_view Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &[Name, V] : Obj)
      if (Name == Key)
        return &V;
    return nullptr;
  }

  bool boolAt(std::string_view Key, bool Default) const {
    const JsonValue *V = get(Key);
    return V ? V->asBool(Default) : Default;
  }
  uint64_t u64At(std::string_view Key, uint64_t Default) const {
    const JsonValue *V = get(Key);
    return V ? V->asU64(Default) : Default;
  }
  double doubleAt(std::string_view Key, double Default) const {
    const JsonValue *V = get(Key);
    return V ? V->asDouble(Default) : Default;
  }
  std::string stringAt(std::string_view Key, std::string Default = "") const {
    const JsonValue *V = get(Key);
    return V && V->isString() ? V->Str : Default;
  }

  /// Strict parse of exactly one JSON document (trailing garbage is an
  /// error). On failure returns nullopt and, when \p Err is non-null,
  /// a one-line description with the byte offset.
  static std::optional<JsonValue> parse(std::string_view Text,
                                        std::string *Err = nullptr);

private:
  friend class JsonParser;
  Kind K = Kind::Null;
  bool B = false;
  bool Exact = false; ///< U holds the number's exact unsigned image.
  double Num = 0;
  uint64_t U = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;
};

/// Renders \p In as a quoted JSON string literal (the inverse of the
/// parser's string reader; same escape set as campaignToJson's writer).
std::string jsonQuote(std::string_view In);

} // namespace talft::serve

#endif // TALFT_SERVE_JSON_H
