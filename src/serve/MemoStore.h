//===- serve/MemoStore.h - Content-addressed campaign result cache --------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The certification server's memoization layer: a bounded LRU map from
/// (whole-program content hash × campaign-options digest) to a folded
/// campaign result. A completed entry answers a resubmission without
/// re-running any shard; a *partial* entry — the folded prefix of a
/// drained campaign's shards — lets a resubmission resume from the first
/// unclassified shard, which is how SIGTERM drain stays lossless.
///
/// With a cache directory configured, every store also persists the entry
/// as one JSON file (written atomically, support/AtomicFile.h), and a
/// lookup miss falls back to disk — so partial folds survive a server
/// restart. Eviction only trims the in-memory tier; disk files are the
/// durable record and are overwritten in place on update.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SERVE_MEMOSTORE_H
#define TALFT_SERVE_MEMOSTORE_H

#include "fault/Campaign.h"

#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace talft::serve {

struct MemoKey {
  uint64_t ProgramHash = 0;
  uint64_t OptionsDigest = 0;
  bool operator==(const MemoKey &) const = default;
};

struct MemoEntry {
  MemoKey Key;
  /// Display name of the submission that produced the entry.
  std::string Name;
  /// Certification ladder rung (analysis/Certify.h JSON key).
  std::string Certification;
  /// The shard partition the cached fold was produced under; a resumed
  /// campaign must keep it (a different count cuts different slices).
  unsigned ShardsTotal = 0;
  /// Shards folded so far: the fold covers shard indices [0, ShardsDone).
  unsigned ShardsDone = 0;
  CampaignResult Folded;

  bool complete() const { return ShardsTotal != 0 && ShardsDone == ShardsTotal; }
};

struct MemoStats {
  uint64_t Hits = 0;        ///< Lookups answered by a complete entry.
  uint64_t PartialHits = 0; ///< Lookups answered by a resumable prefix.
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t DiskLoads = 0;
  uint64_t DiskStores = 0;
  uint64_t Entries = 0;
  uint64_t Capacity = 0;
};

class MemoStore {
public:
  /// \p Capacity bounds the in-memory entry count (>= 1). \p CacheDir,
  /// when non-empty, names an existing directory used as the persistent
  /// tier.
  explicit MemoStore(size_t Capacity, std::string CacheDir = "");

  /// Returns the entry for \p K (complete or partial), refreshing its LRU
  /// position, or nullopt. Counts a hit, partial hit or miss; falls back
  /// to the cache directory before declaring a miss.
  std::optional<MemoEntry> lookup(const MemoKey &K);

  /// Inserts or updates \p E, makes it most-recently-used, persists it to
  /// the cache directory, and evicts the least-recently-used entries down
  /// to capacity.
  void store(const MemoEntry &E);

  MemoStats stats() const;

  /// The file a key persists to (empty without a cache directory).
  std::string entryPath(const MemoKey &K) const;

private:
  struct KeyHash {
    size_t operator()(const MemoKey &K) const {
      return (size_t)(K.ProgramHash ^ (K.OptionsDigest * 0x9e3779b97f4a7c15ull));
    }
  };

  std::optional<MemoEntry> loadFromDisk(const MemoKey &K);
  void persist(const MemoEntry &E);

  mutable std::mutex Mu;
  size_t Capacity;
  std::string CacheDir;
  /// LRU order: front = most recent.
  std::list<MemoEntry> Entries;
  std::unordered_map<MemoKey, std::list<MemoEntry>::iterator, KeyHash> Index;
  MemoStats Counters;
};

} // namespace talft::serve

#endif // TALFT_SERVE_MEMOSTORE_H
