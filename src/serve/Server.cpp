//===- serve/Server.cpp - The long-running certification server -----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "analysis/Certify.h"
#include "isa/ProgramHash.h"
#include "serve/Json.h"
#include "support/AtomicFile.h"
#include "support/StringUtils.h"
#include "tal/Parser.h"
#include "vm/Engine.h"
#include "vm/JitEngine.h"
#include "wile/Codegen.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace talft;
using namespace talft::serve;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t msSince(Clock::time_point T0) {
  return (uint64_t)std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now() - T0)
      .count();
}

bool sendAll(int Fd, const char *Data, size_t Len) {
  while (Len) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= (size_t)N;
  }
  return true;
}

bool sendLine(int Fd, const std::string &S) {
  std::string Out = S;
  Out.push_back('\n');
  return sendAll(Fd, Out.data(), Out.size());
}

std::string verdictTableJson(const VerdictTable &T) {
  std::string S = "{";
  for (size_t I = 0; I != NumVerdicts; ++I) {
    if (I)
      S += ", ";
    S += formatv("\"%s\": %llu", verdictJsonKey((Verdict)I),
                 (unsigned long long)T.Counts[I]);
  }
  S += "}";
  return S;
}

WorkerPoolOptions poolOptions(const ServerOptions &O) {
  WorkerPoolOptions P;
  P.Workers = O.PoolWorkers;
  P.CampaignThreads = O.CampaignThreads;
  P.ShardTimeoutMs = O.ShardTimeoutMs;
  P.MaxAttempts = O.MaxShardAttempts;
  P.ChaosCrashEveryN = O.ChaosCrashEveryN;
  P.ChaosSignal = O.ChaosSignal;
  return P;
}

} // namespace

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Memo(Opts.CacheEntries, Opts.CacheDir),
      Pool(poolOptions(Opts)) {
  if (Opts.Workers == 0)
    Opts.Workers = 1;
  if (Opts.DefaultShards == 0)
    Opts.DefaultShards = 1;
  if (Opts.MaxLineBytes == 0)
    Opts.MaxLineBytes = 32u << 20;
}

Server::~Server() {
  if (Started.load())
    stop();
}

bool Server::start(std::string *Err) {
  auto Fail = [&](const char *What) {
    if (Err)
      *Err = formatv("%s: %s", What, std::strerror(errno));
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    Pool.stop();
    return false;
  };

  // A client (or a dead worker's pipe) closing mid-write must be an
  // error return, never a process-killing signal.
  ::signal(SIGPIPE, SIG_IGN);

  if (!Opts.CacheDir.empty() &&
      !support::createDirectories(Opts.CacheDir)) {
    if (Err)
      *Err = "cannot create cache directory \"" + Opts.CacheDir + "\"";
    return false;
  }

  if (!Opts.WalPath.empty() && !Wal.open(Opts.WalPath, Err))
    return false;

  // Fork the worker pool before any thread exists: the children inherit
  // a single-threaded image, so nothing can be forked mid-malloc.
  if (!Pool.start(Err))
    return false;

  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Fail("socket");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons((uint16_t)Opts.Port);
  if (::inet_pton(AF_INET, Opts.Host.c_str(), &Addr.sin_addr) != 1) {
    if (Err)
      *Err = "invalid host address \"" + Opts.Host + "\"";
    ::close(ListenFd);
    ListenFd = -1;
    Pool.stop();
    return false;
  }
  if (::bind(ListenFd, (sockaddr *)&Addr, sizeof(Addr)) < 0)
    return Fail("bind");
  if (::listen(ListenFd, 64) < 0)
    return Fail("listen");

  sockaddr_in Bound{};
  socklen_t BoundLen = sizeof(Bound);
  if (::getsockname(ListenFd, (sockaddr *)&Bound, &BoundLen) < 0)
    return Fail("getsockname");
  BoundPort = ntohs(Bound.sin_port);

  Started.store(true);
  Acceptor = std::thread([this] { acceptLoop(); });
  for (unsigned I = 0; I != Opts.Workers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  if (!Wal.pending().empty())
    Replayer = std::thread([this] { replayLoop(); });
  return true;
}

void Server::requestDrain() {
  bool Expected = false;
  if (!Draining.compare_exchange_strong(Expected, true))
    return;
  // Wake the accept loop; pending connections are refused by the workers.
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  QueueCv.notify_all();
}

void Server::wait() {
  if (Acceptor.joinable())
    Acceptor.join();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
  Workers.clear();
  if (Replayer.joinable())
    Replayer.join();
  Pool.stop();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  Started.store(false);
}

void Server::stop() {
  requestDrain();
  wait();
}

uint64_t Server::retryAfterMsEstimate() const {
  // How long until a queue slot frees up: the average shard time scaled
  // by the backlog, floored so clients never busy-spin against a server
  // that has not yet served a shard.
  double AvgShardMs;
  size_t Depth;
  {
    std::lock_guard<std::mutex> Lock(CountersMu);
    AvgShardMs = Counters.ShardsRetired
                     ? Counters.ShardSeconds * 1000.0 /
                           (double)Counters.ShardsRetired
                     : 0.0;
  }
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Depth = Queue.size();
  }
  uint64_t Estimate = (uint64_t)(AvgShardMs * (double)(Depth + 1));
  return std::min<uint64_t>(std::max<uint64_t>(Estimate, 200), 60000);
}

void Server::acceptLoop() {
  while (true) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR && !Draining.load())
        continue;
      break; // drained or listener gone
    }
    {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.Connections;
    }

    std::unique_lock<std::mutex> Lock(QueueMu);
    if (Draining.load() || Queue.size() >= Opts.QueueCap) {
      bool IsDraining = Draining.load();
      Lock.unlock();
      {
        std::lock_guard<std::mutex> CLock(CountersMu);
        ++Counters.Rejected;
        if (!IsDraining)
          ++Counters.Overloaded;
      }
      if (IsDraining) {
        emitLine(Fd, formatv("{\"event\": \"error\", \"schema\": \"%s\", "
                             "\"code\": \"draining\", \"error\": "
                             "\"server is draining, try again later\"}",
                             ProtocolSchema));
      } else {
        // Shed load ahead of the kernel accept backlog: the client gets
        // a machine-readable hint for when a slot should be free.
        emitLine(Fd,
                 formatv("{\"event\": \"error\", \"schema\": \"%s\", "
                         "\"code\": \"overloaded\", \"retry_after_ms\": "
                         "%llu, \"error\": \"server is at capacity, retry "
                         "later\"}",
                         ProtocolSchema,
                         (unsigned long long)retryAfterMsEstimate()));
      }
      ::close(Fd);
      continue;
    }
    Queue.push_back(Fd);
    Lock.unlock();
    QueueCv.notify_one();
  }
}

void Server::workerLoop() {
  while (true) {
    int Fd = -1;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCv.wait(Lock,
                   [this] { return !Queue.empty() || Draining.load(); });
      if (Queue.empty())
        return; // draining and nothing queued
      Fd = Queue.front();
      Queue.pop_front();
    }
    if (Draining.load()) {
      // Accepted before the drain, never served: refuse rather than start
      // work the drain would immediately cut short.
      {
        std::lock_guard<std::mutex> Lock(CountersMu);
        ++Counters.Rejected;
      }
      emitLine(Fd, formatv("{\"event\": \"error\", \"schema\": \"%s\", "
                           "\"code\": \"draining\", \"error\": "
                           "\"server is draining\"}",
                           ProtocolSchema));
      ::close(Fd);
      continue;
    }
    ++Active;
    handleConnection(Fd);
    --Active;
  }
}

void Server::replayLoop() {
  // Recovered accepts, oldest first. Each replays through the same
  // pipeline as a live submission (memo probe first, so shards already
  // folded before the crash are not rerun); the terminal event retires
  // the WAL record. A drain mid-replay leaves the rest pending for the
  // next restart.
  for (const PendingSubmission &S : Wal.pending()) {
    if (Draining.load())
      return;
    runSubmission(/*Fd=*/-1, S.Spec, /*ReplayId=*/S.Id);
  }
}

bool Server::emitLine(int Fd, const std::string &S) {
  if (Fd < 0)
    return true; // replay: there is no client
  if (sendLine(Fd, S))
    return true;
  std::lock_guard<std::mutex> Lock(CountersMu);
  ++Counters.SendFailures;
  return false;
}

void Server::handleConnection(int Fd) {
  std::string Buf;
  char Chunk[4096];
  bool Keep = true;
  Clock::time_point LastActivity = Clock::now();
  while (Keep) {
    size_t NL;
    while (Keep && (NL = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty())
        continue;
      Keep = handleRequest(Fd, Line);
      LastActivity = Clock::now();
    }
    if (!Keep)
      break;
    if (Buf.size() > Opts.MaxLineBytes) {
      // A structured refusal, not a silent close: the client learns the
      // cap instead of diagnosing a reset.
      {
        std::lock_guard<std::mutex> Lock(CountersMu);
        ++Counters.OversizedLines;
        ++Counters.Errors;
      }
      emitLine(Fd, formatv("{\"event\": \"error\", \"schema\": \"%s\", "
                           "\"code\": \"bad_request\", \"error\": "
                           "\"request line exceeds %llu bytes\"}",
                           ProtocolSchema,
                           (unsigned long long)Opts.MaxLineBytes));
      break;
    }
    // Block in poll, not in a recv/EAGAIN spin: wake every 500ms to
    // honor a drain and the idle timer without burning a core.
    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1, 500);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (R == 0) {
      if (Draining.load())
        break;
      if (Opts.IdleTimeoutMs && msSince(LastActivity) >= Opts.IdleTimeoutMs) {
        std::lock_guard<std::mutex> Lock(CountersMu);
        ++Counters.IdleClosed;
        break;
      }
      continue;
    }
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N > 0) {
      Buf.append(Chunk, (size_t)N);
      LastActivity = Clock::now();
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    break; // client closed or connection error
  }
  ::close(Fd);
}

bool Server::handleRequest(int Fd, const std::string &Line) {
  // Minimal HTTP escape hatch so `curl http://host:port/stats` works.
  if (Line.rfind("GET ", 0) == 0) {
    bool IsStats = Line.rfind("GET /stats", 0) == 0;
    std::string Body = IsStats ? statsJson() + "\n"
                               : std::string("{\"error\": \"not found\"}\n");
    std::string Resp = formatv("HTTP/1.0 %s\r\n"
                               "Content-Type: application/json\r\n"
                               "Content-Length: %llu\r\n"
                               "Connection: close\r\n\r\n",
                               IsStats ? "200 OK" : "404 Not Found",
                               (unsigned long long)Body.size());
    Resp += Body;
    if (!sendAll(Fd, Resp.data(), Resp.size())) {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.SendFailures;
    }
    return false;
  }

  std::string ParseErr;
  std::optional<JsonValue> Doc = JsonValue::parse(Line, &ParseErr);
  if (!Doc || !Doc->isObject()) {
    {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.Errors;
    }
    emitLine(Fd, formatv("{\"event\": \"error\", \"schema\": \"%s\", "
                         "\"code\": \"bad_request\", \"error\": %s}",
                         ProtocolSchema,
                         jsonQuote(Doc ? "request is not a JSON object"
                                       : "parse error: " + ParseErr)
                             .c_str()));
    return true;
  }

  std::string Cmd = Doc->stringAt("cmd", "");
  if (Cmd == "ping") {
    return emitLine(Fd, formatv("{\"event\": \"pong\", \"schema\": \"%s\", "
                                "\"build\": %s}",
                                ProtocolSchema,
                                jsonQuote(Opts.BuildId).c_str()));
  }
  if (Cmd == "stats")
    return emitLine(Fd, statsJson());
  if (Cmd == "submit") {
    handleSubmit(Fd, *Doc);
    return true;
  }
  {
    std::lock_guard<std::mutex> Lock(CountersMu);
    ++Counters.Errors;
  }
  emitLine(Fd, formatv("{\"event\": \"error\", \"schema\": \"%s\", "
                       "\"code\": \"bad_request\", \"error\": %s}",
                       ProtocolSchema,
                       jsonQuote("unknown cmd \"" + Cmd + "\"").c_str()));
  return true;
}

void Server::noteShardRetired(const CampaignResult &R) {
  std::lock_guard<std::mutex> Lock(CountersMu);
  ++Counters.ShardsRetired;
  Counters.TasksClassified += R.Stats.Tasks + R.Stats.PrunedTasks;
  Counters.ShardSeconds += R.Stats.WallSeconds;
  Counters.EarlyExits += R.Stats.EarlyExits;
  Counters.StepsSaved += R.Stats.StepsSaved;
  Counters.LockstepSkips += R.Stats.LockstepSkips;
  Counters.LaneGroups += R.Stats.LaneGroups;
  Counters.LaneTasks += R.Stats.LaneTasks;
}

void Server::handleSubmit(int Fd, const JsonValue &Request) {
  SubmitSpec Spec;
  std::string SpecErr;
  if (!specFromJson(Request, Spec, SpecErr)) {
    {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.Errors;
    }
    emitLine(Fd, formatv("{\"event\": \"error\", \"schema\": \"%s\", "
                         "\"code\": \"bad_request\", \"error\": %s}",
                         ProtocolSchema, jsonQuote(SpecErr).c_str()));
    return;
  }
  runSubmission(Fd, Spec, /*ReplayId=*/0);
}

void Server::runSubmission(int Fd, const SubmitSpec &Spec,
                           uint64_t ReplayId) {
  // The WAL record this submission retires on its terminal event. Live
  // submissions append one below; replays retire the recovered record.
  uint64_t WalId = ReplayId;
  auto Retire = [&](const std::string &Outcome) {
    Wal.appendRetire(WalId, Outcome);
    WalId = 0;
  };
  auto Fail = [&](const std::string &Code, const std::string &Msg) {
    {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.Errors;
    }
    emitLine(Fd, formatv("{\"event\": \"error\", \"schema\": \"%s\", "
                         "\"code\": \"%s\", \"error\": %s}",
                         ProtocolSchema, Code.c_str(),
                         jsonQuote(Msg).c_str()));
    Retire("failed:" + Code);
  };

  {
    std::lock_guard<std::mutex> Lock(CountersMu);
    ++Counters.Submits;
  }

  // Compile (Wile through the fault-tolerant backend, TAL verbatim).
  TypeContext TC;
  DiagnosticEngine Diags;
  std::optional<wile::CompiledProgram> Compiled;
  std::optional<Program> Parsed;
  const Program *Prog = nullptr;
  if (Spec.Lang == "wile") {
    Expected<wile::CompiledProgram> CP = wile::compileWile(
        TC, Spec.Source, wile::CodegenMode::FaultTolerant, Diags);
    if (!CP)
      return Fail("compile_error", CP.message());
    Compiled.emplace(std::move(*CP));
    Prog = &Compiled->Prog;
  } else {
    Expected<Program> P = parseAndLayoutTalProgram(TC, Spec.Source, Diags);
    if (!P)
      return Fail("compile_error", P.message());
    Parsed.emplace(std::move(*P));
    Prog = &*Parsed;
  }

  Expected<MachineState> S0 = Prog->initialState();
  if (Error Err = S0.takeError())
    return Fail("compile_error", Err.message());

  // Identity: the memo key. The campaign recomputes the same program hash
  // internally; the tests assert they agree.
  uint64_t PH = programContentHash(Prog->code(), Prog->entryAddress(),
                                   Prog->exitAddress(), *S0);
  uint64_t OD = optionsDigest(Spec);
  MemoKey Key{PH, OD};

  // Certification ladder (independent of the campaign; raw-semantics
  // sweeps run even for programs the checker rejects, as in fig10).
  analysis::Certification Cert = analysis::certifyProgram(TC, *Prog);
  std::string CertKey = certificationStatusJsonKey(Cert.Status);

  // Cache probe: a complete entry answers outright; a partial entry (a
  // drained campaign's folded prefix) resumes with its own shard
  // partition; a miss starts from shard 0.
  MemoEntry Entry;
  unsigned StartShard = 0;
  const char *Cache = "miss";
  if (std::optional<MemoEntry> Hit = Memo.lookup(Key)) {
    if (Hit->complete()) {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.CacheHits;
    } else {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.Resumed;
    }
    Entry = std::move(*Hit);
    StartShard = Entry.ShardsDone;
    Cache = Entry.complete() ? "hit" : "partial";
  } else {
    Entry.Key = Key;
    Entry.Name = Spec.Name;
    Entry.ShardsTotal = Spec.Shards ? Spec.Shards : Opts.DefaultShards;
  }
  Entry.Certification = CertKey;

  // Durability point: once the accept record is fsync'd, a crashed
  // server replays this submission on restart. Replays already hold a
  // record; cache-complete hits run no shards but are logged anyway so
  // the retire outcome documents them.
  if (!WalId)
    WalId = Wal.appendAccept(Spec.Name, PH, OD, Entry.ShardsTotal,
                             submitRequestJson(Spec));
  const char *ServedOutcome = ReplayId ? "replayed" : "served";

  emitLine(Fd,
           formatv("{\"event\": \"accepted\", \"schema\": \"%s\", "
                   "\"name\": %s, \"program_hash\": \"%s\", "
                   "\"options_digest\": \"%s\", \"certification\": \"%s\", "
                   "\"cache\": \"%s\", \"shards_total\": %u, "
                   "\"shards_done\": %u, \"wal_id\": %llu, \"build\": %s}",
                   ProtocolSchema, jsonQuote(Spec.Name).c_str(),
                   programHashString(PH).c_str(),
                   programHashString(OD).c_str(), CertKey.c_str(), Cache,
                   Entry.ShardsTotal, StartShard, (unsigned long long)WalId,
                   jsonQuote(Opts.BuildId).c_str()));

  auto SendResult = [&](const MemoEntry &E, const char *How) {
    std::string Out =
        formatv("{\"event\": \"result\", \"schema\": \"%s\", "
                "\"name\": %s, \"certification\": \"%s\", "
                "\"cache\": \"%s\", \"shards_total\": %u, "
                "\"shards_done\": %u, \"campaign\": ",
                ProtocolSchema, jsonQuote(Spec.Name).c_str(),
                E.Certification.c_str(), How, E.ShardsTotal, E.ShardsDone);
    Out += campaignJsonLine(E.Folded);
    Out += "}";
    emitLine(Fd, Out);
  };

  if (Entry.complete()) {
    // Resubmission of certified content: zero shards run.
    {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.Completed;
      if (ReplayId)
        ++Counters.Replayed;
    }
    SendResult(Entry, "hit");
    Retire(ServedOutcome);
    return;
  }

  // Engine choice is provenance, not policy: tables are engine-invariant
  // by the engine contract, and the options digest keeps entries from
  // answering across engines.
  std::unique_ptr<ExecEngine> Vm;
  const ExecEngine *E = &referenceEngine();
  if (Spec.Engine == "vm") {
    Vm = vm::createEngine(Prog->code());
    E = Vm.get();
  } else if (Spec.Engine == "jit") {
    Vm = vm::createJitEngine(Prog->code());
    E = Vm.get();
  }

  // Stride: explicit, or adapted from the reference length exactly as the
  // batch CLI's fig10 sweep does (max(1, steps/12)). Step counts are
  // engine-independent, so a resumed campaign re-derives the same stride.
  uint64_t Stride = Spec.Stride;
  if (Stride == 0) {
    TheoremConfig Probe;
    Probe.MaxSteps = Spec.MaxSteps;
    MachineState S = *S0;
    RunResult RR = E->run(S, Prog->exitAddress(), Probe.MaxSteps, Probe.Policy);
    if (RR.Status != RunStatus::Halted)
      return Fail("campaign_error",
                  formatv("reference run did not halt (%s)",
                          runStatusName(RR.Status)));
    Stride = std::max<uint64_t>(1, RR.Steps / 12);
  }

  // Deadline: request-level, falling back to the server default. It
  // bounds shard dispatch and retries; it is not part of the memo key.
  uint64_t DeadlineMs =
      Spec.DeadlineMs ? Spec.DeadlineMs : Opts.DefaultDeadlineMs;
  Clock::time_point T0 = Clock::now();

  // The worker request: the submission spliced with the already-resolved
  // stride and the thread budget. The shard slice is appended per shard.
  std::string BaseRequest = submitRequestJson(Spec);
  BaseRequest.insert(BaseRequest.rfind('}'),
                     formatv(", \"resolved_stride\": %llu, "
                             "\"campaign_threads\": %u",
                             (unsigned long long)Stride,
                             Opts.CampaignThreads));

  TheoremConfig Config = theoremConfig(Spec, Stride);
  unsigned Shards = Entry.ShardsTotal;
  bool Drained = false;
  for (unsigned I = StartShard; I != Shards; ++I) {
    if (Draining.load()) {
      Drained = true;
      break;
    }
    if (DeadlineMs && msSince(T0) >= DeadlineMs) {
      {
        std::lock_guard<std::mutex> Lock(CountersMu);
        ++Counters.DeadlineExceeded;
      }
      return Fail("deadline_exceeded",
                  formatv("submission deadline of %llu ms expired after "
                          "%u of %u shards",
                          (unsigned long long)DeadlineMs, I, Shards));
    }

    CampaignResult R;
    unsigned Attempts = 1;
    if (Pool.enabled()) {
      std::string Req = BaseRequest;
      Req.insert(Req.rfind('}'),
                 formatv(", \"shard_index\": %u, \"shard_count\": %u", I,
                         Shards));
      uint64_t Left = 0;
      if (DeadlineMs) {
        uint64_t Spent = msSince(T0);
        Left = Spent >= DeadlineMs ? 1 : DeadlineMs - Spent;
      }
      WorkerPool::ShardOutcome O = Pool.runShard(Req, Left);
      if (!O.Ok) {
        if (O.Code == "draining") {
          Drained = true;
          break;
        }
        {
          std::lock_guard<std::mutex> Lock(CountersMu);
          if (O.Code == "deadline_exceeded")
            ++Counters.DeadlineExceeded;
          else if (O.Code == "shard_poisoned")
            ++Counters.PoisonedSubmits;
        }
        // The submission fails contained: the pool already replaced the
        // dead workers and every other submission keeps flowing.
        {
          std::lock_guard<std::mutex> Lock(CountersMu);
          ++Counters.Errors;
        }
        emitLine(Fd,
                 formatv("{\"event\": \"error\", \"schema\": \"%s\", "
                         "\"code\": \"%s\", \"shard\": %u, "
                         "\"attempts\": %u, \"error\": %s}",
                         ProtocolSchema, O.Code.c_str(), I, O.Attempts,
                         jsonQuote(O.Error).c_str()));
        Retire("failed:" + O.Code);
        return;
      }
      R = std::move(O.Result);
      Attempts = O.Attempts;
    } else {
      CampaignOptions CO;
      CO.Threads = Opts.CampaignThreads;
      CO.Engine = Vm.get(); // null for the reference interpreter
      applySpecOptions(Spec, CO);
      CO.ShardCount = Shards;
      CO.ShardIndex = I;
      R = runSingleFaultCampaign(*Prog, Config, CO);
    }
    noteShardRetired(R);

    emitLine(Fd, formatv("{\"event\": \"shard\", \"schema\": \"%s\", "
                         "\"index\": %u, \"count\": %u, "
                         "\"first_task\": %llu, \"tasks\": %llu, "
                         "\"ok\": %s, \"attempts\": %u, "
                         "\"wall_seconds\": %.6f, \"verdicts\": %s}",
                         ProtocolSchema, I, Shards,
                         (unsigned long long)R.Stats.ShardFirstTask,
                         (unsigned long long)R.Stats.Tasks,
                         R.Ok ? "true" : "false", Attempts,
                         R.Stats.WallSeconds,
                         verdictTableJson(R.Table).c_str()));

    if (I == 0)
      Entry.Folded = std::move(R);
    else
      foldShardResult(Entry.Folded, R);
    Entry.ShardsDone = I + 1;
    // Persist after every shard: a drain (or a crash) loses at most the
    // shard in flight, and the resume path needs no extra bookkeeping.
    Memo.store(Entry);

    uint64_t Retired = ++ShardsRetiredTotal;
    if (Opts.DrainAfterShards && Retired >= Opts.DrainAfterShards)
      requestDrain();
  }

  if (Drained) {
    {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.Drained;
    }
    emitLine(Fd, formatv("{\"event\": \"drained\", \"schema\": \"%s\", "
                         "\"name\": %s, \"program_hash\": \"%s\", "
                         "\"shards_done\": %u, \"shards_total\": %u, "
                         "\"resumable\": true}",
                         ProtocolSchema, jsonQuote(Spec.Name).c_str(),
                         programHashString(PH).c_str(), Entry.ShardsDone,
                         Entry.ShardsTotal));
    // A drained *replay* stays pending: nobody has seen its result, so
    // the next restart must pick it up again (the folded prefix is in
    // the memo store, so it resumes, not reruns). A drained client
    // submission retires — the client got a terminal event and the
    // partial fold persists for its resubmission.
    if (!ReplayId)
      Retire("drained");
    return;
  }

  {
    std::lock_guard<std::mutex> Lock(CountersMu);
    ++Counters.Completed;
    if (ReplayId)
      ++Counters.Replayed;
  }
  SendResult(Entry, Cache);
  Retire(ServedOutcome);
}

std::string Server::statsJson() const {
  ServeCounters C;
  {
    std::lock_guard<std::mutex> Lock(CountersMu);
    C = Counters;
  }
  size_t Depth;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Depth = Queue.size();
  }
  MemoStats M = Memo.stats();
  uint64_t Lookups = M.Hits + M.PartialHits + M.Misses;
  double HitRate = Lookups ? (double)M.Hits / (double)Lookups : 0.0;
  double Throughput =
      C.ShardSeconds > 0 ? (double)C.TasksClassified / C.ShardSeconds : 0.0;

  std::string S = formatv(
      "{\"schema\": \"%s\", \"build\": %s, \"port\": %u, "
      "\"draining\": %s, \"queue_depth\": %llu, \"queue_cap\": %llu, "
      "\"workers\": %u, \"active\": %u",
      StatsSchema, jsonQuote(Opts.BuildId).c_str(), BoundPort,
      Draining.load() ? "true" : "false", (unsigned long long)Depth,
      (unsigned long long)Opts.QueueCap, Opts.Workers, Active.load());
  S += formatv(", \"connections\": %llu, \"rejected\": %llu, "
               "\"overloaded\": %llu, \"submits\": %llu, "
               "\"completed\": %llu, \"drained\": %llu, "
               "\"replayed\": %llu, \"errors\": %llu, \"resumed\": %llu",
               (unsigned long long)C.Connections,
               (unsigned long long)C.Rejected,
               (unsigned long long)C.Overloaded,
               (unsigned long long)C.Submits,
               (unsigned long long)C.Completed, (unsigned long long)C.Drained,
               (unsigned long long)C.Replayed, (unsigned long long)C.Errors,
               (unsigned long long)C.Resumed);
  S += formatv(", \"deadline_exceeded\": %llu, \"poisoned\": %llu, "
               "\"send_failures\": %llu, \"oversized_lines\": %llu, "
               "\"idle_closed\": %llu",
               (unsigned long long)C.DeadlineExceeded,
               (unsigned long long)C.PoisonedSubmits,
               (unsigned long long)C.SendFailures,
               (unsigned long long)C.OversizedLines,
               (unsigned long long)C.IdleClosed);
  S += formatv(", \"cache\": {\"hits\": %llu, \"partial_hits\": %llu, "
               "\"misses\": %llu, \"hit_rate\": %.4f, \"evictions\": %llu, "
               "\"disk_loads\": %llu, \"disk_stores\": %llu, "
               "\"entries\": %llu, \"capacity\": %llu}",
               (unsigned long long)M.Hits, (unsigned long long)M.PartialHits,
               (unsigned long long)M.Misses, HitRate,
               (unsigned long long)M.Evictions,
               (unsigned long long)M.DiskLoads,
               (unsigned long long)M.DiskStores,
               (unsigned long long)M.Entries,
               (unsigned long long)M.Capacity);

  // Pool health; the pids are the chaos harness's kill list.
  WorkerPoolStats P = Pool.stats();
  S += formatv(", \"pool\": {\"workers\": %u, \"alive\": %u, \"busy\": %u, "
               "\"spawned\": %llu, \"dispatched\": %llu, "
               "\"crashes\": %llu, \"timeouts\": %llu, \"retries\": %llu, "
               "\"poisoned\": %llu, \"chaos_injected\": %llu, \"pids\": [",
               Opts.PoolWorkers, P.Alive, P.Busy,
               (unsigned long long)P.Spawned,
               (unsigned long long)P.Dispatched,
               (unsigned long long)P.Crashes, (unsigned long long)P.Timeouts,
               (unsigned long long)P.Retries, (unsigned long long)P.Poisoned,
               (unsigned long long)P.ChaosInjected);
  std::vector<pid_t> Pids = Pool.workerPids();
  for (size_t I = 0; I != Pids.size(); ++I)
    S += formatv(I ? ", %d" : "%d", (int)Pids[I]);
  S += "]}";

  SubmitLogStats W = Wal.stats();
  S += formatv(", \"wal\": {\"enabled\": %s, \"path\": %s, "
               "\"appends\": %llu, \"retires\": %llu, \"recovered\": %llu, "
               "\"torn_bytes\": %llu, \"corrupt_frames\": %llu, "
               "\"fsyncs\": %llu}",
               Wal.enabled() ? "true" : "false",
               jsonQuote(Wal.path()).c_str(), (unsigned long long)W.Appends,
               (unsigned long long)W.Retires,
               (unsigned long long)W.Recovered,
               (unsigned long long)W.TornBytes,
               (unsigned long long)W.CorruptFrames,
               (unsigned long long)W.Fsyncs);

  S += formatv(", \"shards\": {\"retired\": %llu, "
               "\"tasks_classified\": %llu, \"seconds\": %.6f, "
               "\"tasks_per_second\": %.1f}",
               (unsigned long long)C.ShardsRetired,
               (unsigned long long)C.TasksClassified, C.ShardSeconds,
               Throughput);
  S += formatv(", \"convergence\": {\"early_exits\": %llu, "
               "\"steps_saved\": %llu, \"lockstep_skips\": %llu}",
               (unsigned long long)C.EarlyExits,
               (unsigned long long)C.StepsSaved,
               (unsigned long long)C.LockstepSkips);
  S += formatv(", \"lanes\": {\"groups\": %llu, \"lane_tasks\": %llu}}",
               (unsigned long long)C.LaneGroups,
               (unsigned long long)C.LaneTasks);
  return S;
}
