//===- serve/Server.cpp - The long-running certification server -----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "analysis/Certify.h"
#include "isa/ProgramHash.h"
#include "serve/Json.h"
#include "support/AtomicFile.h"
#include "support/StringUtils.h"
#include "tal/Parser.h"
#include "vm/Engine.h"
#include "wile/Codegen.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace talft;
using namespace talft::serve;

namespace {

/// A connection with no complete line in this many bytes is hostile.
constexpr size_t MaxLineBytes = 32u << 20;

bool sendAll(int Fd, const char *Data, size_t Len) {
  while (Len) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= (size_t)N;
  }
  return true;
}

bool sendLine(int Fd, const std::string &S) {
  std::string Out = S;
  Out.push_back('\n');
  return sendAll(Fd, Out.data(), Out.size());
}

std::string verdictTableJson(const VerdictTable &T) {
  std::string S = "{";
  for (size_t I = 0; I != NumVerdicts; ++I) {
    if (I)
      S += ", ";
    S += formatv("\"%s\": %llu", verdictJsonKey((Verdict)I),
                 (unsigned long long)T.Counts[I]);
  }
  S += "}";
  return S;
}

} // namespace

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Memo(Opts.CacheEntries, Opts.CacheDir) {
  if (Opts.Workers == 0)
    Opts.Workers = 1;
  if (Opts.DefaultShards == 0)
    Opts.DefaultShards = 1;
}

Server::~Server() {
  if (Started.load())
    stop();
}

bool Server::start(std::string *Err) {
  auto Fail = [&](const char *What) {
    if (Err)
      *Err = formatv("%s: %s", What, std::strerror(errno));
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };

  if (!Opts.CacheDir.empty() &&
      !support::createDirectories(Opts.CacheDir)) {
    if (Err)
      *Err = "cannot create cache directory \"" + Opts.CacheDir + "\"";
    return false;
  }

  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Fail("socket");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons((uint16_t)Opts.Port);
  if (::inet_pton(AF_INET, Opts.Host.c_str(), &Addr.sin_addr) != 1) {
    if (Err)
      *Err = "invalid host address \"" + Opts.Host + "\"";
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::bind(ListenFd, (sockaddr *)&Addr, sizeof(Addr)) < 0)
    return Fail("bind");
  if (::listen(ListenFd, 64) < 0)
    return Fail("listen");

  sockaddr_in Bound{};
  socklen_t BoundLen = sizeof(Bound);
  if (::getsockname(ListenFd, (sockaddr *)&Bound, &BoundLen) < 0)
    return Fail("getsockname");
  BoundPort = ntohs(Bound.sin_port);

  Started.store(true);
  Acceptor = std::thread([this] { acceptLoop(); });
  for (unsigned I = 0; I != Opts.Workers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  return true;
}

void Server::requestDrain() {
  bool Expected = false;
  if (!Draining.compare_exchange_strong(Expected, true))
    return;
  // Wake the accept loop; pending connections are refused by the workers.
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  QueueCv.notify_all();
}

void Server::wait() {
  if (Acceptor.joinable())
    Acceptor.join();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
  Workers.clear();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  Started.store(false);
}

void Server::stop() {
  requestDrain();
  wait();
}

void Server::acceptLoop() {
  while (true) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR && !Draining.load())
        continue;
      break; // drained or listener gone
    }
    {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.Connections;
    }
    // Bound each read so a silent client cannot stall a drain.
    timeval Tv{0, 500 * 1000};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));

    std::unique_lock<std::mutex> Lock(QueueMu);
    if (Draining.load() || Queue.size() >= Opts.QueueCap) {
      const char *Why = Draining.load() ? "draining" : "queue_full";
      Lock.unlock();
      {
        std::lock_guard<std::mutex> CLock(CountersMu);
        ++Counters.Rejected;
      }
      sendLine(Fd, formatv("{\"event\": \"error\", \"schema\": \"%s\", "
                           "\"code\": \"%s\", \"error\": "
                           "\"server is %s, try again later\"}",
                           ProtocolSchema, Why,
                           Draining.load() ? "draining" : "at capacity"));
      ::close(Fd);
      continue;
    }
    Queue.push_back(Fd);
    Lock.unlock();
    QueueCv.notify_one();
  }
}

void Server::workerLoop() {
  while (true) {
    int Fd = -1;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCv.wait(Lock,
                   [this] { return !Queue.empty() || Draining.load(); });
      if (Queue.empty())
        return; // draining and nothing queued
      Fd = Queue.front();
      Queue.pop_front();
    }
    if (Draining.load()) {
      // Accepted before the drain, never served: refuse rather than start
      // work the drain would immediately cut short.
      {
        std::lock_guard<std::mutex> Lock(CountersMu);
        ++Counters.Rejected;
      }
      sendLine(Fd, formatv("{\"event\": \"error\", \"schema\": \"%s\", "
                           "\"code\": \"draining\", \"error\": "
                           "\"server is draining\"}",
                           ProtocolSchema));
      ::close(Fd);
      continue;
    }
    ++Active;
    handleConnection(Fd);
    --Active;
  }
}

void Server::handleConnection(int Fd) {
  std::string Buf;
  char Chunk[4096];
  bool Keep = true;
  while (Keep) {
    size_t NL;
    while (Keep && (NL = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty())
        continue;
      Keep = handleRequest(Fd, Line);
    }
    if (!Keep || Buf.size() > MaxLineBytes)
      break;
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N > 0) {
      Buf.append(Chunk, (size_t)N);
      continue;
    }
    if (N == 0)
      break; // client closed
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      if (Draining.load())
        break;
      continue;
    }
    break;
  }
  ::close(Fd);
}

bool Server::handleRequest(int Fd, const std::string &Line) {
  // Minimal HTTP escape hatch so `curl http://host:port/stats` works.
  if (Line.rfind("GET ", 0) == 0) {
    bool IsStats = Line.rfind("GET /stats", 0) == 0;
    std::string Body = IsStats ? statsJson() + "\n"
                               : std::string("{\"error\": \"not found\"}\n");
    std::string Resp = formatv("HTTP/1.0 %s\r\n"
                               "Content-Type: application/json\r\n"
                               "Content-Length: %llu\r\n"
                               "Connection: close\r\n\r\n",
                               IsStats ? "200 OK" : "404 Not Found",
                               (unsigned long long)Body.size());
    Resp += Body;
    sendAll(Fd, Resp.data(), Resp.size());
    return false;
  }

  std::string ParseErr;
  std::optional<JsonValue> Doc = JsonValue::parse(Line, &ParseErr);
  if (!Doc || !Doc->isObject()) {
    {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.Errors;
    }
    sendLine(Fd, formatv("{\"event\": \"error\", \"schema\": \"%s\", "
                         "\"code\": \"bad_request\", \"error\": %s}",
                         ProtocolSchema,
                         jsonQuote(Doc ? "request is not a JSON object"
                                       : "parse error: " + ParseErr)
                             .c_str()));
    return true;
  }

  std::string Cmd = Doc->stringAt("cmd", "");
  if (Cmd == "ping") {
    return sendLine(Fd, formatv("{\"event\": \"pong\", \"schema\": \"%s\", "
                                "\"build\": %s}",
                                ProtocolSchema,
                                jsonQuote(Opts.BuildId).c_str()));
  }
  if (Cmd == "stats")
    return sendLine(Fd, statsJson());
  if (Cmd == "submit") {
    handleSubmit(Fd, *Doc);
    return true;
  }
  {
    std::lock_guard<std::mutex> Lock(CountersMu);
    ++Counters.Errors;
  }
  sendLine(Fd, formatv("{\"event\": \"error\", \"schema\": \"%s\", "
                       "\"code\": \"bad_request\", \"error\": %s}",
                       ProtocolSchema,
                       jsonQuote("unknown cmd \"" + Cmd + "\"").c_str()));
  return true;
}

void Server::noteShardRetired(const CampaignResult &R) {
  std::lock_guard<std::mutex> Lock(CountersMu);
  ++Counters.ShardsRetired;
  Counters.TasksClassified += R.Stats.Tasks + R.Stats.PrunedTasks;
  Counters.ShardSeconds += R.Stats.WallSeconds;
  Counters.EarlyExits += R.Stats.EarlyExits;
  Counters.StepsSaved += R.Stats.StepsSaved;
  Counters.LockstepSkips += R.Stats.LockstepSkips;
  Counters.LaneGroups += R.Stats.LaneGroups;
  Counters.LaneTasks += R.Stats.LaneTasks;
}

void Server::handleSubmit(int Fd, const JsonValue &Request) {
  auto Fail = [&](const char *Code, const std::string &Msg) {
    {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.Errors;
    }
    sendLine(Fd, formatv("{\"event\": \"error\", \"schema\": \"%s\", "
                         "\"code\": \"%s\", \"error\": %s}",
                         ProtocolSchema, Code, jsonQuote(Msg).c_str()));
  };

  SubmitSpec Spec;
  std::string SpecErr;
  if (!specFromJson(Request, Spec, SpecErr))
    return Fail("bad_request", SpecErr);
  {
    std::lock_guard<std::mutex> Lock(CountersMu);
    ++Counters.Submits;
  }

  // Compile (Wile through the fault-tolerant backend, TAL verbatim).
  TypeContext TC;
  DiagnosticEngine Diags;
  std::optional<wile::CompiledProgram> Compiled;
  std::optional<Program> Parsed;
  const Program *Prog = nullptr;
  if (Spec.Lang == "wile") {
    Expected<wile::CompiledProgram> CP = wile::compileWile(
        TC, Spec.Source, wile::CodegenMode::FaultTolerant, Diags);
    if (!CP)
      return Fail("compile_error", CP.message());
    Compiled.emplace(std::move(*CP));
    Prog = &Compiled->Prog;
  } else {
    Expected<Program> P = parseAndLayoutTalProgram(TC, Spec.Source, Diags);
    if (!P)
      return Fail("compile_error", P.message());
    Parsed.emplace(std::move(*P));
    Prog = &*Parsed;
  }

  Expected<MachineState> S0 = Prog->initialState();
  if (Error Err = S0.takeError())
    return Fail("compile_error", Err.message());

  // Identity: the memo key. The campaign recomputes the same program hash
  // internally; the tests assert they agree.
  uint64_t PH = programContentHash(Prog->code(), Prog->entryAddress(),
                                   Prog->exitAddress(), *S0);
  uint64_t OD = optionsDigest(Spec);
  MemoKey Key{PH, OD};

  // Certification ladder (independent of the campaign; raw-semantics
  // sweeps run even for programs the checker rejects, as in fig10).
  analysis::Certification Cert = analysis::certifyProgram(TC, *Prog);
  std::string CertKey = certificationStatusJsonKey(Cert.Status);

  // Cache probe: a complete entry answers outright; a partial entry (a
  // drained campaign's folded prefix) resumes with its own shard
  // partition; a miss starts from shard 0.
  MemoEntry Entry;
  unsigned StartShard = 0;
  const char *Cache = "miss";
  if (std::optional<MemoEntry> Hit = Memo.lookup(Key)) {
    if (Hit->complete()) {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.CacheHits;
    } else {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.Resumed;
    }
    Entry = std::move(*Hit);
    StartShard = Entry.ShardsDone;
    Cache = Entry.complete() ? "hit" : "partial";
  } else {
    Entry.Key = Key;
    Entry.Name = Spec.Name;
    Entry.ShardsTotal = Spec.Shards ? Spec.Shards : Opts.DefaultShards;
  }
  Entry.Certification = CertKey;

  sendLine(Fd,
           formatv("{\"event\": \"accepted\", \"schema\": \"%s\", "
                   "\"name\": %s, \"program_hash\": \"%s\", "
                   "\"options_digest\": \"%s\", \"certification\": \"%s\", "
                   "\"cache\": \"%s\", \"shards_total\": %u, "
                   "\"shards_done\": %u, \"build\": %s}",
                   ProtocolSchema, jsonQuote(Spec.Name).c_str(),
                   programHashString(PH).c_str(),
                   programHashString(OD).c_str(), CertKey.c_str(), Cache,
                   Entry.ShardsTotal, StartShard,
                   jsonQuote(Opts.BuildId).c_str()));

  auto SendResult = [&](const MemoEntry &E, const char *How) {
    std::string Out =
        formatv("{\"event\": \"result\", \"schema\": \"%s\", "
                "\"name\": %s, \"certification\": \"%s\", "
                "\"cache\": \"%s\", \"shards_total\": %u, "
                "\"shards_done\": %u, \"campaign\": ",
                ProtocolSchema, jsonQuote(Spec.Name).c_str(),
                E.Certification.c_str(), How, E.ShardsTotal, E.ShardsDone);
    Out += campaignJsonLine(E.Folded);
    Out += "}";
    sendLine(Fd, Out);
  };

  if (Entry.complete()) {
    // Resubmission of certified content: zero shards run.
    {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.Completed;
    }
    SendResult(Entry, "hit");
    return;
  }

  // Engine choice is provenance, not policy: tables are engine-invariant
  // by the engine contract, and the options digest keeps entries from
  // answering across engines.
  std::unique_ptr<ExecEngine> Vm;
  const ExecEngine *E = &referenceEngine();
  if (Spec.Engine == "vm") {
    Vm = vm::createEngine(Prog->code());
    E = Vm.get();
  }

  // Stride: explicit, or adapted from the reference length exactly as the
  // batch CLI's fig10 sweep does (max(1, steps/12)). Step counts are
  // engine-independent, so a resumed campaign re-derives the same stride.
  uint64_t Stride = Spec.Stride;
  if (Stride == 0) {
    TheoremConfig Probe;
    Probe.MaxSteps = Spec.MaxSteps;
    MachineState S = *S0;
    RunResult RR = E->run(S, Prog->exitAddress(), Probe.MaxSteps, Probe.Policy);
    if (RR.Status != RunStatus::Halted)
      return Fail("campaign_error",
                  formatv("reference run did not halt (%s)",
                          runStatusName(RR.Status)));
    Stride = std::max<uint64_t>(1, RR.Steps / 12);
  }

  TheoremConfig Config = theoremConfig(Spec, Stride);
  unsigned Shards = Entry.ShardsTotal;
  bool Drained = false;
  for (unsigned I = StartShard; I != Shards; ++I) {
    if (Draining.load()) {
      Drained = true;
      break;
    }
    CampaignOptions CO;
    CO.Threads = Opts.CampaignThreads;
    CO.Engine = Vm.get(); // null for the reference interpreter
    applySpecOptions(Spec, CO);
    CO.ShardCount = Shards;
    CO.ShardIndex = I;
    CampaignResult R = runSingleFaultCampaign(*Prog, Config, CO);
    noteShardRetired(R);

    sendLine(Fd, formatv("{\"event\": \"shard\", \"schema\": \"%s\", "
                         "\"index\": %u, \"count\": %u, "
                         "\"first_task\": %llu, \"tasks\": %llu, "
                         "\"ok\": %s, \"wall_seconds\": %.6f, "
                         "\"verdicts\": %s}",
                         ProtocolSchema, I, Shards,
                         (unsigned long long)R.Stats.ShardFirstTask,
                         (unsigned long long)R.Stats.Tasks,
                         R.Ok ? "true" : "false", R.Stats.WallSeconds,
                         verdictTableJson(R.Table).c_str()));

    if (I == 0)
      Entry.Folded = std::move(R);
    else
      foldShardResult(Entry.Folded, R);
    Entry.ShardsDone = I + 1;
    // Persist after every shard: a drain (or a crash) loses at most the
    // shard in flight, and the resume path needs no extra bookkeeping.
    Memo.store(Entry);

    uint64_t Retired = ++ShardsRetiredTotal;
    if (Opts.DrainAfterShards && Retired >= Opts.DrainAfterShards)
      requestDrain();
  }

  if (Drained) {
    {
      std::lock_guard<std::mutex> Lock(CountersMu);
      ++Counters.Drained;
    }
    sendLine(Fd, formatv("{\"event\": \"drained\", \"schema\": \"%s\", "
                         "\"name\": %s, \"program_hash\": \"%s\", "
                         "\"shards_done\": %u, \"shards_total\": %u, "
                         "\"resumable\": true}",
                         ProtocolSchema, jsonQuote(Spec.Name).c_str(),
                         programHashString(PH).c_str(), Entry.ShardsDone,
                         Entry.ShardsTotal));
    return;
  }

  {
    std::lock_guard<std::mutex> Lock(CountersMu);
    ++Counters.Completed;
  }
  SendResult(Entry, Cache);
}

std::string Server::statsJson() const {
  ServeCounters C;
  {
    std::lock_guard<std::mutex> Lock(CountersMu);
    C = Counters;
  }
  size_t Depth;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Depth = Queue.size();
  }
  MemoStats M = Memo.stats();
  uint64_t Lookups = M.Hits + M.PartialHits + M.Misses;
  double HitRate = Lookups ? (double)M.Hits / (double)Lookups : 0.0;
  double Throughput =
      C.ShardSeconds > 0 ? (double)C.TasksClassified / C.ShardSeconds : 0.0;

  std::string S = formatv(
      "{\"schema\": \"%s\", \"build\": %s, \"port\": %u, "
      "\"draining\": %s, \"queue_depth\": %llu, \"queue_cap\": %llu, "
      "\"workers\": %u, \"active\": %u",
      StatsSchema, jsonQuote(Opts.BuildId).c_str(), BoundPort,
      Draining.load() ? "true" : "false", (unsigned long long)Depth,
      (unsigned long long)Opts.QueueCap, Opts.Workers, Active.load());
  S += formatv(", \"connections\": %llu, \"rejected\": %llu, "
               "\"submits\": %llu, \"completed\": %llu, "
               "\"drained\": %llu, \"errors\": %llu, \"resumed\": %llu",
               (unsigned long long)C.Connections,
               (unsigned long long)C.Rejected, (unsigned long long)C.Submits,
               (unsigned long long)C.Completed, (unsigned long long)C.Drained,
               (unsigned long long)C.Errors, (unsigned long long)C.Resumed);
  S += formatv(", \"cache\": {\"hits\": %llu, \"partial_hits\": %llu, "
               "\"misses\": %llu, \"hit_rate\": %.4f, \"evictions\": %llu, "
               "\"disk_loads\": %llu, \"disk_stores\": %llu, "
               "\"entries\": %llu, \"capacity\": %llu}",
               (unsigned long long)M.Hits, (unsigned long long)M.PartialHits,
               (unsigned long long)M.Misses, HitRate,
               (unsigned long long)M.Evictions,
               (unsigned long long)M.DiskLoads,
               (unsigned long long)M.DiskStores,
               (unsigned long long)M.Entries,
               (unsigned long long)M.Capacity);
  S += formatv(", \"shards\": {\"retired\": %llu, "
               "\"tasks_classified\": %llu, \"seconds\": %.6f, "
               "\"tasks_per_second\": %.1f}",
               (unsigned long long)C.ShardsRetired,
               (unsigned long long)C.TasksClassified, C.ShardSeconds,
               Throughput);
  S += formatv(", \"convergence\": {\"early_exits\": %llu, "
               "\"steps_saved\": %llu, \"lockstep_skips\": %llu}",
               (unsigned long long)C.EarlyExits,
               (unsigned long long)C.StepsSaved,
               (unsigned long long)C.LockstepSkips);
  S += formatv(", \"lanes\": {\"groups\": %llu, \"lane_tasks\": %llu}}",
               (unsigned long long)C.LaneGroups,
               (unsigned long long)C.LaneTasks);
  return S;
}
