//===- serve/SubmitLog.h - Write-ahead submission log ---------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The certification server's write-ahead log: every accepted submission
/// is appended — atomically framed, CRC-checked, fsync'd — *before* any
/// shard work starts, and marked retired after the client has received
/// its terminal event (result, drained, or a structured error). A server
/// killed mid-campaign (crash, OOM, SIGKILL) therefore cannot silently
/// lose accepted work: on restart, open() scans the log, discards a torn
/// tail (a frame cut mid-write fails its CRC or length check and the
/// file is truncated back to the last whole record), and hands back the
/// accepted-but-unretired entries; the server replays them through the
/// memo store's partial-fold path, so a resubmitting client gets a cache
/// hit instead of a rerun.
///
/// On-disk format: a sequence of frames, each
///
///   [u32 payload length][u32 crc32(payload)][payload]
///
/// where the payload is one JSON object, either
///   {"wal":"accept","id":N,"name":...,"program_hash":...,
///    "options_digest":...,"shards_total":N,"spec":{...submit request...}}
/// or
///   {"wal":"retire","id":N,"outcome":"served"|"drained"|"replayed"|
///    "failed:<code>"}.
///
/// open() also compacts: retired pairs are dropped and the log is
/// rewritten (atomically, support/AtomicFile.h) holding only the pending
/// accepts, so the file is bounded by the in-flight backlog rather than
/// the server's lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SERVE_SUBMITLOG_H
#define TALFT_SERVE_SUBMITLOG_H

#include "serve/Protocol.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace talft::serve {

/// One accepted-but-unretired submission recovered from the log.
struct PendingSubmission {
  uint64_t Id = 0;
  std::string Name;
  uint64_t ProgramHash = 0;
  uint64_t OptionsDigest = 0;
  unsigned ShardsTotal = 0;
  /// The submission's options, parsed back out of the logged request —
  /// a pending entry carries everything replay needs.
  SubmitSpec Spec;
  /// The verbatim accept record, re-appended by open()'s compaction.
  std::string AcceptJson;
};

struct SubmitLogStats {
  uint64_t Appends = 0;     ///< accept records written (this process)
  uint64_t Retires = 0;     ///< retire records written (this process)
  uint64_t Recovered = 0;   ///< pending entries handed back by open()
  uint64_t TornBytes = 0;   ///< tail bytes discarded by open()'s scan
  uint64_t CorruptFrames = 0; ///< CRC-failed frames skipped by the scan
  uint64_t Fsyncs = 0;
};

class SubmitLog {
public:
  SubmitLog() = default;
  ~SubmitLog();

  SubmitLog(const SubmitLog &) = delete;
  SubmitLog &operator=(const SubmitLog &) = delete;

  bool enabled() const { return Fd >= 0; }
  const std::string &path() const { return Path; }

  /// Opens (creating if absent) the log at \p P, scans it, truncates any
  /// torn tail, compacts retired records away, and exposes the surviving
  /// pending entries via pending(). Returns false with \p Err on I/O
  /// failure.
  bool open(const std::string &P, std::string *Err);

  /// The accepted-but-unretired submissions recovered by open(), oldest
  /// first. Stable until the next open().
  const std::vector<PendingSubmission> &pending() const { return Pending; }

  /// Appends an accept record and fsyncs before returning, so the caller
  /// may promise the client the submission is durable. Returns the new
  /// record id (0 when the log is disabled or the write failed — the
  /// caller degrades to best-effort serving, it does not refuse).
  uint64_t appendAccept(const std::string &Name, uint64_t ProgramHash,
                        uint64_t OptionsDigest, unsigned ShardsTotal,
                        const std::string &SpecJson);

  /// Appends a retire record for \p Id (fsync'd). No-op for id 0.
  void appendRetire(uint64_t Id, const std::string &Outcome);

  SubmitLogStats stats() const;

  /// Closes the fd (open() does this implicitly).
  void close();

private:
  bool writeRecord(const std::string &Payload, bool Sync);

  mutable std::mutex Mu;
  std::string Path;
  int Fd = -1;
  uint64_t NextId = 1;
  std::vector<PendingSubmission> Pending;
  SubmitLogStats Counters;
};

} // namespace talft::serve

#endif // TALFT_SERVE_SUBMITLOG_H
