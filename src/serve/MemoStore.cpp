//===- serve/MemoStore.cpp - Content-addressed campaign result cache ------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "serve/MemoStore.h"

#include "isa/ProgramHash.h"
#include "serve/Json.h"
#include "serve/Protocol.h"
#include "support/AtomicFile.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace talft;
using namespace talft::serve;

MemoStore::MemoStore(size_t Capacity, std::string CacheDir)
    : Capacity(Capacity ? Capacity : 1), CacheDir(std::move(CacheDir)) {
  Counters.Capacity = this->Capacity;
  // The disk tier is opt-in; make a fresh --cache-dir usable without a
  // manual mkdir. persist() skips silently if this fails — the server
  // surfaces the hard error from start() instead.
  if (!this->CacheDir.empty())
    support::createDirectories(this->CacheDir);
}

std::string MemoStore::entryPath(const MemoKey &K) const {
  if (CacheDir.empty())
    return "";
  return CacheDir + formatv("/memo-%016llx-%016llx.json",
                            (unsigned long long)K.ProgramHash,
                            (unsigned long long)K.OptionsDigest);
}

std::optional<MemoEntry> MemoStore::lookup(const MemoKey &K) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(K);
  if (It == Index.end()) {
    std::optional<MemoEntry> FromDisk = loadFromDisk(K);
    if (!FromDisk) {
      ++Counters.Misses;
      return std::nullopt;
    }
    ++Counters.DiskLoads;
    Entries.push_front(std::move(*FromDisk));
    Index[K] = Entries.begin();
    while (Entries.size() > Capacity) {
      Index.erase(Entries.back().Key);
      Entries.pop_back();
      ++Counters.Evictions;
    }
    It = Index.find(K);
  }
  // Refresh the LRU position.
  Entries.splice(Entries.begin(), Entries, It->second);
  It->second = Entries.begin();
  const MemoEntry &E = *It->second;
  if (E.complete())
    ++Counters.Hits;
  else
    ++Counters.PartialHits;
  return E;
}

void MemoStore::store(const MemoEntry &E) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(E.Key);
  if (It != Index.end()) {
    *It->second = E;
    Entries.splice(Entries.begin(), Entries, It->second);
    It->second = Entries.begin();
  } else {
    Entries.push_front(E);
    Index[E.Key] = Entries.begin();
    while (Entries.size() > Capacity) {
      Index.erase(Entries.back().Key);
      Entries.pop_back();
      ++Counters.Evictions;
    }
  }
  persist(E);
}

MemoStats MemoStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  MemoStats S = Counters;
  S.Entries = Entries.size();
  return S;
}

std::optional<MemoEntry> MemoStore::loadFromDisk(const MemoKey &K) {
  std::string Path = entryPath(K);
  if (Path.empty())
    return std::nullopt;
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return std::nullopt;
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);

  std::optional<JsonValue> Doc = JsonValue::parse(Text);
  if (!Doc || Doc->stringAt("schema", "") != CacheSchema)
    return std::nullopt;
  MemoEntry E;
  uint64_t PH = 0, OD = 0;
  if (!parseProgramHash(Doc->stringAt("program_hash", ""), PH) ||
      !parseProgramHash(Doc->stringAt("options_digest", ""), OD))
    return std::nullopt;
  E.Key = {PH, OD};
  if (!(E.Key == K)) // a mangled or misplaced file must not answer for K
    return std::nullopt;
  E.Name = Doc->stringAt("name", "");
  E.Certification = Doc->stringAt("certification", "");
  E.ShardsTotal = (unsigned)Doc->u64At("shards_total", 0);
  E.ShardsDone = (unsigned)Doc->u64At("shards_done", 0);
  const JsonValue *Campaign = Doc->get("campaign");
  std::string Err;
  if (!Campaign || !campaignFromJson(*Campaign, E.Folded, Err))
    return std::nullopt;
  return E;
}

void MemoStore::persist(const MemoEntry &E) {
  std::string Path = entryPath(E.Key);
  if (Path.empty())
    return;
  std::string S = "{\n";
  S += formatv("  \"schema\": \"%s\",\n", CacheSchema);
  S += "  \"name\": " + jsonQuote(E.Name) + ",\n";
  S += formatv("  \"program_hash\": \"%s\",\n",
               programHashString(E.Key.ProgramHash).c_str());
  S += formatv("  \"options_digest\": \"%s\",\n",
               programHashString(E.Key.OptionsDigest).c_str());
  S += "  \"certification\": " + jsonQuote(E.Certification) + ",\n";
  S += formatv("  \"shards_total\": %u,\n", E.ShardsTotal);
  S += formatv("  \"shards_done\": %u,\n", E.ShardsDone);
  S += "  \"campaign\":\n";
  S += campaignToJson(E.Folded, 2);
  S += "\n}\n";
  if (support::writeFileAtomic(Path, S))
    ++Counters.DiskStores;
}
