//===- serve/WorkerPool.h - Crash-isolated shard worker pool --------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The certification server's detect→contain→recover discipline applied
/// to the server itself: shards are farmed over a pool of forked worker
/// processes (serve/WorkerProc.h), so a fault that would have killed the
/// whole service — a segfault in the campaign engine, an OOM kill, a
/// wedged shard — takes down one worker process instead.
///
///   - detect: a worker that dies (pipe EOF / torn frame, confirmed by
///     waitpid) or exceeds the per-shard deadline (poll timeout, then
///     SIGKILL) is a detected fault;
///   - contain: the shard's partial work dies with the process — no
///     result bytes escape a crashing worker, so nothing corrupt can
///     fold into a table;
///   - recover: the shard is re-dispatched to a fresh worker with capped
///     exponential backoff. Shards are deterministic index ranges of the
///     campaign's task enumeration, so the retried table is bit-identical
///     to what the dead worker would have produced.
///
/// After MaxAttempts consecutive failures of the *same* shard the pool
/// reports it poisoned (a deterministic crasher would otherwise eat
/// workers forever); the server fails that one submission with a
/// structured "shard_poisoned" error while every other submission keeps
/// flowing.
///
/// runShard is thread-safe and blocking: connection handlers check
/// workers out of a free list and wait when all are busy, which is also
/// the pool's natural backpressure.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SERVE_WORKERPOOL_H
#define TALFT_SERVE_WORKERPOOL_H

#include "fault/Campaign.h"
#include "serve/WorkerProc.h"

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

namespace talft::serve {

struct WorkerPoolOptions {
  /// Worker processes; 0 disables the pool (the server then runs shards
  /// in-process, the pre-pool behavior).
  unsigned Workers = 2;
  /// Campaign threads inside each worker (0 = hardware concurrency).
  unsigned CampaignThreads = 0;
  /// Per-shard wall-clock deadline; a worker that exceeds it is SIGKILLed
  /// and the shard retried. 0 = no deadline.
  uint64_t ShardTimeoutMs = 0;
  /// Attempts per shard before declaring it poisoned (>= 1).
  unsigned MaxAttempts = 3;
  /// First retry backoff; doubles per failure, capped at BackoffCapMs.
  uint64_t BackoffMs = 10;
  uint64_t BackoffCapMs = 500;
  /// Chaos hook: every Nth dispatched shard request tells the worker to
  /// raise ChaosSignal at the shard boundary (0 = off). 1 makes every
  /// attempt crash, which is how the poisoning path is tested.
  uint64_t ChaosCrashEveryN = 0;
  int ChaosSignal = 11; // SIGSEGV
};

/// Monotonic pool counters (stats document, CI assertions).
struct WorkerPoolStats {
  uint64_t Spawned = 0;       ///< fork()s that succeeded (incl. respawns)
  uint64_t Dispatched = 0;    ///< shard requests written to a worker
  uint64_t Crashes = 0;       ///< workers lost to death mid-shard
  uint64_t Timeouts = 0;      ///< workers SIGKILLed for blowing a deadline
  uint64_t Retries = 0;       ///< shard re-dispatches after a failure
  uint64_t Poisoned = 0;      ///< shards failed after MaxAttempts
  uint64_t ChaosInjected = 0; ///< requests sent with a chaos signal
  unsigned Alive = 0;         ///< workers currently forked
  unsigned Busy = 0;          ///< workers currently running a shard
};

class WorkerPool {
public:
  /// The outcome of one shard dispatch.
  struct ShardOutcome {
    bool Ok = false;
    CampaignResult Result;
    /// Machine-readable failure ("shard_poisoned", "worker_error",
    /// "deadline_exceeded", "draining").
    std::string Code;
    std::string Error;
    unsigned Attempts = 0;
  };

  explicit WorkerPool(WorkerPoolOptions Opts);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  bool enabled() const { return Opts.Workers > 0; }

  /// Forks the initial workers. Call before the server spawns its
  /// threads, so the first generation is forked from a single-threaded
  /// process. Returns false with \p Err on fork/pipe failure.
  bool start(std::string *Err);

  /// Runs one shard on some worker, retrying crashes and timeouts on
  /// fresh workers. \p RequestJson is the worker request minus the chaos
  /// field (serve/WorkerProc.h). \p DeadlineMs additionally bounds the
  /// total wall-clock spent here (0 = only the per-shard timeout applies)
  /// — the submission-level deadline, checked between attempts and
  /// folded into each poll.
  ShardOutcome runShard(const std::string &RequestJson,
                        uint64_t DeadlineMs = 0);

  /// Stops accepting dispatches, wakes blocked callers with a "draining"
  /// outcome, and tears down every worker.
  void stop();

  WorkerPoolStats stats() const;
  /// Pids of the live workers — the chaos harness's kill list.
  std::vector<pid_t> workerPids() const;

private:
  bool checkout(WorkerProc &W, uint64_t DeadlineMs, bool &Chaos);
  void checkin(WorkerProc W);
  /// Confirms the death of a checked-out worker (kill + waitpid), counts
  /// it, and forks a replacement into the free list when possible.
  void retire(WorkerProc W, bool Timeout);

  WorkerPoolOptions Opts;
  mutable std::mutex Mu;
  std::condition_variable FreeCv;
  std::vector<WorkerProc> Free;
  bool Stopping = false;
  unsigned Alive = 0;
  unsigned BusyCount = 0;
  WorkerPoolStats Counters;
  std::vector<pid_t> BusyPids;
};

} // namespace talft::serve

#endif // TALFT_SERVE_WORKERPOOL_H
