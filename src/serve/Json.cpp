//===- serve/Json.cpp - Minimal JSON parser -------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "serve/Json.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <cstdlib>

using namespace talft;
using namespace talft::serve;

namespace talft::serve {

class JsonParser {
public:
  JsonParser(std::string_view Text, std::string *Err)
      : Text(Text), Err(Err) {}

  std::optional<JsonValue> run() {
    JsonValue V;
    if (!value(V, 0))
      return std::nullopt;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after the document");
    return V;
  }

private:
  std::string_view Text;
  std::string *Err;
  size_t Pos = 0;
  /// Nesting cap: the protocol's documents are shallow; a hostile client
  /// must not be able to overflow the parser's stack.
  static constexpr unsigned MaxDepth = 96;

  std::nullopt_t fail(const std::string &Why) {
    if (Err && Err->empty())
      *Err = formatv("json error at offset %zu: %s", Pos, Why.c_str());
    return std::nullopt;
  }
  bool failb(const std::string &Why) {
    fail(Why);
    return false;
  }

  void skipWs() {
    while (Pos != Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool consume(char C) {
    skipWs();
    if (Pos == Text.size() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool value(JsonValue &V, unsigned Depth) {
    if (Depth > MaxDepth)
      return failb("nesting too deep");
    skipWs();
    if (Pos == Text.size())
      return failb("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
      return object(V, Depth);
    case '[':
      return array(V, Depth);
    case '"':
      V.K = JsonValue::Kind::String;
      return string(V.Str);
    case 't':
      if (!literal("true"))
        return failb("bad literal");
      V.K = JsonValue::Kind::Bool;
      V.B = true;
      return true;
    case 'f':
      if (!literal("false"))
        return failb("bad literal");
      V.K = JsonValue::Kind::Bool;
      V.B = false;
      return true;
    case 'n':
      if (!literal("null"))
        return failb("bad literal");
      V.K = JsonValue::Kind::Null;
      return true;
    default:
      return number(V);
    }
  }

  bool object(JsonValue &V, unsigned Depth) {
    ++Pos; // '{'
    V.K = JsonValue::Kind::Object;
    skipWs();
    if (consume('}'))
      return true;
    while (true) {
      skipWs();
      if (Pos == Text.size() || Text[Pos] != '"')
        return failb("expected a member name");
      std::string Name;
      if (!string(Name))
        return false;
      if (!consume(':'))
        return failb("expected ':' after member name");
      JsonValue Member;
      if (!value(Member, Depth + 1))
        return false;
      V.Obj.emplace_back(std::move(Name), std::move(Member));
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return failb("expected ',' or '}' in object");
    }
  }

  bool array(JsonValue &V, unsigned Depth) {
    ++Pos; // '['
    V.K = JsonValue::Kind::Array;
    skipWs();
    if (consume(']'))
      return true;
    while (true) {
      JsonValue Item;
      if (!value(Item, Depth + 1))
        return false;
      V.Arr.push_back(std::move(Item));
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return failb("expected ',' or ']' in array");
    }
  }

  bool hex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return failb("truncated \\u escape");
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= (unsigned)(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= (unsigned)(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= (unsigned)(C - 'A' + 10);
      else
        return failb("bad \\u escape digit");
    }
    return true;
  }

  void appendUtf8(std::string &Out, unsigned Cp) {
    if (Cp < 0x80) {
      Out += (char)Cp;
    } else if (Cp < 0x800) {
      Out += (char)(0xC0 | (Cp >> 6));
      Out += (char)(0x80 | (Cp & 0x3F));
    } else if (Cp < 0x10000) {
      Out += (char)(0xE0 | (Cp >> 12));
      Out += (char)(0x80 | ((Cp >> 6) & 0x3F));
      Out += (char)(0x80 | (Cp & 0x3F));
    } else {
      Out += (char)(0xF0 | (Cp >> 18));
      Out += (char)(0x80 | ((Cp >> 12) & 0x3F));
      Out += (char)(0x80 | ((Cp >> 6) & 0x3F));
      Out += (char)(0x80 | (Cp & 0x3F));
    }
  }

  bool string(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (true) {
      if (Pos == Text.size())
        return failb("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if ((unsigned char)C < 0x20)
        return failb("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos == Text.size())
        return failb("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Cp;
        if (!hex4(Cp))
          return false;
        if (Cp >= 0xD800 && Cp <= 0xDBFF) {
          // A high surrogate must be followed by \uDC00..\uDFFF.
          if (Pos + 2 > Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return failb("lone high surrogate");
          Pos += 2;
          unsigned Lo;
          if (!hex4(Lo))
            return false;
          if (Lo < 0xDC00 || Lo > 0xDFFF)
            return failb("bad low surrogate");
          Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Lo - 0xDC00);
        } else if (Cp >= 0xDC00 && Cp <= 0xDFFF) {
          return failb("lone low surrogate");
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return failb("unknown escape");
      }
    }
  }

  bool number(JsonValue &V) {
    size_t Start = Pos;
    bool Neg = Pos != Text.size() && Text[Pos] == '-';
    if (Neg)
      ++Pos;
    bool Integral = true;
    bool Digits = false;
    while (Pos != Text.size()) {
      char C = Text[Pos];
      if (C >= '0' && C <= '9') {
        Digits = true;
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E' || C == '+' || C == '-') {
        if (C == '.' || C == 'e' || C == 'E')
          Integral = false;
        ++Pos;
      } else {
        break;
      }
    }
    if (!Digits)
      return failb("expected a value");
    std::string Tok(Text.substr(Start, Pos - Start));
    errno = 0;
    char *End = nullptr;
    V.K = JsonValue::Kind::Number;
    V.Num = std::strtod(Tok.c_str(), &End);
    if (End != Tok.c_str() + Tok.size())
      return failb("malformed number");
    if (Integral && !Neg) {
      errno = 0;
      unsigned long long U = std::strtoull(Tok.c_str(), &End, 10);
      if (End == Tok.c_str() + Tok.size() && errno != ERANGE) {
        V.Exact = true;
        V.U = U;
      }
    }
    return true;
  }
};

} // namespace talft::serve

std::optional<JsonValue> JsonValue::parse(std::string_view Text,
                                          std::string *Err) {
  return JsonParser(Text, Err).run();
}

std::string talft::serve::jsonQuote(std::string_view In) {
  std::string Out;
  Out.reserve(In.size() + 2);
  Out += '"';
  for (char C : In) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if ((unsigned char)C < 0x20)
        Out += formatv("\\u%04x", (unsigned)(unsigned char)C);
      else
        Out += C;
    }
  }
  Out += '"';
  return Out;
}
