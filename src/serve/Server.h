//===- serve/Server.h - The long-running certification server -------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-running certification service over a local TCP socket: clients
/// submit Wile/TAL programs (serve/Protocol.h, one JSON document per
/// line), the server validates and certifies them through the analysis
/// ladder (analysis/Certify.h), runs the Theorem 4 fault campaign shard
/// by shard on the campaign engine's deterministic task partition
/// (fault/Campaign.h), streams per-shard verdict-table deltas as they
/// retire, and memoizes folded results content-addressed by
/// (program hash × options digest) in a MemoStore — a resubmission is a
/// cache hit that re-runs nothing.
///
/// Operational guarantees:
///   - every served verdict table folds bit-identically onto the batch
///     CLI's for the same program and options (same enumeration, same
///     shard fold the tests assert) — including when shards execute on
///     crash-isolated worker processes and some of them are retried;
///   - crash isolation: with PoolWorkers > 0 every shard runs in a
///     forked worker (serve/WorkerPool.h); a segfault, OOM kill or wedged
///     shard costs one worker process, the shard is retried on a fresh
///     one, and after MaxShardAttempts failures the submission gets a
///     structured "shard_poisoned" error while other submissions keep
///     flowing;
///   - durability: with a WalPath every accepted submission is fsync'd
///     into a write-ahead log (serve/SubmitLog.h) before work starts and
///     retired after the terminal event; a SIGKILLed server replays the
///     unretired entries through the memo store on restart, so accepted
///     work is never silently lost;
///   - deadlines and backpressure: submissions carry wall-clock deadlines
///     ("deadline_ms", or DefaultDeadlineMs) enforced across shard
///     dispatch and retries; connections beyond the queue cap are shed
///     with a structured "overloaded" error carrying a retry_after_ms
///     hint instead of queueing unboundedly;
///   - graceful drain: requestDrain (wired to SIGTERM by the tool) stops
///     accepting, cuts in-flight campaigns at the next shard boundary,
///     persists the folded prefix through the memo store, and answers
///     the client with a "drained" event; a resubmission — to this
///     process or a restarted one sharing the cache directory — resumes
///     from the first unclassified shard;
///   - introspection: a "stats" request (or HTTP "GET /stats") reports
///     queue depth, cache hit rate, shard throughput, pool health
///     (including live worker pids, which the chaos harness uses as its
///     kill list), WAL counters and the summed convergence/lane counters
///     of every served campaign.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SERVE_SERVER_H
#define TALFT_SERVE_SERVER_H

#include "serve/MemoStore.h"
#include "serve/Protocol.h"
#include "serve/SubmitLog.h"
#include "serve/WorkerPool.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace talft::serve {

struct ServerOptions {
  std::string Host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back with port()).
  unsigned Port = 0;
  /// Connection-handler threads (each serves one campaign at a time).
  unsigned Workers = 2;
  /// Worker threads per campaign shard (0 = hardware concurrency).
  unsigned CampaignThreads = 0;
  /// Shard count when a submission does not request one.
  unsigned DefaultShards = 4;
  /// Backpressure: pending connections beyond this are shed with an
  /// "overloaded" error carrying a retry_after_ms hint.
  size_t QueueCap = 16;
  /// In-memory memo entries retained (LRU).
  size_t CacheEntries = 64;
  /// Optional persistent cache directory (must exist); empty = memory only.
  std::string CacheDir;
  /// Testing hook: request a drain after this many shards have retired
  /// server-wide (0 = never). CI uses it to exercise the drain/resume
  /// path deterministically; production drains via SIGTERM.
  uint64_t DrainAfterShards = 0;
  /// Free-form build identifier echoed in every "accepted" event and in
  /// the stats document.
  std::string BuildId = "dev";

  /// Forked shard-worker processes (crash isolation). 0 disables the
  /// pool and runs shards in-process — the pre-pool behavior, kept for
  /// environments where fork is unwelcome.
  unsigned PoolWorkers = 2;
  /// Per-shard wall-clock deadline in the pool; a worker exceeding it is
  /// SIGKILLed and the shard retried. 0 = none.
  uint64_t ShardTimeoutMs = 0;
  /// Attempts per shard before it is declared poisoned.
  unsigned MaxShardAttempts = 3;
  /// Default per-submission deadline when the request carries no
  /// "deadline_ms"; 0 = unbounded.
  uint64_t DefaultDeadlineMs = 0;
  /// Connections idle (no bytes, no in-flight request) longer than this
  /// are closed; 0 = never.
  uint64_t IdleTimeoutMs = 30000;
  /// A connection accumulating this many bytes without a complete line
  /// is answered with a structured "bad_request" and closed.
  size_t MaxLineBytes = 32u << 20;
  /// Write-ahead submission log path; empty disables durability.
  std::string WalPath;
  /// Chaos hooks (tests/CI only): every Nth pool dispatch instructs the
  /// worker to raise ChaosSignal at the shard boundary.
  uint64_t ChaosCrashEveryN = 0;
  int ChaosSignal = 11; // SIGSEGV
};

/// Aggregated service counters (all monotonically increasing).
struct ServeCounters {
  uint64_t Connections = 0;
  uint64_t Rejected = 0; ///< overloaded + draining refusals
  uint64_t Overloaded = 0; ///< connections shed with retry_after_ms
  uint64_t Submits = 0;
  uint64_t CacheHits = 0;
  uint64_t Resumed = 0;
  uint64_t Completed = 0;
  uint64_t Drained = 0;
  uint64_t Replayed = 0; ///< WAL entries replayed to completion
  uint64_t Errors = 0;
  uint64_t DeadlineExceeded = 0; ///< submissions failed on deadline
  uint64_t PoisonedSubmits = 0;  ///< submissions failed shard_poisoned
  uint64_t SendFailures = 0;     ///< EPIPE/short writes to clients
  uint64_t OversizedLines = 0;   ///< lines rejected for exceeding the cap
  uint64_t IdleClosed = 0;       ///< connections closed by the idle timer
  uint64_t ShardsRetired = 0;
  uint64_t TasksClassified = 0;
  double ShardSeconds = 0;
  uint64_t EarlyExits = 0;
  uint64_t StepsSaved = 0;
  uint64_t LockstepSkips = 0;
  uint64_t LaneGroups = 0;
  uint64_t LaneTasks = 0;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Opens the WAL, forks the worker pool (before any thread exists, so
  /// the first generation forks from a single-threaded process), binds,
  /// listens, spawns the accept loop, workers and the WAL replayer.
  /// Returns false with \p Err set on any failure.
  bool start(std::string *Err = nullptr);

  /// The bound port (meaningful after start; resolves Port 0).
  unsigned port() const { return BoundPort; }

  /// Initiates a graceful drain: stop accepting, finish in-flight work at
  /// the next shard boundary, persist partial folds. Idempotent;
  /// async-signal-unsafe (call from a thread, not a signal handler).
  void requestDrain();

  bool draining() const { return Draining.load(); }

  /// Blocks until the accept loop and every worker have exited (i.e.
  /// until someone calls requestDrain and in-flight work finishes).
  void wait();

  /// requestDrain + wait.
  void stop();

  /// The stats document served to "stats" requests (single line).
  std::string statsJson() const;

  const ServerOptions &options() const { return Opts; }
  MemoStats memoStats() const { return Memo.stats(); }
  WorkerPoolStats poolStats() const { return Pool.stats(); }
  SubmitLogStats walStats() const { return Wal.stats(); }

private:
  void acceptLoop();
  void workerLoop();
  void replayLoop();
  void handleConnection(int Fd);
  bool handleRequest(int Fd, const std::string &Line);
  void handleSubmit(int Fd, const JsonValue &Request);
  /// The whole submission pipeline — compile, certify, memo probe, WAL
  /// accept, shard loop (pool or in-process), fold, terminal event —
  /// shared by connection handlers (Fd >= 0) and the WAL replayer
  /// (Fd < 0, ReplayId = the pending record being replayed).
  void runSubmission(int Fd, const SubmitSpec &Spec, uint64_t ReplayId);
  /// sendLine that counts failures (EPIPE, resets) instead of raising
  /// SIGPIPE or silently dropping them. Fd < 0 (replay) always succeeds.
  bool emitLine(int Fd, const std::string &S);
  void noteShardRetired(const CampaignResult &Shard);
  uint64_t retryAfterMsEstimate() const;

  ServerOptions Opts;
  MemoStore Memo;
  WorkerPool Pool;
  SubmitLog Wal;
  unsigned BoundPort = 0;
  int ListenFd = -1;
  std::atomic<bool> Draining{false};
  std::atomic<bool> Started{false};
  std::atomic<uint64_t> ShardsRetiredTotal{0};
  std::atomic<unsigned> Active{0};

  std::thread Acceptor;
  std::vector<std::thread> Workers;
  std::thread Replayer;

  mutable std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<int> Queue;

  mutable std::mutex CountersMu;
  ServeCounters Counters;
};

} // namespace talft::serve

#endif // TALFT_SERVE_SERVER_H
