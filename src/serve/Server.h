//===- serve/Server.h - The long-running certification server -------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-running certification service over a local TCP socket: clients
/// submit Wile/TAL programs (serve/Protocol.h, one JSON document per
/// line), the server validates and certifies them through the analysis
/// ladder (analysis/Certify.h), runs the Theorem 4 fault campaign shard
/// by shard on the campaign engine's deterministic task partition
/// (fault/Campaign.h), streams per-shard verdict-table deltas as they
/// retire, and memoizes folded results content-addressed by
/// (program hash × options digest) in a MemoStore — a resubmission is a
/// cache hit that re-runs nothing.
///
/// Operational guarantees:
///   - every served verdict table folds bit-identically onto the batch
///     CLI's for the same program and options (same enumeration, same
///     shard fold the tests assert);
///   - backpressure: connections beyond the queue cap are refused with a
///     "queue_full" error instead of queueing unboundedly;
///   - graceful drain: requestDrain (wired to SIGTERM by the tool) stops
///     accepting, cuts in-flight campaigns at the next shard boundary,
///     persists the folded prefix through the memo store, and answers
///     the client with a "drained" event; a resubmission — to this
///     process or a restarted one sharing the cache directory — resumes
///     from the first unclassified shard;
///   - introspection: a "stats" request (or HTTP "GET /stats") reports
///     queue depth, cache hit rate, shard throughput and the summed
///     convergence/lane counters of every served campaign.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SERVE_SERVER_H
#define TALFT_SERVE_SERVER_H

#include "serve/MemoStore.h"
#include "serve/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace talft::serve {

struct ServerOptions {
  std::string Host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back with port()).
  unsigned Port = 0;
  /// Connection-handler threads (each serves one campaign at a time).
  unsigned Workers = 2;
  /// Worker threads per campaign shard (0 = hardware concurrency).
  unsigned CampaignThreads = 0;
  /// Shard count when a submission does not request one.
  unsigned DefaultShards = 4;
  /// Backpressure: pending connections beyond this are refused.
  size_t QueueCap = 16;
  /// In-memory memo entries retained (LRU).
  size_t CacheEntries = 64;
  /// Optional persistent cache directory (must exist); empty = memory only.
  std::string CacheDir;
  /// Testing hook: request a drain after this many shards have retired
  /// server-wide (0 = never). CI uses it to exercise the drain/resume
  /// path deterministically; production drains via SIGTERM.
  uint64_t DrainAfterShards = 0;
  /// Free-form build identifier echoed in every "accepted" event and in
  /// the stats document.
  std::string BuildId = "dev";
};

/// Aggregated service counters (all monotonically increasing).
struct ServeCounters {
  uint64_t Connections = 0;
  uint64_t Rejected = 0; ///< queue_full + draining refusals
  uint64_t Submits = 0;
  uint64_t CacheHits = 0;
  uint64_t Resumed = 0;
  uint64_t Completed = 0;
  uint64_t Drained = 0;
  uint64_t Errors = 0;
  uint64_t ShardsRetired = 0;
  uint64_t TasksClassified = 0;
  double ShardSeconds = 0;
  uint64_t EarlyExits = 0;
  uint64_t StepsSaved = 0;
  uint64_t LockstepSkips = 0;
  uint64_t LaneGroups = 0;
  uint64_t LaneTasks = 0;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens and spawns the accept loop and worker threads.
  /// Returns false with \p Err set on any socket failure.
  bool start(std::string *Err = nullptr);

  /// The bound port (meaningful after start; resolves Port 0).
  unsigned port() const { return BoundPort; }

  /// Initiates a graceful drain: stop accepting, finish in-flight work at
  /// the next shard boundary, persist partial folds. Idempotent;
  /// async-signal-unsafe (call from a thread, not a signal handler).
  void requestDrain();

  bool draining() const { return Draining.load(); }

  /// Blocks until the accept loop and every worker have exited (i.e.
  /// until someone calls requestDrain and in-flight work finishes).
  void wait();

  /// requestDrain + wait.
  void stop();

  /// The stats document served to "stats" requests (single line).
  std::string statsJson() const;

  const ServerOptions &options() const { return Opts; }
  MemoStats memoStats() const { return Memo.stats(); }

private:
  void acceptLoop();
  void workerLoop();
  void handleConnection(int Fd);
  bool handleRequest(int Fd, const std::string &Line);
  void handleSubmit(int Fd, const JsonValue &Request);
  void noteShardRetired(const CampaignResult &Shard);

  ServerOptions Opts;
  MemoStore Memo;
  unsigned BoundPort = 0;
  int ListenFd = -1;
  std::atomic<bool> Draining{false};
  std::atomic<bool> Started{false};
  std::atomic<uint64_t> ShardsRetiredTotal{0};
  std::atomic<unsigned> Active{0};

  std::thread Acceptor;
  std::vector<std::thread> Workers;

  mutable std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<int> Queue;

  mutable std::mutex CountersMu;
  ServeCounters Counters;
};

} // namespace talft::serve

#endif // TALFT_SERVE_SERVER_H
