//===- serve/WorkerPool.cpp - Crash-isolated shard worker pool ------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "serve/WorkerPool.h"

#include "serve/Json.h"
#include "serve/Protocol.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <poll.h>
#include <thread>

using namespace talft;
using namespace talft::serve;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t msSince(Clock::time_point T0) {
  return (uint64_t)std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now() - T0)
      .count();
}

/// Waits for a response frame on \p Fd for at most \p TimeoutMs
/// (0 = forever). Returns 1 when readable, 0 on timeout, -1 on error.
int pollResponse(int Fd, uint64_t TimeoutMs) {
  Clock::time_point T0 = Clock::now();
  while (true) {
    uint64_t Left =
        TimeoutMs ? (TimeoutMs > msSince(T0) ? TimeoutMs - msSince(T0) : 0)
                  : 0;
    if (TimeoutMs && Left == 0)
      return 0;
    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1, TimeoutMs ? (int)std::min<uint64_t>(Left, 60000)
                                    : 60000);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (R > 0)
      return (P.revents & (POLLIN | POLLHUP | POLLERR)) ? 1 : -1;
    if (!TimeoutMs)
      continue; // untimed: keep waiting in 60s slices
  }
}

} // namespace

WorkerPool::WorkerPool(WorkerPoolOptions O) : Opts(O) {
  if (Opts.MaxAttempts == 0)
    Opts.MaxAttempts = 1;
}

WorkerPool::~WorkerPool() { stop(); }

bool WorkerPool::start(std::string *Err) {
  if (!enabled())
    return true;
  std::lock_guard<std::mutex> Lock(Mu);
  for (unsigned I = 0; I != Opts.Workers; ++I) {
    WorkerProc W;
    if (!spawnWorker(W, Err)) {
      for (WorkerProc &P : Free)
        destroyWorker(P);
      Free.clear();
      Alive = 0;
      return false;
    }
    ++Counters.Spawned;
    ++Alive;
    Free.push_back(W);
  }
  return true;
}

void WorkerPool::stop() {
  std::vector<WorkerProc> ToKill;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopping && Free.empty())
      return;
    Stopping = true;
    ToKill.swap(Free);
  }
  FreeCv.notify_all();
  for (WorkerProc &W : ToKill)
    destroyWorker(W);
  std::lock_guard<std::mutex> Lock(Mu);
  Alive -= std::min<unsigned>(Alive, (unsigned)ToKill.size());
  // Busy workers are destroyed by their checked-out callers when they
  // observe Stopping; nothing to do for them here.
}

bool WorkerPool::checkout(WorkerProc &W, uint64_t DeadlineMs, bool &Chaos) {
  std::unique_lock<std::mutex> Lock(Mu);
  Clock::time_point T0 = Clock::now();
  while (true) {
    if (Stopping)
      return false;
    if (!Free.empty()) {
      W = Free.back();
      Free.pop_back();
      ++BusyCount;
      ++Counters.Dispatched;
      BusyPids.push_back(W.Pid);
      Chaos = Opts.ChaosCrashEveryN &&
              Counters.Dispatched % Opts.ChaosCrashEveryN == 0;
      if (Chaos)
        ++Counters.ChaosInjected;
      return true;
    }
    if (DeadlineMs) {
      uint64_t Spent = msSince(T0);
      if (Spent >= DeadlineMs)
        return false;
      FreeCv.wait_for(Lock, std::chrono::milliseconds(DeadlineMs - Spent));
    } else {
      FreeCv.wait(Lock);
    }
  }
}

void WorkerPool::checkin(WorkerProc W) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    BusyPids.erase(std::remove(BusyPids.begin(), BusyPids.end(), W.Pid),
                   BusyPids.end());
    --BusyCount;
    if (!Stopping) {
      Free.push_back(W);
      FreeCv.notify_one();
      return;
    }
  }
  destroyWorker(W);
}

void WorkerPool::retire(WorkerProc W, bool Timeout) {
  pid_t Pid = W.Pid;
  destroyWorker(W); // SIGKILL + waitpid: confirm the death we detected
  bool WantRespawn;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    WantRespawn = !Stopping;
  }
  WorkerProc Fresh;
  std::string Err;
  bool Respawned = WantRespawn && spawnWorker(Fresh, &Err);
  std::lock_guard<std::mutex> Lock(Mu);
  BusyPids.erase(std::remove(BusyPids.begin(), BusyPids.end(), Pid),
                 BusyPids.end());
  --BusyCount;
  --Alive;
  if (Timeout)
    ++Counters.Timeouts;
  else
    ++Counters.Crashes;
  if (Respawned) {
    ++Counters.Spawned;
    ++Alive;
    Free.push_back(Fresh);
    FreeCv.notify_one();
  }
}

WorkerPool::ShardOutcome WorkerPool::runShard(const std::string &RequestJson,
                                              uint64_t DeadlineMs) {
  ShardOutcome Out;
  Clock::time_point T0 = Clock::now();
  uint64_t Backoff = std::max<uint64_t>(1, Opts.BackoffMs);

  for (unsigned Attempt = 0; Attempt != Opts.MaxAttempts; ++Attempt) {
    Out.Attempts = Attempt + 1;
    if (Attempt) {
      {
        std::lock_guard<std::mutex> Lock(Mu);
        ++Counters.Retries;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(Backoff));
      Backoff = std::min(Backoff * 2, std::max(Opts.BackoffCapMs, Backoff));
    }
    uint64_t Left = 0;
    if (DeadlineMs) {
      uint64_t Spent = msSince(T0);
      if (Spent >= DeadlineMs) {
        Out.Code = "deadline_exceeded";
        Out.Error = "submission deadline expired while retrying the shard";
        return Out;
      }
      Left = DeadlineMs - Spent;
    }

    WorkerProc W;
    bool Chaos = false;
    if (!checkout(W, Left, Chaos)) {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Stopping) {
        Out.Code = "draining";
        Out.Error = "worker pool is shutting down";
      } else {
        Out.Code = "deadline_exceeded";
        Out.Error = "submission deadline expired waiting for a free worker";
      }
      return Out;
    }

    std::string Request = RequestJson;
    if (Chaos) {
      // Splice the chaos field into the request object's tail.
      Request.insert(Request.rfind('}'),
                     formatv(", \"chaos_signal\": %d", Opts.ChaosSignal));
    }

    if (!writeFrame(W.RequestFd, Request)) {
      retire(std::move(W), /*Timeout=*/false);
      continue; // the worker died between shards; retry costs nothing
    }

    // Shard deadline: the tighter of the per-shard timeout and what is
    // left of the submission deadline.
    uint64_t Wait = Opts.ShardTimeoutMs;
    if (DeadlineMs) {
      uint64_t Spent = msSince(T0);
      uint64_t Remain = Spent >= DeadlineMs ? 1 : DeadlineMs - Spent;
      Wait = Wait ? std::min(Wait, Remain) : Remain;
    }
    int Ready = pollResponse(W.ResponseFd, Wait);
    if (Ready == 0) {
      retire(std::move(W), /*Timeout=*/true);
      if (DeadlineMs && msSince(T0) >= DeadlineMs) {
        Out.Code = "deadline_exceeded";
        Out.Error = "shard exceeded the submission deadline";
        return Out;
      }
      continue;
    }
    std::string Response;
    if (Ready < 0 || !readFrame(W.ResponseFd, Response)) {
      // EOF, torn frame or CRC mismatch: the worker is dead or lying.
      retire(std::move(W), /*Timeout=*/false);
      continue;
    }

    std::optional<JsonValue> Doc = JsonValue::parse(Response);
    if (!Doc || !Doc->isObject()) {
      retire(std::move(W), /*Timeout=*/false);
      continue;
    }
    if (!Doc->boolAt("ok", false)) {
      // A structured worker-side failure (compile error, bad request) is
      // deterministic — retrying cannot help, and the worker is healthy.
      Out.Code = Doc->stringAt("code", "worker_error");
      Out.Error = Doc->stringAt("error", "worker reported an error");
      ++W.ShardsServed;
      checkin(std::move(W));
      return Out;
    }
    const JsonValue *Campaign = Doc->get("campaign");
    std::string ParseErr;
    if (!Campaign || !campaignFromJson(*Campaign, Out.Result, ParseErr)) {
      retire(std::move(W), /*Timeout=*/false);
      continue;
    }
    Out.Ok = true;
    Out.Code.clear();
    Out.Error.clear();
    ++W.ShardsServed;
    checkin(std::move(W));
    return Out;
  }

  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counters.Poisoned;
  }
  Out.Code = "shard_poisoned";
  Out.Error = formatv("shard failed %u consecutive attempts on fresh "
                      "workers; refusing to retry further",
                      Opts.MaxAttempts);
  return Out;
}

WorkerPoolStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  WorkerPoolStats S = Counters;
  S.Alive = Alive;
  S.Busy = BusyCount;
  return S;
}

std::vector<pid_t> WorkerPool::workerPids() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<pid_t> Pids = BusyPids;
  for (const WorkerProc &W : Free)
    Pids.push_back(W.Pid);
  return Pids;
}
