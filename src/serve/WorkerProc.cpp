//===- serve/WorkerProc.cpp - One crash-isolated shard worker process -----===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "serve/WorkerProc.h"

#include "serve/Json.h"
#include "serve/Protocol.h"
#include "support/Crc32.h"
#include "support/StringUtils.h"
#include "tal/Parser.h"
#include "vm/Engine.h"
#include "vm/JitEngine.h"
#include "wile/Codegen.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <memory>
#include <unordered_map>
#include <sys/wait.h>
#include <unistd.h>

using namespace talft;
using namespace talft::serve;

namespace {

bool writeAll(int Fd, const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  while (Len) {
    ssize_t N = ::write(Fd, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= (size_t)N;
  }
  return true;
}

bool readAll(int Fd, void *Data, size_t Len) {
  char *P = static_cast<char *>(Data);
  while (Len) {
    ssize_t N = ::read(Fd, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // EOF mid-frame: the peer died
    P += N;
    Len -= (size_t)N;
  }
  return true;
}

/// One compiled program, kept alive across request frames. A worker
/// serves many shards of the same submission back to back; recompiling
/// (and, under the jit engine, re-emitting native code) per frame threw
/// that work away N-shards times per submission. The entry owns the
/// TypeContext its Program interns types into, and builds each engine at
/// most once — engines are immutable after construction, so reuse across
/// frames is safe by the same argument as reuse across campaign threads.
struct CompiledEntry {
  TypeContext TC;
  std::optional<wile::CompiledProgram> Compiled;
  std::optional<Program> Parsed;
  const Program *Prog = nullptr;
  std::string CompileError; // sticky: a source that failed once fails fast
  std::unique_ptr<ExecEngine> Vm;
  std::unique_ptr<ExecEngine> Jit;

  const ExecEngine *engineFor(const std::string &Name) {
    if (Name == "vm") {
      if (!Vm)
        Vm = vm::createEngine(Prog->code());
      return Vm.get();
    }
    if (Name == "jit") {
      if (!Jit)
        Jit = vm::createJitEngine(Prog->code());
      return Jit.get();
    }
    return nullptr; // reference interpreter: CampaignOptions' default
  }
};

/// Decode-once cache, keyed by the exact (lang, source) pair — the same
/// identity ProgramHash certifies, without needing a successful compile
/// to name a failure. The worker loop is single-threaded, so no locking;
/// FIFO eviction keeps a crashed-and-respawned worker's memory bounded
/// when a server mixes many programs onto one worker.
CompiledEntry *lookupCompiled(const std::string &Lang,
                              const std::string &Source) {
  static std::unordered_map<std::string, std::unique_ptr<CompiledEntry>> Cache;
  static std::deque<std::string> Order;
  constexpr size_t Capacity = 8;
  std::string Key = Lang + '\n' + Source;
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second.get();
  while (Cache.size() >= Capacity) {
    Cache.erase(Order.front());
    Order.pop_front();
  }
  auto Entry = std::make_unique<CompiledEntry>();
  CompiledEntry *E = Entry.get();
  Cache.emplace(Key, std::move(Entry));
  Order.push_back(std::move(Key));
  return E;
}

/// The child's whole job for one request frame. Returns the response
/// payload (ok+campaign or a structured error object).
std::string serveShardRequest(const std::string &Request) {
  auto Fail = [](const char *Code, const std::string &Msg) {
    return formatv("{\"ok\": false, \"code\": \"%s\", \"error\": %s}", Code,
                   jsonQuote(Msg).c_str());
  };

  std::string ParseErr;
  std::optional<JsonValue> Doc = JsonValue::parse(Request, &ParseErr);
  if (!Doc || !Doc->isObject())
    return Fail("bad_request", "worker request is not JSON: " + ParseErr);

  SubmitSpec Spec;
  std::string SpecErr;
  if (!specFromJson(*Doc, Spec, SpecErr))
    return Fail("bad_request", SpecErr);
  uint64_t Stride = Doc->u64At("resolved_stride", 1);
  unsigned Threads = (unsigned)Doc->u64At("campaign_threads", 1);
  unsigned ShardIndex = (unsigned)Doc->u64At("shard_index", 0);
  unsigned ShardCount = (unsigned)Doc->u64At("shard_count", 1);
  int ChaosSignal = (int)Doc->u64At("chaos_signal", 0);

  // Compile from source in this process: workers share nothing with the
  // server, so a parser or codegen crash is contained too. The compile —
  // and, for the vm/jit engines, the decode (and native code emission) —
  // happens once per program per worker; every later shard of the same
  // submission reuses the cached entry.
  CompiledEntry *Entry = lookupCompiled(Spec.Lang, Spec.Source);
  if (!Entry->CompileError.empty())
    return Fail("compile_error", Entry->CompileError);
  if (!Entry->Prog) {
    DiagnosticEngine Diags;
    if (Spec.Lang == "wile") {
      Expected<wile::CompiledProgram> CP = wile::compileWile(
          Entry->TC, Spec.Source, wile::CodegenMode::FaultTolerant, Diags);
      if (!CP) {
        Entry->CompileError = CP.message();
        return Fail("compile_error", Entry->CompileError);
      }
      Entry->Compiled.emplace(std::move(*CP));
      Entry->Prog = &Entry->Compiled->Prog;
    } else {
      Expected<Program> P =
          parseAndLayoutTalProgram(Entry->TC, Spec.Source, Diags);
      if (!P) {
        Entry->CompileError = P.message();
        return Fail("compile_error", Entry->CompileError);
      }
      Entry->Parsed.emplace(std::move(*P));
      Entry->Prog = &*Entry->Parsed;
    }
  }
  const Program *Prog = Entry->Prog;

  CampaignOptions CO;
  CO.Threads = Threads;
  CO.Engine = Entry->engineFor(Spec.Engine);
  applySpecOptions(Spec, CO);
  CO.ShardCount = ShardCount;
  CO.ShardIndex = ShardIndex;
  if (ChaosSignal > 0)
    CO.ShardRetiredHook = [ChaosSignal](unsigned, unsigned) {
      // Chaos: die at the shard boundary — the work is complete but no
      // byte of the result has left the process. SIGSEGV goes through
      // the default handler (the signal must look like a real crash).
      ::signal(ChaosSignal, SIG_DFL);
      ::raise(ChaosSignal);
    };

  TheoremConfig Config = theoremConfig(Spec, Stride);
  CampaignResult R = runSingleFaultCampaign(*Prog, Config, CO);
  return "{\"ok\": true, \"campaign\": " + campaignJsonLine(R) + "}";
}

} // namespace

bool talft::serve::writeFrame(int Fd, const std::string &Payload) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  uint32_t Header[2] = {(uint32_t)Payload.size(),
                        support::crc32(Payload)};
  return writeAll(Fd, Header, sizeof(Header)) &&
         writeAll(Fd, Payload.data(), Payload.size());
}

bool talft::serve::readFrame(int Fd, std::string &Payload) {
  uint32_t Header[2];
  if (!readAll(Fd, Header, sizeof(Header)))
    return false;
  if (Header[0] > MaxFrameBytes)
    return false;
  Payload.resize(Header[0]);
  if (!readAll(Fd, Payload.data(), Payload.size()))
    return false;
  return support::crc32(Payload) == Header[1];
}

void talft::serve::runWorkerLoop(int RequestFd, int ResponseFd) {
  std::string Request;
  while (readFrame(RequestFd, Request)) {
    std::string Response = serveShardRequest(Request);
    if (!writeFrame(ResponseFd, Response))
      break; // parent gone
  }
  // EOF (or a torn frame): the parent shut the pool down or died. _exit,
  // not exit — the child must never run the parent's atexit handlers or
  // flush its inherited stdio buffers.
  ::_exit(0);
}

bool talft::serve::spawnWorker(WorkerProc &Out, std::string *Err) {
  int Req[2] = {-1, -1}, Resp[2] = {-1, -1};
  auto Fail = [&](const char *What) {
    if (Err)
      *Err = formatv("%s: %s", What, std::strerror(errno));
    for (int Fd : {Req[0], Req[1], Resp[0], Resp[1]})
      if (Fd >= 0)
        ::close(Fd);
    return false;
  };
  if (::pipe(Req) != 0)
    return Fail("pipe");
  if (::pipe(Resp) != 0)
    return Fail("pipe");

  pid_t Pid = ::fork();
  if (Pid < 0)
    return Fail("fork");
  if (Pid == 0) {
    // Child. Drop every inherited descriptor except this worker's two
    // pipe ends and stderr: the listen socket, client connections, the
    // WAL fd and sibling workers' pipes must not be kept alive (or
    // corrupted) by a crashing shard worker.
    int Keep0 = Req[0], Keep1 = Resp[1];
    long MaxFd = ::sysconf(_SC_OPEN_MAX);
    if (MaxFd < 0 || MaxFd > 4096)
      MaxFd = 4096;
    for (int Fd = 3; Fd < (int)MaxFd; ++Fd)
      if (Fd != Keep0 && Fd != Keep1)
        ::close(Fd);
    ::signal(SIGPIPE, SIG_IGN);
    ::signal(SIGTERM, SIG_DFL);
    ::signal(SIGINT, SIG_IGN); // ^C on the foreground group drains the
                               // server; workers exit via pipe EOF
    runWorkerLoop(Keep0, Keep1);
  }

  // Parent.
  ::close(Req[0]);
  ::close(Resp[1]);
  Out.Pid = Pid;
  Out.RequestFd = Req[1];
  Out.ResponseFd = Resp[0];
  Out.ShardsServed = 0;
  return true;
}

void talft::serve::destroyWorker(WorkerProc &W) {
  if (W.RequestFd >= 0) {
    ::close(W.RequestFd);
    W.RequestFd = -1;
  }
  if (W.ResponseFd >= 0) {
    ::close(W.ResponseFd);
    W.ResponseFd = -1;
  }
  if (W.Pid > 0) {
    // The pipe close is the graceful path; the kill covers a worker stuck
    // mid-shard. Reap so no zombie outlives the pool.
    ::kill(W.Pid, SIGKILL);
    int Status = 0;
    while (::waitpid(W.Pid, &Status, 0) < 0 && errno == EINTR)
      ;
    W.Pid = -1;
  }
}
