//===- serve/Client.h - Line-protocol client for the cert server ----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client for the talft_serve line protocol
/// (serve/Protocol.h): connect, send one request line, collect the event
/// stream until a terminal event. Used by the talft-serve CLI's client
/// mode, the serve tests and the serve latency benchmark; nothing here is
/// server-side state.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SERVE_CLIENT_H
#define TALFT_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include <string>
#include <vector>

namespace talft::serve {

/// Everything a submit session produced, parsed from the event stream.
struct SubmitOutcome {
  /// Transport worked and a terminal event (result/drained/error) arrived.
  bool Completed = false;
  /// A "result" event arrived and its campaign parsed.
  bool GotResult = false;
  /// The server drained mid-campaign; resubmit to resume.
  bool Drained = false;
  /// "hit", "partial" or "miss" from the accepted event.
  std::string Cache;
  /// Certification ladder rung (JSON key form).
  std::string Certification;
  /// "0x…" whole-program content hash from the accepted event.
  std::string ProgramHash;
  unsigned ShardsTotal = 0;
  unsigned ShardsDone = 0;
  /// Number of "shard" events streamed (0 on a cache hit).
  unsigned ShardEvents = 0;
  /// The folded campaign from the result event.
  CampaignResult Campaign;
  /// Transport or server error ("" when Completed without error).
  std::string Error;
  /// Machine-readable error code from an error event (e.g. "overloaded",
  /// "shard_poisoned", "deadline_exceeded").
  std::string ErrorCode;
  /// Backpressure hint from an "overloaded" error (0 when absent).
  uint64_t RetryAfterMs = 0;
  /// Pool attempts reported by shard/error events (max seen; 1 = no
  /// retry was needed anywhere).
  unsigned MaxShardAttempts = 0;
  /// Every raw event line, in arrival order (diagnostics, tests).
  std::vector<std::string> Events;
};

/// Connects to \p Host:\p Port, submits \p Spec and drains the event
/// stream. Never throws; transport failures land in Outcome.Error.
SubmitOutcome submitProgram(const std::string &Host, unsigned Port,
                            const SubmitSpec &Spec);

/// One-line request/response helpers. Return false with \p Err set on
/// transport failure; the response line lands in \p Out.
bool requestStats(const std::string &Host, unsigned Port, std::string &Out,
                  std::string &Err);
bool requestPing(const std::string &Host, unsigned Port, std::string &Out,
                 std::string &Err);

} // namespace talft::serve

#endif // TALFT_SERVE_CLIENT_H
