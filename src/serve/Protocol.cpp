//===- serve/Protocol.cpp - Protocol parsing and rendering ----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "isa/Fingerprint.h"
#include "isa/ProgramHash.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace talft;
using namespace talft::serve;

uint64_t talft::serve::optionsDigest(const SubmitSpec &S) {
  uint64_t H = fp::mix(0x74616c6673727631ull); // "talfsrv1" options domain
  auto Add = [&H](uint64_t V) { H = fp::mix(H ^ fp::mix(V)); };
  // Engine first: the table provably cannot depend on it, but the issue
  // of record is provenance — a vm-certified entry must not answer for a
  // reference-engine request.
  Add(S.Engine == "reference" ? 1 : S.Engine == "jit" ? 3 : 2);
  Add(S.Stride);
  Add(S.MaxSteps);
  Add(S.ExtraSteps);
  Add(S.OnlyMentionedRegisters);
  Add(S.Prune);
  Add(S.Converge);
  Add(S.Lanes);
  Add(S.LaneWidth);
  Add(S.Recover);
  Add(S.CheckpointInterval);
  Add(S.RetryBudget);
  return H;
}

TheoremConfig talft::serve::theoremConfig(const SubmitSpec &S,
                                          uint64_t Stride) {
  TheoremConfig Config;
  Config.MaxSteps = S.MaxSteps;
  Config.ExtraSteps = S.ExtraSteps;
  Config.InjectionStride = std::max<uint64_t>(1, Stride);
  Config.OnlyMentionedRegisters = S.OnlyMentionedRegisters;
  Config.Recovery.Enabled = S.Recover;
  Config.Recovery.CheckpointInterval = S.CheckpointInterval;
  Config.Recovery.RetryBudget = S.RetryBudget;
  return Config;
}

void talft::serve::applySpecOptions(const SubmitSpec &S, CampaignOptions &O) {
  O.Prune = S.Prune;
  O.Converge = S.Converge;
  O.Lanes = S.Lanes;
  O.LaneWidth = S.LaneWidth;
}

bool talft::serve::specFromJson(const JsonValue &V, SubmitSpec &Out,
                                std::string &Err) {
  if (!V.isObject()) {
    Err = "submit request is not an object";
    return false;
  }
  const JsonValue *Source = V.get("source");
  if (!Source || !Source->isString() || Source->asString().empty()) {
    Err = "submit request needs a non-empty \"source\" string";
    return false;
  }
  Out.Source = Source->asString();
  Out.Name = V.stringAt("name", "");
  Out.Lang = V.stringAt("lang", "wile");
  if (Out.Lang != "wile" && Out.Lang != "tal") {
    Err = "unknown lang \"" + Out.Lang + "\" (expected \"wile\" or \"tal\")";
    return false;
  }
  Out.Engine = V.stringAt("engine", "vm");
  if (Out.Engine != "vm" && Out.Engine != "reference" && Out.Engine != "jit") {
    Err = "unknown engine \"" + Out.Engine +
          "\" (expected \"vm\", \"reference\" or \"jit\")";
    return false;
  }
  Out.Stride = V.u64At("stride", Out.Stride);
  Out.MaxSteps = V.u64At("max_steps", Out.MaxSteps);
  Out.ExtraSteps = V.u64At("extra_steps", Out.ExtraSteps);
  Out.OnlyMentionedRegisters =
      V.boolAt("only_mentioned_registers", Out.OnlyMentionedRegisters);
  Out.Prune = V.boolAt("prune", Out.Prune);
  Out.Converge = V.boolAt("converge", Out.Converge);
  Out.Lanes = V.boolAt("lanes", Out.Lanes);
  Out.LaneWidth = (unsigned)V.u64At("lane_width", Out.LaneWidth);
  if (Out.LaneWidth == 0) {
    Err = "lane_width must be nonzero";
    return false;
  }
  Out.Recover = V.boolAt("recover", Out.Recover);
  Out.CheckpointInterval =
      V.u64At("checkpoint_interval", Out.CheckpointInterval);
  if (Out.CheckpointInterval == 0)
    Out.CheckpointInterval = 1;
  Out.RetryBudget = V.u64At("retry_budget", Out.RetryBudget);
  Out.Shards = (unsigned)V.u64At("shards", Out.Shards);
  Out.DeadlineMs = V.u64At("deadline_ms", Out.DeadlineMs);
  if (Out.MaxSteps == 0) {
    Err = "max_steps must be nonzero";
    return false;
  }
  return true;
}

std::string talft::serve::submitRequestJson(const SubmitSpec &S) {
  std::string Out = "{\"cmd\": \"submit\"";
  if (!S.Name.empty())
    Out += ", \"name\": " + jsonQuote(S.Name);
  Out += ", \"lang\": " + jsonQuote(S.Lang);
  Out += ", \"engine\": " + jsonQuote(S.Engine);
  Out += formatv(", \"stride\": %llu, \"max_steps\": %llu, "
                 "\"extra_steps\": %llu, \"only_mentioned_registers\": %s, "
                 "\"prune\": %s, \"converge\": %s, \"lanes\": %s, "
                 "\"lane_width\": %u, \"recover\": %s, "
                 "\"checkpoint_interval\": %llu, \"retry_budget\": %llu, "
                 "\"shards\": %u",
                 (unsigned long long)S.Stride, (unsigned long long)S.MaxSteps,
                 (unsigned long long)S.ExtraSteps,
                 S.OnlyMentionedRegisters ? "true" : "false",
                 S.Prune ? "true" : "false", S.Converge ? "true" : "false",
                 S.Lanes ? "true" : "false", S.LaneWidth,
                 S.Recover ? "true" : "false",
                 (unsigned long long)S.CheckpointInterval,
                 (unsigned long long)S.RetryBudget, S.Shards);
  if (S.DeadlineMs)
    Out += formatv(", \"deadline_ms\": %llu", (unsigned long long)S.DeadlineMs);
  Out += ", \"source\": " + jsonQuote(S.Source);
  Out += "}";
  return Out;
}

namespace {

/// Stats.Engine is a const char* owned by the engine implementations;
/// deserialized results intern onto matching literals.
const char *internEngineName(const std::string &Name) {
  if (Name == "vm")
    return "vm";
  if (Name == "jit")
    return "jit";
  if (Name == "reference")
    return "reference";
  return "unknown";
}

} // namespace

bool talft::serve::campaignFromJson(const JsonValue &V, CampaignResult &R,
                                    std::string &Err) {
  if (!V.isObject() || !V.get("verdicts") || !V.get("stats")) {
    Err = "not a campaign object";
    return false;
  }
  R = CampaignResult();
  R.Ok = V.boolAt("ok", false);
  R.ReferenceSteps = V.u64At("reference_steps", 0);
  R.StatesTypechecked = V.u64At("states_typechecked", 0);
  uint64_t Hash = 0;
  if (parseProgramHash(V.stringAt("program_hash", "0x0"), Hash))
    R.ProgramHash = Hash;

  const JsonValue &Verdicts = *V.get("verdicts");
  for (size_t I = 0; I != NumVerdicts; ++I)
    R.Table.Counts[I] = Verdicts.u64At(verdictJsonKey((Verdict)I), 0);

  if (const JsonValue *Viol = V.get("violations"))
    for (const JsonValue &Item : Viol->items())
      R.Violations.push_back(Item.asString());

  if (const JsonValue *Rec = V.get("recovery")) {
    R.Recovery.Rollbacks = Rec->u64At("rollbacks", 0);
    R.Recovery.Checkpoints = Rec->u64At("checkpoints", 0);
    R.Recovery.ReplayedOutputs = Rec->u64At("replayed_outputs", 0);
  }
  if (const JsonValue *Conv = V.get("convergence")) {
    R.Stats.Converge = Conv->boolAt("enabled", false);
    R.Stats.EarlyExits = Conv->u64At("early_exits", 0);
    R.Stats.WindowSum = Conv->u64At("window_sum", 0);
    R.Stats.MaxWindow = Conv->u64At("max_window", 0);
    R.Stats.StepsSaved = Conv->u64At("steps_saved", 0);
    R.Stats.LockstepSkips = Conv->u64At("lockstep_skips", 0);
    R.Stats.LockstepSteps = Conv->u64At("lockstep_steps", 0);
  }
  if (const JsonValue *Lanes = V.get("lanes")) {
    R.Stats.Lanes = Lanes->boolAt("enabled", false);
    R.Stats.LaneWidth = (unsigned)Lanes->u64At("width", 0);
    R.Stats.LaneGroups = Lanes->u64At("groups", 0);
    R.Stats.LaneTasks = Lanes->u64At("lane_tasks", 0);
    R.Stats.LaneDeviations = Lanes->u64At("deviations", 0);
    R.Stats.LaneLockstepSteps = Lanes->u64At("lockstep_steps", 0);
  }
  if (const JsonValue *Jit = V.get("jit")) {
    R.Stats.JitNative = Jit->boolAt("native", false);
    R.Stats.JitBlocksCompiled = Jit->u64At("blocks_compiled", 0);
    R.Stats.JitCodeBytes = Jit->u64At("code_bytes", 0);
    R.Stats.JitSideExits = Jit->u64At("side_exits", 0);
    R.Stats.SimdLaneWidth = (unsigned)Jit->u64At("simd_lane_width", 0);
  }
  if (const JsonValue *Shard = V.get("shard")) {
    R.Stats.ShardCount = (unsigned)Shard->u64At("count", 1);
    R.Stats.ShardIndex = (unsigned)Shard->u64At("index", 0);
    R.Stats.ShardFirstTask = Shard->u64At("first_task", 0);
    R.Stats.TotalTasks = Shard->u64At("total_tasks", 0);
    R.Stats.ShardsFolded = (unsigned)Shard->u64At("folded", 0);
  }
  const JsonValue &Stats = *V.get("stats");
  R.Stats.Engine = internEngineName(Stats.stringAt("engine", "reference"));
  R.Stats.ThreadsUsed = (unsigned)Stats.u64At("threads", 1);
  R.Stats.Tasks = Stats.u64At("tasks", 0);
  R.Stats.ReferenceSeconds = Stats.doubleAt("reference_seconds", 0);
  R.Stats.WallSeconds = Stats.doubleAt("wall_seconds", 0);
  R.Stats.TriplesPerSecond = Stats.doubleAt("triples_per_second", 0);
  R.Stats.Pruned = Stats.boolAt("pruned", false);
  R.Stats.PrunedTasks = Stats.u64At("pruned_tasks", 0);
  return true;
}

std::string talft::serve::campaignJsonLine(const CampaignResult &R) {
  std::string S = campaignToJson(R, 0);
  S.erase(std::remove(S.begin(), S.end(), '\n'), S.end());
  return S;
}
