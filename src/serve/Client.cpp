//===- serve/Client.cpp - Line-protocol client for the cert server --------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include "serve/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace talft;
using namespace talft::serve;

namespace {

int connectTo(const std::string &Host, unsigned Port, std::string &Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = formatv("socket: %s", std::strerror(errno));
    return -1;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons((uint16_t)Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "invalid host address \"" + Host + "\"";
    ::close(Fd);
    return -1;
  }
  if (::connect(Fd, (sockaddr *)&Addr, sizeof(Addr)) < 0) {
    Err = formatv("connect to %s:%u: %s", Host.c_str(), Port,
                  std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool sendAll(int Fd, const std::string &S) {
  const char *Data = S.data();
  size_t Len = S.size();
  while (Len) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= (size_t)N;
  }
  return true;
}

/// Reads the next '\n'-terminated line (without the terminator). False on
/// EOF/error with nothing buffered.
bool readLine(int Fd, std::string &Buf, std::string &Line) {
  while (true) {
    size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      return true;
    }
    char Chunk[4096];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N > 0) {
      Buf.append(Chunk, (size_t)N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
}

bool oneShot(const std::string &Host, unsigned Port,
             const std::string &Request, std::string &Out, std::string &Err) {
  int Fd = connectTo(Host, Port, Err);
  if (Fd < 0)
    return false;
  if (!sendAll(Fd, Request + "\n")) {
    Err = formatv("send: %s", std::strerror(errno));
    ::close(Fd);
    return false;
  }
  std::string Buf;
  bool Got = readLine(Fd, Buf, Out);
  ::close(Fd);
  if (!Got)
    Err = "connection closed before a response arrived";
  return Got;
}

} // namespace

SubmitOutcome talft::serve::submitProgram(const std::string &Host,
                                          unsigned Port,
                                          const SubmitSpec &Spec) {
  SubmitOutcome O;
  int Fd = connectTo(Host, Port, O.Error);
  if (Fd < 0)
    return O;
  if (!sendAll(Fd, submitRequestJson(Spec) + "\n")) {
    O.Error = formatv("send: %s", std::strerror(errno));
    ::close(Fd);
    return O;
  }

  std::string Buf, Line;
  while (readLine(Fd, Buf, Line)) {
    if (Line.empty())
      continue;
    O.Events.push_back(Line);
    std::optional<JsonValue> Ev = JsonValue::parse(Line);
    if (!Ev || !Ev->isObject()) {
      O.Error = "unparseable event line: " + Line;
      break;
    }
    std::string Kind = Ev->stringAt("event", "");
    if (Kind == "accepted") {
      O.Cache = Ev->stringAt("cache", "");
      O.Certification = Ev->stringAt("certification", "");
      O.ProgramHash = Ev->stringAt("program_hash", "");
      O.ShardsTotal = (unsigned)Ev->u64At("shards_total", 0);
      O.ShardsDone = (unsigned)Ev->u64At("shards_done", 0);
    } else if (Kind == "shard") {
      ++O.ShardEvents;
      O.ShardsDone = (unsigned)Ev->u64At("index", O.ShardsDone) + 1;
      O.MaxShardAttempts = std::max(
          O.MaxShardAttempts, (unsigned)Ev->u64At("attempts", 1));
    } else if (Kind == "result") {
      O.ShardsTotal = (unsigned)Ev->u64At("shards_total", O.ShardsTotal);
      O.ShardsDone = (unsigned)Ev->u64At("shards_done", O.ShardsDone);
      O.Certification = Ev->stringAt("certification", O.Certification);
      const JsonValue *Campaign = Ev->get("campaign");
      std::string ParseErr;
      if (Campaign && campaignFromJson(*Campaign, O.Campaign, ParseErr))
        O.GotResult = true;
      else
        O.Error = "result event without a parseable campaign: " + ParseErr;
      O.Completed = true;
      break;
    } else if (Kind == "drained") {
      O.Drained = true;
      O.ShardsDone = (unsigned)Ev->u64At("shards_done", O.ShardsDone);
      O.ShardsTotal = (unsigned)Ev->u64At("shards_total", O.ShardsTotal);
      O.Completed = true;
      break;
    } else if (Kind == "error") {
      O.Error = Ev->stringAt("error", "unspecified server error");
      O.ErrorCode = Ev->stringAt("code", "");
      O.RetryAfterMs = Ev->u64At("retry_after_ms", 0);
      O.MaxShardAttempts = std::max(
          O.MaxShardAttempts, (unsigned)Ev->u64At("attempts", 0));
      O.Completed = true;
      break;
    }
    // Unknown event kinds are skipped for forward compatibility.
  }
  if (!O.Completed && O.Error.empty())
    O.Error = "connection closed before a terminal event";
  ::close(Fd);
  return O;
}

bool talft::serve::requestStats(const std::string &Host, unsigned Port,
                                std::string &Out, std::string &Err) {
  return oneShot(Host, Port, "{\"cmd\": \"stats\"}", Out, Err);
}

bool talft::serve::requestPing(const std::string &Host, unsigned Port,
                               std::string &Out, std::string &Err) {
  return oneShot(Host, Port, "{\"cmd\": \"ping\"}", Out, Err);
}
