//===- serve/Protocol.h - The line-delimited certification protocol -------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the certification server (serve/Server.h): one
/// JSON document per line, over a local TCP connection.
///
/// Requests ({"cmd": ...}):
///
///   {"cmd":"submit", "lang":"wile"|"tal", "source":"...", "name":"...",
///    "engine":"vm"|"reference", "stride":0, "max_steps":N,
///    "extra_steps":N, "only_mentioned_registers":b, "prune":b,
///    "converge":b, "lanes":b, "lane_width":N, "recover":b,
///    "checkpoint_interval":N, "retry_budget":N, "shards":N,
///    "deadline_ms":N}
///     Every option is optional and defaults to the batch CLI's defaults
///     (stride 0 = the fig10 adaptive stride max(1, refSteps/12)).
///   {"cmd":"stats"}   one stats document (also served as HTTP "GET /stats")
///   {"cmd":"ping"}    liveness probe
///
/// Responses ({"event": ...}): "accepted" (with program_hash,
/// options_digest, certification, cache hit/partial/miss, shard plan and
/// server build id), zero or more "shard" verdict-table deltas as shards
/// retire, then one "result" carrying the folded campaign object —
/// bit-identical to the batch CLI's campaignToJson for the same program
/// and options. "drained" replaces "result" when the server stops at a
/// shard boundary (SIGTERM drain); the folded prefix is persisted in the
/// memo store and a resubmission resumes from the next shard. "error"
/// reports malformed requests, parse/compile failures and backpressure
/// ("queue_full", "draining").
///
/// This header also owns the memoization key: a submission is addressed
/// by (whole-program content hash × options digest). The digest covers
/// every semantic campaign option — engine, stride, budgets, site filter,
/// prune, converge, lanes, lane width, recovery knobs — so any option
/// change is a cache miss; thread count and shard count are excluded
/// because the verdict table is provably independent of both.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SERVE_PROTOCOL_H
#define TALFT_SERVE_PROTOCOL_H

#include "fault/Campaign.h"
#include "serve/Json.h"

#include <string>

namespace talft::serve {

/// v2 adds the fail-operational fields: "retry_after_ms" on overloaded
/// errors, "shard_poisoned"/"deadline_exceeded" error codes, the
/// "deadline_ms" submit option, per-shard "attempts" provenance, and the
/// pool/wal/admission objects in the stats document.
inline constexpr const char *ProtocolSchema = "talft-serve-v2";
inline constexpr const char *StatsSchema = "talft-serve-stats-v2";
inline constexpr const char *CacheSchema = "talft-serve-cache-v1";

/// One submission: a program plus the campaign options that shape its
/// verdict table. Defaults mirror bench/fault_coverage's CLI defaults so
/// a bare {"cmd":"submit","source":...} serves the table the batch sweep
/// would print.
struct SubmitSpec {
  std::string Name;        ///< Display name (reports and logs only).
  std::string Lang = "wile"; ///< "wile" or "tal".
  std::string Source;
  std::string Engine = "vm"; ///< "vm" or "reference".
  /// Injection stride; 0 = adaptive max(1, referenceSteps / 12), the
  /// batch CLI's --fig10 rule.
  uint64_t Stride = 0;
  uint64_t MaxSteps = TheoremConfig().MaxSteps;
  uint64_t ExtraSteps = TheoremConfig().ExtraSteps;
  bool OnlyMentionedRegisters = true;
  bool Prune = false;
  bool Converge = true;
  bool Lanes = true;
  unsigned LaneWidth = 16;
  bool Recover = false;
  uint64_t CheckpointInterval = 1;
  uint64_t RetryBudget = 2;
  /// Requested shard count; 0 = the server's default. Not part of the
  /// memo key (shard folds are bit-identical at any count).
  unsigned Shards = 0;
  /// Per-submission wall-clock deadline; 0 = the server's default (which
  /// may itself be "none"). Not part of the memo key — a deadline shapes
  /// when work is abandoned, never what a verdict table contains.
  uint64_t DeadlineMs = 0;
};

/// The options half of the memo key: a 64-bit digest of every semantic
/// knob in \p S (excluding Name and Shards). Two specs with equal digests
/// produce bit-identical verdict tables for the same program.
uint64_t optionsDigest(const SubmitSpec &S);

/// The TheoremConfig a spec denotes, with the adaptive stride already
/// resolved to \p Stride.
TheoremConfig theoremConfig(const SubmitSpec &S, uint64_t Stride);

/// Fills the semantic campaign knobs (prune/converge/lanes/width) of
/// \p O from \p S. Engine, threads and the shard slice stay the
/// caller's business.
void applySpecOptions(const SubmitSpec &S, CampaignOptions &O);

/// Parses a {"cmd":"submit"} document. Returns false with \p Err set on
/// a missing source, an unknown lang/engine, or a zero lane width.
bool specFromJson(const JsonValue &V, SubmitSpec &Out, std::string &Err);

/// Renders \p S as the submit request line (no trailing newline) — the
/// client half of the protocol.
std::string submitRequestJson(const SubmitSpec &S);

/// Rebuilds a CampaignResult from campaignToJson's output (as parsed by
/// JsonValue). Exact for every integer field — verdict tables, violation
/// lists, shard provenance, convergence/lane/recovery counters — and
/// approximate only for the float timing stats. ReferenceTrace is not
/// serialized and stays empty. Returns false with \p Err set when the
/// object is not a campaign.
bool campaignFromJson(const JsonValue &V, CampaignResult &R,
                      std::string &Err);

/// campaignToJson flattened to a single line for the line-delimited
/// protocol (the writer only uses newlines between members, so stripping
/// them preserves validity).
std::string campaignJsonLine(const CampaignResult &R);

} // namespace talft::serve

#endif // TALFT_SERVE_PROTOCOL_H
