//===- serve/WorkerProc.h - One crash-isolated shard worker process -------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One forked worker process of the certification server's shard pool
/// (serve/WorkerPool.h), plus the length-prefixed, CRC-framed pipe
/// protocol both sides speak. The parent writes one request frame per
/// shard — the submission spec (serve/Protocol.h submit form) extended
/// with the resolved stride, the shard coordinates and the campaign
/// thread count — and reads back one response frame carrying either the
/// shard's campaign JSON or a structured error. The child is a loop:
/// read frame, compile the program from source in a fresh TypeContext,
/// run exactly that shard of the deterministic task partition
/// (fault/Campaign.h), reply, repeat; EOF on the request pipe is the
/// shutdown signal.
///
/// Crash isolation is the point: the worker shares no mutable state with
/// the server — a segfault, an OOM kill or a runaway shard takes down
/// only this process, and because shards are deterministic index ranges
/// the parent can re-run the same shard on a fresh worker and fold a
/// bit-identical table. Every frame carries a CRC-32 so a worker dying
/// mid-write surfaces as a framing error, never as a half-parsed result.
///
/// Chaos hook: a request may name a signal the worker raises at the
/// shard boundary (after classification completes, before the response
/// frame) — the worst-case crash the retry path must mask. The hook
/// rides CampaignOptions::ShardRetiredHook so the crash lands exactly
/// where a real mid-service fault would.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SERVE_WORKERPROC_H
#define TALFT_SERVE_WORKERPROC_H

#include <cstdint>
#include <string>
#include <sys/types.h>

namespace talft::serve {

/// Writes one frame ([u32 length][u32 crc32][payload]) to \p Fd.
/// Returns false on any write failure (EPIPE included).
bool writeFrame(int Fd, const std::string &Payload);

/// Reads one frame from \p Fd into \p Payload. Returns false on EOF,
/// read error, an oversized length prefix or a CRC mismatch — all of
/// which the pool treats as a dead worker. Blocks; the pool bounds the
/// wait by polling \p Fd before calling this.
bool readFrame(int Fd, std::string &Payload);

/// Hard cap on a single frame (requests carry program sources, responses
/// carry campaign JSON; both are far below this).
inline constexpr uint32_t MaxFrameBytes = 64u << 20;

/// The child side: serve shard requests from \p RequestFd, answering on
/// \p ResponseFd, until EOF. Never returns control to the caller's
/// runtime — exits the process via _exit (no atexit handlers, no gtest
/// teardown, no flushing of inherited stdio buffers).
[[noreturn]] void runWorkerLoop(int RequestFd, int ResponseFd);

/// Parent-side handle for one forked worker.
struct WorkerProc {
  pid_t Pid = -1;
  int RequestFd = -1;  ///< Parent writes shard requests here.
  int ResponseFd = -1; ///< Parent reads shard responses here.
  uint64_t ShardsServed = 0;

  bool alive() const { return Pid > 0; }
};

/// Forks a worker (closing every inherited descriptor in the child except
/// its two pipe ends and stderr) and fills \p Out. Returns false with
/// \p Err set on pipe/fork failure.
bool spawnWorker(WorkerProc &Out, std::string *Err);

/// Kills \p W with SIGKILL if still running, reaps the zombie, and closes
/// the parent's pipe ends. Safe to call on an already-dead handle.
void destroyWorker(WorkerProc &W);

} // namespace talft::serve

#endif // TALFT_SERVE_WORKERPROC_H
