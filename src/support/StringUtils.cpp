//===- support/StringUtils.cpp --------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace talft;

std::string talft::join(const std::vector<std::string> &Parts,
                        std::string_view Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::optional<int64_t> talft::parseInt64(std::string_view Text) {
  if (Text.empty())
    return std::nullopt;
  bool Negative = false;
  size_t I = 0;
  if (Text[0] == '-') {
    Negative = true;
    I = 1;
    if (Text.size() == 1)
      return std::nullopt;
  }
  // Accumulate in unsigned space to detect overflow, then apply the sign.
  uint64_t Acc = 0;
  const uint64_t Limit =
      Negative ? (uint64_t)INT64_MAX + 1 : (uint64_t)INT64_MAX;
  for (size_t E = Text.size(); I != E; ++I) {
    char C = Text[I];
    if (C < '0' || C > '9')
      return std::nullopt;
    uint64_t Digit = (uint64_t)(C - '0');
    if (Acc > (Limit - Digit) / 10)
      return std::nullopt;
    Acc = Acc * 10 + Digit;
  }
  if (Negative)
    return (int64_t)(0 - Acc);
  return (int64_t)Acc;
}

std::string talft::formatv(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Len < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out((size_t)Len, '\0');
  std::vsnprintf(Out.data(), (size_t)Len + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}
