//===- support/ExecMem.cpp - W^X executable-memory arena ------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "support/ExecMem.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define TALFT_EXECMEM_POSIX 1
#include <sys/mman.h>
#include <unistd.h>
#endif

using namespace talft;

ExecMem::~ExecMem() { release(); }

ExecMem::ExecMem(ExecMem &&O) noexcept
    : Base(O.Base), Cap(O.Cap), Exec(O.Exec) {
  O.Base = nullptr;
  O.Cap = 0;
  O.Exec = false;
}

ExecMem &ExecMem::operator=(ExecMem &&O) noexcept {
  if (this != &O) {
    release();
    Base = O.Base;
    Cap = O.Cap;
    Exec = O.Exec;
    O.Base = nullptr;
    O.Cap = 0;
    O.Exec = false;
  }
  return *this;
}

size_t ExecMem::pageSize() {
#if TALFT_EXECMEM_POSIX
  long PS = sysconf(_SC_PAGESIZE);
  return PS > 0 ? (size_t)PS : 4096;
#else
  return 4096;
#endif
}

bool ExecMem::supported() {
#if TALFT_EXECMEM_POSIX
  // One-shot probe: some hardened environments grant PROT_WRITE mappings
  // but refuse the later flip to PROT_EXEC; test the full cycle once.
  static const bool Ok = [] {
    size_t PS = pageSize();
    void *P = mmap(nullptr, PS, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (P == MAP_FAILED)
      return false;
    bool Flip = mprotect(P, PS, PROT_READ | PROT_EXEC) == 0;
    munmap(P, PS);
    return Flip;
  }();
  return Ok;
#else
  return false;
#endif
}

bool ExecMem::allocate(size_t Bytes) {
#if TALFT_EXECMEM_POSIX
  release();
  if (Bytes == 0)
    return false;
  size_t PS = pageSize();
  size_t Rounded = (Bytes + PS - 1) / PS * PS;
  void *P = mmap(nullptr, Rounded, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return false;
  Base = P;
  Cap = Rounded;
  Exec = false;
  return true;
#else
  (void)Bytes;
  return false;
#endif
}

bool ExecMem::write(size_t Offset, const void *Code, size_t Len) {
  if (!Base || Exec || Offset + Len > Cap)
    return false;
  std::memcpy(static_cast<uint8_t *>(Base) + Offset, Code, Len);
  return true;
}

bool ExecMem::finalize() {
#if TALFT_EXECMEM_POSIX
  if (!Base || Exec)
    return false;
  if (mprotect(Base, Cap, PROT_READ | PROT_EXEC) != 0)
    return false;
  Exec = true;
  return true;
#else
  return false;
#endif
}

bool ExecMem::reset() {
#if TALFT_EXECMEM_POSIX
  if (!Base || !Exec)
    return false;
  if (mprotect(Base, Cap, PROT_READ | PROT_WRITE) != 0)
    return false;
  Exec = false;
  return true;
#else
  return false;
#endif
}

void ExecMem::release() {
#if TALFT_EXECMEM_POSIX
  if (Base)
    munmap(Base, Cap);
#endif
  Base = nullptr;
  Cap = 0;
  Exec = false;
}
