//===- support/SourceLoc.h - Source positions for diagnostics -------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A (line, column) position within a textual input, used by the TAL
/// assembler and the Wile front end to report precise diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SUPPORT_SOURCELOC_H
#define TALFT_SUPPORT_SOURCELOC_H

#include <string>

namespace talft {

/// A 1-based (line, column) source position. Line 0 means "unknown".
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  SourceLoc() = default;
  SourceLoc(unsigned Line, unsigned Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &O) const = default;

  /// Renders as "line:col", or "?" when unknown.
  std::string str() const {
    if (!isValid())
      return "?";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace talft

#endif // TALFT_SUPPORT_SOURCELOC_H
