//===- support/Crc32.h - CRC-32 (ISO-HDLC) checksums ----------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard CRC-32 (polynomial 0xEDB88320, the zlib/ISO-HDLC variant)
/// as a small header-only routine. It frames the certification server's
/// crash-safe byte streams: the write-ahead submission log's on-disk
/// records (serve/SubmitLog.h) and the worker-pool pipe protocol
/// (serve/WorkerProc.h) both carry a CRC per frame so a torn write, a
/// truncated tail or a worker dying mid-reply is detected as corruption
/// instead of being parsed as data.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SUPPORT_CRC32_H
#define TALFT_SUPPORT_CRC32_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace talft::support {

namespace detail {

inline const std::array<uint32_t, 256> &crc32Table() {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  return Table;
}

} // namespace detail

/// CRC-32 of \p Len bytes at \p Data, continuing from \p Seed (pass the
/// previous return value to checksum a stream in chunks; 0 starts
/// fresh). Distinctly named — a crc32(const void*, size_t) overload
/// would ambiguously capture `crc32("literal", seed)` calls, reading the
/// seed as a length.
inline uint32_t crc32Bytes(const void *Data, size_t Len, uint32_t Seed = 0) {
  const auto &T = detail::crc32Table();
  uint32_t C = Seed ^ 0xFFFFFFFFu;
  const auto *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Len; ++I)
    C = T[(C ^ P[I]) & 0xFFu] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

inline uint32_t crc32(std::string_view S, uint32_t Seed = 0) {
  return crc32Bytes(S.data(), S.size(), Seed);
}

} // namespace talft::support

#endif // TALFT_SUPPORT_CRC32_H
