//===- support/AtomicFile.h - Atomic whole-file writes --------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Atomic whole-file replacement: temp file alongside the target, fflush,
/// then rename. A crashed or OOM-killed writer can never leave a truncated
/// file behind — the target is either the old version or the complete new
/// one. Shared by the bench harness report writers (bench/CliUtils.h) and
/// the certification server's memo-store persistence (src/serve/).
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SUPPORT_ATOMICFILE_H
#define TALFT_SUPPORT_ATOMICFILE_H

#include <cerrno>
#include <cstdio>
#include <string>

#include <sys/stat.h>
#include <sys/types.h>

namespace talft::support {

/// Creates directory \p Path and any missing parents (mkdir -p).
/// Returns true iff \p Path names an existing directory afterwards.
inline bool createDirectories(const std::string &Path) {
  if (Path.empty())
    return false;
  for (size_t I = 1; I <= Path.size(); ++I) {
    if (I != Path.size() && Path[I] != '/')
      continue;
    std::string Prefix = Path.substr(0, I);
    if (::mkdir(Prefix.c_str(), 0777) != 0 && errno != EEXIST)
      return false;
  }
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}

/// Writes \p Contents to \p Path atomically. Returns false (with the
/// partial temp file removed) on any failure.
inline bool writeFileAtomic(const std::string &Path,
                            const std::string &Contents) {
  std::string Tmp = Path + ".tmp";
  FILE *F = std::fopen(Tmp.c_str(), "w");
  if (!F)
    return false;
  bool Ok = std::fwrite(Contents.data(), 1, Contents.size(), F) ==
            Contents.size();
  Ok = (std::fflush(F) == 0) && Ok;
  Ok = (std::fclose(F) == 0) && Ok;
  if (Ok)
    Ok = std::rename(Tmp.c_str(), Path.c_str()) == 0;
  if (!Ok)
    std::remove(Tmp.c_str());
  return Ok;
}

} // namespace talft::support

#endif // TALFT_SUPPORT_ATOMICFILE_H
