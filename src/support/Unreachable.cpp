//===- support/Unreachable.cpp --------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "support/Unreachable.h"

#include <cstdio>
#include <cstdlib>

void talft::reportUnreachable(const char *Msg, const char *File,
                              unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
