//===- support/StringUtils.h - Small string helpers -----------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the printers and front ends: join, integer
/// parsing, and a printf-style formatter returning std::string.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SUPPORT_STRINGUTILS_H
#define TALFT_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace talft {

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Parses a signed 64-bit decimal integer (with optional leading '-').
/// Returns std::nullopt on malformed input or overflow.
std::optional<int64_t> parseInt64(std::string_view Text);

/// printf-style formatting into a std::string.
std::string formatv(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace talft

#endif // TALFT_SUPPORT_STRINGUTILS_H
