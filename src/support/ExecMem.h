//===- support/ExecMem.h - W^X executable-memory arena --------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A page-rounded arena for JIT-emitted machine code that honors the W^X
/// discipline: the mapping is writable (RW) while code is being copied in
/// and executable (RX, never RW+X) once finalized. reset() flips a
/// finalized arena back to RW so it can be reused across campaigns without
/// paying the mmap/munmap round trip.
///
/// On hosts without an mmap/mprotect pair (or when mapping fails, e.g.
/// under a hardened kernel that refuses PROT_EXEC) the arena reports
/// !valid() and the JIT tier falls back to the interpreter; nothing in the
/// engine ladder depends on this succeeding.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SUPPORT_EXECMEM_H
#define TALFT_SUPPORT_EXECMEM_H

#include <cstddef>
#include <cstdint>

namespace talft {

/// One contiguous RW -> RX code mapping.
class ExecMem {
public:
  ExecMem() = default;
  ~ExecMem();

  ExecMem(const ExecMem &) = delete;
  ExecMem &operator=(const ExecMem &) = delete;
  ExecMem(ExecMem &&O) noexcept;
  ExecMem &operator=(ExecMem &&O) noexcept;

  /// True when this process can map, write and then execute code pages at
  /// all (compile-time OS support plus a one-shot runtime probe).
  static bool supported();

  /// The system page size the arena rounds to.
  static size_t pageSize();

  /// Maps at least \p Bytes of RW memory (rounded up to whole pages).
  /// Returns false and leaves the arena invalid on failure.
  bool allocate(size_t Bytes);

  /// Copies \p Len bytes of code into the writable mapping at \p Offset.
  /// Requires a valid, writable arena and Offset + Len <= capacity().
  bool write(size_t Offset, const void *Code, size_t Len);

  /// Flips the mapping RW -> RX. After this the arena is executable and
  /// no longer writable.
  bool finalize();

  /// Flips a finalized mapping back to RW for reuse. Contents are
  /// preserved; the caller overwrites and finalizes again.
  bool reset();

  bool valid() const { return Base != nullptr; }
  bool executable() const { return Exec; }
  /// Page-rounded capacity of the mapping (0 when invalid).
  size_t capacity() const { return Cap; }
  /// Base of the mapping (null when invalid).
  const uint8_t *base() const { return static_cast<const uint8_t *>(Base); }
  uint8_t *writableBase() { return Exec ? nullptr : static_cast<uint8_t *>(Base); }

  /// Releases the mapping (idempotent).
  void release();

private:
  void *Base = nullptr;
  size_t Cap = 0;
  bool Exec = false;
};

} // namespace talft

#endif // TALFT_SUPPORT_EXECMEM_H
