//===- support/Error.h - Lightweight recoverable-error types --------------===//
//
// Part of the TALFT project: a reproduction of "Fault-tolerant Typed
// Assembly Language" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recoverable-error plumbing in the spirit of llvm::Error / llvm::Expected,
/// scaled down for a standalone library that does not use exceptions.
///
/// An Error is either success (empty) or carries a message. An Expected<T>
/// carries either a T or an Error. Both convert to bool: Error is true on
/// *failure*, Expected<T> is true on *success* (matching the LLVM
/// conventions, which make the common early-exit idioms read naturally).
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SUPPORT_ERROR_H
#define TALFT_SUPPORT_ERROR_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace talft {

/// A recoverable error: success, or a failure carrying a message.
class Error {
public:
  /// Creates a success value.
  static Error success() { return Error(); }

  /// Creates a failure value carrying \p Msg.
  explicit Error(std::string Msg) : Failed(true), Msg(std::move(Msg)) {}

  Error() = default;
  Error(Error &&) = default;
  Error &operator=(Error &&) = default;
  Error(const Error &) = default;
  Error &operator=(const Error &) = default;

  /// True on failure, false on success.
  explicit operator bool() const { return Failed; }

  /// Returns the failure message. Only valid on failure.
  const std::string &message() const {
    assert(Failed && "message() on a success value");
    return Msg;
  }

private:
  bool Failed = false;
  std::string Msg;
};

/// Creates a failure Error with the given message.
inline Error makeError(std::string Msg) { return Error(std::move(Msg)); }

/// Either a T (success) or an Error (failure).
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Val) : Storage(std::in_place_index<0>, std::move(Val)) {}

  /// Constructs a failure value. \p Err must be a failure.
  Expected(Error Err) : Storage(std::in_place_index<1>, std::move(Err)) {
    assert(std::get<1>(Storage) && "Expected constructed from success Error");
  }

  /// True on success.
  explicit operator bool() const { return Storage.index() == 0; }

  /// Accesses the contained value. Only valid on success.
  T &operator*() {
    assert(*this && "dereference of failed Expected");
    return std::get<0>(Storage);
  }
  const T &operator*() const {
    assert(*this && "dereference of failed Expected");
    return std::get<0>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Extracts the error (success Error if in success mode).
  Error takeError() {
    if (*this)
      return Error::success();
    return std::move(std::get<1>(Storage));
  }

  /// Returns the failure message. Only valid on failure.
  const std::string &message() const {
    assert(!*this && "message() on a success value");
    return std::get<1>(Storage).message();
  }

  /// Moves the contained value into \p Out on success; returns the error
  /// state either way.
  template <typename U> Error moveInto(U &Out) {
    if (!*this)
      return takeError();
    Out = std::move(std::get<0>(Storage));
    return Error::success();
  }

private:
  std::variant<T, Error> Storage;
};

} // namespace talft

#endif // TALFT_SUPPORT_ERROR_H
