//===- support/Unreachable.h - Marker for impossible control flow ---------===//
//
// Part of the TALFT project: a reproduction of "Fault-tolerant Typed
// Assembly Language" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Provides talft_unreachable, used to document control-flow points that
/// cannot be reached when the program invariants hold. Mirrors
/// llvm_unreachable: aborts with a message in all build modes.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SUPPORT_UNREACHABLE_H
#define TALFT_SUPPORT_UNREACHABLE_H

namespace talft {

/// Reports a fatal internal error and aborts. Never returns.
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    unsigned Line);

} // namespace talft

/// Marks a point in the code that must never execute.
#define talft_unreachable(MSG)                                                 \
  ::talft::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // TALFT_SUPPORT_UNREACHABLE_H
