//===- support/Diagnostics.h - Diagnostic collection ----------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine shared by the assembler, the type checker and
/// the Wile compiler. Diagnostics accumulate in the engine; callers decide
/// how to render them (tests inspect them, tools print them).
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SUPPORT_DIAGNOSTICS_H
#define TALFT_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace talft {

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported problem: severity, optional location, and message text.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "error: 3:7: message" (location omitted when unknown).
  std::string str() const;
};

/// Accumulates diagnostics during a front-end or checker pass.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Msg) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Msg)});
    ++NumErrors;
  }
  void error(std::string Msg) { error(SourceLoc(), std::move(Msg)); }

  void warning(SourceLoc Loc, std::string Msg) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Msg)});
  }

  void note(SourceLoc Loc, std::string Msg) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Msg)});
  }
  void note(std::string Msg) { note(SourceLoc(), std::move(Msg)); }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string str() const;

  /// Discards all accumulated diagnostics.
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace talft

#endif // TALFT_SUPPORT_DIAGNOSTICS_H
