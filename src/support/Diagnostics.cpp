//===- support/Diagnostics.cpp --------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace talft;

static const char *kindName(DiagKind K) {
  switch (K) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Out = kindName(Kind);
  Out += ": ";
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
