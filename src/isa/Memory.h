//===- isa/Memory.h - Code and value memories (Figure 1) ------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Code memory C maps integer addresses to instructions; value memory M
/// maps addresses to integers. Both are inside the protected sphere (the
/// fault model never corrupts them; error-correcting codes make this cheap
/// in practice). Address 0 is never a valid code address — the destination
/// register uses 0 as its "no pending transfer" sentinel.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ISA_MEMORY_H
#define TALFT_ISA_MEMORY_H

#include "isa/Fingerprint.h"
#include "isa/Inst.h"
#include "isa/Value.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <vector>

namespace talft {

/// Code memory C: a partial map from addresses to instructions. Immutable
/// during execution (the fault model does not corrupt instructions).
class CodeMemory {
public:
  /// Places instruction \p I at address \p A (must be nonzero and unused).
  void set(Addr A, Inst I) {
    assert(A != 0 && "address 0 is not a valid code address");
    assert(!Insts.count(A) && "code address defined twice");
    Insts.emplace(A, I);
  }

  bool contains(Addr A) const { return Insts.count(A) != 0; }

  /// C(n). Requires contains(n).
  const Inst &get(Addr A) const {
    auto It = Insts.find(A);
    assert(It != Insts.end() && "fetch from an undefined code address");
    return It->second;
  }

  size_t size() const { return Insts.size(); }
  auto begin() const { return Insts.begin(); }
  auto end() const { return Insts.end(); }

private:
  std::map<Addr, Inst> Insts;
};

/// Value memory M: a partial map from addresses to integers. Loads from
/// addresses outside Dom(M) are "wild" (see the ldG-fail / ldG-rand rules).
///
/// Stored as a flat sorted vector: memories are tiny (a handful of data
/// cells), sit on the load/store hot path of both engines, and are copied
/// into every campaign snapshot — contiguous storage makes both the binary
/// search and the copy cheap. Iteration yields (address, value) pairs in
/// ascending address order, exactly like the std::map it replaced.
class ValueMemory {
public:
  /// Defines (or overwrites) location \p A.
  void set(Addr A, int64_t V) {
    auto It = find(A);
    if (It != Cells.end() && It->first == A) {
      Fp ^= fp::memCell(A, It->second) ^ fp::memCell(A, V);
      It->second = V;
      return;
    }
    Fp ^= fp::memCell(A, V);
    Cells.insert(It, {A, V});
  }

  bool contains(Addr A) const {
    auto It = find(A);
    return It != Cells.end() && It->first == A;
  }

  /// M(n). Requires contains(n).
  int64_t get(Addr A) const {
    auto It = find(A);
    assert(It != Cells.end() && It->first == A &&
           "load from an undefined memory address");
    return It->second;
  }

  /// M(n) if defined.
  std::optional<int64_t> lookup(Addr A) const {
    auto It = find(A);
    if (It == Cells.end() || It->first != A)
      return std::nullopt;
    return It->second;
  }

  size_t size() const { return Cells.size(); }
  auto begin() const { return Cells.begin(); }
  auto end() const { return Cells.end(); }

  /// Zobrist fingerprint of the memory contents, maintained O(1) per
  /// write: the XOR of one pseudorandom word per defined cell.
  uint64_t fingerprint() const { return Fp; }

  bool operator==(const ValueMemory &O) const = default;

private:
  std::vector<std::pair<Addr, int64_t>>::const_iterator find(Addr A) const {
    return std::lower_bound(
        Cells.begin(), Cells.end(), A,
        [](const std::pair<Addr, int64_t> &C, Addr A) { return C.first < A; });
  }
  std::vector<std::pair<Addr, int64_t>>::iterator find(Addr A) {
    return std::lower_bound(
        Cells.begin(), Cells.end(), A,
        [](const std::pair<Addr, int64_t> &C, Addr A) { return C.first < A; });
  }

  /// Sorted by address, unique.
  std::vector<std::pair<Addr, int64_t>> Cells;
  uint64_t Fp = 0;
};

} // namespace talft

#endif // TALFT_ISA_MEMORY_H
