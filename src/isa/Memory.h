//===- isa/Memory.h - Code and value memories (Figure 1) ------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Code memory C maps integer addresses to instructions; value memory M
/// maps addresses to integers. Both are inside the protected sphere (the
/// fault model never corrupts them; error-correcting codes make this cheap
/// in practice). Address 0 is never a valid code address — the destination
/// register uses 0 as its "no pending transfer" sentinel.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ISA_MEMORY_H
#define TALFT_ISA_MEMORY_H

#include "isa/Inst.h"
#include "isa/Value.h"

#include <cassert>
#include <map>
#include <optional>

namespace talft {

/// Code memory C: a partial map from addresses to instructions. Immutable
/// during execution (the fault model does not corrupt instructions).
class CodeMemory {
public:
  /// Places instruction \p I at address \p A (must be nonzero and unused).
  void set(Addr A, Inst I) {
    assert(A != 0 && "address 0 is not a valid code address");
    assert(!Insts.count(A) && "code address defined twice");
    Insts.emplace(A, I);
  }

  bool contains(Addr A) const { return Insts.count(A) != 0; }

  /// C(n). Requires contains(n).
  const Inst &get(Addr A) const {
    auto It = Insts.find(A);
    assert(It != Insts.end() && "fetch from an undefined code address");
    return It->second;
  }

  size_t size() const { return Insts.size(); }
  auto begin() const { return Insts.begin(); }
  auto end() const { return Insts.end(); }

private:
  std::map<Addr, Inst> Insts;
};

/// Value memory M: a partial map from addresses to integers. Loads from
/// addresses outside Dom(M) are "wild" (see the ldG-fail / ldG-rand rules).
class ValueMemory {
public:
  /// Defines (or overwrites) location \p A.
  void set(Addr A, int64_t V) { Cells[A] = V; }

  bool contains(Addr A) const { return Cells.count(A) != 0; }

  /// M(n). Requires contains(n).
  int64_t get(Addr A) const {
    auto It = Cells.find(A);
    assert(It != Cells.end() && "load from an undefined memory address");
    return It->second;
  }

  /// M(n) if defined.
  std::optional<int64_t> lookup(Addr A) const {
    auto It = Cells.find(A);
    if (It == Cells.end())
      return std::nullopt;
    return It->second;
  }

  size_t size() const { return Cells.size(); }
  auto begin() const { return Cells.begin(); }
  auto end() const { return Cells.end(); }

  bool operator==(const ValueMemory &O) const = default;

private:
  std::map<Addr, int64_t> Cells;
};

} // namespace talft

#endif // TALFT_ISA_MEMORY_H
