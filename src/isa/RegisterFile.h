//===- isa/RegisterFile.h - The register bank R (Figure 1) ----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register bank R: a total function from register names to colored
/// values. Provides the paper's notational helpers:
///
///   R(a)        -> get(a)
///   Rval(a)     -> val(a)
///   Rcol(a)     -> col(a)
///   R[a |-> v]  -> set(a, v)      (in place)
///   R++         -> incrementPCs() (adds 1 to both program counters)
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ISA_REGISTERFILE_H
#define TALFT_ISA_REGISTERFILE_H

#include "isa/Fingerprint.h"
#include "isa/Reg.h"
#include "isa/Value.h"

#include <array>

namespace talft {

/// The machine's register bank.
class RegisterFile {
public:
  /// Initializes every general register to G 0, d to G 0 and both program
  /// counters to the given entry address (pcG green, pcB blue).
  explicit RegisterFile(Addr Entry = 0) {
    for (Value &V : Regs)
      V = Value::green(0);
    Regs[Reg::pcB().denseIndex()] = Value::blue(Entry);
    Regs[Reg::pcG().denseIndex()] = Value::green(Entry);
    for (unsigned I = 0; I != Reg::NumRegs; ++I)
      Fp ^= fp::regCell(I, Regs[I]);
  }

  /// R(a): the full colored value in register \p A.
  const Value &get(Reg A) const { return Regs[A.denseIndex()]; }
  /// Rval(a): the integer payload of register \p A.
  int64_t val(Reg A) const { return get(A).N; }
  /// Rcol(a): the color tag of register \p A.
  Color col(Reg A) const { return get(A).C; }

  /// R[a |-> v].
  void set(Reg A, Value V) {
    unsigned I = A.denseIndex();
    Fp ^= fp::regCell(I, Regs[I]) ^ fp::regCell(I, V);
    Regs[I] = V;
  }

  /// R++: increments both program counters by one (preserving colors).
  void incrementPCs() {
    Value &G = Regs[Reg::pcG().denseIndex()];
    Value &B = Regs[Reg::pcB().denseIndex()];
    constexpr unsigned GI = NumGeneralRegs + 1, BI = NumGeneralRegs + 2;
    Fp ^= fp::regCell(GI, G) ^ fp::regCell(BI, B);
    G.N += 1;
    B.N += 1;
    Fp ^= fp::regCell(GI, G) ^ fp::regCell(BI, B);
  }

  /// Zobrist fingerprint of the bank, maintained O(1) per write: the XOR
  /// of one pseudorandom word per (slot, colored value) pair.
  uint64_t fingerprint() const { return Fp; }

  /// Raw dense-cell access for execution tiers that batch fingerprint
  /// maintenance (the JIT writes cells natively, then the driver folds
  /// old-cell ^ new-cell terms for the dirty slots in one pass). Callers
  /// mutating through rawCells() own restoring the fingerprint invariant
  /// via rawSetFingerprint() before the state is observed.
  Value *rawCells() { return Regs.data(); }
  const Value *rawCells() const { return Regs.data(); }
  void rawSetFingerprint(uint64_t NewFp) { Fp = NewFp; }

  bool operator==(const RegisterFile &O) const = default;

private:
  std::array<Value, Reg::NumRegs> Regs;
  uint64_t Fp = 0;
};

} // namespace talft

#endif // TALFT_ISA_REGISTERFILE_H
