//===- isa/Value.h - Colored machine values (Figure 1) --------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A colored value "c n": a 64-bit integer tagged with the color of the
/// computation that produced it. The tag has no effect on evaluation — the
/// interpreter never branches on it — but it is preserved by the fault
/// model (reg-zap keeps the color while corrupting the payload), which is
/// what makes the similarity relations of Figure 9 definable.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ISA_VALUE_H
#define TALFT_ISA_VALUE_H

#include "isa/Color.h"

#include <cstdint>
#include <string>

namespace talft {

/// Machine addresses (both code and data) are plain integers.
using Addr = int64_t;

/// A colored value: the payload integer plus its computation color.
struct Value {
  Color C = Color::Green;
  int64_t N = 0;

  Value() = default;
  Value(Color C, int64_t N) : C(C), N(N) {}

  /// Builds a green value.
  static Value green(int64_t N) { return Value(Color::Green, N); }
  /// Builds a blue value.
  static Value blue(int64_t N) { return Value(Color::Blue, N); }

  /// Full equality, including the (fictional) color tag.
  bool operator==(const Value &O) const = default;

  /// Renders as "G 5" / "B -3", the paper's notation.
  std::string str() const {
    return std::string(colorLetter(C)) + " " + std::to_string(N);
  }
};

} // namespace talft

#endif // TALFT_ISA_VALUE_H
