//===- isa/Inst.cpp -------------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "isa/Inst.h"

#include "support/Unreachable.h"

using namespace talft;

int64_t talft::evalAluOp(Opcode Op, int64_t A, int64_t B) {
  // Arithmetic wraps: machine integers are 64-bit two's complement. Compute
  // in unsigned space so overflow is defined behavior.
  uint64_t UA = (uint64_t)A, UB = (uint64_t)B;
  switch (Op) {
  case Opcode::Add:
    return (int64_t)(UA + UB);
  case Opcode::Sub:
    return (int64_t)(UA - UB);
  case Opcode::Mul:
    return (int64_t)(UA * UB);
  default:
    talft_unreachable("evalAluOp on a non-ALU opcode");
  }
}

const char *talft::opcodeStem(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Ld:
    return "ld";
  case Opcode::St:
    return "st";
  case Opcode::Mov:
    return "mov";
  case Opcode::Bz:
    return "bz";
  case Opcode::Jmp:
    return "jmp";
  }
  talft_unreachable("unknown opcode");
}

Inst Inst::alu(Opcode Op, Reg Rd, Reg Rs, Reg Rt) {
  assert(isAluOpcode(Op) && "alu() requires add/sub/mul");
  assert(Rd.isGeneral() && Rs.isGeneral() && Rt.isGeneral() &&
         "instruction operands must be general registers");
  Inst I;
  I.Op = Op;
  I.Rd = Rd;
  I.Rs = Rs;
  I.Rt = Rt;
  return I;
}

Inst Inst::aluImm(Opcode Op, Reg Rd, Reg Rs, Value V) {
  assert(isAluOpcode(Op) && "aluImm() requires add/sub/mul");
  assert(Rd.isGeneral() && Rs.isGeneral() &&
         "instruction operands must be general registers");
  Inst I;
  I.Op = Op;
  I.HasImm = true;
  I.Rd = Rd;
  I.Rs = Rs;
  I.Imm = V;
  return I;
}

Inst Inst::ld(Color C, Reg Rd, Reg Rs) {
  assert(Rd.isGeneral() && Rs.isGeneral() &&
         "instruction operands must be general registers");
  Inst I;
  I.Op = Opcode::Ld;
  I.C = C;
  I.Rd = Rd;
  I.Rs = Rs;
  return I;
}

Inst Inst::st(Color C, Reg RdAddr, Reg RsVal) {
  assert(RdAddr.isGeneral() && RsVal.isGeneral() &&
         "instruction operands must be general registers");
  Inst I;
  I.Op = Opcode::St;
  I.C = C;
  I.Rd = RdAddr;
  I.Rs = RsVal;
  return I;
}

Inst Inst::mov(Reg Rd, Value V) {
  assert(Rd.isGeneral() && "instruction operands must be general registers");
  Inst I;
  I.Op = Opcode::Mov;
  I.HasImm = true;
  I.Rd = Rd;
  I.Imm = V;
  return I;
}

Inst Inst::bz(Color C, Reg Rz, Reg RdTarget) {
  assert(Rz.isGeneral() && RdTarget.isGeneral() &&
         "instruction operands must be general registers");
  Inst I;
  I.Op = Opcode::Bz;
  I.C = C;
  I.Rs = Rz;
  I.Rd = RdTarget;
  return I;
}

Inst Inst::jmp(Color C, Reg RdTarget) {
  assert(RdTarget.isGeneral() &&
         "instruction operands must be general registers");
  Inst I;
  I.Op = Opcode::Jmp;
  I.C = C;
  I.Rd = RdTarget;
  return I;
}

std::string Inst::str() const {
  std::string Out = opcodeStem(Op);
  if (isColored())
    Out += colorLetter(C);
  Out += ' ';
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
    Out += Rd.str() + ", " + Rs.str() + ", ";
    Out += HasImm ? Imm.str() : Rt.str();
    break;
  case Opcode::Ld:
  case Opcode::St:
    Out += Rd.str() + ", " + Rs.str();
    break;
  case Opcode::Mov:
    Out += Rd.str() + ", " + Imm.str();
    break;
  case Opcode::Bz:
    Out += Rs.str() + ", " + Rd.str();
    break;
  case Opcode::Jmp:
    Out += Rd.str();
    break;
  }
  return Out;
}
