//===- isa/StoreQueue.h - The store queue Q (Figure 1) --------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The store queue Q sits between the processor and value memory and is the
/// hardware half of the paired-store protocol: a green store stG pushes an
/// (address, value) pair onto the *front* of the queue; the matching blue
/// store stB pops the pair at the *back*, compares it against its own
/// operands, and commits it to memory only if they agree. A disagreement is
/// a detected fault.
///
/// The function find(Q, n) (used by ldG to let the green computation read
/// its own pending stores) returns the first pair with address n scanning
/// from the front, i.e. the most recently enqueued store to n wins.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ISA_STOREQUEUE_H
#define TALFT_ISA_STOREQUEUE_H

#include "isa/Fingerprint.h"
#include "isa/Value.h"

#include <cassert>
#include <deque>
#include <optional>
#include <utility>

namespace talft {

/// An (address, value) pair awaiting commit.
struct QueueEntry {
  Addr Address = 0;
  int64_t Val = 0;

  bool operator==(const QueueEntry &O) const = default;
};

/// The hardware store queue.
class StoreQueue {
public:
  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }

  /// stG: pushes onto the front.
  void pushFront(QueueEntry E) {
    // The new entry is farthest from the back: it contributes the
    // highest-degree term of the polynomial hash.
    Fp += entryHash(E) * BPow;
    BPow *= fp::QueueBase;
    Entries.push_front(E);
  }

  /// The pair the next stB will check (the back). Requires !empty().
  const QueueEntry &back() const {
    assert(!empty() && "back() on an empty store queue");
    return Entries.back();
  }

  /// Removes the back entry. Requires !empty().
  void popBack() {
    assert(!empty() && "popBack() on an empty store queue");
    // Strip the constant term, then shift every remaining entry one
    // position toward the back (divide by the odd base).
    Fp = (Fp - entryHash(Entries.back())) * fp::QueueBaseInv;
    BPow *= fp::QueueBaseInv;
    Entries.pop_back();
  }

  /// find(Q, n): the value of the first pair with address \p A scanning
  /// from the front, or nullopt if no pair has that address.
  std::optional<int64_t> find(Addr A) const {
    for (const QueueEntry &E : Entries)
      if (E.Address == A)
        return E.Val;
    return std::nullopt;
  }

  /// Indexed access from the front (0 = most recent), used by the fault
  /// model's Q-zap rules and by queue typing.
  const QueueEntry &entry(size_t I) const {
    assert(I < Entries.size() && "queue index out of range");
    return Entries[I];
  }

  /// In-place replacement of entry \p I (indexed from the front), the
  /// mutation the Q-zap fault rules perform. Goes through the hash so the
  /// fingerprint stays consistent; the position weight B^d is recomputed by
  /// a short loop (queues hold at most a few pending stores).
  void setEntry(size_t I, QueueEntry E) {
    assert(I < Entries.size() && "queue index out of range");
    uint64_t Weight = 1; // B^(distance from the back)
    for (size_t D = Entries.size() - 1 - I; D; --D)
      Weight *= fp::QueueBase;
    Fp += (entryHash(E) - entryHash(Entries[I])) * Weight;
    Entries[I] = E;
  }

  auto begin() const { return Entries.begin(); }
  auto end() const { return Entries.end(); }

  /// Polynomial fingerprint of the queue contents, maintained O(1) per
  /// push/pop: entry at distance d from the back contributes its hash
  /// times QueueBase^d (mod 2^64). A pure function of the current
  /// (address, value) sequence, independent of how it was built.
  uint64_t fingerprint() const { return Fp; }

  bool operator==(const StoreQueue &O) const = default;

private:
  static uint64_t entryHash(const QueueEntry &E) {
    return fp::queueEntry(E.Address, E.Val);
  }

  std::deque<QueueEntry> Entries;
  uint64_t Fp = 0;
  /// QueueBase^size(), maintained alongside Fp.
  uint64_t BPow = 1;
};

} // namespace talft

#endif // TALFT_ISA_STOREQUEUE_H
