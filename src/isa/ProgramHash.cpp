//===- isa/ProgramHash.cpp - Whole-program content hash -------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "isa/ProgramHash.h"

#include "isa/Fingerprint.h"
#include "isa/MachineState.h"
#include "isa/Memory.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

using namespace talft;

uint64_t talft::programContentHash(const CodeMemory &Code, Addr Entry,
                                   Addr Exit, const MachineState &Initial) {
  // A distinct domain constant so a program hash can never collide with a
  // state fingerprint of the same components by construction.
  uint64_t H = fp::mix(0x70726f6768617368ull); // "proghash"
  for (const auto &[A, I] : Code) {
    H = fp::mix(H ^ fp::mix((uint64_t)A));
    H = fp::mix(H ^ fp::instHash(I));
  }
  H = fp::mix(H ^ fp::mix((uint64_t)Entry));
  H = fp::mix(H ^ fp::mix((uint64_t)Exit));
  // recomputeFingerprint, not the incremental fingerprint: the oracle form
  // depends only on the state's contents, never on its mutation history.
  return fp::mix(H ^ recomputeFingerprint(Initial));
}

std::string talft::programHashString(uint64_t Hash) {
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx", (unsigned long long)Hash);
  return Buf;
}

bool talft::parseProgramHash(const std::string &Text, uint64_t &Hash) {
  const char *S = Text.c_str();
  if (Text.size() >= 2 && S[0] == '0' && (S[1] == 'x' || S[1] == 'X'))
    S += 2;
  if (*S == '\0' || *S == '-' || *S == '+')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long N = std::strtoull(S, &End, 16);
  if (End == S || *End != '\0' || errno == ERANGE)
    return false;
  Hash = N;
  return true;
}
