//===- isa/Reg.h - Register names (Figure 1) ------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register names. The machine has NumGeneralRegs general-purpose registers
/// r0..r63 (the paper writes r1, r2, ...), plus three special registers:
///
///   - d:   the destination register, holding a pending (green) control-flow
///          intention; 0 means "no pending transfer";
///   - pcG: the green program counter;
///   - pcB: the blue program counter.
///
/// The meta variable `a` in the paper ranges over all registers, `r` only
/// over general-purpose registers. Reg covers `a`; isGeneral() identifies
/// the `r` subset.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ISA_REG_H
#define TALFT_ISA_REG_H

#include "isa/Color.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace talft {

/// Number of general-purpose registers.
inline constexpr unsigned NumGeneralRegs = 64;

/// A register name: r0..r63, d, pcG or pcB.
class Reg {
public:
  Reg() = default;

  /// Builds a general-purpose register name.
  static Reg general(unsigned Index) {
    assert(Index < NumGeneralRegs && "general register index out of range");
    return Reg(Index);
  }

  /// The special destination register d.
  static Reg dest() { return Reg(NumGeneralRegs); }
  /// The program counter of the given color.
  static Reg pc(Color C) {
    return Reg(C == Color::Green ? NumGeneralRegs + 1 : NumGeneralRegs + 2);
  }
  static Reg pcG() { return pc(Color::Green); }
  static Reg pcB() { return pc(Color::Blue); }

  bool isGeneral() const { return Index < NumGeneralRegs; }
  bool isDest() const { return Index == NumGeneralRegs; }
  bool isPC() const { return Index > NumGeneralRegs; }

  /// For general registers, the 0-based index.
  unsigned generalIndex() const {
    assert(isGeneral() && "not a general register");
    return Index;
  }

  /// Dense index usable for array-backed register files (generals first,
  /// then d, pcG, pcB).
  unsigned denseIndex() const { return Index; }

  /// Inverse of denseIndex(); used by engines that pre-resolve register
  /// names to array indices at decode time.
  static Reg fromDenseIndex(unsigned Index) {
    assert(Index < NumRegs && "dense register index out of range");
    return Reg(Index);
  }

  /// Total number of registers (generals + d + pcG + pcB).
  static constexpr unsigned NumRegs = NumGeneralRegs + 3;

  bool operator==(const Reg &O) const = default;

  /// Renders as "r7", "d", "pcG" or "pcB".
  std::string str() const {
    if (isGeneral())
      return "r" + std::to_string(Index);
    if (isDest())
      return "d";
    return Index == NumGeneralRegs + 1 ? "pcG" : "pcB";
  }

private:
  explicit Reg(unsigned Index) : Index(Index) {}

  unsigned Index = 0;
};

} // namespace talft

#endif // TALFT_ISA_REG_H
