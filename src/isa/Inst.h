//===- isa/Inst.h - Instruction representation (Figure 1) -----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TALFT instruction set:
///
///   i ::= op rd,rs,rt | op rd,rs,v | ldc rd,rs | stc rd,rs
///       | mov rd,v | bzc rz,rd | jmpc rd            (op ∈ {add,sub,mul})
///
/// Instructions are a flat struct with an opcode discriminator (in the
/// style of a machine IR) rather than a class hierarchy or std::variant:
/// they are small, trivially copyable, and consumed by dense switches in
/// the interpreter and the type checker.
///
/// Operand roles by opcode (only general-purpose registers may appear):
///   Add/Sub/Mul : Rd <- Rs op Rt         (or Rs op Imm when HasImm)
///   Ld c        : Rd <- mem/queue[Rs]
///   St c        : store value Rs at address Rd (green: enqueue; blue:
///                 check against queue back and commit)
///   Mov         : Rd <- Imm
///   Bz c        : test Rs (the paper's rz); branch target register Rd
///   Jmp c       : target register Rd
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ISA_INST_H
#define TALFT_ISA_INST_H

#include "isa/Reg.h"
#include "isa/Value.h"

#include <cassert>
#include <string>

namespace talft {

/// Instruction opcodes. Colored opcodes (Ld, St, Bz, Jmp) additionally
/// carry a Color in Inst::C.
enum class Opcode : uint8_t { Add, Sub, Mul, Ld, St, Mov, Bz, Jmp };

/// True for add/sub/mul.
inline bool isAluOpcode(Opcode Op) {
  return Op == Opcode::Add || Op == Opcode::Sub || Op == Opcode::Mul;
}

/// Applies an ALU opcode to two integers (wrapping 64-bit arithmetic).
int64_t evalAluOp(Opcode Op, int64_t A, int64_t B);

/// The mnemonic stem ("add", "ld", ...) without any color suffix.
const char *opcodeStem(Opcode Op);

/// One TALFT machine instruction.
struct Inst {
  Opcode Op = Opcode::Mov;
  /// Color for Ld/St/Bz/Jmp (ignored elsewhere).
  Color C = Color::Green;
  /// True when the second ALU operand is the immediate (op rd,rs,v form).
  bool HasImm = false;
  Reg Rd;
  Reg Rs;
  Reg Rt;
  Value Imm;

  /// \name Factories (assert the operand-kind constraints).
  /// @{
  static Inst alu(Opcode Op, Reg Rd, Reg Rs, Reg Rt);
  static Inst aluImm(Opcode Op, Reg Rd, Reg Rs, Value V);
  static Inst ld(Color C, Reg Rd, Reg Rs);
  static Inst st(Color C, Reg RdAddr, Reg RsVal);
  static Inst mov(Reg Rd, Value V);
  static Inst bz(Color C, Reg Rz, Reg RdTarget);
  static Inst jmp(Color C, Reg RdTarget);
  /// @}

  /// The test register of a Bz instruction (the paper's rz).
  Reg rz() const {
    assert(Op == Opcode::Bz && "rz() on a non-branch");
    return Rs;
  }

  bool isAlu() const { return isAluOpcode(Op); }
  /// True for instructions whose semantics depend on the opcode color.
  bool isColored() const {
    return Op == Opcode::Ld || Op == Opcode::St || Op == Opcode::Bz ||
           Op == Opcode::Jmp;
  }
  /// True for control-flow instructions (Bz, Jmp).
  bool isControlFlow() const { return Op == Opcode::Bz || Op == Opcode::Jmp; }

  bool operator==(const Inst &O) const = default;

  /// Renders in assembly syntax, e.g. "stG r2, r1" or "add r1, r2, G 5".
  std::string str() const;
};

} // namespace talft

#endif // TALFT_ISA_INST_H
