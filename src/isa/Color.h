//===- isa/Color.h - Computation colors (Figure 1) ------------------------===//
//
// Part of the TALFT project: a reproduction of "Fault-tolerant Typed
// Assembly Language" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every fault-tolerant TALFT program maintains two redundant computations:
/// a green (G) one, which generally leads, and a blue (B) one, which
/// generally trails. Values and the memory/control-flow opcodes carry a
/// color. Color tags on *values* are fictional (they never affect run-time
/// behavior; they exist to state the fault model and the fault-tolerance
/// theorem), whereas the color on an *opcode* selects between the paired
/// semantics (e.g. stG pushes onto the store queue, stB commits).
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ISA_COLOR_H
#define TALFT_ISA_COLOR_H

#include <cstdint>

namespace talft {

/// The two redundant computation colors.
enum class Color : uint8_t { Green, Blue };

/// Returns the other color.
inline Color otherColor(Color C) {
  return C == Color::Green ? Color::Blue : Color::Green;
}

/// Returns "G" or "B" (the paper's notation).
inline const char *colorLetter(Color C) {
  return C == Color::Green ? "G" : "B";
}

/// Returns "green" or "blue".
inline const char *colorName(Color C) {
  return C == Color::Green ? "green" : "blue";
}

} // namespace talft

#endif // TALFT_ISA_COLOR_H
