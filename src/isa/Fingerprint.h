//===- isa/Fingerprint.h - Incremental state fingerprints -----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Primitives for the 64-bit Zobrist-style machine-state fingerprint the
/// fault campaign uses to detect re-convergence with the reference run.
/// Every mutable component of a MachineState maintains its own fingerprint
/// in O(1) per write:
///
///   - RegisterFile and ValueMemory XOR one pseudorandom word per cell
///     (classic Zobrist hashing, except the "random table" is a mix of the
///     slot salt and the unbounded cell value);
///   - StoreQueue uses a polynomial hash in an odd base B over positions
///     counted from the back, so both pushFront (append the highest-degree
///     term) and popBack (subtract the constant term, divide by B — B is
///     odd, hence invertible mod 2^64) stay O(1) while the hash remains a
///     function of the queue *contents only*, not its history.
///
/// Fingerprints are advisory: equal states always have equal fingerprints,
/// but the campaign treats a fingerprint match only as a gate before a full
/// state-equality check — a collision must never change a verdict.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ISA_FINGERPRINT_H
#define TALFT_ISA_FINGERPRINT_H

#include "isa/Inst.h"
#include "isa/Value.h"

#include <cstdint>

namespace talft::fp {

/// The splitmix64 finalizer: a cheap bijective 64-bit mixer with good
/// avalanche behavior, the workhorse of every hash below.
constexpr uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Domain-separation salts so a register cell, a memory cell and a queue
/// entry holding the same integers never share a hash by construction.
inline constexpr uint64_t RegDomain = 0x517cc1b727220a95ull;
inline constexpr uint64_t MemDomain = 0x2b2f159e1ad6f4dbull;
inline constexpr uint64_t QueueDomain = 0x9ae16a3b2f90404full;
inline constexpr uint64_t IrDomain = 0xc2b2ae3d27d4eb4full;

/// Fingerprint of the distinguished fault state (whose other fields are
/// meaningless and excluded from hashing).
inline constexpr uint64_t FaultedState = mix(0xdeadfa0317ull);
/// Contribution of an empty instruction register (the paper's ·).
inline constexpr uint64_t EmptyIR = mix(IrDomain);

/// Hash of a colored value in register slot \p DenseIdx.
constexpr uint64_t regCell(unsigned DenseIdx, const Value &V) {
  return mix(mix(RegDomain + DenseIdx) ^ mix((uint64_t)V.N) ^
             (V.C == Color::Blue ? 0x94d049bb133111ebull : 0));
}

/// Hash of a defined value-memory cell.
constexpr uint64_t memCell(Addr A, int64_t V) {
  return mix(mix(MemDomain + (uint64_t)A) ^ mix((uint64_t)V));
}

/// Hash of one store-queue (address, value) pair, position-independent;
/// the polynomial base supplies the position weighting.
constexpr uint64_t queueEntry(Addr A, int64_t V) {
  return mix(mix(QueueDomain + (uint64_t)A) ^ mix((uint64_t)V));
}

/// The polynomial base for the store-queue hash. Odd, so it is a unit in
/// Z/2^64 and popBack can divide the hash by it.
inline constexpr uint64_t QueueBase = 0x2545f4914f6cdd1dull;

/// Modular inverse of QueueBase mod 2^64 via Newton iteration (each round
/// doubles the number of correct low bits; 6 rounds cover 64).
constexpr uint64_t inverseOdd(uint64_t B) {
  uint64_t Inv = B; // correct to 3 bits for odd B
  for (int I = 0; I != 6; ++I)
    Inv *= 2 - B * Inv;
  return Inv;
}
inline constexpr uint64_t QueueBaseInv = inverseOdd(QueueBase);
static_assert(QueueBase * QueueBaseInv == 1, "QueueBase must be invertible");

/// Hash of a fetched instruction sitting in the instruction register.
inline uint64_t instHash(const Inst &I) {
  uint64_t H = mix(IrDomain + (uint64_t)I.Op);
  H = mix(H ^ ((uint64_t)(I.C == Color::Blue) | ((uint64_t)I.HasImm << 1)));
  H = mix(H ^ (uint64_t)I.Rd.denseIndex());
  H = mix(H ^ (uint64_t)I.Rs.denseIndex());
  H = mix(H ^ (uint64_t)I.Rt.denseIndex());
  H = mix(H ^ mix((uint64_t)I.Imm.N) ^
          (I.Imm.C == Color::Blue ? 0xbf58476d1ce4e5b9ull : 0));
  return H;
}

/// Composes the component fingerprints of an ordinary (non-fault) state.
/// The chain is deliberately asymmetric so swapping two equal component
/// hashes (or cancelling one against another) changes the result.
constexpr uint64_t composeState(uint64_t Regs, uint64_t Mem, uint64_t Queue,
                                uint64_t Ir) {
  uint64_t F = mix(Regs + 0x6a09e667f3bcc909ull);
  F = mix(F ^ Mem);
  F = mix(F ^ Queue);
  return F ^ Ir;
}

} // namespace talft::fp

#endif // TALFT_ISA_FINGERPRINT_H
