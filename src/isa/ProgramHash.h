//===- isa/ProgramHash.h - Whole-program content hash ---------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic 64-bit content hash of a laid-out program: the ordered
/// (address, instruction) pairs of its code memory, its entry and exit
/// addresses, and the initial machine state (which folds in the data
/// section and the precondition registers). Built from the same Zobrist
/// primitives as the per-step state fingerprint (isa/Fingerprint.h), so
/// one instruction, one data cell or one precondition value changing
/// changes the hash.
///
/// The hash is the identity half of the certification server's memo key —
/// (program hash × campaign-options digest) addresses a cached verdict
/// table — and every campaign JSON report records it as provenance, batch
/// and served alike. It is stable across processes and runs: no pointers,
/// no iteration-order dependence (CodeMemory iterates in ascending address
/// order), no ASLR leakage.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ISA_PROGRAMHASH_H
#define TALFT_ISA_PROGRAMHASH_H

#include "isa/Value.h"

#include <cstdint>
#include <string>

namespace talft {

class CodeMemory;
struct MachineState;

/// The 64-bit content hash of a program: code memory (in ascending address
/// order), entry/exit addresses and the initial state's fingerprint,
/// chained asymmetrically so reordered or swapped components cannot cancel.
uint64_t programContentHash(const CodeMemory &Code, Addr Entry, Addr Exit,
                            const MachineState &Initial);

/// Renders a hash the way reports and the serve protocol spell it:
/// "0x" + 16 lowercase hex digits.
std::string programHashString(uint64_t Hash);

/// Parses programHashString's format (the "0x" prefix is optional).
/// Returns false on anything else.
bool parseProgramHash(const std::string &Text, uint64_t &Hash);

} // namespace talft

#endif // TALFT_ISA_PROGRAMHASH_H
