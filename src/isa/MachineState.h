//===- isa/MachineState.h - Abstract machine states S (Figure 1) ----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An abstract machine state S is either the distinguished `fault` state —
/// the hardware has *detected* a transient fault — or an ordinary state
/// (R, C, M, Q, ir) where ir is the instruction register: either a fetched
/// instruction awaiting execution, or empty (the paper's ·), meaning the
/// next step is a fetch.
///
/// Code memory is referenced, not owned: it is immutable during execution
/// and shared by the many states materialized by the fault enumerator.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ISA_MACHINESTATE_H
#define TALFT_ISA_MACHINESTATE_H

#include "isa/Memory.h"
#include "isa/RegisterFile.h"
#include "isa/StoreQueue.h"

#include <optional>

namespace talft {

/// An ordinary (non-fault) machine state, plus a flag representing the
/// distinguished `fault` state.
struct MachineState {
  RegisterFile Regs;
  const CodeMemory *Code = nullptr;
  ValueMemory Mem;
  StoreQueue Queue;
  /// The instruction register ir: a fetched instruction, or empty (·).
  std::optional<Inst> IR;
  /// True for the terminal `fault` state (hardware-detected fault). The
  /// other fields are meaningless when set.
  bool Faulted = false;

  MachineState() = default;
  MachineState(const CodeMemory &Code, Addr Entry)
      : Regs(Entry), Code(&Code) {}

  /// Builds the distinguished fault state.
  static MachineState faultState() {
    MachineState S;
    S.Faulted = true;
    return S;
  }

  bool isFault() const { return Faulted; }

  /// Both program counters as colored values.
  Value pcG() const { return Regs.get(Reg::pcG()); }
  Value pcB() const { return Regs.get(Reg::pcB()); }

  /// The 64-bit Zobrist fingerprint of the state: an O(1) composition of
  /// the incrementally-maintained component fingerprints (registers, value
  /// memory, store queue) plus the instruction-register contribution. Code
  /// memory is immutable and shared, so it does not participate. Equal
  /// states always have equal fingerprints; the converse is only
  /// probabilistic, so consumers must confirm with full equality.
  uint64_t fingerprint() const {
    if (Faulted)
      return fp::FaultedState;
    return fp::composeState(Regs.fingerprint(), Mem.fingerprint(),
                            Queue.fingerprint(),
                            IR ? fp::instHash(*IR) : fp::EmptyIR);
  }

  /// Full structural equality (code memory by identity — campaign states
  /// share one immutable CodeMemory). This is the expensive check a
  /// fingerprint match merely gates.
  bool operator==(const MachineState &O) const = default;
};

/// Recomputes the fingerprint of \p S from scratch in O(|state|), walking
/// every component through its public API. The incremental-maintenance
/// oracle: must agree with S.fingerprint() after any step sequence.
inline uint64_t recomputeFingerprint(const MachineState &S) {
  if (S.Faulted)
    return fp::FaultedState;
  uint64_t Regs = 0;
  for (unsigned I = 0; I != Reg::NumRegs; ++I)
    Regs ^= fp::regCell(I, S.Regs.get(Reg::fromDenseIndex(I)));
  uint64_t Mem = 0;
  for (const auto &[A, V] : S.Mem)
    Mem ^= fp::memCell(A, V);
  uint64_t Queue = 0;
  // Horner from the front: the front entry (highest degree, farthest from
  // the back) accumulates the most QueueBase factors.
  for (const QueueEntry &E : S.Queue)
    Queue = Queue * fp::QueueBase + fp::queueEntry(E.Address, E.Val);
  return fp::composeState(Regs, Mem, Queue,
                          S.IR ? fp::instHash(*S.IR) : fp::EmptyIR);
}

} // namespace talft

#endif // TALFT_ISA_MACHINESTATE_H
