//===- isa/MachineState.h - Abstract machine states S (Figure 1) ----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An abstract machine state S is either the distinguished `fault` state —
/// the hardware has *detected* a transient fault — or an ordinary state
/// (R, C, M, Q, ir) where ir is the instruction register: either a fetched
/// instruction awaiting execution, or empty (the paper's ·), meaning the
/// next step is a fetch.
///
/// Code memory is referenced, not owned: it is immutable during execution
/// and shared by the many states materialized by the fault enumerator.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_ISA_MACHINESTATE_H
#define TALFT_ISA_MACHINESTATE_H

#include "isa/Memory.h"
#include "isa/RegisterFile.h"
#include "isa/StoreQueue.h"

#include <optional>

namespace talft {

/// An ordinary (non-fault) machine state, plus a flag representing the
/// distinguished `fault` state.
struct MachineState {
  RegisterFile Regs;
  const CodeMemory *Code = nullptr;
  ValueMemory Mem;
  StoreQueue Queue;
  /// The instruction register ir: a fetched instruction, or empty (·).
  std::optional<Inst> IR;
  /// True for the terminal `fault` state (hardware-detected fault). The
  /// other fields are meaningless when set.
  bool Faulted = false;

  MachineState() = default;
  MachineState(const CodeMemory &Code, Addr Entry)
      : Regs(Entry), Code(&Code) {}

  /// Builds the distinguished fault state.
  static MachineState faultState() {
    MachineState S;
    S.Faulted = true;
    return S;
  }

  bool isFault() const { return Faulted; }

  /// Both program counters as colored values.
  Value pcG() const { return Regs.get(Reg::pcG()); }
  Value pcB() const { return Regs.get(Reg::pcB()); }
};

} // namespace talft

#endif // TALFT_ISA_MACHINESTATE_H
