//===- check/InstTyping.h - Instruction typing (Figure 7) -----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The judgment Ψ; T ⊢ i ⇒ RT: checking one instruction against the
/// current static context T produces either a postcondition T' (control
/// may fall through) or void (an unconditional transfer — jmpB). The
/// checker threads T through a block by mutating it in place.
///
/// Four principles organize the rules (Section 3.3 of the paper):
///  1. absent faults, standard TAL typing must hold (jump targets have
///     code types, loads/stores go through refs, ...);
///  2. green values depend only on green values, blue only on blue;
///  3. both computations get equal say in dangerous actions (stores to
///     observable memory, control transfers);
///  4. absent faults, the green and blue computations compute *identical*
///     values — enforced with singleton types and provable equality of
///     their static expressions.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_CHECK_INSTTYPING_H
#define TALFT_CHECK_INSTTYPING_H

#include "check/ContextMatch.h"
#include "support/Diagnostics.h"
#include "tal/Program.h"

#include <optional>

namespace talft {

/// Outcome of typing one instruction.
struct InstTypingResult {
  /// True when RT = void (control cannot fall through: jmpB).
  bool IsVoid = false;
  /// For jmpB and bzB: the inferred instantiation of the transfer target's
  /// quantified variables, and the target precondition. (For bzB this
  /// describes the taken path; the mutated context describes fall-through.)
  std::optional<Subst> Transfer;
  const StaticContext *TransferTarget = nullptr;
};

/// Types instructions of one program.
class InstTyper {
public:
  InstTyper(TypeContext &TC, const Program &Prog, DiagnosticEngine &Diags)
      : TC(TC), Es(TC.exprs()), Prog(Prog), Diags(Diags) {}

  /// Checks \p I under context \p T, mutating \p T into the postcondition
  /// (when RT is not void). Returns nullopt after reporting a diagnostic
  /// on a type error.
  std::optional<InstTypingResult> check(const Inst &I, StaticContext &T,
                                        SourceLoc Loc);

  /// The most specific register type of an immediate value: its singleton
  /// expression is the constant; its basic type is Ψ(n) when n is a
  /// declared address (a code pointer or a data-cell pointer), int
  /// otherwise.
  RegType inferImmType(Value V) const;

private:
  TypeContext &TC;
  ExprContext &Es;
  const Program &Prog;
  DiagnosticEngine &Diags;

  std::optional<InstTypingResult> err(SourceLoc Loc, std::string Msg) {
    Diags.error(Loc, std::move(Msg));
    return std::nullopt;
  }

  /// Looks up \p R in Γ; reports an error when untracked.
  const RegType *require(const StaticContext &T, Reg R, SourceLoc Loc);

  /// Weakens a tracked plain type to (c, int, E); errors on conditional
  /// types (they never subtype int).
  std::optional<RegType> requirePlainInt(const StaticContext &T, Reg R,
                                         SourceLoc Loc);

  /// Increments the program-counter expression (the paper's Γ++).
  void advancePc(StaticContext &T) {
    T.Pc = normalize(Es, Es.binop(Opcode::Add, T.Pc, Es.intConst(1)));
  }

  std::optional<InstTypingResult> checkAlu(const Inst &I, StaticContext &T,
                                           SourceLoc Loc);
  std::optional<InstTypingResult> checkMov(const Inst &I, StaticContext &T,
                                           SourceLoc Loc);
  std::optional<InstTypingResult> checkLd(const Inst &I, StaticContext &T,
                                          SourceLoc Loc);
  std::optional<InstTypingResult> checkSt(const Inst &I, StaticContext &T,
                                          SourceLoc Loc);
  std::optional<InstTypingResult> checkJmp(const Inst &I, StaticContext &T,
                                           SourceLoc Loc);
  std::optional<InstTypingResult> checkBz(const Inst &I, StaticContext &T,
                                          SourceLoc Loc);
};

} // namespace talft

#endif // TALFT_CHECK_INSTTYPING_H
