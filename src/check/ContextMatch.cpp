//===- check/ContextMatch.cpp ---------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "check/ContextMatch.h"

#include "sexpr/ExprNormalize.h"
#include "support/StringUtils.h"

using namespace talft;

RegType talft::applySubstToRegType(TypeContext &TC, const Subst &S,
                                   const RegType &T) {
  RegType Out = T;
  Out.E = S.apply(TC.exprs(), T.E);
  if (T.Guard)
    Out.Guard = S.apply(TC.exprs(), T.Guard);
  return Out;
}

namespace {

/// Accumulates bindings for the target's quantified variables.
class Matcher {
public:
  Matcher(TypeContext &TC, const StaticContext &Cur,
          const StaticContext &Target)
      : TC(TC), Es(TC.exprs()), Cur(Cur), Target(Target) {}

  Expected<Subst> run(const Expr *PcSubject, MatchMode Mode) {
    // --- Every general register the target constrains must be tracked
    // here (reported first: a missing register otherwise surfaces as a
    // confusing unbound-variable error).
    for (const auto &[Key, TT] : Target.Gamma) {
      Reg R = RegFileType::regForKey(Key);
      if (!R.isDest() && !Cur.Gamma.lookup(R))
        return fail(R.str() + " is required to have type " + TT.str() +
                    " but is untracked here");
    }

    // --- Binding pass: bare-variable patterns capture the corresponding
    // current expression.
    tryBind(Target.Pc, PcSubject);
    tryBind(Target.MemExpr, Cur.MemExpr);
    if (Target.Queue.size() == Cur.Queue.size()) {
      for (size_t I = 0, E = Target.Queue.size(); I != E; ++I) {
        tryBind(Target.Queue.entry(I).AddrE, Cur.Queue.entry(I).AddrE);
        tryBind(Target.Queue.entry(I).ValE, Cur.Queue.entry(I).ValE);
      }
    }
    for (const auto &[Key, TT] : Target.Gamma) {
      Reg R = RegFileType::regForKey(Key);
      if (R.isDest())
        continue;
      const RegType *CT = Cur.Gamma.lookup(R);
      if (!CT)
        continue; // Verification will report the missing register.
      tryBind(TT.E, CT->E);
      if (TT.Guard && CT->Guard)
        tryBind(TT.Guard, CT->Guard);
    }

    // --- Every quantified variable must now be bound, and each binding
    // must be well-formed in the current Δ (the judgment Δ ⊢ S : Δ').
    for (const auto &[Name, Kind] : Target.Delta) {
      const Expr *Var = Es.var(Name, Kind);
      const Expr *Bound = S.lookup(Var);
      if (!Bound)
        return fail("cannot infer an instantiation for variable '" + Name +
                    "' of the target precondition");
      if (!wellFormedIn(Bound, Cur.Delta))
        return fail("instantiation " + Bound->str() + " for '" + Name +
                    "' mentions variables not in scope");
    }

    // --- Verify the program counters: S(Target.Pc) = PcSubject.
    if (!provablyEqual(Es, S.apply(Es, Target.Pc), PcSubject))
      return fail("cannot prove the program-counter expression " +
                  S.apply(Es, Target.Pc)->str() + " = " + PcSubject->str());

    // --- Verify the destination register.
    const RegType *TargetD = Target.Gamma.lookup(Reg::dest());
    if (Mode == MatchMode::Jump) {
      if (!TargetD ||
          !isZeroDestType(TC, applySubstToRegType(TC, S, *TargetD)))
        return fail("jump targets must declare d:(G,int,0); target '" +
                    Target.Label + "' does not");
    } else if (TargetD) {
      const RegType *CurD = Cur.Gamma.lookup(Reg::dest());
      if (!CurD)
        return fail("fall-through target constrains d but d is untracked");
      std::string Why;
      if (!isSubtype(TC, *CurD, applySubstToRegType(TC, S, *TargetD), &Why))
        return fail("d: " + Why);
    }

    // --- Verify memory: Δ ⊢ Em = S(Em').
    if (!provablyEqual(Es, Cur.MemExpr, S.apply(Es, Target.MemExpr)))
      return fail("cannot prove the memory description " +
                  Cur.MemExpr->str() + " = " +
                  S.apply(Es, Target.MemExpr)->str());

    // --- Verify the queue descriptors: Δ ⊢ (Ed,Es) = S((Ed',Es')).
    if (Target.Queue.size() != Cur.Queue.size())
      return fail(formatv("store-queue depth mismatch: %zu pending stores "
                          "here, target expects %zu",
                          Cur.Queue.size(), Target.Queue.size()));
    for (size_t I = 0, E = Target.Queue.size(); I != E; ++I) {
      const QueueTypeEntry &CQ = Cur.Queue.entry(I);
      const QueueTypeEntry &TQ = Target.Queue.entry(I);
      if (!provablyEqual(Es, CQ.AddrE, S.apply(Es, TQ.AddrE)) ||
          !provablyEqual(Es, CQ.ValE, S.apply(Es, TQ.ValE)))
        return fail(formatv("store-queue entry %zu does not match the "
                            "target's descriptor",
                            I));
    }

    // --- Verify the register file: Δ ⊢ Γ ≤ S(Γ') over general registers.
    RegFileType Instantiated;
    for (const auto &[Key, TT] : Target.Gamma) {
      Reg R = RegFileType::regForKey(Key);
      if (R.isDest())
        continue;
      Instantiated.set(R, applySubstToRegType(TC, S, TT));
    }
    std::string Why;
    if (!isRegFileSubtype(TC, Cur.Gamma, Instantiated, &Why))
      return fail(Why);

    return S;
  }

private:
  TypeContext &TC;
  ExprContext &Es;
  const StaticContext &Cur;
  const StaticContext &Target;
  Subst S;

  Error fail(std::string Msg) {
    return makeError("does not satisfy the precondition of '" +
                     Target.Label + "': " + std::move(Msg));
  }

  void tryBind(const Expr *Pattern, const Expr *Subject) {
    if (!Pattern || !Subject || !Pattern->isVar())
      return;
    if (!Target.Delta.contains(Pattern->varName()))
      return;
    if (S.lookup(Pattern))
      return;
    S.bind(Pattern, Subject);
  }
};

} // namespace

Expected<Subst> talft::matchContext(TypeContext &TC, const StaticContext &Cur,
                                    const StaticContext &Target,
                                    const Expr *PcSubject, MatchMode Mode) {
  return Matcher(TC, Cur, Target).run(PcSubject, Mode);
}
