//===- check/InstTyping.cpp -----------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "check/InstTyping.h"

#include "sexpr/ExprNormalize.h"
#include "support/Unreachable.h"

using namespace talft;

RegType InstTyper::inferImmType(Value V) const {
  const BasicType *B = Prog.heapTyping().lookup(V.N);
  if (!B)
    B = TC.intType();
  return RegType(V.C, B, Es.intConst(V.N));
}

const RegType *InstTyper::require(const StaticContext &T, Reg R,
                                  SourceLoc Loc) {
  const RegType *RT = T.Gamma.lookup(R);
  if (!RT)
    Diags.error(Loc, R.str() + " has no tracked type here");
  return RT;
}

std::optional<RegType> InstTyper::requirePlainInt(const StaticContext &T,
                                                  Reg R, SourceLoc Loc) {
  const RegType *RT = require(T, R, Loc);
  if (!RT)
    return std::nullopt;
  if (RT->isConditional()) {
    Diags.error(Loc, R.str() + " has the conditional type " + RT->str() +
                         ", which cannot be used as an integer");
    return std::nullopt;
  }
  // Subtyping: (c,b,E) ≤ (c,int,E).
  return RegType(RT->C, TC.intType(), RT->E);
}

/// Constant refinement: a plain register type whose singleton expression
/// normalizes to a literal address n may be re-typed at Ψ(n). This is the
/// paper's val-t/base-t pair read through the singleton invariant: absent a
/// fault of the register's color, the register holds exactly n, and the
/// value n has type Ψ(n).
static RegType refineViaPsi(TypeContext &TC, const HeapTyping &Psi,
                            const RegType &T) {
  if (T.isConditional())
    return T;
  const Expr *N = normalize(TC.exprs(), T.E);
  if (!N->isIntConst())
    return T;
  const BasicType *B = Psi.lookup(N->intValue());
  if (!B)
    return T;
  return RegType(T.C, B, T.E);
}

std::optional<InstTypingResult>
InstTyper::check(const Inst &I, StaticContext &T, SourceLoc Loc) {
  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
    return checkAlu(I, T, Loc);
  case Opcode::Mov:
    return checkMov(I, T, Loc);
  case Opcode::Ld:
    return checkLd(I, T, Loc);
  case Opcode::St:
    return checkSt(I, T, Loc);
  case Opcode::Jmp:
    return checkJmp(I, T, Loc);
  case Opcode::Bz:
    return checkBz(I, T, Loc);
  }
  talft_unreachable("unknown opcode");
}

// Rules op2r-t / op1r-t: operands must be integers of one color; the
// result is that color, with the symbolic operation as its singleton.
std::optional<InstTypingResult>
InstTyper::checkAlu(const Inst &I, StaticContext &T, SourceLoc Loc) {
  std::optional<RegType> Src = requirePlainInt(T, I.Rs, Loc);
  if (!Src)
    return std::nullopt;

  Color C;
  const Expr *RhsE;
  if (I.HasImm) {
    C = I.Imm.C;
    RhsE = Es.intConst(I.Imm.N);
  } else {
    std::optional<RegType> Rhs = requirePlainInt(T, I.Rt, Loc);
    if (!Rhs)
      return std::nullopt;
    C = Rhs->C;
    RhsE = Rhs->E;
  }
  if (Src->C != C)
    return err(Loc, std::string("operands mix colors: ") + I.Rs.str() +
                        " is " + colorName(Src->C) + " but the second " +
                        "operand is " + colorName(C));

  const Expr *E = normalize(Es, Es.binop(I.Op, Src->E, RhsE));
  advancePc(T);
  T.Gamma.set(I.Rd, RegType(C, TC.intType(), E));
  return InstTypingResult();
}

// Rule mov-t.
std::optional<InstTypingResult>
InstTyper::checkMov(const Inst &I, StaticContext &T, SourceLoc Loc) {
  (void)Loc;
  advancePc(T);
  T.Gamma.set(I.Rd, inferImmType(I.Imm));
  return InstTypingResult();
}

/// Builds the overlay memory `upd Em (Ed,Es)` seen by green loads: the
/// queue descriptors applied over Em, front entry outermost.
static const Expr *queueOverlay(ExprContext &Es, const StaticContext &T) {
  const Expr *M = T.MemExpr;
  for (size_t I = T.Queue.size(); I-- > 0;)
    M = Es.upd(M, T.Queue.entry(I).AddrE, T.Queue.entry(I).ValE);
  return M;
}

// Rules ldG-t / ldB-t: the address register must be a same-colored ref;
// the result is the symbolic contents of the queue-overlaid memory (green)
// or of memory alone (blue).
std::optional<InstTypingResult>
InstTyper::checkLd(const Inst &I, StaticContext &T, SourceLoc Loc) {
  const RegType *AddrT = require(T, I.Rs, Loc);
  if (!AddrT)
    return std::nullopt;
  RegType Refined = refineViaPsi(TC, Prog.heapTyping(), *AddrT);
  if (Refined.isConditional() || !Refined.B->isRef())
    return err(Loc, "load address " + I.Rs.str() + " has type " +
                        AddrT->str() + ", not a ref type");
  if (Refined.C != I.C)
    return err(Loc, std::string("ld") + colorLetter(I.C) +
                        " requires a " + colorName(I.C) + " address, but " +
                        I.Rs.str() + " is " + colorName(Refined.C));

  const Expr *MemE =
      I.C == Color::Green ? queueOverlay(Es, T) : T.MemExpr;
  const Expr *E = normalize(Es, Es.sel(MemE, Refined.E));
  advancePc(T);
  T.Gamma.set(I.Rd, RegType(I.C, Refined.B->refPointee(), E));
  return InstTypingResult();
}

// Rules stG-t / stB-t.
std::optional<InstTypingResult>
InstTyper::checkSt(const Inst &I, StaticContext &T, SourceLoc Loc) {
  const RegType *AddrT0 = require(T, I.Rd, Loc);
  const RegType *ValT = require(T, I.Rs, Loc);
  if (!AddrT0 || !ValT)
    return std::nullopt;
  RegType AddrT = refineViaPsi(TC, Prog.heapTyping(), *AddrT0);
  if (AddrT.isConditional() || !AddrT.B->isRef())
    return err(Loc, "store address " + I.Rd.str() + " has type " +
                        AddrT0->str() + ", not a ref type");
  if (AddrT.C != I.C)
    return err(Loc, std::string("st") + colorLetter(I.C) +
                        " requires a " + colorName(I.C) + " address, but " +
                        I.Rd.str() + " is " + colorName(AddrT.C));
  if (ValT->isConditional())
    return err(Loc, "cannot store " + I.Rs.str() +
                        ": it has a conditional type");
  if (ValT->C != I.C)
    return err(Loc, std::string("st") + colorLetter(I.C) +
                        " requires a " + colorName(I.C) + " value, but " +
                        I.Rs.str() + " is " + colorName(ValT->C));
  // The stored value's shape must match the cell's contents type b (an int
  // cell accepts any plain value via subtyping to int).
  const BasicType *CellB = AddrT.B->refPointee();
  if (ValT->B != CellB && !CellB->isInt())
    return err(Loc, "cell holds " + CellB->str() + " but " + I.Rs.str() +
                        " has shape " + ValT->B->str());

  if (I.C == Color::Green) {
    // stG-t: push the (address, value) descriptor onto the queue front.
    advancePc(T);
    T.Queue.pushFront({AddrT.E, ValT->E});
    return InstTypingResult();
  }

  // stB-t: the queue back descriptor must provably equal the blue operands.
  if (T.Queue.empty())
    return err(Loc, "stB with no pending green store in the queue");
  QueueTypeEntry Back = T.Queue.back();
  if (!provablyEqual(Es, AddrT.E, Back.AddrE))
    return err(Loc, "cannot prove the blue store address " +
                        AddrT.E->str() +
                        " equals the pending green address " +
                        Back.AddrE->str());
  if (!provablyEqual(Es, ValT->E, Back.ValE))
    return err(Loc, "cannot prove the blue store value " + ValT->E->str() +
                        " equals the pending green value " +
                        Back.ValE->str());
  advancePc(T);
  T.Queue.popBack();
  T.MemExpr = normalize(Es, Es.upd(T.MemExpr, Back.AddrE, Back.ValE));
  return InstTypingResult();
}

// Rules jmpG-t / jmpB-t.
std::optional<InstTypingResult>
InstTyper::checkJmp(const Inst &I, StaticContext &T, SourceLoc Loc) {
  const RegType *RdT0 = require(T, I.Rd, Loc);
  if (!RdT0)
    return std::nullopt;
  RegType RdT = refineViaPsi(TC, Prog.heapTyping(), *RdT0);
  if (RdT.isConditional() || !RdT.B->isCode())
    return err(Loc, "jump target " + I.Rd.str() + " has type " +
                        RdT0->str() + ", not a code type");

  const RegType *DT = require(T, Reg::dest(), Loc);
  if (!DT)
    return std::nullopt;

  if (I.C == Color::Green) {
    // jmpG-t: d must currently be (G,int,0); the target precondition must
    // itself pin d to (G,int,0); d becomes the recorded intention.
    if (RdT.C != Color::Green)
      return err(Loc, "jmpG requires a green target, but " + I.Rd.str() +
                          " is blue");
    if (!isZeroDestType(TC, *DT))
      return err(Loc, "jmpG with a pending transfer: d has type " +
                          DT->str() + ", not (G,int,0)");
    const StaticContext *Target = RdT.B->codePrecondition();
    const RegType *TargetD = Target->Gamma.lookup(Reg::dest());
    if (!TargetD || !isZeroDestType(TC, *TargetD))
      return err(Loc, "jump target '" + Target->Label +
                          "' must declare d:(G,int,0)");
    advancePc(T);
    T.Gamma.set(Reg::dest(), RdT);
    return InstTypingResult();
  }

  // jmpB-t: d holds the same code type with a provably equal address; the
  // current context must satisfy the target precondition.
  if (RdT.C != Color::Blue)
    return err(Loc, "jmpB requires a blue target, but " + I.Rd.str() +
                        " is green");
  if (DT->isConditional())
    return err(Loc, "jmpB while a conditional transfer is pending "
                    "(d has a conditional type); commit it with bzB first");
  RegType DRef = refineViaPsi(TC, Prog.heapTyping(), *DT);
  if (!DRef.B->isCode() || DRef.C != Color::Green)
    return err(Loc, "jmpB with no pending green intention: d has type " +
                        DT->str());
  if (DRef.B != RdT.B)
    return err(Loc, "d and " + I.Rd.str() +
                        " advertise different code types (" +
                        DRef.B->str() + " vs " + RdT.B->str() + ")");
  if (!provablyEqual(Es, RdT.E, DRef.E))
    return err(Loc, "cannot prove the blue target " + RdT.E->str() +
                        " equals the green intention " + DRef.E->str());

  const StaticContext *Target = RdT.B->codePrecondition();
  Expected<Subst> S = matchContext(TC, T, *Target, RdT.E, MatchMode::Jump);
  if (!S)
    return err(Loc, S.message());

  InstTypingResult Result;
  Result.IsVoid = true;
  Result.Transfer = *S;
  Result.TransferTarget = Target;
  return Result;
}

// Rules bzG-t / bzB-t.
std::optional<InstTypingResult>
InstTyper::checkBz(const Inst &I, StaticContext &T, SourceLoc Loc) {
  std::optional<RegType> ZT = requirePlainInt(T, I.rz(), Loc);
  if (!ZT)
    return std::nullopt;
  if (ZT->C != I.C)
    return err(Loc, std::string("bz") + colorLetter(I.C) + " requires a " +
                        colorName(I.C) + " test register, but " +
                        I.rz().str() + " is " + colorName(ZT->C));

  const RegType *RdT0 = require(T, I.Rd, Loc);
  const RegType *DT = require(T, Reg::dest(), Loc);
  if (!RdT0 || !DT)
    return std::nullopt;
  RegType RdT = refineViaPsi(TC, Prog.heapTyping(), *RdT0);
  if (RdT.isConditional() || !RdT.B->isCode())
    return err(Loc, "branch target " + I.Rd.str() + " has type " +
                        RdT0->str() + ", not a code type");
  if (RdT.C != I.C)
    return err(Loc, std::string("bz") + colorLetter(I.C) + " requires a " +
                        colorName(I.C) + " target, but " + I.Rd.str() +
                        " is " + colorName(RdT.C));

  const StaticContext *Target = RdT.B->codePrecondition();
  const RegType *TargetD = Target->Gamma.lookup(Reg::dest());
  if (!TargetD || !isZeroDestType(TC, *TargetD))
    return err(Loc, "branch target '" + Target->Label +
                        "' must declare d:(G,int,0)");

  if (I.C == Color::Green) {
    // bzG-t: a conditional move into d. d must currently be (G,int,0);
    // afterwards it records "if Ez = 0, the pending target".
    if (!isZeroDestType(TC, *DT))
      return err(Loc, "bzG with a pending transfer: d has type " +
                          DT->str() + ", not (G,int,0)");
    advancePc(T);
    T.Gamma.set(Reg::dest(),
                RegType::conditional(ZT->E, Color::Green, RdT.B, RdT.E));
    return InstTypingResult();
  }

  // bzB-t: d must hold the matching conditional intention.
  if (!DT->isConditional())
    return err(Loc, "bzB with no pending bzG: d has type " + DT->str());
  if (DT->C != Color::Green || DT->B != RdT.B)
    return err(Loc, "d and " + I.Rd.str() +
                        " advertise different pending transfers (" +
                        DT->str() + " vs " + RdT.str() + ")");
  if (!provablyEqual(Es, ZT->E, DT->Guard))
    return err(Loc, "cannot prove the blue branch test " + ZT->E->str() +
                        " equals the green test " + DT->Guard->str());
  if (!provablyEqual(Es, RdT.E, DT->E))
    return err(Loc, "cannot prove the blue target " + RdT.E->str() +
                        " equals the green intention " + DT->E->str());

  // The taken path must satisfy the target precondition (d is reset by the
  // hardware on the transfer).
  Expected<Subst> S = matchContext(TC, T, *Target, RdT.E, MatchMode::Jump);
  if (!S)
    return err(Loc, S.message());

  // Fall-through: the untaken rule fires only when d = 0 at run time, so
  // the postcondition soundly restores d:(G,int,0).
  advancePc(T);
  T.Gamma.set(Reg::dest(),
              RegType(Color::Green, TC.intType(), Es.intConst(0)));

  InstTypingResult Result;
  Result.Transfer = *S;
  Result.TransferTarget = Target;
  return Result;
}
