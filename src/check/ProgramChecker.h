//===- check/ProgramChecker.h - Whole-program code typing (rule C-t) ------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks a laid-out Program: every block is typed starting from its
/// declared precondition, threading the static context through its
/// instructions; a block either ends in a jmpB (RT = void) or falls
/// through into the next block, whose declared precondition the threaded
/// postcondition must entail.
///
/// A successful check yields a CheckedProgram: the per-address
/// preconditions (the Ψ(n) = T -> void of the paper's C-t, materialized at
/// every address rather than only block entries) and, for every transfer
/// site, the inferred instantiation of the target's quantified variables.
/// The metatheory harness composes these instantiations with the running
/// closing substitution to re-type machine states during execution
/// (Figure 8 / StateTyping.h).
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_CHECK_PROGRAMCHECKER_H
#define TALFT_CHECK_PROGRAMCHECKER_H

#include "check/InstTyping.h"

#include <map>

namespace talft {

/// The artifacts of a successful whole-program check.
struct CheckedProgram {
  const Program *Prog = nullptr;

  /// For each code address, the static context holding *before* the
  /// instruction at that address executes (block entries carry their
  /// declared precondition).
  std::map<Addr, const StaticContext *> PreAt;

  /// For each jmpB / bzB address, the inferred substitution instantiating
  /// the transfer target's precondition, and that target.
  std::map<Addr, Subst> TransferAt;
  std::map<Addr, const StaticContext *> TransferTargetAt;

  /// For the last address of each block that falls through into the next
  /// block: the substitution into the next block's precondition.
  std::map<Addr, Subst> FallthroughAt;
  std::map<Addr, const StaticContext *> FallthroughTargetAt;

  const StaticContext *preconditionAt(Addr A) const {
    auto It = PreAt.find(A);
    return It == PreAt.end() ? nullptr : It->second;
  }
};

/// Type-checks \p Prog (which must be laid out). Diagnostics go to
/// \p Diags; returns the CheckedProgram on success.
Expected<CheckedProgram> checkProgram(TypeContext &TC, const Program &Prog,
                                      DiagnosticEngine &Diags);

} // namespace talft

#endif // TALFT_CHECK_PROGRAMCHECKER_H
