//===- check/StateTyping.h - Machine-state typing (Figure 8) --------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable version of the judgment ⊢Z S: a machine state is
/// well-typed under zap tag Z when its register file, store queue, memory
/// and instruction register satisfy the static context declared (by a
/// successful whole-program check) at the current instruction address,
/// under a *closing substitution* mapping the context's quantified
/// variables to closed expressions.
///
/// The paper's S-t rule existentially quantifies that substitution; the
/// metatheory harness instead *tracks* it during execution — it starts from
/// the entry block's instantiation and composes the checker's inferred
/// per-transfer substitutions at every jump — so each check is a direct
/// evaluation, not a search. Under zap tag c, values colored c (and the
/// whole queue when c = G, plus the c-colored program counter) are exempt
/// from the value checks, exactly as in rules val-zap-t, Q-zap-t and R-t.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_CHECK_STATETYPING_H
#define TALFT_CHECK_STATETYPING_H

#include "check/ProgramChecker.h"
#include "types/ZapTag.h"

namespace talft {

/// Checks Ψ; · ⊢Z V : T under closing substitution \p Closing.
/// Implements rules val-t, cond-t, cond-t-n0, val-zap-t, val-zap-cond.
Error checkValueHasType(TypeContext &TC, const HeapTyping &Psi, ZapTag Z,
                        Value V, const RegType &T, const Subst &Closing);

/// Checks ⊢Z S (rule S-t with premises R-t, Q-t/Q-zap-t, M-t). \p Closing
/// maps the quantified variables of the context at the current address to
/// closed expressions. Returns success or an explanation of the first
/// violated premise.
Error checkStateTyped(TypeContext &TC, const CheckedProgram &CP,
                      const MachineState &S, ZapTag Z, const Subst &Closing);

/// Builds the closing substitution for the initial state of a checked
/// program: the entry precondition's pc variable binds to the entry
/// address, its memory variable to the literal description of the initial
/// memory, and any variable appearing bare as a register's singleton
/// expression to that register's value.
Expected<Subst> initialClosing(TypeContext &TC, const CheckedProgram &CP,
                               const MachineState &S);

} // namespace talft

#endif // TALFT_CHECK_STATETYPING_H
