//===- check/Subtype.cpp --------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "check/Subtype.h"

using namespace talft;

static void explain(std::string *WhyNot, std::string Msg) {
  if (WhyNot)
    *WhyNot += Msg;
}

bool talft::isSubtype(TypeContext &TC, const RegType &Sub, const RegType &Sup,
                      std::string *WhyNot) {
  ExprContext &Es = TC.exprs();

  if (Sub.C != Sup.C) {
    explain(WhyNot, "color mismatch (" + Sub.str() + " vs " + Sup.str() + ")");
    return false;
  }
  if (Sub.isConditional() != Sup.isConditional()) {
    explain(WhyNot, "conditional/plain mismatch (" + Sub.str() + " vs " +
                        Sup.str() + ")");
    return false;
  }
  if (Sub.isConditional() && !provablyEqual(Es, Sub.Guard, Sup.Guard)) {
    explain(WhyNot, "branch-test expressions differ (" + Sub.Guard->str() +
                        " vs " + Sup.Guard->str() + ")");
    return false;
  }
  if (Sub.B != Sup.B && !Sup.B->isInt()) {
    explain(WhyNot,
            "basic types differ (" + Sub.B->str() + " vs " + Sup.B->str() +
                ") and the supertype is not int");
    return false;
  }
  if (!provablyEqual(Es, Sub.E, Sup.E)) {
    explain(WhyNot, "cannot prove " + Sub.E->str() + " = " + Sup.E->str());
    return false;
  }
  return true;
}

bool talft::isRegFileSubtype(TypeContext &TC, const RegFileType &Sub,
                             const RegFileType &Sup, std::string *WhyNot) {
  for (const auto &[Key, SupT] : Sup) {
    Reg R = RegFileType::regForKey(Key);
    if (R.isDest())
      continue;
    const RegType *SubT = Sub.lookup(R);
    if (!SubT) {
      explain(WhyNot, R.str() + " is required to have type " + SupT.str() +
                          " but is untracked here");
      return false;
    }
    std::string Why;
    if (!isSubtype(TC, *SubT, SupT, &Why)) {
      explain(WhyNot, R.str() + ": " + Why);
      return false;
    }
  }
  return true;
}

bool talft::isZeroDestType(TypeContext &TC, const RegType &T) {
  return !T.isConditional() && T.C == Color::Green && T.B->isInt() &&
         provablyEqual(TC.exprs(), T.E, TC.exprs().intConst(0));
}
