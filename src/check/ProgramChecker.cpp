//===- check/ProgramChecker.cpp -------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "check/ProgramChecker.h"

#include "support/StringUtils.h"

using namespace talft;

namespace {

class Checker {
public:
  Checker(TypeContext &TC, const Program &Prog, DiagnosticEngine &Diags)
      : TC(TC), Prog(Prog), Diags(Diags), Typer(TC, Prog, Diags) {}

  Expected<CheckedProgram> run() {
    assert(Prog.isLaidOut() && "checking a program before layout");
    CheckedProgram CP;
    CP.Prog = &Prog;

    bool Ok = true;
    const std::vector<Block> &Blocks = Prog.blocks();
    for (size_t BI = 0, BE = Blocks.size(); BI != BE; ++BI) {
      const Block *Next = BI + 1 == BE ? nullptr : &Blocks[BI + 1];
      Ok &= checkBlock(Blocks[BI], Next, CP);
    }
    if (!Ok)
      return makeError("program is not well-typed (" +
                       std::to_string(Diags.errorCount()) + " errors)");
    return CP;
  }

private:
  TypeContext &TC;
  const Program &Prog;
  DiagnosticEngine &Diags;
  InstTyper Typer;

  bool validatePrecondition(const Block &B) {
    const StaticContext &Pre = *B.Pre;
    bool Ok = true;
    auto CheckWF = [&](const Expr *E, const char *What) {
      if (E && !wellFormedIn(E, Pre.Delta)) {
        Diags.error(B.Loc, formatv("precondition of '%s': %s mentions "
                                   "variables outside its forall clause",
                                   B.Label.c_str(), What));
        Ok = false;
      }
    };
    if (!Pre.Pc) {
      Diags.error(B.Loc, "precondition of '" + B.Label +
                             "' lacks a program-counter expression");
      return false;
    }
    if (!Pre.MemExpr) {
      Diags.error(B.Loc, "precondition of '" + B.Label +
                             "' lacks a memory description");
      return false;
    }
    CheckWF(Pre.Pc, "the pc expression");
    CheckWF(Pre.MemExpr, "the memory description");
    for (const QueueTypeEntry &Q : Pre.Queue) {
      CheckWF(Q.AddrE, "a queue descriptor");
      CheckWF(Q.ValE, "a queue descriptor");
    }
    for (const auto &[Key, T] : Pre.Gamma) {
      Reg R = RegFileType::regForKey(Key);
      (void)R;
      CheckWF(T.E, "a register type");
      if (T.Guard)
        CheckWF(T.Guard, "a register type's branch test");
    }
    return Ok;
  }

  /// Interns a snapshot of the threaded context for CheckedProgram.
  const StaticContext *intern(const StaticContext &T, const Block &B,
                              size_t Offset) {
    StaticContext *Copy = TC.createContext();
    *Copy = T;
    Copy->Label = formatv("%s+%zu", B.Label.c_str(), Offset);
    return Copy;
  }

  bool checkBlock(const Block &B, const Block *Next, CheckedProgram &CP) {
    if (!validatePrecondition(B))
      return false;

    Addr Entry = Prog.addressOf(B.Label);
    StaticContext T = *B.Pre;
    bool EndedVoid = false;

    for (size_t I = 0, E = B.Insts.size(); I != E; ++I) {
      Addr A = Entry + (Addr)I;
      if (EndedVoid) {
        Diags.error(B.Insts[I].Loc,
                    "unreachable instruction after an unconditional jmpB");
        return false;
      }
      CP.PreAt[A] = I == 0 ? B.Pre : intern(T, B, I);
      std::optional<InstTypingResult> R =
          Typer.check(B.Insts[I].I, T, B.Insts[I].Loc);
      if (!R)
        return false;
      if (R->Transfer) {
        CP.TransferAt[A] = *R->Transfer;
        CP.TransferTargetAt[A] = R->TransferTarget;
      }
      EndedVoid = R->IsVoid;
    }

    if (EndedVoid)
      return true;

    // Fall-through off the block's end: the postcondition must entail the
    // next block's declared precondition.
    if (!Next) {
      Diags.error(B.Loc, "block '" + B.Label +
                             "' falls off the end of the program; "
                             "end it with a jmpB");
      return false;
    }
    Expected<Subst> S =
        matchContext(TC, T, *Next->Pre, T.Pc, MatchMode::Fallthrough);
    if (!S) {
      Diags.error(B.Loc, "fall-through from '" + B.Label + "' " +
                             S.message());
      return false;
    }
    Addr LastAddr = Entry + (Addr)B.Insts.size() - 1;
    CP.FallthroughAt[LastAddr] = *S;
    CP.FallthroughTargetAt[LastAddr] = Next->Pre;
    return true;
  }
};

} // namespace

Expected<CheckedProgram> talft::checkProgram(TypeContext &TC,
                                             const Program &Prog,
                                             DiagnosticEngine &Diags) {
  return Checker(TC, Prog, Diags).run();
}
