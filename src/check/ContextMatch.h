//===- check/ContextMatch.h - Precondition matching & instantiation -------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardest premises of the control-flow typing rules (jmpB-t, bzB-t)
/// and of fall-through code typing have the form
///
///   ∃S.  Δ ⊢ S : Δ'   ∧   S(Γ')(d) = (G,int,0)
///        ∧  S(Γ')(pcG) = (G,int,Er')  ∧  S(Γ')(pcB) = (B,int,Er)
///        ∧  Δ ⊢ Γ ≤ S(Γ')  ∧  Δ ⊢ (Ed,Es) = S((Ed',Es'))
///        ∧  Δ ⊢ Em = S(Em')
///
/// — the current context must entail the jump target's precondition under
/// some instantiation S of the target's universally quantified variables.
/// matchContext *infers* S by first-order matching: target components that
/// are bare Δ'-variables bind to the corresponding current expression, and
/// every component is then verified under the completed S using the
/// provable-equality procedure. Components that mention a Δ'-variable
/// under a constructor before it is bound are rejected with a diagnostic
/// (compilers emit preconditions in the bindable form).
///
/// The destination register differs between the two uses: a jump resets d
/// to G 0 in hardware, so jump targets must declare d:(G,int,0) and the
/// current d is not constrained; a fall-through leaves d alone, so the
/// current d must subtype the target's declared d.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_CHECK_CONTEXTMATCH_H
#define TALFT_CHECK_CONTEXTMATCH_H

#include "check/Subtype.h"
#include "support/Error.h"

namespace talft {

/// How the destination register and program counters are treated.
enum class MatchMode {
  /// A control transfer (jmpB / bzB taken): hardware resets d; the target
  /// must declare d:(G,int,0); S(Target.Pc) must equal the transfer
  /// address expression.
  Jump,
  /// Sequential flow into a labelled block: d flows through (subtyping);
  /// S(Target.Pc) must equal the current pc expression.
  Fallthrough,
};

/// Applies \p S to the expressions of \p T.
RegType applySubstToRegType(TypeContext &TC, const Subst &S, const RegType &T);

/// Infers and verifies the instantiation S making \p Cur entail
/// \p Target. \p PcSubject is the expression S(Target.Pc) must provably
/// equal (the jump-register expression for Jump mode, the current pc
/// expression for Fallthrough mode). Returns the substitution, or an error
/// explaining the first failing premise.
Expected<Subst> matchContext(TypeContext &TC, const StaticContext &Cur,
                             const StaticContext &Target,
                             const Expr *PcSubject, MatchMode Mode);

} // namespace talft

#endif // TALFT_CHECK_CONTEXTMATCH_H
