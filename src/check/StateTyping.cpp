//===- check/StateTyping.cpp ----------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "check/StateTyping.h"

#include "support/StringUtils.h"

using namespace talft;

/// Ψ ⊢ n : b (rules int-t / base-t): any integer has type int; a non-int
/// shape must be Ψ's type for that address.
static bool intHasBasicType(const HeapTyping &Psi, int64_t N,
                            const BasicType *B) {
  if (B->isInt())
    return true;
  return Psi.lookup(N) == B;
}

Error talft::checkValueHasType(TypeContext &TC, const HeapTyping &Psi,
                               ZapTag Z, Value V, const RegType &T,
                               const Subst &Closing) {
  // Rules val-zap-t / val-zap-cond: data matching the zap tag may have
  // been corrupted arbitrarily and can be given any (closed) type.
  if (Z.is(T.C))
    return Error::success();

  RegType CT = applySubstToRegType(TC, Closing, T);
  if (!CT.E->isClosed())
    return makeError("closing substitution leaves " + CT.E->str() + " open");

  if (V.C != CT.C)
    return makeError("value " + V.str() + " has the wrong color for type " +
                     CT.str());

  if (CT.isConditional()) {
    std::optional<int64_t> Guard = evalInt(CT.Guard);
    if (!Guard)
      return makeError("branch-test expression " + CT.Guard->str() +
                       " has no denotation");
    if (*Guard != 0) {
      // Rule cond-t-n0: the value must be 0.
      if (V.N != 0)
        return makeError("value " + V.str() + " must be 0 under type " +
                         CT.str());
      return Error::success();
    }
    // Rule cond-t: check the underlying triple.
  }

  std::optional<int64_t> E = evalInt(CT.E);
  if (!E)
    return makeError("singleton expression " + CT.E->str() +
                     " has no denotation");
  if (V.N != *E)
    return makeError(formatv("value %lld differs from its singleton "
                             "expression %s = %lld",
                             (long long)V.N, CT.E->str().c_str(),
                             (long long)*E));
  if (!intHasBasicType(Psi, V.N, CT.B))
    return makeError(formatv("value %lld does not have shape %s",
                             (long long)V.N, CT.B->str().c_str()));
  return Error::success();
}

Error talft::checkStateTyped(TypeContext &TC, const CheckedProgram &CP,
                             const MachineState &S, ZapTag Z,
                             const Subst &Closing) {
  if (S.isFault())
    return makeError("the fault state is never well-typed");
  const HeapTyping &Psi = CP.Prog->heapTyping();

  // Locate the anchor: the program counter of a color the zap tag does not
  // cover. With no zap tag the two must agree.
  Value PcG = S.pcG(), PcB = S.pcB();
  if (Z.isNone() && PcG.N != PcB.N)
    return makeError(formatv("program counters disagree (%lld vs %lld) "
                             "without a fault",
                             (long long)PcG.N, (long long)PcB.N));
  Addr Anchor = Z.is(Color::Green) ? PcB.N : PcG.N;

  const StaticContext *T = CP.preconditionAt(Anchor);
  if (!T)
    return makeError(formatv("no checked context at address %lld",
                             (long long)Anchor));

  // Program counters: colors are fixed; the non-zapped ones must equal the
  // context's pc expression.
  if (PcG.C != Color::Green || PcB.C != Color::Blue)
    return makeError("program counters carry the wrong color tags");
  const Expr *PcE = Closing.apply(TC.exprs(), T->Pc);
  std::optional<int64_t> PcV = evalInt(PcE);
  if (!PcV)
    return makeError("pc expression " + PcE->str() + " has no denotation");
  if (!Z.is(Color::Green) && PcG.N != *PcV)
    return makeError(formatv("pcG = %lld differs from the context's pc %lld",
                             (long long)PcG.N, (long long)*PcV));
  if (!Z.is(Color::Blue) && PcB.N != *PcV)
    return makeError(formatv("pcB = %lld differs from the context's pc %lld",
                             (long long)PcB.N, (long long)*PcV));

  // Instruction register consistency: a fetched instruction must be the
  // one at the anchor address.
  if (S.IR) {
    if (!S.Code->contains(Anchor) || !(S.Code->get(Anchor) == *S.IR))
      return makeError("instruction register does not hold the instruction "
                       "at the anchor address");
  }

  // Rule R-t: every tracked register satisfies its type.
  for (const auto &[Key, RT] : T->Gamma) {
    Reg R = RegFileType::regForKey(Key);
    if (Error E = checkValueHasType(TC, Psi, Z, S.Regs.get(R), RT, Closing))
      return makeError(R.str() + ": " + E.message());
  }

  // Rules Q-t / Q-zap-t: the queue is a green structure. Under zap tag G
  // only its length is constrained; otherwise each entry matches its
  // descriptor and is well-typed against Ψ.
  if (S.Queue.size() != T->Queue.size())
    return makeError(formatv("store queue has %zu entries, context "
                             "describes %zu",
                             S.Queue.size(), T->Queue.size()));
  if (!Z.is(Color::Green)) {
    for (size_t I = 0, E = S.Queue.size(); I != E; ++I) {
      const QueueEntry &QE = S.Queue.entry(I);
      const QueueTypeEntry &QT = T->Queue.entry(I);
      std::optional<int64_t> A =
          evalInt(Closing.apply(TC.exprs(), QT.AddrE));
      std::optional<int64_t> V = evalInt(Closing.apply(TC.exprs(), QT.ValE));
      if (!A || !V)
        return makeError(formatv("queue descriptor %zu has no denotation",
                                 I));
      if (QE.Address != *A || QE.Val != *V)
        return makeError(formatv("queue entry %zu is (%lld,%lld) but its "
                                 "descriptor denotes (%lld,%lld)",
                                 I, (long long)QE.Address, (long long)QE.Val,
                                 (long long)*A, (long long)*V));
      const BasicType *PtrT = Psi.lookup(QE.Address);
      if (!PtrT || !PtrT->isRef())
        return makeError(formatv("queue entry %zu targets address %lld, "
                                 "which is not a declared cell",
                                 I, (long long)QE.Address));
      if (!intHasBasicType(Psi, QE.Val, PtrT->refPointee()))
        return makeError(formatv("queue entry %zu's value has the wrong "
                                 "shape for its cell",
                                 I));
      // Dom(Q) ⊆ Dom(M) when the queue is intact.
      if (!S.Mem.contains(QE.Address))
        return makeError(formatv("queue entry %zu targets address %lld "
                                 "outside Dom(M)",
                                 I, (long long)QE.Address));
    }
  }

  // Rule M-t: memory must *be* the denotation of its description, and
  // every cell's contents must satisfy Ψ.
  const Expr *MemE = Closing.apply(TC.exprs(), T->MemExpr);
  std::optional<MemDenotation> MemV = evalMem(MemE);
  if (!MemV)
    return makeError("memory description has no denotation");
  if (!(MemDenotation(S.Mem.begin(), S.Mem.end()) == *MemV))
    return makeError("memory differs from the denotation of its "
                     "description " +
                     MemE->str());
  for (const auto &[A, V] : S.Mem) {
    const BasicType *PtrT = Psi.lookup(A);
    if (!PtrT || !PtrT->isRef())
      return makeError(formatv("memory address %lld is not a declared cell",
                               (long long)A));
    if (!intHasBasicType(Psi, V, PtrT->refPointee()))
      return makeError(formatv("contents of cell %lld do not have shape %s",
                               (long long)A,
                               PtrT->refPointee()->str().c_str()));
  }

  return Error::success();
}

Expected<Subst> talft::initialClosing(TypeContext &TC,
                                      const CheckedProgram &CP,
                                      const MachineState &S) {
  ExprContext &Es = TC.exprs();
  const Program &Prog = *CP.Prog;
  const Block *Entry = Prog.findBlock(Prog.EntryLabel);
  const StaticContext &Pre = *Entry->Pre;

  // The literal description of the initial memory.
  const Expr *MemLit = Es.emp();
  for (const auto &[A, V] : S.Mem)
    MemLit = Es.upd(MemLit, Es.intConst(A), Es.intConst(V));

  Subst Closing;
  auto BindIfVar = [&](const Expr *Pattern, const Expr *To) {
    if (Pattern && Pattern->isVar() && Pre.Delta.contains(Pattern->varName()))
      Closing.bind(Pattern, To);
  };
  BindIfVar(Pre.Pc, Es.intConst(Prog.entryAddress()));
  BindIfVar(Pre.MemExpr, MemLit);
  for (const auto &[Key, T] : Pre.Gamma) {
    Reg R = RegFileType::regForKey(Key);
    BindIfVar(T.E, Es.intConst(S.Regs.val(R)));
  }

  for (const auto &[Name, Kind] : Pre.Delta)
    if (!Closing.lookup(Es.var(Name, Kind)))
      return makeError("cannot close entry variable '" + Name + "'");
  return Closing;
}
