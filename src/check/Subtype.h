//===- check/Subtype.h - Value and register-file subtyping ----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's subtyping: Δ ⊢ (c,b,E1) ≤ (c,int,E2) whenever Δ ⊢ E1 = E2 —
/// i.e. the only nontrivial coercion forgets a ref or code shape down to
/// int (the singleton expression and the color are preserved). Conditional
/// types relate only to equal conditional types (component-wise provable
/// equality). Register-file subtyping Δ ⊢ Γ1 ≤ Γ2 ranges over the
/// *general-purpose* registers of Γ2 only; the special registers d, pcG and
/// pcB are related by explicit premises at each use site.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_CHECK_SUBTYPE_H
#define TALFT_CHECK_SUBTYPE_H

#include "sexpr/ExprNormalize.h"
#include "types/StaticContext.h"
#include "types/TypeContext.h"

#include <string>

namespace talft {

/// Decides Δ ⊢ Sub ≤ Sup. On failure, appends an explanation to \p WhyNot
/// when non-null.
bool isSubtype(TypeContext &TC, const RegType &Sub, const RegType &Sup,
               std::string *WhyNot = nullptr);

/// Decides Δ ⊢ Sub ≤ Sup over the general-purpose registers mentioned by
/// \p Sup (d entries in \p Sup are ignored; callers check d explicitly).
bool isRegFileSubtype(TypeContext &TC, const RegFileType &Sub,
                      const RegFileType &Sup, std::string *WhyNot = nullptr);

/// Convenience: true when \p T is the plain type (G, int, 0) — the shape
/// required of the destination register by every control-flow rule.
bool isZeroDestType(TypeContext &TC, const RegType &T);

} // namespace talft

#endif // TALFT_CHECK_SUBTYPE_H
