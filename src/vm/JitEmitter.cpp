//===- vm/JitEmitter.cpp - Lowering micro-ops to x86-64 -------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "vm/JitEmitter.h"

#include "isa/MachineState.h"
#include "sim/Step.h"

#include <cassert>
#include <cstddef>
#include <cstring>

using namespace talft;
using namespace talft::vm;

// The templates hard-code these frame offsets.
static_assert(offsetof(JitFrame, Cells) == 0);
static_assert(offsetof(JitFrame, Remaining) == 8);
static_assert(offsetof(JitFrame, ProbeCountdown) == 16);
static_assert(offsetof(JitFrame, Dirty) == 24);
static_assert(offsetof(JitFrame, ExitAddr) == 32);
static_assert(offsetof(JitFrame, Entries) == 40);
// ...and this cell layout (color byte at +0, payload at +8, 16B stride).
static_assert(sizeof(Value) == 16);
static_assert(offsetof(Value, C) == 0);
static_assert(offsetof(Value, N) == 8);
static_assert((uint8_t)Color::Green == 0);

//===----------------------------------------------------------------------===//
// Out-of-line execution helpers (SysV: rdi = frame, esi = packed operands).
// Register writes go through the raw cells — the driver folds fingerprints
// for them — while queue/memory mutations use the eager abstractions, so
// their component fingerprints never go stale. Returns 0 = ok, 1 = fault
// (the caller template jumps to the fault epilogue; the driver installs
// the canonical fault state, exactly like execOp's `S = faultState()`).
//===----------------------------------------------------------------------===//

namespace {

constexpr unsigned PcGIdx = NumGeneralRegs + 1, PcBIdx = NumGeneralRegs + 2;

inline void bumpPcs(Value *Cells) {
  Cells[PcGIdx].N += 1;
  Cells[PcBIdx].N += 1;
}

} // namespace

extern "C" {

uint64_t talftJitLdG(JitFrame *F, uint64_t Ops) {
  unsigned Rd = Ops & 0xFF, Rs = (Ops >> 8) & 0xFF;
  Value *Cells = F->Cells;
  MachineState &S = *F->S;
  Addr A = Cells[Rs].N;
  int64_t V;
  if (std::optional<int64_t> Pending = S.Queue.find(A))
    V = *Pending;
  else if (std::optional<int64_t> Cell = S.Mem.lookup(A))
    V = *Cell;
  else if (F->Policy->WildLoad == WildLoadPolicy::Trap)
    return JitExitFault;
  else
    V = F->Policy->GarbageValue;
  bumpPcs(Cells);
  Cells[Rd] = Value::green(V);
  return JitExitBoundary;
}

uint64_t talftJitLdB(JitFrame *F, uint64_t Ops) {
  unsigned Rd = Ops & 0xFF, Rs = (Ops >> 8) & 0xFF;
  Value *Cells = F->Cells;
  MachineState &S = *F->S;
  Addr A = Cells[Rs].N;
  int64_t V;
  if (std::optional<int64_t> Cell = S.Mem.lookup(A))
    V = *Cell;
  else if (F->Policy->WildLoad == WildLoadPolicy::Trap)
    return JitExitFault;
  else
    V = F->Policy->GarbageValue;
  bumpPcs(Cells);
  Cells[Rd] = Value::blue(V);
  return JitExitBoundary;
}

uint64_t talftJitStG(JitFrame *F, uint64_t Ops) {
  unsigned Rd = Ops & 0xFF, Rs = (Ops >> 8) & 0xFF;
  Value *Cells = F->Cells;
  F->S->Queue.pushFront({Cells[Rd].N, Cells[Rs].N});
  bumpPcs(Cells);
  return JitExitBoundary;
}

uint64_t talftJitStB(JitFrame *F, uint64_t Ops) {
  unsigned Rd = Ops & 0xFF, Rs = (Ops >> 8) & 0xFF;
  Value *Cells = F->Cells;
  MachineState &S = *F->S;
  if (S.Queue.empty())
    return JitExitFault;
  QueueEntry Back = S.Queue.back();
  if (Cells[Rd].N != Back.Address || Cells[Rs].N != Back.Val)
    return JitExitFault;
  S.Queue.popBack();
  S.Mem.set(Back.Address, Back.Val);
  bumpPcs(Cells);
  if (F->Out)
    F->Out(F, Back.Address, Back.Val);
  return JitExitBoundary;
}

} // extern "C"

#if defined(__x86_64__) || defined(_M_X64)

//===----------------------------------------------------------------------===//
// A minimal x86-64 assembler: just the encodings the templates need.
//===----------------------------------------------------------------------===//

namespace {

enum GpReg : unsigned {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

// Condition codes for jcc.
enum Cond : unsigned { CcB = 2, CcAE = 3, CcE = 4, CcNE = 5 };

class Asm {
public:
  std::vector<uint8_t> Code;

  size_t off() const { return Code.size(); }
  void u8(uint8_t B) { Code.push_back(B); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      u8((V >> (8 * I)) & 0xFF);
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      u8((V >> (8 * I)) & 0xFF);
  }

  void rexW(unsigned R, unsigned B) {
    u8(0x48 | ((R >> 3) << 2) | (B >> 3));
  }
  void rexWX(unsigned R, unsigned X, unsigned B) {
    u8(0x48 | ((R >> 3) << 2) | ((X >> 3) << 1) | (B >> 3));
  }
  void rexOpt(unsigned R, unsigned B) {
    if ((R | B) & 8)
      u8(0x40 | ((R >> 3) << 2) | (B >> 3));
  }

  /// mod=11 register form.
  void modRR(unsigned Reg, unsigned Rm) {
    u8(0xC0 | ((Reg & 7) << 3) | (Rm & 7));
  }
  /// [Base + disp32] memory form (SIB when base is rsp/r12).
  void modMem(unsigned Reg, unsigned Base, int32_t Disp) {
    u8(0x80 | ((Reg & 7) << 3) | ((Base & 7) == 4 ? 4 : (Base & 7)));
    if ((Base & 7) == 4)
      u8(0x24);
    u32((uint32_t)Disp);
  }

  void movRR64(unsigned D, unsigned S) { rexW(S, D), u8(0x89), modRR(S, D); }
  void movRM64(unsigned D, unsigned Base, int32_t Disp) {
    rexW(D, Base), u8(0x8B), modMem(D, Base, Disp);
  }
  void movMR64(unsigned Base, int32_t Disp, unsigned S) {
    rexW(S, Base), u8(0x89), modMem(S, Base, Disp);
  }
  void movRI64(unsigned D, uint64_t Imm) {
    rexW(0, D), u8(0xB8 | (D & 7)), u64(Imm);
  }
  void movRI32z(unsigned D, uint32_t Imm) { // 32-bit move, zero-extends
    rexOpt(0, D), u8(0xB8 | (D & 7)), u32(Imm);
  }
  /// mov qword [Base+Disp], imm32 (sign-extended).
  void movMI32s(unsigned Base, int32_t Disp, int32_t Imm) {
    rexW(0, Base), u8(0xC7), modMem(0, Base, Disp), u32((uint32_t)Imm);
  }
  void movM8I(unsigned Base, int32_t Disp, uint8_t Imm) {
    rexOpt(0, Base), u8(0xC6), modMem(0, Base, Disp), u8(Imm);
  }
  /// mov byte [Base+Disp], cl.
  void movM8Cl(unsigned Base, int32_t Disp) {
    rexOpt(0, Base), u8(0x88), modMem(RCX, Base, Disp);
  }
  void movzxR32M8(unsigned D, unsigned Base, int32_t Disp) {
    rexOpt(D, Base), u8(0x0F), u8(0xB6), modMem(D, Base, Disp);
  }
  /// mov D, [Base + Index*8 + 0].
  void movRMIndex8(unsigned D, unsigned Base, unsigned Index) {
    rexWX(D, Index, Base);
    u8(0x8B);
    u8(0x40 | ((D & 7) << 3) | 4); // mod=01, rm=SIB, disp8
    u8(0xC0 | ((Index & 7) << 3) | (Base & 7)); // scale=8
    u8(0);
  }

  void addRM64(unsigned D, unsigned Base, int32_t Disp) {
    rexW(D, Base), u8(0x03), modMem(D, Base, Disp);
  }
  void subRM64(unsigned D, unsigned Base, int32_t Disp) {
    rexW(D, Base), u8(0x2B), modMem(D, Base, Disp);
  }
  void imulRM64(unsigned D, unsigned Base, int32_t Disp) {
    rexW(D, Base), u8(0x0F), u8(0xAF), modMem(D, Base, Disp);
  }
  void addRR64(unsigned D, unsigned S) { rexW(S, D), u8(0x01), modRR(S, D); }
  void subRR64(unsigned D, unsigned S) { rexW(S, D), u8(0x29), modRR(S, D); }
  void imulRR64(unsigned D, unsigned S) {
    rexW(D, S), u8(0x0F), u8(0xAF), modRR(D, S);
  }
  /// add qword [Base+Disp], imm8.
  void addMI8(unsigned Base, int32_t Disp, int8_t Imm) {
    rexW(0, Base), u8(0x83), modMem(0, Base, Disp), u8((uint8_t)Imm);
  }
  void subRI8(unsigned R, int8_t Imm) {
    rexW(0, R), u8(0x83), modRR(5, R), u8((uint8_t)Imm);
  }
  void subRI32(unsigned R, int32_t Imm) {
    rexW(0, R), u8(0x81), modRR(5, R), u32((uint32_t)Imm);
  }
  void cmpRI8(unsigned R, int8_t Imm) {
    rexW(0, R), u8(0x83), modRR(7, R), u8((uint8_t)Imm);
  }
  void cmpRI32(unsigned R, int32_t Imm) {
    rexW(0, R), u8(0x81), modRR(7, R), u32((uint32_t)Imm);
  }
  /// cmp qword [Base+Disp], imm32 (sign-extended).
  void cmpMI32(unsigned Base, int32_t Disp, int32_t Imm) {
    rexW(0, Base), u8(0x81), modMem(7, Base, Disp), u32((uint32_t)Imm);
  }
  /// cmp qword [Base+Disp], imm8.
  void cmpMI8(unsigned Base, int32_t Disp, int8_t Imm) {
    rexW(0, Base), u8(0x83), modMem(7, Base, Disp), u8((uint8_t)Imm);
  }
  void cmpRR64(unsigned A, unsigned B) { rexW(B, A), u8(0x39), modRR(B, A); }
  void testRR64(unsigned A, unsigned B) { rexW(B, A), u8(0x85), modRR(B, A); }
  void testEaxEax() { u8(0x85), u8(0xC0); }
  void xorR32(unsigned D) { rexOpt(D, D), u8(0x31), modRR(D, D); }
  void btsRI(unsigned R, uint8_t Bit) {
    rexW(0, R), u8(0x0F), u8(0xBA), modRR(5, R), u8(Bit);
  }
  void decR64(unsigned R) { rexW(0, R), u8(0xFF), modRR(1, R); }

  void pushR(unsigned R) { rexOpt(0, R), u8(0x50 | (R & 7)); }
  void popR(unsigned R) { rexOpt(0, R), u8(0x58 | (R & 7)); }
  void ret() { u8(0xC3); }
  void jmpR(unsigned R) { rexOpt(0, R), u8(0xFF), modRR(4, R); }
  void callR(unsigned R) { rexOpt(0, R), u8(0xFF), modRR(2, R); }

  /// jcc to a known (usually backward) offset.
  void jccTo(Cond Cc, size_t Target) {
    u8(0x0F), u8(0x80 | Cc);
    u32((uint32_t)(Target - (off() + 4)));
  }
  /// jmp to a known offset.
  void jmpTo(size_t Target) {
    u8(0xE9);
    u32((uint32_t)(Target - (off() + 4)));
  }
  /// jcc with a forward target; returns the fixup position.
  size_t jccFwd(Cond Cc) {
    u8(0x0F), u8(0x80 | Cc), u32(0);
    return off() - 4;
  }
  void patch(size_t Pos) {
    uint32_t Rel = (uint32_t)(off() - (Pos + 4));
    std::memcpy(&Code[Pos], &Rel, 4);
  }

  void movupsXM(unsigned X, unsigned Base, int32_t Disp) {
    rexOpt(X, Base), u8(0x0F), u8(0x10), modMem(X, Base, Disp);
  }
  void movupsMX(unsigned Base, int32_t Disp, unsigned X) {
    rexOpt(X, Base), u8(0x0F), u8(0x11), modMem(X, Base, Disp);
  }
};

constexpr int32_t cellC(unsigned I) { return (int32_t)(I * 16); }
constexpr int32_t cellN(unsigned I) { return (int32_t)(I * 16 + 8); }
constexpr unsigned DIdx = NumGeneralRegs; // 64

/// Templates exist for every op whose register *writes* avoid the program
/// counters (writing a pc mid-template would invalidate the straight-line
/// fall-through, and jmpB/bzB's sequential set(pcG)/set(pcB)/set(d) reads
/// would observe partially-updated cells). Reads of any register,
/// including the pcs, are fine: templates read all sources before the pc
/// bump, matching execOp's evaluation order. Unsupported slots simply get
/// no native code; the driver steps them on the interpreter.
bool supportedOp(const MicroOp &M) {
  switch (M.Kind) {
  case MicroOpKind::AddRR:
  case MicroOpKind::SubRR:
  case MicroOpKind::MulRR:
  case MicroOpKind::AddRI:
  case MicroOpKind::SubRI:
  case MicroOpKind::MulRI:
  case MicroOpKind::Mov:
  case MicroOpKind::LdG:
  case MicroOpKind::LdB:
  case MicroOpKind::JmpB:
  case MicroOpKind::BzB:
    return M.Rd <= DIdx;
  case MicroOpKind::StG:
  case MicroOpKind::StB:
  case MicroOpKind::JmpG:
  case MicroOpKind::BzG:
    return true;
  }
  return false;
}

} // namespace

std::unique_ptr<JitProgram> vm::emitJitProgram(const DecodedProgram &P) {
  if (!ExecMem::supported())
    return nullptr;
  // All address immediates (exit compares, span checks) are imm32.
  if (P.base() < 0 || P.base() + (int64_t)P.span() >= (int64_t)1 << 30)
    return nullptr;

  size_t Span = P.span();
  std::vector<uint8_t> Supported(Span, 0);
  for (size_t I = 0; I != Span; ++I)
    Supported[I] = P.validSlot(I) && supportedOp(P.opAtSlot(I));

  Asm A;
  std::vector<uint32_t> BoundaryOff(Span, UINT32_MAX);
  std::vector<uint32_t> BodyOff(Span, UINT32_MAX);

  // Frame field offsets (see JitFrame).
  constexpr int32_t FrRemaining = 8, FrProbe = 16, FrDirty = 24, FrExit = 32,
                    FrEntries = 40;

  // --- Enter(frame=rdi, target=rsi): spill-free context switch.
  A.pushR(RBP), A.pushR(RBX), A.pushR(R12), A.pushR(R13), A.pushR(R14),
      A.pushR(R15);
  A.subRI8(RSP, 8); // 16-byte call alignment for the helper calls
  A.movRR64(R12, RDI);
  A.movRM64(RBX, R12, 0 /*Cells*/);
  A.movRM64(R13, R12, FrRemaining);
  A.movRM64(R14, R12, FrProbe);
  A.xorR32(R15);
  A.movRM64(RBP, R12, FrEntries);
  A.jmpR(RSI);

  // --- Shared epilogues. eax = exit reason; the fault stub falls through
  // into the store-back tail, the boundary stub jumps to it.
  size_t EpiFault = A.off();
  A.movRI32z(RAX, (uint32_t)JitExitFault);
  size_t Tail = A.off();
  A.movMR64(R12, FrRemaining, R13);
  A.movMR64(R12, FrProbe, R14);
  A.movMR64(R12, FrDirty, R15);
  A.subRI8(RSP, -8); // add rsp, 8
  A.popR(R15), A.popR(R14), A.popR(R13), A.popR(R12), A.popR(RBX), A.popR(RBP);
  A.ret();
  size_t Epi = A.off();
  A.xorR32(RAX);
  A.jmpTo(Tail);

  auto emitPcBump = [&] {
    A.addMI8(RBX, cellN(PcGIdx), 1);
    A.addMI8(RBX, cellN(PcBIdx), 1);
  };
  auto emitDirty = [&](unsigned Rd) {
    if (Rd < NumGeneralRegs)
      A.btsRI(R15, (uint8_t)Rd);
  };
  auto emitHelperCall = [&](uint64_t Fn, const MicroOp &M) {
    A.movRR64(RDI, R12);
    A.movRI32z(RSI, (uint32_t)M.Rd | ((uint32_t)M.Rs << 8));
    A.movRI64(RAX, Fn);
    A.callR(RAX);
  };
  // Commits chain through the entry table; target payload is in rcx.
  auto emitChain = [&] {
    A.movRR64(RDX, RCX);
    if (P.base() != 0)
      A.subRI32(RDX, (int32_t)P.base());
    A.cmpRI32(RDX, (int32_t)Span);
    A.jccTo(CcAE, Epi); // off-span target: the driver sorts it out
    A.movRMIndex8(RDX, RBP, RDX);
    A.testRR64(RDX, RDX);
    A.jccTo(CcE, Epi); // hole / unsupported target
    A.jmpR(RDX);
  };
  // pcG <- d's cell, pcB <- rd's cell, d <- G 0 (cells read before any
  // write, exactly execOp's read-then-commit order), then chain. Leaves
  // the target payload in rcx.
  auto emitCommit = [&](const MicroOp &M) {
    A.movupsXM(0, RBX, cellC(DIdx));
    A.movupsXM(1, RBX, cellC(M.Rd));
    A.movupsMX(RBX, cellC(PcGIdx), 0);
    A.movupsMX(RBX, cellC(PcBIdx), 1);
    A.movM8I(RBX, cellC(DIdx), (uint8_t)Color::Green);
    A.movMI32s(RBX, cellN(DIdx), 0);
    emitChain();
  };

  for (size_t Slot = 0; Slot != Span; ++Slot) {
    if (!Supported[Slot])
      continue;
    const MicroOp &M = P.opAtSlot(Slot);
    int32_t Addr32 = (int32_t)(P.base() + (int64_t)Slot);

    // Boundary: exit address, probe countdown, budget — any hit
    // side-exits; the driver re-runs the per-mode ordering.
    BoundaryOff[Slot] = (uint32_t)A.off();
    A.cmpMI32(R12, FrExit, Addr32);
    A.jccTo(CcE, Epi);
    A.decR64(R14);
    A.jccTo(CcE, Epi);
    A.cmpRI8(R13, 2);
    A.jccTo(CcB, Epi);
    A.subRI8(R13, 2);

    BodyOff[Slot] = (uint32_t)A.off();
    bool FallsThrough = true;
    switch (M.Kind) {
    case MicroOpKind::AddRR:
    case MicroOpKind::SubRR:
    case MicroOpKind::MulRR:
      A.movRM64(RAX, RBX, cellN(M.Rs));
      A.movzxR32M8(RCX, RBX, cellC(M.Rt));
      if (M.Kind == MicroOpKind::AddRR)
        A.addRM64(RAX, RBX, cellN(M.Rt));
      else if (M.Kind == MicroOpKind::SubRR)
        A.subRM64(RAX, RBX, cellN(M.Rt));
      else
        A.imulRM64(RAX, RBX, cellN(M.Rt));
      emitPcBump();
      A.movMR64(RBX, cellN(M.Rd), RAX);
      A.movM8Cl(RBX, cellC(M.Rd));
      emitDirty(M.Rd);
      break;
    case MicroOpKind::AddRI:
    case MicroOpKind::SubRI:
    case MicroOpKind::MulRI:
      A.movRM64(RAX, RBX, cellN(M.Rs));
      A.movRI64(RCX, (uint64_t)M.ImmN);
      if (M.Kind == MicroOpKind::AddRI)
        A.addRR64(RAX, RCX);
      else if (M.Kind == MicroOpKind::SubRI)
        A.subRR64(RAX, RCX);
      else
        A.imulRR64(RAX, RCX);
      emitPcBump();
      A.movMR64(RBX, cellN(M.Rd), RAX);
      A.movM8I(RBX, cellC(M.Rd), (uint8_t)M.ImmC);
      emitDirty(M.Rd);
      break;
    case MicroOpKind::Mov:
      emitPcBump();
      A.movRI64(RAX, (uint64_t)M.ImmN);
      A.movMR64(RBX, cellN(M.Rd), RAX);
      A.movM8I(RBX, cellC(M.Rd), (uint8_t)M.ImmC);
      emitDirty(M.Rd);
      break;
    case MicroOpKind::LdG:
    case MicroOpKind::LdB:
      emitHelperCall((uint64_t)(M.Kind == MicroOpKind::LdG
                                    ? (uintptr_t)&talftJitLdG
                                    : (uintptr_t)&talftJitLdB),
                     M);
      A.testEaxEax();
      A.jccTo(CcNE, EpiFault);
      emitDirty(M.Rd);
      break;
    case MicroOpKind::StG:
      emitHelperCall((uint64_t)(uintptr_t)&talftJitStG, M);
      break;
    case MicroOpKind::StB:
      emitHelperCall((uint64_t)(uintptr_t)&talftJitStB, M);
      A.testEaxEax();
      A.jccTo(CcNE, EpiFault);
      break;
    case MicroOpKind::JmpG:
      A.cmpMI8(RBX, cellN(DIdx), 0);
      A.jccTo(CcNE, EpiFault);
      A.movupsXM(0, RBX, cellC(M.Rd));
      emitPcBump();
      A.movupsMX(RBX, cellC(DIdx), 0);
      break;
    case MicroOpKind::BzG: {
      // d must be 0 on both arms; the taken arm additionally arms d with
      // rd's (pre-bump) cell.
      A.cmpMI8(RBX, cellN(DIdx), 0);
      A.jccTo(CcNE, EpiFault);
      A.movRM64(RAX, RBX, cellN(M.Rs));
      A.movupsXM(0, RBX, cellC(M.Rd));
      emitPcBump();
      A.testRR64(RAX, RAX);
      size_t Skip = A.jccFwd(CcNE);
      A.movupsMX(RBX, cellC(DIdx), 0);
      A.patch(Skip);
      break;
    }
    case MicroOpKind::JmpB:
      A.movRM64(RCX, RBX, cellN(DIdx));
      A.testRR64(RCX, RCX);
      A.jccTo(CcE, EpiFault);
      A.movRM64(RAX, RBX, cellN(M.Rd));
      A.cmpRR64(RAX, RCX);
      A.jccTo(CcNE, EpiFault);
      emitCommit(M);
      FallsThrough = false;
      break;
    case MicroOpKind::BzB: {
      A.movRM64(RAX, RBX, cellN(M.Rs));
      A.movRM64(RCX, RBX, cellN(DIdx));
      A.testRR64(RAX, RAX);
      size_t Untaken = A.jccFwd(CcNE);
      A.testRR64(RCX, RCX);
      A.jccTo(CcE, EpiFault);
      A.movRM64(RAX, RBX, cellN(M.Rd));
      A.cmpRR64(RAX, RCX);
      A.jccTo(CcNE, EpiFault);
      emitCommit(M); // never falls through
      A.patch(Untaken);
      A.testRR64(RCX, RCX);
      A.jccTo(CcNE, EpiFault);
      emitPcBump();
      break;
    }
    }

    // Fall through into the next slot's boundary code when it is
    // physically next; otherwise return to the driver.
    if (FallsThrough && !(Slot + 1 < Span && Supported[Slot + 1]))
      A.jmpTo(Epi);
  }

  auto JP = std::unique_ptr<JitProgram>(new JitProgram());
  if (!JP->Mem.allocate(A.Code.size()) ||
      !JP->Mem.write(0, A.Code.data(), A.Code.size()) || !JP->Mem.finalize())
    return nullptr;

  const uint8_t *Base = JP->Mem.base();
  JP->Enter = (JitProgram::EnterFn)(uintptr_t)Base;
  JP->Boundary.resize(Span, nullptr);
  JP->Body.resize(Span, nullptr);
  for (size_t I = 0; I != Span; ++I) {
    if (BoundaryOff[I] != UINT32_MAX)
      JP->Boundary[I] = Base + BoundaryOff[I];
    if (BodyOff[I] != UINT32_MAX) {
      JP->Body[I] = Base + BodyOff[I];
      ++JP->Blocks;
    }
  }
  JP->ProgBase = P.base();
  JP->Bytes = A.Code.size();
  return JP;
}

#else // !x86-64

std::unique_ptr<JitProgram> vm::emitJitProgram(const DecodedProgram &) {
  return nullptr;
}

#endif
