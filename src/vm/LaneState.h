//===- vm/LaneState.h - Structure-of-arrays lane machine states -----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched counterpart of MachineState: N faulty continuations resumed
/// from the same reference step, transposed into structure-of-arrays form
/// so the lockstep dispatch loop in LaneEngine touches one register row for
/// all lanes at once. The data registers (the 64 general registers plus the
/// intention register d) are split into a lane-major payload array and a
/// lane-major color array (both indexed [dense * Width + lane], with dense
/// indices straight from MicroOp operands); store queues stay per-lane
/// objects — they are tiny, already O(1)-hashed, and mutate nearly every
/// step. Value memories are copy-on-write against an optional shared base
/// (shareMemory): campaign lanes start from one reference state and most
/// retire before committing a store, so they never own a memory at all.
///
/// The program counters are *group* state, not lane state: lanes advance in
/// lockstep precisely while their pcs agree, so one (pcG, pcB) pair serves
/// the whole group and R++ costs O(1) per group step instead of O(lanes).
/// A lane whose control transfer disagrees with the group's leaves the
/// group (LaneEngine hands it to the scalar engine) before the group pc
/// moves, so the shared pair always matches every member's pc.
///
/// Fingerprints follow the same split, but lazily: register writes only
/// mark their row dirty (saving the row's pre-window contents once), and
/// the two Zobrist cell mixes per write that RegisterFile::set pays
/// eagerly are folded in bulk at the sparse probe boundaries that consult
/// the fingerprint (flushFingerprints). Rewrites of the same register
/// within a probe window cancel to a single old/new fold, lanes that
/// retire mid-window never pay for their pending writes, and the pc
/// contribution is recomputed from the group pair only at the boundary —
/// together the single biggest per-step saving of the batched engine.
///
/// Lanes retire in place (convergence, detection, deviation): the retired
/// lane leaves the dense active-index list and the dispatch loops skip it;
/// take() moves its memory and queue out into an ordinary MachineState for
/// the scalar verdict logic.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_VM_LANESTATE_H
#define TALFT_VM_LANESTATE_H

#include "isa/MachineState.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace talft::vm {

/// N machine states in structure-of-arrays form with a shared pc pair.
/// Width is fixed at construction; lanes load from ordinary MachineStates
/// and unload back into them when they leave the group.
class LaneState {
public:
  /// Dense indices of the special registers, resolved once. The data bank
  /// covers [0, NumDataRegs); the pcs live in the shared group pair.
  static constexpr unsigned DestIdx = NumGeneralRegs;
  static constexpr unsigned PcGIdx = NumGeneralRegs + 1;
  static constexpr unsigned PcBIdx = NumGeneralRegs + 2;
  static constexpr unsigned NumDataRegs = NumGeneralRegs + 1;

  explicit LaneState(unsigned Width)
      : Width(Width), RegV(size_t(NumDataRegs) * Width, 0),
        RegC(size_t(NumDataRegs) * Width, Color::Green),
        SaveV(size_t(NumDataRegs) * Width, 0),
        SaveC(size_t(NumDataRegs) * Width, Color::Green), FpData(Width, 0),
        RowDirty(NumDataRegs, 0), Mems(Width), MemDirty(Width, 0),
        Queues(Width), Live(Width, 0) {
    Act.reserve(Width);
    DirtyRows.reserve(NumDataRegs);
  }

  unsigned width() const { return Width; }

  /// Transposes \p S into lane \p L and marks the lane active. \p S must
  /// be an ordinary (non-fault) state with an empty instruction register —
  /// the group owns in-flight instruction bookkeeping. The memory and
  /// queue are moved out of \p S. The first lane loaded installs the group
  /// pc pair; later lanes must agree with it.
  void load(unsigned L, MachineState &&S) {
    assert(L < Width && "lane index out of range");
    assert(!S.isFault() && "loading the fault state into a lane");
    assert(!S.IR && "lane loads take states with an empty IR");
    assert(DirtyRows.empty() && "lane load with deferred writes pending");
    for (unsigned I = 0; I != NumDataRegs; ++I) {
      const Value &V = S.Regs.get(Reg::fromDenseIndex(I));
      RegV[size_t(I) * Width + L] = V.N;
      RegC[size_t(I) * Width + L] = V.C;
    }
    const Value &G = S.Regs.get(Reg::pcG());
    const Value &B = S.Regs.get(Reg::pcB());
    // The data-bank hash is the register file's incrementally-maintained
    // bank hash with the two pc cells backed out: two cell mixes instead
    // of one per data register.
    FpData[L] =
        S.Regs.fingerprint() ^ fp::regCell(PcGIdx, G) ^ fp::regCell(PcBIdx, B);
    if (Act.empty()) {
      PcG = G;
      PcB = B;
    } else {
      assert(G == PcG && B == PcB && "lane group mixes program counters");
    }
    // An empty incoming memory under a shared base means "the base": the
    // lane stays copy-on-write clean. Anything else (including a probe
    // collision reload, whose take() materialized a copy) becomes the
    // lane's own memory.
    if (BaseMem && S.Mem.size() == 0) {
      MemDirty[L] = 0;
    } else {
      Mems[L] = std::move(S.Mem);
      MemDirty[L] = 1;
    }
    Queues[L] = std::move(S.Queue);
    Live[L] = 1;
    Act.push_back(L);
  }

  /// Declares that every lane's value memory equals \p M at load time and
  /// that lane states arrive with an empty Mem field (see
  /// LaneGroupSpec::SharedMem). Lanes read the shared base and materialize
  /// a private copy only on their first store. Must be set before any lane
  /// loads; the pointee must outlive the group.
  void shareMemory(const ValueMemory *M) {
    assert(Act.empty() && "shareMemory after lanes were loaded");
    BaseMem = M;
  }

  /// Transposes lane \p L back into an ordinary MachineState (IR empty)
  /// and retires the lane. The lane's memory and queue are moved out.
  MachineState take(unsigned L, const CodeMemory &Code) {
    assert(active(L) && "taking an inactive lane");
    MachineState S;
    S.Code = &Code;
    for (unsigned I = 0; I != NumDataRegs; ++I)
      S.Regs.set(Reg::fromDenseIndex(I),
                 Value(RegC[size_t(I) * Width + L], RegV[size_t(I) * Width + L]));
    S.Regs.set(Reg::pcG(), PcG);
    S.Regs.set(Reg::pcB(), PcB);
    if (BaseMem && !MemDirty[L])
      S.Mem = *BaseMem;
    else
      S.Mem = std::move(Mems[L]);
    S.Queue = std::move(Queues[L]);
    retire(L);
    return S;
  }

  bool active(unsigned L) const { return Live[L] != 0; }

  /// Retires lane \p L: clears its live bit and swap-removes it from the
  /// dense active list (O(active) scan; retirement is rare next to steps).
  void retire(unsigned L) {
    assert(active(L) && "retiring an inactive lane");
    Live[L] = 0;
    for (size_t I = 0; I != Act.size(); ++I)
      if (Act[I] == L) {
        Act[I] = Act.back();
        Act.pop_back();
        return;
      }
    assert(false && "active lane missing from the active list");
  }

  /// The dense active-lane list the dispatch loops iterate. Retiring a
  /// lane swap-removes it, so callers that retire mid-iteration must
  /// re-read numActive() and not advance past a removed slot.
  size_t numActive() const { return Act.size(); }
  unsigned act(size_t I) const { return Act[I]; }

  /// Register payload / color / full value of dense data register \p I
  /// (general or d) in lane \p L.
  int64_t val(unsigned I, unsigned L) const {
    return RegV[size_t(I) * Width + L];
  }
  Color col(unsigned I, unsigned L) const {
    return RegC[size_t(I) * Width + L];
  }
  Value get(unsigned I, unsigned L) const {
    return Value(col(I, L), val(I, L));
  }

  /// SoA register write. Fingerprint maintenance is deferred: the first
  /// write to a row since the last flushFingerprints() snapshots the whole
  /// row, and the hash delta is folded per lane at the next flush — so the
  /// common case is two stores and a predictable branch, with no mixes.
  void set(unsigned I, unsigned L, Value V) {
    if (!RowDirty[I]) {
      RowDirty[I] = 1;
      DirtyRows.push_back(I);
      size_t Row = size_t(I) * Width;
      std::copy_n(&RegV[Row], Width, &SaveV[Row]);
      std::copy_n(&RegC[Row], Width, &SaveC[Row]);
    }
    size_t Slot = size_t(I) * Width + L;
    RegV[Slot] = V.N;
    RegC[Slot] = V.C;
  }

  /// True when the dense active set covers the entire bank, i.e. every
  /// slot in [0, width()) is live. Row-at-a-time dispatch (LaneSimd.h) is
  /// only valid then: a full-row write touches all Width cells, which is
  /// observationally the per-active-lane write exactly when there are no
  /// dead cells to clobber bookkeeping for.
  bool fullWidthActive() const { return Act.size() == Width; }

  /// Opens row \p I for a full-row write: takes the deferred-fingerprint
  /// snapshot set() would take on the row's first write this window. The
  /// caller then writes the row storage directly via rowV()/rowC().
  void beginRowWrite(unsigned I) {
    if (!RowDirty[I]) {
      RowDirty[I] = 1;
      DirtyRows.push_back(I);
      size_t Row = size_t(I) * Width;
      std::copy_n(&RegV[Row], Width, &SaveV[Row]);
      std::copy_n(&RegC[Row], Width, &SaveC[Row]);
    }
  }

  /// Raw storage of data-register row \p I ([I * Width, (I + 1) * Width)).
  /// Writes require a preceding beginRowWrite(I) in the same window.
  int64_t *rowV(unsigned I) { return &RegV[size_t(I) * Width]; }
  const int64_t *rowV(unsigned I) const { return &RegV[size_t(I) * Width]; }
  Color *rowC(unsigned I) { return &RegC[size_t(I) * Width]; }
  const Color *rowC(unsigned I) const { return &RegC[size_t(I) * Width]; }

  /// Folds all deferred register writes into the active lanes' data-bank
  /// hashes: for each dirty row, each lane whose cell changed since the
  /// window opened XORs the old cell hash out and the new one in. Must run
  /// before fingerprint() is consulted and before any load() that reuses a
  /// retired slot — LaneEngine calls it once per probe boundary, where the
  /// per-window folds replace per-write mixes.
  void flushFingerprints() {
    for (unsigned I : DirtyRows) {
      size_t Row = size_t(I) * Width;
      for (unsigned L : Act) {
        size_t Slot = Row + L;
        if (RegV[Slot] == SaveV[Slot] && RegC[Slot] == SaveC[Slot])
          continue;
        FpData[L] ^= fp::regCell(I, Value(SaveC[Slot], SaveV[Slot])) ^
                     fp::regCell(I, Value(RegC[Slot], RegV[Slot]));
      }
      RowDirty[I] = 0;
    }
    DirtyRows.clear();
  }

  /// Drops deferred register-write bookkeeping left over from a finished
  /// group. Runs end by taking or retiring every lane — often mid-window
  /// (exit drains and fallbacks precede the boundary flush) — so pending
  /// deltas belong to dead lanes and must be discarded, not folded, when
  /// a scratch bank is reused for the next group.
  void resetDeferredWrites() {
    assert(Act.empty() && "dropping deferred writes with lanes active");
    for (unsigned I : DirtyRows)
      RowDirty[I] = 0;
    DirtyRows.clear();
  }

  /// The shared group program counters.
  const Value &pcG() const { return PcG; }
  const Value &pcB() const { return PcB; }

  /// R++ for the whole group: one pair of payload bumps per step. No
  /// fingerprint work — the pc contribution is recomputed lazily at probe
  /// boundaries.
  void incrementPCs() {
    PcG.N += 1;
    PcB.N += 1;
  }

  /// Control transfer commit for the whole group (jmpB / bzB-taken).
  void setPCs(Value G, Value B) {
    PcG = G;
    PcB = B;
  }

  /// Lane L's value memory for reading: the shared base while the lane is
  /// copy-on-write clean, its private copy once it has stored.
  const ValueMemory &memRead(unsigned L) const {
    return BaseMem && !MemDirty[L] ? *BaseMem : Mems[L];
  }
  /// Lane L's value memory for writing; materializes the private copy on
  /// the lane's first store under a shared base.
  ValueMemory &memWrite(unsigned L) {
    if (BaseMem && !MemDirty[L]) {
      Mems[L] = *BaseMem;
      MemDirty[L] = 1;
    }
    return Mems[L];
  }
  StoreQueue &queue(unsigned L) { return Queues[L]; }

  /// The pc-pair contribution to the register-bank hash, shared by every
  /// lane; callers amortize it over the group at a probe boundary.
  uint64_t pcFingerprint() const {
    return fp::regCell(PcGIdx, PcG) ^ fp::regCell(PcBIdx, PcB);
  }

  /// Full state fingerprint of lane \p L at a fetch boundary (IR empty by
  /// construction), given the precomputed group pc contribution \p PcFp.
  /// Matches MachineState::fingerprint() of take(L, ...). Requires a
  /// flushed window (no deferred writes pending).
  uint64_t fingerprint(unsigned L, uint64_t PcFp) const {
    assert(DirtyRows.empty() && "fingerprint consulted with deferred writes");
    return fp::composeState(FpData[L] ^ PcFp, memRead(L).fingerprint(),
                            Queues[L].fingerprint(), fp::EmptyIR);
  }

private:
  unsigned Width;
  /// Lane-major payloads and colors: data register row I occupies
  /// [I * Width, (I + 1) * Width).
  std::vector<int64_t> RegV;
  std::vector<Color> RegC;
  /// Pre-window snapshots of the rows written since the last flush: row I
  /// of SaveV/SaveC is valid iff RowDirty[I], and holds the row contents
  /// from when the current probe window opened.
  std::vector<int64_t> SaveV;
  std::vector<Color> SaveC;
  /// Per-lane Zobrist hash of the data bank (rows < NumDataRegs), exact
  /// only after flushFingerprints().
  std::vector<uint64_t> FpData;
  std::vector<uint8_t> RowDirty;
  std::vector<unsigned> DirtyRows;
  Value PcG, PcB;
  /// Copy-on-write backing: when BaseMem is set, MemDirty[L] == 0 means
  /// lane L still reads *BaseMem and Mems[L] is meaningless; a first store
  /// (or a reload with a materialized memory) flips the lane to Mems[L].
  const ValueMemory *BaseMem = nullptr;
  std::vector<ValueMemory> Mems;
  std::vector<uint8_t> MemDirty;
  std::vector<StoreQueue> Queues;
  std::vector<uint8_t> Live;
  /// Dense indices of the live lanes, unordered (swap-remove).
  std::vector<unsigned> Act;
};

} // namespace talft::vm

#endif // TALFT_VM_LANESTATE_H
