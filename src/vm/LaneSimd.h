//===- vm/LaneSimd.h - SIMD row primitives for the lane banks -------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Row-at-a-time arithmetic over the lane-major register banks
/// (LaneState.h): one call covers a full register row — every lane's copy
/// of one dense register — with the widest integer vectors the build
/// target offers. x86-64 builds get SSE2 (2 x int64, the architectural
/// baseline, no extra flags) and widen to AVX2 (4 x int64) when the
/// compiler was invoked with it; every other target takes the portable
/// scalar loop, which modern compilers auto-vectorize where possible and
/// which doubles as the differential oracle for the intrinsic paths.
///
/// 64-bit multiply has no packed form below AVX-512DQ, so the mul rows
/// stay scalar on every tier; adds, subs, broadcasts and fills vectorize.
///
/// These operate on raw rows and know nothing about colors, fingerprints
/// or active-lane sets — LaneEngine only dispatches here for full-width
/// groups, where "every lane" and "the whole row" coincide.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_VM_LANESIMD_H
#define TALFT_VM_LANESIMD_H

#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#define TALFT_LANESIMD_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#include <emmintrin.h>
#define TALFT_LANESIMD_SSE2 1
#endif

namespace talft::vm::simd {

/// int64 lanes per vector operation on this build: 4 (AVX2), 2 (SSE2),
/// 1 (portable scalar). Campaign stats surface this so perf runs record
/// which tier produced them.
inline constexpr unsigned laneWidth() {
#if defined(TALFT_LANESIMD_AVX2)
  return 4;
#elif defined(TALFT_LANESIMD_SSE2)
  return 2;
#else
  return 1;
#endif
}

/// D[i] = A[i] + B[i] over a full row. Rows may alias exactly (D == A or
/// D == B): each chunk loads both operands before storing.
inline void addRows(int64_t *D, const int64_t *A, const int64_t *B,
                    unsigned N) {
  unsigned I = 0;
#if defined(TALFT_LANESIMD_AVX2)
  for (; I + 4 <= N; I += 4)
    _mm256_storeu_si256(
        (__m256i *)(D + I),
        _mm256_add_epi64(_mm256_loadu_si256((const __m256i *)(A + I)),
                         _mm256_loadu_si256((const __m256i *)(B + I))));
#elif defined(TALFT_LANESIMD_SSE2)
  for (; I + 2 <= N; I += 2)
    _mm_storeu_si128(
        (__m128i *)(D + I),
        _mm_add_epi64(_mm_loadu_si128((const __m128i *)(A + I)),
                      _mm_loadu_si128((const __m128i *)(B + I))));
#endif
  for (; I != N; ++I)
    D[I] = (int64_t)((uint64_t)A[I] + (uint64_t)B[I]);
}

/// D[i] = A[i] - B[i] over a full row.
inline void subRows(int64_t *D, const int64_t *A, const int64_t *B,
                    unsigned N) {
  unsigned I = 0;
#if defined(TALFT_LANESIMD_AVX2)
  for (; I + 4 <= N; I += 4)
    _mm256_storeu_si256(
        (__m256i *)(D + I),
        _mm256_sub_epi64(_mm256_loadu_si256((const __m256i *)(A + I)),
                         _mm256_loadu_si256((const __m256i *)(B + I))));
#elif defined(TALFT_LANESIMD_SSE2)
  for (; I + 2 <= N; I += 2)
    _mm_storeu_si128(
        (__m128i *)(D + I),
        _mm_sub_epi64(_mm_loadu_si128((const __m128i *)(A + I)),
                      _mm_loadu_si128((const __m128i *)(B + I))));
#endif
  for (; I != N; ++I)
    D[I] = (int64_t)((uint64_t)A[I] - (uint64_t)B[I]);
}

/// D[i] = A[i] * B[i]. Scalar on every tier (see the file comment).
inline void mulRows(int64_t *D, const int64_t *A, const int64_t *B,
                    unsigned N) {
  for (unsigned I = 0; I != N; ++I)
    D[I] = (int64_t)((uint64_t)A[I] * (uint64_t)B[I]);
}

/// D[i] = A[i] + Imm over a full row.
inline void addRowImm(int64_t *D, const int64_t *A, int64_t Imm, unsigned N) {
  unsigned I = 0;
#if defined(TALFT_LANESIMD_AVX2)
  __m256i V = _mm256_set1_epi64x(Imm);
  for (; I + 4 <= N; I += 4)
    _mm256_storeu_si256(
        (__m256i *)(D + I),
        _mm256_add_epi64(_mm256_loadu_si256((const __m256i *)(A + I)), V));
#elif defined(TALFT_LANESIMD_SSE2)
  __m128i V = _mm_set1_epi64x(Imm);
  for (; I + 2 <= N; I += 2)
    _mm_storeu_si128(
        (__m128i *)(D + I),
        _mm_add_epi64(_mm_loadu_si128((const __m128i *)(A + I)), V));
#endif
  for (; I != N; ++I)
    D[I] = (int64_t)((uint64_t)A[I] + (uint64_t)Imm);
}

/// D[i] = A[i] - Imm over a full row.
inline void subRowImm(int64_t *D, const int64_t *A, int64_t Imm, unsigned N) {
  unsigned I = 0;
#if defined(TALFT_LANESIMD_AVX2)
  __m256i V = _mm256_set1_epi64x(Imm);
  for (; I + 4 <= N; I += 4)
    _mm256_storeu_si256(
        (__m256i *)(D + I),
        _mm256_sub_epi64(_mm256_loadu_si256((const __m256i *)(A + I)), V));
#elif defined(TALFT_LANESIMD_SSE2)
  __m128i V = _mm_set1_epi64x(Imm);
  for (; I + 2 <= N; I += 2)
    _mm_storeu_si128(
        (__m128i *)(D + I),
        _mm_sub_epi64(_mm_loadu_si128((const __m128i *)(A + I)), V));
#endif
  for (; I != N; ++I)
    D[I] = (int64_t)((uint64_t)A[I] - (uint64_t)Imm);
}

/// D[i] = A[i] * Imm. Scalar on every tier.
inline void mulRowImm(int64_t *D, const int64_t *A, int64_t Imm, unsigned N) {
  for (unsigned I = 0; I != N; ++I)
    D[I] = (int64_t)((uint64_t)A[I] * (uint64_t)Imm);
}

/// D[i] = Imm over a full row (the mov broadcast).
inline void fillRow(int64_t *D, int64_t Imm, unsigned N) {
  unsigned I = 0;
#if defined(TALFT_LANESIMD_AVX2)
  __m256i V = _mm256_set1_epi64x(Imm);
  for (; I + 4 <= N; I += 4)
    _mm256_storeu_si256((__m256i *)(D + I), V);
#elif defined(TALFT_LANESIMD_SSE2)
  __m128i V = _mm_set1_epi64x(Imm);
  for (; I + 2 <= N; I += 2)
    _mm_storeu_si128((__m128i *)(D + I), V);
#endif
  for (; I != N; ++I)
    D[I] = Imm;
}

} // namespace talft::vm::simd

#endif // TALFT_VM_LANESIMD_H
