//===- vm/LaneEngine.h - Batched lockstep lane execution ------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched lane engine: advances a group of faulty continuations — all
/// resumed from the same reference step, so they start under the same
/// program counters with the same step budget and probe schedule — in
/// lockstep through one decoded micro-op stream. Each fetch (boundary
/// check, array lookup, budget arithmetic) is paid once per group instead
/// of once per continuation, and the SoA register bank (LaneState) skips
/// per-write fingerprint maintenance, recomputing lane hashes only at the
/// sparse probe boundaries.
///
/// Lanes leave the group individually, the moment their fate is known:
///
///   - a lane whose program counters diverge from the group pc (a fault
///     steered its control flow, or corrupted a pc outright) is masked off
///     and finished on the embedded scalar vm::Engine, with the remaining
///     budget and a probe continued at the current boundary — the scalar
///     boundary checks are idempotent, so the handoff is exact;
///   - a lane whose Zobrist fingerprint matches the reference timeline at
///     a probe boundary retires as Converged once the caller's Verify
///     confirms full equality;
///   - a lane that trips a cross-check (stB mismatch, jmp/bz guard, wild
///     load under Trap) retires as FaultDetected in place.
///
/// Every lane ends with exactly the RunStatus, output trace, step
/// accounting and final MachineState its own scalar runContinuation would
/// have produced: the group loop replicates the scalar boundary order
/// (exit check, convergence probe, budget, pc agreement, fetch) — verdict
/// tables built on top of lane groups are bit-identical to unbatched runs.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_VM_LANEENGINE_H
#define TALFT_VM_LANEENGINE_H

#include "sim/LaneGroup.h"
#include "vm/Engine.h"

namespace talft::vm {

class LaneState;

/// The lockstep group executor. Immutable after construction and safe to
/// share across campaign workers; all mutable state lives in the caller's
/// MachineStates and the per-call LaneState.
class LaneEngine {
public:
  explicit LaneEngine(const CodeMemory &Code) : Scalar(Code) {}

  /// The embedded scalar engine deviating lanes fall back to.
  const Engine &scalar() const { return Scalar; }

  /// Runs \p N lanes to completion. \p States are the injected
  /// continuations: ordinary (non-fault) states bound to this engine's
  /// code memory, resumed from one reference step — they share program
  /// counter payloads and in-flight instruction register contents (both
  /// asserted in debug builds; single faults on non-pc registers, memory
  /// and queue cells never break either). On return States[L] holds lane
  /// L's final state and Spec-level callbacks have seen its outputs and
  /// convergence, exactly as if each lane had run alone through
  /// Engine::runContinuation(States[L], Spec.ExitAddr, Spec.Budget, ...).
  void run(MachineState *States, unsigned N, const LaneGroupSpec &Spec,
           LaneOutcome *Out) const;

  /// Same, reusing the caller's \p Scratch (width >= N, no active lanes):
  /// campaigns running hundreds of small groups per block amortize the
  /// lane-bank allocation across them instead of paying it per group.
  void run(MachineState *States, unsigned N, const LaneGroupSpec &Spec,
           LaneOutcome *Out, LaneState &Scratch) const;

private:
  Engine Scalar;
};

} // namespace talft::vm

#endif // TALFT_VM_LANEENGINE_H
