//===- vm/Engine.h - The decoded fast-path execution engine ---------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM engine: executes the small-step semantics over a DecodedProgram
/// with a tight fetch/dispatch loop instead of re-interpreting the
/// structural AST each transition. It is observationally bit-identical to
/// the reference interpreter — same traces, statuses, step counts, rule
/// names and final MachineStates (including the materialized instruction
/// register when a budget expires between a fetch and its execution) — and
/// handles every state the fault model can produce: corrupted program
/// counters fetch-fail or get stuck exactly like the reference, and a state
/// whose instruction register was fetched before a pc-corrupting fault
/// executes that fetched instruction, not the one now under the pc.
///
/// The engine is immutable after construction and safe to share across
/// threads; all mutable execution state lives in the caller's MachineState.
/// It is bound to one CodeMemory — executing a state that references a
/// different code memory is undefined (asserted in debug builds).
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_VM_ENGINE_H
#define TALFT_VM_ENGINE_H

#include "sim/ExecEngine.h"
#include "vm/Decode.h"

#include <memory>

namespace talft::vm {

/// The decoded-program engine.
class Engine final : public ExecEngine {
public:
  explicit Engine(const CodeMemory &Code) : P(Code) {}

  const DecodedProgram &program() const { return P; }

  const char *name() const override { return "vm"; }
  StepResult step(MachineState &S, const StepPolicy &Policy) const override;
  RunResult run(MachineState &S, Addr ExitAddr, uint64_t MaxSteps,
                const StepPolicy &Policy) const override;
  ReplayResult replaySteps(MachineState &S, uint64_t NSteps,
                           OutputTrace &Trace,
                           const StepPolicy &Policy) const override;
  RunStatus runContinuation(MachineState &S, Addr ExitAddr, uint64_t Budget,
                            const StepPolicy &Policy,
                            const OutputSink &OnOutput,
                            const ConvergenceProbe *Probe) const override;
  using ExecEngine::runContinuation;

private:
  DecodedProgram P;
};

/// Convenience factory: decodes \p Code and returns the engine as an
/// ExecEngine handle. \p Code must outlive the engine.
std::unique_ptr<ExecEngine> createEngine(const CodeMemory &Code);

} // namespace talft::vm

#endif // TALFT_VM_ENGINE_H
