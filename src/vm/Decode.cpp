//===- vm/Decode.cpp ------------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "vm/Decode.h"

#include "support/Unreachable.h"

#include <cassert>

using namespace talft;
using namespace talft::vm;

MicroOp vm::decodeInst(const Inst &I) {
  MicroOp M;
  M.Rd = (uint8_t)I.Rd.denseIndex();
  M.Rs = (uint8_t)I.Rs.denseIndex();
  M.Rt = (uint8_t)I.Rt.denseIndex();
  M.ImmC = I.Imm.C;
  M.ImmN = I.Imm.N;
  switch (I.Op) {
  case Opcode::Add:
    M.Kind = I.HasImm ? MicroOpKind::AddRI : MicroOpKind::AddRR;
    return M;
  case Opcode::Sub:
    M.Kind = I.HasImm ? MicroOpKind::SubRI : MicroOpKind::SubRR;
    return M;
  case Opcode::Mul:
    M.Kind = I.HasImm ? MicroOpKind::MulRI : MicroOpKind::MulRR;
    return M;
  case Opcode::Mov:
    M.Kind = MicroOpKind::Mov;
    return M;
  case Opcode::Ld:
    M.Kind = I.C == Color::Green ? MicroOpKind::LdG : MicroOpKind::LdB;
    return M;
  case Opcode::St:
    M.Kind = I.C == Color::Green ? MicroOpKind::StG : MicroOpKind::StB;
    return M;
  case Opcode::Jmp:
    M.Kind = I.C == Color::Green ? MicroOpKind::JmpG : MicroOpKind::JmpB;
    return M;
  case Opcode::Bz:
    M.Kind = I.C == Color::Green ? MicroOpKind::BzG : MicroOpKind::BzB;
    return M;
  }
  talft_unreachable("unknown opcode");
}

DecodedProgram::DecodedProgram(const CodeMemory &Code) : Code(&Code) {
  Count = Code.size();
  if (Count == 0)
    return;
  Addr Lo = Code.begin()->first;
  Addr Hi = Lo;
  for (const auto &[A, I] : Code)
    Hi = A; // std::map iterates in address order.
  // Program layout assigns consecutive addresses from 1, so the span
  // equals the instruction count; a hand-built sparse code memory would
  // waste slots but stay correct.
  assert(Hi - Lo < (Addr)(1u << 26) && "code address span too sparse for the VM");
  Base = Lo;
  size_t Span = (size_t)(Hi - Lo + 1);
  Ops.resize(Span);
  Insts.resize(Span);
  Valid.assign(Span, 0);
  for (const auto &[A, I] : Code) {
    Ops[A - Base] = decodeInst(I);
    Insts[A - Base] = I;
    Valid[A - Base] = 1;
  }
}
