//===- vm/LaneEngine.cpp --------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// The lockstep group loop. Structure mirrors Engine::runContinuation with
// the lane dimension hoisted inside each boundary action: the program
// counters are group state (LaneState owns one shared pair), so the exit /
// probe-index / budget / fetch checks factor over the whole group, and
// execAll is the SoA image of Engine.cpp's execOp switch — same read/write
// order, same guard conditions, same fault transitions per lane — with the
// per-kind dispatch, the pc bump and the pc fingerprint paid once per
// group step instead of once per lane step.
//
// Lanes can only disagree about the next pc at a blue control transfer
// (jmpB, bzB-taken — the sole pc writers; their green counterparts just
// arm d). The first surviving lane commits the group's transfer; a
// surviving lane whose direction or target pair differs leaves the group
// mid-step, handing the scalar engine its boundary state with the current
// instruction in flight — exactly the state a solo scalar run would hold
// after the fetch — so the fallback re-executes the transfer for real.
//
//===----------------------------------------------------------------------===//

#include "vm/LaneEngine.h"

#include "support/Unreachable.h"
#include "vm/LaneSimd.h"
#include "vm/LaneState.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace talft;
using namespace talft::vm;

void LaneEngine::run(MachineState *States, unsigned N,
                     const LaneGroupSpec &Spec, LaneOutcome *Out) const {
  LaneState LS(N);
  run(States, N, Spec, Out, LS);
}

void LaneEngine::run(MachineState *States, unsigned N,
                     const LaneGroupSpec &Spec, LaneOutcome *Out,
                     LaneState &LS) const {
  assert(N >= 1 && "empty lane group");
  assert(N <= LS.width() && "scratch lane bank narrower than the group");
  assert(LS.numActive() == 0 && "scratch lane bank still holds lanes");
  const DecodedProgram &P = Scalar.program();

  // The shared in-flight instruction (lanes resume from one reference
  // step, so their instruction registers agree).
  std::optional<Inst> Inherited = States[0].IR;

  LS.resetDeferredWrites(); // a reused scratch bank may end mid-window
  LS.shareMemory(Spec.SharedMem);
  for (unsigned L = 0; L != N; ++L) {
    assert(States[L].Code == &P.code() &&
           "lane state executed on a foreign engine");
    assert(States[L].IR == Inherited &&
           "lane group mixes in-flight instructions");
    Out[L] = LaneOutcome();
    States[L].IR.reset();
    LS.load(L, std::move(States[L]));
  }

  uint64_t Taken = 0;

  // Hands the final state back to the caller's slot. The lane must
  // already be inactive (take() or retire()).
  auto Finish = [&](unsigned L, RunStatus St, MachineState S,
                    uint64_t Steps) {
    States[L] = std::move(S);
    Out[L].Status = St;
    Out[L].GroupSteps = Steps;
  };

  // A cross-check fired in lane L: the hardware-detected fault state.
  auto Detect = [&](unsigned L) {
    LS.retire(L);
    Finish(L, RunStatus::FaultDetected, MachineState::faultState(),
           Taken + 1);
  };

  // Lane L left the lockstep group (control-flow divergence at a blue
  // transfer): finish it on the scalar engine with the remaining budget,
  // the probe schedule continued at the current boundary, and — when the
  // split happens mid-step — the fetched instruction in flight, so the
  // scalar loop executes it with exactly the budget and probe indices a
  // solo run would have seen.
  auto Fallback = [&](unsigned L, const std::optional<Inst> &IR) {
    MachineState S = LS.take(L, P.code());
    S.IR = IR;
    ExecEngine::ConvergenceProbe SP;
    const ExecEngine::ConvergenceProbe *SPp = nullptr;
    if (Spec.Probe) {
      SP.Timeline = Spec.Probe->Timeline;
      SP.Size = Spec.Probe->Size;
      SP.StartStep = Spec.Probe->StartStep + Taken;
      SP.Mask = Spec.Probe->Mask;
      if (Spec.Probe->Verify)
        SP.Verify = [Probe = Spec.Probe, L](const MachineState &FS,
                                            uint64_t Idx) {
          return Probe->Verify(L, FS, Idx);
        };
      SPp = &SP;
    }
    RunStatus St = Scalar.runContinuation(
        S, Spec.ExitAddr, Spec.Budget - Taken, Spec.Policy,
        [&Sink = Spec.OnOutput, L](const QueueEntry &E) {
          if (Sink)
            Sink(L, E);
        },
        SPp);
    Out[L].Deviated = true;
    Finish(L, St, std::move(S), Taken);
  };

  // Retires every remaining lane with status St, each lane's state
  // transposed back with \p IR (the budget-mid-step case) in flight.
  auto DrainAll = [&](RunStatus St, const std::optional<Inst> &IR) {
    while (LS.numActive()) {
      unsigned L = LS.act(0);
      MachineState S = LS.take(L, P.code());
      S.IR = IR;
      Finish(L, St, std::move(S), Taken);
    }
  };

  // The SoA image of execOp: performs micro-op M (decoded from I) in
  // every active lane, then commits the group pc transition once.
  // Retiring calls (Detect / Fallback) swap-remove the current active
  // slot, so the loops re-examine the slot instead of advancing.
  auto ExecAll = [&](const MicroOp &M, const Inst &I) {
    // The ALU families never retire a lane, so the active set is stable
    // across the op: when it spans the whole bank, one row-at-a-time SIMD
    // pass (LaneSimd.h) replaces the per-lane loop — payload row op plus
    // a color-row copy/fill, with the same deferred-fingerprint snapshot
    // set() would take. Partially-retired groups keep the scalar loop,
    // which doubles as the oracle for the row path.
    auto AluRR = [&](auto F, void (*Rows)(int64_t *, const int64_t *,
                                          const int64_t *, unsigned)) {
      if (LS.fullWidthActive()) {
        unsigned W = LS.width();
        LS.beginRowWrite(M.Rd);
        Rows(LS.rowV(M.Rd), LS.rowV(M.Rs), LS.rowV(M.Rt), W);
        if (M.Rd != M.Rt)
          std::copy_n(LS.rowC(M.Rt), W, LS.rowC(M.Rd));
        LS.incrementPCs();
        return;
      }
      for (size_t K = 0; K != LS.numActive(); ++K) {
        unsigned L = LS.act(K);
        LS.set(M.Rd, L,
               Value(LS.col(M.Rt, L), (int64_t)F((uint64_t)LS.val(M.Rs, L),
                                                 (uint64_t)LS.val(M.Rt, L))));
      }
      LS.incrementPCs();
    };
    auto AluRI = [&](auto F, void (*RowImm)(int64_t *, const int64_t *,
                                            int64_t, unsigned)) {
      if (LS.fullWidthActive()) {
        unsigned W = LS.width();
        LS.beginRowWrite(M.Rd);
        RowImm(LS.rowV(M.Rd), LS.rowV(M.Rs), M.ImmN, W);
        std::fill_n(LS.rowC(M.Rd), W, M.ImmC);
        LS.incrementPCs();
        return;
      }
      for (size_t K = 0; K != LS.numActive(); ++K) {
        unsigned L = LS.act(K);
        LS.set(M.Rd, L,
               Value(M.ImmC,
                     (int64_t)F((uint64_t)LS.val(M.Rs, L), (uint64_t)M.ImmN)));
      }
      LS.incrementPCs();
    };
    switch (M.Kind) {
    case MicroOpKind::AddRR:
      AluRR([](uint64_t A, uint64_t B) { return A + B; }, &simd::addRows);
      return;
    case MicroOpKind::SubRR:
      AluRR([](uint64_t A, uint64_t B) { return A - B; }, &simd::subRows);
      return;
    case MicroOpKind::MulRR:
      AluRR([](uint64_t A, uint64_t B) { return A * B; }, &simd::mulRows);
      return;
    case MicroOpKind::AddRI:
      AluRI([](uint64_t A, uint64_t B) { return A + B; }, &simd::addRowImm);
      return;
    case MicroOpKind::SubRI:
      AluRI([](uint64_t A, uint64_t B) { return A - B; }, &simd::subRowImm);
      return;
    case MicroOpKind::MulRI:
      AluRI([](uint64_t A, uint64_t B) { return A * B; }, &simd::mulRowImm);
      return;
    case MicroOpKind::Mov:
      if (LS.fullWidthActive()) {
        unsigned W = LS.width();
        LS.beginRowWrite(M.Rd);
        simd::fillRow(LS.rowV(M.Rd), M.ImmN, W);
        std::fill_n(LS.rowC(M.Rd), W, M.ImmC);
        LS.incrementPCs();
        return;
      }
      for (size_t K = 0; K != LS.numActive(); ++K)
        LS.set(M.Rd, LS.act(K), Value(M.ImmC, M.ImmN));
      LS.incrementPCs();
      return;
    case MicroOpKind::LdG:
      for (size_t K = 0; K != LS.numActive();) {
        unsigned L = LS.act(K);
        Addr A = LS.val(M.Rs, L);
        if (std::optional<int64_t> Pending = LS.queue(L).find(A)) {
          LS.set(M.Rd, L, Value::green(*Pending));
          ++K;
          continue;
        }
        if (std::optional<int64_t> Cell = LS.memRead(L).lookup(A)) {
          LS.set(M.Rd, L, Value::green(*Cell));
          ++K;
          continue;
        }
        if (Spec.Policy.WildLoad == WildLoadPolicy::Trap) {
          Detect(L);
          continue;
        }
        LS.set(M.Rd, L, Value::green(Spec.Policy.GarbageValue));
        ++K;
      }
      LS.incrementPCs();
      return;
    case MicroOpKind::LdB:
      for (size_t K = 0; K != LS.numActive();) {
        unsigned L = LS.act(K);
        Addr A = LS.val(M.Rs, L);
        if (std::optional<int64_t> Cell = LS.memRead(L).lookup(A)) {
          LS.set(M.Rd, L, Value::blue(*Cell));
          ++K;
          continue;
        }
        if (Spec.Policy.WildLoad == WildLoadPolicy::Trap) {
          Detect(L);
          continue;
        }
        LS.set(M.Rd, L, Value::blue(Spec.Policy.GarbageValue));
        ++K;
      }
      LS.incrementPCs();
      return;
    case MicroOpKind::StG:
      for (size_t K = 0; K != LS.numActive(); ++K) {
        unsigned L = LS.act(K);
        LS.queue(L).pushFront({LS.val(M.Rd, L), LS.val(M.Rs, L)});
      }
      LS.incrementPCs();
      return;
    case MicroOpKind::StB:
      for (size_t K = 0; K != LS.numActive();) {
        unsigned L = LS.act(K);
        StoreQueue &Q = LS.queue(L);
        if (Q.empty()) {
          Detect(L);
          continue;
        }
        QueueEntry Back = Q.back();
        if (LS.val(M.Rd, L) != Back.Address || LS.val(M.Rs, L) != Back.Val) {
          Detect(L);
          continue;
        }
        Q.popBack();
        LS.memWrite(L).set(Back.Address, Back.Val);
        if (Spec.OnOutput)
          Spec.OnOutput(L, Back);
        ++K;
      }
      LS.incrementPCs();
      return;
    case MicroOpKind::JmpG:
      for (size_t K = 0; K != LS.numActive();) {
        unsigned L = LS.act(K);
        if (LS.val(LaneState::DestIdx, L) != 0) {
          Detect(L);
          continue;
        }
        LS.set(LaneState::DestIdx, L, LS.get(M.Rd, L));
        ++K;
      }
      LS.incrementPCs();
      return;
    case MicroOpKind::BzG:
      // Both directions demand d == 0 and both leave the pcs on the
      // fall-through path; only the taken direction arms d.
      for (size_t K = 0; K != LS.numActive();) {
        unsigned L = LS.act(K);
        if (LS.val(LaneState::DestIdx, L) != 0) {
          Detect(L);
          continue;
        }
        if (LS.val(M.Rs, L) == 0)
          LS.set(LaneState::DestIdx, L, LS.get(M.Rd, L));
        ++K;
      }
      LS.incrementPCs();
      return;
    case MicroOpKind::JmpB: {
      bool Have = false;
      Value NG, NB;
      for (size_t K = 0; K != LS.numActive();) {
        unsigned L = LS.act(K);
        int64_t D = LS.val(LaneState::DestIdx, L);
        if (D == 0 || LS.val(M.Rd, L) != D) {
          Detect(L);
          continue;
        }
        Value G = LS.get(LaneState::DestIdx, L);
        Value B = LS.get(M.Rd, L);
        if (!Have) {
          Have = true;
          NG = G;
          NB = B;
        } else if (!(G == NG) || !(B == NB)) {
          Fallback(L, I);
          continue;
        }
        if (Spec.Policy.Cfi)
          Spec.Policy.Cfi->recordCommit(LS.pcG().N, LS.pcB().N,
                                        LS.val(M.Rd, L));
        LS.set(LaneState::DestIdx, L, Value::green(0));
        ++K;
      }
      if (LS.numActive())
        LS.setPCs(NG, NB);
      return;
    }
    case MicroOpKind::BzB: {
      bool Have = false, GroupTaken = false;
      Value NG, NB;
      for (size_t K = 0; K != LS.numActive();) {
        unsigned L = LS.act(K);
        int64_t Z = LS.val(M.Rs, L);
        int64_t D = LS.val(LaneState::DestIdx, L);
        if (Z != 0) {
          if (D != 0) {
            Detect(L);
            continue;
          }
          if (!Have) {
            Have = true;
            GroupTaken = false;
          } else if (GroupTaken) {
            Fallback(L, I);
            continue;
          }
          ++K;
          continue;
        }
        if (D == 0 || LS.val(M.Rd, L) != D) {
          Detect(L);
          continue;
        }
        Value G = LS.get(LaneState::DestIdx, L);
        Value B = LS.get(M.Rd, L);
        if (!Have) {
          Have = true;
          GroupTaken = true;
          NG = G;
          NB = B;
        } else if (!GroupTaken || !(G == NG) || !(B == NB)) {
          Fallback(L, I);
          continue;
        }
        if (Spec.Policy.Cfi)
          Spec.Policy.Cfi->recordCommit(LS.pcG().N, LS.pcB().N,
                                        LS.val(M.Rd, L));
        LS.set(LaneState::DestIdx, L, Value::green(0));
        ++K;
      }
      if (LS.numActive()) {
        if (GroupTaken)
          LS.setPCs(NG, NB);
        else
          LS.incrementPCs();
      }
      return;
    }
    }
    talft_unreachable("unknown micro-op kind");
  };

  // The shared in-flight instruction executes first, exactly like the
  // scalar InFlight path: budget check with Taken == 0, then execute.
  if (Inherited) {
    if (Taken >= Spec.Budget) {
      DrainAll(RunStatus::OutOfSteps, Inherited);
      return;
    }
    ExecAll(decodeInst(*Inherited), *Inherited);
    ++Taken;
  }

  // Probe candidates, collected per probing boundary so a fingerprint
  // collision (take, reject, reload at the end of the active list) cannot
  // re-probe the lane at the same boundary.
  std::vector<unsigned> Cand;
  Cand.reserve(N);

  while (LS.numActive()) {
    // --- fetch boundary; every active lane has an empty IR and shares
    // --- the group pc pair ---
    Addr PcGN = LS.pcG().N;
    Addr PcBN = LS.pcB().N;

    // Exit check, once for the group.
    if (Spec.ExitAddr != 0 && PcGN == Spec.ExitAddr && PcBN == Spec.ExitAddr) {
      DrainAll(RunStatus::Halted, std::nullopt);
      return;
    }

    // Convergence probe, per lane (the timeline index and the pc-pair
    // hash contribution are shared).
    if (Spec.Probe) {
      uint64_t Idx = Spec.Probe->StartStep + Taken;
      if ((Idx & Spec.Probe->Mask) == 0 && Idx < Spec.Probe->Size &&
          Spec.Probe->Verify) {
        // Settle the deferred register-write hash deltas accumulated since
        // the previous probing boundary before consulting fingerprints.
        LS.flushFingerprints();
        uint64_t PcFp = LS.pcFingerprint();
        Cand.clear();
        for (size_t K = 0; K != LS.numActive(); ++K)
          Cand.push_back(LS.act(K));
        for (unsigned L : Cand) {
          if (LS.fingerprint(L, PcFp) != Spec.Probe->Timeline[Idx])
            continue;
          MachineState S = LS.take(L, P.code());
          if (Spec.Probe->Verify(L, S, Idx))
            Finish(L, RunStatus::Converged, std::move(S), Taken);
          else
            LS.load(L, std::move(S)); // collision — the lane rejoins
        }
        if (!LS.numActive())
          return;
      }
    }

    // Budget.
    if (Taken >= Spec.Budget) {
      DrainAll(RunStatus::OutOfSteps, std::nullopt);
      return;
    }

    // The scalar engine's pc cross-check. Group transfers only ever
    // commit payload-equal pairs, so this cannot fire for a healthy
    // group; it is kept for exactness with the scalar boundary order.
    if (PcGN != PcBN) {
      while (LS.numActive()) {
        unsigned L = LS.act(0);
        LS.retire(L);
        Finish(L, RunStatus::FaultDetected, MachineState::faultState(), Taken);
      }
      return;
    }

    // Fetch, once for the group.
    if (!P.contains(PcGN)) {
      DrainAll(RunStatus::Stuck, std::nullopt);
      return;
    }
    const MicroOp &M = P.op(PcGN);
    ++Taken;
    if (Taken >= Spec.Budget) {
      // The budget expired between the fetch and its execution: leave the
      // fetched instruction materialized in each lane's IR.
      DrainAll(RunStatus::OutOfSteps, P.inst(PcGN));
      return;
    }
    ExecAll(M, P.inst(PcGN));
    ++Taken;
  }
}
