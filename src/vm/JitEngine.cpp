//===- vm/JitEngine.cpp - The native x86-64 execution tier ----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver half of the JIT tier. Each public method mirrors the vm
/// engine's loop structure statement for statement — the same boundary
/// check order, the same step accounting, the same mid-instruction budget
/// handling — with one addition: at a clean fetch boundary whose pc has a
/// native template and at least two budget steps left, control enters the
/// emitted code and stays there until a boundary needs driver attention.
/// Single transitions (inherited instruction registers, odd budget tails,
/// the rare untemplated op) go through the embedded vm engine's step(), so
/// rule names and mid-instruction states are inherited, not re-derived.
///
//===----------------------------------------------------------------------===//

#include "vm/JitEngine.h"

#include <cassert>
#include <cstring>

using namespace talft;
using namespace talft::vm;

std::unique_ptr<ExecEngine> vm::createJitEngine(const CodeMemory &Code) {
  return std::make_unique<JitEngine>(Code);
}

namespace {

/// Boundaries until the next armed probe, for the native countdown.
/// Boundary indices advance by 2 per native instruction from \p Idx0 (the
/// entry boundary, which the driver has already probed); Mask + 1 is a
/// power of two, so either the residue parity never reaches 0 (no probe
/// ever fires natively) or the distance is a closed form.
uint64_t probeCountdown(const ExecEngine::ConvergenceProbe *Probe,
                        uint64_t Idx0) {
  constexpr uint64_t Never = uint64_t(1) << 62;
  if (!Probe || !Probe->Timeline || !Probe->Verify)
    return Never;
  uint64_t M1 = Probe->Mask + 1;
  uint64_t K;
  if (M1 <= 1) {
    K = 1;
  } else {
    uint64_t R = Idx0 & Probe->Mask;
    if (R & 1)
      return Never;
    uint64_t Half = M1 / 2;
    K = ((M1 - R) / 2) % Half;
    if (K == 0)
      K = Half;
  }
  if (Idx0 + 2 * K >= Probe->Size)
    return Never; // indices only grow: no later probe can fire either
  return K;
}

void traceSink(JitFrame *F, int64_t Address, int64_t Val) {
  static_cast<OutputTrace *>(F->OutCtx)->push_back(QueueEntry{Address, Val});
}

void onOutputSink(JitFrame *F, int64_t Address, int64_t Val) {
  const auto &Sink = *static_cast<const ExecEngine::OutputSink *>(F->OutCtx);
  if (Sink)
    Sink(QueueEntry{Address, Val});
}

} // namespace

JitEngine::NativeExit
JitEngine::enterNative(MachineState &S, const StepPolicy &Policy,
                       Addr ExitAddr, uint64_t Avail,
                       const ConvergenceProbe *Probe, uint64_t BoundaryIdx,
                       void (*OutFn)(JitFrame *, int64_t, int64_t),
                       void *OutCtx, const uint8_t *Body) const {
  assert(Avail >= 2 && "the driver pre-claims the entry instruction");
  RegisterFile &R = S.Regs;
  Value Snap[Reg::NumRegs];
  std::memcpy(Snap, R.rawCells(), sizeof(Snap));
  uint64_t FpIn = R.fingerprint();

  JitFrame F;
  F.Cells = R.rawCells();
  F.Remaining = Avail - 2; // the entry instruction's fetch + execute
  F.ProbeCountdown = probeCountdown(Probe, BoundaryIdx);
  F.ExitAddr = ExitAddr;
  F.Entries = Jit->entryTable();
  F.S = &S;
  F.Policy = &Policy;
  F.Out = OutFn;
  F.OutCtx = OutCtx;

  uint64_t Reason = Jit->enter(&F, Body);
  SideExits.fetch_add(1, std::memory_order_relaxed);

  NativeExit NE;
  NE.Taken = Avail - F.Remaining;
  if (Reason == JitExitFault) {
    // The faulting rule's fetch and execute transitions were both claimed
    // at its boundary, matching the scalar engines' counting.
    NE.Fault = true;
    S = MachineState::faultState();
    return NE;
  }
  // Deferred register-fingerprint fold: one old ^ new Zobrist term per
  // natively-written slot. d and the pcs are written by nearly every
  // template, so they fold unconditionally (a no-op XOR when untouched).
  uint64_t Fp = FpIn;
  const Value *Cur = R.rawCells();
  for (uint64_t Dirty = F.Dirty; Dirty;) {
    unsigned I = (unsigned)__builtin_ctzll(Dirty);
    Dirty &= Dirty - 1;
    Fp ^= fp::regCell(I, Snap[I]) ^ fp::regCell(I, Cur[I]);
  }
  for (unsigned I = NumGeneralRegs; I != Reg::NumRegs; ++I)
    Fp ^= fp::regCell(I, Snap[I]) ^ fp::regCell(I, Cur[I]);
  R.rawSetFingerprint(Fp);
  return NE;
}

StepResult JitEngine::step(MachineState &S, const StepPolicy &Policy) const {
  return Fallback.step(S, Policy);
}

RunResult JitEngine::run(MachineState &S, Addr ExitAddr, uint64_t MaxSteps,
                         const StepPolicy &Policy) const {
  if (!Jit || Policy.Cfi)
    return Fallback.run(S, ExitAddr, MaxSteps, Policy);
  assert(S.Code == &program().code() && "state executed on a foreign engine");
  const DecodedProgram &P = program();
  RunResult Res;
  while (true) {
    // talft::run checks the budget before the exit condition.
    if (Res.Steps >= MaxSteps) {
      Res.Status = RunStatus::OutOfSteps;
      return Res;
    }
    if (S.IR) {
      StepResult SR = Fallback.step(S, Policy);
      ++Res.Steps;
      if (SR.Status == StepStatus::Fault) {
        Res.Status = RunStatus::FaultDetected;
        return Res;
      }
      if (SR.Output)
        Res.Trace.push_back(*SR.Output);
      continue;
    }
    Value PcG = S.pcG(), PcB = S.pcB();
    if (ExitAddr != 0 && PcG.N == ExitAddr && PcB.N == ExitAddr) {
      Res.Status = RunStatus::Halted;
      return Res;
    }
    if (PcG.N != PcB.N) {
      S = MachineState::faultState();
      ++Res.Steps;
      Res.Status = RunStatus::FaultDetected;
      return Res;
    }
    if (!P.contains(PcG.N)) {
      Res.Status = RunStatus::Stuck;
      return Res;
    }
    uint64_t Avail = MaxSteps - Res.Steps;
    if (const uint8_t *Body = Avail >= 2 ? bodyFor(PcG.N) : nullptr) {
      NativeExit NE = enterNative(S, Policy, ExitAddr, Avail, nullptr, 0,
                                  &traceSink, &Res.Trace, Body);
      Res.Steps += NE.Taken;
      if (NE.Fault) {
        Res.Status = RunStatus::FaultDetected;
        return Res;
      }
      continue;
    }
    // Untemplated op or a 1-step tail: fetch here, execute on the next
    // loop iteration (which re-checks the budget with the IR in flight,
    // exactly like the vm loop's in-flight bookkeeping).
    S.IR = P.inst(PcG.N);
    ++Res.Steps;
  }
}

ReplayResult JitEngine::replaySteps(MachineState &S, uint64_t NSteps,
                                    OutputTrace &Trace,
                                    const StepPolicy &Policy) const {
  if (!Jit || Policy.Cfi)
    return Fallback.replaySteps(S, NSteps, Trace, Policy);
  assert(S.Code == &program().code() && "state executed on a foreign engine");
  const DecodedProgram &P = program();
  ReplayResult Res;
  while (Res.Taken < NSteps) {
    if (S.IR) {
      StepResult SR = Fallback.step(S, Policy);
      ++Res.Taken;
      if (SR.Status == StepStatus::Fault) {
        Res.Last = StepStatus::Fault;
        return Res;
      }
      if (SR.Output)
        Trace.push_back(*SR.Output);
      continue;
    }
    Value PcG = S.pcG(), PcB = S.pcB();
    if (PcG.N != PcB.N) {
      S = MachineState::faultState();
      ++Res.Taken;
      Res.Last = StepStatus::Fault;
      return Res;
    }
    if (!P.contains(PcG.N)) {
      Res.Last = StepStatus::Stuck;
      return Res;
    }
    uint64_t Avail = NSteps - Res.Taken;
    if (const uint8_t *Body = Avail >= 2 ? bodyFor(PcG.N) : nullptr) {
      NativeExit NE = enterNative(S, Policy, /*ExitAddr=*/0, Avail, nullptr,
                                  0, &traceSink, &Trace, Body);
      Res.Taken += NE.Taken;
      if (NE.Fault) {
        Res.Last = StepStatus::Fault;
        return Res;
      }
      continue;
    }
    S.IR = P.inst(PcG.N);
    ++Res.Taken;
  }
  return Res;
}

RunStatus JitEngine::runContinuation(MachineState &S, Addr ExitAddr,
                                     uint64_t Budget,
                                     const StepPolicy &Policy,
                                     const OutputSink &OnOutput,
                                     const ConvergenceProbe *Probe) const {
  if (!Jit || Policy.Cfi)
    return Fallback.runContinuation(S, ExitAddr, Budget, Policy, OnOutput,
                                    Probe);
  assert(S.Code == &program().code() && "state executed on a foreign engine");
  const DecodedProgram &P = program();
  uint64_t Taken = 0;
  if (S.IR) {
    // The classifier checks the budget before executing an inherited
    // in-flight instruction; with no budget the IR stays materialized.
    if (Taken >= Budget)
      return RunStatus::OutOfSteps;
    StepResult SR = Fallback.step(S, Policy);
    ++Taken;
    if (SR.Status == StepStatus::Fault)
      return RunStatus::FaultDetected;
    if (SR.Output && OnOutput)
      OnOutput(*SR.Output);
  }
  while (true) {
    Value PcG = S.pcG(), PcB = S.pcB();
    if (ExitAddr != 0 && PcG.N == ExitAddr && PcB.N == ExitAddr)
      return RunStatus::Halted;
    if (Probe) {
      uint64_t Idx = Probe->StartStep + Taken;
      if ((Idx & Probe->Mask) == 0 && Idx < Probe->Size &&
          S.fingerprint() == Probe->Timeline[Idx] && Probe->Verify &&
          Probe->Verify(S, Idx))
        return RunStatus::Converged;
    }
    if (Taken >= Budget)
      return RunStatus::OutOfSteps;
    if (PcG.N != PcB.N) {
      S = MachineState::faultState();
      return RunStatus::FaultDetected;
    }
    if (!P.contains(PcG.N))
      return RunStatus::Stuck;
    uint64_t Avail = Budget - Taken;
    if (const uint8_t *Body = Avail >= 2 ? bodyFor(PcG.N) : nullptr) {
      NativeExit NE = enterNative(
          S, Policy, ExitAddr, Avail, Probe,
          Probe ? Probe->StartStep + Taken : 0, &onOutputSink,
          const_cast<void *>(static_cast<const void *>(&OnOutput)), Body);
      Taken += NE.Taken;
      if (NE.Fault)
        return RunStatus::FaultDetected;
      continue;
    }
    S.IR = P.inst(PcG.N);
    ++Taken;
    if (Taken >= Budget)
      return RunStatus::OutOfSteps; // IR stays materialized, as in leave()
    StepResult SR = Fallback.step(S, Policy);
    ++Taken;
    if (SR.Status == StepStatus::Fault)
      return RunStatus::FaultDetected;
    if (SR.Output && OnOutput)
      OnOutput(*SR.Output);
  }
}
