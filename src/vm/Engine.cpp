//===- vm/Engine.cpp ------------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
//
// One execOp switch performs a single decoded instruction execution; the
// public entry points wrap it in loops that reproduce the exact stopping
// conditions of talft::run, talft::replaySteps and the campaign
// classifier's continuation loop. Each case mirrors its counterpart in
// sim/Step.cpp statement for statement (same read/write order, same rule
// names, same fault-state transitions); the only differences are mechanical
// — register names arrive pre-resolved, the opcode/color/immediate
// discrimination happened at decode time, and fetches index an array
// instead of a std::map.
//
//===----------------------------------------------------------------------===//

#include "vm/Engine.h"

#include "support/Unreachable.h"

#include <cassert>

using namespace talft;
using namespace talft::vm;

namespace {

/// Outcome of one instruction execution (execution never gets stuck; only
/// fetches can).
enum class Exec : uint8_t { Ok, Output, Fault };

inline Reg reg(uint8_t Dense) { return Reg::fromDenseIndex(Dense); }

/// Executes \p M against \p S. On Exec::Output, \p Out is the committed
/// store. \p Rule receives the operational rule name (as in sim/Step.cpp).
/// Does not touch S.IR; the callers own instruction-register bookkeeping.
inline Exec execOp(MachineState &S, const MicroOp &M, const StepPolicy &Policy,
                   QueueEntry &Out, const char *&Rule) {
  RegisterFile &R = S.Regs;
  switch (M.Kind) {
  // Rules op2r / op1r: the result takes the color of the second operand.
  case MicroOpKind::AddRR: {
    Value V(R.col(reg(M.Rt)),
            (int64_t)((uint64_t)R.val(reg(M.Rs)) + (uint64_t)R.val(reg(M.Rt))));
    R.incrementPCs();
    R.set(reg(M.Rd), V);
    Rule = "op2r";
    return Exec::Ok;
  }
  case MicroOpKind::SubRR: {
    Value V(R.col(reg(M.Rt)),
            (int64_t)((uint64_t)R.val(reg(M.Rs)) - (uint64_t)R.val(reg(M.Rt))));
    R.incrementPCs();
    R.set(reg(M.Rd), V);
    Rule = "op2r";
    return Exec::Ok;
  }
  case MicroOpKind::MulRR: {
    Value V(R.col(reg(M.Rt)),
            (int64_t)((uint64_t)R.val(reg(M.Rs)) * (uint64_t)R.val(reg(M.Rt))));
    R.incrementPCs();
    R.set(reg(M.Rd), V);
    Rule = "op2r";
    return Exec::Ok;
  }
  case MicroOpKind::AddRI: {
    Value V(M.ImmC, (int64_t)((uint64_t)R.val(reg(M.Rs)) + (uint64_t)M.ImmN));
    R.incrementPCs();
    R.set(reg(M.Rd), V);
    Rule = "op1r";
    return Exec::Ok;
  }
  case MicroOpKind::SubRI: {
    Value V(M.ImmC, (int64_t)((uint64_t)R.val(reg(M.Rs)) - (uint64_t)M.ImmN));
    R.incrementPCs();
    R.set(reg(M.Rd), V);
    Rule = "op1r";
    return Exec::Ok;
  }
  case MicroOpKind::MulRI: {
    Value V(M.ImmC, (int64_t)((uint64_t)R.val(reg(M.Rs)) * (uint64_t)M.ImmN));
    R.incrementPCs();
    R.set(reg(M.Rd), V);
    Rule = "op1r";
    return Exec::Ok;
  }
  case MicroOpKind::Mov:
    R.incrementPCs();
    R.set(reg(M.Rd), Value(M.ImmC, M.ImmN));
    Rule = "mov";
    return Exec::Ok;
  // Rules ldG-queue / ldG-mem / ldG-fail / ldG-rand: the green load checks
  // the store queue first.
  case MicroOpKind::LdG: {
    Addr A = R.val(reg(M.Rs));
    if (std::optional<int64_t> Pending = S.Queue.find(A)) {
      R.incrementPCs();
      R.set(reg(M.Rd), Value::green(*Pending));
      Rule = "ldG-queue";
      return Exec::Ok;
    }
    if (std::optional<int64_t> Cell = S.Mem.lookup(A)) {
      R.incrementPCs();
      R.set(reg(M.Rd), Value::green(*Cell));
      Rule = "ldG-mem";
      return Exec::Ok;
    }
    if (Policy.WildLoad == WildLoadPolicy::Trap) {
      S = MachineState::faultState();
      Rule = "ldG-fail";
      return Exec::Fault;
    }
    R.incrementPCs();
    R.set(reg(M.Rd), Value::green(Policy.GarbageValue));
    Rule = "ldG-rand";
    return Exec::Ok;
  }
  // Rules ldB-mem / ldB-fail / ldB-rand: straight to memory.
  case MicroOpKind::LdB: {
    Addr A = R.val(reg(M.Rs));
    if (std::optional<int64_t> Cell = S.Mem.lookup(A)) {
      R.incrementPCs();
      R.set(reg(M.Rd), Value::blue(*Cell));
      Rule = "ldB-mem";
      return Exec::Ok;
    }
    if (Policy.WildLoad == WildLoadPolicy::Trap) {
      S = MachineState::faultState();
      Rule = "ldB-fail";
      return Exec::Fault;
    }
    R.incrementPCs();
    R.set(reg(M.Rd), Value::blue(Policy.GarbageValue));
    Rule = "ldB-rand";
    return Exec::Ok;
  }
  // Rule stG-queue: push (Rval(rd), Rval(rs)) onto the queue front.
  case MicroOpKind::StG:
    S.Queue.pushFront({R.val(reg(M.Rd)), R.val(reg(M.Rs))});
    R.incrementPCs();
    Rule = "stG-queue";
    return Exec::Ok;
  // Rules stB-mem / stB-queue-fail / stB-mem-fail.
  case MicroOpKind::StB: {
    if (S.Queue.empty()) {
      S = MachineState::faultState();
      Rule = "stB-queue-fail";
      return Exec::Fault;
    }
    QueueEntry Back = S.Queue.back();
    if (R.val(reg(M.Rd)) != Back.Address || R.val(reg(M.Rs)) != Back.Val) {
      S = MachineState::faultState();
      Rule = "stB-mem-fail";
      return Exec::Fault;
    }
    S.Queue.popBack();
    S.Mem.set(Back.Address, Back.Val);
    R.incrementPCs();
    Out = Back;
    Rule = "stB-mem";
    return Exec::Output;
  }
  // Rules jmpG / jmpG-fail: record the green intention in d.
  case MicroOpKind::JmpG: {
    if (R.val(Reg::dest()) != 0) {
      S = MachineState::faultState();
      Rule = "jmpG-fail";
      return Exec::Fault;
    }
    Value Target = R.get(reg(M.Rd));
    R.incrementPCs();
    R.set(Reg::dest(), Target);
    Rule = "jmpG";
    return Exec::Ok;
  }
  // Rules jmpB / jmpB-fail: commit the transfer if both computations agree.
  case MicroOpKind::JmpB: {
    if (R.val(Reg::dest()) == 0 || R.val(reg(M.Rd)) != R.val(Reg::dest())) {
      S = MachineState::faultState();
      Rule = "jmpB-fail";
      return Exec::Fault;
    }
    if (Policy.Cfi)
      Policy.Cfi->recordCommit(R.val(Reg::pcG()), R.val(Reg::pcB()),
                               R.val(reg(M.Rd)));
    R.set(Reg::pcG(), R.get(Reg::dest()));
    R.set(Reg::pcB(), R.get(reg(M.Rd)));
    R.set(Reg::dest(), Value::green(0));
    Rule = "jmpB";
    return Exec::Ok;
  }
  // Rules bz-untaken / bzG-taken / bzB-taken and their -fail variants.
  case MicroOpKind::BzG: {
    int64_t Z = R.val(reg(M.Rs));
    int64_t D = R.val(Reg::dest());
    if (Z != 0) {
      if (D != 0) {
        S = MachineState::faultState();
        Rule = "bz-untaken-fail";
        return Exec::Fault;
      }
      R.incrementPCs();
      Rule = "bz-untaken";
      return Exec::Ok;
    }
    if (D != 0) {
      S = MachineState::faultState();
      Rule = "bzG-taken-fail";
      return Exec::Fault;
    }
    Value Target = R.get(reg(M.Rd));
    R.incrementPCs();
    R.set(Reg::dest(), Target);
    Rule = "bzG-taken";
    return Exec::Ok;
  }
  case MicroOpKind::BzB: {
    int64_t Z = R.val(reg(M.Rs));
    int64_t D = R.val(Reg::dest());
    if (Z != 0) {
      if (D != 0) {
        S = MachineState::faultState();
        Rule = "bz-untaken-fail";
        return Exec::Fault;
      }
      R.incrementPCs();
      Rule = "bz-untaken";
      return Exec::Ok;
    }
    if (D == 0 || R.val(reg(M.Rd)) != D) {
      S = MachineState::faultState();
      Rule = "bzB-taken-fail";
      return Exec::Fault;
    }
    if (Policy.Cfi)
      Policy.Cfi->recordCommit(R.val(Reg::pcG()), R.val(Reg::pcB()),
                               R.val(reg(M.Rd)));
    R.set(Reg::pcG(), R.get(Reg::dest()));
    R.set(Reg::pcB(), R.get(reg(M.Rd)));
    R.set(Reg::dest(), Value::green(0));
    Rule = "bzB-taken";
    return Exec::Ok;
  }
  }
  talft_unreachable("unknown micro-op kind");
}

/// The in-flight instruction of a fused loop: either inherited from the
/// state's instruction register (whose pc may no longer match it after a
/// fault) or fetched from the decoded array (pc still points at it, since
/// pcs advance only at execution). Keeping it out of S.IR during the loop
/// avoids a std::optional<Inst> store per fetch; leave() rematerializes
/// S.IR when a loop stops between a fetch and its execution.
struct InFlight {
  const MicroOp *Op = nullptr;
  MicroOp Inherited;
  Inst InheritedInst;
  bool FromIR = false;

  explicit InFlight(MachineState &S) {
    if (S.IR) {
      InheritedInst = *S.IR;
      Inherited = decodeInst(InheritedInst);
      Op = &Inherited;
      FromIR = true;
      S.IR.reset();
    }
  }

  /// Restores the instruction register before returning to the caller.
  void leave(MachineState &S, const DecodedProgram &P) const {
    if (Op)
      S.IR = FromIR ? InheritedInst : P.inst(S.pcG().N);
  }
};

} // namespace

std::unique_ptr<ExecEngine> vm::createEngine(const CodeMemory &Code) {
  return std::make_unique<Engine>(Code);
}

StepResult Engine::step(MachineState &S, const StepPolicy &Policy) const {
  assert(!S.isFault() && "stepping the fault state");
  assert(S.Code == &P.code() && "state executed on a foreign engine");

  if (S.IR) {
    MicroOp M = decodeInst(*S.IR);
    QueueEntry Out;
    const char *Rule = nullptr;
    Exec E = execOp(S, M, Policy, Out, Rule);
    if (E == Exec::Fault)
      return {StepStatus::Fault, std::nullopt, Rule};
    S.IR.reset();
    if (E == Exec::Output)
      return {StepStatus::Ok, Out, Rule};
    return {StepStatus::Ok, std::nullopt, Rule};
  }

  // Rules fetch / fetch-fail.
  Value PcG = S.pcG(), PcB = S.pcB();
  if (PcG.N != PcB.N) {
    S = MachineState::faultState();
    return {StepStatus::Fault, std::nullopt, "fetch-fail"};
  }
  if (!P.contains(PcG.N))
    return {StepStatus::Stuck, std::nullopt, nullptr};
  S.IR = P.inst(PcG.N);
  return {StepStatus::Ok, std::nullopt, "fetch"};
}

RunResult Engine::run(MachineState &S, Addr ExitAddr, uint64_t MaxSteps,
                      const StepPolicy &Policy) const {
  assert(S.Code == &P.code() && "state executed on a foreign engine");
  RunResult Res;
  InFlight Cur(S);
  while (true) {
    // talft::run checks the budget before the exit condition.
    if (Res.Steps >= MaxSteps) {
      Res.Status = RunStatus::OutOfSteps;
      Cur.leave(S, P);
      return Res;
    }
    if (!Cur.Op) {
      Value PcG = S.pcG(), PcB = S.pcB();
      if (ExitAddr != 0 && PcG.N == ExitAddr && PcB.N == ExitAddr) {
        Res.Status = RunStatus::Halted;
        return Res;
      }
      if (PcG.N != PcB.N) {
        S = MachineState::faultState();
        ++Res.Steps;
        Res.Status = RunStatus::FaultDetected;
        return Res;
      }
      if (!P.contains(PcG.N)) {
        Res.Status = RunStatus::Stuck;
        return Res;
      }
      Cur.Op = &P.op(PcG.N);
      Cur.FromIR = false;
      ++Res.Steps;
      continue;
    }
    QueueEntry Out;
    const char *Rule;
    Exec E = execOp(S, *Cur.Op, Policy, Out, Rule);
    Cur.Op = nullptr;
    ++Res.Steps;
    if (E == Exec::Output) {
      Res.Trace.push_back(Out);
    } else if (E == Exec::Fault) {
      Res.Status = RunStatus::FaultDetected;
      return Res;
    }
  }
}

ReplayResult Engine::replaySteps(MachineState &S, uint64_t NSteps,
                                 OutputTrace &Trace,
                                 const StepPolicy &Policy) const {
  assert(S.Code == &P.code() && "state executed on a foreign engine");
  ReplayResult Res;
  InFlight Cur(S);
  while (Res.Taken < NSteps) {
    if (!Cur.Op) {
      Value PcG = S.pcG(), PcB = S.pcB();
      if (PcG.N != PcB.N) {
        S = MachineState::faultState();
        ++Res.Taken;
        Res.Last = StepStatus::Fault;
        return Res;
      }
      if (!P.contains(PcG.N)) {
        Res.Last = StepStatus::Stuck;
        return Res;
      }
      Cur.Op = &P.op(PcG.N);
      Cur.FromIR = false;
      ++Res.Taken;
      continue;
    }
    QueueEntry Out;
    const char *Rule;
    Exec E = execOp(S, *Cur.Op, Policy, Out, Rule);
    Cur.Op = nullptr;
    ++Res.Taken;
    if (E == Exec::Output) {
      Trace.push_back(Out);
    } else if (E == Exec::Fault) {
      Res.Last = StepStatus::Fault;
      return Res;
    }
  }
  Cur.leave(S, P);
  return Res;
}

RunStatus Engine::runContinuation(MachineState &S, Addr ExitAddr,
                                  uint64_t Budget, const StepPolicy &Policy,
                                  const OutputSink &OnOutput,
                                  const ConvergenceProbe *Probe) const {
  assert(S.Code == &P.code() && "state executed on a foreign engine");
  uint64_t Taken = 0;
  InFlight Cur(S);
  while (true) {
    // The classifier checks the exit condition before the budget: a
    // continuation arriving at the exit with zero budget left halts.
    if (!Cur.Op) {
      Value PcG = S.pcG(), PcB = S.pcB();
      if (ExitAddr != 0 && PcG.N == ExitAddr && PcB.N == ExitAddr)
        return RunStatus::Halted;
      // Convergence probe at the fetch boundary (S.IR is empty here, so S
      // is the complete machine state), after the exit check and before
      // the budget check — the same ordering as the reference engine.
      if (Probe) {
        uint64_t Idx = Probe->StartStep + Taken;
        if ((Idx & Probe->Mask) == 0 && Idx < Probe->Size &&
            S.fingerprint() == Probe->Timeline[Idx] && Probe->Verify &&
            Probe->Verify(S, Idx))
          return RunStatus::Converged;
      }
      if (Taken >= Budget) {
        Cur.leave(S, P);
        return RunStatus::OutOfSteps;
      }
      if (PcG.N != PcB.N) {
        S = MachineState::faultState();
        return RunStatus::FaultDetected;
      }
      if (!P.contains(PcG.N)) {
        return RunStatus::Stuck;
      }
      Cur.Op = &P.op(PcG.N);
      Cur.FromIR = false;
      ++Taken;
      continue;
    }
    if (Taken >= Budget) {
      Cur.leave(S, P);
      return RunStatus::OutOfSteps;
    }
    QueueEntry Out;
    const char *Rule;
    Exec E = execOp(S, *Cur.Op, Policy, Out, Rule);
    Cur.Op = nullptr;
    ++Taken;
    if (E == Exec::Output) {
      if (OnOutput)
        OnOutput(Out);
    } else if (E == Exec::Fault) {
      return RunStatus::FaultDetected;
    }
  }
}
