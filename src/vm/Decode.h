//===- vm/Decode.h - Lowering a CodeMemory into a micro-op array ----------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A DecodedProgram is the VM's image of one CodeMemory: a contiguous
/// micro-op array indexed by code address (offset by the lowest address, so
/// the standard layout starting at 1 wastes one slot). The domain of the
/// array matches the domain of the code memory exactly — fetches from
/// in-span holes and out-of-span addresses are both misses, preserving the
/// stuck/fetch-fail behavior of the structural semantics bit-for-bit even
/// when a fault corrupts a program counter to a wild address.
///
/// Decoding is done once per program; the result is immutable and shared
/// read-only by all campaign workers.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_VM_DECODE_H
#define TALFT_VM_DECODE_H

#include "isa/Memory.h"
#include "vm/MicroOp.h"

#include <vector>

namespace talft::vm {

/// The dense, immutable decode of one CodeMemory.
class DecodedProgram {
public:
  /// Decodes every instruction of \p Code. The CodeMemory must outlive the
  /// decoded program (states executed against it reference the same code).
  explicit DecodedProgram(const CodeMemory &Code);

  const CodeMemory &code() const { return *Code; }

  /// Mirrors CodeMemory::contains.
  bool contains(Addr A) const {
    return A >= Base && A < Base + (Addr)Ops.size() && Valid[A - Base];
  }

  /// The micro-op at \p A. Requires contains(A).
  const MicroOp &op(Addr A) const { return Ops[A - Base]; }

  /// The structural instruction at \p A (for materializing the machine's
  /// instruction register at fused-loop boundaries). Requires contains(A).
  const Inst &inst(Addr A) const { return Insts[A - Base]; }

  /// Number of decoded instructions.
  size_t size() const { return Count; }

  /// Lowest code address (the array's index offset).
  Addr base() const { return Base; }

  /// Dense span of the array in address slots (holes included); slot I
  /// corresponds to address base() + I.
  size_t span() const { return Ops.size(); }

  /// The micro-op at dense slot \p I (valid only when the slot is).
  const MicroOp &opAtSlot(size_t I) const { return Ops[I]; }

  /// Whether dense slot \p I holds a decoded instruction.
  bool validSlot(size_t I) const { return Valid[I]; }

private:
  const CodeMemory *Code;
  Addr Base = 0;
  size_t Count = 0;
  std::vector<MicroOp> Ops;
  std::vector<Inst> Insts;
  /// Ops/Insts slots inside the address span but outside Dom(C).
  std::vector<uint8_t> Valid;
};

} // namespace talft::vm

#endif // TALFT_VM_DECODE_H
