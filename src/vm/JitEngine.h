//===- vm/JitEngine.h - The native x86-64 execution tier ------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JIT engine: lowers the decoded micro-op array to native x86-64 at
/// construction (JitEmitter.h) and drives it behind the unchanged
/// ExecEngine contract. The C++ driver owns every boundary decision —
/// exit, convergence probe, budget, pc agreement, fetch misses — in the
/// exact per-mode order of the vm engine; native code only executes whole
/// instruction runs between boundaries, side-exiting whenever a boundary
/// condition needs attention. That split keeps the engine observationally
/// bit-identical to vm/reference on every state the fault model produces,
/// while loops chain natively at an order of magnitude less dispatch cost.
///
/// On hosts where code pages cannot be mapped (non-x86-64, hardened W^X
/// refusing PROT_EXEC) the engine still answers to name() == "jit" but
/// delegates every call to its embedded vm engine; native() reports the
/// capability so campaign JSON can surface the fallback.
///
/// CFI-checked runs (StepPolicy::Cfi) delegate to the vm engine as well:
/// commit recording is a cross-check path, not a hot path.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_VM_JITENGINE_H
#define TALFT_VM_JITENGINE_H

#include "vm/Engine.h"
#include "vm/JitEmitter.h"

#include <atomic>

namespace talft::vm {

/// The native execution tier. Immutable after construction and safe to
/// share across campaign workers (side-exit counting is relaxed-atomic).
class JitEngine final : public ExecEngine {
public:
  explicit JitEngine(const CodeMemory &Code)
      : Fallback(Code), Jit(emitJitProgram(Fallback.program())) {}

  const char *name() const override { return "jit"; }

  /// True when native code was actually emitted (x86-64 with a usable
  /// W^X mapping); false means every call delegates to the vm engine.
  bool native() const { return Jit != nullptr; }

  /// Micro-ops lowered to native templates (0 under the fallback).
  uint64_t blocksCompiled() const { return Jit ? Jit->blocksCompiled() : 0; }
  /// Emitted code size in bytes (0 under the fallback).
  uint64_t codeBytes() const { return Jit ? Jit->codeBytes() : 0; }
  /// Native-to-driver side-exits taken so far, across all threads.
  uint64_t sideExits() const {
    return SideExits.load(std::memory_order_relaxed);
  }

  const DecodedProgram &program() const { return Fallback.program(); }

  StepResult step(MachineState &S, const StepPolicy &Policy) const override;
  RunResult run(MachineState &S, Addr ExitAddr, uint64_t MaxSteps,
                const StepPolicy &Policy) const override;
  ReplayResult replaySteps(MachineState &S, uint64_t NSteps,
                           OutputTrace &Trace,
                           const StepPolicy &Policy) const override;
  RunStatus runContinuation(MachineState &S, Addr ExitAddr, uint64_t Budget,
                            const StepPolicy &Policy,
                            const OutputSink &OnOutput,
                            const ConvergenceProbe *Probe) const override;

private:
  struct NativeExit {
    uint64_t Taken = 0;
    bool Fault = false;
  };
  NativeExit enterNative(MachineState &S, const StepPolicy &Policy,
                         Addr ExitAddr, uint64_t Avail,
                         const ConvergenceProbe *Probe, uint64_t BoundaryIdx,
                         void (*OutFn)(JitFrame *, int64_t, int64_t),
                         void *OutCtx, const uint8_t *Body) const;
  const uint8_t *bodyFor(Addr A) const {
    return Jit->body((size_t)(A - Jit->base()));
  }

  Engine Fallback;
  std::unique_ptr<JitProgram> Jit;
  mutable std::atomic<uint64_t> SideExits{0};
};

/// Factory mirroring vm::createEngine.
std::unique_ptr<ExecEngine> createJitEngine(const CodeMemory &Code);

} // namespace talft::vm

#endif // TALFT_VM_JITENGINE_H
