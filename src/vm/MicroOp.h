//===- vm/MicroOp.h - Pre-decoded micro-operations ------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM's instruction word: one TALFT instruction lowered into a flat,
/// fully resolved form the dispatch loop can execute without consulting the
/// structural Inst again. Decoding specializes everything the structural
/// interpreter re-derives per step:
///
///   - the opcode/color/immediate-form discriminators collapse into one
///     dense MicroOpKind (the colored-value checks of Step.cpp's Executor
///     become distinct cases, e.g. Ld splits into LdG / LdB);
///   - register names are resolved to dense register-file indices;
///   - the immediate's color and payload are unpacked (label immediates
///     were already resolved to addresses at program layout).
///
/// A micro-op is 24 bytes and the decoded program is a contiguous array
/// indexed by code address, so the fetch-execute loop touches one cache
/// line per instruction instead of chasing a std::map.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_VM_MICROOP_H
#define TALFT_VM_MICROOP_H

#include "isa/Inst.h"

namespace talft::vm {

/// Fully discriminated operation kinds: opcode x color x immediate-form.
enum class MicroOpKind : uint8_t {
  AddRR, // rd <- rs op rt, result colored like rt
  SubRR,
  MulRR,
  AddRI, // rd <- rs op imm, result colored like the immediate
  SubRI,
  MulRI,
  Mov,  // rd <- imm
  LdG,  // queue-forwarding green load
  LdB,  // memory-only blue load
  StG,  // enqueue (addr=rd, val=rs)
  StB,  // compare with the queue back, commit or detect
  JmpG, // record the green intention in d
  JmpB, // commit the transfer or detect
  BzG,  // conditional version of JmpG (test register rs)
  BzB,  // conditional version of JmpB
};

/// One decoded instruction.
struct MicroOp {
  MicroOpKind Kind = MicroOpKind::Mov;
  /// Dense register-file indices (Reg::denseIndex()).
  uint8_t Rd = 0;
  uint8_t Rs = 0;
  uint8_t Rt = 0;
  /// Immediate color (AluRI result color; Mov value color).
  Color ImmC = Color::Green;
  /// Immediate payload.
  int64_t ImmN = 0;
};

static_assert(sizeof(MicroOp) <= 24, "micro-ops are meant to stay dense");

/// Lowers one structural instruction. Total: every well-formed Inst has a
/// micro-op image.
MicroOp decodeInst(const Inst &I);

} // namespace talft::vm

#endif // TALFT_VM_MICROOP_H
