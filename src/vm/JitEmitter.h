//===- vm/JitEmitter.h - Lowering micro-ops to x86-64 ---------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a DecodedProgram to straight-line x86-64 templates, one per
/// micro-op, specialized by opcode x color x immediate form exactly like
/// Decode.cpp's lowering. The emitted code executes whole instruction runs
/// between *fetch boundaries* without leaving native code:
///
///   - the register bank stays spilled in the MachineState's dense cell
///     array (rbx points at cell 0; cell i's color byte is at i*16 and its
///     payload at i*16+8), so states remain bit-compatible with every
///     other engine and a side-exit needs no register reconstruction;
///   - register-file fingerprint maintenance is *deferred*: templates set
///     a dirty bit (r15) per general register they write, and the driver
///     folds old-cell ^ new-cell Zobrist terms for dirty slots (plus d and
///     both pcs, always) when native code exits — the fingerprint is only
///     observable at boundaries, where the fold has already happened;
///   - every boundary re-checks, in order, the exit address, the
///     convergence-probe countdown and the 2-step budget, side-exiting to
///     the C++ driver whenever any of them needs attention (the driver
///     re-evaluates the full per-mode boundary contract, so run /
///     replaySteps / runContinuation ordering semantics live in exactly
///     one place);
///   - jmpB / taken bzB commits chain directly to the target's boundary
///     code through an entry table (rbp), keeping loops native;
///   - loads and stores call out to C++ helpers that reuse the store
///     queue and memory abstractions (whose own fingerprints stay eagerly
///     maintained).
///
/// Faults side-exit with a distinct reason; the driver then installs the
/// canonical fault state, so no template ever needs to build one.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_VM_JITEMITTER_H
#define TALFT_VM_JITEMITTER_H

#include "support/ExecMem.h"
#include "vm/Decode.h"

#include <memory>
#include <vector>

namespace talft {
struct MachineState;
struct StepPolicy;
} // namespace talft

namespace talft::vm {

/// The spilled execution context shared between the driver and emitted
/// code. Field offsets are part of the emitter ABI (asserted in the
/// implementation); the emitted prologue pins Cells in rbx, this frame in
/// r12, Remaining in r13, ProbeCountdown in r14, the dirty mask in r15
/// and Entries in rbp.
struct JitFrame {
  /// The state's dense register cells (RegisterFile::rawCells()).
  Value *Cells = nullptr;
  /// Remaining step budget, *after* the driver pre-claims the entry
  /// instruction's two transitions. Written back on exit.
  uint64_t Remaining = 0;
  /// Boundaries left until the next convergence probe (huge = never).
  /// Written back on exit.
  uint64_t ProbeCountdown = 0;
  /// Out: bit i set = general register i was written natively.
  uint64_t Dirty = 0;
  /// Exit block address (0 = none; code addresses are never 0).
  int64_t ExitAddr = 0;
  /// Boundary-entry table indexed by dense slot; null = no native code.
  const uint8_t *const *Entries = nullptr;
  /// The state being executed (helpers reach its queue and memory).
  MachineState *S = nullptr;
  const StepPolicy *Policy = nullptr;
  /// Output sink for committed stores (stB); may be null.
  void (*Out)(JitFrame *F, int64_t Address, int64_t Val) = nullptr;
  void *OutCtx = nullptr;
};

/// Why emitted code returned to the driver.
enum : uint64_t {
  JitExitBoundary = 0, ///< at a clean fetch boundary (exit/probe/budget/chain miss)
  JitExitFault = 1,    ///< an execution rule faulted; driver installs faultState
};

/// The native image of one DecodedProgram: W^X code plus the per-slot
/// entry tables. Immutable after emission and shared read-only across
/// campaign workers (all mutable execution state lives in the JitFrame).
class JitProgram {
public:
  using EnterFn = uint64_t (*)(JitFrame *, const void *Target);

  /// Runs native code starting at \p Body until a side-exit; returns a
  /// JitExit* reason. The caller owns boundary checks and the 2-step
  /// pre-claim for the entry instruction.
  uint64_t enter(JitFrame *F, const uint8_t *Body) const {
    return Enter(F, Body);
  }

  /// Body entry for dense slot \p I (boundary checks skipped); null when
  /// the slot has no native code.
  const uint8_t *body(size_t Slot) const { return Body[Slot]; }

  /// The boundary-entry table for JitFrame::Entries.
  const uint8_t *const *entryTable() const { return Boundary.data(); }

  Addr base() const { return ProgBase; }
  size_t span() const { return Boundary.size(); }

  /// Number of micro-ops lowered to native templates.
  uint64_t blocksCompiled() const { return Blocks; }
  /// Bytes of emitted machine code (before page rounding).
  uint64_t codeBytes() const { return Bytes; }

private:
  friend std::unique_ptr<JitProgram> emitJitProgram(const DecodedProgram &P);

  ExecMem Mem;
  EnterFn Enter = nullptr;
  std::vector<const uint8_t *> Boundary;
  std::vector<const uint8_t *> Body;
  Addr ProgBase = 0;
  uint64_t Blocks = 0;
  uint64_t Bytes = 0;
};

/// Emits native code for \p P. Returns null when the host cannot execute
/// JIT code (non-x86-64, W^X mapping refused) or the program's address
/// range does not fit the emitter's immediates; callers then stay on the
/// interpreter tier.
std::unique_ptr<JitProgram> emitJitProgram(const DecodedProgram &P);

} // namespace talft::vm

#endif // TALFT_VM_JITEMITTER_H
