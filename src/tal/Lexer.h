//===- tal/Lexer.h - Tokenizer for .tal assembly ---------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizes the textual TALFT assembly format. An input is a sequence of
/// top-level forms:
///
///   entry <label>
///   exit <label>
///   data { <addr>: <btype> = <int | @label> ... }
///   block <label> { pre { ... } <instructions> }
///
/// Comments run from "//" to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_TAL_LEXER_H
#define TALFT_TAL_LEXER_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace talft {

/// Token kinds of the .tal grammar.
enum class TokKind : uint8_t {
  Eof,
  Ident,   // labels, mnemonics, keywords, variable names
  Number,  // decimal integer (unsigned; '-' is a separate token)
  Reg,     // r0..r63 or d
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Colon,
  Comma,
  Semi,
  Equal,
  Arrow, // =>
  At,    // @
  Plus,
  Minus,
  Star,
};

/// One token with its source location.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text; // Ident text; Reg text ("r5" / "d").
  int64_t Num = 0;  // Number payload.
  SourceLoc Loc;

  bool is(TokKind K) const { return Kind == K; }
  /// True for an Ident token with exactly this text.
  bool isIdent(std::string_view S) const {
    return Kind == TokKind::Ident && Text == S;
  }
};

/// Tokenizes \p Input. On a lexical error, returns false and sets
/// \p ErrorMsg / \p ErrorLoc.
bool lexTal(std::string_view Input, std::vector<Token> &Out,
            std::string &ErrorMsg, SourceLoc &ErrorLoc);

} // namespace talft

#endif // TALFT_TAL_LEXER_H
