//===- tal/Printer.cpp ----------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "tal/Printer.h"

#include "support/Unreachable.h"

using namespace talft;

std::string talft::printBasicType(const BasicType *B) {
  switch (B->kind()) {
  case BasicTypeKind::Int:
    return "int";
  case BasicTypeKind::Ref:
    return printBasicType(B->refPointee()) + " ref";
  case BasicTypeKind::Code:
    return "code(@" + B->codePrecondition()->Label + ")";
  }
  talft_unreachable("unknown basic type kind");
}

std::string talft::printRegType(const RegType &T) {
  std::string Out;
  if (T.isConditional())
    Out += T.Guard->str() + " = 0 => ";
  Out += "(";
  Out += colorLetter(T.C);
  Out += ", " + printBasicType(T.B) + ", " + T.E->str() + ")";
  return Out;
}

std::string talft::printPrecondition(const StaticContext &Pre) {
  std::string Out;
  if (!Pre.Delta.empty()) {
    Out += "forall ";
    bool First = true;
    for (const auto &[Name, K] : Pre.Delta) {
      if (!First)
        Out += ", ";
      First = false;
      Out += Name;
      Out += K == ExprKind::Int ? ": int" : ": mem";
    }
    Out += ";\n";
  }
  for (const auto &[Key, T] : Pre.Gamma) {
    Out += "        " + RegFileType::regForKey(Key).str() + ": " +
           printRegType(T) + ";\n";
  }
  if (Pre.Pc)
    Out += "        pc " + Pre.Pc->str() + ";\n";
  Out += "        queue [";
  bool First = true;
  for (const QueueTypeEntry &Q : Pre.Queue) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "(" + Q.AddrE->str() + ", " + Q.ValE->str() + ")";
  }
  Out += "];\n";
  if (Pre.MemExpr)
    Out += "        mem " + Pre.MemExpr->str();
  return Out;
}

std::string talft::printTalProgram(const Program &Prog) {
  std::string Out;
  if (!Prog.EntryLabel.empty())
    Out += "entry " + Prog.EntryLabel + "\n";
  if (!Prog.ExitLabel.empty())
    Out += "exit " + Prog.ExitLabel + "\n";
  Out += "\n";

  if (!Prog.data().empty()) {
    Out += "data {\n";
    for (const DataCell &Cell : Prog.data()) {
      Out += "  " + std::to_string(Cell.Address) + ": " +
             printBasicType(Cell.Type) + " = ";
      Out += Cell.InitLabel.empty() ? std::to_string(Cell.Init)
                                    : "@" + Cell.InitLabel;
      Out += "\n";
    }
    Out += "}\n\n";
  }

  for (const Block &B : Prog.blocks()) {
    Out += "block " + B.Label + " {\n";
    Out += "  pre { " + printPrecondition(*B.Pre) + " }\n";
    for (const ProgInst &PI : B.Insts) {
      if (!PI.ImmLabel.empty()) {
        // Re-render the immediate as its label reference.
        Inst I = PI.I;
        std::string Line = I.str();
        // The numeric immediate sits at the end; rebuild it textually.
        std::string ImmText = I.Imm.str();
        size_t Where = Line.rfind(ImmText);
        assert(Where != std::string::npos && "immediate not in rendering");
        Line.replace(Where, ImmText.size(),
                     std::string(colorLetter(I.Imm.C)) + " @" + PI.ImmLabel);
        Out += "  " + Line + "\n";
        continue;
      }
      Out += "  " + PI.I.str() + "\n";
    }
    Out += "}\n\n";
  }
  return Out;
}
