//===- tal/Printer.h - Rendering programs back to .tal text ---------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a Program in the concrete .tal syntax accepted by the parser,
/// annotations included, so that parse ∘ print is the identity on the
/// checked structure (round-trip tested).
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_TAL_PRINTER_H
#define TALFT_TAL_PRINTER_H

#include "tal/Program.h"

#include <string>

namespace talft {

/// Renders a basic type in source syntax ("int", "code(@l) ref", ...).
std::string printBasicType(const BasicType *B);

/// Renders a register type in source syntax.
std::string printRegType(const RegType &T);

/// Renders a full precondition clause list (without the "pre" keyword).
std::string printPrecondition(const StaticContext &Pre);

/// Renders the whole program.
std::string printTalProgram(const Program &Prog);

} // namespace talft

#endif // TALFT_TAL_PRINTER_H
