//===- tal/Lexer.cpp ------------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "tal/Lexer.h"

#include "isa/Reg.h"
#include "support/StringUtils.h"

using namespace talft;

namespace {

class Lexer {
public:
  Lexer(std::string_view Input) : Input(Input) {}

  bool run(std::vector<Token> &Out, std::string &ErrorMsg,
           SourceLoc &ErrorLoc) {
    while (true) {
      skipTrivia();
      SourceLoc Loc(Line, Col);
      if (atEnd()) {
        Out.push_back({TokKind::Eof, "", 0, Loc});
        return true;
      }
      char C = peek();
      if (isIdentStart(C)) {
        Out.push_back(lexWord(Loc));
        continue;
      }
      if (C >= '0' && C <= '9') {
        Out.push_back(lexNumber(Loc));
        continue;
      }
      TokKind K;
      switch (C) {
      case '{':
        K = TokKind::LBrace;
        break;
      case '}':
        K = TokKind::RBrace;
        break;
      case '(':
        K = TokKind::LParen;
        break;
      case ')':
        K = TokKind::RParen;
        break;
      case '[':
        K = TokKind::LBracket;
        break;
      case ']':
        K = TokKind::RBracket;
        break;
      case ':':
        K = TokKind::Colon;
        break;
      case ',':
        K = TokKind::Comma;
        break;
      case ';':
        K = TokKind::Semi;
        break;
      case '@':
        K = TokKind::At;
        break;
      case '+':
        K = TokKind::Plus;
        break;
      case '-':
        K = TokKind::Minus;
        break;
      case '*':
        K = TokKind::Star;
        break;
      case '=':
        advance();
        if (!atEnd() && peek() == '>') {
          advance();
          Out.push_back({TokKind::Arrow, "", 0, Loc});
          continue;
        }
        Out.push_back({TokKind::Equal, "", 0, Loc});
        continue;
      default:
        ErrorMsg = formatv("unexpected character '%c'", C);
        ErrorLoc = Loc;
        return false;
      }
      advance();
      Out.push_back({K, "", 0, Loc});
    }
  }

private:
  std::string_view Input;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;

  bool atEnd() const { return Pos >= Input.size(); }
  char peek() const { return Input[Pos]; }
  char peekAt(size_t Off) const {
    return Pos + Off < Input.size() ? Input[Pos + Off] : '\0';
  }

  void advance() {
    if (Input[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '/' && peekAt(1) == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      return;
    }
  }

  static bool isIdentStart(char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
           C == '$';
  }
  static bool isIdentChar(char C) {
    return isIdentStart(C) || (C >= '0' && C <= '9') || C == '.';
  }

  Token lexWord(SourceLoc Loc) {
    size_t Start = Pos;
    while (!atEnd() && isIdentChar(peek()))
      advance();
    std::string Text(Input.substr(Start, Pos - Start));
    // Register names lex as their own kind.
    if (Text == "d")
      return {TokKind::Reg, Text, 0, Loc};
    if (Text.size() >= 2 && Text[0] == 'r') {
      std::optional<int64_t> N = parseInt64(Text.substr(1));
      if (N && *N >= 0 && *N < (int64_t)NumGeneralRegs)
        return {TokKind::Reg, Text, *N, Loc};
    }
    return {TokKind::Ident, Text, 0, Loc};
  }

  Token lexNumber(SourceLoc Loc) {
    size_t Start = Pos;
    while (!atEnd() && peek() >= '0' && peek() <= '9')
      advance();
    std::optional<int64_t> N = parseInt64(Input.substr(Start, Pos - Start));
    // Overflowing literals saturate; the parser reports them rarely enough
    // that a lexical clamp keeps the token stream simple.
    return {TokKind::Number, "", N ? *N : INT64_MAX, Loc};
  }
};

} // namespace

bool talft::lexTal(std::string_view Input, std::vector<Token> &Out,
                   std::string &ErrorMsg, SourceLoc &ErrorLoc) {
  return Lexer(Input).run(Out, ErrorMsg, ErrorLoc);
}
