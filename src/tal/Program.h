//===- tal/Program.h - TALFT programs: blocks, data, layout ---------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program is the unit the assembler produces and the type checker
/// consumes: a sequence of labelled code blocks, each carrying its declared
/// precondition (a code type), plus a data section of typed, initialized
/// memory cells.
///
/// Layout assigns consecutive code addresses starting at 1 (address 0 is
/// reserved as the "no pending transfer" sentinel), resolves label
/// references in immediates and data initializers, and builds the machine's
/// CodeMemory and the heap typing Ψ.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_TAL_PROGRAM_H
#define TALFT_TAL_PROGRAM_H

#include "isa/MachineState.h"
#include "support/Diagnostics.h"
#include "support/Error.h"
#include "types/HeapTyping.h"
#include "types/TypeContext.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace talft {

/// An instruction whose immediate may still reference a label.
struct ProgInst {
  Inst I;
  /// When nonempty, the immediate's payload is the address of this label
  /// (resolved at layout).
  std::string ImmLabel;
  SourceLoc Loc;
};

/// One labelled code block.
struct Block {
  std::string Label;
  /// The declared precondition; owned by the program's TypeContext. Its
  /// Label field names this block.
  StaticContext *Pre = nullptr;
  std::vector<ProgInst> Insts;
  SourceLoc Loc;
};

/// One initialized data cell.
struct DataCell {
  Addr Address = 0;
  /// The contents type b; Ψ(Address) = b, and pointers to this cell have
  /// type b ref.
  const BasicType *Type = nullptr;
  int64_t Init = 0;
  /// When nonempty, Init is the address of this label.
  std::string InitLabel;
  SourceLoc Loc;
};

/// A whole TALFT program plus its layout.
class Program {
public:
  explicit Program(TypeContext &Types) : Types(&Types) {}

  TypeContext &types() const { return *Types; }

  /// Appends a block; returns it for population. The label must be unique.
  /// When \p Pre is non-null it becomes the block's precondition (its
  /// Label must already name this block) — used when the precondition
  /// context was created earlier by a forward reference.
  Block &addBlock(std::string Label, StaticContext *Pre = nullptr);

  /// Appends a data cell (addresses must be unique and positive).
  void addData(DataCell Cell) { Data.push_back(Cell); }

  const std::vector<Block> &blocks() const { return Blocks; }
  std::vector<Block> &blocks() { return Blocks; }
  const std::vector<DataCell> &data() const { return Data; }

  /// The block with the given label, or null.
  Block *findBlock(const std::string &Label);
  const Block *findBlock(const std::string &Label) const;

  /// Label of the block execution starts at (defaults to the first block).
  std::string EntryLabel;
  /// Label of the exit block (the halting convention); may be empty.
  std::string ExitLabel;

  /// \name Layout results (valid after layout() succeeds).
  /// @{

  /// Assigns addresses, resolves label immediates, builds code memory and
  /// Ψ. Reports problems (duplicate labels, unknown label references,
  /// overlapping data) to \p Diags; returns false on error.
  bool layout(DiagnosticEngine &Diags);

  bool isLaidOut() const { return LaidOut; }

  /// The address of a label. Requires layout and a known label.
  Addr addressOf(const std::string &Label) const;
  /// The label starting at an address, if any.
  const Block *blockAt(Addr A) const;

  Addr entryAddress() const { return addressOf(EntryLabel); }
  /// The exit address, or 0 when no exit label is declared.
  Addr exitAddress() const {
    return ExitLabel.empty() ? 0 : addressOf(ExitLabel);
  }

  const CodeMemory &code() const {
    assert(LaidOut && "code() before layout");
    return Code;
  }

  /// Ψ maps each address to the type *the address itself* has as a value:
  /// a block entry address maps to the block's code type, and a data cell
  /// address with contents type b maps to `b ref`.
  const HeapTyping &heapTyping() const {
    assert(LaidOut && "heapTyping() before layout");
    return Psi;
  }

  /// Builds the initial machine state: registers initialized from the
  /// entry block's precondition (which must use only closed expressions
  /// for registers), memory from the data section, empty queue, program
  /// counters at the entry address.
  Expected<MachineState> initialState() const;

  /// @}

private:
  TypeContext *Types;
  std::vector<Block> Blocks;
  std::vector<DataCell> Data;

  bool LaidOut = false;
  std::map<std::string, Addr> LabelAddr;
  std::map<Addr, const Block *> BlockByAddr;
  CodeMemory Code;
  HeapTyping Psi;
};

/// Fills a block precondition's defaults: if no pc expression was given, a
/// fresh variable "pc$<label>" is quantified and used; if no memory
/// description was given, a fresh variable "m$<label>" is quantified and
/// used; if d is untracked, it defaults to (G,int,0) — the shape every
/// jump target needs.
void finalizeBlockPrecondition(TypeContext &Types, StaticContext &Pre);

} // namespace talft

#endif // TALFT_TAL_PROGRAM_H
