//===- tal/Parser.cpp -----------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "tal/Parser.h"

#include "tal/Lexer.h"

using namespace talft;

namespace {

class Parser {
public:
  Parser(TypeContext &Types, std::vector<Token> Tokens,
         DiagnosticEngine &Diags)
      : Types(Types), Es(Types.exprs()), Tokens(std::move(Tokens)),
        Diags(Diags), Prog(Types) {}

  Expected<Program> run() {
    while (!peek().is(TokKind::Eof)) {
      if (peek().isIdent("entry")) {
        next();
        if (!expectIdent("entry label"))
          return bail();
        Prog.EntryLabel = next().Text;
        continue;
      }
      if (peek().isIdent("exit")) {
        next();
        if (!expectIdent("exit label"))
          return bail();
        Prog.ExitLabel = next().Text;
        continue;
      }
      if (peek().isIdent("data")) {
        if (!parseDataSection())
          return bail();
        continue;
      }
      if (peek().isIdent("block")) {
        if (!parseBlock())
          return bail();
        continue;
      }
      error("expected 'entry', 'exit', 'data' or 'block'");
      return bail();
    }
    if (Prog.blocks().empty()) {
      error("program has no blocks");
      return bail();
    }
    // Second pass: resolve code types named before their block appeared.
    for (auto &[Label, Pre] : PendingCodeTypes) {
      if (!Prog.findBlock(Label)) {
        Diags.error("code type references unknown block '@" + Label + "'");
        return bail();
      }
    }
    return std::move(Prog);
  }

private:
  TypeContext &Types;
  ExprContext &Es;
  std::vector<Token> Tokens;
  size_t Pos = 0;
  DiagnosticEngine &Diags;
  Program Prog;
  /// Labels referenced in code types; verified to exist after parsing.
  std::map<std::string, const StaticContext *> PendingCodeTypes;
  /// The Δ of the precondition being parsed (for variable kinds).
  VarScope *CurDelta = nullptr;

  const Token &peek(size_t Off = 0) const {
    size_t I = Pos + Off;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &next() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }
  bool consumeIf(TokKind K) {
    if (!peek().is(K))
      return false;
    next();
    return true;
  }

  void error(std::string Msg) { Diags.error(peek().Loc, std::move(Msg)); }
  Error bail() { return makeError("parse failed:\n" + Diags.str()); }

  bool expect(TokKind K, const char *What) {
    if (peek().is(K)) {
      next();
      return true;
    }
    error(std::string("expected ") + What);
    return false;
  }
  bool expectIdent(const char *What) {
    if (peek().is(TokKind::Ident))
      return true;
    error(std::string("expected ") + What);
    return false;
  }

  /// Precondition contexts created on first reference, keyed by label, so
  /// code types may name blocks defined later. The actual Block is only
  /// appended (in source order) when its definition is parsed.
  std::map<std::string, StaticContext *> PreByLabel;

  StaticContext *preconditionOf(const std::string &Label) {
    auto It = PreByLabel.find(Label);
    if (It != PreByLabel.end())
      return It->second;
    StaticContext *Pre = Types.createContext();
    Pre->Label = Label;
    PreByLabel.emplace(Label, Pre);
    return Pre;
  }

  // --- Data section -----------------------------------------------------

  bool parseDataSection() {
    next(); // 'data'
    if (!expect(TokKind::LBrace, "'{' after 'data'"))
      return false;
    while (!consumeIf(TokKind::RBrace)) {
      DataCell Cell;
      Cell.Loc = peek().Loc;
      std::optional<int64_t> A = parseSignedNumber();
      if (!A) {
        error("expected a data cell address");
        return false;
      }
      Cell.Address = *A;
      if (!expect(TokKind::Colon, "':' after the cell address"))
        return false;
      const BasicType *B = parseBasicType();
      if (!B)
        return false;
      Cell.Type = B;
      if (!expect(TokKind::Equal, "'=' before the initializer"))
        return false;
      if (consumeIf(TokKind::At)) {
        if (!expectIdent("label after '@'"))
          return false;
        Cell.InitLabel = next().Text;
      } else {
        std::optional<int64_t> V = parseSignedNumber();
        if (!V) {
          error("expected an initializer value");
          return false;
        }
        Cell.Init = *V;
      }
      Prog.addData(Cell);
    }
    return true;
  }

  std::optional<int64_t> parseSignedNumber() {
    bool Neg = consumeIf(TokKind::Minus);
    if (!peek().is(TokKind::Number))
      return std::nullopt;
    int64_t N = next().Num;
    return Neg ? -N : N;
  }

  // --- Types ------------------------------------------------------------

  const BasicType *parseBasicType() {
    const BasicType *B = nullptr;
    if (peek().isIdent("int")) {
      next();
      B = Types.intType();
    } else if (peek().isIdent("code")) {
      next();
      if (!expect(TokKind::LParen, "'(' after 'code'") ||
          !expect(TokKind::At, "'@' naming a block"))
        return nullptr;
      if (!expectIdent("block label"))
        return nullptr;
      std::string Label = next().Text;
      const StaticContext *Pre = preconditionOf(Label);
      PendingCodeTypes.emplace(Label, Pre);
      if (!expect(TokKind::RParen, "')'"))
        return nullptr;
      B = Types.codeType(Pre);
    } else {
      error("expected a basic type ('int' or 'code(@label)')");
      return nullptr;
    }
    while (peek().isIdent("ref")) {
      next();
      B = Types.refType(B);
    }
    return B;
  }

  // --- Static expressions -----------------------------------------------

  const Expr *parseExpr() { return parseAdd(); }

  const Expr *parseAdd() {
    const Expr *L = parseMul();
    if (!L)
      return nullptr;
    while (peek().is(TokKind::Plus) || peek().is(TokKind::Minus)) {
      Opcode Op = peek().is(TokKind::Plus) ? Opcode::Add : Opcode::Sub;
      next();
      const Expr *R = parseMul();
      if (!R)
        return nullptr;
      if (!requireIntKind(L) || !requireIntKind(R))
        return nullptr;
      L = Es.binop(Op, L, R);
    }
    return L;
  }

  const Expr *parseMul() {
    const Expr *L = parsePrimary();
    if (!L)
      return nullptr;
    while (peek().is(TokKind::Star)) {
      next();
      const Expr *R = parsePrimary();
      if (!R)
        return nullptr;
      if (!requireIntKind(L) || !requireIntKind(R))
        return nullptr;
      L = Es.binop(Opcode::Mul, L, R);
    }
    return L;
  }

  bool requireIntKind(const Expr *E) {
    if (E->kind() == ExprKind::Int)
      return true;
    error("expected an integer expression, found the memory expression '" +
          E->str() + "'");
    return false;
  }
  bool requireMemKind(const Expr *E) {
    if (E->kind() == ExprKind::Mem)
      return true;
    error("expected a memory expression, found '" + E->str() + "'");
    return false;
  }

  const Expr *parsePrimary() {
    if (peek().is(TokKind::Number))
      return Es.intConst(next().Num);
    if (peek().is(TokKind::Minus)) {
      next();
      if (!peek().is(TokKind::Number)) {
        error("expected a number after '-'");
        return nullptr;
      }
      return Es.intConst(-next().Num);
    }
    if (consumeIf(TokKind::LParen)) {
      const Expr *E = parseExpr();
      if (!E || !expect(TokKind::RParen, "')'"))
        return nullptr;
      return E;
    }
    if (peek().isIdent("emp")) {
      next();
      return Es.emp();
    }
    if (peek().isIdent("sel")) {
      next();
      const Expr *M = parsePrimary();
      if (!M || !requireMemKind(M))
        return nullptr;
      const Expr *A = parsePrimary();
      if (!A || !requireIntKind(A))
        return nullptr;
      return Es.sel(M, A);
    }
    if (peek().isIdent("upd")) {
      next();
      const Expr *M = parsePrimary();
      if (!M || !requireMemKind(M))
        return nullptr;
      const Expr *A = parsePrimary();
      if (!A || !requireIntKind(A))
        return nullptr;
      const Expr *V = parsePrimary();
      if (!V || !requireIntKind(V))
        return nullptr;
      return Es.upd(M, A, V);
    }
    if (peek().is(TokKind::Ident)) {
      std::string Name = peek().Text;
      std::optional<ExprKind> K =
          CurDelta ? CurDelta->lookup(Name) : std::nullopt;
      if (!K) {
        error("variable '" + Name + "' is not declared in a forall clause");
        return nullptr;
      }
      next();
      return Es.var(Name, *K);
    }
    error("expected an expression");
    return nullptr;
  }

  // --- Preconditions ----------------------------------------------------

  bool parseRegTypeInto(StaticContext &Pre, Reg R) {
    // Either "(c, b, E)" or "E = 0 => (c, b, E)". A triple starts with
    // "(G," or "(B,"; anything else is the conditional's test expression.
    bool IsTriple = peek().is(TokKind::LParen) &&
                    (peek(1).isIdent("G") || peek(1).isIdent("B")) &&
                    peek(2).is(TokKind::Comma);
    const Expr *Guard = nullptr;
    if (!IsTriple) {
      Guard = parseExpr();
      if (!Guard || !requireIntKind(Guard))
        return false;
      if (!expect(TokKind::Equal, "'=' in a conditional register type"))
        return false;
      if (!peek().is(TokKind::Number) || peek().Num != 0) {
        error("conditional register types test against 0");
        return false;
      }
      next();
      if (!expect(TokKind::Arrow, "'=>'"))
        return false;
    }
    if (!expect(TokKind::LParen, "'(' starting a register type"))
      return false;
    Color C;
    if (peek().isIdent("G"))
      C = Color::Green;
    else if (peek().isIdent("B"))
      C = Color::Blue;
    else {
      error("expected a color ('G' or 'B')");
      return false;
    }
    next();
    if (!expect(TokKind::Comma, "','"))
      return false;
    const BasicType *B = parseBasicType();
    if (!B)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    const Expr *E = parseExpr();
    if (!E || !requireIntKind(E))
      return false;
    if (!expect(TokKind::RParen, "')'"))
      return false;
    RegType T = Guard ? RegType::conditional(Guard, C, B, E)
                      : RegType(C, B, E);
    Pre.Gamma.set(R, T);
    return true;
  }

  bool parsePrecondition(StaticContext &Pre) {
    if (!expect(TokKind::LBrace, "'{' after 'pre'"))
      return false;
    CurDelta = &Pre.Delta;
    bool SeenQueue = false;
    while (!peek().is(TokKind::RBrace)) {
      if (peek().isIdent("forall")) {
        next();
        do {
          if (!expectIdent("variable name"))
            return false;
          std::string Name = next().Text;
          if (!expect(TokKind::Colon, "':' after the variable name"))
            return false;
          ExprKind K;
          if (peek().isIdent("int"))
            K = ExprKind::Int;
          else if (peek().isIdent("mem"))
            K = ExprKind::Mem;
          else {
            error("expected a kind ('int' or 'mem')");
            return false;
          }
          next();
          if (!Pre.Delta.declare(Name, K)) {
            error("variable '" + Name + "' declared twice");
            return false;
          }
        } while (consumeIf(TokKind::Comma));
      } else if (peek().isIdent("queue")) {
        next();
        if (!expect(TokKind::LBracket, "'[' after 'queue'"))
          return false;
        SeenQueue = true;
        while (!consumeIf(TokKind::RBracket)) {
          if (!expect(TokKind::LParen, "'(' starting a queue descriptor"))
            return false;
          const Expr *A = parseExpr();
          if (!A || !requireIntKind(A))
            return false;
          if (!expect(TokKind::Comma, "','"))
            return false;
          const Expr *V = parseExpr();
          if (!V || !requireIntKind(V))
            return false;
          if (!expect(TokKind::RParen, "')'"))
            return false;
          // Descriptors are written front-first, matching the queue order.
          Pre.Queue.pushFront({A, V});
          consumeIf(TokKind::Comma);
        }
        // pushFront reversed the written order; rebuild front-first.
        QueueType Rebuilt;
        for (const QueueTypeEntry &E : Pre.Queue)
          Rebuilt.pushFront(E);
        Pre.Queue = Rebuilt;
      } else if (peek().isIdent("mem")) {
        next();
        const Expr *M = parseExpr();
        if (!M || !requireMemKind(M))
          return false;
        Pre.MemExpr = M;
      } else if (peek().isIdent("pc")) {
        next();
        const Expr *P = parseExpr();
        if (!P || !requireIntKind(P))
          return false;
        Pre.Pc = P;
      } else if (peek().is(TokKind::Reg)) {
        Token RT = next();
        Reg R = RT.Text == "d" ? Reg::dest() : Reg::general((unsigned)RT.Num);
        if (!expect(TokKind::Colon, "':' after the register"))
          return false;
        if (!parseRegTypeInto(Pre, R))
          return false;
      } else {
        error("expected a precondition clause (forall / rN / d / queue / "
              "mem / pc)");
        return false;
      }
      consumeIf(TokKind::Semi);
    }
    next(); // '}'
    CurDelta = nullptr;
    (void)SeenQueue;
    return true;
  }

  // --- Instructions -----------------------------------------------------

  std::optional<Value> parseImmediate(std::string *LabelOut) {
    Color C;
    if (peek().isIdent("G"))
      C = Color::Green;
    else if (peek().isIdent("B"))
      C = Color::Blue;
    else {
      error("expected a colored immediate ('G <n>' or 'B <n>')");
      return std::nullopt;
    }
    next();
    if (consumeIf(TokKind::At)) {
      if (!expectIdent("label after '@'"))
        return std::nullopt;
      *LabelOut = next().Text;
      return Value(C, 0);
    }
    std::optional<int64_t> N = parseSignedNumber();
    if (!N) {
      error("expected an immediate value");
      return std::nullopt;
    }
    return Value(C, *N);
  }

  std::optional<Reg> parseReg() {
    if (!peek().is(TokKind::Reg) || peek().Text == "d") {
      error("expected a general-purpose register");
      return std::nullopt;
    }
    return Reg::general((unsigned)next().Num);
  }

  bool parseInst(Block &B) {
    SourceLoc Loc = peek().Loc;
    if (!expectIdent("an instruction mnemonic"))
      return false;
    std::string M = next().Text;
    ProgInst PI;
    PI.Loc = Loc;

    auto Finish = [&](Inst I) {
      PI.I = I;
      B.Insts.push_back(PI);
      return true;
    };

    if (M == "add" || M == "sub" || M == "mul") {
      Opcode Op = M == "add" ? Opcode::Add
                  : M == "sub" ? Opcode::Sub
                               : Opcode::Mul;
      std::optional<Reg> Rd = parseReg();
      if (!Rd || !expect(TokKind::Comma, "','"))
        return false;
      std::optional<Reg> Rs = parseReg();
      if (!Rs || !expect(TokKind::Comma, "','"))
        return false;
      if (peek().is(TokKind::Reg)) {
        std::optional<Reg> Rt = parseReg();
        if (!Rt)
          return false;
        return Finish(Inst::alu(Op, *Rd, *Rs, *Rt));
      }
      std::optional<Value> V = parseImmediate(&PI.ImmLabel);
      if (!V)
        return false;
      return Finish(Inst::aluImm(Op, *Rd, *Rs, *V));
    }
    if (M == "mov") {
      std::optional<Reg> Rd = parseReg();
      if (!Rd || !expect(TokKind::Comma, "','"))
        return false;
      std::optional<Value> V = parseImmediate(&PI.ImmLabel);
      if (!V)
        return false;
      return Finish(Inst::mov(*Rd, *V));
    }
    auto TwoRegs = [&](auto Make) {
      std::optional<Reg> R1 = parseReg();
      if (!R1 || !expect(TokKind::Comma, "','"))
        return false;
      std::optional<Reg> R2 = parseReg();
      if (!R2)
        return false;
      return Finish(Make(*R1, *R2));
    };
    if (M == "ldG" || M == "ldB") {
      Color C = M == "ldG" ? Color::Green : Color::Blue;
      return TwoRegs([C](Reg A, Reg B2) { return Inst::ld(C, A, B2); });
    }
    if (M == "stG" || M == "stB") {
      Color C = M == "stG" ? Color::Green : Color::Blue;
      return TwoRegs([C](Reg A, Reg B2) { return Inst::st(C, A, B2); });
    }
    if (M == "bzG" || M == "bzB") {
      Color C = M == "bzG" ? Color::Green : Color::Blue;
      return TwoRegs([C](Reg A, Reg B2) { return Inst::bz(C, A, B2); });
    }
    if (M == "jmpG" || M == "jmpB") {
      Color C = M == "jmpG" ? Color::Green : Color::Blue;
      std::optional<Reg> R = parseReg();
      if (!R)
        return false;
      return Finish(Inst::jmp(C, *R));
    }
    Diags.error(Loc, "unknown mnemonic '" + M + "'");
    return false;
  }

  bool parseBlock() {
    next(); // 'block'
    if (!expectIdent("block label"))
      return false;
    SourceLoc Loc = peek().Loc;
    std::string Label = next().Text;
    if (Prog.findBlock(Label)) {
      Diags.error(Loc, "block '" + Label + "' defined twice");
      return false;
    }
    Block *B = &Prog.addBlock(Label, preconditionOf(Label));
    B->Loc = Loc;
    if (!expect(TokKind::LBrace, "'{' after the block label"))
      return false;
    if (peek().isIdent("pre")) {
      next();
      if (!parsePrecondition(*B->Pre))
        return false;
    }
    finalizeBlockPrecondition(Types, *B->Pre);
    while (!consumeIf(TokKind::RBrace))
      if (!parseInst(*B))
        return false;
    if (B->Insts.empty()) {
      Diags.error(Loc, "block '" + Label + "' has no instructions");
      return false;
    }
    return true;
  }
};

} // namespace

Expected<Program> talft::parseTalProgram(TypeContext &Types,
                                         std::string_view Source,
                                         DiagnosticEngine &Diags) {
  std::vector<Token> Tokens;
  std::string LexError;
  SourceLoc LexLoc;
  if (!lexTal(Source, Tokens, LexError, LexLoc)) {
    Diags.error(LexLoc, LexError);
    return makeError("lex failed: " + LexError);
  }
  return Parser(Types, std::move(Tokens), Diags).run();
}

Expected<Program> talft::parseAndLayoutTalProgram(TypeContext &Types,
                                                  std::string_view Source,
                                                  DiagnosticEngine &Diags) {
  Expected<Program> P = parseTalProgram(Types, Source, Diags);
  if (!P)
    return P;
  if (!P->layout(Diags))
    return makeError("layout failed:\n" + Diags.str());
  return P;
}
