//===- tal/Parser.h - Parser for .tal assembly ----------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual TALFT assembly format into a Program. The format
/// carries the typing annotations the checker needs (the paper notes that
/// compilers emit such hints to make type reconstruction trivial):
///
///   entry main
///   exit done
///
///   data {
///     256: int = 0
///     300: code(@loop) = @loop      // a cell holding a code pointer
///   }
///
///   block main {
///     pre { forall x: int, m: mem;
///           r1: (G, int, x); r2: (B, int, x);
///           d: (G, int, 0);
///           queue [];
///           mem m }
///     mov r3, G 256
///     stG r3, r1
///     ...
///   }
///
/// Omitted precondition clauses default to: a fresh quantified pc
/// variable, a fresh quantified memory variable, d:(G,int,0), and an empty
/// queue. Conditional register types are written
/// "rz_expr = 0 => (G, code(@l), e)".
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_TAL_PARSER_H
#define TALFT_TAL_PARSER_H

#include "support/Diagnostics.h"
#include "support/Error.h"
#include "tal/Program.h"

#include <string_view>

namespace talft {

/// Parses \p Source into a Program (unlaid-out). Diagnostics are reported
/// to \p Diags.
Expected<Program> parseTalProgram(TypeContext &Types, std::string_view Source,
                                  DiagnosticEngine &Diags);

/// Convenience: parse + layout + return the program ready for checking.
Expected<Program> parseAndLayoutTalProgram(TypeContext &Types,
                                           std::string_view Source,
                                           DiagnosticEngine &Diags);

} // namespace talft

#endif // TALFT_TAL_PARSER_H
