//===- tal/Program.cpp ----------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "tal/Program.h"

#include "sexpr/ExprOps.h"
#include "support/StringUtils.h"

using namespace talft;

Block &Program::addBlock(std::string Label, StaticContext *Pre) {
  assert(!findBlock(Label) && "duplicate block label");
  assert((!Pre || Pre->Label == Label) &&
         "precondition labelled for a different block");
  Blocks.emplace_back();
  Block &B = Blocks.back();
  B.Label = Label;
  if (Pre) {
    B.Pre = Pre;
  } else {
    B.Pre = Types->createContext();
    B.Pre->Label = std::move(Label);
  }
  if (EntryLabel.empty())
    EntryLabel = B.Label;
  return B;
}

Block *Program::findBlock(const std::string &Label) {
  for (Block &B : Blocks)
    if (B.Label == Label)
      return &B;
  return nullptr;
}

const Block *Program::findBlock(const std::string &Label) const {
  return const_cast<Program *>(this)->findBlock(Label);
}

Addr Program::addressOf(const std::string &Label) const {
  assert(LaidOut && "addressOf() before layout");
  auto It = LabelAddr.find(Label);
  assert(It != LabelAddr.end() && "addressOf() on an unknown label");
  return It->second;
}

const Block *Program::blockAt(Addr A) const {
  auto It = BlockByAddr.find(A);
  return It == BlockByAddr.end() ? nullptr : It->second;
}

bool Program::layout(DiagnosticEngine &Diags) {
  assert(!LaidOut && "program laid out twice");

  if (Blocks.empty()) {
    Diags.error("program has no code blocks");
    return false;
  }

  // Pass 1: assign consecutive addresses from 1.
  Addr Next = 1;
  for (const Block &B : Blocks) {
    if (!LabelAddr.emplace(B.Label, Next).second) {
      Diags.error(B.Loc, "duplicate block label '" + B.Label + "'");
      return false;
    }
    BlockByAddr.emplace(Next, &B);
    if (B.Insts.empty()) {
      Diags.error(B.Loc, "block '" + B.Label + "' is empty");
      return false;
    }
    Next += (Addr)B.Insts.size();
  }

  if (!findBlock(EntryLabel)) {
    Diags.error("entry label '" + EntryLabel + "' is not a block");
    return false;
  }
  if (!ExitLabel.empty() && !findBlock(ExitLabel)) {
    Diags.error("exit label '" + ExitLabel + "' is not a block");
    return false;
  }

  // Pass 2: resolve label immediates (in place, so the checker sees the
  // resolved addresses) and build code memory.
  for (Block &B : Blocks) {
    Addr A = LabelAddr[B.Label];
    for (ProgInst &PI : B.Insts) {
      if (!PI.ImmLabel.empty()) {
        auto It = LabelAddr.find(PI.ImmLabel);
        if (It == LabelAddr.end()) {
          Diags.error(PI.Loc, "unknown label '" + PI.ImmLabel + "'");
          return false;
        }
        assert(PI.I.HasImm &&
               "label immediate on an instruction without one");
        PI.I.Imm.N = It->second;
      }
      Code.set(A++, PI.I);
    }
  }

  // Pass 3: Ψ gets each block entry's code type and each data cell's type.
  for (const Block &B : Blocks)
    Psi.declare(LabelAddr[B.Label], Types->codeType(B.Pre));
  for (DataCell &Cell : Data) {
    if (Cell.Address <= 0) {
      Diags.error(Cell.Loc, "data addresses must be positive");
      return false;
    }
    if (Code.contains(Cell.Address) || Psi.contains(Cell.Address)) {
      Diags.error(Cell.Loc, formatv("data cell at address %lld overlaps code "
                                    "or another cell",
                                    (long long)Cell.Address));
      return false;
    }
    if (!Cell.InitLabel.empty()) {
      auto It = LabelAddr.find(Cell.InitLabel);
      if (It == LabelAddr.end()) {
        Diags.error(Cell.Loc, "unknown label '" + Cell.InitLabel + "'");
        return false;
      }
      Cell.Init = It->second;
    }
    Psi.declare(Cell.Address, Types->refType(Cell.Type));
  }

  LaidOut = true;
  return true;
}

void talft::finalizeBlockPrecondition(TypeContext &Types,
                                      StaticContext &Pre) {
  ExprContext &Es = Types.exprs();
  assert(!Pre.Label.empty() && "finalizing an unlabelled precondition");
  if (!Pre.Pc) {
    std::string Name = "pc$" + Pre.Label;
    Pre.Delta.declare(Name, ExprKind::Int);
    Pre.Pc = Es.var(Name, ExprKind::Int);
  }
  if (!Pre.MemExpr) {
    std::string Name = "m$" + Pre.Label;
    Pre.Delta.declare(Name, ExprKind::Mem);
    Pre.MemExpr = Es.var(Name, ExprKind::Mem);
  }
  if (!Pre.Gamma.lookup(Reg::dest()))
    Pre.Gamma.set(Reg::dest(),
                  RegType(Color::Green, Types.intType(), Es.intConst(0)));
}

Expected<MachineState> Program::initialState() const {
  assert(LaidOut && "initialState() before layout");

  MachineState S(Code, entryAddress());
  for (const DataCell &Cell : Data)
    S.Mem.set(Cell.Address, Cell.Init);

  // Registers come from the entry precondition: every register type's
  // static expression must be closed so the loader can evaluate it.
  const Block *Entry = findBlock(EntryLabel);
  for (const auto &[Key, T] : Entry->Pre->Gamma) {
    Reg R = RegFileType::regForKey(Key);
    if (T.isConditional())
      return makeError("entry precondition gives " + R.str() +
                       " a conditional type");
    if (!T.E->isClosed())
      return makeError("entry precondition for " + R.str() +
                       " uses an open expression '" + T.E->str() + "'");
    std::optional<int64_t> V = evalInt(T.E);
    if (!V)
      return makeError("entry precondition for " + R.str() +
                       " has an undefined denotation");
    S.Regs.set(R, Value(T.C, *V));
  }
  if (!Entry->Pre->Queue.empty())
    return makeError("entry precondition requires a non-empty store queue");
  return S;
}
