//===- recover/RecoveringEngine.h - Checkpoint/rollback execution ---------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TALFT's hardware guarantee is fail-stop: a detected fault halts the
/// machine with the output a prefix of the fault-free trace (Theorem 4).
/// The RecoveringEngine turns that into fail-operational execution. It
/// drives any ExecEngine step by step, snapshots the MachineState at
/// verified commit points (Checkpoint.h), and when the inner engine
/// reports hardware fault detection it restores the most recent
/// checkpoint and replays instead of halting.
///
/// Replay is observation-preserving: outputs the machine already emitted
/// after the current checkpoint are *suppressed and verified* during the
/// replay — each regenerated store must equal the store previously
/// emitted at that position, and the first mismatch escalates to
/// fail-stop before anything diverging reaches the output device. A
/// transient single fault therefore ends with the output trace
/// bit-identical to the fault-free run, strictly stronger than the
/// theorem's prefix.
///
/// Each checkpoint carries a bounded retry budget (RecoveryPolicy); the
/// budget refills whenever the checkpoint advances past a commit point.
/// A persistent fault — one the deterministic semantics re-detects on
/// every replay, e.g. a corruption that crossed a commit point and got
/// checkpointed — exhausts the budget and escalates to fail-stop, so the
/// original prefix guarantee is the worst case, never lost.
///
/// The engine is immutable after construction and safe to share across
/// threads; all mutable execution state (checkpoint, replay cursor,
/// retry counter) is per-run local.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_RECOVER_RECOVERINGENGINE_H
#define TALFT_RECOVER_RECOVERINGENGINE_H

#include "recover/Checkpoint.h"
#include "sim/ExecEngine.h"

#include <cstdint>
#include <functional>

namespace talft {

/// Checkpoint/rollback activity of one run (or, summed, of a campaign).
struct RecoveryStats {
  /// Checkpoints captured (excluding the seed state).
  uint64_t Checkpoints = 0;
  /// Rollbacks performed (= replays started).
  uint64_t Rollbacks = 0;
  /// Replayed stores verified against already-emitted outputs.
  uint64_t ReplayedOutputs = 0;

  void merge(const RecoveryStats &O) {
    Checkpoints += O.Checkpoints;
    Rollbacks += O.Rollbacks;
    ReplayedOutputs += O.ReplayedOutputs;
  }
};

/// Why a recovering run stopped.
enum class RecoveryStatus : uint8_t {
  /// Reached the exit block with every emitted output verified.
  Halted,
  /// The layer gave up and fail-stopped (see RecoveryResult::Reason).
  Escalated,
  /// A state got stuck (not a detected fault; nothing to roll back to).
  Stuck,
  /// The step budget ran out.
  OutOfSteps,
};

const char *recoveryStatusName(RecoveryStatus St);

/// What forced an escalation to fail-stop.
enum class EscalationReason : uint8_t {
  None,
  /// The current checkpoint's retry budget hit zero.
  RetriesExhausted,
  /// A replayed store differed from the output previously emitted at the
  /// same position (or the replay halted with emitted outputs never
  /// regenerated) — continuing could contradict the output device.
  ReplayDiverged,
};

const char *escalationReasonName(EscalationReason Why);

/// The outcome of one recovering run.
struct RecoveryResult {
  RecoveryStatus Status = RecoveryStatus::OutOfSteps;
  EscalationReason Reason = EscalationReason::None;
  /// Transitions taken, replays included (the budget is shared).
  uint64_t Steps = 0;
  RecoveryStats Stats;
};

/// Drives an inner ExecEngine under the checkpoint/rollback protocol.
class RecoveringEngine {
public:
  /// Test/fault-model instrumentation: invoked before every transition
  /// with the state and the number of transitions taken so far, and may
  /// mutate the state (the campaign injects its fault at hook time 0, so
  /// the seed checkpoint stays clean). Replays re-run the hook at fresh
  /// step counts only — a transient fault does not recur.
  using StepHook = std::function<void(MachineState &, uint64_t)>;

  /// One run's parameters.
  struct RunSpec {
    /// Entry address of the exit block (0 disables halt detection).
    Addr ExitAddr = 0;
    /// Total transition budget, shared between first execution and every
    /// replay (a rollback is free; the re-executed steps are not).
    uint64_t Budget = 0;
    StepPolicy Policy;
    /// Observer of the *external* output trace: fires once per emitted
    /// store, never for a verified replay of one.
    ExecEngine::OutputSink OnOutput;
    StepHook Hook;
  };

  RecoveringEngine(const ExecEngine &Inner, const RecoveryPolicy &Policy)
      : Inner(Inner), P(Policy) {
    if (P.CheckpointInterval == 0)
      P.CheckpointInterval = 1;
  }

  const ExecEngine &inner() const { return Inner; }
  const RecoveryPolicy &policy() const { return P; }

  /// Runs \p S to the exit block under the protocol. \p S is the seed
  /// checkpoint (assumed verified, like a freshly loaded initial state);
  /// on Escalated it becomes the distinguished fault state. The control
  /// flow checks the exit condition before the budget on every
  /// transition, exactly like ExecEngine::runContinuation, so verdicts
  /// derived from this loop line up with the fail-stop classifier's.
  RecoveryResult run(MachineState &S, const RunSpec &Spec) const;

private:
  const ExecEngine &Inner;
  RecoveryPolicy P;
};

} // namespace talft

#endif // TALFT_RECOVER_RECOVERINGENGINE_H
