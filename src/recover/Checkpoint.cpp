//===- recover/Checkpoint.cpp ---------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "recover/Checkpoint.h"

#include <cstring>

using namespace talft;

bool talft::isCommitPoint(const StepResult &SR) {
  if (SR.Status != StepStatus::Ok)
    return false;
  // A committed store is always rule stB-mem; checking the output directly
  // keeps this independent of the rule-name spelling.
  if (SR.Output)
    return true;
  return SR.Rule && (std::strcmp(SR.Rule, "jmpB") == 0 ||
                     std::strcmp(SR.Rule, "bzB-taken") == 0);
}
