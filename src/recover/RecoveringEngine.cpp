//===- recover/RecoveringEngine.cpp ---------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "recover/RecoveringEngine.h"

#include "support/Unreachable.h"

#include <cassert>
#include <vector>

using namespace talft;

const char *talft::recoveryStatusName(RecoveryStatus St) {
  switch (St) {
  case RecoveryStatus::Halted:
    return "halted";
  case RecoveryStatus::Escalated:
    return "escalated";
  case RecoveryStatus::Stuck:
    return "stuck";
  case RecoveryStatus::OutOfSteps:
    return "out of steps";
  }
  talft_unreachable("unknown recovery status");
}

const char *talft::escalationReasonName(EscalationReason Why) {
  switch (Why) {
  case EscalationReason::None:
    return "none";
  case EscalationReason::RetriesExhausted:
    return "retries exhausted";
  case EscalationReason::ReplayDiverged:
    return "replay diverged";
  }
  talft_unreachable("unknown escalation reason");
}

RecoveryResult RecoveringEngine::run(MachineState &S,
                                     const RunSpec &Spec) const {
  assert(!S.isFault() && "recovery cannot start from the fault state");
  RecoveryResult R;

  // The seed state is the initial checkpoint. SinceCkpt holds every store
  // emitted after the checkpoint was captured; during a replay the prefix
  // [0, ReplayCursor) has been regenerated and verified, so ReplayCursor ==
  // SinceCkpt.size() means live execution (emit) and anything less means
  // replay (suppress and verify).
  Checkpoint Ckpt;
  Ckpt.S = S;
  std::vector<QueueEntry> SinceCkpt;
  size_t ReplayCursor = 0;
  uint64_t Retries = P.RetryBudget;
  uint64_t CommitsSinceCkpt = 0;
  uint64_t Taken = 0;

  auto Finish = [&](RecoveryStatus St) -> RecoveryResult & {
    R.Status = St;
    R.Steps = Taken;
    return R;
  };
  auto Escalate = [&](EscalationReason Why) -> RecoveryResult & {
    S = MachineState::faultState();
    R.Reason = Why;
    return Finish(RecoveryStatus::Escalated);
  };

  while (true) {
    if (Spec.Hook)
      Spec.Hook(S, Taken);
    if (atExit(S, Spec.ExitAddr)) {
      // Halting while emitted outputs were never regenerated means the
      // output device has already seen stores this execution will not
      // produce; fail-stop is the only honest answer.
      if (ReplayCursor < SinceCkpt.size())
        return Escalate(EscalationReason::ReplayDiverged);
      return Finish(RecoveryStatus::Halted);
    }
    if (Taken >= Spec.Budget)
      return Finish(RecoveryStatus::OutOfSteps);

    StepResult SR = Inner.step(S, Spec.Policy);
    ++Taken;
    if (SR.Status == StepStatus::Stuck)
      return Finish(RecoveryStatus::Stuck);
    if (SR.Status == StepStatus::Fault) {
      // Hardware fault detection: the fail-stop event becomes a rollback
      // while the checkpoint's retry budget lasts.
      if (Retries == 0)
        return Escalate(EscalationReason::RetriesExhausted);
      --Retries;
      ++R.Stats.Rollbacks;
      S = Ckpt.S;
      ReplayCursor = 0;
      CommitsSinceCkpt = 0;
      continue;
    }

    if (SR.Output) {
      if (ReplayCursor < SinceCkpt.size()) {
        if (!(*SR.Output == SinceCkpt[ReplayCursor]))
          return Escalate(EscalationReason::ReplayDiverged);
        ++ReplayCursor;
        ++R.Stats.ReplayedOutputs;
      } else {
        SinceCkpt.push_back(*SR.Output);
        ++ReplayCursor;
        if (Spec.OnOutput)
          Spec.OnOutput(*SR.Output);
      }
    }

    if (isCommitPoint(SR) && ++CommitsSinceCkpt >= P.CheckpointInterval) {
      // Advancing mid-replay is sound: the verified prefix of SinceCkpt
      // is dropped and the unregenerated tail carries over as the new
      // checkpoint's already-emitted outputs.
      Ckpt.S = S;
      Ckpt.Steps = Taken;
      SinceCkpt.erase(SinceCkpt.begin(),
                      SinceCkpt.begin() + (ptrdiff_t)ReplayCursor);
      ReplayCursor = 0;
      CommitsSinceCkpt = 0;
      Retries = P.RetryBudget;
      ++R.Stats.Checkpoints;
    }
  }
}
