//===- recover/Checkpoint.h - Commit-point checkpoints --------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recovery layer (RecoveringEngine.h) snapshots the machine at
/// *verified commit points*: the transitions whose firing proves the green
/// and blue computations agree on everything the step observes. Those are
/// exactly the rules that cross-check both colors before acting —
///
///   stB-mem   the store queue head commits to memory (addresses and
///             values of both colors compared),
///   jmpB      the blue jump retires a control transfer (both program
///             counters compared),
///   bzB-taken the blue conditional retires a taken branch (guards and
///             targets of both colors compared);
///
/// a state captured immediately after one of them is the most recent
/// moment the hardware has vouched for. Rolling back to it can therefore
/// never resurrect data a cross-check already rejected.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_RECOVER_CHECKPOINT_H
#define TALFT_RECOVER_CHECKPOINT_H

#include "isa/MachineState.h"
#include "sim/Step.h"

#include <cstdint>

namespace talft {

/// Knobs for the checkpoint/rollback layer.
struct RecoveryPolicy {
  /// Master switch; disabled, the layer is never constructed and the
  /// campaign classifies exactly as the fail-stop Theorem 4 sweep.
  bool Enabled = false;
  /// Take a checkpoint every Nth commit point (1 = every one). Larger
  /// intervals copy less state but roll back further and keep a fault
  /// latent across more commits. 0 is normalized to 1.
  uint64_t CheckpointInterval = 1;
  /// Rollbacks allowed per checkpoint before the layer gives up and
  /// escalates to fail-stop. The budget refills whenever the checkpoint
  /// advances, so a transient fault costs at most RetryBudget replays
  /// while a persistent (deterministically re-detected) fault still
  /// terminates with the prefix guarantee.
  uint64_t RetryBudget = 2;
};

/// One snapshot of the machine at a verified commit point.
struct Checkpoint {
  MachineState S;
  /// Transitions taken when the snapshot was captured.
  uint64_t Steps = 0;
};

/// True when \p SR is a verified commit point (see file comment).
bool isCommitPoint(const StepResult &SR);

} // namespace talft

#endif // TALFT_RECOVER_CHECKPOINT_H
