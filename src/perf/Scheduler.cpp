//===- perf/Scheduler.cpp -------------------------------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "perf/Scheduler.h"

#include "support/Unreachable.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <vector>

using namespace talft;

unsigned PipelineConfig::latencyOf(MOpClass C) const {
  switch (C) {
  case MOpClass::Alu:
    return LatAlu;
  case MOpClass::Mul:
    return LatMul;
  case MOpClass::Load:
    return LatLoad;
  case MOpClass::Store:
  case MOpClass::StoreCommit:
    return LatStore;
  case MOpClass::Branch:
    return LatBranch;
  }
  talft_unreachable("unknown MOp class");
}

static bool isMem(MOpClass C) {
  return C == MOpClass::Load || C == MOpClass::Store ||
         C == MOpClass::StoreCommit;
}
static bool isStore(MOpClass C) {
  return C == MOpClass::Store || C == MOpClass::StoreCommit;
}

namespace {

/// Dependence graph over one block. Edges carry the latency the
/// successor must wait after the predecessor issues: full operation
/// latency for data edges (RAW, pair dependences), zero for pure ordering
/// edges (WAR/WAW, memory order, barriers) — those only constrain the
/// issue order.
class DepGraph {
public:
  struct Edge {
    size_t To;
    unsigned Latency;
  };

  DepGraph(const MOpStream &Ops, const PipelineConfig &Config)
      : N(Ops.size()), Preds(N), Succs(N) {
    auto AddEdge = [this](size_t From, size_t To, unsigned Latency) {
      Succs[From].push_back({To, Latency});
      Preds[To].push_back(From);
    };

    for (size_t I = 0; I != N; ++I) {
      const MOp &A = Ops[I];
      unsigned LatA = Config.latencyOf(A.Class);
      for (size_t J = I + 1; J != N; ++J) {
        const MOp &B = Ops[J];
        bool Data = false, Order = false;
        // RAW: B reads A's result.
        if (A.Dst != -1 && (A.Dst == B.Src0 || A.Dst == B.Src1))
          Data = true;
        // WAW / WAR: ordering only.
        if (A.Dst != -1 && A.Dst == B.Dst)
          Order = true;
        if (B.Dst != -1 && (B.Dst == A.Src0 || B.Dst == A.Src1))
          Order = true;
        // Memory ordering: stores stay in order; loads don't cross stores.
        if ((isStore(A.Class) && isMem(B.Class)) ||
            (isMem(A.Class) && isStore(B.Class)))
          Order = true;
        // Branches are scheduling barriers.
        if (A.Class == MOpClass::Branch || B.Class == MOpClass::Branch)
          Order = true;
        // Paired halves: control-flow pairs always carry a data edge
        // (jmpB/bzB read the d register jmpG/bzG wrote); store pairs
        // carry one only under the TALFT ordering constraint — the
        // "without ordering" hardware correlates redundant *memory*
        // operations regardless of order.
        if (A.PairId != -1 && A.PairId == B.PairId &&
            (A.Class == MOpClass::Branch || Config.EnforceColorOrdering))
          Data = true;
        if (Data)
          AddEdge(I, J, LatA);
        else if (Order)
          AddEdge(I, J, 0);
      }
    }
  }

  size_t size() const { return N; }
  const std::vector<size_t> &preds(size_t I) const { return Preds[I]; }
  const std::vector<Edge> &succs(size_t I) const { return Succs[I]; }

private:
  size_t N;
  std::vector<std::vector<size_t>> Preds;
  std::vector<std::vector<Edge>> Succs;
};

} // namespace

MOpStream talft::scheduleBlock(const MOpStream &Block,
                               const PipelineConfig &Config) {
  size_t N = Block.size();
  if (N < 2)
    return Block;
  DepGraph G(Block, Config);

  // Priority: longest latency path to the block's end (critical-path
  // height), computed bottom-up.
  std::vector<uint64_t> Height(N, 0);
  for (size_t I = N; I-- > 0;) {
    uint64_t H = Config.latencyOf(Block[I].Class);
    for (const DepGraph::Edge &E : G.succs(I))
      H = std::max(H, (uint64_t)E.Latency + Height[E.To]);
    Height[I] = H;
  }

  std::vector<size_t> RemainingPreds(N);
  for (size_t I = 0; I != N; ++I)
    RemainingPreds[I] = G.preds(I).size();

  // Cycle-driven greedy list scheduling: at each clock tick, repeatedly
  // emit the data-ready op with the largest height (ties broken by
  // program order); advance the clock when nothing is ready, so
  // independent work hoists into load/mul shadows.
  std::vector<uint64_t> ReadyAt(N, 0);
  std::vector<bool> Emitted(N, false);
  MOpStream Out;
  Out.reserve(N);
  uint64_t Clock = 0;
  unsigned IssuedThisCycle = 0;
  while (Out.size() != N) {
    size_t Best = N;
    uint64_t NextReady = UINT64_MAX;
    for (size_t I = 0; I != N; ++I) {
      if (Emitted[I] || RemainingPreds[I] != 0)
        continue;
      if (ReadyAt[I] > Clock) {
        NextReady = std::min(NextReady, ReadyAt[I]);
        continue;
      }
      if (Best == N || Height[I] > Height[Best])
        Best = I;
    }
    if (Best == N || IssuedThisCycle >= Config.IssueWidth) {
      assert(NextReady != UINT64_MAX || Best != N);
      Clock = std::max(Clock + 1, Best == N ? NextReady : Clock + 1);
      IssuedThisCycle = 0;
      continue;
    }
    Emitted[Best] = true;
    ++IssuedThisCycle;
    Out.push_back(Block[Best]);
    for (const DepGraph::Edge &E : G.succs(Best)) {
      --RemainingPreds[E.To];
      ReadyAt[E.To] = std::max(ReadyAt[E.To], Clock + E.Latency);
    }
  }
  return Out;
}

uint64_t talft::issueCycles(const MOpStream &Scheduled,
                            const PipelineConfig &Config) {
  if (Scheduled.empty())
    return 0;

  std::map<int, uint64_t> RegReady; // register -> first cycle a reader may issue
  std::map<int, uint64_t> PairReady; // pair id -> green half completion
  uint64_t Cur = 0;                  // cycle the in-order front is at
  unsigned Slots = 0, Ints = 0, Mem = 0, Br = 0;
  uint64_t LastIssue = 0;

  auto AdvanceTo = [&](uint64_t C) {
    if (C > Cur) {
      Cur = C;
      Slots = Ints = Mem = Br = 0;
    }
  };

  for (const MOp &Op : Scheduled) {
    uint64_t Start = LastIssue; // in-order: never before the previous op
    auto NeedReg = [&](int R) {
      if (R == -1)
        return;
      auto It = RegReady.find(R);
      if (It != RegReady.end())
        Start = std::max(Start, It->second);
    };
    NeedReg(Op.Src0);
    NeedReg(Op.Src1);
    // The blue half of a pair carries a true dependence on its green
    // half: a blue store compares against the queue entry the green store
    // wrote, and jmpB/bzB read the destination register d that jmpG/bzG
    // set. The control-flow dependence is architectural and always holds;
    // the store-queue dependence dissolves on the "without ordering"
    // hardware, which correlates redundant memory operations regardless
    // of their order.
    if (Op.PairId != -1 && !Op.GreenHalf &&
        (Op.Class == MOpClass::Branch || Config.EnforceColorOrdering)) {
      auto It = PairReady.find(Op.PairId);
      if (It != PairReady.end())
        Start = std::max(Start, It->second);
    }
    AdvanceTo(Start);

    // Find a cycle with free issue slots and ports.
    bool IsBranch = Op.Class == MOpClass::Branch;
    while (true) {
      bool IntOk = IsBranch || Ints < Config.IntPorts;
      bool MemOk = !isMem(Op.Class) || Mem < Config.MemPorts;
      bool BrOk = !IsBranch || Br < Config.BranchPorts;
      if (Slots < Config.IssueWidth && IntOk && MemOk && BrOk)
        break;
      AdvanceTo(Cur + 1);
    }

    ++Slots;
    if (!IsBranch)
      ++Ints;
    if (isMem(Op.Class))
      ++Mem;
    if (IsBranch)
      ++Br;
    if (Op.Dst != -1)
      RegReady[Op.Dst] = Cur + Config.latencyOf(Op.Class);
    if (Op.PairId != -1 && Op.GreenHalf)
      PairReady[Op.PairId] = Cur + Config.latencyOf(Op.Class);
    LastIssue = Cur;
  }

  // The block retires when its last op completes.
  return Cur + Config.latencyOf(Scheduled.back().Class);
}

uint64_t talft::blockCycles(const MOpStream &Block,
                            const PipelineConfig &Config) {
  return issueCycles(scheduleBlock(Block, Config), Config);
}
