//===- perf/Scheduler.h - List scheduling + in-order issue cost model -----===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two stages reproduce what VELOCITY + the Itanium 2 did in the paper's
/// evaluation:
///
///  1. a *list scheduler* reorders each block's MOp stream by critical-path
///     priority, respecting register dependences (RAW/WAR/WAW), memory
///     ordering (stores stay in FIFO order; loads do not pass stores),
///     control flow (branches retire last, in order), and — when enabled —
///     the TALFT ordering constraint (the green half of every paired
///     store/branch precedes its blue half);
///
///  2. an *in-order issue model* walks the schedule cycle by cycle: up to
///     IssueWidth ops per cycle, bounded by memory and branch ports, an op
///     issuing only when its operands' latencies have elapsed and every
///     earlier op has issued (stalls propagate, as on a real in-order
///     machine).
///
/// Turning EnforceColorOrdering off models the paper's "more aggressive
/// hardware implementation that could correlate the original and redundant
/// memory operations regardless of the executed order" (the TAL-FT
/// without-ordering bars of Figure 10).
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_PERF_SCHEDULER_H
#define TALFT_PERF_SCHEDULER_H

#include "perf/MOp.h"

#include <cstdint>

namespace talft {

/// Pipeline parameters. Defaults are Itanium-2-flavoured: 6-wide issue
/// of which at most 4 slots carry integer/memory operations (2 I-units +
/// 2 M-units) and up to 3 carry branches (B-units); 1-cycle ALU, 2-cycle
/// loads (L1 hit), pipelined 3-cycle multiply.
struct PipelineConfig {
  unsigned IssueWidth = 6;
  /// Non-branch operations share the integer/memory units (Itanium 2: two
  /// I-units + two M-units); branches issue on the separate B-units.
  unsigned IntPorts = 4;
  unsigned MemPorts = 2;
  unsigned BranchPorts = 3;
  unsigned LatAlu = 1;
  unsigned LatMul = 3;
  unsigned LatLoad = 2;
  unsigned LatStore = 1;
  unsigned LatBranch = 1;
  /// Enforce the green-before-blue ordering of paired operations.
  bool EnforceColorOrdering = true;

  unsigned latencyOf(MOpClass C) const;
};

/// Reorders \p Block by list scheduling under \p Config's constraints.
MOpStream scheduleBlock(const MOpStream &Block, const PipelineConfig &Config);

/// Cycles to issue \p Scheduled in order on the modelled pipeline.
uint64_t issueCycles(const MOpStream &Scheduled,
                     const PipelineConfig &Config);

/// Convenience: scheduleBlock + issueCycles.
uint64_t blockCycles(const MOpStream &Block, const PipelineConfig &Config);

} // namespace talft

#endif // TALFT_PERF_SCHEDULER_H
