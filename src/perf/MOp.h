//===- perf/MOp.h - Machine operations for the cost model -----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's evaluation (Section 5) measures the TALFT reliability
/// transformation on an Itanium 2 — a wide in-order machine. We reproduce
/// the *mechanism* behind its 1.34x result with a cost model: compiled
/// code is lowered to streams of machine operations (MOps) carrying
/// latency classes and register dependences, which a list scheduler packs
/// onto a configurable-width in-order pipeline.
///
/// A MOp is deliberately simpler than a tal::Inst: the cost model does not
/// execute anything, it only needs dependences, latencies and port usage.
/// The unprotected baseline compiles one MOp per logical operation; the
/// TALFT variants compile the duplicated streams, with pairing metadata
/// for the green-before-blue ordering constraint that Figure 10 ablates.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_PERF_MOP_H
#define TALFT_PERF_MOP_H

#include <cstdint>
#include <vector>

namespace talft {

/// Latency/port class of a machine operation.
enum class MOpClass : uint8_t {
  /// Single-cycle integer ALU op (add/sub/mov).
  Alu,
  /// Pipelined integer multiply.
  Mul,
  /// Memory load.
  Load,
  /// Memory store (a green store entering the store queue, or a plain
  /// baseline store).
  Store,
  /// A blue store: reads the queue back, compares, commits.
  StoreCommit,
  /// A branch or jump (including the green "intention" halves).
  Branch,
};

/// One operation of a block's cost stream.
struct MOp {
  MOpClass Class = MOpClass::Alu;
  /// Destination register (dense index), or -1.
  int Dst = -1;
  /// Source registers (dense indices), -1 when unused.
  int Src0 = -1;
  int Src1 = -1;
  /// Nonnegative id linking the green and blue halves of a paired store /
  /// jump / branch; -1 for unpaired ops.
  int PairId = -1;
  /// True for the green half of a pair (must precede the blue half when
  /// the ordering constraint is enforced).
  bool GreenHalf = false;

  static MOp alu(int Dst, int Src0 = -1, int Src1 = -1) {
    return {MOpClass::Alu, Dst, Src0, Src1, -1, false};
  }
  static MOp mul(int Dst, int Src0, int Src1) {
    return {MOpClass::Mul, Dst, Src0, Src1, -1, false};
  }
  static MOp load(int Dst, int AddrReg) {
    return {MOpClass::Load, Dst, AddrReg, -1, -1, false};
  }
  static MOp store(int AddrReg, int ValReg, int PairId = -1,
                   bool GreenHalf = false) {
    return {MOpClass::Store, -1, AddrReg, ValReg, PairId, GreenHalf};
  }
  static MOp storeCommit(int AddrReg, int ValReg, int PairId) {
    return {MOpClass::StoreCommit, -1, AddrReg, ValReg, PairId, false};
  }
  static MOp branch(int Src0 = -1, int Src1 = -1, int PairId = -1,
                    bool GreenHalf = false) {
    return {MOpClass::Branch, -1, Src0, Src1, PairId, GreenHalf};
  }
};

/// A block's cost stream in program order.
using MOpStream = std::vector<MOp>;

} // namespace talft

#endif // TALFT_PERF_MOP_H
