//===- types/TypePrint.cpp - Rendering of types and contexts --------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//

#include "support/Unreachable.h"
#include "types/StaticContext.h"

using namespace talft;

std::string BasicType::str() const {
  switch (K) {
  case BasicTypeKind::Int:
    return "int";
  case BasicTypeKind::Ref:
    return Pointee->str() + " ref";
  case BasicTypeKind::Code: {
    const std::string &Label = Pre->Label;
    return "code(" + (Label.empty() ? std::string("<anon>") : Label) + ")";
  }
  }
  talft_unreachable("unknown basic type kind");
}

std::string RegType::str() const {
  std::string Out;
  if (isConditional()) {
    Out += Guard->str();
    Out += " = 0 => ";
  }
  Out += "(";
  Out += colorLetter(C);
  Out += ", ";
  Out += B->str();
  Out += ", ";
  Out += E->str();
  Out += ")";
  return Out;
}

std::string StaticContext::str() const {
  std::string Out = "{";
  if (!Label.empty())
    Out += " label " + Label + ";";
  if (!Delta.empty())
    Out += " forall " + Delta.str() + ";";
  for (const auto &[Key, T] : Gamma) {
    Out += " " + RegFileType::regForKey(Key).str() + ": " + T.str() + ";";
  }
  if (Pc)
    Out += " pc: " + Pc->str() + ";";
  Out += " queue [";
  bool First = true;
  for (const QueueTypeEntry &Q : Queue) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "(" + Q.AddrE->str() + ", " + Q.ValE->str() + ")";
  }
  Out += "];";
  if (MemExpr)
    Out += " mem " + MemExpr->str() + ";";
  Out += " }";
  return Out;
}
