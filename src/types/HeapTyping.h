//===- types/HeapTyping.h - Heap typing Ψ (Figure 5) ----------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap typing Ψ maps addresses to basic types. We store, for each
/// address n, the type that *the value n* has (the conclusion of the
/// paper's base-t rule): a block entry address maps to the block's code
/// type T -> void, and a data address whose cell holds values of type b
/// maps to b ref. Ψ contains invariant assumptions: it never changes
/// during checking or execution.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_TYPES_HEAPTYPING_H
#define TALFT_TYPES_HEAPTYPING_H

#include "isa/Value.h"
#include "types/BasicType.h"

#include <map>

namespace talft {

/// Ψ: address -> basic type.
class HeapTyping {
public:
  /// Declares the type of address \p A (must not already be declared).
  void declare(Addr A, const BasicType *B) {
    [[maybe_unused]] bool Inserted = Map.emplace(A, B).second;
    assert(Inserted && "heap address declared twice");
  }

  /// Ψ(n), or null when undeclared.
  const BasicType *lookup(Addr A) const {
    auto It = Map.find(A);
    return It == Map.end() ? nullptr : It->second;
  }

  bool contains(Addr A) const { return Map.count(A) != 0; }
  size_t size() const { return Map.size(); }
  auto begin() const { return Map.begin(); }
  auto end() const { return Map.end(); }

private:
  std::map<Addr, const BasicType *> Map;
};

} // namespace talft

#endif // TALFT_TYPES_HEAPTYPING_H
