//===- types/ZapTag.h - Zap tags Z (Figure 5) -----------------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A zap tag Z is either empty (no fault has occurred) or a color c (a
/// single fault may have corrupted data of color c). Under zap tag c, a
/// value of color c may be given any type whose static expression is
/// closed — it may have been arbitrarily corrupted — while values of the
/// other color must still satisfy their declared types exactly. Zap tags
/// are what let Preservation track typing *across* a fault.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_TYPES_ZAPTAG_H
#define TALFT_TYPES_ZAPTAG_H

#include "isa/Color.h"

#include <optional>
#include <string>

namespace talft {

/// Z ::= · | c
class ZapTag {
public:
  /// The empty zap tag (no fault).
  static ZapTag none() { return ZapTag(); }
  /// The zap tag for a fault of color \p C.
  static ZapTag color(Color C) {
    ZapTag Z;
    Z.C = C;
    return Z;
  }

  bool isNone() const { return !C.has_value(); }
  /// True when the tag is exactly color \p Other.
  bool is(Color Other) const { return C && *C == Other; }
  /// The zapped color; requires !isNone().
  Color zappedColor() const { return *C; }

  bool operator==(const ZapTag &O) const = default;

  std::string str() const {
    if (!C)
      return "·";
    return colorLetter(*C);
  }

private:
  std::optional<Color> C;
};

} // namespace talft

#endif // TALFT_TYPES_ZAPTAG_H
