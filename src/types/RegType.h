//===- types/RegType.h - Register types t (Figure 5) ----------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register types:
///
///   t ::= (c, b, E) | E' = 0 ⇒ (c, b, E)
///
/// A plain type (c,b,E) says: the value belongs to the color-c computation;
/// absent a fault of color c its shape is b and it is *exactly* equal to
/// the static expression E (a singleton type — this is what lets the type
/// system prove the green and blue computations compute equal values).
///
/// The conditional form `E' = 0 ⇒ (c,b,E)` types the destination register
/// between a bzG and its matching bzB: if E' (the branch test) equals 0 the
/// register has type (c,b,E) — it holds the pending branch target; if E' is
/// nonzero the register holds 0 (no pending transfer).
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_TYPES_REGTYPE_H
#define TALFT_TYPES_REGTYPE_H

#include "isa/Color.h"
#include "sexpr/Expr.h"
#include "types/BasicType.h"

namespace talft {

/// A register type t.
struct RegType {
  /// The branch-test expression E' of a conditional type; null for the
  /// plain form.
  const Expr *Guard = nullptr;
  Color C = Color::Green;
  const BasicType *B = nullptr;
  const Expr *E = nullptr;

  RegType() = default;
  RegType(Color C, const BasicType *B, const Expr *E) : C(C), B(B), E(E) {}

  /// Builds the conditional form Guard = 0 ⇒ (C, B, E).
  static RegType conditional(const Expr *Guard, Color C, const BasicType *B,
                             const Expr *E) {
    RegType T(C, B, E);
    T.Guard = Guard;
    return T;
  }

  bool isConditional() const { return Guard != nullptr; }

  /// Structural equality (exprs by node identity, i.e. up to hash-consing).
  bool operator==(const RegType &O) const = default;

  /// Renders as "(G, int, x + 1)" or "z = 0 => (G, code(l), t)".
  std::string str() const;
};

} // namespace talft

#endif // TALFT_TYPES_REGTYPE_H
