//===- types/StaticContext.h - Static contexts T (Figure 5) ---------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static context T = (Δ; Γ; (Ed,Es); Em) carries the fine-grained,
/// flow-sensitive state the checker threads through a block:
///
///   - Δ: the expression variables free in the other components
///     (universally quantified at a block's entry);
///   - Γ: register-file typing for the general registers and d. Γ is a
///     partial map — registers it does not mention are unconstrained
///     (recovered from the paper's total Γ via register-file subtyping);
///   - Pc: the static expression describing both program counters. (The
///     paper gives pcG and pcB separate entries whose expressions must be
///     provably equal; we keep the single canonical expression.)
///   - (Ed,Es): static descriptors of the store-queue entries, front first
///     (the entry a stG just pushed is index 0; stB consumes the back);
///   - Em: the static expression describing value memory, as in Hoare
///     logic.
///
/// A StaticContext doubles as a code type's precondition: code types are
/// created by labelling a block, so each context is a unique object and
/// code-type equality is pointer equality.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_TYPES_STATICCONTEXT_H
#define TALFT_TYPES_STATICCONTEXT_H

#include "isa/Reg.h"
#include "sexpr/ExprOps.h"
#include "types/RegType.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace talft {

/// Γ: a partial map from registers (general registers and d) to register
/// types.
class RegFileType {
public:
  /// Sets (or replaces) the type of \p R.
  void set(Reg R, RegType T) {
    assert((R.isGeneral() || R.isDest()) &&
           "Γ covers general registers and d only");
    Map[R.denseIndex()] = T;
  }

  /// The type of \p R, or null when Γ does not constrain it.
  const RegType *lookup(Reg R) const {
    auto It = Map.find(R.denseIndex());
    return It == Map.end() ? nullptr : &It->second;
  }

  /// Removes any binding for \p R.
  void forget(Reg R) { Map.erase(R.denseIndex()); }

  size_t size() const { return Map.size(); }
  auto begin() const { return Map.begin(); }
  auto end() const { return Map.end(); }

  bool operator==(const RegFileType &O) const = default;

  /// Reconstructs the Reg for an iteration key.
  static Reg regForKey(unsigned DenseIndex) {
    if (DenseIndex < NumGeneralRegs)
      return Reg::general(DenseIndex);
    assert(DenseIndex == NumGeneralRegs && "Γ key is neither general nor d");
    return Reg::dest();
  }

private:
  std::map<unsigned, RegType> Map;
};

/// One queue descriptor pair (Ed, Es): address and value expressions.
struct QueueTypeEntry {
  const Expr *AddrE = nullptr;
  const Expr *ValE = nullptr;

  bool operator==(const QueueTypeEntry &O) const = default;
};

/// The static description of the store queue, front (most recent) first.
class QueueType {
public:
  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }

  void pushFront(QueueTypeEntry E) { Entries.insert(Entries.begin(), E); }

  const QueueTypeEntry &back() const {
    assert(!empty() && "back() on an empty queue type");
    return Entries.back();
  }
  void popBack() {
    assert(!empty() && "popBack() on an empty queue type");
    Entries.pop_back();
  }

  const QueueTypeEntry &entry(size_t I) const {
    assert(I < Entries.size() && "queue type index out of range");
    return Entries[I];
  }

  auto begin() const { return Entries.begin(); }
  auto end() const { return Entries.end(); }

  bool operator==(const QueueType &O) const = default;

private:
  std::vector<QueueTypeEntry> Entries;
};

/// The static context T = (Δ; Γ; (Ed,Es); Em), extended with the program
/// counter expression and, when the context is a block's precondition, the
/// block label.
class StaticContext {
public:
  /// Label of the block this context preconditions; empty for the
  /// intermediate contexts threaded through a block.
  std::string Label;
  /// Δ: variables universally quantified at the block entry.
  VarScope Delta;
  /// Γ over general registers and d.
  RegFileType Gamma;
  /// The expression describing both program counters.
  const Expr *Pc = nullptr;
  /// (Ed, Es): the store-queue descriptors.
  QueueType Queue;
  /// Em: the memory description.
  const Expr *MemExpr = nullptr;

  /// Renders the context for diagnostics.
  std::string str() const;
};

} // namespace talft

#endif // TALFT_TYPES_STATICCONTEXT_H
