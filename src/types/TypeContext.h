//===- types/TypeContext.h - Ownership and uniquing of types --------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TypeContext owns all BasicType and StaticContext objects of a checking
/// session (alongside an ExprContext for the static expressions they
/// embed). BasicTypes are uniqued: `int` is a singleton, `b ref` is unique
/// per pointee, and `T -> void` is unique per precondition object.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_TYPES_TYPECONTEXT_H
#define TALFT_TYPES_TYPECONTEXT_H

#include "sexpr/ExprContext.h"
#include "types/StaticContext.h"

#include <map>
#include <memory>
#include <vector>

namespace talft {

/// Arena and uniquing tables for the type system.
class TypeContext {
public:
  TypeContext() {
    auto Node = std::make_unique<BasicType>(BasicType());
    IntNode = Node.get();
    Types.push_back(std::move(Node));
  }
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  /// The shared expression context.
  ExprContext &exprs() { return Exprs; }

  /// The basic type int.
  const BasicType *intType() const { return IntNode; }

  /// The basic type `Pointee ref`.
  const BasicType *refType(const BasicType *Pointee) {
    auto It = RefTypes.find(Pointee);
    if (It != RefTypes.end())
      return It->second;
    auto Node = std::make_unique<BasicType>(BasicType());
    Node->K = BasicTypeKind::Ref;
    Node->Pointee = Pointee;
    const BasicType *Result = Node.get();
    Types.push_back(std::move(Node));
    RefTypes.emplace(Pointee, Result);
    return Result;
  }

  /// The code type `Pre -> void`.
  const BasicType *codeType(const StaticContext *Pre) {
    auto It = CodeTypes.find(Pre);
    if (It != CodeTypes.end())
      return It->second;
    auto Node = std::make_unique<BasicType>(BasicType());
    Node->K = BasicTypeKind::Code;
    Node->Pre = Pre;
    const BasicType *Result = Node.get();
    Types.push_back(std::move(Node));
    CodeTypes.emplace(Pre, Result);
    return Result;
  }

  /// Allocates a fresh (mutable until shared) static context.
  StaticContext *createContext() {
    Contexts.push_back(std::make_unique<StaticContext>());
    return Contexts.back().get();
  }

private:
  friend class BasicType;

  ExprContext Exprs;
  std::vector<std::unique_ptr<BasicType>> Types;
  std::vector<std::unique_ptr<StaticContext>> Contexts;
  const BasicType *IntNode = nullptr;
  std::map<const BasicType *, const BasicType *> RefTypes;
  std::map<const StaticContext *, const BasicType *> CodeTypes;
};

} // namespace talft

#endif // TALFT_TYPES_TYPECONTEXT_H
