//===- types/BasicType.h - Basic types b (Figure 5) -----------------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic types describe a value's shape when no fault has corrupted its
/// color:
///
///   b ::= int | T -> void | b ref
///
/// int values may have any bit pattern; `T -> void` values are code
/// pointers whose precondition T must hold before jumping; `b ref` values
/// are pointers to memory cells holding values of type b.
///
/// Code types always arise by naming a labelled code block, so every
/// distinct code type is one StaticContext object and basic-type equality
/// is pointer equality on the precondition. BasicTypes are uniqued by a
/// TypeContext.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_TYPES_BASICTYPE_H
#define TALFT_TYPES_BASICTYPE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace talft {

class StaticContext;

/// Basic-type discriminator.
enum class BasicTypeKind : uint8_t { Int, Ref, Code };

/// One immutable, uniqued basic type.
class BasicType {
public:
  BasicTypeKind kind() const { return K; }
  bool isInt() const { return K == BasicTypeKind::Int; }
  bool isRef() const { return K == BasicTypeKind::Ref; }
  bool isCode() const { return K == BasicTypeKind::Code; }

  /// The pointee type of a ref.
  const BasicType *refPointee() const {
    assert(isRef() && "refPointee() on a non-ref");
    return Pointee;
  }

  /// The precondition of a code type.
  const StaticContext *codePrecondition() const {
    assert(isCode() && "codePrecondition() on a non-code type");
    return Pre;
  }

  /// Renders as "int", "int ref", or "code(<label>)".
  std::string str() const;

private:
  friend class TypeContext;
  BasicType() = default;

  BasicTypeKind K = BasicTypeKind::Int;
  const BasicType *Pointee = nullptr;  // Ref only.
  const StaticContext *Pre = nullptr;  // Code only.
};

} // namespace talft

#endif // TALFT_TYPES_BASICTYPE_H
