//===- sexpr/ExprOps.h - Substitution, evaluation, scoping ----------------===//
//
// Part of the TALFT project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operations over static expressions:
///
///   - Subst: the paper's substitutions S mapping expression variables to
///     expressions (the judgment Δ ⊢ S : Δ' maps Dom(Δ') into expressions
///     well-formed in Δ);
///   - VarScope: the variable contexts Δ (name -> kind);
///   - free-variable collection and scope checking;
///   - the denotation [[E]] of closed expressions (Appendix A.2): integers
///     for kind int, finite address->value maps for kind mem.
///
//===----------------------------------------------------------------------===//

#ifndef TALFT_SEXPR_EXPROPS_H
#define TALFT_SEXPR_EXPROPS_H

#include "sexpr/ExprContext.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace talft {

/// A variable context Δ: an ordered set of (name, kind) bindings.
class VarScope {
public:
  /// Adds a binding; returns false if the name is already bound.
  bool declare(const std::string &Name, ExprKind K) {
    return Vars.emplace(Name, K).second;
  }

  bool contains(const std::string &Name) const { return Vars.count(Name); }

  /// The kind of a bound name, if any.
  std::optional<ExprKind> lookup(const std::string &Name) const {
    auto It = Vars.find(Name);
    if (It == Vars.end())
      return std::nullopt;
    return It->second;
  }

  bool empty() const { return Vars.empty(); }
  size_t size() const { return Vars.size(); }
  auto begin() const { return Vars.begin(); }
  auto end() const { return Vars.end(); }

  /// Merges another scope in; returns false on a clashing name.
  bool merge(const VarScope &O) {
    for (const auto &[Name, K] : O)
      if (!declare(Name, K))
        return false;
    return true;
  }

  /// Renders as "x:int, m:mem".
  std::string str() const;

private:
  std::map<std::string, ExprKind> Vars;
};

/// Collects the distinct free variables of \p E (as Var nodes) in
/// left-to-right first-occurrence order.
std::vector<const Expr *> freeVars(const Expr *E);

/// True when every free variable of \p E is declared (with its kind) in
/// \p Delta — the well-formedness judgment Δ ⊢ E : κ restricted to scoping
/// (kinding is intrinsic to Expr construction).
bool wellFormedIn(const Expr *E, const VarScope &Delta);

/// A substitution S from variables to expressions.
class Subst {
public:
  Subst() = default;

  /// Binds variable node \p Var (must be a Var expr) to \p E of the same
  /// kind. Overwrites any previous binding.
  void bind(const Expr *Var, const Expr *E) {
    assert(Var->isVar() && "Subst keys must be variables");
    assert(Var->kind() == E->kind() && "kind-incorrect substitution");
    Map[Var] = E;
  }

  /// The binding for \p Var, or null.
  const Expr *lookup(const Expr *Var) const {
    auto It = Map.find(Var);
    return It == Map.end() ? nullptr : It->second;
  }

  bool empty() const { return Map.empty(); }
  size_t size() const { return Map.size(); }
  auto begin() const { return Map.begin(); }
  auto end() const { return Map.end(); }

  /// Applies the substitution to \p E, rebuilding in \p Ctx.
  const Expr *apply(ExprContext &Ctx, const Expr *E) const;

  /// Composition: returns a substitution mapping each of this substitution's
  /// variables x to Outer(this(x)) — i.e. apply this first, then \p Outer.
  Subst composeWith(ExprContext &Ctx, const Subst &Outer) const;

  /// Renders as "[E1/x, E2/y]".
  std::string str() const;

private:
  std::map<const Expr *, const Expr *> Map;
};

/// The denotation of a closed memory expression: a finite map.
using MemDenotation = std::map<int64_t, int64_t>;

/// [[E]] for a closed integer expression. Returns nullopt when the
/// denotation is undefined (a sel at an address the memory does not map).
std::optional<int64_t> evalInt(const Expr *E);

/// [[E]] for a closed memory expression. Returns nullopt when undefined
/// (an address or stored value whose denotation is undefined).
std::optional<MemDenotation> evalMem(const Expr *E);

} // namespace talft

#endif // TALFT_SEXPR_EXPROPS_H
